package rdramstream_test

import (
	"fmt"

	"rdramstream"
)

// ExampleSimulate runs the paper's copy kernel through the Stream Memory
// Controller on a page-interleaved system and reports whether the result
// was functionally verified.
func ExampleSimulate() {
	out, err := rdramstream.Simulate(rdramstream.Scenario{
		KernelName: "copy",
		N:          1024,
		Scheme:     rdramstream.PI,
		Mode:       rdramstream.SMC,
		FIFODepth:  128,
		Placement:  rdramstream.Staggered,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("verified=%v nearPeak=%v\n", out.Verified, out.PercentPeak > 95)
	// Output: verified=true nearPeak=true
}

// ExampleBounds evaluates the paper's closed-form limits without running
// any simulation.
func ExampleBounds() {
	b := rdramstream.DefaultBounds()
	fmt.Printf("T_LCC=%.0f cycles, single-stream CLI limit=%.1f%%\n",
		b.TLCC(), b.CacheSingleCLI(1))
	// Output: T_LCC=24 cycles, single-stream CLI limit=33.3%
}
