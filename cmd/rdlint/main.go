// Command rdlint runs the repo's static-analysis suite — the
// per-function checks (determinism, maprange, stallcause, nilprobe,
// wiretag) and the dataflow tier built on the module call graph
// (canoncheck, lockcheck, ctxcheck, hotalloc) — over every package named
// by its arguments (./... by default). It exits 0 when the tree is
// clean, 1 when any finding survives the allowlist, and 2 on usage or
// load errors. See docs/STATIC_ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rdramstream/internal/lint"
	"rdramstream/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is rdlint's own -json output row (tool output, not part
// of the simulator's wire format).
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut     = fs.Bool("json", false, "emit findings as a JSON array instead of file:line lines")
		runList     = fs.String("run", "", "comma-separated analyzers to run (default: all)")
		allowPath   = fs.String("allow", "", "allowlist file (default: <module root>/rdlint.allow, if present)")
		statsOut    = fs.Bool("stats", false, "print a JSON run summary (per-analyzer findings and wall time, call-graph size) to stderr")
		showVersion = fs.Bool("version", false, "print the build identity stamp and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rdlint [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Packages default to ./... relative to the current directory.\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "rdlint "+version.Stamp())
		return 0
	}

	analyzers, err := lint.Select(*runList)
	if err != nil {
		fmt.Fprintln(stderr, "rdlint:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rdlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rdlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.Expand(root, cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "rdlint:", err)
		return 2
	}
	pkgs, err := lint.Load(root, modPath, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "rdlint:", err)
		return 2
	}
	path, optional := filepath.Join(root, "rdlint.allow"), true
	if *allowPath != "" {
		path, optional = *allowPath, false
	}
	allow, err := lint.LoadAllowlist(path, optional)
	if err != nil {
		fmt.Fprintln(stderr, "rdlint:", err)
		return 2
	}

	diags, stale, stats := lint.RunWithStats(pkgs, analyzers, allow)
	if *statsOut {
		enc := json.NewEncoder(stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fmt.Fprintln(stderr, "rdlint:", err)
			return 2
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "rdlint: stale allowlist entry %s:%d (%s %s): suppresses nothing — remove it\n",
			path, e.Line, e.Analyzer, e.Path)
	}
	if *jsonOut {
		rows := make([]jsonDiagnostic, len(diags))
		for i, d := range diags {
			rows[i] = jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(stderr, "rdlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "rdlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
