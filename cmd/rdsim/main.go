// Command rdsim runs one stream computation through the Direct RDRAM
// simulator and prints its effective bandwidth, traffic, and device
// activity — the interactive front end of the library.
//
// Examples:
//
//	rdsim -kernel daxpy -n 1024 -mode smc -scheme pi -fifo 128
//	rdsim -kernel vaxpy -n 1024 -stride 4 -mode natural -scheme cli
//	rdsim -kernel copy -n 4096 -mode smc -policy bankaware -placement aligned
//	rdsim -kernel daxpy -mode smc -scheme pi -fifo 128 -check \
//	      -metrics-out metrics.json -chrome-trace trace.json
//
// The exit status is 0 only when the run verified functionally and (with
// -check) the recorded device trace passed the protocol oracle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rdramstream"
	"rdramstream/internal/obs"
	"rdramstream/internal/version"
)

func main() {
	kernel := flag.String("kernel", "daxpy", "benchmark kernel: copy, daxpy, hydro, vaxpy")
	n := flag.Int("n", 1024, "stream length in 64-bit elements")
	stride := flag.Int64("stride", 1, "element stride in 64-bit words")
	scheme := flag.String("scheme", "cli", "memory organization: cli (closed page) or pi (open page)")
	mode := flag.String("mode", "smc", "controller: smc or natural")
	fifo := flag.Int("fifo", 32, "SMC FIFO depth in elements")
	policy := flag.String("policy", "roundrobin", "MSU policy: roundrobin, bankaware, or hitfirst")
	placement := flag.String("placement", "staggered", "vector placement: staggered or aligned")
	speculate := flag.Bool("speculate", false, "enable speculative page activation (SMC, PI)")
	writeAlloc := flag.Bool("writealloc", false, "natural-order: fetch store-missed lines and write back on eviction")
	refresh := flag.Int64("refresh", 0, "inject a refresh every N cycles (0 = off, as the paper assumes)")
	faultSeverity := flag.Int("fault-severity", 0, "deterministic fault-injection severity (0 = off)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (with -fault-severity)")
	devices := flag.Int("devices", 1, "RDRAM chips on the channel (banks scale with it)")
	cacheWords := flag.Int("cache", 0, "natural-order: put a real cache of this many 64-bit words in front (0 = paper's ideal line buffers)")
	cacheWays := flag.Int("cacheways", 1, "associativity of the -cache model")
	seed := flag.Int64("seed", 1, "data pattern seed")
	traceGen := flag.String("trace-gen", "", "replay a generated trace instead of a kernel: a program spec (e.g. \"llm-kvcache:n=16384\") or @file for an NDJSON trace")
	traceSeed := flag.Int64("trace-seed", 1, "trace generator seed (with -trace-gen)")
	traceOut := flag.String("trace-out", "", "write the materialized trace as NDJSON to this file (with -trace-gen)")
	outstanding := flag.Int("outstanding", 0, "trace replay pipeline depth (0 = device limit of 4)")
	jsonOut := flag.Bool("json", false, "emit the outcome as JSON (for scripting)")
	check := flag.Bool("check", false, "validate the recorded device trace against the Direct RDRAM protocol oracle; exit non-zero on violations")
	metricsOut := flag.String("metrics-out", "", "write telemetry metrics (stall attribution, per-bank counters, windowed series) as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event JSON file (per-bank and per-FIFO tracks, viewable in Perfetto)")
	window := flag.Int64("window", 256, "telemetry time-series window in cycles")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}

	sc := rdramstream.Scenario{
		KernelName:        *kernel,
		N:                 *n,
		Stride:            *stride,
		FIFODepth:         *fifo,
		SpeculateActivate: *speculate,
		WriteAllocate:     *writeAlloc,
		Seed:              *seed,
		Device:            rdramstream.DefaultDevice(),
	}
	sc.Device.RefreshInterval = *refresh
	if *devices > 1 {
		sc.Device.Geometry.Banks *= *devices
		sc.Device.Geometry.DevicesOnChannel = *devices
	}
	if *cacheWords > 0 {
		sc.Cache = &rdramstream.CacheConfig{SizeWords: *cacheWords, LineWords: 4, Ways: *cacheWays}
	}

	if *faultSeverity > 0 {
		fc := rdramstream.ScaledFaults(*faultSeed, *faultSeverity)
		sc.Fault = &fc
	}

	traceName := ""
	if *traceGen != "" {
		spec, name, err := rdramstream.TraceSpecFromArg(*traceGen, *traceSeed)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Outstanding = *outstanding
		// Trace replay supersedes the kernel fields entirely.
		sc.KernelName, sc.N, sc.Stride = "", 0, 0
		sc.Workload = spec
		traceName = name
		if *traceOut != "" {
			accs, err := spec.Materialize()
			if err != nil {
				fatalf("%v", err)
			}
			if err := writeFile(*traceOut, func(w io.Writer) error {
				return rdramstream.EncodeTrace(w, name, accs)
			}); err != nil {
				fatalf("trace out: %v", err)
			}
		}
	}

	if sc.Scheme, err = rdramstream.ParseInterleave(*scheme); err != nil {
		fatalf("%v", err)
	}
	switch strings.ToLower(*mode) {
	case "smc":
		sc.Mode = rdramstream.SMC
	case "natural", "natural-order", "cache":
		sc.Mode = rdramstream.NaturalOrder
	default:
		fatalf("unknown mode %q (want smc or natural)", *mode)
	}
	switch strings.ToLower(*policy) {
	case "roundrobin", "round-robin", "rr":
		sc.Policy = rdramstream.RoundRobin
	case "bankaware", "bank-aware", "ba":
		sc.Policy = rdramstream.BankAware
	case "hitfirst", "hit-first", "hf":
		sc.Policy = rdramstream.HitFirst
	default:
		fatalf("unknown policy %q", *policy)
	}
	switch strings.ToLower(*placement) {
	case "staggered":
		sc.Placement = rdramstream.Staggered
	case "aligned":
		sc.Placement = rdramstream.Aligned
	default:
		fatalf("unknown placement %q", *placement)
	}

	var col *rdramstream.Telemetry
	if *metricsOut != "" || *chromeTrace != "" {
		col = rdramstream.NewTelemetry(rdramstream.TelemetryOptions{
			Window:        *window,
			CaptureEvents: *chromeTrace != "",
		})
		sc.Telemetry = col
	}
	var rec rdramstream.TraceRecorder
	if *check {
		sc.Trace = rec.Hook()
	}

	out, err := rdramstream.Simulate(sc)
	if err != nil {
		fatalf("%v", err)
	}

	if *metricsOut != "" {
		if err := writeFile(*metricsOut, col.WriteMetricsJSON); err != nil {
			fatalf("metrics: %v", err)
		}
	}
	if *chromeTrace != "" {
		if err := writeFile(*chromeTrace, col.WriteChromeTrace); err != nil {
			fatalf("chrome trace: %v", err)
		}
	}

	kernelLabel, nLabel, strideLabel := *kernel, *n, *stride
	if sc.Workload != nil {
		kernelLabel, nLabel, strideLabel = "trace:"+traceName, 0, 0
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Kernel    string
			N         int
			Stride    int64
			Scheme    string
			Mode      string
			FIFODepth int `json:",omitempty"`
			rdramstream.Outcome
		}{kernelLabel, nLabel, strideLabel, sc.Scheme.String(), sc.Mode.String(), *fifo, out}); err != nil {
			fatalf("%v", err)
		}
	} else if sc.Workload != nil {
		fmt.Printf("trace       %s (%d useful words)\n", traceName, out.UsefulWords)
		fmt.Printf("system      %v / %v", sc.Scheme, sc.Mode)
		if sc.Mode == rdramstream.SMC {
			fmt.Printf(" (fifo=%d policy=%v speculate=%v)", sc.FIFODepth, sc.Policy, sc.SpeculateActivate)
		}
		fmt.Printf(" placement=%v\n", sc.Placement)
		fmt.Printf("cycles      %d (%.2f us at 400 MHz)\n", out.Cycles, float64(out.Cycles)*2.5/1000)
		fmt.Printf("bandwidth   %.2f%% of peak (%.0f MB/s of 1600)\n", out.PercentPeak, out.EffectiveMBps)
		if out.PercentAttainable != out.PercentPeak {
			fmt.Printf("attainable  %.2f%% of the stride's attainable bandwidth\n", out.PercentAttainable)
		}
		fmt.Printf("traffic     %d useful words, %d transferred\n", out.UsefulWords, out.TransferredWords)
		fmt.Printf("device      %v\n", out.Device)
		fmt.Printf("verified    %v\n", out.Verified)
	}

	exit := 0
	if *check {
		viols := rdramstream.CheckTrace(sc.Device, rec.Events)
		for _, v := range viols {
			fmt.Fprintf(os.Stderr, "rdsim: protocol violation: %v\n", v)
		}
		if len(viols) > 0 {
			exit = 1
		} else if !*jsonOut {
			fmt.Printf("protocol    clean (%d trace events checked)\n", len(rec.Events))
		}
	}
	// Scripted sweeps must not silently pass on a corrupted memory image.
	if !out.Verified {
		fmt.Fprintln(os.Stderr, "rdsim: functional verification did not pass")
		if exit == 0 {
			exit = 2
		}
	}
	stopProfiles() // main exits via os.Exit, so no defer
	os.Exit(exit)
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdsim: "+format+"\n", args...)
	os.Exit(1)
}
