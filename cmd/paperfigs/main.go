// Command paperfigs regenerates every table and figure of the paper's
// evaluation, printing ASCII tables (and optionally CSV files) so the
// reproduction can be compared against the published results.
//
// Usage:
//
//	paperfigs                 # everything
//	paperfigs -fig 7          # just Figure 7's sixteen panels
//	paperfigs -headline       # just the quoted-number comparison
//	paperfigs -csv out/       # also write CSV series to a directory
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rdramstream/internal/experiments"
	"rdramstream/internal/obs"
	"rdramstream/internal/version"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (1, 2, 5, 6, 7, 8, or 9)")
	headline := flag.Bool("headline", false, "print only the headline-number comparison")
	ablation := flag.Bool("ablation", false, "print only the scheduler ablation")
	extensions := flag.Bool("extensions", false, "print only the beyond-the-paper ablations (channel scaling, writeback, refresh)")
	charts := flag.Bool("charts", false, "render Figure 7 panels as ASCII charts instead of tables")
	csvDir := flag.String("csv", "", "directory to write CSV copies of each table")
	svgDir := flag.String("svg", "", "directory to write SVG renderings of Figures 7, 8, and 9")
	workers := flag.Int("workers", 0, "worker count for figure regeneration (0 = GOMAXPROCS, 1 = serial)")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	writeSVG := func(name, content string) {
		if *svgDir == "" {
			return
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	all := !*headline && !*ablation && !*extensions && *fig == 0
	emit := func(name string, t *experiments.Table) {
		fmt.Println(t.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if all || *fig == 1 {
		emit("figure1", experiments.Figure1())
	}
	if all || *fig == 2 {
		emit("figure2", experiments.Figure2())
	}
	if all || *fig == 5 {
		s, err := experiments.Figure5()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 5 — CLI closed-page timeline")
		fmt.Println(s)
	}
	if all || *fig == 6 {
		s, err := experiments.Figure6()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 6 — PI open-page timeline")
		fmt.Println(s)
	}
	if all || *fig == 7 {
		panels, err := experiments.Figure7Parallel(*workers)
		if err != nil {
			fatal(err)
		}
		for _, p := range panels {
			name := fmt.Sprintf("figure7_%s_%s_%d", p.Kernel, strings.ToLower(p.Scheme.String()), p.N)
			writeSVG(name, p.SVG())
			if *charts {
				fmt.Println(p.Chart())
				continue
			}
			emit(name, p.Table())
		}
	}
	if all || *fig == 8 {
		emit("figure8", experiments.Figure8())
		writeSVG("figure8", experiments.Figure8SVG())
	}
	if all || *fig == 9 {
		t, err := experiments.Figure9()
		if err != nil {
			fatal(err)
		}
		emit("figure9", t)
		if *svgDir != "" {
			s, err := experiments.Figure9SVG()
			if err != nil {
				fatal(err)
			}
			writeSVG("figure9", s)
		}
	}
	if all || *ablation {
		t, err := experiments.SchedulerAblation()
		if err != nil {
			fatal(err)
		}
		emit("ablation_scheduler", t)
	}
	if all || *extensions {
		// A slice, not a map: emission order is part of the output.
		for _, ext := range []struct {
			name string
			gen  func() (*experiments.Table, error)
		}{
			{"channel_scaling", experiments.ChannelScaling},
			{"writeback_ablation", experiments.WritebackAblation},
			{"refresh_ablation", experiments.RefreshAblation},
			{"cache_conflict_ablation", experiments.CacheConflictAblation},
			{"crisp_efficiency", experiments.CrispEfficiency},
			{"prior_fpm_system", experiments.PriorSystem},
			{"policy_cross", experiments.PolicyCross},
			{"llm_kvcache", experiments.LLMKVCache},
			{"fault_degradation", func() (*experiments.Table, error) { return experiments.FaultSweep(42, nil) }},
		} {
			t, err := ext.gen()
			if err != nil {
				fatal(err)
			}
			emit(ext.name, t)
		}
	}
	if all || *headline {
		t, err := experiments.HeadlineNumbers()
		if err != nil {
			fatal(err)
		}
		emit("headline", t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
