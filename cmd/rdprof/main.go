// Command rdprof runs one scenario with full cycle-level telemetry and
// emits an analysis bundle:
//
//	<out>/metrics.json    counters, stall-cause attribution, histograms
//	<out>/timeseries.csv  per-window bus occupancy, bandwidth, FIFO depths
//	<out>/events.jsonl    raw instrumentation events, one JSON per line
//	<out>/trace.json      Chrome trace-event JSON (Perfetto, chrome://tracing)
//
// It also prints a stall-attribution summary: where every idle DATA-bus
// cycle went, in the taxonomy of docs/OBSERVABILITY.md.
//
// Examples:
//
//	rdprof -kernel daxpy -n 1024 -mode smc -scheme pi -fifo 128 -out profile
//	rdprof -kernel hydro -mode natural -scheme cli -window 128
//	rdprof -bench -bench-out BENCH_telemetry.json
//	rdprof -bench-core -bench-core-out BENCH_core_speed.json
//	rdprof -check BENCH_core_speed.json
//
// The -bench mode measures telemetry overhead instead: it times the
// daxpy/SMC/PI scenario with telemetry off and on and writes a JSON
// comparison (the repo's BENCH_telemetry.json is produced this way).
// The -bench-core mode times the pinned hot-path scenarios against the
// pre-refactor baselines and writes BENCH_core_speed.json; -check
// re-times the gated scenarios against a committed copy and fails on a
// >2x regression (the CI backstop).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rdramstream"
	"rdramstream/internal/version"
)

func main() {
	kernel := flag.String("kernel", "daxpy", "benchmark kernel: copy, daxpy, hydro, vaxpy")
	n := flag.Int("n", 1024, "stream length in 64-bit elements")
	stride := flag.Int64("stride", 1, "element stride in 64-bit words")
	scheme := flag.String("scheme", "pi", "memory organization: cli (closed page) or pi (open page)")
	mode := flag.String("mode", "smc", "controller: smc or natural")
	fifo := flag.Int("fifo", 128, "SMC FIFO depth in elements")
	policy := flag.String("policy", "roundrobin", "MSU policy: roundrobin, bankaware, or hitfirst")
	placement := flag.String("placement", "staggered", "vector placement: staggered or aligned")
	speculate := flag.Bool("speculate", false, "enable speculative page activation (SMC, PI)")
	writeAlloc := flag.Bool("writealloc", false, "natural-order: fetch store-missed lines, write back on eviction")
	seed := flag.Int64("seed", 1, "data pattern seed")
	window := flag.Int64("window", 256, "time-series window in cycles")
	outDir := flag.String("out", "profile", "output directory for the telemetry bundle")
	bench := flag.Bool("bench", false, "measure telemetry overhead instead of profiling")
	benchOut := flag.String("bench-out", "BENCH_telemetry.json", "output file for -bench")
	benchIters := flag.Int("bench-iters", 7, "timed iterations per configuration for -bench")
	benchCore := flag.Bool("bench-core", false, "measure core simulator speed against the pinned pre-refactor baselines")
	benchCoreOut := flag.String("bench-core-out", "BENCH_core_speed.json", "output file for -bench-core")
	checkCore := flag.String("check", "", "re-time the gated scenarios against this committed BENCH_core_speed.json and fail on a >2x regression")
	offOverhead := flag.Float64("off-overhead-pct", 0, "record this externally measured telemetry-off-vs-uninstrumented overhead percentage in the -bench output")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}

	sc := rdramstream.Scenario{
		KernelName:        *kernel,
		N:                 *n,
		Stride:            *stride,
		FIFODepth:         *fifo,
		SpeculateActivate: *speculate,
		WriteAllocate:     *writeAlloc,
		Seed:              *seed,
		Device:            rdramstream.DefaultDevice(),
	}
	var err error
	if sc.Scheme, err = rdramstream.ParseInterleave(*scheme); err != nil {
		fatalf("%v", err)
	}
	switch strings.ToLower(*mode) {
	case "smc":
		sc.Mode = rdramstream.SMC
	case "natural", "natural-order", "cache":
		sc.Mode = rdramstream.NaturalOrder
	default:
		fatalf("unknown mode %q (want smc or natural)", *mode)
	}
	switch strings.ToLower(*policy) {
	case "roundrobin", "round-robin", "rr":
		sc.Policy = rdramstream.RoundRobin
	case "bankaware", "bank-aware", "ba":
		sc.Policy = rdramstream.BankAware
	case "hitfirst", "hit-first", "hf":
		sc.Policy = rdramstream.HitFirst
	default:
		fatalf("unknown policy %q", *policy)
	}
	switch strings.ToLower(*placement) {
	case "staggered":
		sc.Placement = rdramstream.Staggered
	case "aligned":
		sc.Placement = rdramstream.Aligned
	default:
		fatalf("unknown placement %q", *placement)
	}

	if *checkCore != "" {
		checkCoreBench(*checkCore, *benchIters)
		return
	}
	if *benchCore {
		runCoreBench(*benchIters, *benchCoreOut)
		return
	}
	if *bench {
		runBench(sc, *benchIters, *benchOut, *offOverhead)
		return
	}

	col := rdramstream.NewTelemetry(rdramstream.TelemetryOptions{
		Window:        *window,
		CaptureEvents: true,
	})
	sc.Telemetry = col
	out, err := rdramstream.Simulate(sc)
	if err != nil {
		fatalf("%v", err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	files := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"metrics.json", col.WriteMetricsJSON},
		{"timeseries.csv", col.WriteSeriesCSV},
		{"events.jsonl", col.WriteEventsJSONL},
		{"trace.json", col.WriteChromeTrace},
	}
	for _, f := range files {
		if err := writeFile(filepath.Join(*outDir, f.name), f.fn); err != nil {
			fatalf("%s: %v", f.name, err)
		}
	}

	printSummary(sc, out, col)
	fmt.Printf("\nbundle written to %s/ (metrics.json, timeseries.csv, events.jsonl, trace.json)\n", *outDir)
	fmt.Println("open trace.json at https://ui.perfetto.dev or chrome://tracing (1 trace µs = 1 cycle)")
}

// printSummary renders the headline numbers and the stall-attribution
// table: every idle DATA-bus cycle charged to one cause.
func printSummary(sc rdramstream.Scenario, out rdramstream.Outcome, col *rdramstream.Telemetry) {
	rep := col.Report()
	fmt.Printf("kernel      %s (n=%d stride=%d), %v / %v\n",
		sc.KernelName, sc.N, sc.Stride, sc.Scheme, sc.Mode)
	fmt.Printf("cycles      %d, bandwidth %.2f%% of peak (%.0f MB/s)\n",
		out.Cycles, out.PercentPeak, out.EffectiveMBps)
	fmt.Printf("data bus    busy %d cycles, idle %d cycles (%.1f%% utilization)\n",
		rep.DataBusBusy, rep.IdleCycles, 100*float64(rep.DataBusBusy)/float64(max(out.Cycles, 1)))

	type kv struct {
		name string
		v    int64
	}
	var stalls []kv
	for name, v := range rep.Stalls {
		stalls = append(stalls, kv{name, v})
	}
	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].v != stalls[j].v {
			return stalls[i].v > stalls[j].v
		}
		return stalls[i].name < stalls[j].name // ties must not follow map order
	})
	fmt.Println("\nidle DATA-bus cycles by cause:")
	for _, s := range stalls {
		fmt.Printf("  %-12s %8d  (%5.1f%% of idle)\n", s.name, s.v, 100*float64(s.v)/float64(max(rep.IdleCycles, 1)))
	}

	if len(rep.FIFOs) > 0 {
		fmt.Println("\nFIFOs:")
		for _, f := range rep.FIFOs {
			fmt.Printf("  %-16s %5d packets, full-stalls %d (%d cyc), empty-stalls %d (%d cyc)\n",
				f.Name, f.Serviced, f.FullStalls, f.FullStallCycles, f.EmptyStalls, f.EmptyStallCycles)
		}
	}
	if rep.MissLatencyAvg > 0 {
		var fetches int64
		for _, b := range rep.MissLatency {
			fetches += b.Count
		}
		fmt.Printf("\nmiss latency: mean %.1f cycles over %d fetches\n",
			rep.MissLatencyAvg, fetches)
	}
	if rep.CPUStallCycles > 0 {
		fmt.Printf("cpu stalls  %d cycles blocked on FIFO heads\n", rep.CPUStallCycles)
	}
	if rep.EventsTruncated {
		fmt.Println("note: event capture hit its buffer limit; trace.json/events.jsonl are truncated")
	}
}

// benchEntry is one off-vs-on timing comparison for a scenario.
type benchEntry struct {
	Name       string  `json:"name"`
	OffNsPerOp int64   `json:"telemetryOffNsPerOp"`
	OnNsPerOp  int64   `json:"telemetryOnNsPerOp"`
	OverheadPc float64 `json:"telemetryOnOverheadPercent"`
}

// benchReport is the BENCH_telemetry.json schema. The headline entry is
// the canonical daxpy/SMC/PI scenario; ExistingBenchmarks covers the
// scenarios of the repo's long-standing bench_test.go simulations.
type benchReport struct {
	Scenario   string  `json:"scenario"`
	Iterations int     `json:"iterations"`
	OffNsPerOp int64   `json:"telemetryOffNsPerOp"`
	OnNsPerOp  int64   `json:"telemetryOnNsPerOp"`
	OverheadPc float64 `json:"telemetryOnOverheadPercent"`

	ExistingBenchmarks []benchEntry `json:"existingBenchmarks"`

	// OffOverheadPc is the measured cost of the telemetry-off (nil
	// collector) path relative to a build without the instrumentation at
	// all. It is a cross-commit A/B measurement, so it cannot be produced
	// by this binary alone; pass it in with -off-overhead-pct (see
	// docs/OBSERVABILITY.md for the measurement recipe).
	OffOverheadPc float64 `json:"telemetryOffOverheadPercent,omitempty"`

	// TelemetryOffNote documents what "off" means: the identical code path
	// as an uninstrumented build plus one nil check per probe site.
	TelemetryOffNote string `json:"telemetryOffNote"`
}

// timeScenario returns the minimum wall time over iters runs — the
// least-noise estimator for a deterministic simulation.
func timeScenario(sc rdramstream.Scenario, iters int, withTelemetry bool) int64 {
	best := int64(0)
	for i := 0; i < iters; i++ {
		sc := sc
		sc.SkipVerify = true
		if withTelemetry {
			sc.Telemetry = rdramstream.NewTelemetry(rdramstream.TelemetryOptions{Window: 256})
		}
		start := time.Now()
		if _, err := rdramstream.Simulate(sc); err != nil {
			fatalf("bench: %v", err)
		}
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// runBench times the canonical scenario plus the bench_test.go simulation
// scenarios, each with telemetry off and on, and writes the comparison.
func runBench(sc rdramstream.Scenario, iters int, outPath string, offOverheadPc float64) {
	if iters < 1 {
		iters = 1
	}
	measure := func(name string, s rdramstream.Scenario) benchEntry {
		timeScenario(s, 1, false) // warm-up
		off := timeScenario(s, iters, false)
		on := timeScenario(s, iters, true)
		return benchEntry{
			Name: name, OffNsPerOp: off, OnNsPerOp: on,
			OverheadPc: 100 * (float64(on) - float64(off)) / float64(off),
		}
	}
	head := measure(fmt.Sprintf("%s n=%d %v/%v fifo=%d", sc.KernelName, sc.N, sc.Scheme, sc.Mode, sc.FIFODepth), sc)
	rep := benchReport{
		Scenario:   head.Name,
		Iterations: iters,
		OffNsPerOp: head.OffNsPerOp,
		OnNsPerOp:  head.OnNsPerOp,
		OverheadPc: head.OverheadPc,
		ExistingBenchmarks: []benchEntry{
			measure("SMCCopy1024", rdramstream.Scenario{
				KernelName: "copy", N: 1024, Scheme: rdramstream.CLI,
				Mode: rdramstream.SMC, FIFODepth: 128, Placement: rdramstream.Staggered,
			}),
			measure("NaturalOrderDaxpy1024", rdramstream.Scenario{
				KernelName: "daxpy", N: 1024, Scheme: rdramstream.PI,
				Mode: rdramstream.NaturalOrder, Placement: rdramstream.Staggered,
			}),
		},
		OffOverheadPc: offOverheadPc,
		TelemetryOffNote: "telemetry off runs the identical code path as an uninstrumented " +
			"build plus one nil check per probe site; see docs/OBSERVABILITY.md for the " +
			"measured off-vs-baseline comparison on the existing benchmarks",
	}
	if err := writeFile(outPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("telemetry off %d ns/run, on %d ns/run (%.2f%% overhead) -> %s\n",
		rep.OffNsPerOp, rep.OnNsPerOp, rep.OverheadPc, outPath)
	for _, e := range rep.ExistingBenchmarks {
		fmt.Printf("  %-24s off %d ns, on %d ns (%.2f%%)\n", e.Name, e.OffNsPerOp, e.OnNsPerOp, e.OverheadPc)
	}
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdprof: "+format+"\n", args...)
	os.Exit(1)
}
