// Core-simulator speed benchmark (-bench-core): times the pinned
// hot-path scenarios of bench_test.go on the current build and writes
// BENCH_core_speed.json comparing each against the tick-era baseline —
// the numbers measured just before the event-driven core refactor
// (skip-to-next-event wake-ups, de-virtualized inner path, pooled
// per-scenario allocations; see docs/PERFORMANCE.md).
//
// With -check <file> it instead re-times the gated scenarios and exits
// non-zero if any regresses more than 2x over the committed
// afterNsPerOp — the CI backstop that keeps the speedup from silently
// eroding. Only the long-stream scenario is gated: at ~10ms/run its
// min-of-N timing is stable on shared CI runners, where the sub-ms
// scenarios are not.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rdramstream"
)

// coreCase is one pinned scenario plus its pre-refactor baseline.
type coreCase struct {
	name     string
	desc     string
	sc       rdramstream.Scenario
	beforeNs int64 // min wall ns/run on the tick-era core
	beforeAl int64 // heap allocations/run on the tick-era core
	gate     bool  // include in the -check CI regression gate
}

// coreCases pins the scenarios and their baselines. The before numbers
// were measured at commit 8da18f5 — the last commit with the tick-era
// core (per-iteration planning slices, map-backed device pages seeded
// even under SkipVerify, interface dispatch in the inner loop) — on the
// same benchmark definitions (min of 7 runs, allocs via MemStats).
func coreCases() []coreCase {
	return []coreCase{
		{
			name: "SMCCopy1024",
			desc: "copy n=1024 CLI/smc fifo=128 staggered",
			sc: rdramstream.Scenario{
				KernelName: "copy", N: 1024, Scheme: rdramstream.CLI,
				Mode: rdramstream.SMC, FIFODepth: 128,
				Placement: rdramstream.Staggered, SkipVerify: true,
			},
			beforeNs: 918_000, beforeAl: 8_353,
		},
		{
			name: "NaturalOrderDaxpy1024",
			desc: "daxpy n=1024 PI/natural staggered",
			sc: rdramstream.Scenario{
				KernelName: "daxpy", N: 1024, Scheme: rdramstream.PI,
				Mode:      rdramstream.NaturalOrder,
				Placement: rdramstream.Staggered, SkipVerify: true,
			},
			beforeNs: 540_000, beforeAl: 1_658,
		},
		{
			name: "SMCLongVector",
			desc: "daxpy n=65536 PI/smc fifo=128 staggered",
			sc: rdramstream.Scenario{
				KernelName: "daxpy", N: 65536, Scheme: rdramstream.PI,
				Mode: rdramstream.SMC, FIFODepth: 128,
				Placement: rdramstream.Staggered, SkipVerify: true,
			},
			beforeNs: 73_000_000, beforeAl: 723_267,
			gate: true,
		},
	}
}

// coreEntry is one before/after comparison in BENCH_core_speed.json.
type coreEntry struct {
	Name              string  `json:"name"`
	Scenario          string  `json:"scenario"`
	BeforeNsPerOp     int64   `json:"beforeNsPerOp"`
	BeforeAllocsPerOp int64   `json:"beforeAllocsPerOp"`
	AfterNsPerOp      int64   `json:"afterNsPerOp"`
	AfterAllocsPerOp  int64   `json:"afterAllocsPerOp"`
	Speedup           float64 `json:"speedup"`
	RegressionGate    bool    `json:"regressionGate"`
}

// coreReport is the BENCH_core_speed.json schema.
type coreReport struct {
	BaselineCommit string      `json:"baselineCommit"`
	Iterations     int         `json:"iterations"`
	Scenarios      []coreEntry `json:"scenarios"`
	Note           string      `json:"note"`
}

// timeCore returns the minimum wall time over iters runs — the
// least-noise estimator for a deterministic simulation.
func timeCore(sc rdramstream.Scenario, iters int) int64 {
	best := int64(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := rdramstream.Simulate(sc); err != nil {
			fatalf("bench-core: %v", err)
		}
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// allocsCore measures heap allocations per run via MemStats deltas.
// A warm-up run first fills the scratch pools so the steady-state
// (sweep-loop) allocation count is what gets reported.
func allocsCore(sc rdramstream.Scenario) int64 {
	if _, err := rdramstream.Simulate(sc); err != nil {
		fatalf("bench-core: %v", err)
	}
	const iters = 3
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		if _, err := rdramstream.Simulate(sc); err != nil {
			fatalf("bench-core: %v", err)
		}
	}
	runtime.ReadMemStats(&m1)
	return int64(m1.Mallocs-m0.Mallocs) / iters
}

// runCoreBench times every pinned scenario and writes the comparison.
func runCoreBench(iters int, outPath string) {
	if iters < 1 {
		iters = 1
	}
	rep := coreReport{
		BaselineCommit: "8da18f5",
		Iterations:     iters,
		Note: "before = tick-era core at the baseline commit; after = current " +
			"build with the event-driven core (skip-to-next-event wake-ups, " +
			"de-virtualized inner path, pooled per-scenario allocations). " +
			"ns/op is the min wall time over the timed iterations; allocs/op " +
			"is the steady-state MemStats.Mallocs delta per run after a " +
			"pool-warming iteration. See docs/PERFORMANCE.md.",
	}
	for _, c := range coreCases() {
		timeCore(c.sc, 1) // warm-up
		ns := timeCore(c.sc, iters)
		al := allocsCore(c.sc)
		rep.Scenarios = append(rep.Scenarios, coreEntry{
			Name: c.name, Scenario: c.desc,
			BeforeNsPerOp: c.beforeNs, BeforeAllocsPerOp: c.beforeAl,
			AfterNsPerOp: ns, AfterAllocsPerOp: al,
			Speedup:        float64(c.beforeNs) / float64(ns),
			RegressionGate: c.gate,
		})
	}
	if err := writeFile(outPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		fatalf("%v", err)
	}
	for _, e := range rep.Scenarios {
		fmt.Printf("%-24s before %9d ns %7d allocs, after %9d ns %5d allocs (%.1fx)\n",
			e.Name, e.BeforeNsPerOp, e.BeforeAllocsPerOp, e.AfterNsPerOp, e.AfterAllocsPerOp, e.Speedup)
	}
	fmt.Printf("-> %s\n", outPath)
}

// checkCoreBench re-times the gated scenarios against a committed
// BENCH_core_speed.json and fails on a >2x ns/op regression.
func checkCoreBench(path string, iters int) {
	if iters < 1 {
		iters = 1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("bench-core check: %v", err)
	}
	var rep coreReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("bench-core check: %s: %v", path, err)
	}
	committed := make(map[string]coreEntry, len(rep.Scenarios))
	for _, e := range rep.Scenarios {
		committed[e.Name] = e
	}
	failed := false
	for _, c := range coreCases() {
		e, ok := committed[c.name]
		if !ok {
			fatalf("bench-core check: %s missing scenario %s (regenerate with -bench-core)", path, c.name)
		}
		timeCore(c.sc, 1) // warm-up
		ns := timeCore(c.sc, iters)
		ratio := float64(ns) / float64(e.AfterNsPerOp)
		status := "info"
		if c.gate {
			status = "ok"
			if ratio > 2 {
				status = "REGRESSION"
				failed = true
			}
		}
		fmt.Printf("%-24s committed %9d ns, now %9d ns (%.2fx) [%s]\n",
			c.name, e.AfterNsPerOp, ns, ratio, status)
	}
	if failed {
		fatalf("bench-core check: gated scenario regressed >2x vs %s", path)
	}
}
