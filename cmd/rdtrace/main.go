// Command rdtrace records the packet-level bus activity of one simulation,
// renders the ROW/COL/DATA timeline (the Figure 5/6 view for arbitrary
// scenarios), validates the schedule against the protocol oracle, and
// prints bus-utilization statistics.
//
// Examples:
//
//	rdtrace -kernel daxpy -n 32 -mode natural -scheme cli
//	rdtrace -kernel copy -n 64 -mode smc -scheme pi -fifo 16 -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/natorder"
	"rdramstream/internal/rdram"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
	"rdramstream/internal/trace"
	"rdramstream/internal/tracegen"
	"rdramstream/internal/version"
	"rdramstream/internal/workload"
)

func main() {
	kernel := flag.String("kernel", "daxpy", "benchmark kernel: copy, daxpy, hydro, vaxpy")
	n := flag.Int("n", 32, "stream length (keep small; the timeline is one character per -scale cycles)")
	schemeF := flag.String("scheme", "cli", "cli or pi")
	mode := flag.String("mode", "natural", "smc or natural")
	fifo := flag.Int("fifo", 16, "SMC FIFO depth")
	scale := flag.Int("scale", 2, "cycles per timeline character")
	traceFile := flag.String("tracefile", "", "replay a word-address trace file (lines of \"R|W <addr>\") instead of a kernel")
	traceGen := flag.String("trace-gen", "", "replay a generated trace: a program spec (e.g. \"hot-row:n=256\") or @file for an NDJSON trace")
	traceSeed := flag.Int64("trace-seed", 1, "trace generator seed (with -trace-gen)")
	traceOut := flag.String("trace-out", "", "write the materialized trace as NDJSON to this file (with -trace-gen)")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}

	scheme, err := addrmap.ParseScheme(*schemeF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdtrace: %v\n", err)
		os.Exit(1)
	}
	cfg := rdram.DefaultConfig()
	dev := rdram.NewDevice(cfg)
	var rec rdram.Recorder
	dev.Trace = rec.Hook()

	var header string
	if *traceGen != "" {
		spec, name, err := tracegen.SpecFromArg(*traceGen, *traceSeed)
		if err != nil {
			fatalf("%v", err)
		}
		accs, err := spec.Materialize()
		if err != nil {
			fatalf("%v", err)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatalf("%v", err)
			}
			if err := tracegen.Encode(f, name, accs); err != nil {
				f.Close()
				fatalf("trace out: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("trace out: %v", err)
			}
		}
		reorder := false
		switch strings.ToLower(*mode) {
		case "smc":
			reorder = true
		case "natural", "cache":
		default:
			fatalf("unknown mode %q for trace replay (want smc or natural)", *mode)
		}
		if _, err := workload.ReplayTrace(dev, workload.TraceOptions{
			Scheme: scheme, LineWords: 4, Reorder: reorder, Window: *fifo,
		}, accs); err != nil {
			fatalf("%v", err)
		}
		header = fmt.Sprintf("trace %s (%d accesses), %v, %s controller", name, len(accs), scheme, *mode)
	} else if *traceFile != "" {
		fh, err := os.Open(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		accs, err := workload.ParseTrace(fh)
		fh.Close()
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := workload.Replay(dev, workload.Config{Scheme: scheme, LineWords: 4}, accs); err != nil {
			fatalf("%v", err)
		}
		header = fmt.Sprintf("trace %s (%d accesses), %v", *traceFile, len(accs), scheme)
	} else {
		f, ok := stream.FactoryByName(*kernel)
		if !ok {
			fatalf("unknown kernel %q", *kernel)
		}
		bases, err := stream.Layout(scheme, cfg.Geometry, 4, f.Footprints(*n, 1), stream.Staggered)
		if err != nil {
			fatalf("%v", err)
		}
		k := f.Make(bases, *n, 1)
		switch strings.ToLower(*mode) {
		case "smc":
			_, err = smc.Run(dev, k, smc.Config{Scheme: scheme, LineWords: 4, FIFODepth: *fifo})
		case "natural", "cache":
			_, err = natorder.Run(dev, k, natorder.Config{Scheme: scheme, LineWords: 4})
		default:
			fatalf("unknown mode %q", *mode)
		}
		if err != nil {
			fatalf("%v", err)
		}
		header = fmt.Sprintf("%s, %d elements, %v, %s controller", *kernel, *n, scheme, *mode)
	}

	fmt.Printf("%s\n\n", header)
	fmt.Println(rec.Timeline(*scale))

	s := trace.Summarize(rec.Events)
	fmt.Printf("cycles=%d dataBusUtil=%.1f%% reads=%d writes=%d activates=%d precharges=%d\n",
		s.Cycles, 100*s.DataBusUtil, s.ReadPackets, s.WritePackets, s.Activates, s.Precharges)
	fmt.Printf("turnarounds=%d meanBurst=%.1f packets largestDataGap=%d cycles\n",
		s.Turnarounds, s.MeanBurstLen, s.LargestGap)

	if viols := trace.NewChecker(cfg).Check(rec.Events); len(viols) > 0 {
		fmt.Printf("\nPROTOCOL VIOLATIONS (%d):\n", len(viols))
		for _, v := range viols {
			fmt.Println("  ", v)
		}
		os.Exit(1)
	}
	fmt.Println("protocol check: clean (tRR/tRC/tRP/tRAS/tRCD/tRW and bus occupancy all respected)")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdtrace: "+format+"\n", args...)
	os.Exit(1)
}
