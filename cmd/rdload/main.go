// Command rdload is the load-test harness for the serving stack: N
// concurrent clients drive a scenario mix — the paper's Figure-7 grid, a
// cache-hot subset replayed to measure the hit path, and fault-injection
// sweeps — against an rdserved instance, then report latency percentiles,
// throughput, and cache effectiveness.
//
//	rdload -clients 8 -duration 30s                 # spawn a server in-process
//	rdload -addr http://localhost:8347 -duration 1m # drive a running server
//
// The run ends with two health gates: the summary must show non-zero
// throughput, and the server's GET /metrics body must be a valid
// Prometheus text exposition (checked by obs.CheckExposition). Either
// failing exits non-zero, which is what CI's load-smoke step relies on.
//
// The summary is written as JSON (-out, default BENCH_service_load.json)
// and mirrored to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/experiments"
	"rdramstream/internal/fault"
	"rdramstream/internal/obs"
	"rdramstream/internal/service"
	"rdramstream/internal/service/client"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
	"rdramstream/internal/version"
)

// LatencySummary holds request-latency percentiles in microseconds.
//
// rdlint:wire — part of the BENCH_service_load.json schema; field names
// are pinned (CI's load-smoke step asserts on them with jq).
type LatencySummary struct {
	P50  int64   `json:"p50"`
	P95  int64   `json:"p95"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

// Summary is the BENCH_service_load.json wire format: one load run's
// aggregate results plus the server's own metrics snapshot.
//
// rdlint:wire — consumed by CI's load-smoke jq assertions and by
// benchmark tooling; field names are pinned.
type Summary struct {
	Version     string  `json:"version"`
	Addr        string  `json:"addr"`
	Spawned     bool    `json:"spawned"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	// Requests counts HTTP round trips; Scenarios counts simulated
	// scenarios (a sweep request carries several).
	Requests      int64          `json:"requests"`
	Scenarios     int64          `json:"scenarios"`
	Sweeps        int64          `json:"sweeps"`
	Errors        int64          `json:"errors"`
	ErrorRate     float64        `json:"error_rate"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       LatencySummary `json:"latency_us"`
	// ClientCachedRate is the fraction of simulate responses flagged
	// Cached; CacheHitRate is the server-side hits/(hits+misses+dedups).
	ClientCachedRate float64 `json:"client_cached_rate"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	// MetricsExpositionValid reports whether GET /metrics parsed as a
	// valid Prometheus text exposition of ExpositionSamples series.
	MetricsExpositionValid   bool             `json:"metrics_exposition_valid"`
	MetricsExpositionSamples int              `json:"metrics_exposition_samples"`
	Server                   *service.Metrics `json:"server,omitempty"`
}

// config is one rdload invocation.
type config struct {
	addr     string
	clients  int
	duration time.Duration
	out      string
	seed     int64
	workers  int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "server base URL (empty = spawn one in-process)")
	flag.IntVar(&cfg.clients, "clients", 4, "concurrent client goroutines")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "load duration")
	flag.StringVar(&cfg.out, "out", "BENCH_service_load.json", "summary output path")
	flag.Int64Var(&cfg.seed, "seed", 1, "base seed for the per-client scenario draws")
	flag.IntVar(&cfg.workers, "workers", 0, "spawned server's worker pool (0 = GOMAXPROCS)")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}
	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdload: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
	if sum.Requests == 0 || sum.ThroughputRPS <= 0 {
		fmt.Fprintln(os.Stderr, "rdload: FAIL: zero throughput")
		os.Exit(1)
	}
	if !sum.MetricsExpositionValid {
		fmt.Fprintln(os.Stderr, "rdload: FAIL: /metrics is not a valid Prometheus exposition")
		os.Exit(1)
	}
}

// mix builds the scenario population. The bulk is the paper's Figure-7
// grid (kernels x schemes x lengths, at three FIFO depths); hot is the
// subset replayed with high probability so the run exercises the cache
// hit path; the tail adds fault-injection scenarios so faulted simulation
// cost shows up in the latency distribution.
func mix(seed int64) (all, hot []sim.Scenario) {
	depths := []int{8, 32, 128}
	for _, kernel := range experiments.Figure7Kernels {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, n := range experiments.Figure7Lengths {
				for _, depth := range depths {
					all = append(all, sim.Scenario{
						KernelName: kernel, N: n, Scheme: scheme, Mode: sim.SMC,
						FIFODepth: depth, Placement: stream.Staggered, SkipVerify: true,
					})
				}
			}
		}
	}
	for severity := 1; severity <= 3; severity++ {
		fc := fault.Scaled(seed, severity)
		all = append(all, sim.Scenario{
			KernelName: "daxpy", N: 128, Scheme: addrmap.PI, Mode: sim.SMC,
			FIFODepth: 32, Placement: stream.Staggered, SkipVerify: true, Fault: &fc,
		})
	}
	// The hot set: one scenario per kernel, small and fixed, so repeats
	// accumulate quickly across all clients.
	for _, kernel := range experiments.Figure7Kernels {
		hot = append(hot, sim.Scenario{
			KernelName: kernel, N: 128, Scheme: addrmap.PI, Mode: sim.SMC,
			FIFODepth: 32, Placement: stream.Staggered, SkipVerify: true,
		})
	}
	return all, hot
}

// clientStats is one load goroutine's tally, merged after the run.
type clientStats struct {
	requests, scenarios, sweeps, errors int64
	cachedScenarios                     int64
	latenciesUS                         []int64
}

func run(cfg config) (Summary, error) {
	if cfg.clients <= 0 {
		cfg.clients = 1
	}
	sum := Summary{
		Version: version.Stamp(),
		Clients: cfg.clients,
	}
	base := cfg.addr
	if base == "" {
		spawned, shutdown, err := spawnServer(cfg.workers)
		if err != nil {
			return sum, err
		}
		defer shutdown()
		base = spawned
		sum.Spawned = true
	}
	sum.Addr = base
	cl := client.New(base)
	if _, err := cl.Health(context.Background()); err != nil {
		return sum, fmt.Errorf("server not healthy at %s: %w", base, err)
	}

	all, hot := mix(cfg.seed)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	start := time.Now()

	stats := make([]clientStats, cfg.clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			drive(ctx, cl, rand.New(rand.NewSource(cfg.seed+int64(i))), all, hot, &stats[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []int64
	var cached int64
	for _, st := range stats {
		sum.Requests += st.requests
		sum.Scenarios += st.scenarios
		sum.Sweeps += st.sweeps
		sum.Errors += st.errors
		cached += st.cachedScenarios
		lats = append(lats, st.latenciesUS...)
	}
	sum.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		sum.ThroughputRPS = float64(sum.Requests) / elapsed.Seconds()
	}
	if sum.Requests > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(sum.Requests)
	}
	if sum.Scenarios > 0 {
		sum.ClientCachedRate = float64(cached) / float64(sum.Scenarios)
	}
	sum.Latency = summarizeLatencies(lats)

	m, err := cl.Metrics(context.Background())
	if err != nil {
		return sum, fmt.Errorf("fetching /metrics?format=json: %w", err)
	}
	sum.Server = &m
	if classified := m.Cache.Hits + m.Cache.Misses + m.Cache.Dedups; classified > 0 {
		sum.CacheHitRate = float64(m.Cache.Hits) / float64(classified)
	}
	text, err := cl.MetricsText(context.Background())
	if err != nil {
		return sum, fmt.Errorf("fetching /metrics: %w", err)
	}
	n, err := obs.CheckExposition(text)
	sum.MetricsExpositionValid = err == nil
	sum.MetricsExpositionSamples = n
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdload: exposition check: %v\n", err)
	}

	if cfg.out != "" {
		data, merr := json.MarshalIndent(sum, "", "  ")
		if merr != nil {
			return sum, merr
		}
		if werr := os.WriteFile(cfg.out, append(data, '\n'), 0o644); werr != nil {
			return sum, werr
		}
	}
	return sum, nil
}

// drive is one client's loop: mostly single simulates drawn 60% from the
// hot set, with a 5% chance of a small sweep, until the context expires.
func drive(ctx context.Context, cl *client.Client, rng *rand.Rand, all, hot []sim.Scenario, st *clientStats) {
	pick := func() sim.Scenario {
		if rng.Float64() < 0.6 {
			return hot[rng.Intn(len(hot))]
		}
		return all[rng.Intn(len(all))]
	}
	for ctx.Err() == nil {
		reqStart := time.Now()
		if rng.Float64() < 0.05 {
			scs := make([]sim.Scenario, 2+rng.Intn(3))
			for i := range scs {
				scs[i] = pick()
			}
			lines := int64(0)
			summary, err := cl.Sweep(ctx, scs, func(l service.SweepLine) error {
				if l.Cached {
					st.cachedScenarios++
				}
				lines++
				return nil
			})
			if ctx.Err() != nil {
				return // the deadline cut the request short; not an error
			}
			st.requests++
			st.sweeps++
			st.scenarios += lines
			if err != nil || summary.Failed > 0 {
				st.errors++
				continue
			}
		} else {
			resp, err := cl.Simulate(ctx, pick())
			if ctx.Err() != nil {
				return
			}
			st.requests++
			st.scenarios++
			if err != nil {
				st.errors++
				continue
			}
			if resp.Cached {
				st.cachedScenarios++
			}
		}
		st.latenciesUS = append(st.latenciesUS, time.Since(reqStart).Microseconds())
	}
}

// summarizeLatencies reduces a latency sample to percentiles.
func summarizeLatencies(lats []int64) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total int64
	for _, v := range lats {
		total += v
	}
	return LatencySummary{
		P50:  percentile(lats, 50),
		P95:  percentile(lats, 95),
		P99:  percentile(lats, 99),
		Max:  lats[len(lats)-1],
		Mean: float64(total) / float64(len(lats)),
	}
}

// percentile reads the p-th percentile (nearest-rank) from a sorted
// sample.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// spawnServer starts an in-process rdserved-equivalent on a loopback
// port, so `rdload` with no -addr is a one-command benchmark.
func spawnServer(workers int) (baseURL string, shutdown func(), err error) {
	svc, err := service.New(service.Config{Workers: workers})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	server := &http.Server{Handler: service.NewHandler(svc)}
	go server.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		server.Shutdown(ctx)
		svc.Close(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
