// Command rdload is the load-test harness for the serving stack: N
// concurrent clients drive a scenario mix — the paper's Figure-7 grid, a
// cache-hot subset replayed to measure the hit path, and fault-injection
// sweeps — against an rdserved instance, then report latency percentiles,
// throughput, and cache effectiveness.
//
//	rdload -clients 8 -duration 30s                 # spawn a server in-process
//	rdload -addr http://localhost:8347 -duration 1m # drive a running server
//	rdload -fleet 3 -duration 30s                   # spawn 3 workers + a coordinator
//	rdload -fleet 3 -chaos -duration 30s            # ...and kill workers mid-run
//
// Fleet mode (-fleet N) spawns N in-process rdserved workers plus a
// fabric coordinator and drives the coordinator, so the whole
// distributed path — sharding, streaming merge, failover — is under
// load. With -chaos, workers are hard-killed mid-run on a schedule
// derived from -chaos-seed; the run then verifies a fixed sweep through
// the surviving fabric against local execution and fails if the merged
// results diverge.
//
// The run ends with two health gates: the summary must show non-zero
// throughput, and the server's GET /metrics body must be a valid
// Prometheus text exposition (checked by obs.CheckExposition). Either
// failing exits non-zero, which is what CI's load-smoke step relies on.
//
// The summary is written as JSON (-out, default BENCH_service_load.json)
// and mirrored to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/experiments"
	"rdramstream/internal/fabric"
	"rdramstream/internal/fault"
	"rdramstream/internal/obs"
	"rdramstream/internal/service"
	"rdramstream/internal/service/client"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
	"rdramstream/internal/tracegen"
	"rdramstream/internal/version"
	"rdramstream/internal/workload"
)

// LatencySummary holds request-latency percentiles in microseconds.
//
// rdlint:wire — part of the BENCH_service_load.json schema; field names
// are pinned (CI's load-smoke step asserts on them with jq).
type LatencySummary struct {
	P50  int64   `json:"p50"`
	P95  int64   `json:"p95"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

// Summary is the BENCH_service_load.json wire format: one load run's
// aggregate results plus the server's own metrics snapshot.
//
// rdlint:wire — consumed by CI's load-smoke jq assertions and by
// benchmark tooling; field names are pinned.
type Summary struct {
	Version     string  `json:"version"`
	Addr        string  `json:"addr"`
	Spawned     bool    `json:"spawned"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	// Requests counts HTTP round trips; Scenarios counts simulated
	// scenarios (a sweep request carries several).
	Requests      int64          `json:"requests"`
	Scenarios     int64          `json:"scenarios"`
	Sweeps        int64          `json:"sweeps"`
	Errors        int64          `json:"errors"`
	ErrorRate     float64        `json:"error_rate"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       LatencySummary `json:"latency_us"`
	// ClientCachedRate is the fraction of simulate responses flagged
	// Cached; CacheHitRate is the server-side hits/(hits+misses+dedups).
	ClientCachedRate float64 `json:"client_cached_rate"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	// MetricsExpositionValid reports whether GET /metrics parsed as a
	// valid Prometheus text exposition of ExpositionSamples series.
	MetricsExpositionValid   bool             `json:"metrics_exposition_valid"`
	MetricsExpositionSamples int              `json:"metrics_exposition_samples"`
	Server                   *service.Metrics `json:"server,omitempty"`
	Fabric                   *FabricSummary   `json:"fabric,omitempty"`
	Trace                    *TraceSummary    `json:"trace,omitempty"`
}

// TraceSummary is the -trace-mix section of BENCH_service_load.json:
// the POST /v1/trace slice of the load, reported separately because a
// trace request ships its whole NDJSON body per call and so has a very
// different latency profile from a scenario POST.
//
// rdlint:wire — part of the BENCH_service_load.json schema; field names
// are pinned (CI's load-smoke jq assertions use them).
type TraceSummary struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// CachedRate is the fraction of trace responses flagged Cached —
	// re-POSTs of an identical trace deduplicating on its content digest.
	CachedRate float64        `json:"cached_rate"`
	Latency    LatencySummary `json:"latency_us"`
}

// FabricSummary is the fleet-mode section of BENCH_service_load.json:
// the coordinator's failover counters plus the end-of-run correctness
// verdict.
//
// rdlint:wire — part of the BENCH_service_load.json schema; field names
// are pinned (CI's fabric assertions use them with jq).
type FabricSummary struct {
	Fleet int `json:"fleet"`
	// ChaosKills is how many workers the chaos schedule hard-killed.
	ChaosKills      int   `json:"chaos_kills"`
	Reshards        int64 `json:"reshards"`
	Shed            int64 `json:"shed"`
	WorkerFailures  int64 `json:"worker_failures"`
	RemoteScenarios int64 `json:"remote_scenarios"`
	LocalScenarios  int64 `json:"local_scenarios"`
	PeerHits        int64 `json:"peer_hits"`
	// Verified reports the end-of-run oracle: a fixed sweep through the
	// (possibly decimated) fabric byte-matched local execution.
	Verified bool `json:"verified"`
}

// config is one rdload invocation.
type config struct {
	addr      string
	clients   int
	duration  time.Duration
	out       string
	seed      int64
	workers   int
	fleet     int
	chaos     bool
	chaosSeed int64
	traceMix  float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "server base URL (empty = spawn one in-process)")
	flag.IntVar(&cfg.clients, "clients", 4, "concurrent client goroutines")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "load duration")
	flag.StringVar(&cfg.out, "out", "BENCH_service_load.json", "summary output path")
	flag.Int64Var(&cfg.seed, "seed", 1, "base seed for the per-client scenario draws")
	flag.IntVar(&cfg.workers, "workers", 0, "spawned server's worker pool (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.fleet, "fleet", 0, "spawn this many in-process fabric workers plus a coordinator and drive the coordinator")
	flag.BoolVar(&cfg.chaos, "chaos", false, "fleet mode: hard-kill workers mid-run on a seeded schedule")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 1, "seed for the chaos kill schedule")
	flag.Float64Var(&cfg.traceMix, "trace-mix", 0, "fraction of requests that POST a generated NDJSON trace to /v1/trace (0..1)")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}
	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdload: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
	if sum.Requests == 0 || sum.ThroughputRPS <= 0 {
		fmt.Fprintln(os.Stderr, "rdload: FAIL: zero throughput")
		os.Exit(1)
	}
	if !sum.MetricsExpositionValid {
		fmt.Fprintln(os.Stderr, "rdload: FAIL: /metrics is not a valid Prometheus exposition")
		os.Exit(1)
	}
	if sum.Fabric != nil && !sum.Fabric.Verified {
		fmt.Fprintln(os.Stderr, "rdload: FAIL: fabric results diverged from local execution")
		os.Exit(1)
	}
}

// mix builds the scenario population. The bulk is the paper's Figure-7
// grid (kernels x schemes x lengths, at three FIFO depths); hot is the
// subset replayed with high probability so the run exercises the cache
// hit path; the tail adds fault-injection scenarios so faulted simulation
// cost shows up in the latency distribution.
func mix(seed int64) (all, hot []sim.Scenario) {
	depths := []int{8, 32, 128}
	for _, kernel := range experiments.Figure7Kernels {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, n := range experiments.Figure7Lengths {
				for _, depth := range depths {
					all = append(all, sim.Scenario{
						KernelName: kernel, N: n, Scheme: scheme, Mode: sim.SMC,
						FIFODepth: depth, Placement: stream.Staggered, SkipVerify: true,
					})
				}
			}
		}
	}
	for severity := 1; severity <= 3; severity++ {
		fc := fault.Scaled(seed, severity)
		all = append(all, sim.Scenario{
			KernelName: "daxpy", N: 128, Scheme: addrmap.PI, Mode: sim.SMC,
			FIFODepth: 32, Placement: stream.Staggered, SkipVerify: true, Fault: &fc,
		})
	}
	// The hot set: one scenario per kernel, small and fixed, so repeats
	// accumulate quickly across all clients.
	for _, kernel := range experiments.Figure7Kernels {
		hot = append(hot, sim.Scenario{
			KernelName: kernel, N: 128, Scheme: addrmap.PI, Mode: sim.SMC,
			FIFODepth: 32, Placement: stream.Staggered, SkipVerify: true,
		})
	}
	return all, hot
}

// traceJob is one pre-generated trace the -trace-mix slice POSTs: the
// materialized accesses plus the scenario to replay them under. The
// population is fixed per run, so repeats hit the content-digest cache.
type traceJob struct {
	name string
	sc   sim.Scenario
	accs []workload.TraceAccess
}

// traceJobs builds the -trace-mix population: one trace per generator
// pattern, seeded, modest sizes so a single replay stays fast.
func traceJobs(seed int64) ([]traceJob, error) {
	specs := []string{
		"llm-kvcache:n=8192,ctxrows=32",
		"hot-row:n=4096,footprint=65536",
		"strided:n=4096,stride=16",
		"chase:n=2048,footprint=65536",
	}
	jobs := make([]traceJob, 0, len(specs))
	for _, s := range specs {
		prog, err := tracegen.ParseProgram(s, seed)
		if err != nil {
			return nil, fmt.Errorf("trace mix %q: %w", s, err)
		}
		accs, err := prog.Generate()
		if err != nil {
			return nil, fmt.Errorf("trace mix %q: %w", s, err)
		}
		jobs = append(jobs, traceJob{
			name: prog.Name,
			sc: sim.Scenario{
				Scheme: addrmap.PI, Mode: sim.SMC, FIFODepth: 32,
			},
			accs: accs,
		})
	}
	return jobs, nil
}

// clientStats is one load goroutine's tally, merged after the run.
type clientStats struct {
	requests, scenarios, sweeps, errors int64
	cachedScenarios                     int64
	latenciesUS                         []int64
	traceRequests, traceErrors          int64
	traceCached                         int64
	traceLatenciesUS                    []int64
}

func run(cfg config) (Summary, error) {
	if cfg.clients <= 0 {
		cfg.clients = 1
	}
	sum := Summary{
		Version: version.Stamp(),
		Clients: cfg.clients,
	}
	base := cfg.addr
	var flt *fleetHarness
	if base == "" {
		if cfg.fleet > 0 {
			f, err := spawnFleet(cfg.workers, cfg.fleet)
			if err != nil {
				return sum, err
			}
			defer f.shutdown()
			flt = f
			base = f.baseURL
			sum.Spawned = true
		} else {
			spawned, shutdown, err := spawnServer(cfg.workers)
			if err != nil {
				return sum, err
			}
			defer shutdown()
			base = spawned
			sum.Spawned = true
		}
	}
	sum.Addr = base
	cl := client.New(base)
	if _, err := cl.Health(context.Background()); err != nil {
		return sum, fmt.Errorf("server not healthy at %s: %w", base, err)
	}

	all, hot := mix(cfg.seed)
	var traces []traceJob
	if cfg.traceMix > 0 {
		if cfg.traceMix > 1 {
			cfg.traceMix = 1
		}
		t, err := traceJobs(cfg.seed)
		if err != nil {
			return sum, err
		}
		traces = t
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	start := time.Now()

	stats := make([]clientStats, cfg.clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			drive(ctx, cl, rand.New(rand.NewSource(cfg.seed+int64(i))), all, hot, traces, cfg.traceMix, &stats[i])
		}(i)
	}
	kills := 0
	if flt != nil && cfg.chaos {
		kills = flt.runChaos(ctx, cfg.chaosSeed, cfg.duration)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats, traceLats []int64
	var cached int64
	var tsum TraceSummary
	var traceCached int64
	for _, st := range stats {
		sum.Requests += st.requests
		sum.Scenarios += st.scenarios
		sum.Sweeps += st.sweeps
		sum.Errors += st.errors
		cached += st.cachedScenarios
		lats = append(lats, st.latenciesUS...)
		tsum.Requests += st.traceRequests
		tsum.Errors += st.traceErrors
		traceCached += st.traceCached
		traceLats = append(traceLats, st.traceLatenciesUS...)
	}
	if cfg.traceMix > 0 {
		if tsum.Requests > 0 {
			tsum.CachedRate = float64(traceCached) / float64(tsum.Requests)
		}
		tsum.Latency = summarizeLatencies(traceLats)
		sum.Trace = &tsum
	}
	sum.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		sum.ThroughputRPS = float64(sum.Requests) / elapsed.Seconds()
	}
	if sum.Requests > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(sum.Requests)
	}
	if sum.Scenarios > 0 {
		sum.ClientCachedRate = float64(cached) / float64(sum.Scenarios)
	}
	sum.Latency = summarizeLatencies(lats)

	m, err := cl.Metrics(context.Background())
	if err != nil {
		return sum, fmt.Errorf("fetching /metrics?format=json: %w", err)
	}
	sum.Server = &m
	if classified := m.Cache.Hits + m.Cache.Misses + m.Cache.Dedups; classified > 0 {
		sum.CacheHitRate = float64(m.Cache.Hits) / float64(classified)
	}
	text, err := cl.MetricsText(context.Background())
	if err != nil {
		return sum, fmt.Errorf("fetching /metrics: %w", err)
	}
	n, err := obs.CheckExposition(text)
	sum.MetricsExpositionValid = err == nil
	sum.MetricsExpositionSamples = n
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdload: exposition check: %v\n", err)
	}

	if flt != nil {
		fs, err := flt.summarize(cl, cfg, kills, all)
		if err != nil {
			return sum, err
		}
		sum.Fabric = &fs
	}

	if cfg.out != "" {
		data, merr := json.MarshalIndent(sum, "", "  ")
		if merr != nil {
			return sum, merr
		}
		if werr := os.WriteFile(cfg.out, append(data, '\n'), 0o644); werr != nil {
			return sum, werr
		}
	}
	return sum, nil
}

// drive is one client's loop: mostly single simulates drawn 60% from the
// hot set, with a 5% chance of a small sweep and a traceMix chance of a
// trace POST, until the context expires.
func drive(ctx context.Context, cl *client.Client, rng *rand.Rand, all, hot []sim.Scenario, traces []traceJob, traceMix float64, st *clientStats) {
	pick := func() sim.Scenario {
		if rng.Float64() < 0.6 {
			return hot[rng.Intn(len(hot))]
		}
		return all[rng.Intn(len(all))]
	}
	for ctx.Err() == nil {
		reqStart := time.Now()
		if len(traces) > 0 && rng.Float64() < traceMix {
			t := traces[rng.Intn(len(traces))]
			resp, err := cl.Trace(ctx, t.sc, t.name, t.accs)
			if ctx.Err() != nil {
				return
			}
			st.requests++
			st.traceRequests++
			st.scenarios++
			if err != nil {
				st.errors++
				st.traceErrors++
				continue
			}
			if resp.Cached {
				st.cachedScenarios++
				st.traceCached++
			}
			lat := time.Since(reqStart).Microseconds()
			st.latenciesUS = append(st.latenciesUS, lat)
			st.traceLatenciesUS = append(st.traceLatenciesUS, lat)
			continue
		}
		if rng.Float64() < 0.05 {
			scs := make([]sim.Scenario, 2+rng.Intn(3))
			for i := range scs {
				scs[i] = pick()
			}
			lines := int64(0)
			summary, err := cl.Sweep(ctx, scs, func(l service.SweepLine) error {
				if l.Cached {
					st.cachedScenarios++
				}
				lines++
				return nil
			})
			if ctx.Err() != nil {
				return // the deadline cut the request short; not an error
			}
			st.requests++
			st.sweeps++
			st.scenarios += lines
			if err != nil || summary.Failed > 0 {
				st.errors++
				continue
			}
		} else {
			resp, err := cl.Simulate(ctx, pick())
			if ctx.Err() != nil {
				return
			}
			st.requests++
			st.scenarios++
			if err != nil {
				st.errors++
				continue
			}
			if resp.Cached {
				st.cachedScenarios++
			}
		}
		st.latenciesUS = append(st.latenciesUS, time.Since(reqStart).Microseconds())
	}
}

// summarizeLatencies reduces a latency sample to percentiles.
func summarizeLatencies(lats []int64) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total int64
	for _, v := range lats {
		total += v
	}
	return LatencySummary{
		P50:  percentile(lats, 50),
		P95:  percentile(lats, 95),
		P99:  percentile(lats, 99),
		Max:  lats[len(lats)-1],
		Mean: float64(total) / float64(len(lats)),
	}
}

// percentile reads the p-th percentile (nearest-rank) from a sorted
// sample.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// fleetHarness is fleet mode's in-process deployment: one coordinator
// (the driven endpoint) over N worker servers, each individually
// hard-killable.
type fleetHarness struct {
	baseURL string
	co      *fabric.Coordinator
	kill    []func() // hard-kill worker i (abrupt close, like SIGKILL)
	closers []func()
}

func (f *fleetHarness) shutdown() {
	f.co.Close()
	for _, c := range f.closers {
		c()
	}
}

// runChaos hard-kills up to half the fleet (at least one worker),
// spread across the load window, in an order drawn from the seed. It
// returns how many workers it killed.
func (f *fleetHarness) runChaos(ctx context.Context, seed int64, duration time.Duration) int {
	n := len(f.kill)/2 + 1
	if n > len(f.kill) {
		n = len(f.kill)
	}
	order := rand.New(rand.NewSource(seed)).Perm(len(f.kill))
	step := duration / time.Duration(n+1)
	killed := 0
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return killed
		case <-time.After(step):
		}
		victim := order[i]
		fmt.Fprintf(os.Stderr, "rdload: chaos: killing worker %d\n", victim)
		f.kill[victim]()
		killed++
	}
	return killed
}

// summarize builds the fabric section: coordinator counters plus the
// end-of-run oracle — a fixed sweep through whatever is left of the
// fleet must byte-match local execution.
func (f *fleetHarness) summarize(cl *client.Client, cfg config, kills int, all []sim.Scenario) (FabricSummary, error) {
	st := f.co.Stats()
	fs := FabricSummary{
		Fleet:           cfg.fleet,
		ChaosKills:      kills,
		Reshards:        st.Reshards,
		Shed:            st.Shed,
		WorkerFailures:  st.WorkerFailures,
		RemoteScenarios: st.RemoteScenarios,
		LocalScenarios:  st.LocalScenarios,
		PeerHits:        st.PeerHits,
	}
	verify := all
	if len(verify) > 12 {
		verify = verify[:12]
	}
	vctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := cl.SweepOutcomes(vctx, verify)
	if err != nil {
		return fs, fmt.Errorf("fabric verification sweep: %w", err)
	}
	want, err := sim.RunAll(verify, cfg.workers)
	if err != nil {
		return fs, fmt.Errorf("local verification run: %w", err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		return fs, err
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		return fs, err
	}
	fs.Verified = string(gotJSON) == string(wantJSON)
	return fs, nil
}

// spawnFleet starts fleet mode's servers: N workers plus the
// coordinator, all on loopback ports, the workers registered directly.
func spawnFleet(workers, fleet int) (*fleetHarness, error) {
	f := &fleetHarness{}
	svc, err := service.New(service.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	co, err := fabric.NewCoordinator(fabric.Config{
		Local:             svc,
		HeartbeatInterval: 250 * time.Millisecond,
		AttemptTimeout:    30 * time.Second,
		RetryBackoff:      25 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	f.co = co
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	server := &http.Server{Handler: fabric.Handler(co, service.NewHandler(svc))}
	go server.Serve(ln)
	f.baseURL = "http://" + ln.Addr().String()
	f.closers = append(f.closers, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		server.Shutdown(ctx)
		svc.Close(ctx)
	})
	for i := 0; i < fleet; i++ {
		wsvc, err := service.New(service.Config{Workers: workers})
		if err != nil {
			f.shutdown()
			return nil, err
		}
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.shutdown()
			return nil, err
		}
		wserver := &http.Server{Handler: service.NewHandler(wsvc)}
		go wserver.Serve(wln)
		addr := "http://" + wln.Addr().String()
		if err := co.Register(addr); err != nil {
			f.shutdown()
			return nil, err
		}
		f.kill = append(f.kill, func() { wserver.Close() })
		f.closers = append(f.closers, func() {
			wserver.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			wsvc.Close(ctx)
		})
	}
	return f, nil
}

// spawnServer starts an in-process rdserved-equivalent on a loopback
// port, so `rdload` with no -addr is a one-command benchmark.
func spawnServer(workers int) (baseURL string, shutdown func(), err error) {
	svc, err := service.New(service.Config{Workers: workers})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	server := &http.Server{Handler: service.NewHandler(svc)}
	go server.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		server.Shutdown(ctx)
		svc.Close(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
