package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestMixValidates(t *testing.T) {
	all, hot := mix(1)
	if len(all) < 40 {
		t.Fatalf("mix has %d scenarios; the Figure-7 grid alone is 48", len(all))
	}
	if len(hot) == 0 {
		t.Fatal("hot set is empty")
	}
	faulted := 0
	for i, sc := range all {
		if err := sc.Validate(); err != nil {
			t.Errorf("mix scenario %d invalid: %v", i, err)
		}
		if sc.Fault != nil && sc.Fault.Active() {
			faulted++
		}
	}
	for i, sc := range hot {
		if err := sc.Validate(); err != nil {
			t.Errorf("hot scenario %d invalid: %v", i, err)
		}
	}
	if faulted == 0 {
		t.Error("mix carries no active fault scenarios")
	}
}

func TestPercentiles(t *testing.T) {
	lats := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	s := summarizeLatencies(lats)
	if s.P50 != 50 || s.P95 != 100 || s.P99 != 100 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 55 {
		t.Errorf("mean = %v, want 55", s.Mean)
	}
	if got := percentile([]int64{7}, 99); got != 7 {
		t.Errorf("single-sample p99 = %d", got)
	}
	if got := (LatencySummary{}); summarizeLatencies(nil) != got {
		t.Error("empty sample did not summarize to zero")
	}
}

// TestRunEndToEnd spawns the in-process server and drives a short load
// through the real client, then checks the summary invariants and the
// written BENCH file.
func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	sum, err := run(config{
		clients:  2,
		duration: 1500 * time.Millisecond,
		out:      out,
		seed:     1,
		workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Spawned || sum.Addr == "" {
		t.Errorf("summary did not record the spawned server: %+v", sum)
	}
	if sum.Requests == 0 || sum.ThroughputRPS <= 0 {
		t.Errorf("no throughput: %+v", sum)
	}
	if sum.Scenarios < sum.Requests {
		t.Errorf("scenarios %d < requests %d", sum.Scenarios, sum.Requests)
	}
	if sum.Errors != 0 {
		t.Errorf("load run produced %d errors", sum.Errors)
	}
	if sum.Latency.P50 <= 0 || sum.Latency.P99 < sum.Latency.P50 {
		t.Errorf("latency summary inconsistent: %+v", sum.Latency)
	}
	if !sum.MetricsExpositionValid || sum.MetricsExpositionSamples == 0 {
		t.Errorf("exposition check failed: valid=%v samples=%d",
			sum.MetricsExpositionValid, sum.MetricsExpositionSamples)
	}
	if sum.Server == nil || sum.Server.Workers.TasksRun == 0 {
		t.Errorf("server metrics missing from summary: %+v", sum.Server)
	}
	// The hot set repeats across two clients, so the cache must have hits.
	if sum.CacheHitRate == 0 && sum.ClientCachedRate == 0 {
		t.Error("no cache hits despite a 60%-hot mix")
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Summary
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("BENCH file does not decode: %v", err)
	}
	if decoded.Requests != sum.Requests || decoded.Version != sum.Version {
		t.Errorf("BENCH file disagrees with returned summary")
	}
}
