// Command rdserved serves the simulator over HTTP: a batched job queue in
// front of the engine worker pool, with a content-addressed result cache
// so identical scenarios — across requests, clients, and restarts (with
// -cache-dir) — simulate once.
//
//	rdserved -addr :8347 -workers 8 -cache-entries 4096 -cache-dir /var/cache/rdramstream
//
// Distributed operation (see docs/SERVICE.md, "Distributed operation"):
//
//	rdserved -addr :8347 -fabric                      # coordinator
//	rdserved -addr :8348 -coordinator http://host:8347  # worker
//
// A coordinator shards sweeps across registered workers by cache content
// key, re-shards around failures, and falls back to local execution when
// the fleet is empty — it is a strict superset of a plain rdserved. A
// worker is a plain rdserved that periodically registers its advertised
// URL with the coordinator.
//
// API (see docs/SERVICE.md and docs/OBSERVABILITY.md):
//
//	POST /v1/simulate      one scenario (sim.Scenario JSON), synchronous
//	POST /v1/sweep         {"scenarios":[...]}, NDJSON stream in input order
//	GET  /v1/jobs/{id}     job status
//	GET  /v1/cache/{key}   result-cache peek by content key (peer tier)
//	POST /v1/fabric/register  worker registration (coordinator only)
//	GET  /v1/fabric/workers   fleet health + stats (coordinator only)
//	GET  /v1/requests/{id} one request trace (per-stage spans)
//	GET  /debug/requests   recent traces (?format=json|jsonl|chrome)
//	GET  /healthz          liveness + version stamp
//	GET  /metrics          Prometheus text exposition; ?format=json for
//	                       the cache/queue/worker/stall JSON snapshot
//	GET  /debug/pprof/     runtime profiles (only with -pprof)
//
// Shutdown: SIGINT/SIGTERM stops accepting connections, drains the job
// queue (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdramstream/internal/fabric"
	"rdramstream/internal/obs"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/service"
	"rdramstream/internal/service/client"
	"rdramstream/internal/version"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued scenarios across all jobs")
	batchSize := flag.Int("batch", 32, "max scenarios coalesced into one worker-pool batch")
	cacheEntries := flag.Int("cache-entries", 1024, "in-memory result-cache capacity (entries)")
	cacheDir := flag.String("cache-dir", "", "on-disk result store directory (empty = memory only)")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request simulation deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	traceRing := flag.Int("trace-ring", obs.DefaultRingSize, "request traces kept for /debug/requests")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	fabricOn := flag.Bool("fabric", false, "run as a fabric coordinator: shard sweeps across registered workers")
	coordinator := flag.String("coordinator", "", "run as a fabric worker: register with this coordinator URL")
	advertise := flag.String("advertise", "", "base URL workers advertise to the coordinator (default derives from -addr)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "fabric heartbeat cadence (coordinator probes; worker re-registration)")
	fabricInflight := flag.Int("fabric-inflight", 32, "coordinator admission bound: max concurrent distributed sweeps")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}
	if *fabricOn && *coordinator != "" {
		fatalf("-fabric and -coordinator are mutually exclusive (a node is a coordinator or a worker)")
	}

	cache, err := resultcache.New(resultcache.Options{MaxEntries: *cacheEntries, Dir: *cacheDir})
	if err != nil {
		fatalf("%v", err)
	}
	svc, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		BatchSize:  *batchSize,
		Cache:      cache,
		Obs:        obs.NewObserver(obs.ObserverOptions{RingSize: *traceRing}),
	})
	if err != nil {
		fatalf("%v", err)
	}

	handler := service.NewHandlerWith(svc, service.HandlerOptions{PProf: *pprofOn})
	var co *fabric.Coordinator
	if *fabricOn {
		co, err = fabric.NewCoordinator(fabric.Config{
			Local:             svc,
			HeartbeatInterval: *heartbeat,
			MaxInFlightSweeps: *fabricInflight,
			AttemptTimeout:    *requestTimeout,
		})
		if err != nil {
			fatalf("%v", err)
		}
		handler = fabric.Handler(co, handler)
		fmt.Fprintln(os.Stderr, "rdserved: fabric coordinator enabled")
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           withDeadline(handler, *requestTimeout),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rdserved: %s\nrdserved: listening on %s\n", version.Stamp(), *addr)

	if *coordinator != "" {
		go registerLoop(ctx, *coordinator, advertiseURL(*advertise, *addr), *heartbeat)
	}

	select {
	case err := <-errCh:
		fatalf("%v", err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rdserved: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if co != nil {
		co.Close()
	}
	if err := server.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rdserved: http shutdown: %v\n", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "rdserved: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rdserved: bye")
}

// advertiseURL derives the URL a worker announces to its coordinator: an
// explicit -advertise wins; otherwise a ":port" listen address becomes
// "http://127.0.0.1:port" (the single-host default) and a host:port
// gains an http scheme.
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	if !strings.Contains(addr, "://") {
		return "http://" + addr
	}
	return addr
}

// registerLoop announces this worker to the coordinator on the heartbeat
// cadence until shutdown. Registration is idempotent and doubles as a
// worker-initiated liveness refresh, so a worker that restarts — or a
// coordinator that does — converges without operator action.
func registerLoop(ctx context.Context, coordinator, advertise string, every time.Duration) {
	if every <= 0 {
		every = 2 * time.Second
	}
	cl := client.New(coordinator)
	cl.Timeout = every
	registered := false // log only state transitions, not every beat
	first := true
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		if err := cl.RegisterWorker(ctx, advertise); err != nil {
			if registered || first {
				fmt.Fprintf(os.Stderr, "rdserved: fabric register (%s -> %s): %v (retrying every %s)\n",
					advertise, coordinator, err, every)
			}
			registered = false
		} else {
			if !registered {
				fmt.Fprintf(os.Stderr, "rdserved: fabric worker %s registered with %s\n", advertise, coordinator)
			}
			registered = true
		}
		first = false
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// withDeadline bounds every request's context. Unlike http.TimeoutHandler
// it never buffers the response, so the sweep endpoint's NDJSON stream
// still flushes line by line; a request past its deadline sees its
// context cancel, which fails queued-but-unstarted scenarios and ends the
// stream.
func withDeadline(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdserved: "+format+"\n", args...)
	os.Exit(1)
}
