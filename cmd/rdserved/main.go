// Command rdserved serves the simulator over HTTP: a batched job queue in
// front of the engine worker pool, with a content-addressed result cache
// so identical scenarios — across requests, clients, and restarts (with
// -cache-dir) — simulate once.
//
//	rdserved -addr :8347 -workers 8 -cache-entries 4096 -cache-dir /var/cache/rdramstream
//
// API (see docs/SERVICE.md and docs/OBSERVABILITY.md):
//
//	POST /v1/simulate      one scenario (sim.Scenario JSON), synchronous
//	POST /v1/sweep         {"scenarios":[...]}, NDJSON stream in input order
//	GET  /v1/jobs/{id}     job status
//	GET  /v1/requests/{id} one request trace (per-stage spans)
//	GET  /debug/requests   recent traces (?format=json|jsonl|chrome)
//	GET  /healthz          liveness + version stamp
//	GET  /metrics          Prometheus text exposition; ?format=json for
//	                       the cache/queue/worker/stall JSON snapshot
//	GET  /debug/pprof/     runtime profiles (only with -pprof)
//
// Shutdown: SIGINT/SIGTERM stops accepting connections, drains the job
// queue (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rdramstream/internal/obs"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/service"
	"rdramstream/internal/version"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued scenarios across all jobs")
	batchSize := flag.Int("batch", 32, "max scenarios coalesced into one worker-pool batch")
	cacheEntries := flag.Int("cache-entries", 1024, "in-memory result-cache capacity (entries)")
	cacheDir := flag.String("cache-dir", "", "on-disk result store directory (empty = memory only)")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request simulation deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	traceRing := flag.Int("trace-ring", obs.DefaultRingSize, "request traces kept for /debug/requests")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}

	cache, err := resultcache.New(resultcache.Options{MaxEntries: *cacheEntries, Dir: *cacheDir})
	if err != nil {
		fatalf("%v", err)
	}
	svc, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		BatchSize:  *batchSize,
		Cache:      cache,
		Obs:        obs.NewObserver(obs.ObserverOptions{RingSize: *traceRing}),
	})
	if err != nil {
		fatalf("%v", err)
	}

	handler := service.NewHandlerWith(svc, service.HandlerOptions{PProf: *pprofOn})
	server := &http.Server{
		Addr:              *addr,
		Handler:           withDeadline(handler, *requestTimeout),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rdserved: %s\nrdserved: listening on %s\n", version.Stamp(), *addr)

	select {
	case err := <-errCh:
		fatalf("%v", err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rdserved: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rdserved: http shutdown: %v\n", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "rdserved: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rdserved: bye")
}

// withDeadline bounds every request's context. Unlike http.TimeoutHandler
// it never buffers the response, so the sweep endpoint's NDJSON stream
// still flushes line by line; a request past its deadline sees its
// context cancel, which fails queued-but-unstarted scenarios and ends the
// stream.
func withDeadline(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdserved: "+format+"\n", args...)
	os.Exit(1)
}
