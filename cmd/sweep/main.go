// Command sweep runs free-form parameter sweeps over the simulator and
// emits CSV on stdout, for exploring the design space beyond the paper's
// figures (FIFO depth, stride, bank count, vector length).
//
// Examples:
//
//	sweep -var fifo -kernel vaxpy -n 1024          # FIFO depth sweep
//	sweep -var stride -kernel vaxpy -mode natural  # stride sweep
//	sweep -var banks -kernel daxpy -mode smc       # bank-count sweep
//	sweep -var length -kernel copy -mode smc       # vector-length sweep
//	sweep -faults 42,1,2,4,8 -kernel daxpy         # fault-degradation sweep
//	sweep -parallel 1                              # force a serial run
//	sweep -bench-out BENCH_parallel_sweep.json     # time serial vs parallel
//	sweep -server http://localhost:8347            # offload to a running rdserved
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rdramstream"
	"rdramstream/internal/experiments"
	"rdramstream/internal/obs"
	"rdramstream/internal/service/client"
	"rdramstream/internal/sim"
	"rdramstream/internal/version"
)

func main() {
	variable := flag.String("var", "fifo", "sweep variable: fifo, stride, banks, length, or pagesize")
	kernel := flag.String("kernel", "vaxpy", "benchmark kernel")
	n := flag.Int("n", 1024, "stream length (fixed unless -var length)")
	mode := flag.String("mode", "smc", "controller: smc or natural")
	fifo := flag.Int("fifo", 32, "FIFO depth (fixed unless -var fifo)")
	parallel := flag.Int("parallel", 0, "worker count for the sweep (0 = GOMAXPROCS, 1 = serial)")
	faults := flag.String("faults", "", `fault-degradation sweep "seed,severity[,severity...]": every controller and scheme under deterministic fault injection (overrides -var)`)
	traceGen := flag.String("trace-gen", "", "sweep a generated trace instead of a kernel: a program spec (e.g. \"llm-kvcache:n=16384\") or @file for an NDJSON trace")
	traceSeed := flag.Int64("trace-seed", 1, "trace generator seed (with -trace-gen)")
	benchOut := flag.String("bench-out", "", "time the sweep serial vs parallel and write a JSON report to this file")
	server := flag.String("server", "", "offload scenario execution to a running rdserved at this base URL (e.g. http://localhost:8347); repeated sweeps hit its result cache")
	showVersion := flag.Bool("version", false, "print the version stamp and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Stamp())
		return
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *faults != "" {
		faultSweep(*faults, *kernel, *n, *parallel, *server)
		return
	}

	base := rdramstream.Scenario{
		KernelName: *kernel,
		N:          *n,
		FIFODepth:  *fifo,
		Placement:  rdramstream.Staggered,
		SkipVerify: true,
		Device:     rdramstream.DefaultDevice(),
	}
	if strings.EqualFold(*mode, "natural") {
		base.Mode = rdramstream.NaturalOrder
	} else {
		base.Mode = rdramstream.SMC
	}
	if *traceGen != "" {
		switch strings.ToLower(*variable) {
		case "stride", "length":
			fmt.Fprintf(os.Stderr, "sweep: -var %s sweeps a kernel parameter; traces have no stride or length knob\n", *variable)
			os.Exit(1)
		}
		spec, _, err := rdramstream.TraceSpecFromArg(*traceGen, *traceSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		// Trace replay supersedes the kernel fields entirely.
		base.KernelName, base.N = "", 0
		base.Workload = spec
	}

	// Build the scenario list up front (two schemes per sweep point, in
	// output order), then run it on the worker pool: the CSV is identical
	// for any worker count.
	var scs []rdramstream.Scenario
	var values []int
	add := func(sc rdramstream.Scenario, x int) {
		for _, scheme := range []rdramstream.Interleave{rdramstream.CLI, rdramstream.PI} {
			sc.Scheme = scheme
			scs = append(scs, sc)
			values = append(values, x)
		}
	}
	switch strings.ToLower(*variable) {
	case "fifo":
		for _, f := range []int{8, 16, 32, 64, 128, 256} {
			sc := base
			sc.FIFODepth = f
			add(sc, f)
		}
	case "stride":
		for _, s := range []int64{1, 2, 4, 8, 16, 32} {
			sc := base
			sc.Stride = s
			add(sc, int(s))
		}
	case "banks":
		for _, b := range []int{2, 4, 8, 16, 32} {
			sc := base
			sc.Device.Geometry.Banks = b
			add(sc, b)
		}
	case "length":
		for _, l := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
			sc := base
			sc.N = l
			add(sc, l)
		}
	case "pagesize":
		for _, pw := range []int{32, 64, 128, 256, 512} {
			sc := base
			sc.Device.Geometry.PageWords = pw
			add(sc, pw)
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown variable %q\n", *variable)
		os.Exit(1)
	}

	run := runner(*server)
	render := func(workers int) (string, time.Duration) {
		start := time.Now()
		outs, err := run(scs, workers)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		var b strings.Builder
		b.WriteString("variable,value,scheme,percent_peak,mbps,cycles\n")
		for i, out := range outs {
			fmt.Fprintf(&b, "%s,%d,%v,%.2f,%.2f,%d\n",
				*variable, values[i], scs[i].Scheme, out.PercentPeak, out.EffectiveMBps, out.Cycles)
		}
		return b.String(), elapsed
	}

	if *benchOut != "" {
		benchmark(*benchOut, render)
		return
	}
	csv, _ := render(*parallel)
	fmt.Print(csv)
}

// runner picks the execution strategy for a scenario list: in-process on
// the worker pool, or offloaded to a running rdserved (whose result cache
// makes repeated sweeps nearly free). The remote path ignores the local
// worker count — parallelism is the server's -workers setting.
func runner(server string) func(scs []rdramstream.Scenario, workers int) ([]rdramstream.Outcome, error) {
	if server == "" {
		return rdramstream.SimulateAll
	}
	cl := client.New(server)
	return func(scs []rdramstream.Scenario, _ int) ([]rdramstream.Outcome, error) {
		return cl.SweepOutcomes(context.Background(), scs)
	}
}

// faultSweep parses "seed,severity[,severity...]" and emits the fault
// degradation of every controller × scheme as CSV. The same seed always
// yields byte-identical output, at any worker count — CI diffs two runs to
// hold that guarantee. The "# seed=…" header makes every artifact
// self-describing: the table regenerates from the file alone.
func faultSweep(spec, kernel string, n, workers int, server string) {
	fields := strings.Split(spec, ",")
	if len(fields) < 2 {
		fmt.Fprintf(os.Stderr, "sweep: -faults wants \"seed,severity[,severity...]\", got %q\n", spec)
		os.Exit(1)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: -faults seed: %v\n", err)
		os.Exit(1)
	}
	var severities []int
	for _, f := range fields[1:] {
		sev, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || sev < 0 {
			fmt.Fprintf(os.Stderr, "sweep: -faults severity %q: want a non-negative integer\n", f)
			os.Exit(1)
		}
		severities = append(severities, sev)
	}
	run := runner(server)
	pts, err := experiments.FaultSweepPointsWith(kernel, n, seed, severities, func(scs []sim.Scenario) ([]sim.Outcome, error) {
		return run(scs, workers)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	sevStrs := make([]string, len(severities))
	for i, s := range severities {
		sevStrs[i] = strconv.Itoa(s)
	}
	fmt.Printf("# seed=%d severities=%s kernel=%s n=%d\n", seed, strings.Join(sevStrs, ","), kernel, n)
	fmt.Println("severity,controller,scheme,percent_peak,percent_of_clean,cycles,rejections,jitter_cycles,refreshes,verified")
	for _, p := range pts {
		fmt.Printf("%d,%s,%s,%.2f,%.2f,%d,%d,%d,%d,%v\n",
			p.Severity, p.Controller, p.SchemeName, p.PercentPeak, p.PercentOfClean,
			p.Cycles, p.Rejections, p.JitterCycles, p.Refreshes, p.Verified)
	}
}

// benchmark times the sweep with one worker and with four, checks the two
// CSVs are byte-identical, and writes a JSON report. On a single-core
// machine the speedup is honestly ~1x; the report records the core count
// so readers can tell.
func benchmark(path string, render func(workers int) (string, time.Duration)) {
	const workers = 4
	// Warm once so neither timed run pays one-time costs.
	render(1)
	serialCSV, serialTime := render(1)
	parallelCSV, parallelTime := render(workers)
	report := struct {
		Sweep        string  `json:"sweep"`
		Scenarios    int     `json:"scenarios"`
		Cores        int     `json:"cores"`
		Workers      int     `json:"workers"`
		SerialMs     float64 `json:"serial_ms"`
		ParallelMs   float64 `json:"parallel_ms"`
		Speedup      float64 `json:"speedup"`
		IdenticalCSV bool    `json:"identical_csv"`
		Note         string  `json:"note,omitempty"`
	}{
		Sweep:        "sweep",
		Scenarios:    strings.Count(serialCSV, "\n") - 1,
		Cores:        runtime.NumCPU(),
		Workers:      workers,
		SerialMs:     float64(serialTime.Microseconds()) / 1000,
		ParallelMs:   float64(parallelTime.Microseconds()) / 1000,
		Speedup:      serialTime.Seconds() / parallelTime.Seconds(),
		IdenticalCSV: serialCSV == parallelCSV,
	}
	if report.Cores < report.Workers {
		report.Note = fmt.Sprintf("machine has %d core(s); speedup scales with cores up to the worker count", report.Cores)
	}
	if !report.IdenticalCSV {
		fmt.Fprintln(os.Stderr, "sweep: serial and parallel CSVs differ")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("serial %.1f ms, %d workers %.1f ms, speedup %.2fx (%d cores); wrote %s\n",
		report.SerialMs, workers, report.ParallelMs, report.Speedup, report.Cores, path)
}
