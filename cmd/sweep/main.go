// Command sweep runs free-form parameter sweeps over the simulator and
// emits CSV on stdout, for exploring the design space beyond the paper's
// figures (FIFO depth, stride, bank count, vector length).
//
// Examples:
//
//	sweep -var fifo -kernel vaxpy -n 1024          # FIFO depth sweep
//	sweep -var stride -kernel vaxpy -mode natural  # stride sweep
//	sweep -var banks -kernel daxpy -mode smc       # bank-count sweep
//	sweep -var length -kernel copy -mode smc       # vector-length sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdramstream"
)

func main() {
	variable := flag.String("var", "fifo", "sweep variable: fifo, stride, banks, length, or pagesize")
	kernel := flag.String("kernel", "vaxpy", "benchmark kernel")
	n := flag.Int("n", 1024, "stream length (fixed unless -var length)")
	mode := flag.String("mode", "smc", "controller: smc or natural")
	fifo := flag.Int("fifo", 32, "FIFO depth (fixed unless -var fifo)")
	flag.Parse()

	base := rdramstream.Scenario{
		KernelName: *kernel,
		N:          *n,
		FIFODepth:  *fifo,
		Placement:  rdramstream.Staggered,
		SkipVerify: true,
		Device:     rdramstream.DefaultDevice(),
	}
	if strings.EqualFold(*mode, "natural") {
		base.Mode = rdramstream.NaturalOrder
	} else {
		base.Mode = rdramstream.SMC
	}

	run := func(sc rdramstream.Scenario, x int) {
		for _, scheme := range []rdramstream.Interleave{rdramstream.CLI, rdramstream.PI} {
			sc.Scheme = scheme
			out, err := rdramstream.Simulate(sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			fmt.Printf("%s,%d,%v,%.2f,%.2f,%d\n", *variable, x, scheme, out.PercentPeak, out.EffectiveMBps, out.Cycles)
		}
	}

	fmt.Println("variable,value,scheme,percent_peak,mbps,cycles")
	switch strings.ToLower(*variable) {
	case "fifo":
		for _, f := range []int{8, 16, 32, 64, 128, 256} {
			sc := base
			sc.FIFODepth = f
			run(sc, f)
		}
	case "stride":
		for _, s := range []int64{1, 2, 4, 8, 16, 32} {
			sc := base
			sc.Stride = s
			run(sc, int(s))
		}
	case "banks":
		for _, b := range []int{2, 4, 8, 16, 32} {
			sc := base
			sc.Device.Geometry.Banks = b
			run(sc, b)
		}
	case "length":
		for _, l := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
			sc := base
			sc.N = l
			run(sc, l)
		}
	case "pagesize":
		for _, pw := range []int{32, 64, 128, 256, 512} {
			sc := base
			sc.Device.Geometry.PageWords = pw
			run(sc, pw)
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown variable %q\n", *variable)
		os.Exit(1)
	}
}
