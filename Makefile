# Convenience targets for the rdramstream reproduction.

GO ?= go

.PHONY: all build test vet lint bench bench-core bench-telemetry profile figures examples cover fuzz serve clean

all: vet lint test build

build:
	$(GO) build ./...

vet:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...

# Repo-specific static analysis (see docs/STATIC_ANALYSIS.md).
lint:
	$(GO) run ./cmd/rdlint -stats ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus simulator micro-benchmarks,
# then the pinned core-speed comparison (see docs/PERFORMANCE.md).
bench: bench-core
	$(GO) test -bench=. -benchmem ./...

# Core simulator speed vs the pre-refactor baselines; regenerates
# BENCH_core_speed.json. CI gates regressions with `rdprof -check`.
bench-core:
	$(GO) run ./cmd/rdprof -bench-core -bench-core-out BENCH_core_speed.json

# Telemetry-off vs telemetry-on timing comparison (see docs/OBSERVABILITY.md).
bench-telemetry:
	$(GO) run ./cmd/rdprof -bench -bench-out BENCH_telemetry.json

# Full telemetry bundle (metrics.json, timeseries.csv, events.jsonl,
# trace.json) for the canonical daxpy/SMC/PI scenario, under profile/.
profile:
	$(GO) run ./cmd/rdprof -kernel daxpy -n 1024 -mode smc -scheme pi -fifo 128 -out profile

# Regenerate every artifact: ASCII tables on stdout, CSV series and SVG
# figures under out/.
figures:
	$(GO) run ./cmd/paperfigs -csv out/csv -svg out/svg

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scientific
	$(GO) run ./examples/multimedia
	$(GO) run ./examples/strides
	$(GO) run ./examples/tune
	$(GO) run ./examples/compileloop

cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Local simulation server with an on-disk result cache (see docs/SERVICE.md).
serve:
	$(GO) run ./cmd/rdserved -addr :8347 -cache-dir out/rdcache

# Short fuzz passes over the address mapper and the device protocol.
fuzz:
	$(GO) test -fuzz=FuzzMapUnmap -fuzztime=10s ./internal/addrmap/
	$(GO) test -fuzz=FuzzDeviceDo -fuzztime=10s ./internal/rdram/

clean:
	rm -rf out
