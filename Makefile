# Convenience targets for the rdramstream reproduction.

GO ?= go

.PHONY: all build test vet bench figures examples cover fuzz clean

all: vet test build

build:
	$(GO) build ./...

vet:
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus simulator micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every artifact: ASCII tables on stdout, CSV series and SVG
# figures under out/.
figures:
	$(GO) run ./cmd/paperfigs -csv out/csv -svg out/svg

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scientific
	$(GO) run ./examples/multimedia
	$(GO) run ./examples/strides
	$(GO) run ./examples/tune
	$(GO) run ./examples/compileloop

cover:
	$(GO) test -cover ./...

# Short fuzz passes over the address mapper and the device protocol.
fuzz:
	$(GO) test -fuzz=FuzzMapUnmap -fuzztime=10s ./internal/addrmap/
	$(GO) test -fuzz=FuzzDeviceDo -fuzztime=10s ./internal/rdram/

clean:
	rm -rf out
