package rdramstream_test

import (
	"math"
	"testing"

	"rdramstream"
)

func TestFacadeQuickstart(t *testing.T) {
	out, err := rdramstream.Simulate(rdramstream.Scenario{
		KernelName: "daxpy",
		N:          1024,
		Scheme:     rdramstream.PI,
		Mode:       rdramstream.SMC,
		FIFODepth:  128,
		Placement:  rdramstream.Staggered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Error("quickstart run should verify")
	}
	if out.PercentPeak < 85 {
		t.Errorf("PercentPeak = %.1f, want near peak", out.PercentPeak)
	}
}

func TestFacadeKernelsList(t *testing.T) {
	ks := rdramstream.Kernels()
	want := map[string]bool{"copy": true, "daxpy": true, "hydro": true, "vaxpy": true}
	if len(ks) != len(want) {
		t.Fatalf("Kernels() = %v", ks)
	}
	for _, k := range ks {
		if !want[k] {
			t.Errorf("unexpected kernel %q", k)
		}
	}
}

func TestFacadeCustomKernel(t *testing.T) {
	// A custom two-stream kernel: y[i] = sqrt(x[i]).
	bases, err := rdramstream.LayoutVectors(rdramstream.CLI, rdramstream.Staggered, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	k := &rdramstream.Kernel{
		Name: "sqrt",
		Streams: []rdramstream.Stream{
			{Name: "x", Base: bases[0], Stride: 1, Length: 256, Mode: rdramstream.Read},
			{Name: "y", Base: bases[1], Stride: 1, Length: 256, Mode: rdramstream.Write},
		},
		Compute: func(_ int, in []float64) []float64 {
			return []float64{math.Sqrt(in[0])}
		},
	}
	out, err := rdramstream.SimulateKernel(k, rdramstream.Scenario{
		Scheme: rdramstream.CLI, Mode: rdramstream.SMC, FIFODepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Error("custom kernel should verify")
	}
	if out.UsefulWords != 512 {
		t.Errorf("UsefulWords = %d, want 512", out.UsefulWords)
	}
}

func TestFacadeBounds(t *testing.T) {
	b := rdramstream.DefaultBounds()
	if got := b.TLCC(); got != 24 {
		t.Errorf("TLCC = %v", got)
	}
	if dev := rdramstream.DefaultDevice(); dev.Geometry.Banks != 8 {
		t.Errorf("default banks = %d", dev.Geometry.Banks)
	}
}

func TestFacadeNaturalOrderVsSMC(t *testing.T) {
	base := rdramstream.Scenario{KernelName: "vaxpy", N: 1024, Scheme: rdramstream.CLI, Placement: rdramstream.Staggered}
	nat := base
	nat.Mode = rdramstream.NaturalOrder
	smcSc := base
	smcSc.Mode = rdramstream.SMC
	smcSc.FIFODepth = 128
	n, err := rdramstream.Simulate(nat)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rdramstream.Simulate(smcSc)
	if err != nil {
		t.Fatal(err)
	}
	if s.PercentPeak <= n.PercentPeak {
		t.Errorf("SMC %.1f%% should beat natural order %.1f%%", s.PercentPeak, n.PercentPeak)
	}
}
