// Package version is the single source of the build's identity stamp:
// the module version plus a fingerprint of the simulation model's fixed
// parameters (device timing/geometry defaults, interleaving schemes,
// registered controllers, stall taxonomy). Every cmd surfaces it behind
// -version, and the result cache embeds it in its keys so cached outcomes
// from an older model never masquerade as current ones — bump Semver (or
// change any fingerprinted parameter) and every key changes.
package version

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"strings"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/telemetry"
)

// Module is the module path the stamp reports.
const Module = "rdramstream"

// Semver is the module version. It is bumped whenever simulated outcomes
// may change; the result cache treats any change as a full invalidation.
const Semver = "0.5.0"

// Fingerprint hashes the model parameters that determine simulated
// outcomes: the default device configuration, the packet constants, the
// interleaving schemes, the registered controller set, and the
// stall-cause taxonomy. It is computed at call time, so a binary that
// links extra controllers fingerprints differently from one that does
// not — their caches are intentionally disjoint.
func Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "device=%+v\n", rdram.DefaultConfig())
	fmt.Fprintf(&b, "wordsPerPacket=%d maxOutstanding=%d\n", rdram.WordsPerPacket, rdram.MaxOutstanding)
	fmt.Fprintf(&b, "schemes=%v/%v\n", addrmap.CLI, addrmap.PI)
	fmt.Fprintf(&b, "controllers=%v\n", engine.Names())
	fmt.Fprintf(&b, "stalls=%v\n", telemetry.StallCauses())
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:6])
}

// Stamp is the one-line identity every cmd prints for -version and the
// result cache embeds in its keys: module, semver, model fingerprint, and
// (when the binary carries build info) the VCS module version.
func Stamp() string {
	s := fmt.Sprintf("%s %s model=%s", Module, Semver, Fingerprint())
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		s += " build=" + bi.Main.Version
	}
	return s
}
