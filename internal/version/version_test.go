package version_test

import (
	"strings"
	"testing"

	"rdramstream/internal/version"

	// Link the full controller set so the fingerprint matches what the
	// cmds (which all reach sim) compute.
	_ "rdramstream/internal/sim"
)

func TestStampShape(t *testing.T) {
	s := version.Stamp()
	if !strings.HasPrefix(s, version.Module+" "+version.Semver+" model=") {
		t.Fatalf("stamp %q does not lead with module, semver, and model fingerprint", s)
	}
	if version.Stamp() != s {
		t.Error("stamp is not stable within a process")
	}
	fp := version.Fingerprint()
	if len(fp) != 12 {
		t.Errorf("fingerprint %q is not 12 hex chars", fp)
	}
	if !strings.Contains(s, fp) {
		t.Errorf("stamp %q does not embed fingerprint %q", s, fp)
	}
}
