// Package rdram models a single Direct Rambus DRAM (RDRAM) device at the
// granularity of command and data packets on its three shared resources:
// the ROW command bus, the COL command bus, and the DATA bus.
//
// The model follows the protocol description and timing parameters of the
// -50/-800 Direct RDRAM part as given in Figure 2 of Hong et al., "Access
// Order and Effective Bandwidth for Streams on a Direct Rambus Memory"
// (HPCA 1999). All times are expressed in 400 MHz interface-clock cycles
// (2.5 ns each); a command or data packet occupies its bus for TPack = 4
// cycles, and the device transfers 16 bytes (two 64-bit words) per DATA
// packet, for a peak bandwidth of 1.6 GB/s.
package rdram

import "fmt"

// WordsPerPacket is the number of 64-bit stream elements carried by one
// DATA packet (the paper's w_p). The smallest addressable unit of a Direct
// RDRAM is one 128-bit packet.
const WordsPerPacket = 2

// MaxOutstanding is the number of concurrent transactions the Direct RDRAM
// pipeline supports ("its pipelined microarchitecture supports up to four
// outstanding requests").
const MaxOutstanding = 4

// Timing holds the Direct RDRAM timing parameters, in interface-clock
// cycles. The field names follow the paper's Figure 2.
type Timing struct {
	// TPack is the transfer time of one command or data packet (t_PACK).
	TPack int `json:"TPack"`
	// TRCD is the minimum interval between a ROW ACT packet and the first
	// COL packet to that bank (t_RCD).
	TRCD int `json:"TRCD"`
	// TRP is the page precharge time: minimum interval between a ROW PRER
	// packet and the next ROW ACT packet to the same bank (t_RP).
	TRP int `json:"TRP"`
	// TCPOL is the maximum overlap between the last COL packet of a burst
	// and the start of the ROW PRER packet (t_CPOL).
	TCPOL int `json:"TCPOL"`
	// TCAC is the page-hit latency: delay between the start of a COL RD
	// packet and valid data (t_CAC).
	TCAC int `json:"TCAC"`
	// TRC is the page-miss cycle time: minimum interval between successive
	// ROW ACT packets to the same bank (t_RC).
	TRC int `json:"TRC"`
	// TRR is the minimum delay between consecutive ROW ACT packets to the
	// same RDRAM device (t_RR).
	TRR int `json:"TRR"`
	// TRDLY is the round-trip bus delay added to read page-hit times
	// because the DATA packet travels opposite to the command (t_RDLY).
	TRDLY int `json:"TRDLY"`
	// TRW is the read/write bus turnaround: the interval that must separate
	// the end of a write DATA packet from the start of a read DATA packet
	// (t_RW = t_PACK + t_RDLY). Writes after reads need no turnaround.
	TRW int `json:"TRW"`
	// TCWD is the delay between the start of a COL WR packet and the start
	// of its write DATA packet. The paper does not state it explicitly; we
	// use 3 cycles (≈ the Direct RDRAM write delay), documented in
	// DESIGN.md §3.
	TCWD int `json:"TCWD"`
}

// DefaultTiming returns the timing parameters of the Min -50 -800 Direct
// RDRAM part from Figure 2 of the paper.
func DefaultTiming() Timing {
	return Timing{
		TPack: 4,
		TRCD:  11,
		TRP:   10,
		TCPOL: 1,
		TCAC:  8,
		TRC:   34,
		TRR:   8,
		TRDLY: 2,
		TRW:   6,
		TCWD:  3,
	}
}

// TRAC is the page-miss read latency: the delay between the start of a ROW
// ACT packet and valid data, t_RAC = t_RCD + t_CAC + 1 extra cycle
// (20 cycles = 50 ns for the default part).
func (t Timing) TRAC() int { return t.TRCD + t.TCAC + 1 }

// TRAS is the minimum time a row must stay activated before it may be
// precharged. The paper does not list it directly but uses the identity
// t_RC = t_RAS + t_RP, giving 24 cycles for the default part.
func (t Timing) TRAS() int { return t.TRC - t.TRP }

// Validate reports whether the timing parameters are internally consistent.
func (t Timing) Validate() error {
	switch {
	case t.TPack <= 0:
		return fmt.Errorf("rdram: TPack must be positive, got %d", t.TPack)
	case t.TRCD < 0 || t.TRP < 0 || t.TCAC < 0 || t.TRR < 0 || t.TRDLY < 0 || t.TRW < 0 || t.TCWD < 0:
		return fmt.Errorf("rdram: negative timing parameter in %+v", t)
	case t.TCPOL < 0 || t.TCPOL > t.TPack:
		return fmt.Errorf("rdram: TCPOL %d out of range [0,%d]", t.TCPOL, t.TPack)
	case t.TRC < t.TRP:
		return fmt.Errorf("rdram: TRC %d smaller than TRP %d", t.TRC, t.TRP)
	}
	return nil
}

// PeakBytesPerCycle is the peak data rate of the device in bytes per
// interface-clock cycle: one 16-byte DATA packet per TPack cycles.
func (t Timing) PeakBytesPerCycle() float64 {
	return float64(WordsPerPacket*8) / float64(t.TPack)
}

// CyclesPerWordPeak is the minimum (peak-rate) number of cycles to transfer
// one 64-bit word: t_PACK / w_p.
func (t Timing) CyclesPerWordPeak() float64 {
	return float64(t.TPack) / float64(WordsPerPacket)
}
