package rdram

// Tests for the event-query surface the event-driven core refactor added:
// NextEventAt (the skip-to-next-event oracle), the PagePool (allocation
// reuse across a sweep), and timing-only mode (SkipVerify runs with the
// functional store disabled).

import "testing"

func TestNextEventAtQuiescent(t *testing.T) {
	d := newTestDevice(t)
	if got := d.NextEventAt(0); got != NoEvent {
		t.Errorf("NextEventAt on an untouched device = %d, want NoEvent", got)
	}
}

func TestNextEventAtSeesRefreshTimer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 1000
	d := NewDevice(cfg)
	if got := d.NextEventAt(0); got != 1000 {
		t.Errorf("NextEventAt(0) = %d, want the refresh timer at 1000", got)
	}
	// The query is strict (> now): standing exactly on the deadline, the
	// refresh is due now rather than in the future, and it will fire
	// lazily on the next presented access — so no *future* event exists
	// until that access advances the timer.
	if got := d.NextEventAt(1000); got != NoEvent {
		t.Errorf("NextEventAt(1000) = %d, want NoEvent (refresh is due, not pending)", got)
	}
}

// TestNextEventAtChainTerminates walks the event chain after a write (the
// richest state: row/col/data bus, bank timers, and the read-after-write
// turnaround window) and checks it is strictly increasing and finite.
func TestNextEventAtChainTerminates(t *testing.T) {
	d := newTestDevice(t)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0, Write: true})
	d.Do(0, Request{Bank: 1, Row: 2, Col: 3})
	prev := int64(0)
	steps := 0
	for {
		next := d.NextEventAt(prev)
		if next == NoEvent {
			break
		}
		if next <= prev {
			t.Fatalf("event chain not strictly increasing: %d after %d", next, prev)
		}
		prev = next
		if steps++; steps > 64 {
			t.Fatal("event chain did not terminate")
		}
	}
	if steps == 0 {
		t.Fatal("no events after two accesses")
	}
}

// TestRefreshInsideSkippedSpan pins the catch-up semantics a
// skip-to-next-event controller relies on: when the next access is
// presented far past several refresh deadlines, every elapsed refresh
// still happens (and is charged) before the access is scheduled.
func TestRefreshInsideSkippedSpan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 500
	d := NewDevice(cfg)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	if n := d.Stats().Refreshes; n != 0 {
		t.Fatalf("refreshes before the first deadline = %d, want 0", n)
	}
	// Jump straight over five deadlines (t=500..2500).
	d.Do(2600, Request{Bank: 0, Row: 0, Col: 1})
	if n := d.Stats().Refreshes; n != 5 {
		t.Errorf("refreshes after jumping to 2600 = %d, want 5", n)
	}
	if next := d.NextEventAt(2600); next == NoEvent || next > 3000 {
		t.Errorf("NextEventAt(2600) = %d, want the next refresh deadline at/before 3000", next)
	}
}

func TestPagePoolZeroesReusedPages(t *testing.T) {
	var pool PagePool
	cfg := DefaultConfig()

	d1 := NewDevice(cfg)
	d1.UsePagePool(&pool)
	d1.PokeWord(0, 0, 0, 0, 0xdeadbeef)
	d1.PokeWord(3, 7, 2, 1, 42)
	d1.ReleasePages()
	if len(pool.free) != 2 {
		t.Fatalf("pool holds %d pages after release, want 2", len(pool.free))
	}

	// A second scenario reusing the pool must see zero-filled memory, the
	// functional store's first-touch promise.
	d2 := NewDevice(cfg)
	d2.UsePagePool(&pool)
	if v := d2.PeekWord(0, 0, 0, 0); v != 0 {
		t.Errorf("reused page leaked value %#x", v)
	}
	if len(pool.free) != 1 {
		t.Errorf("pool holds %d pages after one reuse, want 1", len(pool.free))
	}
}

func TestPagePoolDropsWrongSizePages(t *testing.T) {
	var pool PagePool
	pool.put(make([]uint64, 16)) // stale page from an old geometry
	cfg := DefaultConfig()
	pg := pool.get(cfg.Geometry.PageWords)
	if len(pg) != cfg.Geometry.PageWords {
		t.Fatalf("got %d-word page, want %d", len(pg), cfg.Geometry.PageWords)
	}
	if len(pool.free) != 0 {
		t.Errorf("stale page still pooled")
	}
}

// TestTimingOnlyCycleIdentical runs the same access sequence against a
// functional and a timing-only device: every scheduled packet time and
// every counter must match, because data values never influence timing.
func TestTimingOnlyCycleIdentical(t *testing.T) {
	full := newTestDevice(t)
	bare := newTestDevice(t)
	bare.SetTimingOnly(true)

	reqs := []struct {
		at  int64
		req Request
	}{
		{0, Request{Bank: 0, Row: 0, Col: 0, Write: true, Data: [WordsPerPacket]uint64{1, 2}}},
		{0, Request{Bank: 0, Row: 0, Col: 1}},
		{10, Request{Bank: 1, Row: 4, Col: 0, Write: true, Data: [WordsPerPacket]uint64{3, 4}}},
		{10, Request{Bank: 0, Row: 9, Col: 0}}, // page conflict
		{2000, Request{Bank: 1, Row: 4, Col: 0}},
	}
	for i, r := range reqs {
		a := full.Do(r.at, r.req)
		b := bare.Do(r.at, r.req)
		a.Data, b.Data = [WordsPerPacket]uint64{}, [WordsPerPacket]uint64{}
		if a != b {
			t.Errorf("access %d: timing diverged: full %+v, timing-only %+v", i, a, b)
		}
	}
	if full.Stats() != bare.Stats() {
		t.Errorf("stats diverged: full %+v, timing-only %+v", full.Stats(), bare.Stats())
	}
	// The timing-only device allocated no page storage and reads zeros.
	if v := bare.PeekWord(1, 4, 0, 0); v != 0 {
		t.Errorf("timing-only PeekWord = %#x, want 0", v)
	}
	if got := full.PeekWord(1, 4, 0, 0); got != 3 {
		t.Errorf("functional PeekWord = %d, want 3", got)
	}
	if len(bare.pages) != 0 {
		t.Errorf("timing-only device allocated %d pages", len(bare.pages))
	}
}
