package rdram

import "fmt"

// Geometry describes the bank/page organization of the device.
//
// The paper's experiments use a 64 Mbit part with eight independent banks
// and 1 KByte pages (128 64-bit words per page). Some RDRAM cores double
// the bank count to 16 with shared sense amplifiers between adjacent banks
// ("double bank" architecture); because two adjacent banks cannot be open
// simultaneously, the effective independence is still eight. Set DoubleBank
// to model the adjacency constraint explicitly.
type Geometry struct {
	// Banks is the total number of banks addressable on the channel
	// (banks per device × DevicesOnChannel).
	Banks int `json:"Banks"`
	// PageWords is the number of 64-bit words per DRAM page (sense-amp row).
	PageWords int `json:"PageWords"`
	// PagesPerBank is the number of rows in each bank.
	PagesPerBank int `json:"PagesPerBank"`
	// DoubleBank, when true, forbids adjacent banks (2k, 2k+1 pairs sharing
	// sense amps) from being open at the same time.
	DoubleBank bool `json:"DoubleBank"`
	// DevicesOnChannel models a Rambus channel populated with several
	// RDRAM chips sharing the ROW/COL/DATA buses. Device-local constraints
	// — the t_RR spacing between ROW ACT packets and the write-buffer
	// retire before a read — apply within each device only; bus occupancy
	// and the read/write turnaround remain channel-global. Zero or one
	// means a single device, as in the paper's evaluation.
	DevicesOnChannel int `json:"DevicesOnChannel"`
}

// DefaultGeometry returns the organization used throughout the paper's
// evaluation: eight independent banks with 1 KByte (128-word) pages. The
// row count is sized so the device holds 64 Mbit like the parts the paper
// describes.
func DefaultGeometry() Geometry {
	return Geometry{
		Banks:        8,
		PageWords:    128,
		PagesPerBank: 8192, // 8 banks * 8192 rows * 1 KB = 64 Mbit
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return fmt.Errorf("rdram: Banks must be positive, got %d", g.Banks)
	case g.PageWords <= 0 || g.PageWords%WordsPerPacket != 0:
		return fmt.Errorf("rdram: PageWords must be a positive multiple of %d, got %d", WordsPerPacket, g.PageWords)
	case g.PagesPerBank <= 0:
		return fmt.Errorf("rdram: PagesPerBank must be positive, got %d", g.PagesPerBank)
	case g.DoubleBank && g.Banks%2 != 0:
		return fmt.Errorf("rdram: DoubleBank requires an even bank count, got %d", g.Banks)
	case g.DevicesOnChannel < 0:
		return fmt.Errorf("rdram: DevicesOnChannel must be non-negative, got %d", g.DevicesOnChannel)
	case g.DevicesOnChannel > 1 && g.Banks%g.DevicesOnChannel != 0:
		return fmt.Errorf("rdram: %d banks do not divide evenly over %d devices", g.Banks, g.DevicesOnChannel)
	case g.DevicesOnChannel > 1 && g.DoubleBank && (g.Banks/g.DevicesOnChannel)%2 != 0:
		return fmt.Errorf("rdram: DoubleBank requires an even bank count per device")
	}
	return nil
}

// Devices returns the number of chips on the channel (at least one).
func (g Geometry) Devices() int {
	if g.DevicesOnChannel <= 1 {
		return 1
	}
	return g.DevicesOnChannel
}

// BanksPerDevice returns the banks local to one chip.
func (g Geometry) BanksPerDevice() int { return g.Banks / g.Devices() }

// deviceOf returns the chip that owns bank b.
func (g Geometry) deviceOf(b int) int { return b / g.BanksPerDevice() }

// CapacityWords is the total number of 64-bit words the device stores.
func (g Geometry) CapacityWords() int {
	return g.Banks * g.PagesPerBank * g.PageWords
}

// adjacent returns the banks that share sense amplifiers with bank b under
// the double-bank constraint. With DoubleBank disabled it returns nothing.
func (g Geometry) adjacent(b int) []int {
	if !g.DoubleBank {
		return nil
	}
	if b%2 == 0 {
		return []int{b + 1}
	}
	return []int{b - 1}
}

// Config bundles the timing and geometry of one device.
type Config struct {
	Timing   Timing   `json:"Timing"`
	Geometry Geometry `json:"Geometry"`
	// RefreshInterval, when positive, inserts a refresh operation (an
	// activate/precharge pair that steals the row bus and blocks one bank)
	// every RefreshInterval cycles, cycling through the banks. The paper's
	// models ignore refresh; this is an ablation knob and defaults to off.
	RefreshInterval int64 `json:"RefreshInterval"`
}

// DefaultConfig returns the paper's device: -50/-800 timing, eight banks,
// 1 KB pages, refresh disabled.
func DefaultConfig() Config {
	return Config{Timing: DefaultTiming(), Geometry: DefaultGeometry()}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.RefreshInterval < 0 {
		return fmt.Errorf("rdram: RefreshInterval must be non-negative, got %d", c.RefreshInterval)
	}
	return nil
}
