package rdram

// AccessFault is the perturbation a FaultInjector applies to one presented
// access. The zero value is "no fault": the access proceeds with nominal
// timing, so an injector that always returns the zero value is invisible —
// bit-identical to running with no injector at all.
type AccessFault struct {
	// Reject refuses the access outright: Attempt returns ok=false without
	// touching any device or bus state, and the controller must retry later
	// (a transient condition — a busy internal queue, a calibration cycle,
	// an ECC scrub). Only Stats.Rejections records that it happened.
	Reject bool
	// RCDExtra adds cycles to t_RCD for this access (applied only when the
	// access activates a row).
	RCDExtra int64
	// CACExtra adds cycles to the column-to-data latency (t_CAC for reads,
	// t_CWD for writes) for this access.
	CACExtra int64
	// RPExtra adds cycles to t_RP when this access resolves a page conflict
	// (precharge before activate).
	RPExtra int64
}

// FaultInjector perturbs device behaviour deterministically. The device
// consults it from exactly two single-goroutine call sites, in simulation
// order, so a seeded injector yields reproducible fault sequences:
//
//   - OnAccess, once per access presented to Attempt/Do (including retried
//     presentations of a rejected access);
//   - RefreshGap, once per scheduled refresh, to stretch or shrink the gap
//     to the next one (refresh storms).
//
// Implementations live outside this package (see internal/fault); the
// device only defines the contract.
type FaultInjector interface {
	// OnAccess draws the fault, if any, for an access presented at cycle at
	// against bank. It is called before any device state changes, so a
	// rejection has no timing footprint.
	OnAccess(at int64, bank int, write bool) AccessFault
	// RefreshGap returns the interval between the refresh just scheduled
	// and the next one. base is the configured RefreshInterval; returning
	// base (or anything non-positive) keeps the nominal cadence.
	RefreshGap(base int64) int64
}
