package rdram

import (
	"fmt"
	"sort"
	"strings"
)

// TraceKind identifies the packet type of a trace event.
type TraceKind int

// Packet kinds emitted by the device trace hook.
const (
	TraceActivate  TraceKind = iota // ROW ACT packet
	TracePrecharge                  // ROW PRER packet
	TraceReadCol                    // COL RD packet
	TraceWriteCol                   // COL WR packet
	TraceRetire                     // COL RET packet
	TraceReadData                   // DATA packet, device -> controller
	TraceWriteData                  // DATA packet, controller -> device
)

func (k TraceKind) String() string {
	switch k {
	case TraceActivate:
		return "ACT"
	case TracePrecharge:
		return "PRER"
	case TraceReadCol:
		return "RD"
	case TraceWriteCol:
		return "WR"
	case TraceRetire:
		return "RET"
	case TraceReadData:
		return "DATA<"
	case TraceWriteData:
		return "DATA>"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// bus returns which of the three shared resources the packet occupies:
// 0 = ROW command bus, 1 = COL command bus, 2 = DATA bus.
func (k TraceKind) bus() int {
	switch k {
	case TraceActivate, TracePrecharge:
		return 0
	case TraceReadCol, TraceWriteCol, TraceRetire:
		return 1
	default:
		return 2
	}
}

// TraceEvent records one packet scheduled on a device bus.
type TraceEvent struct {
	Kind       TraceKind
	Start, End int64 // [Start, End) in interface-clock cycles
	Bank       int
	Row, Col   int // -1 when not applicable
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%6d..%-6d %-5s bank=%d row=%d col=%d", e.Start, e.End, e.Kind, e.Bank, e.Row, e.Col)
}

// Recorder collects trace events, for tests and for rendering the paper's
// Figure 5/6 style timelines.
type Recorder struct {
	Events []TraceEvent
}

// Hook returns a function suitable for Device.Trace.
func (r *Recorder) Hook() func(TraceEvent) {
	return func(ev TraceEvent) { r.Events = append(r.Events, ev) }
}

// ByBus returns the recorded events for one bus (see TraceKind.bus),
// ordered by start cycle.
func (r *Recorder) ByBus(bus int) []TraceEvent {
	var out []TraceEvent
	for _, ev := range r.Events {
		if ev.Kind.bus() == bus {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Timeline renders the recorded events as a three-lane ASCII chart
// (ROW / COL / DATA lanes), one character per `scale` cycles — the textual
// analogue of the paper's Figure 5 and Figure 6.
func (r *Recorder) Timeline(scale int) string {
	if scale <= 0 {
		scale = 1
	}
	var end int64
	for _, ev := range r.Events {
		if ev.End > end {
			end = ev.End
		}
	}
	width := int(end)/scale + 1
	lanes := [3][]byte{}
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	mark := func(lane int, ev TraceEvent, c byte) {
		for t := ev.Start; t < ev.End; t++ {
			lanes[lane][int(t)/scale] = c
		}
	}
	for _, ev := range r.Events {
		var c byte
		switch ev.Kind {
		case TraceActivate:
			c = 'A'
		case TracePrecharge:
			c = 'P'
		case TraceReadCol:
			c = 'r'
		case TraceWriteCol:
			c = 'w'
		case TraceRetire:
			c = 't'
		case TraceReadData:
			c = 'R'
		case TraceWriteData:
			c = 'W'
		}
		mark(ev.Kind.bus(), ev, c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ROW  |%s|\nCOL  |%s|\nDATA |%s|\n", lanes[0], lanes[1], lanes[2])
	fmt.Fprintf(&b, "scale: 1 char = %d cycle(s); A=ACT P=PRER r=COL-RD w=COL-WR t=RET R=read data W=write data\n", scale)
	return b.String()
}
