package rdram

import "fmt"

// Stats counts device operations and data-bus occupancy. All counters are
// monotone over a simulation.
type Stats struct {
	Activates     int64 `json:"Activates"`
	Precharges    int64 `json:"Precharges"`
	Reads         int64 `json:"Reads"`  // DATA packets read
	Writes        int64 `json:"Writes"` // DATA packets written
	PageHits      int64 `json:"PageHits"`
	PageMisses    int64 `json:"PageMisses"`
	PageConflicts int64 `json:"PageConflicts"` // misses that first had to close another row
	Retires       int64 `json:"Retires"`       // COL RET packets inserted before reads
	Refreshes     int64 `json:"Refreshes"`
	DataBusBusy   int64 `json:"DataBusBusy"`  // cycles the DATA bus carried packets
	LastDataEnd   int64 `json:"LastDataEnd"`  // cycle after the final DATA packet
	Rejections    int64 `json:"Rejections"`   // accesses refused by the fault injector
	JitterCycles  int64 `json:"JitterCycles"` // extra latency cycles added by fault injection
}

// PacketCount is the total number of DATA packets transferred.
func (s Stats) PacketCount() int64 { return s.Reads + s.Writes }

// HitRate is the fraction of column accesses that hit an open page.
func (s Stats) HitRate() float64 {
	n := s.PageHits + s.PageMisses
	if n == 0 {
		return 0
	}
	return float64(s.PageHits) / float64(n)
}

// BusUtilization is the fraction of the elapsed simulation (up to the last
// data packet) during which the DATA bus was busy — the effective fraction
// of peak bandwidth actually delivered, if every transferred word was
// useful.
func (s Stats) BusUtilization() float64 {
	if s.LastDataEnd == 0 {
		return 0
	}
	return float64(s.DataBusBusy) / float64(s.LastDataEnd)
}

func (s Stats) String() string {
	str := fmt.Sprintf("act=%d pre=%d rd=%d wr=%d hit=%d miss=%d conflict=%d ret=%d refresh=%d busBusy=%d lastData=%d",
		s.Activates, s.Precharges, s.Reads, s.Writes, s.PageHits, s.PageMisses, s.PageConflicts, s.Retires, s.Refreshes, s.DataBusBusy, s.LastDataEnd)
	if s.Rejections != 0 || s.JitterCycles != 0 {
		str += fmt.Sprintf(" reject=%d jitter=%d", s.Rejections, s.JitterCycles)
	}
	return str
}
