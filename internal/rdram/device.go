package rdram

import (
	"fmt"

	"rdramstream/internal/telemetry"
)

// Request asks the device to transfer one DATA packet (two 64-bit words).
//
// Bank/Row/Col address the packet: Col is the packet index within the page
// (0 .. PageWords/WordsPerPacket - 1). The caller decides the precharge
// policy: AutoPrecharge models a closed-page policy (the bank is precharged
// immediately after the column access); leaving it false models an
// open-page policy (the sense amps stay open until a conflicting activate
// or an explicit PrechargeBank).
type Request struct {
	Bank, Row, Col int
	Write          bool
	AutoPrecharge  bool
	// Data holds the words to store for a write request.
	Data [WordsPerPacket]uint64
}

// Result reports when each packet of a request occupied its bus.
// Times are absolute interface-clock cycles. PreIssue/ActIssue are -1 when
// the request hit the open page and needed no row activity.
type Result struct {
	PreIssue  int64 // ROW PRER packet start (page conflict only)
	ActIssue  int64 // ROW ACT packet start (page miss only)
	ColIssue  int64 // COL RD/WR packet start
	DataStart int64 // first cycle of the DATA packet
	DataEnd   int64 // first cycle after the DATA packet
	PageHit   bool  // the access found its row already in the sense amps
	// Data holds the words fetched by a read request.
	Data [WordsPerPacket]uint64
}

type bankState struct {
	open       bool
	row        int
	rcdReady   int64 // earliest COL packet after the last ACT (t_RCD)
	lastColEnd int64 // end of the most recent COL packet (for t_CPOL)
	lastAct    int64 // start of the most recent ACT (for t_RC / t_RAS)
	preDone    int64 // cycle at which the last precharge completes (t_RP)
	everActed  bool
}

// Device is a single Direct RDRAM chip: a set of banks with per-bank sense
// amplifiers behind shared ROW, COL, and DATA buses. It is a timing model
// and a functional store: reads return the data previously written.
//
// Device is not safe for concurrent use; the simulators drive it from a
// single goroutine.
type Device struct {
	cfg Config

	banks []bankState

	rowBusFree  int64 // next cycle the ROW command bus is free
	colBusFree  int64 // next cycle the COL command bus is free
	dataBusFree int64

	lastAct []int64 // most recent ACT per chip on the channel (t_RR)
	anyAct  []bool

	lastWriteDataEnd int64 // end of most recent write DATA packet (t_RW)
	anyWrite         bool

	pendingRetire []bool // per chip: a COL RET packet must precede the next read

	nextRefresh int64
	refreshBank int

	pages   map[int][]uint64 // sparse functional storage, keyed by page id
	pool    *PagePool        // optional recycler behind pageSlot
	noStore bool             // timing-only mode: skip the functional store

	// Derived constants hoisted from the configuration at construction so
	// the per-access path does no geometry arithmetic: packetsPerPage and
	// the banks-per-chip divisor used to be recomputed on every checkAddr
	// and every t_RR lookup.
	packetsPerPage int
	banksPerDev    int

	stats Stats

	// Trace, when non-nil, receives every packet the device schedules. It
	// is used to render the Figure 5/6 style command/data timelines.
	Trace func(ev TraceEvent)

	// Telemetry, when non-nil, receives per-bank operation counts, bus
	// occupancy spans, and the stall-cause attribution of idle DATA-bus
	// cycles. Its hooks are called from the same sites that update Stats,
	// so the two reconcile exactly. Nil costs one pointer check per hook.
	Telemetry *telemetry.DeviceProbe

	// Faults, when non-nil, perturbs the device deterministically: transient
	// access rejections, bounded per-access timing jitter, and refresh-storm
	// cadence overrides. Nil (the default) is the nominal device; an
	// injector returning only zero AccessFaults is bit-identical to nil.
	Faults FaultInjector
}

// NewDevice builds a device from cfg. It panics on an invalid
// configuration; use cfg.Validate to check first when the configuration
// comes from outside the program.
func NewDevice(cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{
		cfg:            cfg,
		banks:          make([]bankState, cfg.Geometry.Banks),
		pages:          make(map[int][]uint64),
		lastAct:        make([]int64, cfg.Geometry.Devices()),
		anyAct:         make([]bool, cfg.Geometry.Devices()),
		pendingRetire:  make([]bool, cfg.Geometry.Devices()),
		packetsPerPage: cfg.Geometry.PageWords / WordsPerPacket,
		banksPerDev:    cfg.Geometry.BanksPerDevice(),
	}
	if cfg.RefreshInterval > 0 {
		d.nextRefresh = cfg.RefreshInterval
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a copy of the device's operation counters.
func (d *Device) Stats() Stats { return d.stats }

// PacketsPerPage is the number of DATA packets held by one page.
func (d *Device) PacketsPerPage() int { return d.packetsPerPage }

func (d *Device) checkAddr(bank, row, col int) {
	g := d.cfg.Geometry
	if bank < 0 || bank >= g.Banks || row < 0 || row >= g.PagesPerBank ||
		col < 0 || col >= d.packetsPerPage {
		panic(fmt.Sprintf("rdram: address out of range: bank=%d row=%d col=%d (geometry %+v)", bank, row, col, g))
	}
}

// emit reports a scheduled packet to the trace hook, if any.
func (d *Device) emit(kind TraceKind, at int64, dur int, bank, row, col int) {
	if d.Trace != nil {
		d.Trace(TraceEvent{Kind: kind, Start: at, End: at + int64(dur), Bank: bank, Row: row, Col: col})
	}
}

// prechargeAt schedules a ROW PRER packet for bank b no earlier than at and
// returns its start cycle. The caller must know the bank is open.
//
// When occupyBus is false the PRER packet is slotted into a row-bus gap
// without delaying subsequent ACT packets. This models the paper's
// observation that "the precharge can be completely overlapped with other
// activity, since tRAS + tRP < 2*tRR + tRAC": with ACT packets at least
// t_RR = 8 cycles apart and only t_PACK = 4 cycles wide, the row bus always
// has a free slot for a background (auto) precharge. Critical-path
// precharges — page conflicts and explicit closes — do occupy the bus.
// rdlint:hotpath
func (d *Device) prechargeAt(b int, at int64, occupyBus bool) int64 {
	t := &d.cfg.Timing
	bk := &d.banks[b]
	tp := at
	if occupyBus {
		tp = max(tp, d.rowBusFree)
	}
	// The precharge may overlap the tail of the last COL packet by at most
	// t_CPOL cycles.
	tp = max(tp, bk.lastColEnd-int64(t.TCPOL))
	// The row must have been active for at least t_RAS.
	if bk.everActed {
		tp = max(tp, bk.lastAct+int64(t.TRAS()))
	}
	if occupyBus {
		d.rowBusFree = tp + int64(t.TPack)
	}
	bk.open = false
	bk.preDone = tp + int64(t.TRP)
	d.stats.Precharges++
	d.emit(TracePrecharge, tp, t.TPack, b, bk.row, -1)
	if d.Telemetry != nil {
		d.Telemetry.OnPrecharge(b, tp, tp+int64(t.TPack))
	}
	return tp
}

// activateAt schedules a ROW ACT packet opening row in bank b no earlier
// than at, first precharging any double-bank neighbour that is open, and
// returns the ACT start cycle.
// rdlint:hotpath
func (d *Device) activateAt(b, row int, at int64) int64 {
	t := &d.cfg.Timing
	bk := &d.banks[b]
	// Double-bank cores share sense amps between adjacent banks: both
	// cannot be open at once.
	for _, nb := range d.cfg.Geometry.adjacent(b) {
		if d.banks[nb].open {
			pre := d.prechargeAt(nb, at, true)
			at = max(at, pre+int64(t.TRP))
		}
	}
	dev := b / d.banksPerDev
	ta := max(at, d.rowBusFree)
	ta = max(ta, bk.preDone)
	if d.anyAct[dev] {
		// t_RR binds consecutive ACT packets to the *same* chip; other
		// chips on the channel only contend for the ROW bus itself.
		ta = max(ta, d.lastAct[dev]+int64(t.TRR))
	}
	if bk.everActed {
		ta = max(ta, bk.lastAct+int64(t.TRC))
	}
	d.rowBusFree = ta + int64(t.TPack)
	bk.open = true
	bk.row = row
	bk.rcdReady = ta + int64(t.TRCD)
	bk.lastAct = ta
	bk.everActed = true
	d.lastAct[dev] = ta
	d.anyAct[dev] = true
	d.stats.Activates++
	d.emit(TraceActivate, ta, t.TPack, b, row, -1)
	if d.Telemetry != nil {
		d.Telemetry.OnActivate(b, ta, ta+int64(t.TPack))
	}
	return ta
}

// PrechargeBank explicitly precharges bank b (open-page policy conflict
// handling, or a controller that speculatively closes pages). It returns
// the PRER start cycle, or -1 if the bank was already closed.
func (d *Device) PrechargeBank(b int, at int64) int64 {
	if b < 0 || b >= len(d.banks) {
		panic(fmt.Sprintf("rdram: bank %d out of range", b))
	}
	if !d.banks[b].open {
		return -1
	}
	return d.prechargeAt(b, at, true)
}

// BankOpenRow returns the row currently latched in bank b's sense amps,
// and whether the bank is open.
func (d *Device) BankOpenRow(b int) (row int, open bool) {
	bk := &d.banks[b]
	return bk.row, bk.open
}

// AccessReadyAt estimates the earliest cycle a column access to (bank,row)
// could issue, accounting for any precharge/activate the access would first
// require. Schedulers use it to rank candidate requests (the bank-aware
// MSU policy); it does not change device state.
func (d *Device) AccessReadyAt(bank, row int, at int64) int64 {
	bk := &d.banks[bank]
	t := &d.cfg.Timing
	if bk.open && bk.row == row {
		return max(at, bk.rcdReady)
	}
	ready := at
	if bk.open {
		// Page conflict: precharge first.
		pre := max(ready, bk.lastColEnd-int64(t.TCPOL))
		if bk.everActed {
			pre = max(pre, bk.lastAct+int64(t.TRAS()))
		}
		ready = pre + int64(t.TRP)
	} else {
		ready = max(ready, bk.preDone)
	}
	if dev := bank / d.banksPerDev; d.anyAct[dev] {
		ready = max(ready, d.lastAct[dev]+int64(t.TRR))
	}
	if bk.everActed {
		ready = max(ready, bk.lastAct+int64(t.TRC))
	}
	return ready + int64(t.TRCD)
}

// ActivateBank opens a row without transferring data — the speculative
// row-activation the paper's §6 proposes ("a scheduling policy that
// speculatively precharges a page and issues a ROW ACT command before the
// stream crosses the page boundary"). A conflicting open row is precharged
// first. It returns the ACT issue cycle. Activating the already-open row
// is a no-op returning -1.
func (d *Device) ActivateBank(b, row int, at int64) int64 {
	d.checkAddr(b, row, 0)
	bk := &d.banks[b]
	if bk.open && bk.row == row {
		return -1
	}
	if bk.open {
		pre := d.prechargeAt(b, at, true)
		at = max(at, pre+int64(d.cfg.Timing.TRP))
	}
	return d.activateAt(b, row, at)
}

// maybeRefresh injects pending refresh operations before cycle at.
// Each refresh is an ACT/PRER pair on the next bank in round-robin order.
// rdlint:hotpath
func (d *Device) maybeRefresh(at int64) {
	if d.cfg.RefreshInterval <= 0 {
		return
	}
	for d.nextRefresh <= at {
		b := d.refreshBank
		d.refreshBank = (d.refreshBank + 1) % len(d.banks)
		when := d.nextRefresh
		gap := d.cfg.RefreshInterval
		if d.Faults != nil {
			// Refresh-storm injection: the injector may compress the gap to
			// the next refresh (a burst of back-to-back refreshes) or stretch
			// it back out. Non-positive answers keep the nominal cadence.
			if g := d.Faults.RefreshGap(gap); g > 0 {
				gap = g
			}
		}
		d.nextRefresh += gap
		if d.banks[b].open {
			pre := d.prechargeAt(b, when, true)
			when = pre + int64(d.cfg.Timing.TRP)
		}
		// Refresh the next due row; the row address is immaterial to
		// timing, so refresh row 0.
		act := d.activateAt(b, 0, when)
		d.prechargeAt(b, act+int64(d.cfg.Timing.TRAS()), true)
		d.banks[b].open = false
		d.stats.Refreshes++
	}
}

// Do performs one packet access no earlier than cycle at and returns the
// scheduled packet times. It resolves page misses and conflicts itself:
// a closed bank is activated; an open bank holding the wrong row is
// precharged and then activated. Do is the fault-oblivious entry point:
// under an injector that rejects the access it panics, so fault-aware
// callers must use Attempt (directly or through engine.Issue's bounded
// retry path) instead.
func (d *Device) Do(at int64, req Request) Result {
	res, ok := d.Attempt(at, req)
	if !ok {
		panic(fmt.Sprintf("rdram: access rejected under fault injection (bank=%d row=%d col=%d at=%d); use Attempt or engine.Issue on fault-injected devices", req.Bank, req.Row, req.Col, at))
	}
	return res
}

// Attempt performs one packet access like Do, but consults the fault
// injector first: a rejected access returns ok=false with no device state
// change (beyond the Stats.Rejections count), and an accepted access may
// carry bounded additive latency on its t_RCD/t_CAC/t_RP terms. With no
// injector attached Attempt always accepts and is exactly Do.
// rdlint:hotpath
func (d *Device) Attempt(at int64, req Request) (Result, bool) {
	d.checkAddr(req.Bank, req.Row, req.Col)
	var fault AccessFault
	if d.Faults != nil {
		fault = d.Faults.OnAccess(at, req.Bank, req.Write)
		if fault.Reject {
			d.stats.Rejections++
			return Result{}, false
		}
	}
	if d.cfg.RefreshInterval > 0 {
		d.maybeRefresh(at)
	}
	t := &d.cfg.Timing
	bk := &d.banks[req.Bank]

	// prevDataFree marks where the idle window before this access's DATA
	// packet begins, for stall-cause attribution.
	prevDataFree := d.dataBusFree

	res := Result{PreIssue: -1, ActIssue: -1}
	earliestCol := at
	switch {
	case bk.open && bk.row == req.Row:
		res.PageHit = true
		d.stats.PageHits++
	case bk.open:
		// Page conflict: precharge, then activate the requested row; RPExtra
		// jitter stretches the conflict's precharge-to-activate wait.
		res.PreIssue = d.prechargeAt(req.Bank, at, true)
		res.ActIssue = d.activateAt(req.Bank, req.Row, res.PreIssue+int64(t.TRP)+fault.RPExtra)
		d.stats.JitterCycles += fault.RPExtra
		d.stats.PageConflicts++
		d.stats.PageMisses++
	default:
		res.ActIssue = d.activateAt(req.Bank, req.Row, at)
		d.stats.PageMisses++
	}
	if d.Telemetry != nil {
		d.Telemetry.OnAccess(req.Bank, res.PageHit, res.PreIssue >= 0)
	}
	rcdReady := bk.rcdReady
	if res.ActIssue >= 0 && fault.RCDExtra > 0 {
		// RCDExtra jitter delays the first column access to the freshly
		// activated row beyond the nominal t_RCD.
		rcdReady += fault.RCDExtra
		d.stats.JitterCycles += fault.RCDExtra
	}
	earliestCol = max(earliestCol, rcdReady)

	// A COL RET packet retires the write buffer between the last COL WR and
	// the next COL RD. Its cost is already captured by the data-bus
	// turnaround: the paper combines the retire's t_PACK and the round-trip
	// t_RDLY into t_RW, which we enforce on the DATA bus below — so the RET
	// is emitted for the trace and counted, but does not consume an extra
	// critical-path column-bus slot.
	reqDev := req.Bank / d.banksPerDev
	if !req.Write && d.pendingRetire[reqDev] {
		d.pendingRetire[reqDev] = false
		d.stats.Retires++
		d.emit(TraceRetire, d.colBusFree, t.TPack, req.Bank, -1, -1)
		if d.Telemetry != nil {
			d.Telemetry.OnRetire(req.Bank, d.colBusFree, d.colBusFree+int64(t.TPack))
		}
	}

	tc := max(earliestCol, d.colBusFree)

	// Data packet latency from the COL packet start. Reads see the page-hit
	// latency t_CAC plus the one extra cycle that makes a page miss cost
	// exactly t_RAC = t_RCD + t_CAC + 1 from the ACT packet. CACExtra
	// jitter stretches the column-to-data pipeline for this access.
	lat := int64(t.TCAC + 1)
	if req.Write {
		lat = int64(t.TCWD)
	}
	lat += fault.CACExtra
	d.stats.JitterCycles += fault.CACExtra
	ds := tc + lat
	// The DATA bus is a shared pipelined resource; packets may not overlap,
	// and a read DATA packet must trail the previous write DATA packet by
	// the bus turnaround time t_RW.
	minDS := d.dataBusFree
	trwBound := int64(-1)
	if !req.Write && d.anyWrite {
		trwBound = d.lastWriteDataEnd + int64(t.TRW)
		minDS = max(minDS, trwBound)
	}
	if ds < minDS {
		tc += minDS - ds
		ds = minDS
	}

	d.colBusFree = tc + int64(t.TPack)
	bk.lastColEnd = tc + int64(t.TPack)
	de := ds + int64(t.TPack)
	d.dataBusFree = de
	res.ColIssue = tc
	res.DataStart = ds
	res.DataEnd = de

	if d.Telemetry != nil {
		d.attributeIdle(prevDataFree, at, trwBound, rcdReady, ds, &res)
		d.Telemetry.OnColumn(req.Bank, req.Write, tc, tc+int64(t.TPack))
		d.Telemetry.OnData(req.Bank, req.Write, ds, de)
	}

	w := req.Col * WordsPerPacket
	if req.Write {
		d.pendingRetire[reqDev] = true
		d.lastWriteDataEnd = de
		d.anyWrite = true
		d.stats.Writes++
		if !d.noStore {
			copy(d.pageSlot(req.Bank, req.Row)[w:w+WordsPerPacket], req.Data[:])
		}
		d.emit(TraceWriteCol, tc, t.TPack, req.Bank, req.Row, req.Col)
		d.emit(TraceWriteData, ds, t.TPack, req.Bank, req.Row, req.Col)
	} else {
		d.stats.Reads++
		if !d.noStore {
			copy(res.Data[:], d.pageSlot(req.Bank, req.Row)[w:w+WordsPerPacket])
		}
		d.emit(TraceReadCol, tc, t.TPack, req.Bank, req.Row, req.Col)
		d.emit(TraceReadData, ds, t.TPack, req.Bank, req.Row, req.Col)
	}
	d.stats.DataBusBusy += int64(t.TPack)
	if de > d.stats.LastDataEnd {
		d.stats.LastDataEnd = de
	}

	if req.AutoPrecharge {
		d.prechargeAt(req.Bank, tc, false)
	}
	return res, true
}

// attributeIdle charges every idle DATA-bus cycle in [prevFree, ds) —
// the gap between the previous DATA packet and this one — to exactly one
// stall cause. It walks a chain of monotone thresholds in causal order:
//
//	prevFree ──(controller idle)── at ──(precharge t_RP)── PreIssue+t_RP
//	──(t_RC/t_RR/ROW-bus wait)── ActIssue ──(t_RCD)── rcdReady
//	──(read/write turnaround t_RW)── trwBound ──(COL bus + CAS pipe)── ds
//
// Each segment is clamped to [prevFree, ds), so the per-cause charges tile
// the gap exactly; summed over a run (plus any controller-charged tail)
// they equal Cycles − DataBusBusy, the invariant the telemetry tests
// assert. Cycles before the request arrived are charged to the cause the
// controller declared via SetIdleCause (no-request, dependency wait, or
// FIFO starvation).
func (d *Device) attributeIdle(prevFree, at, trwBound, rcdReady, ds int64, res *Result) {
	if ds <= prevFree {
		return
	}
	t := &d.cfg.Timing
	p := d.Telemetry
	pos := prevFree
	charge := func(c telemetry.StallCause, until int64) {
		if until > ds {
			until = ds
		}
		if until > pos {
			p.ChargeStall(c, until-pos)
			pos = until
		}
	}
	charge(p.IdleCause(), at)
	if res.PreIssue >= 0 {
		charge(telemetry.StallPrecharge, res.PreIssue+int64(t.TRP))
	}
	if res.ActIssue >= 0 {
		charge(telemetry.StallRowTiming, res.ActIssue)
		charge(telemetry.StallActivate, res.ActIssue+int64(t.TRCD))
	} else {
		// Page hit on a freshly opened row can still wait out t_RCD.
		charge(telemetry.StallActivate, rcdReady)
	}
	if trwBound >= 0 {
		charge(telemetry.StallTurnaround, trwBound)
	}
	charge(telemetry.StallColumn, ds)
}

// NoEvent is NextEventAt's answer when no device state change is scheduled
// after the queried time.
const NoEvent = int64(-1)

// NextEventAt returns the earliest cycle strictly after now at which any
// device resource changes state: a bank finishing its precharge (t_RP) or
// becoming column-ready (t_RCD), a command or DATA bus freeing, the
// read-after-write turnaround window closing, or the refresh timer firing.
// It is a pure query.
//
// Callers use it to jump simulated time instead of crawling cycle-by-cycle.
// Note that for the decoupled controllers a device event alone never makes
// a *new* request issuable — FIFO occupancy changes only at CPU and retry
// events — so the schedulers min their own event sets and use NextEventAt
// for stall diagnostics and tests (see docs/PERFORMANCE.md for why folding
// it into the scheduler wake-ups would split telemetry idle episodes).
// rdlint:hotpath
func (d *Device) NextEventAt(now int64) int64 {
	next := NoEvent
	consider := func(t int64) {
		if t > now && (next == NoEvent || t < next) {
			next = t
		}
	}
	if d.cfg.RefreshInterval > 0 {
		consider(d.nextRefresh)
	}
	consider(d.rowBusFree)
	consider(d.colBusFree)
	consider(d.dataBusFree)
	if d.anyWrite {
		consider(d.lastWriteDataEnd + int64(d.cfg.Timing.TRW))
	}
	for i := range d.banks {
		bk := &d.banks[i]
		consider(bk.preDone)
		if bk.open {
			consider(bk.rcdReady)
		}
	}
	return next
}

// pageSlot returns the storage backing (bank,row), allocating it on first
// touch so that untouched memory costs nothing. With a PagePool attached
// the backing comes from the pool instead of the heap.
func (d *Device) pageSlot(bank, row int) []uint64 {
	id := bank*d.cfg.Geometry.PagesPerBank + row
	p, ok := d.pages[id]
	if !ok {
		if d.pool != nil {
			p = d.pool.get(d.cfg.Geometry.PageWords)
		} else {
			p = make([]uint64, d.cfg.Geometry.PageWords)
		}
		d.pages[id] = p
	}
	return p
}

// SetTimingOnly disables the functional store: accesses move no data
// (reads return zeros, PokeWord is a no-op) and page slots are never
// allocated. Data values never influence the timing model — scheduling is
// purely address-driven — so a timing-only run is cycle-identical to a
// functional one; the harness enables this for SkipVerify runs, where the
// memory image is never inspected.
func (d *Device) SetTimingOnly(on bool) { d.noStore = on }

// UsePagePool routes this device's page-slot allocations through pool.
// It must be attached before the first access; the pool is not safe for
// concurrent use, so share one only between devices driven by the same
// goroutine (the sweep harness keeps one per worker).
func (d *Device) UsePagePool(pool *PagePool) { d.pool = pool }

// ReleasePages returns every touched page to the attached pool and clears
// the functional store. The device must not be used afterwards; the sweep
// harness calls this once a scenario's verification is done.
func (d *Device) ReleasePages() {
	if d.pool == nil {
		return
	}
	for _, p := range d.pages {
		d.pool.put(p)
	}
	clear(d.pages)
}

// PagePool recycles page-slot backing arrays across simulations, the
// largest per-scenario allocation a sweep repeats. Pages are zeroed on
// reuse, because the functional store promises zero-filled memory on first
// touch. Not safe for concurrent use.
type PagePool struct {
	free [][]uint64
}

// get returns a zeroed page of exactly words words.
func (p *PagePool) get(words int) []uint64 {
	for len(p.free) > 0 {
		pg := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if len(pg) == words {
			clear(pg)
			return pg
		}
		// A geometry change mid-sweep strands old sizes; drop them.
	}
	return make([]uint64, words)
}

func (p *PagePool) put(pg []uint64) { p.free = append(p.free, pg) }

// PeekWord returns the stored 64-bit word at the given packet-level
// coordinates plus word offset, for functional verification in tests.
func (d *Device) PeekWord(bank, row, col, word int) uint64 {
	d.checkAddr(bank, row, col)
	if word < 0 || word >= WordsPerPacket {
		panic(fmt.Sprintf("rdram: word offset %d out of range", word))
	}
	if d.noStore {
		return 0
	}
	return d.pageSlot(bank, row)[col*WordsPerPacket+word]
}

// PokeWord stores a 64-bit word directly, bypassing timing — used to
// initialize memory contents before a simulation.
func (d *Device) PokeWord(bank, row, col, word int, v uint64) {
	d.checkAddr(bank, row, col)
	if word < 0 || word >= WordsPerPacket {
		panic(fmt.Sprintf("rdram: word offset %d out of range", word))
	}
	if d.noStore {
		return
	}
	d.pageSlot(bank, row)[col*WordsPerPacket+word] = v
}
