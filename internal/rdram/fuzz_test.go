package rdram

import "testing"

// FuzzDeviceDo fuzzes the device with arbitrary request streams and checks
// the global scheduling invariants: data packets never overlap, never
// precede their column packets, and the functional store round-trips.
func FuzzDeviceDo(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 128, 9, 200, 31, 64})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		cfg := DefaultConfig()
		cfg.Geometry.PagesPerBank = 16
		d := NewDevice(cfg)
		var prevDataEnd int64
		now := int64(0)
		for i, b := range ops {
			req := Request{
				Bank:          int(b) % cfg.Geometry.Banks,
				Row:           (int(b) / 8) % cfg.Geometry.PagesPerBank,
				Col:           (i * 7) % (cfg.Geometry.PageWords / WordsPerPacket),
				Write:         b%3 == 0,
				AutoPrecharge: b%5 == 0,
			}
			if req.Write {
				req.Data = [2]uint64{uint64(i), uint64(b)}
			}
			res := d.Do(now, req)
			if res.DataStart < res.ColIssue {
				t.Fatalf("op %d: data before column packet", i)
			}
			if res.DataStart < prevDataEnd {
				t.Fatalf("op %d: data bus overlap", i)
			}
			prevDataEnd = res.DataEnd
			if req.Write {
				if got := d.PeekWord(req.Bank, req.Row, req.Col, 0); got != uint64(i) {
					t.Fatalf("op %d: stored %d, read back %d", i, i, got)
				}
			}
			if b%7 == 0 {
				now = res.DataEnd
			}
		}
	})
}
