package rdram

import "testing"

func TestDefaultTimingMatchesFigure2(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"TPack", tm.TPack, 4},
		{"TRCD", tm.TRCD, 11},
		{"TRP", tm.TRP, 10},
		{"TCPOL", tm.TCPOL, 1},
		{"TCAC", tm.TCAC, 8},
		{"TRC", tm.TRC, 34},
		{"TRR", tm.TRR, 8},
		{"TRDLY", tm.TRDLY, 2},
		{"TRW", tm.TRW, 6},
		{"TRAC", tm.TRAC(), 20},
		{"TRAS", tm.TRAS(), 24},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	// t_RW must equal t_PACK + t_RDLY per the paper's definition.
	if tm.TRW != tm.TPack+tm.TRDLY {
		t.Errorf("TRW = %d, want TPack+TRDLY = %d", tm.TRW, tm.TPack+tm.TRDLY)
	}
	// The paper's precharge-overlap argument requires tRAS+tRP < 2*tRR+tRAC.
	if tm.TRAS()+tm.TRP >= 2*tm.TRR+tm.TRAC() {
		t.Errorf("tRAS+tRP = %d not < 2*tRR+tRAC = %d", tm.TRAS()+tm.TRP, 2*tm.TRR+tm.TRAC())
	}
}

func TestTimingPeakRates(t *testing.T) {
	tm := DefaultTiming()
	// 16 bytes per 4 cycles = 4 bytes/cycle = 1.6 GB/s at 400 MHz.
	if got := tm.PeakBytesPerCycle(); got != 4 {
		t.Errorf("PeakBytesPerCycle = %v, want 4", got)
	}
	if got := tm.CyclesPerWordPeak(); got != 2 {
		t.Errorf("CyclesPerWordPeak = %v, want 2", got)
	}
}

func TestTimingValidateRejects(t *testing.T) {
	bad := []func(*Timing){
		func(tm *Timing) { tm.TPack = 0 },
		func(tm *Timing) { tm.TRCD = -1 },
		func(tm *Timing) { tm.TCPOL = 9 },
		func(tm *Timing) { tm.TRC = tm.TRP - 1 },
		func(tm *Timing) { tm.TRW = -2 },
	}
	for i, mutate := range bad {
		tm := DefaultTiming()
		mutate(&tm)
		if err := tm.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, tm)
		}
	}
}

func TestGeometryValidate(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if got := g.CapacityWords(); got != 8*8192*128 {
		t.Errorf("CapacityWords = %d, want %d", got, 8*8192*128)
	}
	bad := []Geometry{
		{Banks: 0, PageWords: 128, PagesPerBank: 1},
		{Banks: 8, PageWords: 3, PagesPerBank: 1},
		{Banks: 8, PageWords: 128, PagesPerBank: 0},
		{Banks: 7, PageWords: 128, PagesPerBank: 1, DoubleBank: true},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, g)
		}
	}
}

func TestGeometryAdjacent(t *testing.T) {
	g := Geometry{Banks: 16, PageWords: 128, PagesPerBank: 16, DoubleBank: true}
	if got := g.adjacent(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("adjacent(0) = %v, want [1]", got)
	}
	if got := g.adjacent(5); len(got) != 1 || got[0] != 4 {
		t.Errorf("adjacent(5) = %v, want [4]", got)
	}
	g.DoubleBank = false
	if got := g.adjacent(0); got != nil {
		t.Errorf("adjacent without DoubleBank = %v, want nil", got)
	}
}

func TestConfigValidate(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c.RefreshInterval = -5
	if err := c.Validate(); err == nil {
		t.Error("expected error for negative RefreshInterval")
	}
}
