package rdram

import (
	"math/rand"
	"strings"
	"testing"
)

func newTestDevice(t testing.TB) *Device {
	t.Helper()
	return NewDevice(DefaultConfig())
}

func TestColdReadCostsTRAC(t *testing.T) {
	d := newTestDevice(t)
	res := d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	if res.PageHit {
		t.Error("cold read reported a page hit")
	}
	if res.ActIssue != 0 {
		t.Errorf("ActIssue = %d, want 0", res.ActIssue)
	}
	if res.ColIssue != int64(d.cfg.Timing.TRCD) {
		t.Errorf("ColIssue = %d, want TRCD = %d", res.ColIssue, d.cfg.Timing.TRCD)
	}
	if res.DataStart != int64(d.cfg.Timing.TRAC()) {
		t.Errorf("DataStart = %d, want TRAC = %d", res.DataStart, d.cfg.Timing.TRAC())
	}
	if res.DataEnd != res.DataStart+int64(d.cfg.Timing.TPack) {
		t.Errorf("DataEnd = %d, want DataStart+TPack", res.DataEnd)
	}
}

func TestOpenPageStreamSaturatesDataBus(t *testing.T) {
	// Consecutive page hits must deliver back-to-back DATA packets: the
	// open-page stream case transfers at the device's full 1.6 GB/s.
	d := newTestDevice(t)
	var prevEnd int64
	for col := 0; col < 16; col++ {
		res := d.Do(0, Request{Bank: 0, Row: 0, Col: col})
		if col > 0 {
			if !res.PageHit {
				t.Fatalf("col %d: expected page hit", col)
			}
			if res.DataStart != prevEnd {
				t.Fatalf("col %d: DataStart = %d, want contiguous %d", col, res.DataStart, prevEnd)
			}
		}
		prevEnd = res.DataEnd
	}
	st := d.Stats()
	if st.PageHits != 15 || st.PageMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 15/1", st.PageHits, st.PageMisses)
	}
}

func TestPageConflictPrechargesThenActivates(t *testing.T) {
	d := newTestDevice(t)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	res := d.Do(0, Request{Bank: 0, Row: 1, Col: 0})
	if res.PageHit {
		t.Fatal("conflicting access reported a page hit")
	}
	if res.PreIssue < 0 || res.ActIssue < 0 {
		t.Fatalf("expected precharge and activate, got pre=%d act=%d", res.PreIssue, res.ActIssue)
	}
	tm := d.cfg.Timing
	if res.ActIssue < res.PreIssue+int64(tm.TRP) {
		t.Errorf("ACT at %d violates TRP after PRER at %d", res.ActIssue, res.PreIssue)
	}
	// The row must stay open at least TRAS before the precharge.
	if res.PreIssue < int64(tm.TRAS()) {
		t.Errorf("PRER at %d violates TRAS = %d", res.PreIssue, tm.TRAS())
	}
	if d.Stats().PageConflicts != 1 {
		t.Errorf("PageConflicts = %d, want 1", d.Stats().PageConflicts)
	}
}

func TestTRRBetweenActivatesOnDifferentBanks(t *testing.T) {
	d := newTestDevice(t)
	r0 := d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	r1 := d.Do(0, Request{Bank: 1, Row: 0, Col: 0})
	if got := r1.ActIssue - r0.ActIssue; got != int64(d.cfg.Timing.TRR) {
		t.Errorf("ACT separation = %d, want TRR = %d", got, d.cfg.Timing.TRR)
	}
}

func TestTRCBetweenActivatesOnSameBank(t *testing.T) {
	d := newTestDevice(t)
	r0 := d.Do(0, Request{Bank: 0, Row: 0, Col: 0, AutoPrecharge: true})
	r1 := d.Do(0, Request{Bank: 0, Row: 0, Col: 1, AutoPrecharge: true})
	if got := r1.ActIssue - r0.ActIssue; got < int64(d.cfg.Timing.TRC) {
		t.Errorf("same-bank ACT separation = %d, want >= TRC = %d", got, d.cfg.Timing.TRC)
	}
	if r1.PageHit {
		t.Error("access after auto-precharge reported a page hit")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	d := newTestDevice(t)
	w := d.Do(0, Request{Bank: 0, Row: 0, Col: 0, Write: true, Data: [2]uint64{1, 2}})
	r := d.Do(0, Request{Bank: 0, Row: 0, Col: 1})
	tm := d.cfg.Timing
	if r.DataStart < w.DataEnd+int64(tm.TRW) {
		t.Errorf("read data at %d violates TRW after write data end %d", r.DataStart, w.DataEnd)
	}
	if d.Stats().Retires != 1 {
		t.Errorf("Retires = %d, want 1 (COL RET before the read)", d.Stats().Retires)
	}
}

func TestReadToWriteNeedsNoTurnaround(t *testing.T) {
	d := newTestDevice(t)
	r := d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	w := d.Do(0, Request{Bank: 0, Row: 0, Col: 1, Write: true})
	// The write DATA packet may start as soon as the bus frees.
	if w.DataStart > r.DataEnd+int64(d.cfg.Timing.TPack) {
		t.Errorf("write data at %d unexpectedly delayed after read data end %d", w.DataStart, r.DataEnd)
	}
	if d.Stats().Retires != 0 {
		t.Errorf("Retires = %d, want 0", d.Stats().Retires)
	}
}

func TestFunctionalWriteThenRead(t *testing.T) {
	d := newTestDevice(t)
	d.Do(0, Request{Bank: 3, Row: 7, Col: 5, Write: true, Data: [2]uint64{0xdead, 0xbeef}})
	res := d.Do(0, Request{Bank: 3, Row: 7, Col: 5})
	if res.Data != [2]uint64{0xdead, 0xbeef} {
		t.Errorf("read back %v, want [dead beef]", res.Data)
	}
	if got := d.PeekWord(3, 7, 5, 1); got != 0xbeef {
		t.Errorf("PeekWord = %#x, want 0xbeef", got)
	}
}

func TestPokePeekRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	d.PokeWord(2, 100, 10, 0, 42)
	if got := d.PeekWord(2, 100, 10, 0); got != 42 {
		t.Errorf("PeekWord = %d, want 42", got)
	}
	// Untouched words read as zero.
	if got := d.PeekWord(2, 100, 10, 1); got != 0 {
		t.Errorf("untouched word = %d, want 0", got)
	}
	res := d.Do(0, Request{Bank: 2, Row: 100, Col: 10})
	if res.Data != [2]uint64{42, 0} {
		t.Errorf("timed read = %v, want [42 0]", res.Data)
	}
}

func TestDoubleBankAdjacencyForcesPrecharge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry.Banks = 16
	cfg.Geometry.DoubleBank = true
	d := NewDevice(cfg)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	if _, open := d.BankOpenRow(0); !open {
		t.Fatal("bank 0 should be open")
	}
	d.Do(0, Request{Bank: 1, Row: 0, Col: 0})
	if _, open := d.BankOpenRow(0); open {
		t.Error("bank 0 should have been precharged when adjacent bank 1 opened")
	}
	if _, open := d.BankOpenRow(1); !open {
		t.Error("bank 1 should be open")
	}
	// Non-adjacent banks coexist.
	d.Do(0, Request{Bank: 4, Row: 0, Col: 0})
	if _, open := d.BankOpenRow(1); !open {
		t.Error("bank 1 should remain open when bank 4 opened")
	}
}

func TestExplicitPrecharge(t *testing.T) {
	d := newTestDevice(t)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	if got := d.PrechargeBank(0, 100); got < 0 {
		t.Fatal("PrechargeBank on open bank returned -1")
	}
	if _, open := d.BankOpenRow(0); open {
		t.Error("bank still open after explicit precharge")
	}
	if got := d.PrechargeBank(0, 200); got != -1 {
		t.Errorf("PrechargeBank on closed bank = %d, want -1", got)
	}
}

func TestRefreshInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 500
	d := NewDevice(cfg)
	now := int64(0)
	for i := 0; i < 100; i++ {
		res := d.Do(now, Request{Bank: i % 8, Row: 0, Col: i % 64})
		now = res.DataEnd
	}
	if d.Stats().Refreshes == 0 {
		t.Error("expected refreshes to be injected over a long run")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	d := newTestDevice(t)
	now := int64(0)
	for i := 0; i < 100; i++ {
		res := d.Do(now, Request{Bank: i % 8, Row: 0, Col: i % 64})
		now = res.DataEnd
	}
	if d.Stats().Refreshes != 0 {
		t.Errorf("Refreshes = %d, want 0 when disabled", d.Stats().Refreshes)
	}
}

func TestAddressRangeChecks(t *testing.T) {
	d := newTestDevice(t)
	cases := []Request{
		{Bank: -1},
		{Bank: 8},
		{Bank: 0, Row: 8192},
		{Bank: 0, Row: 0, Col: 64},
	}
	for i, req := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic for %+v", i, req)
				}
			}()
			d.Do(0, req)
		}()
	}
}

func TestTraceRecorderAndTimeline(t *testing.T) {
	d := newTestDevice(t)
	var rec Recorder
	d.Trace = rec.Hook()
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	d.Do(0, Request{Bank: 1, Row: 0, Col: 0, Write: true})
	d.Do(0, Request{Bank: 1, Row: 0, Col: 1})

	if len(rec.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
	rowEvents := rec.ByBus(0)
	if len(rowEvents) != 2 { // two ACTs
		t.Errorf("row-bus events = %d, want 2", len(rowEvents))
	}
	colEvents := rec.ByBus(1)
	if len(colEvents) != 4 { // RD, WR, RET, RD
		t.Errorf("col-bus events = %d, want 4", len(colEvents))
	}
	dataEvents := rec.ByBus(2)
	if len(dataEvents) != 3 {
		t.Errorf("data-bus events = %d, want 3", len(dataEvents))
	}
	tl := rec.Timeline(2)
	for _, want := range []string{"ROW", "COL", "DATA", "A", "R", "W"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := map[TraceKind]string{
		TraceActivate:  "ACT",
		TracePrecharge: "PRER",
		TraceReadCol:   "RD",
		TraceWriteCol:  "WR",
		TraceRetire:    "RET",
		TraceReadData:  "DATA<",
		TraceWriteData: "DATA>",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if got := TraceKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

// TestRandomizedProtocolInvariants drives the device with a pseudo-random
// request mix and checks global protocol invariants: DATA packets never
// overlap, reads always trail writes by the turnaround time, column packets
// respect tRCD, and the functional contents match a shadow memory.
func TestRandomizedProtocolInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	cfg := DefaultConfig()
	cfg.Geometry.PagesPerBank = 8 // keep the shadow small
	d := NewDevice(cfg)
	shadow := make(map[[4]int]uint64)

	type window struct {
		start, end int64
		write      bool
	}
	var dataWindows []window
	now := int64(0)
	for i := 0; i < 2000; i++ {
		req := Request{
			Bank:          rng.Intn(cfg.Geometry.Banks),
			Row:           rng.Intn(cfg.Geometry.PagesPerBank),
			Col:           rng.Intn(cfg.Geometry.PageWords / WordsPerPacket),
			Write:         rng.Intn(3) == 0,
			AutoPrecharge: rng.Intn(4) == 0,
		}
		if req.Write {
			req.Data = [2]uint64{rng.Uint64(), rng.Uint64()}
		}
		res := d.Do(now, req)
		if res.ColIssue < now {
			t.Fatalf("op %d: ColIssue %d before request time %d", i, res.ColIssue, now)
		}
		if res.DataStart < res.ColIssue {
			t.Fatalf("op %d: data before its column packet", i)
		}
		if res.ActIssue >= 0 && res.ColIssue < res.ActIssue+int64(cfg.Timing.TRCD) {
			t.Fatalf("op %d: COL at %d violates tRCD after ACT at %d", i, res.ColIssue, res.ActIssue)
		}
		dataWindows = append(dataWindows, window{res.DataStart, res.DataEnd, req.Write})

		key0 := [4]int{req.Bank, req.Row, req.Col, 0}
		key1 := [4]int{req.Bank, req.Row, req.Col, 1}
		if req.Write {
			shadow[key0], shadow[key1] = req.Data[0], req.Data[1]
		} else if res.Data[0] != shadow[key0] || res.Data[1] != shadow[key1] {
			t.Fatalf("op %d: read %v, shadow has [%d %d]", i, res.Data, shadow[key0], shadow[key1])
		}
		// Occasionally let time advance past the busy window.
		if rng.Intn(8) == 0 {
			now = res.DataEnd + int64(rng.Intn(40))
		}
	}
	for i := 1; i < len(dataWindows); i++ {
		prev, cur := dataWindows[i-1], dataWindows[i]
		if cur.start < prev.end {
			t.Fatalf("data packets %d and %d overlap: [%d,%d) then [%d,%d)", i-1, i, prev.start, prev.end, cur.start, cur.end)
		}
		if !cur.write && prev.write && cur.start < prev.end+int64(cfg.Timing.TRW) {
			t.Fatalf("read data %d violates turnaround after write %d", i, i-1)
		}
	}
	st := d.Stats()
	if st.PageHits+st.PageMisses != 2000 {
		t.Errorf("hits+misses = %d, want 2000", st.PageHits+st.PageMisses)
	}
	if st.PacketCount() != 2000 {
		t.Errorf("PacketCount = %d, want 2000", st.PacketCount())
	}
	if st.BusUtilization() <= 0 || st.BusUtilization() > 1 {
		t.Errorf("BusUtilization = %v out of (0,1]", st.BusUtilization())
	}
}

func TestStatsString(t *testing.T) {
	d := newTestDevice(t)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	s := d.Stats().String()
	if !strings.Contains(s, "act=1") || !strings.Contains(s, "rd=1") {
		t.Errorf("unexpected stats string: %s", s)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats should have zero hit rate")
	}
	s.PageHits, s.PageMisses = 3, 1
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}
