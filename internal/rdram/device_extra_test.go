package rdram

import (
	"strings"
	"testing"
)

func TestAccessReadyAtPredictsDo(t *testing.T) {
	// AccessReadyAt is a scheduler hint: for a variety of device states it
	// must match the COL issue time Do actually achieves, and must never
	// mutate state.
	cases := []func(d *Device) (bank, row int){
		// Cold bank.
		func(d *Device) (int, int) { return 0, 0 },
		// Open-page hit.
		func(d *Device) (int, int) { d.Do(0, Request{Bank: 1, Row: 3, Col: 0}); return 1, 3 },
		// Page conflict.
		func(d *Device) (int, int) { d.Do(0, Request{Bank: 2, Row: 0, Col: 0}); return 2, 5 },
		// Closed after auto-precharge (tRC pending).
		func(d *Device) (int, int) {
			d.Do(0, Request{Bank: 3, Row: 0, Col: 0, AutoPrecharge: true})
			return 3, 0
		},
	}
	for i, setup := range cases {
		d := newTestDevice(t)
		bank, row := setup(d)
		at := int64(40)
		predicted := d.AccessReadyAt(bank, row, at)
		res := d.Do(at, Request{Bank: bank, Row: row, Col: 1})
		if res.ColIssue != predicted {
			t.Errorf("case %d: predicted COL at %d, Do achieved %d", i, predicted, res.ColIssue)
		}
	}
}

func TestAccessReadyAtDoesNotMutate(t *testing.T) {
	d := newTestDevice(t)
	d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	before := d.Stats()
	d.AccessReadyAt(0, 5, 100) // conflict path
	d.AccessReadyAt(4, 0, 100) // cold path
	if d.Stats() != before {
		t.Error("AccessReadyAt changed device state")
	}
	if _, open := d.BankOpenRow(0); !open {
		t.Error("AccessReadyAt closed a bank")
	}
}

func TestActivateBankSpeculative(t *testing.T) {
	d := newTestDevice(t)
	// Speculatively open a row, then access it: page hit, data at the
	// hit latency rather than tRAC.
	act := d.ActivateBank(2, 7, 0)
	if act != 0 {
		t.Errorf("ActivateBank issued at %d, want 0", act)
	}
	res := d.Do(50, Request{Bank: 2, Row: 7, Col: 0})
	if !res.PageHit {
		t.Error("access after speculative activate missed")
	}
	// Re-activating the same row is a no-op.
	if got := d.ActivateBank(2, 7, 60); got != -1 {
		t.Errorf("redundant ActivateBank = %d, want -1", got)
	}
	// Activating a different row precharges first.
	pre := d.Stats().Precharges
	if got := d.ActivateBank(2, 9, 100); got < 100 {
		t.Errorf("conflict ActivateBank = %d", got)
	}
	if d.Stats().Precharges != pre+1 {
		t.Error("conflict activate did not precharge")
	}
}

func TestActivateBankChecksAddress(t *testing.T) {
	d := newTestDevice(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range bank")
		}
	}()
	d.ActivateBank(99, 0, 0)
}

func TestPrechargeBankPanicsOnRange(t *testing.T) {
	d := newTestDevice(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.PrechargeBank(-1, 0)
}

func TestNewDevicePanicsOnInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry.Banks = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDevice(cfg)
}

func TestConfigAccessor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 777
	d := NewDevice(cfg)
	if d.Config().RefreshInterval != 777 || d.Config().Geometry.Banks != 8 {
		t.Error("Config accessor mismatch")
	}
}

func TestPeekPokePanicOnBadWord(t *testing.T) {
	d := newTestDevice(t)
	for _, f := range []func(){
		func() { d.PeekWord(0, 0, 0, 2) },
		func() { d.PokeWord(0, 0, 0, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad word offset")
				}
			}()
			f()
		}()
	}
}

func TestBusUtilizationEmpty(t *testing.T) {
	var s Stats
	if s.BusUtilization() != 0 {
		t.Error("empty utilization should be 0")
	}
	s.DataBusBusy, s.LastDataEnd = 40, 100
	if got := s.BusUtilization(); got != 0.4 {
		t.Errorf("utilization = %v", got)
	}
}

func TestTraceEventString(t *testing.T) {
	ev := TraceEvent{Kind: TraceActivate, Start: 10, End: 14, Bank: 3, Row: 7, Col: -1}
	s := ev.String()
	for _, want := range []string{"ACT", "bank=3", "row=7", "10"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestRefreshOnOpenBank(t *testing.T) {
	// A refresh landing on an open bank must precharge it first and leave
	// it closed.
	cfg := DefaultConfig()
	cfg.RefreshInterval = 100
	d := NewDevice(cfg)
	d.Do(0, Request{Bank: 0, Row: 3, Col: 0}) // opens bank 0
	// Advance far enough that bank 0's refresh slot (the first) fires.
	d.Do(500, Request{Bank: 5, Row: 0, Col: 0})
	if _, open := d.BankOpenRow(0); open {
		t.Error("bank 0 should be closed after its refresh")
	}
	if d.Stats().Refreshes == 0 {
		t.Error("no refreshes recorded")
	}
}
