package rdram

import "testing"

// channelConfig builds an n-device channel of default parts.
func channelConfig(devices int) Config {
	cfg := DefaultConfig()
	cfg.Geometry.Banks *= devices
	cfg.Geometry.DevicesOnChannel = devices
	return cfg
}

func TestChannelGeometryValidation(t *testing.T) {
	cfg := channelConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("4-device channel invalid: %v", err)
	}
	if cfg.Geometry.Devices() != 4 || cfg.Geometry.BanksPerDevice() != 8 {
		t.Errorf("devices/banks = %d/%d", cfg.Geometry.Devices(), cfg.Geometry.BanksPerDevice())
	}
	bad := cfg
	bad.Geometry.DevicesOnChannel = 3 // 32 banks don't divide by 3
	if err := bad.Validate(); err == nil {
		t.Error("expected error for uneven device split")
	}
	neg := cfg
	neg.Geometry.DevicesOnChannel = -1
	if err := neg.Validate(); err == nil {
		t.Error("expected error for negative device count")
	}
	// Double-bank pairs must not straddle chips.
	db := cfg
	db.Geometry.DoubleBank = true
	db.Geometry.Banks = 12
	db.Geometry.DevicesOnChannel = 4 // 3 banks per device
	if err := db.Validate(); err == nil {
		t.Error("expected error for odd banks per device with DoubleBank")
	}
}

func TestSingleDeviceGeometryHelpers(t *testing.T) {
	g := DefaultGeometry()
	if g.Devices() != 1 || g.BanksPerDevice() != 8 {
		t.Errorf("single device helpers wrong: %d/%d", g.Devices(), g.BanksPerDevice())
	}
	if g.deviceOf(7) != 0 {
		t.Error("deviceOf wrong for single device")
	}
	c := channelConfig(4).Geometry
	if c.deviceOf(0) != 0 || c.deviceOf(8) != 1 || c.deviceOf(31) != 3 {
		t.Error("deviceOf mapping wrong for channel")
	}
}

func TestChannelTRRIsPerDevice(t *testing.T) {
	// Consecutive ACTs to banks on *different* chips need only the ROW-bus
	// packet spacing (t_PACK), not t_RR.
	d := NewDevice(channelConfig(2))
	r0 := d.Do(0, Request{Bank: 0, Row: 0, Col: 0}) // chip 0
	r1 := d.Do(0, Request{Bank: 8, Row: 0, Col: 0}) // chip 1
	r2 := d.Do(0, Request{Bank: 1, Row: 0, Col: 0}) // chip 0 again
	if got := r1.ActIssue - r0.ActIssue; got != int64(d.cfg.Timing.TPack) {
		t.Errorf("cross-chip ACT spacing = %d, want TPack = %d", got, d.cfg.Timing.TPack)
	}
	// Same chip: t_RR from that chip's previous ACT.
	if got := r2.ActIssue - r0.ActIssue; got < int64(d.cfg.Timing.TRR) {
		t.Errorf("same-chip ACT spacing = %d, want >= TRR", got)
	}
}

func TestChannelSingleDeviceUnchanged(t *testing.T) {
	// A one-device channel behaves exactly like the paper's device: the
	// second ACT waits t_RR.
	d := NewDevice(DefaultConfig())
	r0 := d.Do(0, Request{Bank: 0, Row: 0, Col: 0})
	r1 := d.Do(0, Request{Bank: 1, Row: 0, Col: 0})
	if got := r1.ActIssue - r0.ActIssue; got != int64(d.cfg.Timing.TRR) {
		t.Errorf("ACT spacing = %d, want TRR", got)
	}
}

func TestChannelRetireIsPerDevice(t *testing.T) {
	// A write buffers in its own chip; reading a *different* chip needs no
	// COL RET, but the shared-bus turnaround t_RW still applies.
	d := NewDevice(channelConfig(2))
	w := d.Do(0, Request{Bank: 0, Row: 0, Col: 0, Write: true})
	r := d.Do(0, Request{Bank: 8, Row: 0, Col: 0})
	if d.Stats().Retires != 0 {
		t.Errorf("cross-chip read triggered %d retires", d.Stats().Retires)
	}
	if r.DataStart < w.DataEnd+int64(d.cfg.Timing.TRW) {
		t.Errorf("bus turnaround violated across chips: read %d after write end %d", r.DataStart, w.DataEnd)
	}
	// Reading the chip that buffered the write does retire it.
	d.Do(0, Request{Bank: 1, Row: 0, Col: 0})
	if d.Stats().Retires != 1 {
		t.Errorf("same-chip read retires = %d, want 1", d.Stats().Retires)
	}
}

func TestChannelDataBusIsShared(t *testing.T) {
	// Packets from different chips still serialize on the one DATA bus.
	d := NewDevice(channelConfig(4))
	var prevEnd int64
	for i := 0; i < 16; i++ {
		res := d.Do(0, Request{Bank: (i % 4) * 8, Row: 0, Col: i / 4})
		if res.DataStart < prevEnd {
			t.Fatalf("packet %d overlaps previous: %d < %d", i, res.DataStart, prevEnd)
		}
		prevEnd = res.DataEnd
	}
}

func TestChannelFunctionalIsolation(t *testing.T) {
	// The same (bank-local) coordinates on different chips are distinct
	// storage.
	d := NewDevice(channelConfig(2))
	d.PokeWord(0, 5, 3, 0, 111)
	d.PokeWord(8, 5, 3, 0, 222)
	if d.PeekWord(0, 5, 3, 0) != 111 || d.PeekWord(8, 5, 3, 0) != 222 {
		t.Error("chips share storage")
	}
}
