package addrmap

import (
	"testing"

	"rdramstream/internal/rdram"
)

// FuzzMapUnmap fuzzes the address translation round trip for both schemes
// over a range of geometries (run with `go test -fuzz=FuzzMapUnmap`; the
// seed corpus runs in every ordinary test invocation).
func FuzzMapUnmap(f *testing.F) {
	f.Add(int64(0), uint8(0), uint8(3))
	f.Add(int64(12345), uint8(1), uint8(4))
	f.Add(int64(1<<30), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, raw int64, schemeRaw, lineShift uint8) {
		scheme := CLI
		if schemeRaw%2 == 1 {
			scheme = PI
		}
		lineWords := 2 << (lineShift % 6) // 2..64, always a packet multiple
		g := rdram.DefaultGeometry()
		if g.PageWords%lineWords != 0 {
			t.Skip()
		}
		m, err := New(scheme, g, lineWords)
		if err != nil {
			t.Skip()
		}
		addr := raw % m.CapacityWords()
		if addr < 0 {
			addr = -addr
		}
		loc := m.Map(addr)
		if back := m.Unmap(loc); back != addr {
			t.Fatalf("scheme=%v line=%d: Unmap(Map(%d)) = %d", scheme, lineWords, addr, back)
		}
		if loc.Bank < 0 || loc.Bank >= g.Banks || loc.Row < 0 || loc.Row >= g.PagesPerBank {
			t.Fatalf("out-of-range location %+v", loc)
		}
	})
}
