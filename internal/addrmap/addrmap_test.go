package addrmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdramstream/internal/rdram"
)

func testGeometry() rdram.Geometry {
	g := rdram.DefaultGeometry()
	g.PagesPerBank = 64 // keep address space small for exhaustive tests
	return g
}

func TestNewValidation(t *testing.T) {
	g := testGeometry()
	if _, err := New(CLI, g, 4); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		scheme    Scheme
		lineWords int
	}{
		{Scheme(7), 4}, // unknown scheme
		{CLI, 0},       // zero line
		{CLI, 3},       // not a packet multiple
		{CLI, 100},     // does not divide the page
	}
	for i, c := range cases {
		if _, err := New(c.scheme, g, c.lineWords); err == nil {
			t.Errorf("case %d: expected error for scheme=%v line=%d", i, c.scheme, c.lineWords)
		}
	}
	bad := g
	bad.Banks = 0
	if _, err := New(CLI, bad, 4); err == nil {
		t.Error("expected error for invalid geometry")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid input")
		}
	}()
	MustNew(CLI, testGeometry(), 3)
}

func TestSchemeString(t *testing.T) {
	if CLI.String() != "CLI" || PI.String() != "PI" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should still render")
	}
}

func TestCLIConsecutiveLinesRotateBanks(t *testing.T) {
	m := MustNew(CLI, testGeometry(), 4)
	for line := 0; line < 32; line++ {
		loc := m.Map(int64(line * 4))
		if loc.Bank != line%8 {
			t.Errorf("line %d: bank = %d, want %d", line, loc.Bank, line%8)
		}
		// All words of one cacheline share a bank and row.
		for w := 1; w < 4; w++ {
			l2 := m.Map(int64(line*4 + w))
			if l2.Bank != loc.Bank || l2.Row != loc.Row {
				t.Errorf("line %d word %d: split across banks/rows", line, w)
			}
		}
	}
}

func TestPIConsecutivePagesRotateBanks(t *testing.T) {
	g := testGeometry()
	m := MustNew(PI, g, 4)
	for page := 0; page < 24; page++ {
		base := int64(page * g.PageWords)
		loc := m.Map(base)
		if loc.Bank != page%8 {
			t.Errorf("page %d: bank = %d, want %d", page, loc.Bank, page%8)
		}
		if loc.Row != page/8 {
			t.Errorf("page %d: row = %d, want %d", page, loc.Row, page/8)
		}
		// Every word within the page stays in this bank and row.
		for _, off := range []int64{1, 63, int64(g.PageWords) - 1} {
			l2 := m.Map(base + off)
			if l2.Bank != loc.Bank || l2.Row != loc.Row {
				t.Errorf("page %d offset %d: left the page's bank/row", page, off)
			}
		}
	}
}

func TestPICrossingPageBoundarySwitchesBank(t *testing.T) {
	g := testGeometry()
	m := MustNew(PI, g, 4)
	last := m.Map(int64(g.PageWords) - 1)
	next := m.Map(int64(g.PageWords))
	if last.Bank == next.Bank {
		t.Errorf("page boundary did not switch banks: %d -> %d", last.Bank, next.Bank)
	}
}

func TestMapUnmapRoundTripExhaustive(t *testing.T) {
	g := testGeometry()
	g.PagesPerBank = 4
	for _, scheme := range []Scheme{CLI, PI} {
		m := MustNew(scheme, g, 4)
		for addr := int64(0); addr < m.CapacityWords(); addr++ {
			loc := m.Map(addr)
			if back := m.Unmap(loc); back != addr {
				t.Fatalf("%v: Unmap(Map(%d)) = %d", scheme, addr, back)
			}
		}
	}
}

func TestMapUnmapRoundTripProperty(t *testing.T) {
	g := rdram.DefaultGeometry() // full 64 Mbit space
	for _, scheme := range []Scheme{CLI, PI} {
		m := MustNew(scheme, g, 4)
		cap := m.CapacityWords()
		f := func(raw int64) bool {
			addr := raw % cap
			if addr < 0 {
				addr = -addr
			}
			loc := m.Map(addr)
			if loc.Bank < 0 || loc.Bank >= g.Banks || loc.Row < 0 || loc.Row >= g.PagesPerBank {
				return false
			}
			if loc.Col < 0 || loc.Col >= g.PageWords/rdram.WordsPerPacket {
				return false
			}
			return m.Unmap(loc) == addr
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

func TestMapIsInjectiveSampled(t *testing.T) {
	g := testGeometry()
	rng := rand.New(rand.NewSource(7))
	for _, scheme := range []Scheme{CLI, PI} {
		m := MustNew(scheme, g, 8)
		seen := make(map[Loc]int64)
		for i := 0; i < 20000; i++ {
			addr := rng.Int63n(m.CapacityWords())
			loc := m.Map(addr)
			if prev, ok := seen[loc]; ok && prev != addr {
				t.Fatalf("%v: addresses %d and %d collide at %+v", scheme, prev, addr, loc)
			}
			seen[loc] = addr
		}
	}
}

func TestMapOutOfRangePanics(t *testing.T) {
	m := MustNew(CLI, testGeometry(), 4)
	for _, addr := range []int64{-1, m.CapacityWords()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for address %d", addr)
				}
			}()
			m.Map(addr)
		}()
	}
}

func TestPacketAddr(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 0}, {2, 2}, {3, 2}, {100, 100}, {101, 100},
	}
	for _, c := range cases {
		if got := PacketAddr(c.in); got != c.want {
			t.Errorf("PacketAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAccessors(t *testing.T) {
	g := testGeometry()
	m := MustNew(PI, g, 4)
	if m.Scheme() != PI || m.LineWords() != 4 || m.PageWords() != g.PageWords || m.Banks() != g.Banks {
		t.Error("accessor mismatch")
	}
	want := int64(g.Banks) * int64(g.PagesPerBank) * int64(g.PageWords)
	if m.CapacityWords() != want {
		t.Errorf("CapacityWords = %d, want %d", m.CapacityWords(), want)
	}
}
