// Package addrmap translates flat 64-bit-word addresses into Direct RDRAM
// (bank, row, column) coordinates under the two interleaving schemes the
// paper evaluates:
//
//   - CLI (cacheline interleaving): successive cachelines reside in
//     different RDRAM banks. Paired with a closed-page policy.
//   - PI (page interleaving): a whole RDRAM page's worth of contiguous
//     addresses maps to a single bank, and crossing a page boundary
//     switches banks. Paired with an open-page policy.
package addrmap

import (
	"errors"
	"fmt"
	"strings"

	"rdramstream/internal/rdram"
)

// Scheme selects the interleaving.
type Scheme int

// The two memory organizations of the paper (§4).
const (
	CLI Scheme = iota // cacheline interleaving, closed-page
	PI                // page interleaving, open-page
)

// ErrUnknownScheme is returned (wrapped, with the offending value) whenever
// a scheme outside {CLI, PI} reaches the API: ParseScheme, Validate, New.
// CLIs match it with errors.Is and exit non-zero instead of panicking.
var ErrUnknownScheme = errors.New("addrmap: unknown scheme")

func (s Scheme) String() string {
	switch s {
	case CLI:
		return "CLI"
	case PI:
		return "PI"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Validate reports whether the scheme is one of the two the paper defines.
func (s Scheme) Validate() error {
	if s != CLI && s != PI {
		return fmt.Errorf("%w %d (want CLI or PI)", ErrUnknownScheme, int(s))
	}
	return nil
}

// ParseScheme resolves a scheme name (case-insensitive "CLI" or "PI") —
// the single flag-parsing path both CLIs use.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "CLI":
		return CLI, nil
	case "PI":
		return PI, nil
	default:
		return 0, fmt.Errorf("%w %q (want CLI or PI)", ErrUnknownScheme, name)
	}
}

// Loc is a device coordinate: bank, row (page), column packet within the
// page, and 64-bit word within the packet.
type Loc struct {
	Bank, Row, Col, Word int
}

// Mapper converts word addresses to device coordinates and back.
type Mapper struct {
	scheme       Scheme
	banks        int
	pageWords    int
	lineWords    int
	pagesPerBank int
	linesPerPage int
}

// New builds a mapper for the given scheme over the device geometry.
// lineWords is the cacheline size in 64-bit words (the paper's L_c); it is
// required for CLI and must divide the page size. The paper's modeling
// assumptions (§4.1) require the cacheline to be a whole number of packets
// and the page a whole number of cachelines.
func New(scheme Scheme, g rdram.Geometry, lineWords int) (*Mapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	if lineWords <= 0 || lineWords%rdram.WordsPerPacket != 0 {
		return nil, fmt.Errorf("addrmap: lineWords must be a positive multiple of %d, got %d", rdram.WordsPerPacket, lineWords)
	}
	if g.PageWords%lineWords != 0 {
		return nil, fmt.Errorf("addrmap: page size %d words is not a multiple of the cacheline %d", g.PageWords, lineWords)
	}
	return &Mapper{
		scheme:       scheme,
		banks:        g.Banks,
		pageWords:    g.PageWords,
		lineWords:    lineWords,
		pagesPerBank: g.PagesPerBank,
		linesPerPage: g.PageWords / lineWords,
	}, nil
}

// MustNew is New for configurations known statically; it panics on error.
func MustNew(scheme Scheme, g rdram.Geometry, lineWords int) *Mapper {
	m, err := New(scheme, g, lineWords)
	if err != nil {
		panic(err)
	}
	return m
}

// Scheme returns the interleaving scheme.
func (m *Mapper) Scheme() Scheme { return m.scheme }

// LineWords returns the cacheline size in 64-bit words (L_c).
func (m *Mapper) LineWords() int { return m.lineWords }

// PageWords returns the page size in 64-bit words (L_P).
func (m *Mapper) PageWords() int { return m.pageWords }

// Banks returns the bank count.
func (m *Mapper) Banks() int { return m.banks }

// CapacityWords is the highest mappable word address plus one.
func (m *Mapper) CapacityWords() int64 {
	return int64(m.banks) * int64(m.pagesPerBank) * int64(m.pageWords)
}

// Map converts a word address to its device location.
func (m *Mapper) Map(addr int64) Loc {
	if addr < 0 || addr >= m.CapacityWords() {
		panic(fmt.Sprintf("addrmap: address %d out of range [0,%d)", addr, m.CapacityWords()))
	}
	var loc Loc
	switch m.scheme {
	case CLI:
		line := addr / int64(m.lineWords)
		inLine := int(addr % int64(m.lineWords))
		loc.Bank = int(line % int64(m.banks))
		bankLine := line / int64(m.banks)
		loc.Row = int(bankLine / int64(m.linesPerPage))
		inPage := int(bankLine%int64(m.linesPerPage))*m.lineWords + inLine
		loc.Col = inPage / rdram.WordsPerPacket
		loc.Word = inPage % rdram.WordsPerPacket
	case PI:
		page := addr / int64(m.pageWords)
		inPage := int(addr % int64(m.pageWords))
		loc.Bank = int(page % int64(m.banks))
		loc.Row = int(page / int64(m.banks))
		loc.Col = inPage / rdram.WordsPerPacket
		loc.Word = inPage % rdram.WordsPerPacket
	}
	return loc
}

// Unmap is the inverse of Map. New rejects schemes outside {CLI, PI}, so
// every constructed mapper takes one of these branches.
func (m *Mapper) Unmap(loc Loc) int64 {
	inPage := loc.Col*rdram.WordsPerPacket + loc.Word
	if m.scheme == PI {
		page := int64(loc.Row)*int64(m.banks) + int64(loc.Bank)
		return page*int64(m.pageWords) + int64(inPage)
	}
	lineInPage := inPage / m.lineWords
	inLine := inPage % m.lineWords
	bankLine := int64(loc.Row)*int64(m.linesPerPage) + int64(lineInPage)
	line := bankLine*int64(m.banks) + int64(loc.Bank)
	return line*int64(m.lineWords) + int64(inLine)
}

// PacketAddr returns the word address of the first word in addr's packet.
// Direct RDRAM's smallest addressable unit is one 128-bit packet, so every
// transfer moves a whole aligned packet.
func PacketAddr(addr int64) int64 {
	return addr &^ int64(rdram.WordsPerPacket-1)
}
