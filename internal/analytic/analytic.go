// Package analytic implements the paper's Section 5 performance models:
// closed-form bounds on the percentage of peak bandwidth delivered by
// (a) natural-order cacheline accesses and (b) a Stream Memory Controller,
// for both CLI (cacheline-interleaved, closed-page) and PI
// (page-interleaved, open-page) memory organizations.
//
// Every function cites the equation it implements. Where the printed
// equations are known to be optimistic or ambiguous (see DESIGN.md §3 and
// EXPERIMENTS.md), the implementation follows the text as printed; the
// simulators in internal/natorder and internal/smc provide the measured
// counterpart.
package analytic

import (
	"fmt"

	"rdramstream/internal/rdram"
)

// Params collects the device and system constants the equations use.
type Params struct {
	T  rdram.Timing
	Lc int // cacheline size in 64-bit words (L_c)
	Lp int // DRAM page size in 64-bit words (L_P)
	Wp int // words per DATA packet (w_p)
}

// DefaultParams returns the configuration of the paper's evaluation:
// -50/-800 part timing, 32-byte cachelines, 1 KB pages, 2-word packets.
func DefaultParams() Params {
	return Params{T: rdram.DefaultTiming(), Lc: 4, Lp: 128, Wp: rdram.WordsPerPacket}
}

// Validate reports whether the parameters satisfy the paper's modeling
// assumptions (§4.1): the cacheline is a whole number of packets and the
// page a whole number of cachelines.
func (p Params) Validate() error {
	if err := p.T.Validate(); err != nil {
		return err
	}
	if p.Wp <= 0 || p.Lc <= 0 || p.Lc%p.Wp != 0 {
		return fmt.Errorf("analytic: cacheline %d must be a positive multiple of the packet %d", p.Lc, p.Wp)
	}
	if p.Lp <= 0 || p.Lp%p.Lc != 0 {
		return fmt.Errorf("analytic: page %d must be a positive multiple of the cacheline %d", p.Lp, p.Lc)
	}
	return nil
}

// cyclesPerWordPeak is t_PACK / w_p, the peak-rate transfer time per word.
func (p Params) cyclesPerWordPeak() float64 {
	return float64(p.T.TPack) / float64(p.Wp)
}

// PercentPeakFromT converts an average per-word access time T (cycles per
// 64-bit word) into a percentage of peak bandwidth — Equation 5.1.
func (p Params) PercentPeakFromT(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 100 * p.cyclesPerWordPeak() / t
}

// TLCC is Equation 5.2: the time for one cacheline access under a
// closed-page policy, T_LCC = t_RAC + t_PACK*(L_c/w_p - 1).
func (p Params) TLCC() float64 {
	return float64(p.T.TRAC()) + float64(p.T.TPack)*(float64(p.Lc)/float64(p.Wp)-1)
}

// TLCO is Equation 5.7: the time for one cacheline access from an open
// page, T_LCO = t_CAC + t_PACK*(L_c/w_p - 1).
func (p Params) TLCO() float64 {
	return float64(p.T.TCAC) + float64(p.T.TPack)*(float64(p.Lc)/float64(p.Wp)-1)
}

// CacheSingleCLI bounds natural-order cacheline fills of a single stream
// with the given stride on a CLI closed-page system — Equations 5.2/5.3,
// extended beyond the cacheline size per Hong's thesis: once the stride
// exceeds L_c every element costs a full line access, so the bound is flat
// (the paper's Figure 8).
func (p Params) CacheSingleCLI(stride int) float64 {
	if stride <= 0 {
		return 0
	}
	t := p.TLCC()
	if stride < p.Lc {
		t = t / (float64(p.Lc) / float64(stride))
	}
	return p.PercentPeakFromT(t)
}

// CacheSinglePI bounds natural-order cacheline fills of a single stream on
// a PI open-page system — Equation 5.8 (with the precharge time t_RP the
// accompanying text includes), extended to strides beyond the cacheline:
// the first line of each page pays the precharge and row miss, the
// remaining lines touched in that page are open-page accesses.
func (p Params) CacheSinglePI(stride int) float64 {
	if stride <= 0 {
		return 0
	}
	elemsPerPage := float64(p.Lp) / float64(stride)
	if elemsPerPage < 1 {
		// Every element opens a fresh page.
		return p.PercentPeakFromT(float64(p.T.TRP) + p.TLCC())
	}
	linesTouched := elemsPerPage * float64(stride) / float64(p.Lc)
	if stride >= p.Lc {
		linesTouched = elemsPerPage // one line per element
	}
	total := float64(p.T.TRP) + p.TLCC() + p.TLCO()*(linesTouched-1)
	return p.PercentPeakFromT(total / elemsPerPage)
}

// usefulPerLine is the number of elements a stream with the given stride
// consumes from each cacheline it touches.
func (p Params) usefulPerLine(stride int) float64 {
	if stride >= p.Lc {
		return 1
	}
	return float64(p.Lc) / float64(stride)
}

// CacheMultiCLI bounds a natural-order computation of s unit-stride
// streams of length ls on a CLI closed-page system — Equations 5.4-5.6.
func (p Params) CacheMultiCLI(s, ls int) float64 {
	return p.CacheMultiCLIStrided(s, ls, 1)
}

// CacheMultiCLIStrided generalizes Equations 5.4-5.6 to strided streams
// per Hong's thesis: full cachelines still move, but only L_c/stride of
// each line's words are useful (one, beyond the line size).
func (p Params) CacheMultiCLIStrided(s, ls, stride int) float64 {
	if s < 1 || ls < 1 || stride < 1 {
		return 0
	}
	if s == 1 {
		// The pipelined multi-stream round degenerates; use the
		// single-stream bound.
		return p.CacheSingleCLI(stride)
	}
	dataPerLine := float64(p.Lc) / float64(p.Wp) * float64(p.T.TPack)
	gap := float64(p.T.TRR)
	if dataPerLine > gap {
		gap = dataPerLine
	}
	tPipe := float64(p.T.TRAC()) + gap*float64(s-1)                         // Eq 5.4
	tLast := float64(p.T.TRR)*float64(s-2) + float64(p.T.TRAC()) + p.TLCC() // Eq 5.5
	useful := p.usefulPerLine(stride)
	rounds := float64(ls) / useful // line rounds in the computation
	if rounds < 1 {
		rounds = 1
	}
	cycles := (rounds-1)*tPipe + tLast // Eq 5.6
	return p.PercentPeakFromT(cycles / (rounds * useful * float64(s)))
}

// CacheMultiPI bounds a natural-order computation of s unit-stride streams
// of length ls on a PI open-page system — Equations 5.9-5.11. The printed
// T_pipe is optimistic (see EXPERIMENTS.md): for small s it approaches the
// peak rate, which the quoted 8-stream figure (88.68%) shows the authors
// did not intend; we implement it as printed and cap it with the
// data-bus-plus-turnaround round bound (s cachelines of data plus one
// read/write turnaround per round), which reproduces the quoted numbers.
func (p Params) CacheMultiPI(s, ls int) float64 {
	return p.CacheMultiPIStrided(s, ls, 1)
}

// CacheMultiPIStrided generalizes the PI multi-stream bound to strided
// streams, analogous to CacheMultiCLIStrided.
func (p Params) CacheMultiPIStrided(s, ls, stride int) float64 {
	if s < 1 || ls < 1 || stride < 1 {
		return 0
	}
	if s == 1 {
		return p.CacheSinglePI(stride)
	}
	packetsPerLine := float64(p.Lc) / float64(p.Wp)
	tPipe := p.TLCO() + (packetsPerLine*float64(s-2)+1)*float64(p.T.TPack) // Eq 5.9
	// Physical floor on the round time: each round moves s cachelines of
	// data and cycles the bus direction once for the computation's writes.
	floor := float64(s)*packetsPerLine*float64(p.T.TPack) + float64(p.T.TRW)
	round := tPipe
	if round < floor {
		round = floor
	}
	tInit := 2*float64(p.T.TRP) + float64(p.T.TRAC()) + p.TLCC() +
		(float64(p.T.TRP)+float64(p.T.TRR))*float64(s-2) // Eq 5.10
	useful := p.usefulPerLine(stride)
	rounds := float64(ls) / useful
	if rounds < 1 {
		rounds = 1
	}
	cycles := tInit + (rounds-1)*round // Eq 5.11
	return p.PercentPeakFromT(cycles / (rounds * useful * float64(s)))
}

// StartupDelayCLI is Equation 5.16: the time the processor waits for the
// first element of the last read stream while the MSU prefetches a FIFO's
// worth of each earlier read stream. sr is the read-stream count, f the
// FIFO depth in elements.
func (p Params) StartupDelayCLI(sr, f int) float64 {
	if sr < 1 {
		return 0
	}
	return float64(sr-1)*float64(f)*float64(p.T.TPack)/float64(p.Wp) + float64(p.T.TRAC())
}

// StartupDelayPI is Equation 5.17: the CLI startup delay plus the first
// access's precharge.
func (p Params) StartupDelayPI(sr, f int) float64 {
	if sr < 1 {
		return 0
	}
	return p.StartupDelayCLI(sr, f) + float64(p.T.TRP)
}

// TurnaroundDelay is Equation 5.18: the aggregate read/write bus-turnaround
// time for the whole computation, t_RW * L_s * (s-1) / (f*s). It is zero
// for read-only computations.
func (p Params) TurnaroundDelay(s, sw, f, ls int) float64 {
	if sw == 0 || s < 1 || f < 1 {
		return 0
	}
	return float64(p.T.TRW) * float64(ls) * float64(s-1) / (float64(f) * float64(s))
}

// SMCPercent is Equation 5.15: the bandwidth fraction with delta extra
// cycles of delay over the minimum transfer time for s streams of ls
// elements.
func (p Params) SMCPercent(delta float64, s, ls int) float64 {
	minimum := float64(ls) * p.cyclesPerWordPeak() * float64(s)
	if minimum <= 0 {
		return 0
	}
	return 100 * minimum / (delta + minimum)
}

// SMCStartupBound is the startup-delay bound for the given scheme.
func (p Params) SMCStartupBound(pi bool, sr, sw, f, ls int) float64 {
	var d float64
	if pi {
		d = p.StartupDelayPI(sr, f)
	} else {
		d = p.StartupDelayCLI(sr, f)
	}
	return p.SMCPercent(d, sr+sw, ls)
}

// SMCAsymptoticBound is the bus-turnaround (long-vector) bound, identical
// for CLI and PI (§5.2: RDRAM page-miss times overlap with pipelined
// operations, so turnaround is the limiting factor).
func (p Params) SMCAsymptoticBound(sr, sw, f, ls int) float64 {
	s := sr + sw
	return p.SMCPercent(p.TurnaroundDelay(s, sw, f, ls), s, ls)
}

// SMCCombinedBound is the paper's Figure 7 dashed line: the lower envelope
// of the startup-delay and asymptotic bounds.
func (p Params) SMCCombinedBound(pi bool, sr, sw, f, ls int) float64 {
	a := p.SMCStartupBound(pi, sr, sw, f, ls)
	b := p.SMCAsymptoticBound(sr, sw, f, ls)
	if a < b {
		return a
	}
	return b
}

// SMCStridedBound extends the SMC bounds to non-unit strides ([11]):
// elements no longer pack two to a packet, so each element transfers a
// whole packet and the attainable fraction of peak halves. The result is
// still a percentage of total peak bandwidth (not of attainable).
func (p Params) SMCStridedBound(pi bool, sr, sw, f, ls, stride int) float64 {
	if stride == 1 {
		return p.SMCCombinedBound(pi, sr, sw, f, ls)
	}
	s := sr + sw
	perWord := float64(p.T.TPack) // one packet per element
	minimum := float64(ls) * perWord * float64(s)
	var d1 float64
	if pi {
		d1 = p.StartupDelayPI(sr, f)
	} else {
		d1 = p.StartupDelayCLI(sr, f)
	}
	d2 := p.TurnaroundDelay(s, sw, f, ls)
	bound := func(d float64) float64 {
		// Fraction of peak: useful words are half the transferred words.
		return 100 * (minimum / (d + minimum)) * (p.cyclesPerWordPeak() / perWord)
	}
	a, b := bound(d1), bound(d2)
	if a < b {
		return a
	}
	return b
}
