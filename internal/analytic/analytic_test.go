package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Lc = 3 },
		func(p *Params) { p.Lc = 0 },
		func(p *Params) { p.Lp = 130 },
		func(p *Params) { p.Wp = 0 },
		func(p *Params) { p.T.TPack = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLineAccessTimes(t *testing.T) {
	p := DefaultParams()
	// T_LCC = 20 + 4*(2-1) = 24 ; T_LCO = 8 + 4 = 12.
	if got := p.TLCC(); got != 24 {
		t.Errorf("TLCC = %v, want 24", got)
	}
	if got := p.TLCO(); got != 12 {
		t.Errorf("TLCO = %v, want 12", got)
	}
}

func TestPercentPeakFromT(t *testing.T) {
	p := DefaultParams()
	if got := p.PercentPeakFromT(2); got != 100 {
		t.Errorf("T=2 -> %v%%, want 100", got)
	}
	if got := p.PercentPeakFromT(4); got != 50 {
		t.Errorf("T=4 -> %v%%, want 50", got)
	}
	if got := p.PercentPeakFromT(0); got != 0 {
		t.Errorf("T=0 -> %v%%, want 0", got)
	}
}

func TestCacheSingleCLI(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		stride int
		want   float64
	}{
		{1, 100 * 2 / 6.0},  // T = 24/4
		{2, 100 * 2 / 12.0}, // T = 24/2
		{4, 100 * 2 / 24.0}, // one line per element
		{8, 100 * 2 / 24.0}, // flat beyond the line size (Figure 8)
		{32, 100 * 2 / 24.0},
	}
	for _, c := range cases {
		if got := p.CacheSingleCLI(c.stride); !almost(got, c.want, 1e-9) {
			t.Errorf("stride %d: %v, want %v", c.stride, got, c.want)
		}
	}
	if p.CacheSingleCLI(0) != 0 {
		t.Error("stride 0 should give 0")
	}
}

func TestCacheSinglePIUnitStride(t *testing.T) {
	p := DefaultParams()
	// T = (tRP + TLCC + TLCO*(Lp/Lc - 1)) / (Lp/stride)
	//   = (10 + 24 + 12*31) / 128 = 406/128.
	want := 100 * 2 / (406.0 / 128.0)
	if got := p.CacheSinglePI(1); !almost(got, want, 1e-9) {
		t.Errorf("PI stride 1 = %v, want %v", got, want)
	}
}

func TestCacheSinglePIBeatsCLIForStreams(t *testing.T) {
	p := DefaultParams()
	for stride := 1; stride <= 32; stride *= 2 {
		cli, pi := p.CacheSingleCLI(stride), p.CacheSinglePI(stride)
		if pi <= cli {
			t.Errorf("stride %d: PI %v should beat CLI %v", stride, pi, cli)
		}
	}
}

func TestCacheSinglePIHugeStride(t *testing.T) {
	p := DefaultParams()
	// Stride beyond the page: every element pays precharge + line miss.
	want := 100 * 2 / (10 + 24.0)
	if got := p.CacheSinglePI(256); !almost(got, want, 1e-9) {
		t.Errorf("PI stride 256 = %v, want %v", got, want)
	}
}

func TestCacheMultiCLIHandValues(t *testing.T) {
	p := DefaultParams()
	// s=2, Ls=1024: Tpipe = 20+8 = 28, Tlast = 0+20+24 = 44,
	// cycles = 255*28 + 44 = 7184, T = 7184/2048.
	want := 100 * 2 / (7184.0 / 2048.0)
	if got := p.CacheMultiCLI(2, 1024); !almost(got, want, 1e-9) {
		t.Errorf("CLI s=2 = %v, want %v", got, want)
	}
	// s=1 falls back to the single-stream bound.
	if got := p.CacheMultiCLI(1, 1024); !almost(got, p.CacheSingleCLI(1), 1e-9) {
		t.Errorf("CLI s=1 = %v, want single-stream %v", got, p.CacheSingleCLI(1))
	}
	if p.CacheMultiCLI(2, 0) != 0 {
		t.Error("zero stream length should give 0")
	}
	if p.CacheMultiCLIStrided(2, 1024, 0) != 0 {
		t.Error("zero stride should give 0")
	}
}

func TestCacheMultiBandwidthGrowsWithStreams(t *testing.T) {
	p := DefaultParams()
	for s := 2; s < 8; s++ {
		if p.CacheMultiCLI(s+1, 1024) <= p.CacheMultiCLI(s, 1024) {
			t.Errorf("CLI: s=%d does not improve on s=%d", s+1, s)
		}
		if p.CacheMultiPI(s+1, 1024) <= p.CacheMultiPI(s, 1024) {
			t.Errorf("PI: s=%d does not improve on s=%d", s+1, s)
		}
	}
}

func TestCacheMultiPIBeatsCLI(t *testing.T) {
	p := DefaultParams()
	for s := 2; s <= 8; s++ {
		cli, pi := p.CacheMultiCLI(s, 1024), p.CacheMultiPI(s, 1024)
		if pi <= cli {
			t.Errorf("s=%d: PI %v should beat CLI %v", s, pi, cli)
		}
		if pi >= 100 || cli >= 100 {
			t.Errorf("s=%d: bounds must stay below 100%% (cli=%v pi=%v)", s, cli, pi)
		}
	}
}

func TestEightStreamBoundsNearPaperValues(t *testing.T) {
	// The paper quotes 88.68% (PI) and 76.11% (CLI) for eight unit-stride
	// streams; our as-printed equations land close but not exactly (see
	// EXPERIMENTS.md). Assert the neighbourhood and the ordering.
	p := DefaultParams()
	cli := p.CacheMultiCLI(8, 1024)
	pi := p.CacheMultiPI(8, 1024)
	if !almost(cli, 76.11, 9) {
		t.Errorf("CLI 8-stream = %.2f, want within 9 points of 76.11", cli)
	}
	if !almost(pi, 88.68, 4) {
		t.Errorf("PI 8-stream = %.2f, want within 4 points of 88.68", pi)
	}
	if pi <= cli {
		t.Error("PI must beat CLI")
	}
}

func TestStartupDelays(t *testing.T) {
	p := DefaultParams()
	// Eq 5.16: (sr-1)*f*tPACK/wp + tRAC.
	if got := p.StartupDelayCLI(3, 32); got != 2*32*2+20 {
		t.Errorf("CLI startup = %v, want 148", got)
	}
	// Eq 5.17 adds tRP.
	if got := p.StartupDelayPI(3, 32); got != 2*32*2+20+10 {
		t.Errorf("PI startup = %v, want 158", got)
	}
	// Single read stream: just the first-access latency.
	if got := p.StartupDelayCLI(1, 128); got != 20 {
		t.Errorf("CLI sr=1 startup = %v, want 20", got)
	}
	if p.StartupDelayCLI(0, 8) != 0 {
		t.Error("no read streams -> no startup delay")
	}
}

func TestTurnaroundDelay(t *testing.T) {
	p := DefaultParams()
	// Eq 5.18: tRW * Ls * (s-1) / (f*s) = 6*1024*1/(128*2) = 24.
	if got := p.TurnaroundDelay(2, 1, 128, 1024); got != 24 {
		t.Errorf("turnaround = %v, want 24", got)
	}
	if p.TurnaroundDelay(2, 0, 128, 1024) != 0 {
		t.Error("read-only computation should have zero turnaround delay")
	}
}

func TestSMCBoundsHandValues(t *testing.T) {
	p := DefaultParams()
	// copy (sr=1, sw=1), f=128, Ls=1024 on CLI:
	// startup bound: 4096/(20+4096); asymptotic: 4096/(24+4096).
	wantStart := 100 * 4096.0 / 4116.0
	wantAsym := 100 * 4096.0 / 4120.0
	if got := p.SMCStartupBound(false, 1, 1, 128, 1024); !almost(got, wantStart, 1e-9) {
		t.Errorf("startup bound = %v, want %v", got, wantStart)
	}
	if got := p.SMCAsymptoticBound(1, 1, 128, 1024); !almost(got, wantAsym, 1e-9) {
		t.Errorf("asymptotic bound = %v, want %v", got, wantAsym)
	}
	if got := p.SMCCombinedBound(false, 1, 1, 128, 1024); !almost(got, wantAsym, 1e-9) {
		t.Errorf("combined = %v, want min %v", got, wantAsym)
	}
}

func TestSMCCombinedBoundShape(t *testing.T) {
	// Figure 7's dashed line: rises with depth (asymptotic regime), then
	// flattens or falls (startup regime) for multi-read-stream kernels on
	// short vectors.
	p := DefaultParams()
	// vaxpy: sr=3, sw=1. Short vectors, deep FIFOs: startup dominates.
	short128 := p.SMCCombinedBound(false, 3, 1, 128, 128)
	short8 := p.SMCCombinedBound(false, 3, 1, 8, 128)
	if short128 >= short8 {
		t.Errorf("short vectors: depth 128 bound %v should fall below depth 8 bound %v", short128, short8)
	}
	// Long vectors: deeper FIFOs raise the bound.
	long8 := p.SMCCombinedBound(false, 3, 1, 8, 1024)
	long128 := p.SMCCombinedBound(false, 3, 1, 128, 1024)
	if long128 <= long8 {
		t.Errorf("long vectors: depth 128 bound %v should exceed depth 8 bound %v", long128, long8)
	}
	// For sufficiently deep FIFOs the asymptotic bound approaches 100%.
	if a := p.SMCAsymptoticBound(3, 1, 1024, 4096); a < 99 {
		t.Errorf("very deep FIFO asymptote = %v, want > 99", a)
	}
}

func TestCopyStartupBarelyMatters(t *testing.T) {
	// §6: "for copy ... the startup delay results entirely from the
	// additional latency of the first cacheline access, since there is
	// only one stream being read" — the bound does not decrease with FIFO
	// depth, and 128-element copy still exceeds ~95% of peak.
	p := DefaultParams()
	d8 := p.SMCStartupBound(false, 1, 1, 8, 128)
	d128 := p.SMCStartupBound(false, 1, 1, 128, 128)
	if d8 != d128 {
		t.Errorf("copy startup bound varies with depth: %v vs %v", d8, d128)
	}
	if d128 < 90 {
		t.Errorf("copy 128-element startup bound = %v, want ~95", d128)
	}
}

func TestSMCStridedBound(t *testing.T) {
	p := DefaultParams()
	unit := p.SMCStridedBound(false, 3, 1, 128, 1024, 1)
	if unit != p.SMCCombinedBound(false, 3, 1, 128, 1024) {
		t.Error("stride 1 should match the unit-stride bound")
	}
	strided := p.SMCStridedBound(false, 3, 1, 128, 1024, 4)
	if strided > 50 {
		t.Errorf("non-unit stride bound = %v, cannot exceed 50%% of peak", strided)
	}
	if strided < 40 {
		t.Errorf("non-unit stride bound = %v, should be near 50%% of peak for deep FIFOs", strided)
	}
}

func TestBoundsAlwaysInRangeProperty(t *testing.T) {
	p := DefaultParams()
	f := func(sRaw, fRaw, lsRaw uint8) bool {
		s := int(sRaw%7) + 2
		depth := (int(fRaw%16) + 1) * 8
		ls := (int(lsRaw%8) + 1) * 128
		vals := []float64{
			p.CacheMultiCLI(s, ls),
			p.CacheMultiPI(s, ls),
			p.SMCCombinedBound(false, s-1, 1, depth, ls),
			p.SMCCombinedBound(true, s-1, 1, depth, ls),
		}
		for _, v := range vals {
			if v <= 0 || v > 100 {
				return false
			}
		}
		// SMC with deep FIFOs beats the cache bound for long vectors.
		if ls >= 1024 && depth >= 64 {
			if p.SMCCombinedBound(false, s-1, 1, depth, ls) <= p.CacheMultiCLI(s, ls) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
