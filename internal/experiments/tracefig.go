package experiments

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/sim"
	"rdramstream/internal/tracegen"
)

// LLMKVCache is the headline demo of the trace subsystem: the memory
// stream of LLM-inference attention, where each decode step appends one
// KV-cache row per head and then reads a sample of rows from the grown
// context (row-granularity reads, à la RoMe). The access order the
// model emits is bank-scattered across heads; the table shows how much
// bandwidth a natural-order controller leaves on the table versus an
// SMC-style reordering front end, and how the gap moves as the context
// (the sampled-row working set) grows. The trace is generated from a
// fixed seed, so the table is byte-stable.
func LLMKVCache() (*Table, error) {
	t := &Table{
		Title:  "LLM KV-cache attention reads — generated trace, % of peak (seed 7)",
		Header: []string{"context rows", "accesses", "scheme", "natural", "SMC (fifo 64)"},
		Notes: []string{
			"8 heads, 128-word rows; each step overwrites one KV row per head, then reads 4 sampled context rows per head, interleaved across heads",
			"closed-page CLI is order-insensitive here; open-page PI leaves a third of peak to access order, and SMC reordering recovers it",
		},
	}
	for _, ctx := range []int{4, 32, 256} {
		prog := &tracegen.Program{
			Name: fmt.Sprintf("llm-kvcache ctx=%d", ctx),
			Seed: 7,
			Phases: []tracegen.Phase{{
				Pattern:     tracegen.PatternLLMKV,
				Accesses:    1 << 15,
				Heads:       8,
				RowWords:    128,
				ContextRows: ctx,
				RowsPerStep: 4,
			}},
		}
		accs, err := prog.Generate()
		if err != nil {
			return nil, err
		}
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			row := []string{fmt.Sprintf("%d", ctx), fmt.Sprintf("%d", len(accs)), scheme.String()}
			for _, mode := range []sim.Mode{sim.NaturalOrder, sim.SMC} {
				out, err := sim.Run(sim.Scenario{
					Workload:  &tracegen.Spec{Program: prog},
					Scheme:    scheme,
					Mode:      mode,
					FIFODepth: 64,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, f1(out.PercentPeak))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
