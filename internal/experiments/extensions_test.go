package experiments

import (
	"strconv"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
)

func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad cell %q", s)
	}
	return v
}

func TestChannelScalingMoreDevicesHelpCLI(t *testing.T) {
	tab, err := ChannelScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// CLI natural-order should improve markedly from 1 to 8 devices
	// (bank count grows, per-chip tRR relaxes); the SMC is already near
	// peak and must not regress below its single-device level by much.
	one, eight := tab.Rows[0], tab.Rows[3]
	if cell(t, eight[2]) <= cell(t, one[2]) {
		t.Errorf("CLI cache with 8 devices (%s) should beat 1 device (%s)", eight[2], one[2])
	}
	if cell(t, eight[3]) < cell(t, one[3])-2 {
		t.Errorf("CLI SMC regressed with more devices: %s -> %s", one[3], eight[3])
	}
	// Everything stays below 100.
	for _, row := range tab.Rows {
		for _, c := range row[2:] {
			if v := cell(t, c); v <= 0 || v > 100 {
				t.Errorf("out-of-range value %v in %v", v, row)
			}
		}
	}
}

func TestWritebackAblationWidensTheGap(t *testing.T) {
	tab, err := WritebackAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		direct, wa, smc := cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
		if wa > direct {
			t.Errorf("%s/%s: write-allocate %.1f should not beat direct %.1f", row[0], row[1], wa, direct)
		}
		if smc <= wa {
			t.Errorf("%s/%s: SMC %.1f should beat write-allocate %.1f", row[0], row[1], smc, wa)
		}
	}
}

func TestRefreshAblationCostsLittle(t *testing.T) {
	tab, err := RefreshAblation()
	if err != nil {
		t.Fatal(err)
	}
	off := cell(t, tab.Rows[0][1])
	worst := cell(t, tab.Rows[len(tab.Rows)-1][1])
	if worst > off {
		t.Errorf("refresh should not speed things up: off=%.1f worst=%.1f", off, worst)
	}
	if off-worst > 15 {
		t.Errorf("refresh overhead implausibly large: off=%.1f worst=%.1f", off, worst)
	}
	// The refreshing rows actually refreshed.
	if tab.Rows[len(tab.Rows)-1][2] == "0" {
		t.Error("no refreshes recorded at the shortest interval")
	}
}

func TestPanelChart(t *testing.T) {
	p, err := Figure7Panel("copy", addrmap.CLI, 1024)
	if err != nil {
		t.Fatal(err)
	}
	chart := p.Chart()
	for _, want := range []string{"copy", "100%", "0%", "L=SMC combined limit", "S", "C"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	lines := strings.Split(chart, "\n")
	if len(lines) < 22 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestCacheConflictAblation(t *testing.T) {
	tab, err := CacheConflictAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	benign, colliding := tab.Rows[0], tab.Rows[1]
	// The colliding layout tanks the direct-mapped cache but not the
	// 2-way cache or the SMC.
	if cell(t, colliding[2]) >= cell(t, benign[2])*0.8 {
		t.Errorf("direct-mapped should collapse on colliding layout: %s vs %s", colliding[2], benign[2])
	}
	if cell(t, colliding[4]) < cell(t, benign[4])-3 {
		t.Errorf("SMC should be layout-insensitive: %s vs %s", colliding[4], benign[4])
	}
	if cell(t, colliding[3]) <= cell(t, colliding[2]) {
		t.Errorf("2-way (%s) should beat direct-mapped (%s) on the colliding layout", colliding[3], colliding[2])
	}
}

func TestCrispEfficiency(t *testing.T) {
	tab, err := CrispEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		one, eight := cell(t, row[2]), cell(t, row[3])
		if eight+0.01 < one {
			t.Errorf("%s/%s: 8 devices (%.1f) below 1 device (%.1f)", row[0], row[1], eight, one)
		}
		// The paper's §6 claim: PI should be worse than CLI for random
		// non-stream accesses.
		if row[0] == "random" && row[1] == "PI" {
			for _, other := range tab.Rows {
				if other[0] == "random" && other[1] == "CLI" {
					if cell(t, row[3]) >= cell(t, other[3]) {
						t.Errorf("random: PI (%s) should trail CLI (%s) on 8 devices", row[3], other[3])
					}
				}
			}
		}
	}
}

func TestPriorSystem(t *testing.T) {
	tab, err := PriorSystem()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Unit stride: the §3 claim of >90% attainable bandwidth.
	if v := cell(t, tab.Rows[0][1]); v < 90 {
		t.Errorf("stride-1 SMC attainable = %.1f, want > 90", v)
	}
	for _, row := range tab.Rows {
		if sc := cell(t, row[3]); sc < 1.2 {
			t.Errorf("stride %s: caching speedup %.2f below the paper's floor of ~2", row[0], sc)
		}
		if sn := cell(t, row[4]); sn < 1.2 {
			t.Errorf("stride %s: non-caching speedup %.2f too small", row[0], sn)
		}
	}
}

func TestPolicyCross(t *testing.T) {
	tab, err := PolicyCross()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// For a streaming kernel, the open-page policy should win or tie on
	// both interleaves (page reuse exists under CLI too: a bank's
	// consecutive lines share its page).
	for _, row := range tab.Rows {
		closed, open := cell(t, row[1]), cell(t, row[2])
		if open < closed-2 {
			t.Errorf("%s: open-page %.1f%% well below closed %.1f%% for streams", row[0], open, closed)
		}
	}
}
