package experiments

import (
	"fmt"
	"strings"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/fpm"
	"rdramstream/internal/natorder"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
	"rdramstream/internal/workload"
)

// ChannelScaling measures how populating the Rambus channel with more
// RDRAM chips changes each configuration — the paper studies a single
// device and attributes Crisp's reported 95% efficiency to multi-device
// systems; this experiment quantifies that gap. Device-local t_RR and
// write-retire constraints relax with more chips while the shared DATA
// bus stays the bottleneck.
func ChannelScaling() (*Table, error) {
	t := &Table{
		Title:  "Channel scaling — daxpy, 1024 elements, % of peak vs devices on the channel",
		Header: []string{"devices", "banks", "CLI cache", "CLI SMC", "PI cache", "PI SMC"},
		Notes:  []string{"one 1.6 GB/s channel; banks grow with the chip count, device-local tRR relaxes"},
	}
	for _, devices := range []int{1, 2, 4, 8} {
		devCfg := rdram.DefaultConfig()
		devCfg.Geometry.Banks *= devices
		devCfg.Geometry.DevicesOnChannel = devices
		row := []string{fmt.Sprintf("%d", devices), fmt.Sprintf("%d", devCfg.Geometry.Banks)}
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, mode := range []sim.Mode{sim.NaturalOrder, sim.SMC} {
				out, err := sim.Run(sim.Scenario{
					KernelName: "daxpy", N: 1024, Scheme: scheme, Mode: mode,
					FIFODepth: 64, Placement: stream.Staggered,
					Device: devCfg, SkipVerify: true,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, f1(out.PercentPeak))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WritebackAblation quantifies §6's closing remark: the paper's bounds
// ignore store-miss fetches and dirty writebacks; modeling them
// (write-allocate) widens the SMC's advantage.
func WritebackAblation() (*Table, error) {
	t := &Table{
		Title:  "Writeback ablation — natural-order controller, 1024 elements (% of peak)",
		Header: []string{"kernel", "scheme", "direct store", "write-allocate", "SMC (fifo 128)"},
		Notes:  []string{"'direct store' is the paper's optimistic model; write-allocate fetches store lines and writes back on eviction"},
	}
	// Three scenarios per (kernel, scheme) row, run on the worker pool and
	// read back in scenario order.
	var scs []sim.Scenario
	for _, kn := range Figure7Kernels {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			base := sim.Scenario{KernelName: kn, N: 1024, Scheme: scheme,
				Placement: stream.Staggered, SkipVerify: true}
			direct := base
			direct.Mode = sim.NaturalOrder
			wa := direct
			wa.WriteAllocate = true
			smcSc := base
			smcSc.Mode = sim.SMC
			smcSc.FIFODepth = 128
			scs = append(scs, direct, wa, smcSc)
		}
	}
	outs, err := sim.RunAll(scs, 0)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, kn := range Figure7Kernels {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			row := []string{kn, scheme.String()}
			for range 3 {
				row = append(row, f1(outs[i].PercentPeak))
				i++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// RefreshAblation measures the refresh overhead the paper's models ignore.
func RefreshAblation() (*Table, error) {
	t := &Table{
		Title:  "Refresh ablation — daxpy SMC, PI, 4096 elements (% of peak)",
		Header: []string{"refresh interval (cycles)", "% peak", "refreshes"},
		Notes:  []string{"the paper ignores refresh; a 64 ms/8K-row budget is ~3000 cycles between row refreshes"},
	}
	for _, interval := range []int64{0, 12000, 6000, 3000, 1500} {
		devCfg := rdram.DefaultConfig()
		devCfg.RefreshInterval = interval
		out, err := sim.Run(sim.Scenario{
			KernelName: "daxpy", N: 4096, Scheme: addrmap.PI, Mode: sim.SMC,
			FIFODepth: 64, Placement: stream.Staggered, Device: devCfg, SkipVerify: true,
		})
		if err != nil {
			return nil, err
		}
		label := "off"
		if interval > 0 {
			label = fmt.Sprintf("%d", interval)
		}
		t.Rows = append(t.Rows, []string{label, f1(out.PercentPeak), fmt.Sprintf("%d", out.Device.Refreshes)})
	}
	return t, nil
}

// CacheConflictAblation quantifies the §6 remark the paper leaves open:
// "using natural-order cacheline accesses ... is likely to generate many
// cache conflicts, because the vectors leave a larger footprint. Measuring
// the negative performance impact of these conflicts is beyond the scope
// of this study." We measure it: daxpy through an ideal cache (the paper's
// bound model), through a 16 KB direct-mapped and a 2-way cache — with a
// benign layout and with a pathological one whose vector bases collide in
// the cache — against the SMC, which bypasses the cache entirely.
func CacheConflictAblation() (*Table, error) {
	t := &Table{
		Title:  "Cache-conflict ablation — daxpy, 1024 elements, CLI (% of peak)",
		Header: []string{"layout", "ideal buffers", "16KB direct-mapped", "16KB 2-way", "SMC (fifo 128)"},
		Notes:  []string{"'colliding' places the two vectors a cache-size multiple apart; the SMC is layout-insensitive here"},
	}
	const n = 1024
	layouts := []struct {
		name  string
		bases []int64
	}{
		{"benign", nil},                     // library layout
		{"colliding", []int64{0, 8 * 2048}}, // congruent mod the 2048-word cache
	}
	for _, layout := range layouts {
		bases := layout.bases
		if bases == nil {
			g := rdram.DefaultGeometry()
			var err error
			bases, err = stream.Layout(addrmap.CLI, g, 4, []int64{n, n}, stream.Staggered)
			if err != nil {
				return nil, err
			}
		}
		k := stream.Daxpy(3, bases[0], bases[1], n, 1)
		row := []string{layout.name}
		for _, cfg := range []natorder.Config{
			{Scheme: addrmap.CLI, LineWords: 4},
			{Scheme: addrmap.CLI, LineWords: 4, Cache: &cache.Config{SizeWords: 2048, LineWords: 4, Ways: 1}},
			{Scheme: addrmap.CLI, LineWords: 4, Cache: &cache.Config{SizeWords: 2048, LineWords: 4, Ways: 2}},
		} {
			dev := rdram.NewDevice(rdram.DefaultConfig())
			res, err := natorder.Run(dev, k, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(res.PercentPeak))
		}
		dev := rdram.NewDevice(rdram.DefaultConfig())
		smcRes, err := smc.Run(dev, k, smc.Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 128})
		if err != nil {
			return nil, err
		}
		row = append(row, f1(smcRes.PercentPeak))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PolicyCross explores the two interleaving/precharge pairings the paper
// excludes from its design space (§4: CLI+closed and PI+open "represent
// two extreme points ... both employed in real system designs"): what do
// CLI+open and PI+closed look like for a streaming kernel?
func PolicyCross() (*Table, error) {
	t := &Table{
		Title:  "Precharge-policy cross — daxpy natural order, 1024 elements (% of peak)",
		Header: []string{"interleave", "closed page", "open page"},
		Notes:  []string{"the paper pairs CLI+closed and PI+open; the crosses quantify why"},
	}
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		row := []string{scheme.String()}
		for _, pol := range []natorder.PagePolicy{natorder.ForceClosed, natorder.ForceOpen} {
			g := rdram.DefaultGeometry()
			f, _ := stream.FactoryByName("daxpy")
			bases, err := stream.Layout(scheme, g, 4, f.Footprints(1024, 1), stream.Staggered)
			if err != nil {
				return nil, err
			}
			k := f.Make(bases, 1024, 1)
			dev := rdram.NewDevice(rdram.DefaultConfig())
			res, err := natorder.Run(dev, k, natorder.Config{Scheme: scheme, LineWords: 4, Policy: pol})
			if err != nil {
				return nil, err
			}
			row = append(row, f1(res.PercentPeak))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// CrispEfficiency contrasts the paper's single-device streaming study with
// the context of Crisp's "near 95% efficiency" claim the paper cites: more
// random access patterns on a channel with many devices. Patterns come
// from internal/workload; efficiency counts all transferred cachelines as
// demanded (no stream semantics).
func CrispEfficiency() (*Table, error) {
	t := &Table{
		Title:  "Random-workload efficiency — % of peak, conventional pipelined controller",
		Header: []string{"pattern", "scheme", "1 device", "8 devices", "hit rate (8 dev)"},
		Notes:  []string{"reproduces the §6 explanation for Crisp's 95% multimedia-PC efficiency vs this paper's single-device streaming numbers"},
	}
	for _, pattern := range []workload.Pattern{workload.Sequential, workload.RandomUniform, workload.HotPages} {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			row := []string{pattern.String(), scheme.String()}
			var lastHit float64
			for _, devices := range []int{1, 8} {
				devCfg := rdram.DefaultConfig()
				devCfg.Geometry.Banks *= devices
				devCfg.Geometry.DevicesOnChannel = devices
				dev := rdram.NewDevice(devCfg)
				res, err := workload.Run(dev, workload.Config{
					Pattern: pattern, Requests: 6000, LineWords: 4,
					Scheme: scheme, ReadFraction: 0.75, Seed: 11,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, f1(res.PercentPeak))
				lastHit = res.HitRate
			}
			row = append(row, f2(lastHit))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// PriorSystem reproduces the §3 fast-page-mode SMC results the paper's
// methodology was validated against: daxpy on two banks of FPM DRAM, with
// the i860's three access paths (serial non-caching loads, natural-order
// caching, and the SMC), across strides. The paper reports the SMC
// exploiting >90% of attainable bandwidth with speedups of 2-13x over
// caching and up to ~23x over non-caching.
func PriorSystem() (*Table, error) {
	t := &Table{
		Title:  "Prior FPM system (§3) — daxpy on 2-bank fast-page-mode DRAM",
		Header: []string{"stride", "SMC % attainable", "SMC hit rate", "speedup vs caching", "speedup vs non-caching"},
		Notes:  []string{"paper: SMC >90% attainable; 2-13x over caching; up to 23x over non-caching"},
	}
	region := int64(fpm.DefaultGeometry().Banks*fpm.DefaultGeometry().PageWords) * 64
	for _, stride := range []int64{1, 2, 4, 8, 16} {
		k := stream.Daxpy(2, 0, region, 2048, stride)
		smcRes, err := fpm.Run(fpm.DefaultConfig(), k, fpm.RunConfig{Mode: fpm.SMCMode, FIFODepth: 64})
		if err != nil {
			return nil, err
		}
		cacheRes, err := fpm.Run(fpm.DefaultConfig(), k, fpm.RunConfig{Mode: fpm.Caching, LineWords: 4})
		if err != nil {
			return nil, err
		}
		nonRes, err := fpm.Run(fpm.DefaultConfig(), k, fpm.RunConfig{Mode: fpm.NonCaching})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", stride),
			f1(smcRes.PercentAttainable), f2(smcRes.HitRate),
			f2(cacheRes.CyclesPerWord / smcRes.CyclesPerWord),
			f2(nonRes.CyclesPerWord / smcRes.CyclesPerWord),
		})
	}
	return t, nil
}

// Chart renders a Figure 7 panel as an ASCII line chart: percentage of
// peak (y) against FIFO depth (x), with the four paper series.
func (p *Panel) Chart() string {
	const height = 20
	width := len(p.Depths)*8 + 8
	grid := make([][]byte, height+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(col int, val float64, mark byte) {
		row := height - int(val/100*float64(height)+0.5)
		if row < 0 {
			row = 0
		}
		if row > height {
			row = height
		}
		x := 8 + col*8
		if grid[row][x] == ' ' || grid[row][x] == mark {
			grid[row][x] = mark
		} else {
			grid[row][x] = '*' // collision of two series
		}
	}
	for i := range p.Depths {
		plot(i, p.CombinedLimit[i], 'L')
		plot(i, p.Staggered[i], 'S')
		plot(i, p.Aligned[i], 'A')
		plot(i, p.CacheLimit, 'C')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v %d elements — %% peak vs FIFO depth\n", p.Kernel, p.Scheme, p.N)
	for i, row := range grid {
		pct := 100 - i*100/height
		fmt.Fprintf(&b, "%3d%% |%s\n", pct, string(row))
	}
	b.WriteString("     +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n      ")
	for _, d := range p.Depths {
		fmt.Fprintf(&b, "%8d", d)
	}
	b.WriteString("\n      L=SMC combined limit  S=SMC staggered  A=SMC aligned  C=cache limit  *=overlap\n")
	return b.String()
}
