package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of an SVG plot.
type Series struct {
	Name string
	X, Y []float64
	// Dashed draws the line dashed (used for analytic limits, as in the
	// paper's figures).
	Dashed bool
	Color  string
}

// PlotConfig frames an SVG chart.
type PlotConfig struct {
	Title  string
	XLabel string
	YLabel string
	// XLog2 spaces the x axis on a log2 scale (FIFO depths).
	XLog2 bool
	// YMax caps the y axis (default 100, the bandwidth percentage scale).
	YMax float64
}

const (
	svgW, svgH         = 640, 420
	padL, padR         = 70, 160
	padT, padB         = 50, 60
	plotW              = svgW - padL - padR
	plotH              = svgH - padT - padB
	defaultSeriesColor = "#444444"
)

var paletteColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// RenderSVG draws the series as a standalone SVG document.
func RenderSVG(cfg PlotConfig, series []Series) string {
	if cfg.YMax <= 0 {
		cfg.YMax = 100
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.X {
			if cfg.XLog2 {
				x = math.Log2(x)
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
		}
	}
	if !(xmax > xmin) {
		xmax = xmin + 1
	}
	sx := func(x float64) float64 {
		if cfg.XLog2 {
			x = math.Log2(x)
		}
		return padL + (x-xmin)/(xmax-xmin)*plotW
	}
	sy := func(y float64) float64 {
		if y < 0 {
			y = 0
		}
		if y > cfg.YMax {
			y = cfg.YMax
		}
		return padT + (1-y/cfg.YMax)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", svgW/2, escape(cfg.Title))

	// Axes and gridlines.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n", padL, padT, plotW, plotH)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		y := cfg.YMax * frac
		py := sy(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", padL, py, padL+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.0f</text>`+"\n", padL-6, py+4, y)
	}
	// X ticks at each distinct x of the first series.
	if len(series) > 0 {
		for _, x := range series[0].X {
			px := sx(x)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", px, padT, px, padT+plotH)
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%.0f</text>`+"\n", px, padT+plotH+16, x)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n", padL+plotW/2, svgH-14, escape(cfg.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n", padT+plotH/2, padT+plotH/2, escape(cfg.YLabel))

	// Series.
	for i, s := range series {
		color := s.Color
		if color == "" {
			if i < len(paletteColors) {
				color = paletteColors[i]
			} else {
				color = defaultSeriesColor
			}
		}
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[j]), sy(s.Y[j])))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n", strings.Join(pts, " "), color, dash)
		for j := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(s.X[j]), sy(s.Y[j]), color)
		}
		// Legend entry.
		ly := padT + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n", padL+plotW+10, ly, padL+plotW+34, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", padL+plotW+40, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SVG renders a Figure 7 panel in the paper's four-series form.
func (p *Panel) SVG() string {
	xs := make([]float64, len(p.Depths))
	for i, d := range p.Depths {
		xs[i] = float64(d)
	}
	flat := func(v float64) []float64 {
		out := make([]float64, len(xs))
		for i := range out {
			out[i] = v
		}
		return out
	}
	return RenderSVG(PlotConfig{
		Title:  fmt.Sprintf("Figure 7 — %s, %v, %d elements", p.Kernel, p.Scheme, p.N),
		XLabel: "FIFO depth (elements)",
		YLabel: "% of peak bandwidth",
		XLog2:  true,
	}, []Series{
		{Name: "SMC combined limit", X: xs, Y: p.CombinedLimit, Dashed: true},
		{Name: "SMC, staggered vectors", X: xs, Y: p.Staggered},
		{Name: "SMC, aligned vectors", X: xs, Y: p.Aligned},
		{Name: "cacheline/natural order limit", X: xs, Y: flat(p.CacheLimit), Dashed: true},
	})
}

// Figure8SVG renders the strided single-stream fill bounds.
func Figure8SVG() string {
	tab := Figure8()
	n := len(tab.Rows)
	xs := make([]float64, n)
	cliL, piL, cliS, piS := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i, row := range tab.Rows {
		fmt.Sscanf(row[0], "%f", &xs[i])
		fmt.Sscanf(row[1], "%f", &cliL[i])
		fmt.Sscanf(row[2], "%f", &piL[i])
		fmt.Sscanf(row[3], "%f", &cliS[i])
		fmt.Sscanf(row[4], "%f", &piS[i])
	}
	return RenderSVG(PlotConfig{
		Title:  "Figure 8 — cacheline fill performance for strided accesses",
		XLabel: "stride (64-bit words)",
		YLabel: "% of peak bandwidth",
	}, []Series{
		{Name: "CLI, closed page (limit)", X: xs, Y: cliL, Dashed: true},
		{Name: "PI, open page (limit)", X: xs, Y: piL, Dashed: true},
		{Name: "CLI simulated", X: xs, Y: cliS},
		{Name: "PI simulated", X: xs, Y: piS},
	})
}

// Figure9SVG renders the non-unit-stride vaxpy comparison.
func Figure9SVG() (string, error) {
	tab, err := Figure9()
	if err != nil {
		return "", err
	}
	n := len(tab.Rows)
	xs := make([]float64, n)
	cols := make([][]float64, 4)
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	for i, row := range tab.Rows {
		fmt.Sscanf(row[0], "%f", &xs[i])
		for c := 0; c < 4; c++ {
			fmt.Sscanf(row[c+1], "%f", &cols[c][i])
		}
	}
	return RenderSVG(PlotConfig{
		Title:  "Figure 9 — vaxpy with non-unit strides (1024 elements, FIFO 128)",
		XLabel: "stride (64-bit words)",
		YLabel: "% of attainable bandwidth",
	}, []Series{
		{Name: "PI, SMC", X: xs, Y: cols[0]},
		{Name: "CLI, SMC", X: xs, Y: cols[1]},
		{Name: "PI, cache", X: xs, Y: cols[2], Dashed: true},
		{Name: "CLI, cache", X: xs, Y: cols[3], Dashed: true},
	}), nil
}
