package experiments

import (
	"strconv"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"demo", "a", "bb", "333", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n333,4\n" {
		t.Errorf("csv = %q", csv)
	}
}

func TestFigure1Table(t *testing.T) {
	tab := Figure1()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	if tab.Rows[4][0] != "Direct RDRAM" {
		t.Errorf("last row = %v", tab.Rows[4])
	}
	if tab.Rows[4][6] != "1600" {
		t.Errorf("RDRAM peak cell = %q, want 1600", tab.Rows[4][6])
	}
}

func TestFigure2Table(t *testing.T) {
	tab := Figure2()
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"tRAC", "20 tCYCLE", "50.0 ns", "tRW", "tCPOL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
}

func TestFigure5And6Timelines(t *testing.T) {
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ROW", "COL", "DATA", "A"} {
		if !strings.Contains(f5, want) || !strings.Contains(f6, want) {
			t.Errorf("timelines missing %q", want)
		}
	}
	// The CLI timeline precharges after every line; the PI timeline keeps
	// pages open so it must show fewer PRER marks.
	if strings.Count(f6, "P") >= strings.Count(f5, "P") {
		t.Errorf("PI timeline should show fewer precharges than CLI")
	}
}

func TestFigure7PanelShape(t *testing.T) {
	p, err := Figure7Panel("vaxpy", addrmap.PI, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Depths) != len(Figure7Depths) ||
		len(p.CombinedLimit) != len(p.Depths) ||
		len(p.Staggered) != len(p.Depths) ||
		len(p.Aligned) != len(p.Depths) {
		t.Fatalf("series lengths inconsistent: %+v", p)
	}
	for i := range p.Depths {
		if p.Staggered[i] <= 0 || p.Staggered[i] > 100 {
			t.Errorf("depth %d: staggered %.1f out of range", p.Depths[i], p.Staggered[i])
		}
		// The simulation must respect the analytic natural-order-versus-SMC
		// story: at depth >= 64 the SMC beats the cache limit.
		if p.Depths[i] >= 64 && p.Staggered[i] <= p.CacheLimit {
			t.Errorf("depth %d: SMC %.1f does not beat cache limit %.1f", p.Depths[i], p.Staggered[i], p.CacheLimit)
		}
	}
	tab := p.Table()
	if len(tab.Rows) != len(p.Depths) {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Title, "vaxpy") || !strings.Contains(tab.Title, "PI") {
		t.Errorf("title = %q", tab.Title)
	}
}

func TestFigure8ShapeMatchesPaper(t *testing.T) {
	tab := Figure8()
	if len(tab.Rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Declines up to the line size, flat beyond (for the analytic CLI
	// column), and PI above CLI everywhere.
	for i, row := range tab.Rows {
		cli, pi := parse(row[1]), parse(row[2])
		if pi <= cli {
			t.Errorf("stride %s: PI %v <= CLI %v", row[0], pi, cli)
		}
		if i >= 4 { // strides past the cacheline
			if row[1] != tab.Rows[4][1] {
				t.Errorf("CLI limit not flat beyond line size at stride %s", row[0])
			}
		}
	}
	// Large strides deliver 10% or less (the paper's claim), for the CLI limit.
	if v := parse(tab.Rows[31][1]); v > 10 {
		t.Errorf("stride 32 CLI limit %v, want <= 10", v)
	}
}

func TestFigure9SMCBeatsCacheAtSmallStrides(t *testing.T) {
	tab, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Figure9Strides) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	// At stride 4 the SMC dominates the cache on both organizations
	// ("up to 2.2 times the maximum effective bandwidth of the naive
	// approach").
	first := tab.Rows[0]
	if parse(first[1]) < parse(first[3]) || parse(first[2]) < parse(first[4]) {
		t.Errorf("stride 4: SMC should beat cache: %v", first)
	}
}

func TestSchedulerAblation(t *testing.T) {
	tab, err := SchedulerAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Rows[0]) != 8 {
		t.Fatalf("unexpected shape: %v", tab.Rows)
	}
}

func TestHeadlineNumbers(t *testing.T) {
	tab, err := HeadlineNumbers()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	for _, want := range []string{"44-76", "1.18-2.25", "88.68", "76.11", "2.94", "2.11"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline table missing paper quote %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) < 8 {
		t.Errorf("expected at least 8 claims, got %d", len(tab.Rows))
	}
}

// TestFigure7GoldenValues pins the key simulated datapoints so future
// refactors of the device or controllers cannot silently shift the
// reproduction. Tolerances are +/-2 points; the values are deterministic
// today, the slack is only there to allow deliberate model refinements to
// be noticed rather than blocked.
func TestFigure7GoldenValues(t *testing.T) {
	golden := []struct {
		kernel string
		scheme addrmap.Scheme
		n      int
		depth  int
		want   float64 // staggered-placement % of peak
	}{
		{"copy", addrmap.CLI, 1024, 128, 96.7},
		{"copy", addrmap.PI, 1024, 128, 98.4},
		{"daxpy", addrmap.CLI, 1024, 128, 94.6},
		{"daxpy", addrmap.PI, 1024, 32, 96.0},
		{"vaxpy", addrmap.CLI, 1024, 32, 91.3},
		{"vaxpy", addrmap.PI, 1024, 128, 93.8},
		{"hydro", addrmap.PI, 128, 16, 90.1},
	}
	for _, g := range golden {
		p, err := Figure7Panel(g.kernel, g.scheme, g.n)
		if err != nil {
			t.Fatal(err)
		}
		var got float64
		for i, d := range p.Depths {
			if d == g.depth {
				got = p.Staggered[i]
			}
		}
		if got < g.want-2 || got > g.want+2 {
			t.Errorf("%s/%v/%d depth %d = %.2f, golden %.1f +/- 2",
				g.kernel, g.scheme, g.n, g.depth, got, g.want)
		}
	}
}
