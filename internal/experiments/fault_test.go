package experiments

import "testing"

func TestFaultSweepPoints(t *testing.T) {
	pts, err := FaultSweepPoints("daxpy", 256, 42, []int{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	perSev := len(FaultControllers) * 2
	if len(pts) != 3*perSev { // clean baseline + two severities
		t.Fatalf("points = %d, want %d", len(pts), 3*perSev)
	}
	for i, p := range pts {
		if !p.Verified {
			t.Errorf("point %d (%+v): not verified — faults corrupted data", i, p)
		}
		if p.Severity == 0 {
			if p.PercentOfClean != 100 || p.Rejections != 0 || p.JitterCycles != 0 {
				t.Errorf("clean baseline %d carries fault artifacts: %+v", i, p)
			}
			continue
		}
		if p.PercentOfClean <= 0 || p.PercentOfClean > 100 {
			t.Errorf("point %d: percent-of-clean %.2f out of range", i, p.PercentOfClean)
		}
		if p.Rejections == 0 && p.JitterCycles == 0 {
			t.Errorf("point %d: severity %d injected nothing", i, p.Severity)
		}
	}
	// Degradation should deepen with severity for each configuration.
	for i := perSev; i < 2*perSev; i++ {
		if pts[i+perSev].PercentOfClean > pts[i].PercentOfClean+1 {
			t.Errorf("%s/%s: severity %d (%.1f%%) degrades less than severity %d (%.1f%%)",
				pts[i].Controller, pts[i].SchemeName,
				pts[i+perSev].Severity, pts[i+perSev].PercentOfClean,
				pts[i].Severity, pts[i].PercentOfClean)
		}
	}
}

func TestFaultSweepTable(t *testing.T) {
	tab, err := FaultSweep(7, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v does not match header %v", row, tab.Header)
		}
		for _, c := range row[1:] {
			if v := cell(t, c); v <= 0 || v > 100 {
				t.Errorf("out-of-range percent-of-clean %v in %v", v, row)
			}
		}
	}
}
