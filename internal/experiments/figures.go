package experiments

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/analytic"
	"rdramstream/internal/dram"
	"rdramstream/internal/engine"
	"rdramstream/internal/natorder"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
)

// Figure1 regenerates the paper's Figure 1: timing parameters of the DRAM
// families, extended with the derived peak and streaming rates that
// motivate the study.
func Figure1() *Table {
	t := &Table{
		Title:  "Figure 1 — Typical DRAM timing parameters",
		Header: []string{"part", "tRAC ns", "tCAC ns", "tRC ns", "tPC ns", "max MHz", "peak MB/s", "stream-1KB MB/s", "random MB/s"},
		Notes: []string{
			"peak/stream/random columns are derived from the page-mode model in internal/dram",
		},
	}
	for _, s := range dram.Catalog() {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.0f", s.TRAC), fmt.Sprintf("%.0f", s.TCAC),
			fmt.Sprintf("%.0f", s.TRC), fmt.Sprintf("%.0f", s.TPC),
			fmt.Sprintf("%.0f", s.MaxMHz),
			fmt.Sprintf("%.0f", s.PeakMBps()),
			fmt.Sprintf("%.0f", s.StreamMBps(1024)),
			fmt.Sprintf("%.0f", s.RandomMBps()),
		})
	}
	return t
}

// Figure2 regenerates the paper's Figure 2: the Direct RDRAM timing
// parameter definitions for the -50/-800 part, in interface-clock cycles
// and nanoseconds.
func Figure2() *Table {
	tm := rdram.DefaultTiming()
	row := func(name, desc string, cycles int) []string {
		return []string{name, fmt.Sprintf("%d tCYCLE", cycles), fmt.Sprintf("%.1f ns", float64(cycles)*2.5), desc}
	}
	return &Table{
		Title:  "Figure 2 — Direct RDRAM (-50/-800) timing parameters",
		Header: []string{"param", "cycles", "time", "definition"},
		Rows: [][]string{
			{"tCYCLE", "1 tCYCLE", "2.5 ns", "interface clock cycle (400 MHz)"},
			row("tPACK", "packet transfer time", tm.TPack),
			row("tRCD", "min interval between ROW & COL packets", tm.TRCD),
			row("tRP", "page precharge time (PRER to ACT)", tm.TRP),
			row("tCPOL", "max overlap of last COL & PRER", tm.TCPOL),
			row("tCAC", "page-hit latency (COL to data)", tm.TCAC),
			row("tRAC", "page-miss latency (ACT to data)", tm.TRAC()),
			row("tRC", "page-miss cycle time (ACT to ACT, same bank)", tm.TRC),
			row("tRR", "ROW-to-ROW packet delay, same device", tm.TRR),
			row("tRDLY", "round-trip bus delay on reads", tm.TRDLY),
			row("tRW", "read/write bus turnaround (tPACK + tRDLY)", tm.TRW),
		},
	}
}

// timeline runs the paper's three-stream loop {rd x[i]; rd y[i]; st z[i]}
// through the natural-order controller and renders the bus timeline.
func timeline(scheme addrmap.Scheme) (string, error) {
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(scheme, g, 4, []int64{16, 16, 16}, stream.Staggered)
	k := stream.Sum(bases[0], bases[1], bases[2], 16, 1)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	var rec rdram.Recorder
	dev.Trace = rec.Hook()
	if _, err := natorder.Run(dev, k, natorder.Config{Scheme: scheme, LineWords: 4}); err != nil {
		return "", err
	}
	head := fmt.Sprintf("%v timing for the three-stream loop {rd x[i]; rd y[i]; st z[i]}, 32-byte lines:\n", scheme)
	return head + rec.Timeline(2), nil
}

// Figure5 renders the CLI closed-page command/data timeline of the
// paper's Figure 5.
func Figure5() (string, error) { return timeline(addrmap.CLI) }

// Figure6 renders the PI open-page timeline of the paper's Figure 6.
func Figure6() (string, error) { return timeline(addrmap.PI) }

// Figure7Depths is the FIFO-depth sweep of the paper's Figure 7.
var Figure7Depths = []int{8, 16, 32, 64, 128}

// Panel is one of Figure 7's sixteen graphs: a kernel on one memory
// organization and vector length, swept over FIFO depth.
type Panel struct {
	Kernel string
	Scheme addrmap.Scheme
	N      int
	Depths []int
	// CombinedLimit is the analytic SMC bound (Eq 5.15-5.18) per depth.
	CombinedLimit []float64
	// Staggered and Aligned are simulated SMC results per depth for the
	// two vector placements.
	Staggered []float64
	Aligned   []float64
	// CacheLimit is the analytic natural-order bound (flat line).
	CacheLimit float64
	// CacheSim is our simulated natural-order result (an addition to the
	// paper, which plots only the analytic cache bound).
	CacheSim float64
}

// Figure7Panel computes one panel.
func Figure7Panel(kernel string, scheme addrmap.Scheme, n int) (*Panel, error) {
	f, ok := stream.FactoryByName(kernel)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown kernel %q", kernel)
	}
	probe := f.Make(make([]int64, f.Vectors), 8, 1)
	s := len(probe.Streams)
	sr := probe.ReadStreams()
	sw := probe.WriteStreams()

	par := analytic.DefaultParams()
	p := &Panel{Kernel: kernel, Scheme: scheme, N: n, Depths: Figure7Depths}
	pi := scheme == addrmap.PI
	if pi {
		p.CacheLimit = par.CacheMultiPI(s, n)
	} else {
		p.CacheLimit = par.CacheMultiCLI(s, n)
	}
	natOut, err := sim.Run(sim.Scenario{
		KernelName: kernel, N: n, Scheme: scheme, Mode: sim.NaturalOrder,
		Placement: stream.Staggered, SkipVerify: true,
	})
	if err != nil {
		return nil, err
	}
	p.CacheSim = natOut.PercentPeak

	for _, depth := range Figure7Depths {
		p.CombinedLimit = append(p.CombinedLimit, par.SMCCombinedBound(pi, sr, sw, depth, n))
		for _, placement := range []stream.Placement{stream.Staggered, stream.Aligned} {
			out, err := sim.Run(sim.Scenario{
				KernelName: kernel, N: n, Scheme: scheme, Mode: sim.SMC,
				FIFODepth: depth, Placement: placement, SkipVerify: true,
			})
			if err != nil {
				return nil, err
			}
			if placement == stream.Staggered {
				p.Staggered = append(p.Staggered, out.PercentPeak)
			} else {
				p.Aligned = append(p.Aligned, out.PercentPeak)
			}
		}
	}
	return p, nil
}

// Table renders the panel in Figure 7's four-series form.
func (p *Panel) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 — %s, %v, %d elements (%% of peak bandwidth)", p.Kernel, p.Scheme, p.N),
		Header: []string{"FIFO depth", "SMC combined limit", "SMC staggered", "SMC aligned", "cache/natural-order limit", "natural-order sim"},
	}
	for i, d := range p.Depths {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			f1(p.CombinedLimit[i]), f1(p.Staggered[i]), f1(p.Aligned[i]),
			f1(p.CacheLimit), f1(p.CacheSim),
		})
	}
	return t
}

// Figure7Kernels and lengths match the paper's grid.
var (
	Figure7Kernels = []string{"copy", "daxpy", "hydro", "vaxpy"}
	Figure7Lengths = []int{128, 1024}
)

// Figure7 computes all sixteen panels (4 kernels x 2 schemes x 2 lengths).
func Figure7() ([]*Panel, error) { return Figure7Parallel(0) }

// Figure7Parallel computes the sixteen panels on a bounded worker pool
// (workers <= 0 uses GOMAXPROCS). Each panel builds its own devices, so
// the panels are independent; the output order and contents are identical
// to the serial run.
func Figure7Parallel(workers int) ([]*Panel, error) {
	type job struct {
		kernel string
		scheme addrmap.Scheme
		n      int
	}
	var jobs []job
	for _, kn := range Figure7Kernels {
		for _, n := range Figure7Lengths {
			for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
				jobs = append(jobs, job{kn, scheme, n})
			}
		}
	}
	return engine.Map(workers, len(jobs), func(i int) (*Panel, error) {
		return Figure7Panel(jobs[i].kernel, jobs[i].scheme, jobs[i].n)
	})
}

// Figure8 regenerates the strided single-stream cacheline-fill bounds
// (analytic, as the paper plots) alongside our simulated counterpart.
func Figure8() *Table {
	par := analytic.DefaultParams()
	t := &Table{
		Title:  "Figure 8 — cacheline fill performance for strided single-stream accesses (% of peak)",
		Header: []string{"stride", "CLI limit", "PI limit", "CLI sim", "PI sim"},
		Notes:  []string{"limits from Eq 5.2-5.8; sim is the natural-order controller on a single read stream"},
	}
	for stride := 1; stride <= 32; stride++ {
		cliSim := strideFillSim(addrmap.CLI, stride)
		piSim := strideFillSim(addrmap.PI, stride)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", stride),
			f1(par.CacheSingleCLI(stride)), f1(par.CacheSinglePI(stride)),
			f1(cliSim), f1(piSim),
		})
	}
	return t
}

// strideFillSim measures a single strided read stream through the
// natural-order controller.
func strideFillSim(scheme addrmap.Scheme, stride int) float64 {
	g := rdram.DefaultGeometry()
	n := 1024
	bases := stream.MustLayout(scheme, g, 4, []int64{int64(n * stride)}, stream.Staggered)
	k := &stream.Kernel{
		Name: "fill",
		Streams: []stream.Stream{
			{Name: "x", Base: bases[0], Stride: int64(stride), Length: n, Mode: stream.Read},
		},
		Compute: func(int, []float64) []float64 { return nil },
	}
	dev := rdram.NewDevice(rdram.DefaultConfig())
	res, err := natorder.Run(dev, k, natorder.Config{Scheme: scheme, LineWords: 4})
	if err != nil {
		return 0
	}
	return res.PercentPeak
}

// Figure9Strides is the paper's x-axis: strides 4 through 60 in steps of 8.
var Figure9Strides = []int{4, 12, 20, 28, 36, 44, 52, 60}

// Figure9 regenerates the non-unit-stride vaxpy comparison: SMC simulation
// versus the natural-order cache bound, on both organizations, as a
// percentage of *attainable* bandwidth (50% of peak for non-unit strides).
func Figure9() (*Table, error) {
	par := analytic.DefaultParams()
	t := &Table{
		Title:  "Figure 9 — vaxpy with non-unit strides, 1024 elements, FIFO depth 128 (% of attainable bandwidth)",
		Header: []string{"stride", "PI SMC", "CLI SMC", "PI cache", "CLI cache"},
		Notes:  []string{"attainable bandwidth for non-unit strides is 50% of peak (one word per packet)"},
	}
	// Two scenarios per stride (PI then CLI), run on the worker pool and
	// read back in scenario order.
	var scs []sim.Scenario
	for _, stride := range Figure9Strides {
		for _, scheme := range []addrmap.Scheme{addrmap.PI, addrmap.CLI} {
			scs = append(scs, sim.Scenario{
				KernelName: "vaxpy", N: 1024, Stride: int64(stride), Scheme: scheme,
				Mode: sim.SMC, FIFODepth: 128, Placement: stream.Staggered, SkipVerify: true,
			})
		}
	}
	outs, err := sim.RunAll(scs, 0)
	if err != nil {
		return nil, err
	}
	for i, stride := range Figure9Strides {
		// Cache bounds for the four-stream strided loop; Figure 9 plots
		// percent-of-attainable, so the percent-of-peak bound doubles.
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", stride),
			f1(outs[2*i].PercentAttainable), f1(outs[2*i+1].PercentAttainable),
			f1(2 * par.CacheMultiPIStrided(4, 1024, stride)),
			f1(2 * par.CacheMultiCLIStrided(4, 1024, stride)),
		})
	}
	return t, nil
}

// SchedulerAblation compares the MSU policies across layouts — the §6
// "more sophisticated access ordering mechanisms" discussion in numbers.
// The extension policies win on conflicting layouts and can lose a little
// on already-favourable ones, which is precisely the robustness question
// §6 leaves open.
func SchedulerAblation() (*Table, error) {
	t := &Table{
		Title:  "Scheduler ablation — vaxpy, 1024 elements, FIFO 32 (% of peak)",
		Header: []string{"scheme", "placement", "round-robin", "bank-aware", "hit-first", "round-robin+spec", "bank-aware+spec", "hit-first+spec"},
	}
	// Six scenarios per (scheme, placement) row, in column order; the pool
	// runs them all at once and the rows are assembled from the ordered
	// results.
	var scs []sim.Scenario
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		for _, placement := range []stream.Placement{stream.Staggered, stream.Aligned} {
			for _, spec := range []bool{false, true} {
				for _, pol := range []smc.Policy{smc.RoundRobin, smc.BankAware, smc.HitFirst} {
					scs = append(scs, sim.Scenario{
						KernelName: "vaxpy", N: 1024, Scheme: scheme, Mode: sim.SMC,
						FIFODepth: 32, Policy: pol, SpeculateActivate: spec,
						Placement: placement, SkipVerify: true,
					})
				}
			}
		}
	}
	outs, err := sim.RunAll(scs, 0)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		for _, placement := range []stream.Placement{stream.Staggered, stream.Aligned} {
			row := []string{scheme.String(), placement.String()}
			for range 6 {
				row = append(row, f1(outs[i].PercentPeak))
				i++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
