package experiments

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/fault"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

// FaultControllers is the controller set a fault sweep exercises — every
// access-ordering policy the paper compares, each of which must degrade
// gracefully (not hang, not corrupt) under injected interference.
var FaultControllers = []string{"natural-order", "smc", "conventional"}

// FaultPoint is one measurement of a controller under deterministic fault
// injection: the absolute bandwidth, its fraction of the same
// configuration's clean (no-fault) bandwidth, and the injection counters
// that explain the loss.
type FaultPoint struct {
	Severity       int            `json:"severity"`
	Controller     string         `json:"controller"`
	Scheme         addrmap.Scheme `json:"-"`
	SchemeName     string         `json:"scheme"`
	PercentPeak    float64        `json:"percent_peak"`
	PercentOfClean float64        `json:"percent_of_clean"`
	Cycles         int64          `json:"cycles"`
	Rejections     int64          `json:"rejections"`
	JitterCycles   int64          `json:"jitter_cycles"`
	Refreshes      int64          `json:"refreshes"`
	Verified       bool           `json:"verified"`
}

// Runner executes a scenario list and returns the outcomes in input
// order — the seam that lets a sweep run locally (sim.RunAll) or be
// offloaded to a running rdserved instance (the service client): the
// scenario construction and the percent-of-clean bookkeeping stay in one
// place either way.
type Runner func([]sim.Scenario) ([]sim.Outcome, error)

// FaultSweepPoints runs one kernel across fault severities for every
// controller and scheme, on the shared worker pool. Severity 0 (the clean
// baseline) is always measured first and anchors PercentOfClean; the fault
// sequence for each scenario depends only on the seed and severity, so the
// points are byte-identical for any worker count.
func FaultSweepPoints(kernel string, n int, seed int64, severities []int, workers int) ([]FaultPoint, error) {
	return FaultSweepPointsWith(kernel, n, seed, severities, func(scs []sim.Scenario) ([]sim.Outcome, error) {
		return sim.RunAll(scs, workers)
	})
}

// FaultSweepPointsWith is FaultSweepPoints with the execution strategy
// injected.
func FaultSweepPointsWith(kernel string, n int, seed int64, severities []int, run Runner) ([]FaultPoint, error) {
	sevs := []int{0}
	for _, s := range severities {
		if s > 0 {
			sevs = append(sevs, s)
		}
	}

	var scs []sim.Scenario
	var pts []FaultPoint
	for _, sev := range sevs {
		var fc *fault.Config
		if sev > 0 {
			c := fault.Scaled(seed, sev)
			fc = &c
		}
		for _, ctl := range FaultControllers {
			for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
				scs = append(scs, sim.Scenario{
					KernelName: kernel, N: n, Scheme: scheme, Controller: ctl,
					Placement: stream.Staggered, Fault: fc,
				})
				pts = append(pts, FaultPoint{
					Severity: sev, Controller: ctl,
					Scheme: scheme, SchemeName: scheme.String(),
				})
			}
		}
	}

	outs, err := run(scs)
	if err != nil {
		return nil, err
	}
	if len(outs) != len(scs) {
		return nil, fmt.Errorf("experiments: runner returned %d outcomes for %d scenarios", len(outs), len(scs))
	}
	perSev := len(FaultControllers) * 2
	for i, out := range outs {
		pts[i].PercentPeak = out.PercentPeak
		pts[i].Cycles = out.Cycles
		pts[i].Rejections = out.Device.Rejections
		pts[i].JitterCycles = out.Device.JitterCycles
		pts[i].Refreshes = out.Device.Refreshes
		pts[i].Verified = out.Verified
		clean := pts[i%perSev].PercentPeak // severity-0 row of the same controller/scheme
		if clean > 0 {
			pts[i].PercentOfClean = pts[i].PercentPeak / clean * 100
		}
	}
	return pts, nil
}

// FaultSweep renders the canonical fault-degradation table: daxpy under
// increasing injection severity, percent-of-clean per controller. The
// robustness question it answers: which access-ordering policy holds its
// bandwidth best when the device misbehaves?
func FaultSweep(seed int64, severities []int) (*Table, error) {
	if len(severities) == 0 {
		severities = []int{1, 2, 4, 8}
	}
	pts, err := FaultSweepPoints("daxpy", 1024, seed, severities, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Fault degradation — daxpy, 1024 elements, seed %d (%% of clean bandwidth)", seed),
		Header: []string{"severity", "CLI cache", "CLI SMC", "CLI conventional",
			"PI cache", "PI SMC", "PI conventional"},
		Notes: []string{"faults: transient rejections, per-bank latency jitter, refresh storms; severity 0 = clean baseline"},
	}
	byKey := map[string]FaultPoint{}
	seen := map[int]bool{}
	var sevs []int
	for _, p := range pts {
		if p.Severity > 0 && !seen[p.Severity] {
			seen[p.Severity] = true
			sevs = append(sevs, p.Severity)
		}
		byKey[fmt.Sprintf("%d/%s/%v", p.Severity, p.Controller, p.Scheme)] = p
	}
	for _, sev := range sevs {
		row := []string{fmt.Sprintf("%d", sev)}
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, ctl := range []string{"natural-order", "smc", "conventional"} {
				p := byKey[fmt.Sprintf("%d/%s/%v", sev, ctl, scheme)]
				row = append(row, f1(p.PercentOfClean))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
