package experiments

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/analytic"
	"rdramstream/internal/natorder"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

// HeadlineNumbers reproduces the figures quoted in the paper's abstract
// and §6 text, one row per claim: the paper's value next to this
// implementation's analytic and simulated values. The deltas are discussed
// in EXPERIMENTS.md.
func HeadlineNumbers() (*Table, error) {
	par := analytic.DefaultParams()
	t := &Table{
		Title:  "Headline numbers — paper quote vs this implementation",
		Header: []string{"claim", "paper", "analytic", "simulated"},
	}
	add := func(claim, paper, an, simv string) {
		t.Rows = append(t.Rows, []string{claim, paper, an, simv})
	}

	// Natural-order unit-stride range across the four kernels ("44-76% of
	// peak" in the abstract).
	lo, hi := 101.0, 0.0
	loS, hiS := 101.0, 0.0
	type kr struct {
		kernel string
		scheme addrmap.Scheme
		nat    float64
		smc    float64
	}
	var results []kr
	for _, kn := range Figure7Kernels {
		f, _ := stream.FactoryByName(kn)
		probe := f.Make(make([]int64, f.Vectors), 8, 1)
		s := len(probe.Streams)
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			var bound float64
			if scheme == addrmap.PI {
				bound = par.CacheMultiPI(s, 1024)
			} else {
				bound = par.CacheMultiCLI(s, 1024)
			}
			if bound < lo {
				lo = bound
			}
			if bound > hi {
				hi = bound
			}
			nat, err := sim.Run(sim.Scenario{KernelName: kn, N: 1024, Scheme: scheme,
				Mode: sim.NaturalOrder, Placement: stream.Staggered, SkipVerify: true})
			if err != nil {
				return nil, err
			}
			if nat.PercentPeak < loS {
				loS = nat.PercentPeak
			}
			if nat.PercentPeak > hiS {
				hiS = nat.PercentPeak
			}
			smcOut, err := sim.Run(sim.Scenario{KernelName: kn, N: 1024, Scheme: scheme,
				Mode: sim.SMC, FIFODepth: 128, Placement: stream.Staggered, SkipVerify: true})
			if err != nil {
				return nil, err
			}
			results = append(results, kr{kn, scheme, nat.PercentPeak, smcOut.PercentPeak})
		}
	}
	add("natural-order unit-stride range (% peak)", "44-76",
		fmt.Sprintf("%s-%s", f1(lo), f1(hi)), fmt.Sprintf("%s-%s", f1(loS), f1(hiS)))

	// SMC speedup over natural order, stride 1 ("factors of 1.18 to 2.25").
	rmin, rmax := 1e9, 0.0
	for _, r := range results {
		ratio := r.smc / r.nat
		if ratio < rmin {
			rmin = ratio
		}
		if ratio > rmax {
			rmax = ratio
		}
	}
	add("SMC speedup over natural order, stride 1", "1.18-2.25",
		"-", fmt.Sprintf("%s-%s", f2(rmin), f2(rmax)))

	// copy with 1024 elements exceeds 98% of peak.
	for _, r := range results {
		if r.kernel == "copy" && r.scheme == addrmap.CLI {
			add("copy 1024 elements, deep FIFOs (% peak)", ">98",
				f1(par.SMCCombinedBound(false, 1, 1, 128, 1024)), f1(r.smc))
		}
	}

	// Eight independent unit-stride streams (7 read + 1 write).
	add("8 streams, PI bound (% peak)", "88.68", f2(par.CacheMultiPI(8, 1024)), eightStreamSim(addrmap.PI))
	add("8 streams, CLI bound (% peak)", "76.11", f2(par.CacheMultiCLI(8, 1024)), eightStreamSim(addrmap.CLI))

	// Stride 4: three-fourths of each cacheline unused.
	add("8 streams stride 4, PI (% peak)", "22.17", f2(par.CacheMultiPIStrided(8, 1024, 4)), eightStreamSimStrided(addrmap.PI, 4))
	add("8 streams stride 4, CLI (% peak)", "19.03", f2(par.CacheMultiCLIStrided(8, 1024, 4)), eightStreamSimStrided(addrmap.CLI, 4))

	// SMC vs the natural-order analytic ceiling on CLI (copy 2.94x,
	// vaxpy 2.11x in the paper).
	for _, r := range results {
		if r.scheme != addrmap.CLI {
			continue
		}
		if r.kernel == "copy" || r.kernel == "vaxpy" {
			f, _ := stream.FactoryByName(r.kernel)
			probe := f.Make(make([]int64, f.Vectors), 8, 1)
			bound := par.CacheMultiCLI(len(probe.Streams), 1024)
			paper := "2.94"
			if r.kernel == "vaxpy" {
				paper = "2.11"
			}
			add(fmt.Sprintf("SMC/%s vs CLI cache ceiling", r.kernel), paper,
				"-", f2(r.smc/bound))
		}
	}
	return t, nil
}

// eightStreamSim measures seven read streams plus one write stream through
// the natural-order controller.
func eightStreamSim(scheme addrmap.Scheme) string {
	pct, err := multiStreamNatural(scheme, 7, 1, 1024, 1)
	if err != nil {
		return "-"
	}
	return f2(pct)
}

// eightStreamSimStrided is eightStreamSim with a non-unit stride.
func eightStreamSimStrided(scheme addrmap.Scheme, stride int64) string {
	pct, err := multiStreamNatural(scheme, 7, 1, 1024, stride)
	if err != nil {
		return "-"
	}
	return f2(pct)
}

// multiStreamNatural runs sr read streams and sw write streams of n
// elements over independent vectors through the natural-order controller
// and returns the percent of peak.
func multiStreamNatural(scheme addrmap.Scheme, sr, sw, n int, stride int64) (float64, error) {
	g := rdram.DefaultGeometry()
	fps := make([]int64, sr+sw)
	for i := range fps {
		fps[i] = int64(n) * stride
	}
	bases, err := stream.Layout(scheme, g, 4, fps, stream.Staggered)
	if err != nil {
		return 0, err
	}
	k := stream.MultiStream(sr, sw, bases, n, stride)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	res, err := natorder.Run(dev, k, natorder.Config{Scheme: scheme, LineWords: 4})
	if err != nil {
		return 0, err
	}
	return res.PercentPeak, nil
}
