package experiments

import (
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
)

func TestRenderSVGStructure(t *testing.T) {
	svg := RenderSVG(PlotConfig{Title: "t<&>t", XLabel: "x", YLabel: "y"}, []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 50, 90}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{20, 20, 20}, Dashed: true},
	})
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "stroke-dasharray",
		"t&lt;&amp;&gt;t",        // escaped title
		">a</text>", ">b</text>", // legend entries
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// Two series x three points = six markers.
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
}

func TestRenderSVGClampsRange(t *testing.T) {
	svg := RenderSVG(PlotConfig{Title: "clamp"}, []Series{
		{Name: "wild", X: []float64{1, 2}, Y: []float64{-50, 500}},
	})
	// Clamped values stay inside the plot box: no y coordinate above the
	// frame (y < padT) or below it.
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("no line")
	}
}

func TestPanelSVG(t *testing.T) {
	p, err := Figure7Panel("copy", addrmap.PI, 128)
	if err != nil {
		t.Fatal(err)
	}
	svg := p.SVG()
	for _, want := range []string{"Figure 7", "copy", "SMC combined limit", "staggered", "natural order"} {
		if !strings.Contains(svg, want) {
			t.Errorf("panel svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Errorf("panel polylines = %d, want 4", got)
	}
}

func TestFigure8And9SVG(t *testing.T) {
	f8 := Figure8SVG()
	if !strings.Contains(f8, "Figure 8") || strings.Count(f8, "<polyline") != 4 {
		t.Error("figure 8 svg malformed")
	}
	f9, err := Figure9SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9, "Figure 9") || strings.Count(f9, "<polyline") != 4 {
		t.Error("figure 9 svg malformed")
	}
}
