// Package experiments regenerates every table and figure of the paper's
// evaluation: the DRAM comparison (Fig. 1), the Direct RDRAM timing
// parameters (Fig. 2), the CLI/PI protocol timelines (Figs. 5-6), the
// FIFO-depth sweeps (Fig. 7), the strided cacheline-fill bounds (Fig. 8),
// the non-unit-stride vaxpy comparison (Fig. 9), and the headline numbers
// quoted in the abstract and §6.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable result grid with provenance notes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV formats the table as comma-separated values (quotes are not needed
// for the cell content we generate).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
