package workload

import (
	"math/rand"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
)

// scatteredTrace builds a trace that ping-pongs between rows — the
// worst case for in-order open-page service and the best case for
// row-hit-first reordering.
func scatteredTrace(n int) []TraceAccess {
	rng := rand.New(rand.NewSource(11))
	accs := make([]TraceAccess, 0, n)
	for i := 0; i < n; i++ {
		row := rng.Int63n(64)
		accs = append(accs, TraceAccess{Addr: row*128 + rng.Int63n(32)*4, Write: rng.Float64() < 0.2})
	}
	return accs
}

// With Reorder off, ReplayTrace must be cycle-identical to the legacy
// Replay path: same coalescing, same issue discipline, same schedule.
func TestReplayTraceMatchesReplay(t *testing.T) {
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		accs := scatteredTrace(2048)
		d1 := rdram.NewDevice(rdram.DefaultConfig())
		legacy, err := Replay(d1, Config{Scheme: scheme, LineWords: 4}, accs)
		if err != nil {
			t.Fatal(err)
		}
		d2 := rdram.NewDevice(rdram.DefaultConfig())
		got, err := ReplayTrace(d2, TraceOptions{Scheme: scheme, LineWords: 4}, accs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != legacy.Cycles {
			t.Errorf("%v: ReplayTrace %d cycles, Replay %d", scheme, got.Cycles, legacy.Cycles)
		}
		if got.Device != legacy.Device {
			t.Errorf("%v: device stats diverge:\n  trace  %+v\n  legacy %+v", scheme, got.Device, legacy.Device)
		}
	}
}

// Reordering moves the same data — identical transferred words and
// device read/write packet counts — and must not be slower than trace
// order on a row-scattered open-page workload (that is its only job).
func TestReplayTraceReorder(t *testing.T) {
	accs := scatteredTrace(4096)
	d1 := rdram.NewDevice(rdram.DefaultConfig())
	natural, err := ReplayTrace(d1, TraceOptions{Scheme: addrmap.PI, LineWords: 4}, accs)
	if err != nil {
		t.Fatal(err)
	}
	d2 := rdram.NewDevice(rdram.DefaultConfig())
	reordered, err := ReplayTrace(d2, TraceOptions{Scheme: addrmap.PI, LineWords: 4, Reorder: true, Window: 32}, accs)
	if err != nil {
		t.Fatal(err)
	}
	if natural.TransferredWords != reordered.TransferredWords {
		t.Errorf("transferred words diverge: natural %d, reordered %d", natural.TransferredWords, reordered.TransferredWords)
	}
	if natural.Device.Reads != reordered.Device.Reads || natural.Device.Writes != reordered.Device.Writes {
		t.Errorf("packet counts diverge: natural %+v, reordered %+v", natural.Device, reordered.Device)
	}
	if reordered.Cycles > natural.Cycles {
		t.Errorf("reordering slowed the replay: %d > %d cycles", reordered.Cycles, natural.Cycles)
	}
	if reordered.Device.PageHits <= natural.Device.PageHits {
		t.Errorf("reordering found no extra page hits: %d vs %d", reordered.Device.PageHits, natural.Device.PageHits)
	}
}

// Under CLI auto-precharge there are no open rows to chase: the
// reordering scheduler must degenerate to exact trace order.
func TestReplayTraceReorderDegeneratesUnderCLI(t *testing.T) {
	accs := scatteredTrace(1024)
	d1 := rdram.NewDevice(rdram.DefaultConfig())
	natural, err := ReplayTrace(d1, TraceOptions{Scheme: addrmap.CLI, LineWords: 4}, accs)
	if err != nil {
		t.Fatal(err)
	}
	d2 := rdram.NewDevice(rdram.DefaultConfig())
	reordered, err := ReplayTrace(d2, TraceOptions{Scheme: addrmap.CLI, LineWords: 4, Reorder: true}, accs)
	if err != nil {
		t.Fatal(err)
	}
	if natural.Cycles != reordered.Cycles || natural.Device != reordered.Device {
		t.Errorf("CLI reorder diverged from trace order: %d vs %d cycles", reordered.Cycles, natural.Cycles)
	}
}

func TestReplayTraceValidation(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	if _, err := ReplayTrace(dev, TraceOptions{Scheme: addrmap.PI, LineWords: 4}, nil); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, err := ReplayTrace(dev, TraceOptions{Scheme: addrmap.PI, LineWords: 3}, []TraceAccess{{Addr: 0}}); err == nil {
		t.Error("expected error for bad line size")
	}
	if _, err := ReplayTrace(dev, TraceOptions{Scheme: addrmap.PI, LineWords: 4, Outstanding: rdram.MaxOutstanding + 1}, []TraceAccess{{Addr: 0}}); err == nil {
		t.Error("expected error for oversized pipeline depth")
	}
	if _, err := ReplayTrace(dev, TraceOptions{Scheme: addrmap.PI, LineWords: 4}, []TraceAccess{{Addr: 1 << 60}}); err == nil {
		t.Error("expected error for out-of-range address")
	}
}

// Malformed trace files must fail with their line number.
func TestParseTraceLineNumbers(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"R 0\nW 4\nX 8\n", "line 3"},
		{"R 0\nR zap\n", "line 2"},
		{"R 0\nR 4 trailing\n", "line 2"},
		{"# header\n\nR 0\nW\n", "line 4"},
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseTrace(%q) error %v, want mention of %s", c.in, err, c.want)
		}
	}
}

// FuzzParseTrace drives the text-trace parser with arbitrary input: it
// must never panic, and anything it accepts must obey the documented
// invariants (non-empty, non-negative addresses).
func FuzzParseTrace(f *testing.F) {
	f.Add("R 0\nW 0x10\nR 1024\n")
	f.Add("# comment\n\nR 5\n")
	f.Add("R 1 2 3\n")
	f.Add("W -5\n")
	f.Add("R " + strings.Repeat("9", 400) + "\n")
	f.Add(strings.Repeat("x", 200000))
	f.Fuzz(func(t *testing.T, in string) {
		accs, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(accs) == 0 {
			t.Error("accepted a trace with no accesses")
		}
		for i, a := range accs {
			if a.Addr < 0 {
				t.Errorf("access %d has negative address %d", i, a.Addr)
			}
		}
	})
}
