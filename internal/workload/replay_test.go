package workload

import (
	"fmt"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
)

func TestParseTrace(t *testing.T) {
	in := `
# a comment
R 0
W 0x10
R 1024
`
	accs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceAccess{{0, false}, {16, true}, {1024, false}}
	if len(accs) != len(want) {
		t.Fatalf("accs = %v", accs)
	}
	for i := range want {
		if accs[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, accs[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"",             // empty
		"X 5",          // bad op
		"R",            // missing addr
		"R notanumber", // bad addr
		"W -5",         // negative
		"R 1 2 3",      // too many fields
	}
	for i, in := range bad {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): expected error", i, in)
		}
	}
}

func TestReplaySequentialTraceStreams(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 4096; i++ {
		fmt.Fprintf(&sb, "R %d\n", i)
	}
	accs, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	dev := rdram.NewDevice(rdram.DefaultConfig())
	res, err := Replay(dev, Config{Scheme: addrmap.PI, LineWords: 4}, accs)
	if err != nil {
		t.Fatal(err)
	}
	// 4096 word touches = 1024 distinct lines, absorbed spatially.
	if res.Lines != 1024 {
		t.Errorf("lines = %d, want 1024", res.Lines)
	}
	if res.PercentPeak < 90 {
		t.Errorf("sequential replay = %.1f%%", res.PercentPeak)
	}
}

func TestReplayValidation(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	if _, err := Replay(dev, Config{Scheme: addrmap.CLI, LineWords: 4}, nil); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, err := Replay(dev, Config{Scheme: addrmap.CLI, LineWords: 3}, []TraceAccess{{0, false}}); err == nil {
		t.Error("expected error for bad line size")
	}
	huge := []TraceAccess{{1 << 60, false}}
	if _, err := Replay(dev, Config{Scheme: addrmap.CLI, LineWords: 4}, huge); err == nil {
		t.Error("expected error for out-of-range address")
	}
}

func TestReplayAlternatingWriteReadPaysTurnarounds(t *testing.T) {
	// A pathological trace alternating write and read lines forces a bus
	// turnaround per pair — well below the sequential read rate.
	var accs []TraceAccess
	for i := int64(0); i < 1024; i++ {
		accs = append(accs, TraceAccess{Addr: i * 4, Write: i%2 == 0})
	}
	dev := rdram.NewDevice(rdram.DefaultConfig())
	res, err := Replay(dev, Config{Scheme: addrmap.PI, LineWords: 4}, accs)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]TraceAccess, len(accs))
	for i := range seq {
		seq[i] = TraceAccess{Addr: accs[i].Addr}
	}
	dev2 := rdram.NewDevice(rdram.DefaultConfig())
	res2, err := Replay(dev2, Config{Scheme: addrmap.PI, LineWords: 4}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.PercentPeak >= res2.PercentPeak {
		t.Errorf("alternating W/R (%.1f%%) should trail pure reads (%.1f%%)", res.PercentPeak, res2.PercentPeak)
	}
	if res.Device.Retires == 0 {
		t.Error("expected retire activity from the alternation")
	}
}
