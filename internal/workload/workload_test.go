package workload

import (
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
)

func channel(devices int) rdram.Config {
	cfg := rdram.DefaultConfig()
	cfg.Geometry.Banks *= devices
	cfg.Geometry.DevicesOnChannel = devices
	return cfg
}

func run(t *testing.T, devCfg rdram.Config, cfg Config) Result {
	t.Helper()
	if cfg.LineWords == 0 {
		cfg.LineWords = 4
	}
	if cfg.Requests == 0 {
		cfg.Requests = 4000
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.75
	}
	dev := rdram.NewDevice(devCfg)
	res, err := Run(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPatternStrings(t *testing.T) {
	if Sequential.String() != "sequential" || RandomUniform.String() != "random" || HotPages.String() != "hot-pages" {
		t.Error("pattern names wrong")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern should render")
	}
}

func TestValidation(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	bad := []Config{
		{Requests: 0, LineWords: 4},
		{Requests: 10, LineWords: 3},
		{Requests: 10, LineWords: 4, ReadFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Run(dev, cfg); err != nil {
			continue
		}
		t.Errorf("case %d: expected error", i)
	}
}

func TestSequentialPIRunsNearPeak(t *testing.T) {
	// A pure sequential sweep with an open-page policy is the best case:
	// page hits dominate and the bus streams.
	res := run(t, rdram.DefaultConfig(), Config{Pattern: Sequential, Scheme: addrmap.PI, ReadFraction: 1})
	if res.PercentPeak < 90 {
		t.Errorf("sequential PI = %.1f%%, want near peak", res.PercentPeak)
	}
	if res.HitRate < 0.9 {
		t.Errorf("hit rate = %.2f", res.HitRate)
	}
}

func TestRandomSingleDeviceIsMediocre(t *testing.T) {
	// Uniform random lines on one device: every access is a page miss and
	// consecutive ACTs often hit t_RR/t_RC — well below peak.
	res := run(t, rdram.DefaultConfig(), Config{Pattern: RandomUniform, Scheme: addrmap.CLI})
	if res.PercentPeak > 85 {
		t.Errorf("random single-device = %.1f%%, expected clearly below peak", res.PercentPeak)
	}
	if res.HitRate > 0.6 {
		t.Errorf("random hit rate = %.2f, expected low", res.HitRate)
	}
}

func TestManyDevicesLiftRandomEfficiency(t *testing.T) {
	// The §6/Crisp effect: the same random pattern over a well-populated
	// channel regains most of the bus ("a memory system composed of these
	// chips has been observed to operate near 95% efficiency").
	single := run(t, rdram.DefaultConfig(), Config{Pattern: RandomUniform, Scheme: addrmap.CLI})
	many := run(t, channel(8), Config{Pattern: RandomUniform, Scheme: addrmap.CLI})
	if many.PercentPeak <= single.PercentPeak+5 {
		t.Errorf("8-device random %.1f%% should clearly beat single-device %.1f%%",
			many.PercentPeak, single.PercentPeak)
	}
	if many.PercentPeak < 80 {
		t.Errorf("8-device random = %.1f%%, expected high efficiency", many.PercentPeak)
	}
}

func TestHotPagesBenefitFromOpenPagePolicy(t *testing.T) {
	hotPI := run(t, rdram.DefaultConfig(), Config{Pattern: HotPages, Scheme: addrmap.PI})
	randPI := run(t, rdram.DefaultConfig(), Config{Pattern: RandomUniform, Scheme: addrmap.PI})
	if hotPI.HitRate <= randPI.HitRate {
		t.Errorf("hot-page hit rate %.2f should exceed uniform %.2f", hotPI.HitRate, randPI.HitRate)
	}
	if hotPI.PercentPeak <= randPI.PercentPeak {
		t.Errorf("hot pages %.1f%% should beat uniform %.1f%% under open-page", hotPI.PercentPeak, randPI.PercentPeak)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := run(t, rdram.DefaultConfig(), Config{Pattern: RandomUniform, Scheme: addrmap.PI, Seed: 42})
	b := run(t, rdram.DefaultConfig(), Config{Pattern: RandomUniform, Scheme: addrmap.PI, Seed: 42})
	if a.Cycles != b.Cycles {
		t.Error("same seed produced different runs")
	}
	c := run(t, rdram.DefaultConfig(), Config{Pattern: RandomUniform, Scheme: addrmap.PI, Seed: 43})
	if a.Cycles == c.Cycles {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestFootprintClamped(t *testing.T) {
	cfg := rdram.DefaultConfig()
	cfg.Geometry.PagesPerBank = 2 // tiny device
	res := run(t, cfg, Config{Pattern: RandomUniform, Scheme: addrmap.CLI, FootprintLines: 1 << 40, Requests: 500})
	if res.Lines != 500 {
		t.Errorf("lines = %d", res.Lines)
	}
}
