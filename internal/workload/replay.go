package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
)

// TraceAccess is one request of an externally supplied address trace.
// The json tags pin its spelling inside scenario JSON (tracegen.Spec
// carries a []TraceAccess on the wire).
//
// rdlint:wire — trace accesses ride inside scenario JSON.
type TraceAccess struct {
	// Addr is the 64-bit-word address.
	Addr int64 `json:"addr"`
	// Write marks a store; the zero value is a load.
	Write bool `json:"write,omitempty"`
}

// ParseTrace reads a text trace: one access per line, "R <addr>" or
// "W <addr>" with the address in decimal or 0x-hex. Blank lines and lines
// starting with '#' are skipped. Every malformed line — wrong field
// count, unknown op, bad address, or an overlong line the scanner cannot
// tokenize — fails with its line number; anything trailing a well-formed
// access on the same line is garbage, not ignored.
func ParseTrace(r io.Reader) ([]TraceAccess, error) {
	var out []TraceAccess
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want \"R|W <addr>\", got %q", line, text)
		}
		var write bool
		switch strings.ToUpper(fields[0]) {
		case "R":
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q", line, fields[0])
		}
		addr, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil || addr < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad address %q", line, fields[1])
		}
		out = append(out, TraceAccess{Addr: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return out, nil
}

// Replay services an externally supplied word-level access trace with the
// conventional pipelined controller: each access becomes a cacheline
// transaction (deduplicated against the previously fetched line, like a
// trivial one-line buffer per trace), issued in order.
func Replay(dev *rdram.Device, cfg Config, accs []TraceAccess) (Result, error) {
	if len(accs) == 0 {
		return Result{}, fmt.Errorf("workload: empty trace")
	}
	if cfg.LineWords <= 0 || cfg.LineWords%rdram.WordsPerPacket != 0 {
		return Result{}, fmt.Errorf("workload: bad LineWords %d", cfg.LineWords)
	}
	mapper, err := addrmap.New(cfg.Scheme, dev.Config().Geometry, cfg.LineWords)
	if err != nil {
		return Result{}, err
	}
	outstanding := cfg.Outstanding
	if outstanding <= 0 {
		outstanding = rdram.MaxOutstanding
	}
	packets := cfg.LineWords / rdram.WordsPerPacket
	autoPre := cfg.Scheme == addrmap.CLI
	capacity := mapper.CapacityWords()

	window := engine.NewWindow(outstanding)
	var lines int64
	lastLine := int64(-1)
	for i, a := range accs {
		if a.Addr >= capacity {
			return Result{}, fmt.Errorf("workload: trace access %d address %d exceeds device capacity %d", i, a.Addr, capacity)
		}
		line := a.Addr / int64(cfg.LineWords)
		if line == lastLine {
			continue // spatial locality absorbed by the line buffer
		}
		lastLine = line
		lines++
		at := window.Admit(0)
		base := line * int64(cfg.LineWords)
		var complete int64
		for p := 0; p < packets; p++ {
			loc := mapper.Map(base + int64(p*rdram.WordsPerPacket))
			res, err := engine.Issue(dev, at, rdram.Request{
				Bank: loc.Bank, Row: loc.Row, Col: loc.Col,
				Write:         a.Write,
				AutoPrecharge: autoPre && p == packets-1,
			})
			if err != nil {
				return Result{}, err
			}
			complete = res.DataEnd
		}
		window.Complete(complete)
	}

	st := dev.Stats()
	res := Result{Cycles: st.LastDataEnd, Lines: lines, HitRate: st.HitRate(), Device: st}
	res.PercentPeak = engine.PercentOfPeak(st.PacketCount()*rdram.WordsPerPacket, res.Cycles, dev.Config().Timing.CyclesPerWordPeak())
	return res, nil
}
