package workload

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
)

// conventional registers this package's pipelined controller as a
// kernel-level policy: cacheline transactions in program order, pipelined
// to the outstanding window, with no inter-access dependence gating — the
// "many independent masters" behaviour of Crisp's experiments applied to
// the paper's stream kernels. Comparing it against "natural-order" (same
// transactions, dependence-gated) isolates how much of the baseline's loss
// is the in-order dependence wait rather than the access pattern.
type conventional struct{}

func init() { engine.Register(conventional{}) }

func (conventional) Name() string { return "conventional" }

func (conventional) Run(dev *rdram.Device, k *stream.Kernel, opt engine.Options) (engine.Result, error) {
	if opt.LineWords <= 0 || opt.LineWords%rdram.WordsPerPacket != 0 {
		return engine.Result{}, fmt.Errorf("workload: LineWords must be a positive multiple of %d, got %d", rdram.WordsPerPacket, opt.LineWords)
	}
	if err := k.Validate(); err != nil {
		return engine.Result{}, err
	}
	outstanding := opt.Outstanding
	if outstanding <= 0 {
		outstanding = rdram.MaxOutstanding
	}
	if outstanding > rdram.MaxOutstanding {
		return engine.Result{}, fmt.Errorf("workload: Outstanding %d exceeds device limit %d", outstanding, rdram.MaxOutstanding)
	}
	mapper, err := addrmap.New(opt.Scheme, dev.Config().Geometry, opt.LineWords)
	if err != nil {
		return engine.Result{}, err
	}
	engine.Attach(dev, opt.Telemetry, telemetry.StallNoRequest)

	// Phase 1: functional execution, recording every store value so the
	// device image is exact and callers can verify the computation.
	storeVals := engine.StoreValues(dev, mapper, k)

	// Phase 2: timed replay at line granularity in program order, each
	// stream filtered through its own one-line buffer, transactions
	// admitted as fast as the pipeline window allows.
	autoPre := opt.Scheme == addrmap.CLI
	window := engine.NewWindow(outstanding)
	lw := int64(opt.LineWords)
	packets := opt.LineWords / rdram.WordsPerPacket
	lines := make([]int64, len(k.Streams))
	for i := range lines {
		lines[i] = -1
	}
	nr := k.ReadStreams()
	doLine := func(line int64, write bool) error {
		at := window.Admit(0)
		base := line * lw
		var complete int64
		for p := 0; p < packets; p++ {
			addr := base + int64(p*rdram.WordsPerPacket)
			loc := mapper.Map(addr)
			req := rdram.Request{
				Bank: loc.Bank, Row: loc.Row, Col: loc.Col,
				Write:         write,
				AutoPrecharge: autoPre && p == packets-1,
			}
			if write {
				for w := 0; w < rdram.WordsPerPacket; w++ {
					if v, ok := storeVals[addr+int64(w)]; ok {
						req.Data[w] = v
					} else {
						req.Data[w] = engine.Peek(dev, mapper, addr+int64(w))
					}
				}
			}
			res, err := engine.Issue(dev, at, req)
			if err != nil {
				return err
			}
			complete = res.DataEnd
		}
		window.Complete(complete)
		return nil
	}
	for i := 0; i < k.Iterations(); i++ {
		for s := range k.Streams {
			line := k.Streams[s].Addr(i) / lw
			if lines[s] == line {
				continue
			}
			lines[s] = line
			if err := doLine(line, s >= nr); err != nil {
				return engine.Result{}, err
			}
		}
	}

	st := dev.Stats()
	res := engine.Result{
		Cycles:           st.LastDataEnd,
		UsefulWords:      int64(k.Iterations()) * int64(len(k.Streams)),
		TransferredWords: st.PacketCount() * rdram.WordsPerPacket,
		Device:           st,
	}
	res.Finalize(dev.Config().Timing.CyclesPerWordPeak())
	return res, nil
}
