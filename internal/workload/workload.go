// Package workload generates non-stream (random and mixed) cacheline
// access patterns and services them with a conventional pipelined
// controller. The paper's §6 attributes Crisp's reported ~95% Direct
// Rambus efficiency to "more random access patterns on a system with many
// devices", in contrast with the paper's single-device streaming study —
// this package lets that comparison be measured instead of asserted.
package workload

import (
	"fmt"
	"math/rand"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
)

// Pattern selects the address-generation behaviour.
type Pattern int

const (
	// Sequential touches consecutive cachelines — one long DMA-like sweep.
	Sequential Pattern = iota
	// RandomUniform picks cachelines uniformly over the footprint.
	RandomUniform
	// HotPages skews 90% of the accesses onto 10% of the pages (TLB-warm
	// application data), the rest uniform.
	HotPages
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case RandomUniform:
		return "random"
	case HotPages:
		return "hot-pages"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config describes one workload run.
type Config struct {
	Pattern   Pattern
	Requests  int // cacheline transactions to issue
	LineWords int
	Scheme    addrmap.Scheme
	// ReadFraction is the probability a transaction is a read (the rest
	// are full-line writes). Crisp's multimedia mixes are read-heavy.
	ReadFraction float64
	// FootprintLines bounds the address range touched (0 = 1/8 of the
	// device).
	FootprintLines int64
	// Outstanding is the controller's request pipeline depth (0 = the
	// Direct RDRAM limit of four).
	Outstanding int
	Seed        int64
}

// Result reports the serviced workload's performance.
type Result struct {
	Cycles      int64
	Lines       int64
	PercentPeak float64 // all transferred words count: these are demanded cachelines
	HitRate     float64 // device page-hit rate
	Device      rdram.Stats
}

// Run services the generated transactions in arrival order, pipelined up
// to the outstanding limit, with the scheme's precharge policy — the same
// conventional controller behaviour as the natural-order model but without
// inter-access dependences (independent masters, DMA engines, or a deep
// miss queue, as in Crisp's experiments).
func Run(dev *rdram.Device, cfg Config) (Result, error) {
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("workload: Requests must be positive, got %d", cfg.Requests)
	}
	if cfg.LineWords <= 0 || cfg.LineWords%rdram.WordsPerPacket != 0 {
		return Result{}, fmt.Errorf("workload: bad LineWords %d", cfg.LineWords)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return Result{}, fmt.Errorf("workload: ReadFraction %v out of [0,1]", cfg.ReadFraction)
	}
	mapper, err := addrmap.New(cfg.Scheme, dev.Config().Geometry, cfg.LineWords)
	if err != nil {
		return Result{}, err
	}
	outstanding := cfg.Outstanding
	if outstanding <= 0 {
		outstanding = rdram.MaxOutstanding
	}
	footprint := cfg.FootprintLines
	if footprint <= 0 {
		footprint = mapper.CapacityWords() / int64(cfg.LineWords) / 8
	}
	maxLines := mapper.CapacityWords() / int64(cfg.LineWords)
	if footprint > maxLines {
		footprint = maxLines
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	linesPerPage := int64(dev.Config().Geometry.PageWords / cfg.LineWords)
	// The hot set spans eight pages — small enough that an open-page
	// policy keeps most of it in the sense amps.
	hotLines := 8 * linesPerPage
	if hotLines > footprint {
		hotLines = footprint
	}
	nextLine := func(i int) int64 {
		switch cfg.Pattern {
		case Sequential:
			return int64(i) % footprint
		case HotPages:
			if rng.Float64() < 0.9 {
				return rng.Int63n(hotLines)
			}
			return rng.Int63n(footprint)
		default:
			return rng.Int63n(footprint)
		}
	}

	packets := cfg.LineWords / rdram.WordsPerPacket
	autoPre := cfg.Scheme == addrmap.CLI
	window := engine.NewWindow(outstanding)
	for i := 0; i < cfg.Requests; i++ {
		line := nextLine(i)
		write := rng.Float64() >= cfg.ReadFraction
		at := window.Admit(0)
		base := line * int64(cfg.LineWords)
		var complete int64
		for p := 0; p < packets; p++ {
			loc := mapper.Map(base + int64(p*rdram.WordsPerPacket))
			res, err := engine.Issue(dev, at, rdram.Request{
				Bank: loc.Bank, Row: loc.Row, Col: loc.Col,
				Write:         write,
				AutoPrecharge: autoPre && p == packets-1,
			})
			if err != nil {
				return Result{}, err
			}
			complete = res.DataEnd
		}
		window.Complete(complete)
	}

	st := dev.Stats()
	res := Result{
		Cycles:  st.LastDataEnd,
		Lines:   int64(cfg.Requests),
		HitRate: st.HitRate(),
		Device:  st,
	}
	res.PercentPeak = engine.PercentOfPeak(st.PacketCount()*rdram.WordsPerPacket, res.Cycles, dev.Config().Timing.CyclesPerWordPeak())
	return res, nil
}
