package workload

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/telemetry"
)

// TraceOptions configures ReplayTrace.
type TraceOptions struct {
	Scheme    addrmap.Scheme
	LineWords int
	// Outstanding is the request pipeline depth (0 = the Direct RDRAM
	// limit of four).
	Outstanding int
	// Reorder enables SMC-style access reordering: within a sliding
	// window of pending line transactions, row hits issue before row
	// misses, bounded by a deferral limit so no transaction starves.
	// Off, transactions issue in trace order — the natural-order
	// baseline.
	Reorder bool
	// Window is the reorder window depth in transactions (0 = 32, the
	// default SBU depth). Ignored without Reorder.
	Window int
	// Telemetry, when non-nil, instruments the replay (stall-cause
	// attribution with StallNoRequest as the idle cause, like the
	// conventional controller). Pure observer.
	Telemetry *telemetry.Collector
}

// ReplayTrace services a word-level access trace and returns the
// engine-level result the sim layer wraps into an Outcome. Consecutive
// same-line accesses coalesce into one cacheline transaction exactly as
// Replay does (a one-line buffer), so with Reorder off the device-level
// schedule — and therefore every cycle count — is identical to Replay's.
// UsefulWords counts the demanded trace words; TransferredWords counts
// whole cachelines moved.
func ReplayTrace(dev *rdram.Device, opt TraceOptions, accs []TraceAccess) (engine.Result, error) {
	if len(accs) == 0 {
		return engine.Result{}, fmt.Errorf("workload: empty trace")
	}
	if opt.LineWords <= 0 || opt.LineWords%rdram.WordsPerPacket != 0 {
		return engine.Result{}, fmt.Errorf("workload: bad LineWords %d", opt.LineWords)
	}
	outstanding := opt.Outstanding
	if outstanding <= 0 {
		outstanding = rdram.MaxOutstanding
	}
	if outstanding > rdram.MaxOutstanding {
		return engine.Result{}, fmt.Errorf("workload: Outstanding %d exceeds device limit %d", outstanding, rdram.MaxOutstanding)
	}
	mapper, err := addrmap.New(opt.Scheme, dev.Config().Geometry, opt.LineWords)
	if err != nil {
		return engine.Result{}, err
	}
	engine.Attach(dev, opt.Telemetry, telemetry.StallNoRequest)

	// Coalesce the word stream into line transactions through a one-line
	// buffer: consecutive same-line accesses are absorbed; the first
	// access's op decides the transaction's direction.
	capacity := mapper.CapacityWords()
	var txns []txn
	lastLine := int64(-1)
	for i, a := range accs {
		if a.Addr < 0 || a.Addr >= capacity {
			return engine.Result{}, fmt.Errorf("workload: trace access %d address %d exceeds device capacity %d", i, a.Addr, capacity)
		}
		line := a.Addr / int64(opt.LineWords)
		if line == lastLine {
			continue
		}
		lastLine = line
		txns = append(txns, txn{line: line, write: a.Write})
	}

	autoPre := opt.Scheme == addrmap.CLI
	ti := &traceIssuer{
		dev:       dev,
		mapper:    mapper,
		window:    engine.NewWindow(outstanding),
		lineWords: opt.LineWords,
		packets:   opt.LineWords / rdram.WordsPerPacket,
		autoPre:   autoPre,
	}

	if !opt.Reorder {
		for _, t := range txns {
			if err := ti.issue(t); err != nil {
				return engine.Result{}, err
			}
		}
	} else {
		// Row-hit-first reordering over a sliding window, the SMC's bank
		// heuristic applied to an arbitrary trace. The scheduler keeps its
		// own open-row model (auto-precharge closes the row, so under CLI
		// it degenerates to trace order, which is correct — there are no
		// row hits to chase). Deterministic: a pure function of the
		// transaction list, no randomness, no map iteration.
		w := opt.Window
		if w <= 0 {
			w = 32
		}
		maxDefer := 4 * w
		banks := make([]int, len(txns))
		rows := make([]int, len(txns))
		for i, t := range txns {
			loc := mapper.Map(t.line * int64(opt.LineWords))
			banks[i], rows[i] = loc.Bank, loc.Row
		}
		open := make([]int, dev.Config().Geometry.Banks)
		for b := range open {
			open[b] = -1
		}
		issued := make([]bool, len(txns))
		defers := make([]int, len(txns))
		head := 0
		for remaining := len(txns); remaining > 0; remaining-- {
			for head < len(txns) && issued[head] {
				head++
			}
			end := min(head+w, len(txns))
			pick := head
			if defers[head] < maxDefer {
				for i := head; i < end; i++ {
					if !issued[i] && open[banks[i]] == rows[i] {
						pick = i
						break
					}
				}
			}
			for i := head; i < pick; i++ {
				if !issued[i] {
					defers[i]++
				}
			}
			issued[pick] = true
			if err := ti.issue(txns[pick]); err != nil {
				return engine.Result{}, err
			}
			if autoPre {
				open[banks[pick]] = -1
			} else {
				open[banks[pick]] = rows[pick]
			}
		}
	}

	st := dev.Stats()
	res := engine.Result{
		Cycles:           st.LastDataEnd,
		UsefulWords:      int64(len(accs)),
		TransferredWords: st.PacketCount() * rdram.WordsPerPacket,
		Device:           st,
	}
	res.Finalize(dev.Config().Timing.CyclesPerWordPeak())
	return res, nil
}

// txn is one coalesced cacheline transaction of a trace.
type txn struct {
	line  int64
	write bool
}

// traceIssuer carries the per-transaction replay state so the inner
// loop is a named method the allocation lint can police, instead of a
// closure.
type traceIssuer struct {
	dev       *rdram.Device
	mapper    *addrmap.Mapper
	window    *engine.Window
	lineWords int
	packets   int
	autoPre   bool
}

// issue services one line transaction packet by packet: admit into the
// outstanding-access window, issue each packet through the engine's
// retry loop, and record the completion time. This runs once per
// transaction for the whole trace — the replay inner loop.
//
// rdlint:hotpath
func (ti *traceIssuer) issue(t txn) error {
	at := ti.window.Admit(0)
	base := t.line * int64(ti.lineWords)
	var complete int64
	for p := 0; p < ti.packets; p++ {
		loc := ti.mapper.Map(base + int64(p*rdram.WordsPerPacket))
		res, err := engine.Issue(ti.dev, at, rdram.Request{
			Bank: loc.Bank, Row: loc.Row, Col: loc.Col,
			Write:         t.write,
			AutoPrecharge: ti.autoPre && p == ti.packets-1,
		})
		if err != nil {
			return err
		}
		complete = res.DataEnd
	}
	ti.window.Complete(complete)
	return nil
}
