package tracegen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"rdramstream/internal/workload"
)

// FormatV1 is the NDJSON trace wire format identifier: one JSON header
// line declaring the access count, then exactly that many access lines.
const FormatV1 = "rdtrace/v1"

// Header is the first NDJSON line of a trace file. POST /v1/trace uses
// its own header (service.TraceHeader) that adds the scenario; both
// decode through Decoder.DecodeHeader.
//
// rdlint:wire — trace file/stream wire format.
type Header struct {
	// Format must be FormatV1.
	Format string `json:"format"`
	// Name labels the trace (the generating program's name, usually).
	Name string `json:"name,omitempty"`
	// Accesses is the exact number of access lines that follow.
	Accesses int `json:"accesses"`
}

// Line is one access line of the NDJSON trace body.
//
// rdlint:wire — trace file/stream wire format.
type Line struct {
	// Op is "R" or "W".
	Op string `json:"op"`
	// Addr is the 64-bit-word address.
	Addr int64 `json:"addr"`
}

// Encode writes the NDJSON trace: header line, then one Line per
// access. The encoding is deterministic — fixed field order, no
// timestamps — so the same trace always encodes to the same bytes.
func Encode(w io.Writer, name string, accs []workload.TraceAccess) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(Header{Format: FormatV1, Name: name, Accesses: len(accs)})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, a := range accs {
		op := "R"
		if a.Write {
			op = "W"
		}
		ln, err := json.Marshal(Line{Op: op, Addr: a.Addr})
		if err != nil {
			return err
		}
		bw.Write(ln)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// maxWireLine bounds one NDJSON line; a well-formed header or access
// line is tens of bytes, so 1 MiB leaves room for scenario-carrying
// headers while refusing pathological input.
const maxWireLine = 1 << 20

// Decoder reads the NDJSON trace wire format with line-accurate
// errors: first DecodeHeader into the caller's header shape, then
// ReadAccesses for exactly the declared count. Unknown fields, trailing
// tokens on a line, and trailing lines after the declared count are all
// rejected — a trace that decodes is exactly the trace that was sent.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder wraps a trace body.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	return &Decoder{sc: sc}
}

// next returns the next non-empty line, its number, and whether one
// exists. Scanner errors surface with the line reached.
func (d *Decoder) next() ([]byte, int, bool, error) {
	for d.sc.Scan() {
		d.line++
		b := bytes.TrimSpace(d.sc.Bytes())
		if len(b) > 0 {
			return b, d.line, true, nil
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, d.line, false, fmt.Errorf("tracegen: trace line %d: %w", d.line+1, err)
	}
	return nil, d.line, false, nil
}

// decodeLine strict-decodes one JSON line into v: unknown fields and
// trailing tokens on the line both fail.
func decodeLine(b []byte, line int, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("tracegen: trace line %d: %w", line, err)
	}
	if dec.More() {
		return fmt.Errorf("tracegen: trace line %d: trailing data after JSON value", line)
	}
	return nil
}

// DecodeHeader strict-decodes the first line into v — a *Header for
// trace files, or any header shape sharing its fields (the service's
// scenario-carrying header).
func (d *Decoder) DecodeHeader(v any) error {
	b, line, ok, err := d.next()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("tracegen: empty trace body (want a %s header line)", FormatV1)
	}
	return decodeLine(b, line, v)
}

// ReadAccesses reads exactly want access lines and then requires EOF:
// fewer lines, malformed lines, unknown ops, negative addresses, and
// trailing garbage after the declared count are all errors naming the
// offending line.
func (d *Decoder) ReadAccesses(want int) ([]workload.TraceAccess, error) {
	if want <= 0 || want > MaxAccesses {
		return nil, fmt.Errorf("tracegen: header declares %d accesses, want (0, %d]", want, MaxAccesses)
	}
	out := make([]workload.TraceAccess, 0, want)
	for len(out) < want {
		b, line, ok, err := d.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("tracegen: trace truncated: header declared %d accesses, body ends after %d", want, len(out))
		}
		var l Line
		if err := decodeLine(b, line, &l); err != nil {
			return nil, err
		}
		var write bool
		switch l.Op {
		case "R":
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("tracegen: trace line %d: unknown op %q (want R or W)", line, l.Op)
		}
		if l.Addr < 0 {
			return nil, fmt.Errorf("tracegen: trace line %d: negative address %d", line, l.Addr)
		}
		out = append(out, workload.TraceAccess{Addr: l.Addr, Write: write})
	}
	if b, line, ok, err := d.next(); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("tracegen: trace line %d: trailing garbage after the %d declared accesses: %q", line, want, truncate(b, 40))
	}
	return out, nil
}

// Decode reads a complete FormatV1 trace (header + accesses) — the
// file-loading convenience behind the CLIs' @file argument.
func Decode(r io.Reader) (Header, []workload.TraceAccess, error) {
	d := NewDecoder(r)
	var h Header
	if err := d.DecodeHeader(&h); err != nil {
		return Header{}, nil, err
	}
	if h.Format != FormatV1 {
		return Header{}, nil, fmt.Errorf("tracegen: unknown trace format %q (want %q)", h.Format, FormatV1)
	}
	accs, err := d.ReadAccesses(h.Accesses)
	if err != nil {
		return Header{}, nil, err
	}
	return h, accs, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}
