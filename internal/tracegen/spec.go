package tracegen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"rdramstream/internal/rdram"
	"rdramstream/internal/workload"
)

// Spec is how a scenario names a trace workload: either a generator
// Program (expanded deterministically at run time) or an explicit
// access list (a posted or file-loaded trace). Exactly one of the two
// must be set on an executable spec. The canonical form carries neither
// — only the content digest of the materialized trace — so a program
// and the very trace it expands to are the same cache entry.
//
// rdlint:wire — rides inside scenario JSON, cache entries, and the key.
type Spec struct {
	// Program, when non-nil, generates the trace.
	Program *Program `json:"program,omitempty"`
	// Accesses, when non-empty, is the trace itself.
	Accesses []workload.TraceAccess `json:"accesses,omitempty"`
	// Digest is the SHA-256 content address of the materialized trace.
	// Ignored on input (always recomputed); set on canonical specs.
	Digest string `json:"digest,omitempty"`
	// Outstanding is the replay controller's request pipeline depth
	// (0 = the Direct RDRAM limit of four).
	Outstanding int `json:"outstanding,omitempty"`
}

// Validate checks that the spec is executable: exactly one trace
// source, well-formed, within bounds.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("tracegen: nil spec")
	}
	hasProg := s.Program != nil
	hasAccs := len(s.Accesses) > 0
	switch {
	case hasProg && hasAccs:
		return fmt.Errorf("tracegen: spec carries both a program and explicit accesses; exactly one must be set")
	case !hasProg && !hasAccs:
		return fmt.Errorf("tracegen: spec carries neither a program nor accesses")
	}
	if hasProg {
		if err := s.Program.Validate(); err != nil {
			return err
		}
	} else {
		if len(s.Accesses) > MaxAccesses {
			return fmt.Errorf("tracegen: %d accesses exceed the limit %d", len(s.Accesses), MaxAccesses)
		}
		for i, a := range s.Accesses {
			if a.Addr < 0 {
				return fmt.Errorf("tracegen: access %d has negative address %d", i, a.Addr)
			}
		}
	}
	if s.Outstanding < 0 || s.Outstanding > rdram.MaxOutstanding {
		return fmt.Errorf("tracegen: outstanding %d out of [0, %d]", s.Outstanding, rdram.MaxOutstanding)
	}
	return nil
}

// Materialize returns the spec's access trace: the explicit list, or
// the program's deterministic expansion.
func (s *Spec) Materialize() ([]workload.TraceAccess, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Program != nil {
		return s.Program.Generate()
	}
	return s.Accesses, nil
}

// Canonical reduces the spec to its content-addressed normal form: the
// trace source (program or access list) is materialized and replaced by
// its digest, and Outstanding is normalized to the device default. Two
// specs that replay identically — a program vs. the trace it generates,
// a spelled-out vs. defaulted pipeline depth — canonicalize equal,
// which is what makes trace scenarios dedup in the result cache and
// shard consistently across the fabric.
func (s *Spec) Canonical() (Spec, error) {
	accs, err := s.Materialize()
	if err != nil {
		return Spec{}, err
	}
	out := Spec{Digest: DigestOf(accs), Outstanding: s.Outstanding}
	if out.Outstanding == 0 {
		out.Outstanding = rdram.MaxOutstanding
	}
	return out, nil
}

// DigestOf is the trace content address: a hex SHA-256 over each
// access's op byte ('R'/'W') and big-endian 64-bit address, in order.
// It depends on nothing but the access sequence itself, so a generated
// trace, the same trace posted over the wire, and the same trace read
// back from a file all digest identically.
func DigestOf(accs []workload.TraceAccess) string {
	h := sha256.New()
	var buf [9]byte
	for _, a := range accs {
		buf[0] = 'R'
		if a.Write {
			buf[0] = 'W'
		}
		binary.BigEndian.PutUint64(buf[1:], uint64(a.Addr))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
