package tracegen

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rdramstream/internal/workload"
)

// writeTempTrace encodes accs as an NDJSON trace file under t.TempDir.
func writeTempTrace(t *testing.T, name string, accs []workload.TraceAccess) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := Encode(f, name, accs); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

func TestWireRoundTrip(t *testing.T) {
	accs := []workload.TraceAccess{
		{Addr: 0}, {Addr: 16, Write: true}, {Addr: 1 << 40},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, "rt", accs); err != nil {
		t.Fatal(err)
	}
	h, got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Format != FormatV1 || h.Name != "rt" || h.Accesses != 3 {
		t.Errorf("header = %+v", h)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Errorf("round trip = %+v, want %+v", got, accs)
	}
}

func TestWireErrors(t *testing.T) {
	hdr := `{"format":"rdtrace/v1","accesses":2}`
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty body", "", "empty trace body"},
		{"bad header json", "{", "line 1"},
		{"unknown header field", `{"format":"rdtrace/v1","accesses":1,"zap":1}` + "\n" + `{"op":"R","addr":0}`, "zap"},
		{"wrong format", `{"format":"rdtrace/v9","accesses":1}` + "\n" + `{"op":"R","addr":0}`, "unknown trace format"},
		{"zero accesses", `{"format":"rdtrace/v1","accesses":0}`, "declares 0"},
		{"too many accesses", `{"format":"rdtrace/v1","accesses":99999999}`, "declares 99999999"},
		{"truncated", hdr + "\n" + `{"op":"R","addr":0}`, "truncated"},
		{"bad access json", hdr + "\n" + `{"op":"R","addr":0}` + "\nnope", "line 3"},
		{"unknown op", hdr + "\n" + `{"op":"Q","addr":0}`, `unknown op "Q"`},
		{"negative addr", hdr + "\n" + `{"op":"R","addr":-4}`, "negative address"},
		{"trailing token on line", hdr + "\n" + `{"op":"R","addr":0} {"x":1}`, "trailing data"},
		{"trailing garbage after count", hdr + "\n" + `{"op":"R","addr":0}` + "\n" + `{"op":"R","addr":4}` + "\n" + `{"op":"R","addr":8}`, "trailing garbage"},
	}
	for _, c := range cases {
		_, _, err := Decode(strings.NewReader(c.body))
		if err == nil {
			t.Errorf("%s: decoded without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// Errors must carry the offending line number so a multi-megabyte POST
// is debuggable.
func TestWireErrorsNameTheLine(t *testing.T) {
	body := `{"format":"rdtrace/v1","accesses":3}
{"op":"R","addr":0}
{"op":"R","addr":4}
{"op":"X","addr":8}`
	_, _, err := Decode(strings.NewReader(body))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %v does not name line 4", err)
	}
}

func TestSpecFromArg(t *testing.T) {
	spec, name, err := SpecFromArg("strided:n=32", 9)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Program == nil || spec.Program.Seed != 9 || name != "strided:n=32" {
		t.Errorf("spec = %+v, name = %q", spec, name)
	}

	prog := mustProgram(t, "chase:n=16,footprint=4096", 2)
	accs, err := prog.Generate()
	if err != nil {
		t.Fatal(err)
	}
	f, err := writeTempTrace(t, prog.Name, accs)
	if err != nil {
		t.Fatal(err)
	}
	fileSpec, fileName, err := SpecFromArg("@"+f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fileName != prog.Name {
		t.Errorf("file spec name = %q, want %q", fileName, prog.Name)
	}
	if !reflect.DeepEqual(fileSpec.Accesses, accs) {
		t.Error("file spec accesses differ from the encoded trace")
	}
	if _, _, err := SpecFromArg("@/nonexistent/trace.ndjson", 0); err == nil {
		t.Error("expected error for a missing trace file")
	}
}
