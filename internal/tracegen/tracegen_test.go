package tracegen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rdramstream/internal/rdram"
	"rdramstream/internal/workload"
)

func mustProgram(t *testing.T, spec string, seed int64) *Program {
	t.Helper()
	p, err := ParseProgram(spec, seed)
	if err != nil {
		t.Fatalf("ParseProgram(%q): %v", spec, err)
	}
	return p
}

// The determinism contract: the same program generates the same trace,
// and its NDJSON encoding is byte-identical, run to run.
func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range []string{
		"strided:n=512,stride=16,write=0.3",
		"chase:n=512,footprint=65536",
		"hot-row:n=512,locality=0.8,hotrows=3",
		"llm-kvcache:n=4096,ctxrows=16,heads=4",
		"strided:n=128;chase:n=128;hot-row:n=128;llm-kvcache:n=1024",
	} {
		p := mustProgram(t, spec, 7)
		a, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two Generate calls differ", spec)
		}
		var buf1, buf2 bytes.Buffer
		if err := Encode(&buf1, p.Name, a); err != nil {
			t.Fatal(err)
		}
		if err := Encode(&buf2, p.Name, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Errorf("%s: NDJSON encodings differ", spec)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, err := mustProgram(t, "chase:n=256", 1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustProgram(t, "chase:n=256", 2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds generated the same chase trace")
	}
}

func TestGenerateShapes(t *testing.T) {
	// Each phase emits exactly its access budget, within the footprint.
	p := mustProgram(t, "strided:n=100,burst=8;llm-kvcache:n=1000,ctxrows=8", 3)
	accs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 1100 {
		t.Fatalf("generated %d accesses, want 1100", len(accs))
	}
	for i, a := range accs {
		if a.Addr < 0 || a.Addr >= 1<<20 {
			t.Fatalf("access %d addr %d outside default footprint", i, a.Addr)
		}
	}
	// llm-kvcache mixes appends (writes) into the read stream.
	var writes int
	for _, a := range accs[100:] {
		if a.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Error("llm-kvcache emitted no KV-append writes")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Program{
		{},                                   // no phases
		{Phases: []Phase{{Pattern: "warp"}}}, // unknown pattern
		{Phases: []Phase{{Pattern: PatternStrided, Accesses: -1}}},
		{Phases: []Phase{{Pattern: PatternStrided, Accesses: MaxAccesses + 1}}},
		{Phases: []Phase{{Pattern: PatternStrided, Start: -1}}},
		{Phases: []Phase{{Pattern: PatternStrided, WriteFraction: 1.5}}},
		{Phases: []Phase{{Pattern: PatternHotRow, BankLocality: -0.1}}},
		// Two max-sized phases overflow the program budget.
		{Phases: []Phase{
			{Pattern: PatternStrided, Accesses: MaxAccesses},
			{Pattern: PatternStrided, Accesses: MaxAccesses},
		}},
		// KV layout larger than the footprint.
		{Phases: []Phase{{Pattern: PatternLLMKV, Heads: 64, ContextRows: 1 << 10, RowWords: 128, FootprintWords: 1 << 20}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	var nilProg *Program
	if err := nilProg.Validate(); err == nil {
		t.Error("nil program validated")
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		"",
		";",
		"strided:",
		"strided:n",       // missing '='
		"strided:n=x",     // bad int
		"strided:nope=1",  // unknown key
		"warp:n=10",       // unknown pattern
		"strided:write=2", // out of range at validation
	}
	for _, spec := range bad {
		if _, err := ParseProgram(spec, 1); err == nil {
			t.Errorf("ParseProgram(%q): expected error", spec)
		}
	}
	// Errors carry the failing phase (0-based) and key.
	_, err := ParseProgram("strided:n=64;chase:bogus=1", 1)
	if err == nil || !strings.Contains(err.Error(), "phase 1") || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %v does not name phase 1 and key bogus", err)
	}
}

func TestParseProgramSeedKey(t *testing.T) {
	// A seed in the spec overrides the argument seed.
	p := mustProgram(t, "chase:n=64,seed=99", 1)
	if p.Seed != 99 {
		t.Errorf("seed = %d, want 99", p.Seed)
	}
	if p2 := mustProgram(t, "chase:n=64", 1); p2.Seed != 1 {
		t.Errorf("seed = %d, want the argument seed 1", p2.Seed)
	}
}

func TestSpecValidate(t *testing.T) {
	prog := mustProgram(t, "strided:n=64", 1)
	accs := []workload.TraceAccess{{Addr: 0}, {Addr: 4}}
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Program: prog}, true},
		{Spec{Accesses: accs}, true},
		{Spec{}, false},                              // neither
		{Spec{Program: prog, Accesses: accs}, false}, // both
		{Spec{Accesses: []workload.TraceAccess{{Addr: -1}}}, false},
		{Spec{Program: prog, Outstanding: -1}, false},
		{Spec{Program: prog, Outstanding: rdram.MaxOutstanding + 1}, false},
		{Spec{Program: prog, Outstanding: rdram.MaxOutstanding}, true},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

// A program spec and the spec holding its materialized accesses must
// canonicalize to the same digest — that is what makes the generator
// and a posted trace share cache entries.
func TestCanonicalDigestMatchesMaterialized(t *testing.T) {
	prog := mustProgram(t, "llm-kvcache:n=2048,ctxrows=8", 5)
	accs, err := prog.Generate()
	if err != nil {
		t.Fatal(err)
	}
	byProgram, err := (&Spec{Program: prog}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	byAccesses, err := (&Spec{Accesses: accs}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if byProgram.Digest == "" || byProgram.Digest != byAccesses.Digest {
		t.Errorf("digests differ: program %q vs accesses %q", byProgram.Digest, byAccesses.Digest)
	}
	if byProgram.Program != nil || byProgram.Accesses != nil {
		t.Error("canonical spec still carries the program or accesses")
	}
	if byProgram.Outstanding != rdram.MaxOutstanding {
		t.Errorf("canonical outstanding = %d, want the device limit %d", byProgram.Outstanding, rdram.MaxOutstanding)
	}
	// An explicit depth is preserved; op and address both feed the digest.
	if d, err := (&Spec{Program: prog, Outstanding: 2}).Canonical(); err != nil || d.Outstanding != 2 {
		t.Errorf("canonical outstanding = %d (err %v), want 2", d.Outstanding, err)
	}
	flipped := make([]workload.TraceAccess, len(accs))
	copy(flipped, accs)
	flipped[0].Write = !flipped[0].Write
	if d, err := (&Spec{Accesses: flipped}).Canonical(); err != nil || d.Digest == byAccesses.Digest {
		t.Errorf("flipping an op did not change the digest (err %v)", err)
	}
}
