package tracegen

import (
	"fmt"
	"os"
	"strings"
)

// SpecFromArg resolves a CLI -trace-gen argument into a Spec: "@path"
// loads an NDJSON trace file (FormatV1), anything else parses as the
// program DSL with the given default seed. The second return is the
// trace's display name (the file header's name, or the DSL text).
func SpecFromArg(arg string, seed int64) (*Spec, string, error) {
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", fmt.Errorf("tracegen: %w", err)
		}
		defer f.Close()
		h, accs, err := Decode(f)
		if err != nil {
			return nil, "", fmt.Errorf("tracegen: trace file %s: %w", path, err)
		}
		name := h.Name
		if name == "" {
			name = path
		}
		return &Spec{Accesses: accs}, name, nil
	}
	prog, err := ParseProgram(arg, seed)
	if err != nil {
		return nil, "", err
	}
	return &Spec{Program: prog}, prog.Name, nil
}
