package tracegen

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram parses the one-line program DSL the CLIs expose as
// -trace-gen:
//
//	program := phase (';' phase)*
//	phase   := pattern [':' key '=' value (',' key '=' value)*]
//
// Patterns are the Phase.Pattern names; keys are short spellings of the
// phase parameters (n, start, footprint, stride, burst, write,
// locality, hotrows, rowwords, heads, ctxrows, rowreads). seed applies
// to the whole program and may appear in any phase (last one wins);
// the seed argument is the default when the DSL names none. Example:
//
//	strided:n=8192,stride=16;llm-kvcache:n=16384,heads=4
func ParseProgram(spec string, seed int64) (*Program, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("tracegen: empty program spec")
	}
	p := &Program{Name: spec, Seed: seed}
	for i, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("tracegen: phase %d is empty", i)
		}
		pattern, kvs, hasParams := strings.Cut(seg, ":")
		ph := Phase{Pattern: strings.TrimSpace(pattern)}
		if hasParams && strings.TrimSpace(kvs) == "" {
			return nil, fmt.Errorf("tracegen: phase %d: empty parameter list after %q", i, pattern+":")
		}
		if kvs != "" {
			for _, kv := range strings.Split(kvs, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("tracegen: phase %d: want key=value, got %q", i, kv)
				}
				key, val = strings.TrimSpace(key), strings.TrimSpace(val)
				if err := setKey(p, &ph, key, val); err != nil {
					return nil, fmt.Errorf("tracegen: phase %d: %w", i, err)
				}
			}
		}
		p.Phases = append(p.Phases, ph)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// setKey applies one key=value of the DSL to its phase (or, for seed,
// the program).
func setKey(p *Program, ph *Phase, key, val string) error {
	parseInt := func() (int, error) {
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("key %s: bad integer %q", key, val)
		}
		return v, nil
	}
	parseI64 := func() (int64, error) {
		v, err := strconv.ParseInt(val, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("key %s: bad integer %q", key, val)
		}
		return v, nil
	}
	parseFloat := func() (float64, error) {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("key %s: bad number %q", key, val)
		}
		return v, nil
	}
	var err error
	switch key {
	case "seed":
		p.Seed, err = parseI64()
	case "n":
		ph.Accesses, err = parseInt()
	case "start":
		ph.Start, err = parseI64()
	case "footprint":
		ph.FootprintWords, err = parseI64()
	case "stride":
		ph.StrideWords, err = parseI64()
	case "burst":
		ph.BurstWords, err = parseInt()
	case "write":
		ph.WriteFraction, err = parseFloat()
	case "locality":
		ph.BankLocality, err = parseFloat()
	case "hotrows":
		ph.HotRows, err = parseInt()
	case "rowwords":
		ph.RowWords, err = parseInt()
	case "heads":
		ph.Heads, err = parseInt()
	case "ctxrows":
		ph.ContextRows, err = parseInt()
	case "rowreads":
		ph.RowsPerStep, err = parseInt()
	default:
		return fmt.Errorf("unknown key %q (have seed, n, start, footprint, stride, burst, write, locality, hotrows, rowwords, heads, ctxrows, rowreads)", key)
	}
	return err
}
