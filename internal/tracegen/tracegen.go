// Package tracegen is the deterministic workload-trace generator: a
// seed-driven Program of phases, each an instance of a composable access
// pattern (strided stream, pointer-chase-like irregular, hot-row, and an
// llm-kvcache row-granularity pattern à la RoMe), lowered to the
// word-level workload.TraceAccess stream the replay path services. The
// same Program always generates the same trace — generation draws only
// from one explicitly seeded rand.Rand, in a fixed order, and never
// consults the clock, the global generator, or map iteration order — so
// a Program is as content-addressable as the trace it expands to.
package tracegen

import (
	"fmt"
	"math/rand"

	"rdramstream/internal/workload"
)

// Pattern names accepted by Phase.Pattern.
const (
	PatternStrided = "strided"
	PatternChase   = "chase"
	PatternHotRow  = "hot-row"
	PatternLLMKV   = "llm-kvcache"
)

// MaxAccesses bounds the word accesses one program (or one posted trace)
// may carry: 4Mi accesses is 64 MiB of materialized trace, comfortably
// above any figure in the repo and low enough that a hostile header
// cannot balloon the server.
const MaxAccesses = 1 << 22

// Phase is one segment of a Program: a pattern plus its shape
// parameters. Zero values take pattern-appropriate defaults (see
// withDefaults); unused parameters for a pattern are ignored but must
// still validate, so a phase serialized with defaults filled means the
// same thing everywhere.
//
// rdlint:wire — phases ride inside scenario JSON and the cache key path.
type Phase struct {
	// Pattern selects the generator: strided, chase, hot-row, llm-kvcache.
	Pattern string `json:"pattern"`
	// Accesses is the number of word accesses this phase emits (default
	// 4096).
	Accesses int `json:"accesses,omitempty"`
	// Start is the base word address of the phase's footprint.
	Start int64 `json:"start,omitempty"`
	// FootprintWords bounds the address span touched, relative to Start
	// (default 1Mi words = 8 MiB).
	FootprintWords int64 `json:"footprint_words,omitempty"`
	// StrideWords is the distance between consecutive burst starts for
	// the strided pattern (default BurstWords — a dense stream).
	StrideWords int64 `json:"stride_words,omitempty"`
	// BurstWords is the payload size: consecutive words emitted per
	// generated address (default 4 for strided/hot-row, 1 for chase).
	BurstWords int `json:"burst_words,omitempty"`
	// WriteFraction is the probability a burst is a write (default 0 —
	// pure reads; llm-kvcache ignores it: its writes are the KV appends).
	WriteFraction float64 `json:"write_fraction,omitempty"`
	// BankLocality is the fraction of hot-row bursts landing in the hot
	// set (default 0.9).
	BankLocality float64 `json:"bank_locality,omitempty"`
	// HotRows sizes the hot-row pattern's hot set in rows (default 4).
	HotRows int `json:"hot_rows,omitempty"`
	// RowWords is the row granularity for hot-row and llm-kvcache
	// (default 128 — the paper device's page).
	RowWords int `json:"row_words,omitempty"`
	// Heads is the number of interleaved KV streams for llm-kvcache
	// (default 8).
	Heads int `json:"heads,omitempty"`
	// ContextRows is each head's KV context length in rows for
	// llm-kvcache (default FootprintWords/(Heads*RowWords), at least 1).
	ContextRows int `json:"context_rows,omitempty"`
	// RowsPerStep is how many context rows each head reads per decode
	// step for llm-kvcache (default 4).
	RowsPerStep int `json:"rows_per_step,omitempty"`
}

// Program is a seeded sequence of phases — the generator DSL's root.
//
// rdlint:wire — programs ride inside scenario JSON and the cache key path.
type Program struct {
	// Name labels the program in trace headers and figures.
	Name string `json:"name,omitempty"`
	// Seed drives every random draw of every phase.
	Seed int64 `json:"seed,omitempty"`
	// Phases run in order, sharing one seeded generator.
	Phases []Phase `json:"phases"`
}

// withDefaults fills a phase's zero parameters with its pattern's
// defaults. Called by Validate and Generate so a sparse phase and its
// fully spelled-out form generate identical traces.
func (ph Phase) withDefaults() Phase {
	if ph.Accesses == 0 {
		ph.Accesses = 4096
	}
	if ph.FootprintWords == 0 {
		ph.FootprintWords = 1 << 20
	}
	if ph.BurstWords == 0 {
		if ph.Pattern == PatternChase {
			ph.BurstWords = 1
		} else {
			ph.BurstWords = 4
		}
	}
	if ph.StrideWords == 0 {
		ph.StrideWords = int64(ph.BurstWords)
	}
	if ph.BankLocality == 0 {
		ph.BankLocality = 0.9
	}
	if ph.HotRows == 0 {
		ph.HotRows = 4
	}
	if ph.RowWords == 0 {
		ph.RowWords = 128
	}
	if ph.Heads == 0 {
		ph.Heads = 8
	}
	if ph.ContextRows == 0 {
		ctx := ph.FootprintWords / (int64(ph.Heads) * int64(ph.RowWords))
		if ctx < 1 {
			ctx = 1
		}
		if ctx > 1<<20 {
			ctx = 1 << 20
		}
		ph.ContextRows = int(ctx)
	}
	if ph.RowsPerStep == 0 {
		ph.RowsPerStep = 4
	}
	return ph
}

// Validate checks one phase after default filling.
func (ph Phase) validate() error {
	ph = ph.withDefaults()
	switch ph.Pattern {
	case PatternStrided, PatternChase, PatternHotRow, PatternLLMKV:
	default:
		return fmt.Errorf("tracegen: unknown pattern %q (have %s, %s, %s, %s)",
			ph.Pattern, PatternStrided, PatternChase, PatternHotRow, PatternLLMKV)
	}
	if ph.Accesses <= 0 || ph.Accesses > MaxAccesses {
		return fmt.Errorf("tracegen: phase accesses %d out of (0, %d]", ph.Accesses, MaxAccesses)
	}
	if ph.Start < 0 {
		return fmt.Errorf("tracegen: negative start %d", ph.Start)
	}
	if ph.FootprintWords <= 0 {
		return fmt.Errorf("tracegen: footprint_words must be positive, got %d", ph.FootprintWords)
	}
	if ph.StrideWords <= 0 {
		return fmt.Errorf("tracegen: stride_words must be positive, got %d", ph.StrideWords)
	}
	if ph.BurstWords <= 0 || int64(ph.BurstWords) > ph.FootprintWords {
		return fmt.Errorf("tracegen: burst_words %d out of (0, footprint %d]", ph.BurstWords, ph.FootprintWords)
	}
	if ph.WriteFraction < 0 || ph.WriteFraction > 1 {
		return fmt.Errorf("tracegen: write_fraction %v out of [0,1]", ph.WriteFraction)
	}
	if ph.BankLocality < 0 || ph.BankLocality > 1 {
		return fmt.Errorf("tracegen: bank_locality %v out of [0,1]", ph.BankLocality)
	}
	if ph.HotRows <= 0 {
		return fmt.Errorf("tracegen: hot_rows must be positive, got %d", ph.HotRows)
	}
	if ph.RowWords <= 0 || int64(ph.RowWords) > ph.FootprintWords {
		return fmt.Errorf("tracegen: row_words %d out of (0, footprint %d]", ph.RowWords, ph.FootprintWords)
	}
	if ph.Heads <= 0 {
		return fmt.Errorf("tracegen: heads must be positive, got %d", ph.Heads)
	}
	if ph.ContextRows <= 0 {
		return fmt.Errorf("tracegen: context_rows must be positive, got %d", ph.ContextRows)
	}
	if ph.RowsPerStep <= 0 {
		return fmt.Errorf("tracegen: rows_per_step must be positive, got %d", ph.RowsPerStep)
	}
	if ph.Pattern == PatternLLMKV {
		span := int64(ph.Heads) * int64(ph.ContextRows) * int64(ph.RowWords)
		if span > ph.FootprintWords {
			return fmt.Errorf("tracegen: llm-kvcache KV layout %d words (heads %d × context_rows %d × row_words %d) exceeds footprint %d",
				span, ph.Heads, ph.ContextRows, ph.RowWords, ph.FootprintWords)
		}
	}
	return nil
}

// Validate checks the whole program: at least one phase, every phase
// well-formed, and the total access count within MaxAccesses.
func (p *Program) Validate() error {
	if p == nil {
		return fmt.Errorf("tracegen: nil program")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("tracegen: program has no phases")
	}
	total := 0
	for i, ph := range p.Phases {
		if err := ph.validate(); err != nil {
			return fmt.Errorf("tracegen: phase %d: %w", i, err)
		}
		total += ph.withDefaults().Accesses
	}
	if total > MaxAccesses {
		return fmt.Errorf("tracegen: program totals %d accesses, limit %d", total, MaxAccesses)
	}
	return nil
}

// Generate expands the program into its word-level access trace. The
// draw discipline is fixed — one generator seeded from Seed, phases in
// order, a defined number of draws per emitted burst — so the output is
// a pure function of the program.
func (p *Program) Generate() ([]workload.TraceAccess, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for _, ph := range p.Phases {
		total += ph.withDefaults().Accesses
	}
	out := make([]workload.TraceAccess, 0, total)
	rng := rand.New(rand.NewSource(p.Seed + 1))
	for _, ph := range p.Phases {
		out = genPhase(rng, ph.withDefaults(), out)
	}
	return out, nil
}

func genPhase(rng *rand.Rand, ph Phase, out []workload.TraceAccess) []workload.TraceAccess {
	switch ph.Pattern {
	case PatternStrided:
		return genStrided(rng, ph, out)
	case PatternChase:
		return genChase(rng, ph, out)
	case PatternHotRow:
		return genHotRow(rng, ph, out)
	default: // PatternLLMKV; Validate rejected everything else
		return genLLMKV(rng, ph, out)
	}
}

// emitBurst appends up to burst consecutive words at pos (wrapping
// within the footprint), stopping at the phase's remaining budget, and
// returns the extended slice.
func emitBurst(ph Phase, out []workload.TraceAccess, pos int64, burst int, write bool, remain int) []workload.TraceAccess {
	if burst > remain {
		burst = remain
	}
	for w := int64(0); w < int64(burst); w++ {
		out = append(out, workload.TraceAccess{
			Addr:  ph.Start + (pos+w)%ph.FootprintWords,
			Write: write,
		})
	}
	return out
}

// genStrided is the classic stream: burst starts advance by StrideWords,
// wrapping within the footprint. One write draw per burst.
func genStrided(rng *rand.Rand, ph Phase, out []workload.TraceAccess) []workload.TraceAccess {
	pos := int64(0)
	for emitted := 0; emitted < ph.Accesses; {
		write := rng.Float64() < ph.WriteFraction
		out = emitBurst(ph, out, pos, ph.BurstWords, write, ph.Accesses-emitted)
		emitted += min(ph.BurstWords, ph.Accesses-emitted)
		pos = (pos + ph.StrideWords) % ph.FootprintWords
	}
	return out
}

// genChase is the pointer-chase-like irregular pattern: each burst
// lands at a seeded random jump from nowhere predictable — the
// dependent-load stream of a linked traversal, as seen by the memory
// system. Two draws per burst: the jump, then the write decision.
func genChase(rng *rand.Rand, ph Phase, out []workload.TraceAccess) []workload.TraceAccess {
	for emitted := 0; emitted < ph.Accesses; {
		pos := rng.Int63n(ph.FootprintWords)
		write := rng.Float64() < ph.WriteFraction
		out = emitBurst(ph, out, pos, ph.BurstWords, write, ph.Accesses-emitted)
		emitted += min(ph.BurstWords, ph.Accesses-emitted)
	}
	return out
}

// genHotRow skews BankLocality of the bursts onto a hot set of HotRows
// rows at the front of the footprint, the rest uniform. Three draws per
// burst: locality, position, write.
func genHotRow(rng *rand.Rand, ph Phase, out []workload.TraceAccess) []workload.TraceAccess {
	hotSpan := int64(ph.HotRows) * int64(ph.RowWords)
	if hotSpan > ph.FootprintWords {
		hotSpan = ph.FootprintWords
	}
	for emitted := 0; emitted < ph.Accesses; {
		var pos int64
		if rng.Float64() < ph.BankLocality {
			pos = rng.Int63n(hotSpan)
		} else {
			pos = rng.Int63n(ph.FootprintWords)
		}
		write := rng.Float64() < ph.WriteFraction
		out = emitBurst(ph, out, pos, ph.BurstWords, write, ph.Accesses-emitted)
		emitted += min(ph.BurstWords, ph.Accesses-emitted)
	}
	return out
}

// genLLMKV models autoregressive LLM decode over a paged KV cache (the
// RoMe shape): Heads independent KV regions of ContextRows rows, each
// row RowWords words. The context starts full (the prompt prefilled
// it): every decode step, every head first overwrites the ring's oldest
// row with its new KV entry (a row-granularity write), then reads
// RowsPerStep rows sampled from the whole context. The reads are emitted
// interleaved across heads at BurstWords granularity — the order the
// attention computation issues them — so the natural-order stream
// ping-pongs between rows while a reordering front end can regroup each
// row's chunks. Rows wrap as a ring once the context fills. Draw order
// is fixed: per step, RowsPerStep draws per head, heads in order.
func genLLMKV(rng *rand.Rand, ph Phase, out []workload.TraceAccess) []workload.TraceAccess {
	rowW := int64(ph.RowWords)
	ctx := int64(ph.ContextRows)
	burst := int64(ph.BurstWords)
	chunks := (rowW + burst - 1) / burst
	emitted := 0
	emit := func(base, n int64, write bool) {
		for w := int64(0); w < n && emitted < ph.Accesses; w++ {
			out = append(out, workload.TraceAccess{Addr: base + w, Write: write})
			emitted++
		}
	}
	headBase := func(h int) int64 { return ph.Start + int64(h)*ctx*rowW }
	rows := make([][]int64, ph.Heads)
	for h := range rows {
		rows[h] = make([]int64, ph.RowsPerStep)
	}
	for step := int64(0); emitted < ph.Accesses; step++ {
		appended := step % ctx
		for h := 0; h < ph.Heads && emitted < ph.Accesses; h++ {
			emit(headBase(h)+appended*rowW, rowW, true)
		}
		for h := range rows {
			for r := range rows[h] {
				rows[h][r] = rng.Int63n(ctx)
			}
		}
		for c := int64(0); c < int64(ph.RowsPerStep)*chunks && emitted < ph.Accesses; c++ {
			row, chunk := c/chunks, c%chunks
			off := chunk * burst
			n := min(burst, rowW-off)
			for h := 0; h < ph.Heads && emitted < ph.Accesses; h++ {
				emit(headBase(h)+rows[h][row]*rowW+off, n, false)
			}
		}
	}
	return out
}
