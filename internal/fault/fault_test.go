package fault

import (
	"errors"
	"testing"

	"rdramstream/internal/rdram"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero", Config{}, nil},
		{"full", Config{Seed: 1, RejectProb: 0.1, MaxJitter: 8, StormEvery: 4, StormBurst: 2, StormGap: 64}, nil},
		{"prob-high", Config{RejectProb: 1.5}, ErrRejectProb},
		{"prob-neg", Config{RejectProb: -0.1}, ErrRejectProb},
		{"neg-jitter", Config{MaxJitter: -1}, ErrNegative},
		{"neg-base", Config{RefreshBase: -5}, ErrNegative},
		{"storm-shape", Config{StormBurst: 3}, ErrStormShape},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestNewInactive(t *testing.T) {
	inj, err := New(Config{Seed: 7}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatal("inactive config produced an injector")
	}
	if Scaled(99, 0).Active() {
		t.Error("Scaled(seed, 0) must be inactive")
	}
	if !Scaled(99, 1).Active() {
		t.Error("Scaled(seed, 1) must be active")
	}
	if err := Scaled(99, 25).Validate(); err != nil {
		t.Errorf("Scaled(seed, 25) invalid: %v", err)
	}
}

// TestDeterminism: two injectors with equal configs produce identical fault
// sequences for identical call sequences.
func TestDeterminism(t *testing.T) {
	cfg := Scaled(42, 3)
	a, err := New(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		fa := a.OnAccess(int64(i*4), i%16, i%3 == 0)
		fb := b.OnAccess(int64(i*4), i%16, i%3 == 0)
		if fa != fb {
			t.Fatalf("access %d: %+v != %+v", i, fa, fb)
		}
		if ga, gb := a.RefreshGap(2048), b.RefreshGap(2048); ga != gb {
			t.Fatalf("refresh %d: gap %d != %d", i, ga, gb)
		}
	}
}

// TestFaultClasses checks each class actually fires at a plausible rate and
// stays within its bounds.
func TestFaultClasses(t *testing.T) {
	cfg := Config{Seed: 5, RejectProb: 0.25, MaxJitter: 10, StormEvery: 4, StormBurst: 3, StormGap: 32}
	inj, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var rejects, jittered int
	for i := 0; i < 10000; i++ {
		f := inj.OnAccess(int64(i), i%8, false)
		if f.Reject {
			rejects++
			if f.RCDExtra != 0 || f.CACExtra != 0 || f.RPExtra != 0 {
				t.Fatal("rejected access also carries jitter")
			}
			continue
		}
		if f.RCDExtra < 0 || f.RCDExtra > cfg.MaxJitter ||
			f.CACExtra < 0 || f.CACExtra > cfg.MaxJitter ||
			f.RPExtra < 0 || f.RPExtra > cfg.MaxJitter {
			t.Fatalf("jitter out of bounds: %+v", f)
		}
		if f.RCDExtra > 0 || f.CACExtra > 0 || f.RPExtra > 0 {
			jittered++
		}
	}
	if rejects < 2000 || rejects > 3000 {
		t.Errorf("rejects = %d over 10000 draws at p=0.25", rejects)
	}
	if jittered == 0 {
		t.Error("no jitter ever drawn with MaxJitter=10")
	}

	// Storm state machine: 4 normal gaps, then 3 stormed, repeating.
	var gaps []int64
	for i := 0; i < 14; i++ {
		gaps = append(gaps, inj.RefreshGap(1000))
	}
	want := []int64{1000, 1000, 1000, 1000, 32, 32, 32, 1000, 1000, 1000, 1000, 32, 32, 32}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gap[%d] = %d, want %d (gaps=%v)", i, gaps[i], want[i], gaps)
		}
	}
}

// TestZeroSeverityInvisible: a device with a nil injector and one built from
// Scaled(seed, 0) behave identically — New returns nil for severity 0, so
// this is a compile-level guarantee, but assert it end to end on a device.
func TestZeroSeverityInvisible(t *testing.T) {
	run := func(attach bool) rdram.Stats {
		cfg := rdram.DefaultConfig()
		dev := rdram.NewDevice(cfg)
		if attach {
			inj, err := New(Scaled(1, 0), cfg.Geometry.Banks)
			if err != nil {
				t.Fatal(err)
			}
			dev.Faults = inj // nil: severity 0 is inactive
		}
		at := int64(0)
		for i := 0; i < 200; i++ {
			res := dev.Do(at, rdram.Request{Bank: i % 8, Row: i % 3, Col: i % 64, Write: i%2 == 1})
			at = res.DataEnd
		}
		return dev.Stats()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("severity-0 run differs from clean run:\n%v\n%v", a, b)
	}
}
