// Package fault implements deterministic, seed-driven fault injection for
// the RDRAM device model. It is the single implementation of the
// rdram.FaultInjector contract, and the knob behind experiments.FaultSweep:
// "how gracefully does each controller degrade when the device misbehaves?"
//
// Three fault classes are modelled, each individually zeroable:
//
//   - refresh storms: the gap between scheduled refreshes periodically
//     collapses to StormGap for StormBurst refreshes, mimicking a controller
//     catching up on deferred refresh debt;
//   - per-bank latency jitter: bounded additive cycles on t_RCD, t_CAC and
//     t_RP, with a per-bank amplitude profile so some banks are consistently
//     "slower" than others (process variation, per-bank thermal throttling);
//   - transient rejections: an access is refused with probability RejectProb
//     and must be re-presented by the controller after backoff.
//
// Determinism: an Injector is driven by a single rand.Rand seeded from
// Config.Seed and is consulted by the device in simulation order from one
// goroutine. The same Config therefore yields the same fault sequence every
// run. Sweeps that execute scenarios in parallel give each scenario its own
// Injector, so worker count never changes any scenario's faults. A Config
// whose fault terms are all zero is invisible: runs are bit-identical to
// runs with no injector attached.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"rdramstream/internal/rdram"
)

// Config describes one fault-injection regime. The zero value is valid and
// injects nothing.
type Config struct {
	// Seed drives every random draw. Two runs with equal Configs produce
	// identical fault sequences.
	Seed int64 `json:"Seed"`

	// RejectProb is the probability in [0,1] that any presented access is
	// transiently rejected and must be retried by the controller.
	RejectProb float64 `json:"RejectProb"`

	// MaxJitter is the upper bound, in bus cycles, of the additive latency
	// drawn per access on each of t_RCD, t_CAC and t_RP. The draw is
	// uniform in [0, amp] where amp is MaxJitter scaled by the bank's
	// amplitude profile, so MaxJitter = 0 disables jitter entirely.
	MaxJitter int64 `json:"MaxJitter"`

	// StormEvery is the refresh-storm period: after every StormEvery
	// normally-spaced refreshes, a burst begins. Zero disables storms.
	StormEvery int64 `json:"StormEvery"`

	// StormBurst is the number of refreshes in a storm burst (default 4
	// when storms are enabled).
	StormBurst int64 `json:"StormBurst"`

	// StormGap is the inter-refresh gap, in cycles, during a burst
	// (default: tRC-bound minimum spacing is the device's problem; we use
	// 64 cycles, a near-back-to-back cadence).
	StormGap int64 `json:"StormGap"`

	// RefreshBase, when non-zero, is the nominal refresh interval the
	// device should run at if its own RefreshInterval is zero (refresh
	// disabled). Storms are meaningless on a device that never refreshes,
	// so sweeps use this to arm refresh before injecting storms.
	RefreshBase int64 `json:"RefreshBase"`
}

// Typed validation errors, comparable with errors.Is.
var (
	ErrRejectProb = errors.New("fault: RejectProb outside [0,1]")
	ErrNegative   = errors.New("fault: negative field")
	ErrStormShape = errors.New("fault: storm burst/gap set without StormEvery")
)

// Validate reports whether the config is usable. The zero Config is valid.
func (c Config) Validate() error {
	if c.RejectProb < 0 || c.RejectProb > 1 {
		return fmt.Errorf("%w: %v", ErrRejectProb, c.RejectProb)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"MaxJitter", c.MaxJitter},
		{"StormEvery", c.StormEvery},
		{"StormBurst", c.StormBurst},
		{"StormGap", c.StormGap},
		{"RefreshBase", c.RefreshBase},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s = %d", ErrNegative, f.name, f.v)
		}
	}
	if c.StormEvery == 0 && (c.StormBurst > 0 || c.StormGap > 0) {
		return fmt.Errorf("%w (burst=%d gap=%d)", ErrStormShape, c.StormBurst, c.StormGap)
	}
	return nil
}

// Active reports whether the config injects any fault at all. Inactive
// configs should not be attached: a nil injector is cheaper and provably
// identical.
func (c Config) Active() bool {
	return c.RejectProb > 0 || c.MaxJitter > 0 || c.StormEvery > 0
}

// Scaled builds the canonical severity ladder used by experiments.FaultSweep:
// severity 0 is inactive (bit-identical to no faults), and each unit of
// severity adds a little of every fault class. The mapping is fixed so
// degradation curves are comparable across controllers and papers over time.
func Scaled(seed int64, severity int) Config {
	if severity <= 0 {
		return Config{Seed: seed}
	}
	s := int64(severity)
	return Config{
		Seed:        seed,
		RejectProb:  min(0.02*float64(severity), 0.5),
		MaxJitter:   4 * s,
		StormEvery:  8,
		StormBurst:  2 + s,
		StormGap:    64,
		RefreshBase: 2048,
	}
}

// Injector implements rdram.FaultInjector for one simulation. Not safe for
// concurrent use; give each parallel scenario its own instance.
type Injector struct {
	cfg Config
	rng *rand.Rand

	bankAmp []float64 // per-bank jitter amplitude scale in [0,1]

	// storm state machine
	sinceStorm int64 // normally-spaced refreshes since last burst end
	burstLeft  int64 // refreshes remaining in the current burst
}

var _ rdram.FaultInjector = (*Injector)(nil)

// New builds an injector for cfg over a device with banks banks. It returns
// an error if cfg fails Validate, and nil (no injector needed) if cfg is
// inactive.
func New(cfg Config, banks int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Active() {
		return nil, nil
	}
	if banks <= 0 {
		return nil, fmt.Errorf("%w: banks = %d", ErrNegative, banks)
	}
	if cfg.StormEvery > 0 {
		if cfg.StormBurst == 0 {
			cfg.StormBurst = 4
		}
		if cfg.StormGap == 0 {
			cfg.StormGap = 64
		}
	}
	inj := &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	// The per-bank amplitude profile is drawn up front so it depends only
	// on (Seed, banks), not on the access sequence.
	inj.bankAmp = make([]float64, banks)
	for b := range inj.bankAmp {
		inj.bankAmp[b] = inj.rng.Float64()
	}
	return inj, nil
}

// OnAccess draws this access's fault. Exactly four rng draws happen per call
// (one reject draw, three jitter draws) regardless of config, so the random
// stream — and hence every later fault — does not depend on which fault
// classes are enabled. A nil receiver injects nothing, so a typed-nil
// *Injector stored in the device's interface field is harmless.
func (in *Injector) OnAccess(at int64, bank int, write bool) rdram.AccessFault {
	if in == nil {
		return rdram.AccessFault{}
	}
	reject := in.rng.Float64()
	j1, j2, j3 := in.rng.Float64(), in.rng.Float64(), in.rng.Float64()
	var f rdram.AccessFault
	if in.cfg.RejectProb > 0 && reject < in.cfg.RejectProb {
		f.Reject = true
		return f
	}
	if in.cfg.MaxJitter > 0 {
		amp := float64(in.cfg.MaxJitter) * in.bankAmp[bank%len(in.bankAmp)]
		f.RCDExtra = int64(j1 * (amp + 1))
		f.CACExtra = int64(j2 * (amp + 1))
		f.RPExtra = int64(j3 * (amp + 1))
	}
	return f
}

// RefreshGap advances the storm state machine and returns the gap to the
// next refresh. Outside a burst (or on a nil receiver) it returns base
// unchanged.
func (in *Injector) RefreshGap(base int64) int64 {
	if in == nil || in.cfg.StormEvery == 0 {
		return base
	}
	if in.burstLeft > 0 {
		in.burstLeft--
		return in.cfg.StormGap
	}
	in.sinceStorm++
	if in.sinceStorm >= in.cfg.StormEvery {
		in.sinceStorm = 0
		in.burstLeft = in.cfg.StormBurst
	}
	return base
}
