// Package telemetry is the simulator's cycle-level observability layer:
// allocation-conscious counters, fixed-window time series, fixed-bucket
// histograms, an event capture buffer, and exporters (JSONL, CSV, Chrome
// trace-event JSON). The probes are nil-safe — every method no-ops on a
// nil receiver — so the simulation layers instrument unconditionally and
// a run without a Collector pays only a nil check per probe call.
//
// Structure: a Collector owns one DeviceProbe (per-bank operation
// counters, per-window ROW/COL/DATA bus occupancy, and the stall-cause
// attribution of idle DATA-bus cycles), one ControllerProbe (scheduling
// decisions, miss-latency histogram, CPU stalls), and one FIFOProbe per
// SMC stream buffer (depth gauge, full/empty stall accounting).
package telemetry

// Options configures a Collector.
type Options struct {
	// Window is the time-series bucket width in cycles (default 256).
	Window int64
	// CaptureEvents enables the event buffer feeding the JSONL and Chrome
	// trace exports. Off, only counters/series/histograms are kept.
	CaptureEvents bool
	// EventLimit caps the capture buffer (default DefaultEventLimit).
	EventLimit int
}

// Collector is the root of one simulation run's telemetry. Create it with
// New, hand it to the simulation via the Scenario/Config Telemetry fields,
// and read it back after the run. A Collector (and the simulators driving
// it) is single-goroutine, like the device itself.
type Collector struct {
	// Window is the series bucket width in cycles.
	Window int64
	// Device records device-level activity and stall attribution.
	Device *DeviceProbe
	// Controller records controller-level activity.
	Controller *ControllerProbe
	// FIFOs holds one probe per SMC stream FIFO, in stream order
	// (reads then writes), populated by the SMC when it runs.
	FIFOs []*FIFOProbe
	// Events is the shared capture buffer, nil unless CaptureEvents.
	Events *EventBuffer
	// Cycles is the run length recorded by Finalize.
	Cycles int64
}

// New builds a Collector.
func New(o Options) *Collector {
	if o.Window <= 0 {
		o.Window = 256
	}
	c := &Collector{Window: o.Window}
	if o.CaptureEvents {
		limit := o.EventLimit
		if limit <= 0 {
			limit = DefaultEventLimit
		}
		c.Events = &EventBuffer{Limit: limit}
	}
	c.Device = &DeviceProbe{
		window:    o.Window,
		rowBus:    NewSeries(o.Window),
		colBus:    NewSeries(o.Window),
		dataBus:   NewSeries(o.Window),
		idleCause: StallNoRequest,
		events:    c.Events,
	}
	c.Controller = &ControllerProbe{
		MissLatency: MustHistogram(DefaultLatencyBounds()...),
		Decisions:   map[string]int64{},
	}
	return c
}

// FIFO returns (creating on first use) the probe for FIFO index i with the
// given display name.
func (c *Collector) FIFO(i int, name string) *FIFOProbe {
	if c == nil {
		return nil
	}
	for len(c.FIFOs) <= i {
		c.FIFOs = append(c.FIFOs, nil)
	}
	if c.FIFOs[i] == nil {
		c.FIFOs[i] = &FIFOProbe{
			Name:   name,
			Depth:  NewMaxSeries(c.Window),
			events: c.Events,
		}
	}
	return c.FIFOs[i]
}

// Finalize records the run's total cycle count; exporters and the stall
// invariant need it.
func (c *Collector) Finalize(cycles int64) {
	if c == nil {
		return
	}
	c.Cycles = cycles
}

// BankCounters are the per-bank operation counts, mirroring rdram.Stats.
type BankCounters struct {
	Activates     int64 `json:"activates"`
	Precharges    int64 `json:"precharges"`
	Reads         int64 `json:"reads"`
	Writes        int64 `json:"writes"`
	PageHits      int64 `json:"pageHits"`
	PageMisses    int64 `json:"pageMisses"`
	PageConflicts int64 `json:"pageConflicts"`
	Retires       int64 `json:"retires"`
}

func (b *BankCounters) add(o BankCounters) {
	b.Activates += o.Activates
	b.Precharges += o.Precharges
	b.Reads += o.Reads
	b.Writes += o.Writes
	b.PageHits += o.PageHits
	b.PageMisses += o.PageMisses
	b.PageConflicts += o.PageConflicts
	b.Retires += o.Retires
}

// DeviceProbe records device-level telemetry. The rdram.Device calls its
// On* hooks from the same sites that update rdram.Stats, so the totals
// reconcile exactly with the device's own counters (tested in sim).
type DeviceProbe struct {
	window int64
	banks  []BankCounters

	rowBus, colBus, dataBus *Series

	dataBusBusy int64
	stalls      [NumStallCauses]int64
	idleCause   StallCause

	events *EventBuffer
}

func (p *DeviceProbe) bank(b int) *BankCounters {
	for len(p.banks) <= b {
		p.banks = append(p.banks, BankCounters{})
	}
	return &p.banks[b]
}

// trackName returns the capture track for a bank. Banks are few; a tiny
// static table avoids per-event formatting allocations on the common path.
var bankTracks = [...]string{
	"bank 0", "bank 1", "bank 2", "bank 3", "bank 4", "bank 5", "bank 6", "bank 7",
	"bank 8", "bank 9", "bank 10", "bank 11", "bank 12", "bank 13", "bank 14", "bank 15",
}

func bankTrack(b int) string {
	if b >= 0 && b < len(bankTracks) {
		return bankTracks[b]
	}
	return "bank 16+"
}

// OnActivate records a ROW ACT packet on bank b occupying [start, end).
func (p *DeviceProbe) OnActivate(b int, start, end int64) {
	if p == nil {
		return
	}
	p.bank(b).Activates++
	p.rowBus.AddSpan(start, end, 1)
	p.events.Append(Event{Track: bankTrack(b), Name: "ACT", Start: start, End: end})
}

// OnPrecharge records a ROW PRER packet on bank b.
func (p *DeviceProbe) OnPrecharge(b int, start, end int64) {
	if p == nil {
		return
	}
	p.bank(b).Precharges++
	p.rowBus.AddSpan(start, end, 1)
	p.events.Append(Event{Track: bankTrack(b), Name: "PRER", Start: start, End: end})
}

// OnColumn records a COL RD/WR packet on bank b.
func (p *DeviceProbe) OnColumn(b int, write bool, start, end int64) {
	if p == nil {
		return
	}
	p.colBus.AddSpan(start, end, 1)
	name := "COL RD"
	if write {
		name = "COL WR"
	}
	p.events.Append(Event{Track: bankTrack(b), Name: name, Start: start, End: end})
}

// OnRetire records a COL RET packet preceding a read on bank b's device.
func (p *DeviceProbe) OnRetire(b int, start, end int64) {
	if p == nil {
		return
	}
	p.bank(b).Retires++
	p.colBus.AddSpan(start, end, 1)
	p.events.Append(Event{Track: bankTrack(b), Name: "RET", Start: start, End: end})
}

// OnData records a DATA packet transfer for bank b.
func (p *DeviceProbe) OnData(b int, write bool, start, end int64) {
	if p == nil {
		return
	}
	bk := p.bank(b)
	if write {
		bk.Writes++
	} else {
		bk.Reads++
	}
	p.dataBusBusy += end - start
	p.dataBus.AddSpan(start, end, 1)
	name := "DATA rd"
	if write {
		name = "DATA wr"
	}
	p.events.Append(Event{Track: bankTrack(b), Name: name, Start: start, End: end})
}

// OnAccess classifies one column access's page outcome for bank b.
func (p *DeviceProbe) OnAccess(b int, hit, conflict bool) {
	if p == nil {
		return
	}
	bk := p.bank(b)
	switch {
	case hit:
		bk.PageHits++
	case conflict:
		bk.PageConflicts++
		bk.PageMisses++
	default:
		bk.PageMisses++
	}
}

// SetIdleCause declares why the DATA bus is currently idle from the
// controller's point of view; subsequent pre-arrival idle cycles are
// charged to this cause until it is changed. The zero state is
// StallNoRequest.
func (p *DeviceProbe) SetIdleCause(c StallCause) {
	if p == nil {
		return
	}
	p.idleCause = c
}

// IdleCause returns the currently declared controller-side idle cause.
func (p *DeviceProbe) IdleCause() StallCause {
	if p == nil {
		return StallNoRequest
	}
	return p.idleCause
}

// ChargeStall attributes n idle DATA-bus cycles to a cause.
func (p *DeviceProbe) ChargeStall(c StallCause, n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.stalls[c] += n
}

// Stalls returns the per-cause idle cycle totals.
func (p *DeviceProbe) Stalls() [NumStallCauses]int64 {
	if p == nil {
		return [NumStallCauses]int64{}
	}
	return p.stalls
}

// IdleTotal sums idle cycles across causes.
func (p *DeviceProbe) IdleTotal() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for _, v := range p.stalls {
		t += v
	}
	return t
}

// DataBusBusy returns the cycles the DATA bus carried packets.
func (p *DeviceProbe) DataBusBusy() int64 {
	if p == nil {
		return 0
	}
	return p.dataBusBusy
}

// Totals sums the per-bank counters.
func (p *DeviceProbe) Totals() BankCounters {
	if p == nil {
		return BankCounters{}
	}
	var t BankCounters
	for _, b := range p.banks {
		t.add(b)
	}
	return t
}

// PerBank returns the per-bank counters (indexed by bank id).
func (p *DeviceProbe) PerBank() []BankCounters {
	if p == nil {
		return nil
	}
	return p.banks
}

// BusSeries returns the ROW, COL, and DATA bus occupancy series
// (busy cycles per window).
func (p *DeviceProbe) BusSeries() (row, col, data *Series) {
	if p == nil {
		return nil, nil, nil
	}
	return p.rowBus, p.colBus, p.dataBus
}

// FIFOProbe records one SMC stream FIFO's behaviour.
type FIFOProbe struct {
	// Name identifies the FIFO, e.g. "read x" or "write y".
	Name string
	// Depth tracks occupancy (elements) as a per-window maximum.
	Depth *Series
	// Serviced counts packets the MSU moved for this FIFO.
	Serviced int64
	// FullStalls / FullStallCycles count episodes (and their length) where
	// the MSU wanted to prefetch but the FIFO had no room.
	FullStalls      int64
	FullStallCycles int64
	// EmptyStalls / EmptyStallCycles count episodes where the MSU wanted
	// to drain but the CPU had not pushed a complete packet yet.
	EmptyStalls      int64
	EmptyStallCycles int64

	events *EventBuffer
}

// OnDepth records the FIFO's occupancy after a push/pop/drain at cycle at.
func (p *FIFOProbe) OnDepth(at int64, depth int) {
	if p == nil {
		return
	}
	p.Depth.Observe(at, float64(depth))
	p.events.Append(Event{Track: p.Name, Name: "depth", Start: at, Value: float64(depth), Counter: true})
}

// OnService records one packet transfer for this FIFO occupying
// [start, end) on the DATA bus.
func (p *FIFOProbe) OnService(start, end int64, write bool) {
	if p == nil {
		return
	}
	p.Serviced++
	name := "fetch"
	if write {
		name = "drain"
	}
	p.events.Append(Event{Track: p.Name, Name: name, Start: start, End: end})
}

// OnBlocked records a stall episode of [at, until) with the FIFO full
// (prefetch blocked) or empty (drain blocked).
func (p *FIFOProbe) OnBlocked(at, until int64, full bool) {
	if p == nil || until <= at {
		return
	}
	if full {
		p.FullStalls++
		p.FullStallCycles += until - at
	} else {
		p.EmptyStalls++
		p.EmptyStallCycles += until - at
	}
	name := "stall empty"
	if full {
		name = "stall full"
	}
	p.events.Append(Event{Track: p.Name, Name: name, Start: at, End: until})
}

// ControllerProbe records controller-level telemetry common to both the
// natural-order controller and the SMC.
type ControllerProbe struct {
	// Decisions counts MSU scheduling outcomes by label (e.g. "roundrobin",
	// "hitfirst-hit", "hitfirst-fallback", "bankaware").
	Decisions map[string]int64
	// MissLatency is the request-to-data latency of cacheline fetches
	// (natural-order controller), in cycles.
	MissLatency *Histogram
	// CPUStallCycles is the time the processor spent blocked on FIFO heads
	// (SMC mode).
	CPUStallCycles int64
}

// OnDecision counts one scheduling decision.
func (p *ControllerProbe) OnDecision(label string) {
	if p == nil {
		return
	}
	p.Decisions[label]++
}

// ObserveMissLatency records one cacheline fetch latency.
func (p *ControllerProbe) ObserveMissLatency(cycles int64) {
	if p == nil {
		return
	}
	p.MissLatency.Observe(cycles)
}
