package telemetry

// StallCause classifies why the DATA bus was idle for a cycle. The
// attribution is exact: the device charges every idle DATA-bus cycle
// between consecutive DATA packets to exactly one cause, and the
// controllers charge the tail after the final packet, so the per-cause
// totals sum to Cycles − DataBusBusy (checked by the simulators' tests).
//
// The taxonomy follows the paper's §5 loss accounting: row activation and
// precharge latency (Eq 5.2–5.4's t_RAC and t_RP terms), the bus-turnaround
// penalty t_RW between writes and reads (Eq 5.3), the tRC/tRR bank-cycle
// limits that gate back-to-back activates, and the controller-side reasons
// the memory was not even asked for data (in-order dependency waits for the
// natural-order controller, FIFO starvation for the SMC).
type StallCause int

const (
	// StallNoRequest: the controller presented no request — the bus idled
	// with no pending work. Controllers refine this into StallDependency,
	// StallFIFOFull, or StallFIFOEmpty when they know the reason.
	StallNoRequest StallCause = iota
	// StallDependency: the natural-order processor could not issue the next
	// transaction yet because it issues in order and the previous
	// iteration's operands had not arrived (the paper's once-per-line
	// exposed latency in Figures 5/6).
	StallDependency
	// StallFIFOFull: the MSU had pending read groups but every serviceable
	// read FIFO was full — prefetch blocked until the CPU pops elements.
	StallFIFOFull
	// StallFIFOEmpty: the MSU had pending write groups but no write FIFO
	// held a complete packet — drain blocked until the CPU pushes elements.
	StallFIFOEmpty
	// StallPrecharge: waiting for a page-conflict precharge (t_RP after the
	// PRER packet) before the needed row could be activated.
	StallPrecharge
	// StallRowTiming: the ACT packet itself was delayed — by t_RC (same
	// bank), t_RR (same chip), a pending precharge from an earlier access,
	// or ROW-bus contention (refresh traffic folds in here too).
	StallRowTiming
	// StallActivate: waiting out t_RCD between the ACT packet and the first
	// column access to the newly opened row.
	StallActivate
	// StallTurnaround: a read DATA packet held off by the t_RW bus
	// turnaround after a write DATA packet (the paper's read/write
	// interleave penalty).
	StallTurnaround
	// StallColumn: remaining latency on the column path — COL-bus
	// contention and the CAS pipeline fill (t_CAC / t_CWD exposure).
	StallColumn
	// StallCPUTail: cycles after the final DATA packet while the processor
	// was still consuming FIFO contents (SMC runs end at
	// max(cpuTime, LastDataEnd)).
	StallCPUTail
	// StallFaultRetry: the controller had work but was backing off after a
	// transient access rejection from the fault injector; the bus idled for
	// the retry delay. Zero in fault-free runs.
	StallFaultRetry

	// NumStallCauses sizes per-cause arrays.
	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	"no-request",
	"dependency",
	"fifo-full",
	"fifo-empty",
	"precharge",
	"row-timing",
	"activate",
	"turnaround",
	"column",
	"cpu-tail",
	"fault-retry",
}

func (c StallCause) String() string {
	if c < 0 || c >= NumStallCauses {
		return "unknown"
	}
	return stallNames[c]
}

// StallCauses lists every cause in charge order, for exporters and docs.
func StallCauses() []StallCause {
	out := make([]StallCause, NumStallCauses)
	for i := range out {
		out[i] = StallCause(i)
	}
	return out
}
