package telemetry_test

import (
	"reflect"
	"testing"

	"rdramstream/internal/telemetry"
)

// TestNilProbeMethodsDoNotPanic is the runtime backstop for rdlint's
// nilprobe analyzer: the simulators instrument unconditionally and an
// uninstrumented run passes nil probes everywhere, so every exported
// pointer-receiver method on every probe type must tolerate a nil
// receiver. The static check proves the guard is present; this test
// proves the guard works, by calling each method through a typed nil
// with zero-valued arguments.
func TestNilProbeMethodsDoNotPanic(t *testing.T) {
	targets := []any{
		(*telemetry.Collector)(nil),
		(*telemetry.DeviceProbe)(nil),
		(*telemetry.ControllerProbe)(nil),
		(*telemetry.FIFOProbe)(nil),
		(*telemetry.EventBuffer)(nil),
		(*telemetry.Series)(nil),
		(*telemetry.Histogram)(nil),
	}
	for _, target := range targets {
		v := reflect.ValueOf(target)
		typ := v.Type()
		typeName := typ.Elem().Name()

		// Value-receiver methods cannot be reached through a nil pointer
		// without dereferencing it, and the static contract only covers
		// pointer receivers — skip them.
		valueMethods := make(map[string]bool)
		for i := 0; i < typ.Elem().NumMethod(); i++ {
			valueMethods[typ.Elem().Method(i).Name] = true
		}

		called := 0
		for i := 0; i < typ.NumMethod(); i++ {
			m := typ.Method(i)
			if valueMethods[m.Name] {
				continue
			}
			mt := m.Func.Type() // In(0) is the receiver
			n := mt.NumIn()
			if mt.IsVariadic() {
				n-- // omit the variadic tail entirely
			}
			args := make([]reflect.Value, 1, n)
			args[0] = v
			for j := 1; j < n; j++ {
				args = append(args, reflect.Zero(mt.In(j)))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("(*%s).%s panicked on nil receiver: %v", typeName, m.Name, r)
					}
				}()
				m.Func.Call(args)
			}()
			called++
		}
		if called == 0 {
			t.Errorf("*%s exposes no pointer-receiver methods; the probe contract expects some", typeName)
		}
	}
}
