package telemetry

import (
	"fmt"
	"strings"
)

// Series is a fixed-window time series over simulation cycles: bucket i
// covers cycles [i*Window, (i+1)*Window). Buckets grow on demand, so a
// series costs nothing for the part of a run it never observes. A Series
// is either summing (Add/AddSpan accumulate) or max-tracking (Observe
// keeps the largest sample per bucket) — gauges such as FIFO depth use the
// latter so a short spike is still visible after windowing.
type Series struct {
	window  int64
	max     bool
	buckets []float64
}

// NewSeries returns a summing series with the given window (cycles per
// bucket; values below 1 are clamped to 1).
func NewSeries(window int64) *Series {
	if window < 1 {
		window = 1
	}
	return &Series{window: window}
}

// NewMaxSeries returns a max-tracking series (per-bucket maximum).
func NewMaxSeries(window int64) *Series {
	s := NewSeries(window)
	s.max = true
	return s
}

// Window returns the bucket width in cycles.
func (s *Series) Window() int64 {
	if s == nil {
		return 0
	}
	return s.window
}

// Len returns the number of buckets observed so far.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.buckets)
}

// Values returns the bucket values; the slice aliases internal storage.
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	return s.buckets
}

func (s *Series) ensure(i int) {
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, 0)
	}
}

// Add accumulates v into the bucket containing cycle at.
func (s *Series) Add(at int64, v float64) {
	if s == nil || at < 0 {
		return
	}
	i := int(at / s.window)
	s.ensure(i)
	s.buckets[i] += v
}

// Observe records a gauge sample at cycle at; on a max series the bucket
// keeps the largest sample, on a summing series it accumulates.
func (s *Series) Observe(at int64, v float64) {
	if s == nil || at < 0 {
		return
	}
	i := int(at / s.window)
	s.ensure(i)
	if s.max {
		if v > s.buckets[i] {
			s.buckets[i] = v
		}
	} else {
		s.buckets[i] += v
	}
}

// AddSpan distributes a [start, end) occupancy span across buckets,
// crediting perCycle units for every cycle of overlap — the primitive
// behind per-window bus-occupancy accounting.
func (s *Series) AddSpan(start, end int64, perCycle float64) {
	if s == nil || end <= start {
		return
	}
	if start < 0 {
		start = 0
	}
	first := start / s.window
	last := (end - 1) / s.window
	s.ensure(int(last))
	for b := first; b <= last; b++ {
		lo, hi := b*s.window, (b+1)*s.window
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		s.buckets[b] += float64(hi-lo) * perCycle
	}
}

// Histogram is a fixed-bucket histogram of int64 samples (latencies in
// cycles). Bounds are inclusive upper bounds in ascending order; samples
// above the last bound land in an overflow bucket.
type Histogram struct {
	bounds []int64
	counts []int64
	n, sum int64
	min    int64
	maxV   int64
}

// NewHistogram builds a histogram with the given ascending upper bounds. A
// non-ascending bound list is a configuration error, reported at
// construction; every Histogram method is nil-receiver-safe, so callers that
// ignore the error still degrade to a no-op histogram rather than crashing.
func NewHistogram(bounds ...int64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not ascending: %v", bounds)
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}, nil
}

// MustHistogram is NewHistogram for bound lists known statically; it panics
// on error.
func MustHistogram(bounds ...int64) *Histogram {
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// DefaultLatencyBounds covers the Direct RDRAM latency range: a page hit
// costs ~t_CAC+1, a miss ~t_RAC, a conflict adds t_RP, and queueing can
// stretch far beyond.
func DefaultLatencyBounds() []int64 {
	return []int64{12, 16, 20, 24, 32, 48, 64, 96, 128, 192, 256, 512}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.maxV {
		h.maxV = v
	}
	h.n++
	h.sum += v
}

// N returns the sample count.
func (h *Histogram) N() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min and Max return the extreme samples (0 with no samples).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample observed.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.maxV
}

// HistogramBucket is one exported histogram bin; Le is the inclusive upper
// bound, with Overflow set on the final unbounded bin.
type HistogramBucket struct {
	Le       int64 `json:"le"`
	Count    int64 `json:"count"`
	Overflow bool  `json:"overflow,omitempty"`
}

// Buckets returns the bins in bound order.
func (h *Histogram) Buckets() []HistogramBucket {
	if h == nil {
		return nil
	}
	out := make([]HistogramBucket, len(h.counts))
	for i, c := range h.counts {
		b := HistogramBucket{Count: c}
		if i < len(h.bounds) {
			b.Le = h.bounds[i]
		} else {
			b.Le = h.maxV
			b.Overflow = true
		}
		out[i] = b
	}
	return out
}

func (h *Histogram) String() string {
	if h == nil || h.n == 0 {
		return "histogram(empty)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%d max=%d |", h.n, h.Mean(), h.min, h.maxV)
	for _, bk := range h.Buckets() {
		if bk.Count == 0 {
			continue
		}
		if bk.Overflow {
			fmt.Fprintf(&b, " >:%d", bk.Count)
		} else {
			fmt.Fprintf(&b, " ≤%d:%d", bk.Le, bk.Count)
		}
	}
	return b.String()
}
