package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// Event is one instrumented occurrence on a named track: either a span
// ([Start, End) in cycles, e.g. an ACT packet on a bank or a packet fetch
// for a FIFO) or a counter sample (Counter true, Value at cycle Start,
// e.g. a FIFO's depth). Tracks map to threads in the Chrome trace export.
type Event struct {
	Track   string  `json:"track"`
	Name    string  `json:"name"`
	Start   int64   `json:"start"`
	End     int64   `json:"end,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Counter bool    `json:"counter,omitempty"`
}

// DefaultEventLimit bounds the capture buffer: a long sweep cannot
// silently exhaust memory; Truncated reports when the cap was hit.
const DefaultEventLimit = 1 << 21

// EventBuffer collects events in occurrence order. It is only allocated
// when event capture is requested, so counter-only telemetry never pays
// for event storage.
type EventBuffer struct {
	Events    []Event
	Limit     int
	Truncated bool
}

// Append records an event, honouring the buffer limit.
func (b *EventBuffer) Append(ev Event) {
	if b == nil {
		return
	}
	if b.Limit > 0 && len(b.Events) >= b.Limit {
		b.Truncated = true
		return
	}
	b.Events = append(b.Events, ev)
}

// WriteJSONL streams the events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
