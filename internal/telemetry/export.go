package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Report is a JSON-friendly snapshot of a Collector, the payload behind
// rdsim -metrics-out and rdprof's metrics.json.
type Report struct {
	Cycles      int64 `json:"cycles"`
	Window      int64 `json:"windowCycles"`
	DataBusBusy int64 `json:"dataBusBusy"`
	IdleCycles  int64 `json:"idleCycles"`
	// Stalls is the per-cause idle-cycle attribution; values sum to
	// IdleCycles, and IdleCycles == Cycles − DataBusBusy.
	Stalls map[string]int64 `json:"stalls"`

	Totals  BankCounters   `json:"totals"`
	PerBank []BankCounters `json:"perBank"`

	// BusBusyPerWindow gives ROW/COL/DATA busy cycles per window.
	BusBusyPerWindow map[string][]float64 `json:"busBusyPerWindow"`
	// BandwidthMBps is the delivered DATA-bus bandwidth per window in
	// MB/s (16 bytes per t_PACK-cycle packet, 2.5 ns per cycle).
	BandwidthMBps []float64 `json:"bandwidthMBps"`

	Decisions      map[string]int64  `json:"decisions,omitempty"`
	MissLatency    []HistogramBucket `json:"missLatency,omitempty"`
	MissLatencyAvg float64           `json:"missLatencyAvg,omitempty"`
	CPUStallCycles int64             `json:"cpuStallCycles,omitempty"`

	FIFOs []FIFOReport `json:"fifos,omitempty"`

	EventsTruncated bool `json:"eventsTruncated,omitempty"`
}

// FIFOReport summarizes one stream FIFO.
type FIFOReport struct {
	Name             string    `json:"name"`
	Serviced         int64     `json:"servicedPackets"`
	FullStalls       int64     `json:"fullStalls"`
	FullStallCycles  int64     `json:"fullStallCycles"`
	EmptyStalls      int64     `json:"emptyStalls"`
	EmptyStallCycles int64     `json:"emptyStallCycles"`
	DepthMaxPerWin   []float64 `json:"depthMaxPerWindow"`
}

// Report snapshots the collector.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	r := &Report{
		Cycles:           c.Cycles,
		Window:           c.Window,
		DataBusBusy:      c.Device.DataBusBusy(),
		IdleCycles:       c.Device.IdleTotal(),
		Stalls:           map[string]int64{},
		Totals:           c.Device.Totals(),
		PerBank:          c.Device.PerBank(),
		BusBusyPerWindow: map[string][]float64{},
	}
	for i, v := range c.Device.Stalls() {
		if v != 0 {
			r.Stalls[StallCause(i).String()] = v
		}
	}
	row, col, data := c.Device.BusSeries()
	r.BusBusyPerWindow["row"] = row.Values()
	r.BusBusyPerWindow["col"] = col.Values()
	r.BusBusyPerWindow["data"] = data.Values()
	// 4 bytes/cycle average while busy (16-byte packet per 4-cycle t_PACK);
	// one cycle is 2.5 ns.
	for _, busy := range data.Values() {
		bytes := busy * 4
		r.BandwidthMBps = append(r.BandwidthMBps, bytes/(float64(c.Window)*2.5e-9)/1e6)
	}
	if ctl := c.Controller; ctl != nil {
		if len(ctl.Decisions) > 0 {
			r.Decisions = ctl.Decisions
		}
		if ctl.MissLatency.N() > 0 {
			r.MissLatency = ctl.MissLatency.Buckets()
			r.MissLatencyAvg = ctl.MissLatency.Mean()
		}
		r.CPUStallCycles = ctl.CPUStallCycles
	}
	for _, f := range c.FIFOs {
		if f == nil {
			continue
		}
		r.FIFOs = append(r.FIFOs, FIFOReport{
			Name: f.Name, Serviced: f.Serviced,
			FullStalls: f.FullStalls, FullStallCycles: f.FullStallCycles,
			EmptyStalls: f.EmptyStalls, EmptyStallCycles: f.EmptyStallCycles,
			DepthMaxPerWin: f.Depth.Values(),
		})
	}
	if c.Events != nil {
		r.EventsTruncated = c.Events.Truncated
	}
	return r
}

// WriteMetricsJSON writes the report as indented JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Report())
}

// WriteSeriesCSV writes every time series as one CSV table: a
// window-start column followed by one column per series (bus occupancy,
// per-window bandwidth, FIFO depths), padded with zeros past each series'
// last observation.
func (c *Collector) WriteSeriesCSV(w io.Writer) error {
	if c == nil {
		return nil
	}
	type namedSeries struct {
		name string
		vals []float64
	}
	row, col, data := c.Device.BusSeries()
	cols := []namedSeries{
		{"row_busy", row.Values()},
		{"col_busy", col.Values()},
		{"data_busy", data.Values()},
	}
	rep := c.Report()
	cols = append(cols, namedSeries{"bandwidth_mbps", rep.BandwidthMBps})
	for _, f := range c.FIFOs {
		if f != nil {
			cols = append(cols, namedSeries{"depth_" + f.Name, f.Depth.Values()})
		}
	}
	n := 0
	for _, s := range cols {
		if len(s.vals) > n {
			n = len(s.vals)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "window_start_cycle")
	for _, s := range cols {
		fmt.Fprintf(bw, ",%s", s.name)
	}
	fmt.Fprintln(bw)
	for i := 0; i < n; i++ {
		fmt.Fprint(bw, strconv.FormatInt(int64(i)*c.Window, 10))
		for _, s := range cols {
			v := 0.0
			if i < len(s.vals) {
				v = s.vals[i]
			}
			fmt.Fprintf(bw, ",%g", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteEventsJSONL streams the captured events as JSON lines; it is an
// error to call it on a collector built without CaptureEvents.
func (c *Collector) WriteEventsJSONL(w io.Writer) error {
	if c == nil || c.Events == nil {
		return fmt.Errorf("telemetry: event capture was not enabled")
	}
	return WriteJSONL(w, c.Events.Events)
}

// WriteChromeTrace renders the captured events as Chrome trace-event JSON;
// it is an error to call it on a collector built without CaptureEvents.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil || c.Events == nil {
		return fmt.Errorf("telemetry: event capture was not enabled")
	}
	return WriteChromeTrace(w, c.Events.Events)
}

// chromeEvent is one trace-event JSON record (Chrome trace-event format,
// "JSON object format" flavour inside a {"traceEvents": [...]} wrapper).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders captured events as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. Each track becomes a named
// thread (one per bank, one per FIFO); span events render as complete
// ("X") slices and counter samples as counter ("C") tracks. One trace
// microsecond equals one simulated interface-clock cycle (2.5 ns of
// simulated time), so the timeline reads directly in cycles.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Assign stable tids: tracks in first-appearance order, then sorted by
	// name for deterministic metadata.
	tids := map[string]int{}
	var names []string
	for _, ev := range events {
		if _, ok := tids[ev.Track]; !ok {
			tids[ev.Track] = 0
			names = append(names, ev.Track)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		tids[n] = i + 1
	}
	out := make([]chromeEvent, 0, len(events)+len(names))
	for _, n := range names {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{Name: ev.Name, Cat: "sim", Pid: 1, Tid: tids[ev.Track], Ts: float64(ev.Start)}
		if ev.Counter {
			ce.Ph = "C"
			ce.Args = map[string]any{"value": ev.Value}
		} else {
			ce.Ph = "X"
			dur := float64(ev.End - ev.Start)
			if dur <= 0 {
				dur = 1
			}
			ce.Dur = dur
		}
		out = append(out, ce)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ns"}); err != nil {
		return err
	}
	return bw.Flush()
}
