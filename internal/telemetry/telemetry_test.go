package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSeriesWindowing(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 1)
	s.Add(9, 2)
	s.Add(10, 4)
	s.Add(35, 8)
	want := []float64{3, 4, 0, 8}
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	s.Add(-1, 100) // negative cycles are dropped, not a panic
	if got := s.Values(); got[0] != 3 {
		t.Errorf("negative Add mutated bucket 0: %g", got[0])
	}
}

func TestSeriesMaxVsSum(t *testing.T) {
	sum := NewSeries(10)
	max := NewMaxSeries(10)
	for _, v := range []float64{3, 7, 5} {
		sum.Observe(4, v)
		max.Observe(4, v)
	}
	if got := sum.Values()[0]; got != 15 {
		t.Errorf("summing series = %g, want 15", got)
	}
	if got := max.Values()[0]; got != 7 {
		t.Errorf("max series = %g, want 7", got)
	}
}

func TestSeriesAddSpan(t *testing.T) {
	s := NewSeries(10)
	// Span [5, 25) splits 5 + 10 + 5 across three buckets.
	s.AddSpan(5, 25, 1)
	want := []float64{5, 10, 5}
	for i, w := range want {
		if got := s.Values()[i]; got != w {
			t.Errorf("bucket %d = %g, want %g", i, got, w)
		}
	}
	// The total credited must equal the span length regardless of cuts.
	s = NewSeries(7)
	s.AddSpan(3, 60, 1)
	var total float64
	for _, v := range s.Values() {
		total += v
	}
	if total != 57 {
		t.Errorf("span total = %g, want 57", total)
	}
	// Degenerate and clamped spans.
	s.AddSpan(10, 10, 1)
	s.AddSpan(12, 11, 1)
	if total2 := sumVals(s.Values()); total2 != 57 {
		t.Errorf("degenerate spans changed total: %g", total2)
	}
	s2 := NewSeries(10)
	s2.AddSpan(-5, 5, 1) // clamps to [0, 5)
	if got := s2.Values()[0]; got != 5 {
		t.Errorf("clamped span = %g, want 5", got)
	}
}

func sumVals(vs []float64) float64 {
	var t float64
	for _, v := range vs {
		t += v
	}
	return t
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.Add(0, 1)
	s.Observe(0, 1)
	s.AddSpan(0, 10, 1)
	if s.Len() != 0 || s.Values() != nil {
		t.Error("nil series not empty")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(10, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{5, 10, 11, 40, 41, 1000} {
		h.Observe(v)
	}
	bks := h.Buckets()
	wantCounts := []int64{2, 1, 1, 2} // ≤10, ≤20, ≤40, overflow
	for i, w := range wantCounts {
		if bks[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, bks[i].Count, w)
		}
	}
	if !bks[3].Overflow {
		t.Error("last bucket not marked overflow")
	}
	if h.N() != 6 || h.Min() != 5 || h.Max() != 1000 {
		t.Errorf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	if got, want := h.Mean(), float64(5+10+11+40+41+1000)/6; got != want {
		t.Errorf("mean = %g, want %g", got, want)
	}
	if s := h.String(); !strings.Contains(s, "n=6") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{{10, 10}, {20, 10}, {1, 2, 2}} {
		if _, err := NewHistogram(bounds...); err == nil {
			t.Errorf("NewHistogram(%v): no error for non-ascending bounds", bounds)
		}
	}
	// A nil histogram from a rejected construction must stay inert.
	h, _ := NewHistogram(10, 10)
	h.Observe(3)
	if h.N() != 0 {
		t.Error("rejected histogram recorded a sample")
	}
}

func TestMustHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHistogram did not panic on non-ascending bounds")
		}
	}()
	MustHistogram(10, 10)
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(3)
	if h.N() != 0 || h.Mean() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("nil histogram not zero")
	}
	if h.Buckets() != nil {
		t.Error("nil histogram has buckets")
	}
	if h.String() != "histogram(empty)" {
		t.Errorf("String() = %q", h.String())
	}
}

func TestEventBufferLimit(t *testing.T) {
	b := &EventBuffer{Limit: 2}
	for i := 0; i < 5; i++ {
		b.Append(Event{Track: "t", Name: "e", Start: int64(i)})
	}
	if len(b.Events) != 2 {
		t.Errorf("kept %d events, want 2", len(b.Events))
	}
	if !b.Truncated {
		t.Error("buffer over limit not marked truncated")
	}
	var nilBuf *EventBuffer
	nilBuf.Append(Event{}) // must not panic
}

func TestStallCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range StallCauses() {
		s := c.String()
		if s == "" || s == "unknown" {
			t.Errorf("cause %d has no name: %q", int(c), s)
		}
		if seen[s] {
			t.Errorf("duplicate cause name %q", s)
		}
		seen[s] = true
	}
	if len(seen) != int(NumStallCauses) {
		t.Errorf("%d named causes, want %d", len(seen), NumStallCauses)
	}
	if got := StallCause(250).String(); got != "unknown" {
		t.Errorf("out-of-range cause = %q", got)
	}
}

// TestProbesNilSafe drives every probe method through a nil receiver — the
// contract that lets the simulators instrument unconditionally.
func TestProbesNilSafe(t *testing.T) {
	var d *DeviceProbe
	d.OnActivate(0, 0, 4)
	d.OnPrecharge(0, 0, 4)
	d.OnColumn(0, false, 0, 4)
	d.OnRetire(0, 0, 4)
	d.OnData(0, true, 0, 4)
	d.OnAccess(0, true, false)
	d.SetIdleCause(StallFIFOEmpty)
	d.ChargeStall(StallColumn, 3)
	if d.IdleCause() != StallNoRequest || d.IdleTotal() != 0 || d.DataBusBusy() != 0 {
		t.Error("nil device probe not zero")
	}
	if d.PerBank() != nil || (d.Totals() != BankCounters{}) {
		t.Error("nil device probe has banks")
	}
	var f *FIFOProbe
	f.OnDepth(0, 3)
	f.OnService(0, 4, false)
	f.OnBlocked(0, 4, true)
	var c *ControllerProbe
	c.OnDecision("x")
	c.ObserveMissLatency(12)
	var col *Collector
	col.Finalize(100)
	if col.FIFO(0, "x") != nil {
		t.Error("nil collector minted a FIFO probe")
	}
	if col.Report() != nil {
		t.Error("nil collector produced a report")
	}
}

func TestDeviceProbeCountersAndSeries(t *testing.T) {
	c := New(Options{Window: 8})
	p := c.Device
	p.OnActivate(1, 0, 4)
	p.OnPrecharge(1, 4, 8)
	p.OnColumn(1, false, 8, 12)
	p.OnRetire(1, 12, 16)
	p.OnData(1, false, 12, 16)
	p.OnData(1, true, 16, 20)
	p.OnAccess(1, true, false)
	p.OnAccess(1, false, true)
	p.OnAccess(1, false, false)

	tot := p.Totals()
	if tot.Activates != 1 || tot.Precharges != 1 || tot.Reads != 1 || tot.Writes != 1 || tot.Retires != 1 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.PageHits != 1 || tot.PageConflicts != 1 || tot.PageMisses != 2 {
		t.Errorf("page outcomes = %+v", tot)
	}
	if got := len(p.PerBank()); got != 2 {
		t.Errorf("banks = %d, want 2 (lazy grow through index 1)", got)
	}
	if p.DataBusBusy() != 8 {
		t.Errorf("data busy = %d, want 8", p.DataBusBusy())
	}
	row, colS, data := p.BusSeries()
	if sumVals(row.Values()) != 8 || sumVals(colS.Values()) != 8 || sumVals(data.Values()) != 8 {
		t.Errorf("bus series row=%v col=%v data=%v", row.Values(), colS.Values(), data.Values())
	}
}

func TestStallAccounting(t *testing.T) {
	c := New(Options{})
	p := c.Device
	if p.IdleCause() != StallNoRequest {
		t.Errorf("zero idle cause = %v", p.IdleCause())
	}
	p.SetIdleCause(StallDependency)
	p.ChargeStall(p.IdleCause(), 10)
	p.ChargeStall(StallColumn, 5)
	p.ChargeStall(StallColumn, -3) // non-positive charges ignored
	if p.IdleTotal() != 15 {
		t.Errorf("idle total = %d, want 15", p.IdleTotal())
	}
	st := p.Stalls()
	if st[StallDependency] != 10 || st[StallColumn] != 5 {
		t.Errorf("stalls = %v", st)
	}
}

func TestCollectorFIFOGetOrCreate(t *testing.T) {
	c := New(Options{Window: 16})
	a := c.FIFO(2, "write y")
	if len(c.FIFOs) != 3 || c.FIFOs[0] != nil || c.FIFOs[1] != nil {
		t.Fatalf("FIFO slice = %v", c.FIFOs)
	}
	if b := c.FIFO(2, "ignored"); b != a {
		t.Error("second FIFO(2) minted a new probe")
	}
	a.OnDepth(3, 7)
	a.OnBlocked(10, 14, true)
	a.OnBlocked(14, 15, false)
	if a.FullStalls != 1 || a.FullStallCycles != 4 || a.EmptyStalls != 1 || a.EmptyStallCycles != 1 {
		t.Errorf("stalls = %+v", a)
	}
	a.OnBlocked(5, 5, true) // empty episode ignored
	if a.FullStalls != 1 {
		t.Error("zero-length episode counted")
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Track: "bank 0", Name: "ACT", Start: 0, End: 4},
		{Track: "fifo 0 read x", Name: "depth", Start: 7, Value: 3, Counter: true},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev != events[i] {
			t.Errorf("line %d = %+v, want %+v", i, ev, events[i])
		}
	}
}

func TestWriteChromeTraceStructure(t *testing.T) {
	events := []Event{
		{Track: "bank 1", Name: "ACT", Start: 10, End: 14},
		{Track: "bank 0", Name: "DATA rd", Start: 20, End: 24},
		{Track: "fifo 0 read x", Name: "depth", Start: 5, Value: 2, Counter: true},
		{Track: "bank 0", Name: "PRER", Start: 30, End: 30}, // zero-length span
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 tracks -> 3 metadata records + 4 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("%d records, want 7", len(doc.TraceEvents))
	}
	// Metadata names the tracks deterministically (sorted), tids from 1.
	meta := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			meta[ev.Args["name"].(string)] = ev.Tid
		}
	}
	if meta["bank 0"] != 1 || meta["bank 1"] != 2 || meta["fifo 0 read x"] != 3 {
		t.Errorf("tids = %v", meta)
	}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "C" && ev.Name == "depth":
			if ev.Args["value"].(float64) != 2 {
				t.Errorf("counter value = %v", ev.Args["value"])
			}
		case ev.Ph == "X" && ev.Name == "PRER":
			if ev.Dur != 1 {
				t.Errorf("zero-length span dur = %g, want 1", ev.Dur)
			}
		}
	}
}

func TestCollectorExporters(t *testing.T) {
	c := New(Options{Window: 4, CaptureEvents: true, EventLimit: 8})
	c.Device.OnActivate(0, 0, 4)
	c.Device.OnData(0, false, 4, 8)
	c.Device.ChargeStall(StallActivate, 4)
	c.FIFO(0, "read x").OnDepth(2, 5)
	c.Controller.OnDecision("roundrobin")
	c.Controller.ObserveMissLatency(20)
	c.Finalize(8)

	rep := c.Report()
	if rep.Cycles != 8 || rep.DataBusBusy != 4 || rep.IdleCycles != 4 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Stalls["activate"] != 4 {
		t.Errorf("stalls = %v", rep.Stalls)
	}
	if rep.Decisions["roundrobin"] != 1 || rep.MissLatencyAvg != 20 {
		t.Errorf("controller fields = %+v", rep)
	}

	var buf bytes.Buffer
	if err := c.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("metrics JSON invalid")
	}

	buf.Reset()
	if err := c.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	header := lines[0]
	for _, wantCol := range []string{"window_start_cycle", "row_busy", "col_busy", "data_busy", "bandwidth_mbps", "depth_read x"} {
		if !strings.Contains(header, wantCol) {
			t.Errorf("CSV header %q missing %q", header, wantCol)
		}
	}
	if len(lines) != 3 { // header + two 4-cycle windows
		t.Errorf("CSV has %d lines, want 3: %q", len(lines), buf.String())
	}

	buf.Reset()
	if err := c.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("JSONL lines = %d, want 3 (ACT, DATA, depth)", got)
	}
	buf.Reset()
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("chrome trace invalid")
	}
}

func TestExportersRequireCapture(t *testing.T) {
	c := New(Options{}) // no CaptureEvents
	var buf bytes.Buffer
	if err := c.WriteEventsJSONL(&buf); err == nil {
		t.Error("WriteEventsJSONL without capture did not error")
	}
	if err := c.WriteChromeTrace(&buf); err == nil {
		t.Error("WriteChromeTrace without capture did not error")
	}
}

func TestEventCaptureOffByDefault(t *testing.T) {
	c := New(Options{})
	if c.Events != nil {
		t.Error("event buffer allocated without CaptureEvents")
	}
	// Hooks still work, they just keep counters only.
	c.Device.OnData(0, false, 0, 4)
	if c.Device.DataBusBusy() != 4 {
		t.Error("counters lost without capture")
	}
}

func TestBankTrackFallback(t *testing.T) {
	if bankTrack(3) != "bank 3" {
		t.Errorf("bankTrack(3) = %q", bankTrack(3))
	}
	if bankTrack(99) != "bank 16+" {
		t.Errorf("bankTrack(99) = %q", bankTrack(99))
	}
}
