package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text exposition payload — the
// promtool-check-metrics stand-in used by the package tests, CI, and
// cmd/rdload, with no dependency beyond the standard library. It returns
// the number of sample series and the first violation found:
//
//   - line grammar: HELP/TYPE comments, samples `name{labels} value [ts]`
//   - metric and label names match the exposition charset
//   - at most one TYPE per family, declared before its samples
//   - no duplicate series (same name and label set)
//   - sample values parse as floats (+Inf/-Inf/NaN included)
//   - histogram families: a +Inf bucket exists, bucket counts are
//     cumulative (non-decreasing in le order), and the +Inf bucket
//     equals the family's _count sample for the same label set
func CheckExposition(data []byte) (int, error) {
	p := &expoParser{
		typed:   make(map[string]string),
		sampled: make(map[string]bool),
		seen:    make(map[string]bool),
		buckets: make(map[string]map[string][]bucketSample),
		counts:  make(map[string]map[string]float64),
		sums:    make(map[string]map[string]bool),
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := p.line(line); err != nil {
			return p.samples, fmt.Errorf("exposition line %d: %w: %q", i+1, err, line)
		}
	}
	if err := p.checkHistograms(); err != nil {
		return p.samples, err
	}
	return p.samples, nil
}

// bucketSample is one parsed _bucket sample of a histogram family.
type bucketSample struct {
	le    float64
	count float64
}

type expoParser struct {
	samples int
	typed   map[string]string // family -> type
	sampled map[string]bool   // family has samples already
	seen    map[string]bool   // name + labelset duplicates
	// histogram bookkeeping, keyed family -> label set (minus le)
	buckets map[string]map[string][]bucketSample
	counts  map[string]map[string]float64
	sums    map[string]map[string]bool
}

func (p *expoParser) line(line string) error {
	line = strings.TrimRight(line, "\r")
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return p.comment(line)
	}
	return p.sample(line)
}

func (p *expoParser) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP")
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE")
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if p.typed[name] != "" {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if p.sampled[name] {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		p.typed[name] = typ
	}
	return nil
}

func (p *expoParser) sample(line string) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	valueStr, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
	value, err := parseValue(valueStr)
	if err != nil {
		return err
	}
	key := name + "{" + canonicalLabels(labels) + "}"
	if p.seen[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	p.seen[key] = true
	p.samples++

	// Histogram bookkeeping: attribute _bucket/_sum/_count samples to
	// their family when that family is TYPEd histogram.
	base, kind := name, ""
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suffix); ok && p.typed[b] == "histogram" {
			base, kind = b, suffix
			break
		}
	}
	famName := base
	if kind == "" {
		famName = name
	}
	p.sampled[famName] = true
	if kind == "" {
		if p.typed[name] == "histogram" {
			return fmt.Errorf("histogram family %q has a raw sample (want _bucket/_sum/_count)", name)
		}
		return nil
	}
	groupKey := canonicalLabels(dropLabel(labels, "le"))
	switch kind {
	case "_bucket":
		leStr, ok := labelValue(labels, "le")
		if !ok {
			return fmt.Errorf("histogram bucket without le label")
		}
		le, err := parseValue(leStr)
		if err != nil {
			return fmt.Errorf("unparseable le %q", leStr)
		}
		if p.buckets[base] == nil {
			p.buckets[base] = make(map[string][]bucketSample)
		}
		p.buckets[base][groupKey] = append(p.buckets[base][groupKey], bucketSample{le: le, count: value})
	case "_count":
		if p.counts[base] == nil {
			p.counts[base] = make(map[string]float64)
		}
		p.counts[base][groupKey] = value
	case "_sum":
		if p.sums[base] == nil {
			p.sums[base] = make(map[string]bool)
		}
		p.sums[base][groupKey] = true
	}
	return nil
}

// checkHistograms validates bucket cumulativity and the +Inf/_count
// agreement for every histogram family, in sorted order so the first
// reported violation is deterministic.
func (p *expoParser) checkHistograms() error {
	fams := make([]string, 0, len(p.typed))
	for name, typ := range p.typed {
		if typ == "histogram" {
			fams = append(fams, name)
		}
	}
	sort.Strings(fams)
	for _, fam := range fams {
		groups := make([]string, 0, len(p.buckets[fam]))
		for g := range p.buckets[fam] {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		for _, g := range groups {
			bs := p.buckets[fam][g]
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			var prev float64
			hasInf := false
			for _, b := range bs {
				if b.count < prev {
					return fmt.Errorf("histogram %s{%s}: bucket le=%g count %g < previous %g (not cumulative)", fam, g, b.le, b.count, prev)
				}
				prev = b.count
				if math.IsInf(b.le, +1) {
					hasInf = true
				}
			}
			if !hasInf {
				return fmt.Errorf("histogram %s{%s}: no +Inf bucket", fam, g)
			}
			count, ok := p.counts[fam][g]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count", fam, g)
			}
			if !p.sums[fam][g] {
				return fmt.Errorf("histogram %s{%s}: missing _sum", fam, g)
			}
			if count != bs[len(bs)-1].count {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", fam, g, bs[len(bs)-1].count, count)
			}
		}
		if len(p.buckets[fam]) == 0 && p.sampled[fam] {
			return fmt.Errorf("histogram %s: samples but no buckets", fam)
		}
	}
	return nil
}

// splitSample splits a sample line into name, parsed labels, and the
// value remainder, handling escaped quotes inside label values.
func splitSample(line string) (name string, labels []Label, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexAny(line, " \t")
	if brace == -1 || (sp != -1 && sp < brace) {
		if sp == -1 {
			return "", nil, "", fmt.Errorf("sample has no value")
		}
		return line[:sp], nil, line[sp+1:], nil
	}
	name = line[:brace]
	i := brace + 1
	for {
		// skip whitespace and trailing comma, detect closing brace
		for i < len(line) && (line[i] == ' ' || line[i] == ',') {
			i++
		}
		if i >= len(line) {
			return "", nil, "", fmt.Errorf("unterminated label set")
		}
		if line[i] == '}' {
			i++
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq == -1 {
			return "", nil, "", fmt.Errorf("label without '='")
		}
		lname := line[i : i+eq]
		if !validLabelName(lname) {
			return "", nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return "", nil, "", fmt.Errorf("label value not quoted")
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(line) {
			c := line[i]
			if c == '\\' && i+1 < len(line) {
				switch line[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, "", fmt.Errorf("bad escape \\%c in label value", line[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				closed = true
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return "", nil, "", fmt.Errorf("unterminated label value")
		}
		labels = append(labels, Label{Key: lname, Value: val.String()})
	}
	rest = strings.TrimLeft(line[i:], " \t")
	if rest == "" {
		return "", nil, "", fmt.Errorf("sample has no value")
	}
	return name, labels, rest, nil
}

// parseValue parses an exposition sample value.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	return v, nil
}

func canonicalLabels(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

func labelValue(labels []Label, key string) (string, bool) {
	for _, l := range labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

func dropLabel(labels []Label, key string) []Label {
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != key {
			out = append(out, l)
		}
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
