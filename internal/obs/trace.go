package obs

import (
	"context"
	"sort"
	"sync"
	"time"

	"rdramstream/internal/telemetry"
)

// Stage names one phase of a request's life. Spans of different stages
// may overlap: the handler's stream span covers the whole write-out while
// individual scenarios move through queued/cache/simulate underneath it.
type Stage string

const (
	// StageQueued is submit-to-batch-pickup: time a scenario sat in the
	// service queue before the dispatcher coalesced it into a batch.
	StageQueued Stage = "queued"
	// StageBatchWait is batch-pickup-to-worker-start: time between the
	// dispatcher forming the batch and a pool worker taking the task.
	StageBatchWait Stage = "batch_wait"
	// StageCache is the result-cache path: key derivation, memory/disk
	// lookup, and singleflight coordination (for followers, the whole
	// wait on the leader's run).
	StageCache Stage = "cache"
	// StageSimulate is the engine execution of a cache miss.
	StageSimulate Stage = "simulate"
	// StageStream is the handler-side response phase: waiting on results
	// in input order and writing the JSON/NDJSON body.
	StageStream Stage = "stream"
)

// maxSpansPerTrace bounds one trace's span list; a 1000-scenario sweep
// records the first spans and counts the rest as dropped.
const maxSpansPerTrace = 256

// SpanRecord is one recorded stage span, in microseconds relative to the
// trace's start so records are compact and self-aligned.
//
// rdlint:wire — span records are served by GET /v1/requests/{id} and
// exported by cmd/rdload; their field names are part of the wire format.
type SpanRecord struct {
	Stage string `json:"stage"`
	// StartUS and EndUS are microseconds since the trace started.
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Note carries optional per-span detail, e.g. a scenario label.
	Note string `json:"note,omitempty"`
}

// TraceRecord is a point-in-time snapshot of one request trace — the
// body of GET /v1/requests/{id} and the per-line unit of /debug/requests.
//
// rdlint:wire — the trace wire format; field names are pinned.
type TraceRecord struct {
	ID    string `json:"id"`
	Route string `json:"route"`
	// StartUnixUS is the trace's wall-clock start in Unix microseconds.
	StartUnixUS int64 `json:"start_unix_us"`
	// DurationUS is the request's total duration (so far, when not Done).
	DurationUS int64 `json:"duration_us"`
	// Status is the HTTP status code (0 until the response is written).
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Scenarios and CacheHits count the work the request carried.
	Scenarios int `json:"scenarios,omitempty"`
	CacheHits int `json:"cache_hits,omitempty"`
	// Done reports whether the request has finished.
	Done  bool         `json:"done"`
	Spans []SpanRecord `json:"spans"`
	// SpansDropped counts spans beyond the per-trace bound.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// Trace is one request's observability record. All methods are safe for
// concurrent use (handler and worker goroutines record into the same
// trace) and nil-receiver-safe, so call sites instrument unconditionally.
type Trace struct {
	id    string
	route string
	start time.Time
	now   func() time.Time

	mu        sync.Mutex
	end       time.Time    // guarded by mu; zero until Finish
	status    int          // guarded by mu
	errMsg    string       // guarded by mu
	scenarios int          // guarded by mu
	cacheHits int          // guarded by mu
	spans     []SpanRecord // guarded by mu
	dropped   int          // guarded by mu
}

// ID returns the trace's request ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span records one [start, end) stage span. Out-of-range or unordered
// timestamps are clamped rather than rejected — a skewed span is still
// more useful than a silently missing one.
func (t *Trace) Span(stage Stage, start, end time.Time, note string) {
	if t == nil || start.IsZero() || end.IsZero() {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return
	}
	t.spans = append(t.spans, SpanRecord{
		Stage:   string(stage),
		StartUS: start.Sub(t.start).Microseconds(),
		EndUS:   end.Sub(t.start).Microseconds(),
		Note:    note,
	})
}

// AddScenarios counts n scenarios carried by this request.
func (t *Trace) AddScenarios(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.scenarios += n
	t.mu.Unlock()
}

// AddCacheHit counts one scenario answered from the result cache.
func (t *Trace) AddCacheHit() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheHits++
	t.mu.Unlock()
}

// SetStatus records the HTTP status code of the response.
func (t *Trace) SetStatus(code int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = code
	t.mu.Unlock()
}

// SetError records a request-level error message.
func (t *Trace) SetError(msg string) {
	if t == nil || msg == "" {
		return
	}
	t.mu.Lock()
	t.errMsg = msg
	t.mu.Unlock()
}

// Finish marks the trace complete. Idempotent; the first call wins.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = now
	}
	t.mu.Unlock()
}

// Record snapshots the trace. Spans are copied; the record never aliases
// live state.
func (t *Trace) Record() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end, done := t.end, true
	if end.IsZero() {
		end, done = t.now(), false
	}
	rec := TraceRecord{
		ID:           t.id,
		Route:        t.route,
		StartUnixUS:  t.start.UnixMicro(),
		DurationUS:   end.Sub(t.start).Microseconds(),
		Status:       t.status,
		Error:        t.errMsg,
		Scenarios:    t.scenarios,
		CacheHits:    t.cacheHits,
		Done:         done,
		Spans:        append([]SpanRecord(nil), t.spans...),
		SpansDropped: t.dropped,
	}
	return rec
}

// Ring is a fixed-capacity ring of recent traces, indexed by request ID.
// Traces enter at creation (in-flight requests are visible) and the
// oldest is evicted past capacity. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	slots []*Trace          // guarded by mu; circular buffer; slots[next] is the oldest
	next  int               // guarded by mu
	byID  map[string]*Trace // guarded by mu
}

// NewRing builds a ring holding up to capacity traces (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		slots: make([]*Trace, 0, capacity),
		byID:  make(map[string]*Trace, capacity),
	}
}

// Add inserts a trace, evicting the oldest past capacity. A re-used
// request ID replaces the previous trace in the index (the latest wins)
// while the older trace ages out of the ring normally.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slots) < cap(r.slots) {
		r.slots = append(r.slots, t)
	} else {
		old := r.slots[r.next]
		if r.byID[old.id] == old {
			delete(r.byID, old.id)
		}
		r.slots[r.next] = t
		r.next = (r.next + 1) % cap(r.slots)
	}
	r.byID[t.id] = t
}

// Get looks a trace up by request ID.
func (r *Ring) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Recent snapshots the ring's traces, oldest first.
func (r *Ring) Recent() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	traces := make([]*Trace, 0, len(r.slots))
	for i := 0; i < len(r.slots); i++ {
		traces = append(traces, r.slots[(r.next+i)%len(r.slots)])
	}
	r.mu.Unlock()
	out := make([]TraceRecord, len(traces))
	for i, t := range traces {
		out[i] = t.Record()
	}
	return out
}

// Events converts trace records into telemetry events — one track per
// trace, one span event per stage span plus a whole-request span — on a
// shared timebase (microseconds since the earliest trace start), so the
// existing telemetry exporters (WriteJSONL, WriteChromeTrace) render the
// request ring exactly like they render a simulation: in Perfetto each
// request is a named thread and its stages are slices.
func Events(recs []TraceRecord) []telemetry.Event {
	if len(recs) == 0 {
		return nil
	}
	epoch := recs[0].StartUnixUS
	for _, r := range recs {
		if r.StartUnixUS < epoch {
			epoch = r.StartUnixUS
		}
	}
	events := make([]telemetry.Event, 0, len(recs)*2)
	for _, r := range recs {
		base := r.StartUnixUS - epoch
		track := r.ID + " " + r.Route
		events = append(events, telemetry.Event{
			Track: track, Name: "request", Start: base, End: base + r.DurationUS,
		})
		for _, sp := range r.Spans {
			name := sp.Stage
			if sp.Note != "" {
				name += " " + sp.Note
			}
			events = append(events, telemetry.Event{
				Track: track, Name: name, Start: base + sp.StartUS, End: base + sp.EndUS,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	return events
}

// ctxKey is the context key carrying a *Trace down the request path.
type ctxKey struct{}

// NewContext attaches a trace to a context; the service layer's job
// context carries it from the HTTP handler down to the worker running
// each scenario.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the request trace, or nil when the context
// carries none (direct service use, tests). Combined with nil-safe Trace
// methods, call sites never branch.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
