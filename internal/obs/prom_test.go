package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Prometheus exposition golden file")

// goldenRegistry builds a registry with fixed contents covering every
// family type, label escaping, multi-series families, and an empty
// histogram — the rendering surface pinned by the golden file.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("rd_http_requests_total", "HTTP requests by route and status code.",
		L("route", "POST /v1/simulate"), L("code", "200")).Add(41)
	r.Counter("rd_http_requests_total", "HTTP requests by route and status code.",
		L("route", "POST /v1/simulate"), L("code", "200")).Inc()
	r.Counter("rd_http_requests_total", "HTTP requests by route and status code.",
		L("route", "POST /v1/sweep"), L("code", "503")).Add(3)
	r.SetGauge("rd_queue_depth", "Scenarios queued but not yet dispatched.", 7)
	r.SetGauge("rd_worker_utilization", "Busy fraction of the worker pool.", 0.625)
	r.SetCounter("rd_cache_hits_total", "Result-cache hits.", 1234)
	// A label value exercising every escape: backslash, quote, newline.
	r.Counter("rd_escape_test_total", `Help with backslash \ kept verbatim.`,
		L("path", "a\\b\"c\nd")).Inc()
	h := r.Histogram("rd_stage_duration_us", "Stage latency in microseconds.",
		[]int64{100, 1000, 10000}, L("stage", "simulate"))
	for _, v := range []int64{50, 150, 150, 5000, 20000} {
		h.Observe(v)
	}
	// Registered but never observed: renders all-zero buckets.
	r.Histogram("rd_stage_duration_us", "Stage latency in microseconds.",
		[]int64{100, 1000, 10000}, L("stage", "queued"))
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden_metrics.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden output must itself be a valid exposition.
	if _, err := CheckExposition(buf.Bytes()); err != nil {
		t.Errorf("golden exposition does not validate: %v", err)
	}
}

func TestHistogramRenderCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "help", []int64{10, 20, 30})
	for _, v := range []int64{5, 15, 15, 25, 100, 200} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_us_bucket{le="10"} 1`,
		`lat_us_bucket{le="20"} 3`,
		`lat_us_bucket{le="30"} 4`,
		`lat_us_bucket{le="+Inf"} 6`,
		`lat_us_sum 360`,
		`lat_us_count 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := CheckExposition(buf.Bytes()); err != nil {
		t.Errorf("rendered histogram does not validate: %v", err)
	}
}

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("zz_total", "z", L("k", "v"))
	b := r.Counter("zz_total", "z", L("k", "v"))
	if a != b {
		t.Error("re-registration returned a different handle")
	}
	r.Counter("aa_total", "a").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Error("families not sorted by name")
	}
	// Labels render sorted by key regardless of registration order.
	r2 := NewRegistry()
	r2.Counter("m_total", "m", L("z", "1"), L("a", "2")).Inc()
	var buf2 bytes.Buffer
	if err := r2.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `m_total{a="2",z="1"} 1`) {
		t.Errorf("labels not sorted by key:\n%s", buf2.String())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a histogram did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "x")
	r.Histogram("x_total", "x", []int64{1})
}
