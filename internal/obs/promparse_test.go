package obs

import (
	"strings"
	"testing"
)

func TestCheckExpositionValid(t *testing.T) {
	src := strings.Join([]string{
		`# HELP rd_http_requests_total HTTP requests.`,
		`# TYPE rd_http_requests_total counter`,
		`rd_http_requests_total{code="200",route="POST /v1/simulate"} 42`,
		`rd_http_requests_total{code="503",route="POST /v1/sweep"} 3`,
		`# HELP rd_queue_depth Queued scenarios.`,
		`# TYPE rd_queue_depth gauge`,
		`rd_queue_depth 7`,
		`# HELP lat_us Latency.`,
		`# TYPE lat_us histogram`,
		`lat_us_bucket{le="10"} 1`,
		`lat_us_bucket{le="20"} 3`,
		`lat_us_bucket{le="+Inf"} 6`,
		`lat_us_sum 360`,
		`lat_us_count 6`,
		`escaped_total{v="a\\b\"c\nd"} 1`,
		`weird_value 1e+06`,
		``,
	}, "\n")
	n, err := CheckExposition([]byte(src))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if n != 10 {
		t.Errorf("sample count = %d, want 10", n)
	}
}

func TestCheckExpositionViolations(t *testing.T) {
	cases := map[string]struct {
		src, wantErr string
	}{
		"non-cumulative buckets": {
			src: "# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			wantErr: "not cumulative",
		},
		"missing +Inf bucket": {
			src: "# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			wantErr: "no +Inf bucket",
		},
		"+Inf disagrees with count": {
			src: "# TYPE h histogram\n" +
				"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
			wantErr: "!= _count",
		},
		"missing sum": {
			src: "# TYPE h histogram\n" +
				"h_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			wantErr: "missing _sum",
		},
		"duplicate series": {
			src:     "a_total 1\na_total 2\n",
			wantErr: "duplicate series",
		},
		"duplicate TYPE": {
			src:     "# TYPE a counter\n# TYPE a gauge\n",
			wantErr: "duplicate TYPE",
		},
		"TYPE after samples": {
			src:     "a_total 1\n# TYPE a_total counter\n",
			wantErr: "after its samples",
		},
		"bad metric name": {
			src:     "1bad 2\n",
			wantErr: "invalid metric name",
		},
		"bad label name": {
			src:     `m{1x="y"} 2` + "\n",
			wantErr: "invalid label name",
		},
		"unquoted label value": {
			src:     `m{x=y} 2` + "\n",
			wantErr: "not quoted",
		},
		"unterminated label value": {
			src:     `m{x="y} 2` + "\n",
			wantErr: "unterminated",
		},
		"bad escape": {
			src:     `m{x="a\tb"} 2` + "\n",
			wantErr: "bad escape",
		},
		"no value": {
			src:     "lonely_metric\n",
			wantErr: "no value",
		},
		"unparseable value": {
			src:     "m nope\n",
			wantErr: "unparseable value",
		},
		"unknown type": {
			src:     "# TYPE a sparkline\n",
			wantErr: "unknown metric type",
		},
		"raw sample on histogram family": {
			src:     "# TYPE h histogram\nh 5\n",
			wantErr: "raw sample",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := CheckExposition([]byte(tc.src))
			if err == nil {
				t.Fatalf("invalid exposition accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
