package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rdramstream/internal/telemetry"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format served at /metrics.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one metric label pair. Series are identified by their full
// sorted label set.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// DefaultLatencyBoundsUS are the fixed histogram bounds for wall-clock
// request/stage latencies, in microseconds: 100µs to 10s, roughly
// logarithmic. Fixed bounds keep exposition size constant and make
// snapshots from different servers mergeable.
func DefaultLatencyBoundsUS() []int64 {
	return []int64{
		100, 250, 500,
		1_000, 2_500, 5_000,
		10_000, 25_000, 50_000,
		100_000, 250_000, 500_000,
		1_000_000, 2_500_000, 5_000_000, 10_000_000,
	}
}

// metric families render in one of three exposition types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonic per-series counter handle.
type Counter struct {
	mu sync.Mutex
	v  float64 // guarded by mu
}

// Add increments the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(n float64) {
	if c == nil || n < 0 {
		return
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// set overwrites the value — the snapshot-publishing path for counters
// whose source of truth lives elsewhere (cache stats, stall aggregates).
func (c *Counter) set(v float64) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
}

// LatencyHistogram is a concurrency-safe fixed-bucket histogram series,
// wrapping telemetry.Histogram (which is single-goroutine by design, like
// the simulator that feeds it) with a mutex for the multi-goroutine
// serving path.
type LatencyHistogram struct {
	mu sync.Mutex
	h  *telemetry.Histogram // guarded by mu
}

// Observe records one sample (microseconds, by convention of the _us
// metric names).
func (l *LatencyHistogram) Observe(v int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.h.Observe(v)
	l.mu.Unlock()
}

// snapshot returns the bucket counts, total count, and sum.
func (l *LatencyHistogram) snapshot() (buckets []telemetry.HistogramBucket, n, sum int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Buckets(), l.h.N(), l.h.Sum()
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered {k="v",...} suffix, "" for unlabeled
	c      *Counter
	hist   *LatencyHistogram
	bounds []int64
}

// family is one metric name: HELP, TYPE, and its series.
type family struct {
	name, help, typ string
	series          map[string]*series
}

// Registry is a set of metric families rendered in Prometheus text
// exposition format. Registration is idempotent — Counter/Histogram
// return the existing handle for a (name, labels) pair — so hot paths
// may re-register per request; re-registering a name with a different
// exposition type panics (a programming error, caught in tests).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyLocked returns (creating if needed) the named family. The
// caller must hold r.mu — the Locked suffix is the repo-wide contract
// rdlint's lockcheck keys on.
func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// Counter returns (registering on first use) the counter series for the
// given name and label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typeCounter)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, c: &Counter{}}
		f.series[key] = s
	}
	return s.c
}

// SetGauge sets a gauge series to v, registering it on first use. Gauges
// here are snapshot-published: the caller owns the source of truth and
// pushes the current value at collection time.
func (r *Registry) SetGauge(name, help string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typeGauge)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, c: &Counter{}}
		f.series[key] = s
	}
	s.c.set(v)
}

// SetCounter sets a counter series to an externally accumulated value —
// for monotonic totals whose source of truth is another subsystem's
// consistent snapshot (cache hits, tasks run, stall cycles).
func (r *Registry) SetCounter(name, help string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.Counter(name, help, labels...).set(v)
}

// Histogram returns (registering on first use) the histogram series for
// the given name, bounds, and label set. Bounds must be ascending; all
// series of one family should share them (the first registration wins).
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *LatencyHistogram {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typeHistogram)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, hist: &LatencyHistogram{h: telemetry.MustHistogram(bounds...)}, bounds: bounds}
		f.series[key] = s
	}
	return s.hist
}

// WritePrometheus renders the registry in text exposition format:
// families sorted by name, series sorted by label set, HELP and TYPE
// before samples, histogram buckets cumulative with a trailing +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		srs := make([]*series, len(keys))
		for i, k := range keys {
			srs[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, s := range srs {
			switch f.typ {
			case typeHistogram:
				writeHistogramSeries(bw, f.name, s)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatValue(s.c.Value()))
			}
		}
	}
	return bw.Flush()
}

// writeHistogramSeries renders one histogram series: cumulative
// name_bucket lines per bound, the +Inf bucket, then name_sum and
// name_count.
func writeHistogramSeries(w io.Writer, name string, s *series) {
	buckets, n, sum := s.hist.snapshot()
	var cum int64
	for i, b := range buckets {
		if b.Overflow {
			break // the overflow bin is the +Inf bucket, rendered below
		}
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.labels, strconv.FormatInt(s.bounds[i], 10)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), n)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, s.labels, sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, n)
}

// withLE merges an le label into a rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// renderLabels renders a label set as the canonical {k="v",...} suffix,
// sorted by key, with label values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal in help text).
func escapeHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value: integers without exponent, other
// floats in Go's shortest round-trip form (both valid exposition
// floats).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
