package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges a heap
// profile at memPath; either path may be empty to skip that profile.
// It returns a stop function that flushes and closes the profiles —
// call it (usually via defer) before the process exits.
//
// This is the one -cpuprofile/-memprofile implementation shared by the
// CLI commands (rdsim, sweep, paperfigs), so profiling a slow sweep is
// always one flag away:
//
//	sweep -var length -cpuprofile cpu.out && go tool pprof cpu.out
//
// Profiling is wall-clock observability and lives here for the same
// reason the trace ring does: nothing in the deterministic simulation
// core may import it.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "obs: mem profile: %v\n", err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "obs: mem profile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
