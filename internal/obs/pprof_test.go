package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	sink := 0
	buf := make([]byte, 1<<16)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be a no-op, not a crash
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
}
