package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"rdramstream/internal/telemetry"
)

// fakeClock is a deterministic time source advancing 1ms per read.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestTraceSpansAndRecord(t *testing.T) {
	clk := newFakeClock()
	o := NewObserver(ObserverOptions{Now: clk.now})
	tr := o.NewTrace("", "POST /v1/sweep")
	if tr.ID() != "req-000001" {
		t.Fatalf("generated id = %q, want req-000001", tr.ID())
	}
	start := tr.start
	tr.Span(StageQueued, start, start.Add(2*time.Millisecond), "")
	tr.Span(StageSimulate, start.Add(2*time.Millisecond), start.Add(7*time.Millisecond), "daxpy/PI")
	tr.AddScenarios(3)
	tr.AddCacheHit()
	tr.SetStatus(200)
	for i := 0; i < 10; i++ {
		clk.now() // advance past the last span before finishing
	}
	tr.Finish()

	rec := tr.Record()
	if !rec.Done || rec.Status != 200 || rec.Scenarios != 3 || rec.CacheHits != 1 {
		t.Errorf("record = %+v", rec)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.Spans))
	}
	if rec.Spans[0].Stage != "queued" || rec.Spans[0].StartUS != 0 || rec.Spans[0].EndUS != 2000 {
		t.Errorf("queued span = %+v", rec.Spans[0])
	}
	if rec.Spans[1].Note != "daxpy/PI" || rec.Spans[1].EndUS != 7000 {
		t.Errorf("simulate span = %+v", rec.Spans[1])
	}
	if rec.DurationUS <= 0 {
		t.Errorf("duration = %d", rec.DurationUS)
	}
	// Every span must lie within the trace bounds.
	for _, sp := range rec.Spans {
		if sp.StartUS < 0 || sp.EndUS > rec.DurationUS {
			t.Errorf("span %+v outside trace duration %d", sp, rec.DurationUS)
		}
	}
}

func TestTraceSpanBound(t *testing.T) {
	clk := newFakeClock()
	o := NewObserver(ObserverOptions{Now: clk.now})
	tr := o.NewTrace("", "POST /v1/sweep")
	at := tr.start
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.Span(StageQueued, at, at.Add(time.Microsecond), "")
	}
	rec := tr.Record()
	if len(rec.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want bound %d", len(rec.Spans), maxSpansPerTrace)
	}
	if rec.SpansDropped != 10 {
		t.Errorf("dropped = %d, want 10", rec.SpansDropped)
	}
}

func TestRequestIDAcceptedAndSanitized(t *testing.T) {
	o := NewObserver(ObserverOptions{Now: newFakeClock().now})
	if got := o.NewTrace("client-id_1.x", "GET /healthz").ID(); got != "client-id_1.x" {
		t.Errorf("valid client id rewritten to %q", got)
	}
	for _, bad := range []string{"has space", "quo\"te", strings.Repeat("x", 65), "new\nline", "ünïcode"} {
		if got := o.NewTrace(bad, "GET /healthz").ID(); !strings.HasPrefix(got, "req-") {
			t.Errorf("invalid id %q accepted as %q", bad, got)
		}
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	clk := newFakeClock()
	o := NewObserver(ObserverOptions{RingSize: 4, Now: clk.now})
	for i := 0; i < 10; i++ {
		o.NewTrace(fmt.Sprintf("id-%d", i), "GET /healthz").Finish()
	}
	if _, ok := o.Ring.Get("id-0"); ok {
		t.Error("evicted trace still indexed")
	}
	if _, ok := o.Ring.Get("id-9"); !ok {
		t.Error("latest trace not indexed")
	}
	recent := o.Ring.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(recent))
	}
	for i, rec := range recent {
		if want := fmt.Sprintf("id-%d", 6+i); rec.ID != want {
			t.Errorf("recent[%d] = %s, want %s (oldest first)", i, rec.ID, want)
		}
	}
}

func TestRingReusedIDLatestWins(t *testing.T) {
	o := NewObserver(ObserverOptions{RingSize: 4, Now: newFakeClock().now})
	o.NewTrace("dup", "GET /healthz")
	second := o.NewTrace("dup", "POST /v1/simulate")
	got, ok := o.Ring.Get("dup")
	if !ok || got != second {
		t.Error("reused request ID does not resolve to the latest trace")
	}
}

func TestContextRoundTrip(t *testing.T) {
	o := NewObserver(ObserverOptions{Now: newFakeClock().now})
	tr := o.NewTrace("", "POST /v1/simulate")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace does not round-trip through context")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context yields a trace")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	tr.Span(StageQueued, time.Now(), time.Now(), "")
	tr.AddScenarios(1)
	tr.AddCacheHit()
	tr.SetStatus(500)
	tr.SetError("boom")
	tr.Finish()
	_ = tr.Record()
	_ = tr.ID()
	var r *Ring
	r.Add(nil)
	if _, ok := r.Get("x"); ok {
		t.Error("nil ring found a trace")
	}
	_ = r.Recent()
	var o *Observer
	_ = o.Now()
	if o.NewTrace("x", "y") != nil {
		t.Error("nil observer built a trace")
	}
	var reg *Registry
	reg.SetGauge("x", "y", 1)
	reg.SetCounter("x", "y", 1)
	_ = reg.Counter("x", "y")
	_ = reg.Histogram("x", "y", []int64{1})
	var c *Counter
	c.Add(1)
	c.Inc()
	_ = c.Value()
	var h *LatencyHistogram
	h.Observe(1)
}

func TestEventsExport(t *testing.T) {
	clk := newFakeClock()
	o := NewObserver(ObserverOptions{Now: clk.now})
	for i := 0; i < 2; i++ {
		tr := o.NewTrace("", "POST /v1/simulate")
		tr.Span(StageCache, tr.start, tr.start.Add(time.Millisecond), "")
		tr.Finish()
	}
	recs := o.Ring.Recent()
	events := Events(recs)
	// one request span + one stage span per trace
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	for _, ev := range events {
		if ev.Start < 0 || ev.End < ev.Start {
			t.Errorf("event %+v has bad bounds", ev)
		}
	}

	// The telemetry exporters must accept them unchanged.
	var jsonl bytes.Buffer
	if err := telemetry.WriteJSONL(&jsonl, events); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(jsonl.String()), "\n") + 1; lines != 4 {
		t.Errorf("JSONL lines = %d, want 4", lines)
	}
	var chrome bytes.Buffer
	if err := telemetry.WriteChromeTrace(&chrome, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace carries no events")
	}
	if Events(nil) != nil {
		t.Error("Events(nil) != nil")
	}
}
