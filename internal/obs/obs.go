// Package obs is the serving stack's request-level observability layer:
// request traces with per-stage spans, a bounded in-memory trace ring,
// and a Prometheus-style metrics registry built on telemetry.Histogram.
//
// It complements internal/telemetry, which observes *simulated* time at
// cycle granularity inside one run. obs observes *wall-clock* time across
// the request path — HTTP decode, queue wait, batch formation, cache
// lookup, singleflight, engine execution, response streaming — where the
// determinism rules of the simulation core do not apply: obs is
// deliberately outside the rdlint determinism analyzer's banned set
// (rdram/smc/natorder/engine/sim/fault/resultcache), and nothing in this
// package may be imported by those packages. Wall timing lives here and
// in internal/service; simulated outcomes never depend on it.
//
// Three pieces compose:
//
//   - Trace / Ring (trace.go): one Trace per HTTP request, identified by
//     a deterministic-format request ID (client-supplied X-Request-ID or
//     generated "req-%06d"), carrying bounded per-stage spans. Finished
//     and in-flight traces live in a fixed-capacity ring, exportable as
//     JSON, JSONL, or Chrome trace via the telemetry exporters.
//   - Registry (prom.go): monotonic counters, gauges, and fixed-bucket
//     latency histograms with label sets, rendered in Prometheus text
//     exposition format (format=0.0.4).
//   - CheckExposition (promparse.go): a dependency-free validity checker
//     for the exposition format — the promtool stand-in used by tests,
//     CI, and cmd/rdload.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ObserverOptions sizes an Observer. The zero value is usable.
type ObserverOptions struct {
	// RingSize bounds the trace ring (default DefaultRingSize).
	RingSize int
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// DefaultRingSize is the default trace-ring capacity.
const DefaultRingSize = 256

// Observer bundles one server's observability state: the metrics
// registry, the trace ring, the request-ID sequence, and the clock every
// timing site shares (so tests can inject a fake one).
type Observer struct {
	// Reg is the metrics registry served at /metrics.
	Reg *Registry
	// Ring holds the recent request traces.
	Ring *Ring

	now func() time.Time
	seq atomic.Int64
}

// NewObserver builds an Observer.
func NewObserver(o ObserverOptions) *Observer {
	if o.RingSize <= 0 {
		o.RingSize = DefaultRingSize
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Observer{
		Reg:  NewRegistry(),
		Ring: NewRing(o.RingSize),
		now:  o.Now,
	}
}

// Now reads the observer's clock. Nil-safe: a nil observer falls back to
// time.Now so uninstrumented services still get sane timestamps.
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Now()
	}
	return o.now()
}

// NewTrace starts a trace for one request and registers it in the ring.
// requested is the client-supplied X-Request-ID; when empty or invalid
// (see SanitizeRequestID) a sequential "req-%06d" ID is generated. The ID
// format is deterministic — no randomness, no clock bits — so a replayed
// request sequence yields the same IDs.
func (o *Observer) NewTrace(requested, route string) *Trace {
	if o == nil {
		return nil
	}
	id := SanitizeRequestID(requested)
	if id == "" {
		id = fmt.Sprintf("req-%06d", o.seq.Add(1))
	}
	t := &Trace{id: id, route: route, start: o.Now(), now: o.now}
	o.Ring.Add(t)
	return t
}

// maxRequestIDLen bounds accepted client request IDs.
const maxRequestIDLen = 64

// SanitizeRequestID validates a client-supplied request ID: at most 64
// characters drawn from [A-Za-z0-9._-]. Anything else returns "" (caller
// generates an ID instead) so header junk cannot pollute metrics labels
// or trace URLs.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return ""
		}
	}
	return id
}
