package engine

import (
	"sort"
	"sync"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
)

// Options is the controller-independent configuration a scenario hands to
// whichever controller it selects. Fields a controller does not understand
// are ignored (e.g. FIFODepth for the natural-order controller).
type Options struct {
	// Scheme pairs the interleaving with its precharge policy as in the
	// paper: CLI closed-page, PI open-page.
	Scheme addrmap.Scheme
	// LineWords is the cacheline size in 64-bit words.
	LineWords int
	// FIFODepth is the per-stream SBU depth for FIFO-based controllers.
	FIFODepth int
	// Policy selects a controller-specific scheduling policy by ordinal
	// (e.g. the SMC's round-robin / bank-aware / hit-first).
	Policy int
	// SpeculateActivate enables the SMC's page-crossing extension.
	SpeculateActivate bool
	// WriteAllocate selects fetch-on-store-miss for cacheline controllers.
	WriteAllocate bool
	// Cache, when non-nil, puts a real set-associative cache in front of
	// controllers that support one.
	Cache *cache.Config
	// Outstanding caps the pipelined transactions in flight (0 = device
	// limit).
	Outstanding int
	// Telemetry, when non-nil, instruments the run (see Attach).
	Telemetry *telemetry.Collector
	// WatchdogLimit is the forward-progress bound, in cycles: a controller
	// loop that retires no useful word for this long aborts with a
	// *WatchdogError instead of spinning. Zero means DefaultWatchdogLimit;
	// only fault-injected devices can normally trip it.
	WatchdogLimit int64
}

// Controller is one access-ordering policy: it drives a kernel's accesses
// against a device and reports the common Result. Implementations must be
// safe for concurrent Run calls on distinct devices — the sweep executor
// runs scenarios in parallel.
type Controller interface {
	// Name is the registry key (e.g. "natural-order", "smc").
	Name() string
	// Run simulates the kernel over the device, reading and writing device
	// storage functionally so callers can verify the computation.
	Run(dev *rdram.Device, k *stream.Kernel, opt Options) (Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Controller{}
)

// Register adds a controller under its name; registering the same name
// twice panics (two policies claiming one name is a programming error).
// Controller packages self-register from init, so importing a controller
// package is what makes its name resolvable.
func Register(c Controller) {
	regMu.Lock()
	defer regMu.Unlock()
	name := c.Name()
	if _, dup := registry[name]; dup {
		panic("engine: duplicate controller " + name)
	}
	registry[name] = c
}

// Lookup resolves a registered controller by name.
func Lookup(name string) (Controller, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// Names lists the registered controllers, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
