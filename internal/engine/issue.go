package engine

import (
	"fmt"

	"rdramstream/internal/rdram"
)

// MaxIssueAttempts bounds the retry loop in Issue: a device that rejects
// the same access this many times in a row is treated as wedged and the
// failure surfaces as a *RejectError instead of an unbounded spin.
const MaxIssueAttempts = 8

// RejectError reports an access the device refused MaxIssueAttempts times
// under fault injection.
type RejectError struct {
	Bank, Row, Col int
	Write          bool
	At             int64 // cycle of the first presentation
	Attempts       int
}

func (e *RejectError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("engine: %s bank=%d row=%d col=%d rejected %d times starting at cycle %d",
		op, e.Bank, e.Row, e.Col, e.Attempts, e.At)
}

// Issue presents req to the device, retrying with bounded exponential
// backoff when the fault injector rejects it: the first retry waits one
// packet time (t_PACK), doubling per attempt. This is the straight-line
// controllers' fault path — controllers with their own scheduler (the SMC)
// instead track per-FIFO retry times so rejections don't block unrelated
// streams. On a device with no injector Attempt never rejects and Issue is
// exactly Do.
func Issue(dev *rdram.Device, at int64, req rdram.Request) (rdram.Result, error) {
	backoff := int64(dev.Config().Timing.TPack)
	if backoff <= 0 {
		backoff = 4
	}
	t := at
	for attempt := 1; attempt <= MaxIssueAttempts; attempt++ {
		if res, ok := dev.Attempt(t, req); ok {
			return res, nil
		}
		t += backoff
		backoff *= 2
	}
	return rdram.Result{}, &RejectError{
		Bank: req.Bank, Row: req.Row, Col: req.Col, Write: req.Write,
		At: at, Attempts: MaxIssueAttempts,
	}
}

// DefaultWatchdogLimit is the forward-progress bound used when
// Options.WatchdogLimit is zero: 2^17 cycles (~330 µs of simulated time) is
// orders of magnitude longer than any legitimate gap between retired words
// in these workloads, yet small enough that a wedged run aborts promptly.
const DefaultWatchdogLimit = 1 << 17

// WatchdogError reports a controller loop that made no forward progress for
// longer than the configured limit. Dump carries a controller-specific
// state snapshot (FIFO occupancy, device stats) for diagnosis.
type WatchdogError struct {
	At           int64 // cycle at which the watchdog fired
	LastProgress int64 // cycle of the last useful word retired
	Limit        int64
	Dump         string
}

func (e *WatchdogError) Error() string {
	msg := fmt.Sprintf("engine: no forward progress for %d cycles (last useful word at cycle %d, aborted at %d, limit %d)",
		e.At-e.LastProgress, e.LastProgress, e.At, e.Limit)
	if e.Dump != "" {
		msg += "\n" + e.Dump
	}
	return msg
}

// Watchdog aborts controller loops that stop retiring useful words — the
// guard that turns a fault-injected livelock (or a future scheduling bug)
// into a diagnosable error instead of a hang. A nil Watchdog never fires.
type Watchdog struct {
	limit int64
	last  int64
}

// NewWatchdog builds a watchdog with the given forward-progress limit;
// limit <= 0 selects DefaultWatchdogLimit.
func NewWatchdog(limit int64) *Watchdog {
	if limit <= 0 {
		limit = DefaultWatchdogLimit
	}
	return &Watchdog{limit: limit}
}

// Progress records useful work completed at cycle at.
func (w *Watchdog) Progress(at int64) {
	if w == nil {
		return
	}
	if at > w.last {
		w.last = at
	}
}

// Check returns a *WatchdogError if the loop has advanced to cycle at
// without progress for longer than the limit. dump, when non-nil, is called
// only on failure to capture controller state.
func (w *Watchdog) Check(at int64, dump func() string) error {
	if w == nil || at-w.last <= w.limit {
		return nil
	}
	var d string
	if dump != nil {
		d = dump()
	}
	return &WatchdogError{At: at, LastProgress: w.last, Limit: w.limit, Dump: d}
}
