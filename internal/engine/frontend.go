package engine

import (
	"rdramstream/internal/cpu"
	"rdramstream/internal/stream"
)

// Unscheduled marks an event with no scheduled time yet: a FIFO head the
// controller has not fetched, a write slot no drain has freed.
const Unscheduled = int64(-1)

// Ports is the controller side the CPU front-end pushes against: per-stream
// availability of read data and write slots, and the transfer of elements
// once an access completes. Streams are indexed as in the kernel (reads
// first, then writes).
type Ports interface {
	// ReadAvail returns the cycle the next element of read stream i is (or
	// will be) available, or Unscheduled if the controller has not
	// scheduled it yet.
	ReadAvail(i int) int64
	// WriteFree returns the earliest cycle a slot frees for write stream i,
	// or Unscheduled if the controller has not scheduled the freeing drain.
	WriteFree(i int) int64
	// PopRead consumes the head element of read stream i, completing at
	// done, and returns its value.
	PopRead(i int, done int64) uint64
	// PushWrite delivers a store of value v to write stream i at done.
	PushWrite(i int, v uint64, done int64)
}

// FrontEnd is the paper's processor model (§4.1), shared by every
// decoupled controller: it walks the kernel's accesses in natural order at
// the matched bandwidth of one 64-bit element per xfer cycles, with all
// computation infinitely fast, blocking whenever the controller has not
// made the next element's data or slot available.
type FrontEnd struct {
	walker *cpu.Walker
	xfer   int64
	// pending is held by value: taking the address of the walker's result
	// forced one heap allocation per access (a third of the hot loop's
	// allocations), and the access is plain data.
	pending    cpu.Access
	hasPending bool
	time       int64
	stall      int64
	done       bool
}

// NewFrontEnd validates the kernel and builds a front-end that completes
// one element access per xfer cycles.
func NewFrontEnd(k *stream.Kernel, xfer int64) (*FrontEnd, error) {
	w, err := cpu.NewWalker(k)
	if err != nil {
		return nil, err
	}
	return &FrontEnd{walker: w, xfer: xfer}, nil
}

// Time is the completion time of the last processed access.
func (fe *FrontEnd) Time() int64 { return fe.time }

// StallCycles is the total time the processor spent blocked on the
// controller (empty read FIFO, full write FIFO).
func (fe *FrontEnd) StallCycles() int64 { return fe.stall }

// Done reports whether every access of the kernel has been processed.
func (fe *FrontEnd) Done() bool { return fe.done }

// Advance processes the processor's natural-order accesses whose
// completion does not exceed limit, stopping early when the controller has
// not scheduled the data or slot the next access needs.
// rdlint:hotpath
func (fe *FrontEnd) Advance(limit int64, p Ports) {
	for {
		if !fe.hasPending {
			a, ok := fe.walker.Next()
			if !ok {
				fe.done = true
				return
			}
			fe.pending, fe.hasPending = a, true
		}
		a := &fe.pending
		var wait int64
		if a.Write {
			wait = p.WriteFree(a.Stream)
		} else {
			wait = p.ReadAvail(a.Stream)
		}
		if wait == Unscheduled {
			return // blocked until the controller schedules it
		}
		start := max(fe.time, wait)
		done := start + fe.xfer
		if done > limit {
			return
		}
		fe.stall += start - fe.time
		fe.time = done
		if a.Write {
			p.PushWrite(a.Stream, a.Value, done)
		} else {
			fe.walker.SupplyRead(p.PopRead(a.Stream, done))
		}
		fe.hasPending = false
	}
}

// NextEvent returns the completion time of the processor's next access, if
// it is schedulable, or Unscheduled if the CPU is waiting on the
// controller (or finished).
// rdlint:hotpath
func (fe *FrontEnd) NextEvent(p Ports) int64 {
	if !fe.hasPending {
		// Advance always leaves a pending access unless the walk is done.
		return Unscheduled
	}
	a := &fe.pending
	var wait int64
	if a.Write {
		wait = p.WriteFree(a.Stream)
	} else {
		wait = p.ReadAvail(a.Stream)
	}
	if wait == Unscheduled {
		return Unscheduled
	}
	return max(fe.time, wait) + fe.xfer
}
