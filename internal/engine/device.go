package engine

import (
	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
)

// Peek reads one word from device storage through the mapper without
// advancing time — the functional read every controller uses to merge
// unmodified words into line- or packet-granularity writes.
func Peek(dev *rdram.Device, m *addrmap.Mapper, addr int64) uint64 {
	loc := m.Map(addr)
	return dev.PeekWord(loc.Bank, loc.Row, loc.Col, loc.Word)
}

// StoreValues functionally executes the kernel over a shadow of device
// memory and returns every word it stores — the data a timing controller
// transmits on its write transactions. Reads hit the shadow first so
// loop-carried values are seen; unwritten addresses read current device
// contents.
func StoreValues(dev *rdram.Device, m *addrmap.Mapper, k *stream.Kernel) map[int64]uint64 {
	// At most iterations × write-streams distinct words are stored; sizing
	// the maps up front avoids rehash churn on long streams.
	n := k.Iterations() * (len(k.Streams) - k.ReadStreams())
	shadow := make(map[int64]uint64, n)
	vals := make(map[int64]uint64, n)
	k.Replay(
		func(addr int64) uint64 {
			if v, ok := shadow[addr]; ok {
				return v
			}
			return Peek(dev, m, addr)
		},
		func(addr int64, v uint64) {
			shadow[addr] = v
			vals[addr] = v
		},
	)
	return vals
}

// Attach wires a telemetry collector to the device and declares the
// controller's default idle cause, returning the controller probe (nil
// collector returns nil, and the nil-safe probes make that free). Any
// controller built on the engine gets device counters and stall
// attribution through this one call.
func Attach(dev *rdram.Device, col *telemetry.Collector, idle telemetry.StallCause) *telemetry.ControllerProbe {
	if col == nil {
		return nil
	}
	dev.Telemetry = col.Device
	col.Device.SetIdleCause(idle)
	return col.Controller
}

// Window models the device's bounded pipeline of outstanding transactions
// (the Direct RDRAM supports four): a transaction may not be presented
// before the one `limit` positions back has completed. Completion times
// live in a fixed ring of limit entries — only the last limit matter, and
// the append-forever slice this replaced grew with the run length.
type Window struct {
	done []int64 // ring: done[n%limit] completed transaction n-limit
	n    int     // transactions completed so far
}

// NewWindow builds a window admitting up to limit concurrent transactions;
// limit must be positive.
func NewWindow(limit int) *Window {
	if limit <= 0 {
		panic("engine: Window limit must be positive")
	}
	return &Window{done: make([]int64, limit)}
}

// Admit returns the earliest time a new transaction may be presented, no
// earlier than at.
func (w *Window) Admit(at int64) int64 {
	if w.n >= len(w.done) {
		at = max(at, w.done[w.n%len(w.done)])
	}
	return at
}

// Complete records an admitted transaction's completion time. Calls must
// be in admission order.
func (w *Window) Complete(t int64) {
	w.done[w.n%len(w.done)] = t
	w.n++
}
