package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestMapCtxCancellation: once the context is canceled, no further job
// starts, jobs already in flight finish, and the pool returns the context
// error instead of leaking goroutines.
func TestMapCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		gate := make(chan struct{})
		const n = 64
		_, err := MapCtx(ctx, workers, n, func(i int) (int, error) {
			started.Add(1)
			if i == 0 {
				// Cancel from inside the first job, then let it finish:
				// in-flight work completes, queued work does not start.
				cancel()
				close(gate)
			}
			<-gate
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := started.Load(); got >= n {
			t.Errorf("workers=%d: all %d jobs ran despite cancellation", workers, got)
		}
		cancel()
	}
}

// TestMapCtxDoneUpFront: a context canceled before MapCtx is called runs
// nothing at all.
func TestMapCtxDoneUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(ctx, workers, 16, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d jobs ran under a pre-canceled context", ran.Load())
	}
}

// TestMapCtxBackgroundMatchesMap: with an un-canceled context, MapCtx is
// exactly Map.
func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	a, err := Map(4, 10, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapCtx(context.Background(), 4, 10, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: Map %d != MapCtx %d", i, a[i], b[i])
		}
	}
}
