package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rdramstream/internal/rdram"
)

// scriptedInjector rejects the first rejects presentations, then accepts
// everything with no jitter.
type scriptedInjector struct {
	rejects int
	seen    int
}

func (s *scriptedInjector) OnAccess(at int64, bank int, write bool) rdram.AccessFault {
	s.seen++
	if s.seen <= s.rejects {
		return rdram.AccessFault{Reject: true}
	}
	return rdram.AccessFault{}
}

func (s *scriptedInjector) RefreshGap(base int64) int64 { return base }

func TestIssueCleanDeviceMatchesDo(t *testing.T) {
	mk := func() *rdram.Device { return rdram.NewDevice(rdram.DefaultConfig()) }
	a, b := mk(), mk()
	req := rdram.Request{Bank: 2, Row: 5, Col: 7}
	want := a.Do(100, req)
	got, err := Issue(b, 100, req)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Issue = %+v, Do = %+v", got, want)
	}
}

func TestIssueRetriesWithBackoff(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	dev.Faults = &scriptedInjector{rejects: 3}
	res, err := Issue(dev, 0, rdram.Request{Bank: 0, Row: 0, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Three rejections back off t_PACK + 2·t_PACK + 4·t_PACK = 28 cycles,
	// so the accepted presentation happens at cycle 28.
	tp := int64(dev.Config().Timing.TPack)
	wantAt := tp + 2*tp + 4*tp
	if res.ColIssue < wantAt {
		t.Errorf("accepted presentation at %d, want >= %d after backoff", res.ColIssue, wantAt)
	}
	if dev.Stats().Rejections != 3 {
		t.Errorf("Rejections = %d, want 3", dev.Stats().Rejections)
	}
}

func TestIssueGivesUp(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	dev.Faults = &scriptedInjector{rejects: 1 << 30}
	_, err := Issue(dev, 50, rdram.Request{Bank: 3, Row: 1, Col: 2, Write: true})
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if re.Attempts != MaxIssueAttempts || re.Bank != 3 || !re.Write || re.At != 50 {
		t.Errorf("RejectError = %+v", re)
	}
	if !strings.Contains(re.Error(), "bank=3") {
		t.Errorf("error text lacks bank: %q", re.Error())
	}
}

func TestWatchdog(t *testing.T) {
	var nilWD *Watchdog
	nilWD.Progress(5)
	if err := nilWD.Check(1<<40, nil); err != nil {
		t.Fatalf("nil watchdog fired: %v", err)
	}
	w := NewWatchdog(100)
	w.Progress(50)
	if err := w.Check(150, nil); err != nil {
		t.Fatalf("fired within limit: %v", err)
	}
	dumped := false
	err := w.Check(151, func() string { dumped = true; return "fifo[0]: empty" })
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if !dumped || we.Dump != "fifo[0]: empty" {
		t.Errorf("dump not captured: %+v", we)
	}
	if we.LastProgress != 50 || we.At != 151 || we.Limit != 100 {
		t.Errorf("WatchdogError = %+v", we)
	}
	if !strings.Contains(we.Error(), "fifo[0]: empty") {
		t.Errorf("error text lacks dump: %q", we.Error())
	}
	if NewWatchdog(0).limit != DefaultWatchdogLimit {
		t.Error("zero limit did not select default")
	}
}

// TestMapPanicIsolated: a panicking job becomes a *PanicError naming its
// index; the pool survives at every worker count.
func TestMapPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := Map(workers, 12, func(i int) (int, error) {
			if i == 5 {
				panic("boom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 5 || pe.Value != "boom" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = index %d value %v stack %d bytes",
				workers, pe.Index, pe.Value, len(pe.Stack))
		}
	}
}

// TestMapLowestFailureWins: with both a panic and a plain error in flight,
// the lowest failing index is reported at every worker count, even when the
// higher-index failure completes first.
func TestMapLowestFailureWins(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		_, err := Map(workers, 16, func(i int) (int, error) {
			switch i {
			case 4:
				time.Sleep(2 * time.Millisecond) // lose the race on purpose
				panic(i)
			case 9:
				return 0, errors.New("late failure")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 4 {
			t.Errorf("workers=%d: err = %v, want panic at index 4", workers, err)
		}
	}
}

// TestMapEarlyCancel: after the first failure, still-queued jobs are
// skipped rather than run to completion.
func TestMapEarlyCancel(t *testing.T) {
	const n = 1000
	var executed atomic.Int64
	_, err := Map(4, n, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		time.Sleep(200 * time.Microsecond)
		return i, nil
	})
	if err == nil || err.Error() != "fail fast" {
		t.Fatalf("err = %v", err)
	}
	if got := executed.Load(); got > n/2 {
		t.Errorf("%d of %d jobs executed after early failure; cancellation not effective", got, n)
	}
}
