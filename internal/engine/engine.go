// Package engine is the shared controller layer the paper's comparison is
// built on: one device model (internal/rdram), many access-ordering
// policies. It holds everything the controller implementations used to
// duplicate privately —
//
//   - the common Result type and the bandwidth math (PercentPeak,
//     PercentAttainable, EffectiveMBps) computed in exactly one place;
//   - the matched-bandwidth CPU front-end (FrontEnd) that walks a kernel's
//     accesses in natural order at one element per t_PACK/w_p cycles;
//   - the outstanding-transaction pipeline window (Window) of the
//     conventional controllers;
//   - functional helpers (Peek, StoreValues) for reading device storage
//     and computing a kernel's store image;
//   - the telemetry attachment point (Attach), so any controller built on
//     the engine gets stall attribution without touching device internals;
//   - a registry of named controllers (Register/Lookup), the extension
//     point for new scheduling policies: implement Controller, register it,
//     and sim.Run/cmd/rdsim reach it by name; and
//   - a bounded worker pool (Map/RunAll) that the scenario and figure
//     sweeps run on, with deterministic, input-ordered results.
//
// The packages internal/natorder, internal/smc, and internal/workload
// implement Controller on top of this layer; internal/fpm shares the
// bandwidth math for its fast-page-mode system.
package engine

import (
	"rdramstream/internal/rdram"
)

// Result is the common outcome every controller reports. Controllers fill
// the raw counters (Cycles, UsefulWords, TransferredWords, Device, and any
// controller-specific extras) and call Finalize, which derives the
// bandwidth figures identically for every policy.
type Result struct {
	// Cycles is the total simulated time in 400 MHz interface cycles.
	Cycles int64 `json:"Cycles"`
	// UsefulWords is the number of stream elements the processor consumed
	// or produced (iterations × streams).
	UsefulWords int64 `json:"UsefulWords"`
	// TransferredWords counts every word moved on the data bus, useful or
	// not (whole packets, whole cachelines).
	TransferredWords int64 `json:"TransferredWords"`
	// PercentPeak is the effective bandwidth as a percentage of the
	// device's peak, counting only useful words (the paper's Eq 5.1).
	PercentPeak float64 `json:"PercentPeak"`
	// PercentAttainable rescales PercentPeak by the densest packet packing
	// the access pattern permits (Figure 9's y-axis: non-unit strides can
	// use at most one word of each two-word packet).
	PercentAttainable float64 `json:"PercentAttainable"`
	// EffectiveMBps is the useful data rate in MB/s (one cycle = 2.5 ns).
	EffectiveMBps float64 `json:"EffectiveMBps"`
	// CPUStallCycles is the time the processor spent blocked on the
	// controller (empty read FIFO or full write FIFO; zero for controllers
	// without a decoupled front-end).
	CPUStallCycles int64 `json:"CPUStallCycles"`
	// Device holds the device's operation counters.
	Device rdram.Stats `json:"Device"`
	// CacheHitRate and DirtyWritebacks are populated by controllers that
	// model a real processor cache in front of the memory.
	CacheHitRate    float64 `json:"CacheHitRate"`
	DirtyWritebacks int64   `json:"DirtyWritebacks"`
}

// nsPerCycle is the Direct RDRAM interface clock period (400 MHz).
const nsPerCycle = 2.5

// PercentOfPeak is the paper's Eq 5.1: the bandwidth of `words` words
// moved in `cycles` cycles, as a percentage of a device whose peak rate is
// one word per peakCyclesPerWord cycles.
func PercentOfPeak(words, cycles int64, peakCyclesPerWord float64) float64 {
	if cycles <= 0 {
		return 0
	}
	return 100 * float64(words) * peakCyclesPerWord / float64(cycles)
}

// Finalize derives PercentPeak, PercentAttainable, and EffectiveMBps from
// the raw counters. Every controller calls it; no bandwidth math lives
// anywhere else.
func (r *Result) Finalize(peakCyclesPerWord float64) {
	if r.Cycles <= 0 {
		return
	}
	r.PercentPeak = PercentOfPeak(r.UsefulWords, r.Cycles, peakCyclesPerWord)
	r.PercentAttainable = r.PercentPeak
	if r.TransferredWords > 0 {
		if frac := float64(r.UsefulWords) / float64(r.TransferredWords); frac < 1 {
			r.PercentAttainable = r.PercentPeak / frac
		}
	}
	r.EffectiveMBps = float64(r.UsefulWords*8) / (float64(r.Cycles) * nsPerCycle) * 1000
}
