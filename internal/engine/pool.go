package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn for every index in [0, n) on a bounded worker pool and
// returns the results in input order — parallel execution is an
// implementation detail, never visible in the output. workers <= 0 uses
// GOMAXPROCS; one worker degenerates to a plain loop, so serial and
// parallel runs of deterministic jobs are byte-identical. If any job
// fails, the error of the lowest failing index is returned (again
// independent of scheduling) and the results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunAll executes self-contained simulation jobs — each typically closing
// over its own scenario and building its own device — on the worker pool,
// returning the results in input order. It is the engine-level sweep
// executor; internal/sim wraps it for Scenario lists.
func RunAll(workers int, jobs []func() (Result, error)) ([]Result, error) {
	return Map(workers, len(jobs), func(i int) (Result, error) { return jobs[i]() })
}
