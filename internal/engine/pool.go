package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a job panic converted into an error by Map, so one
// panicking scenario fails its own row instead of killing the whole sweep
// process. Index is the job's input position; callers that know what the
// index means (internal/sim) wrap it with the scenario's name.
type PanicError struct {
	Index int
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// safeCall runs one job with panic recovery.
func safeCall[T any](i int, fn func(i int) (T, error)) (res T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map runs fn for every index in [0, n) on a bounded worker pool and
// returns the results in input order — parallel execution is an
// implementation detail, never visible in the output. workers <= 0 uses
// GOMAXPROCS; one worker degenerates to a plain loop, so serial and
// parallel runs of deterministic jobs are byte-identical.
//
// Failure handling: a panicking job is converted into a *PanicError rather
// than crashing the pool. After any failure the pool cancels early —
// still-queued jobs with indices above the failing one are skipped — but
// every job at a lower index always runs, so the returned error is that of
// the lowest failing index regardless of worker count or scheduling. On
// error the results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: once ctx is done, no further job starts
// — a job index whose turn comes after cancellation fails with the
// context's error instead of running — while jobs already in flight finish
// normally. The cancellation boundary is the job, so callers that abandon
// a sweep (server-side request timeouts, client disconnects) reclaim the
// pool after at most one in-flight job per worker rather than leaking a
// goroutine per remaining scenario.
//
// Error determinism is the same as Map's: the returned error is that of
// the lowest failing index, which after cancellation is the context error
// of the first job that observed it.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var err error
			if results[i], err = safeCall(i, fn); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	var next atomic.Int64
	// minFail is the lowest failing index seen so far; n means "none".
	// Workers skip queued jobs above it but still run every lower index, so
	// the winning error is deterministic.
	var minFail atomic.Int64
	minFail.Store(int64(n))
	fail := func(i int, err error) {
		errs[i] = err
		for {
			cur := minFail.Load()
			if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > minFail.Load() {
					continue // cancelled: a lower index already failed
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					continue
				}
				var err error
				results[i], err = safeCall(i, fn)
				if err == nil {
					continue
				}
				fail(i, err)
			}
		}()
	}
	wg.Wait()
	if mf := minFail.Load(); mf < int64(n) {
		return nil, errs[mf]
	}
	return results, nil
}

// RunAll executes self-contained simulation jobs — each typically closing
// over its own scenario and building its own device — on the worker pool,
// returning the results in input order. It is the engine-level sweep
// executor; internal/sim wraps it for Scenario lists.
func RunAll(workers int, jobs []func() (Result, error)) ([]Result, error) {
	return Map(workers, len(jobs), func(i int) (Result, error) { return jobs[i]() })
}
