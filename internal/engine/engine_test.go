package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

func TestFinalize(t *testing.T) {
	r := Result{Cycles: 2048, UsefulWords: 1024, TransferredWords: 2048}
	r.Finalize(1)
	if r.PercentPeak != 50 {
		t.Errorf("PercentPeak = %v, want 50", r.PercentPeak)
	}
	// Half the transferred words were useful, so the pattern could at best
	// double the useful rate: attainable rescales by 1/frac.
	if r.PercentAttainable != 100 {
		t.Errorf("PercentAttainable = %v, want 100", r.PercentAttainable)
	}
	// 1024 words × 8 bytes in 2048 cycles × 2.5 ns = 1600 MB/s.
	if r.EffectiveMBps != 1600 {
		t.Errorf("EffectiveMBps = %v, want 1600", r.EffectiveMBps)
	}

	var zero Result
	zero.Finalize(1)
	if zero.PercentPeak != 0 || zero.EffectiveMBps != 0 {
		t.Errorf("zero-cycle Finalize = %+v, want zeros", zero)
	}
}

func TestPercentOfPeak(t *testing.T) {
	if got := PercentOfPeak(1024, 1024, 1); got != 100 {
		t.Errorf("PercentOfPeak = %v, want 100", got)
	}
	if got := PercentOfPeak(10, 0, 1); got != 0 {
		t.Errorf("PercentOfPeak with zero cycles = %v, want 0", got)
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(2)
	if at := w.Admit(5); at != 5 {
		t.Errorf("empty window Admit(5) = %d, want 5", at)
	}
	w.Complete(10)
	w.Complete(20)
	// Two outstanding: the next admission waits for the transaction two
	// back (completion 10).
	if at := w.Admit(0); at != 10 {
		t.Errorf("full window Admit(0) = %d, want 10", at)
	}
	if at := w.Admit(15); at != 15 {
		t.Errorf("Admit(15) = %d, want 15 (already past completion 10)", at)
	}
	w.Complete(30)
	if at := w.Admit(0); at != 20 {
		t.Errorf("Admit(0) after third completion = %d, want 20", at)
	}

	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

type fakeController struct{ name string }

func (f fakeController) Name() string { return f.name }
func (f fakeController) Run(*rdram.Device, *stream.Kernel, Options) (Result, error) {
	return Result{}, nil
}

func TestRegistry(t *testing.T) {
	Register(fakeController{name: "test-fake"})
	if _, ok := Lookup("test-fake"); !ok {
		t.Error("registered controller not found")
	}
	if _, ok := Lookup("test-missing"); ok {
		t.Error("Lookup invented a controller")
	}
	found := false
	for _, n := range Names() {
		if n == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing test-fake", Names())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(fakeController{name: "test-fake"})
}

func TestMapOrderAndConcurrency(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		var running, peak atomic.Int64
		got, err := Map(workers, 50, func(i int) (int, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer running.Add(-1)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if workers == 1 && peak.Load() > 1 {
			t.Errorf("workers=1 ran %d jobs concurrently", peak.Load())
		}
	}
}

func TestMapFirstError(t *testing.T) {
	wantErr := errors.New("job 7")
	_, err := Map(4, 20, func(i int) (int, error) {
		if i >= 7 {
			return 0, fmt.Errorf("job %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Errorf("err = %v, want %v (lowest failing index)", err, wantErr)
	}
	if got, err := Map(3, 0, func(i int) (int, error) { return i, nil }); got != nil || err != nil {
		t.Errorf("empty Map = %v, %v", got, err)
	}
}
