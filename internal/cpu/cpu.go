// Package cpu models the paper's processor: a generator of loads and
// stores of stream elements, issued in the computation's natural order,
// with all computation infinitely fast and all non-stream accesses hitting
// in cache (§4.1). The Walker yields the access sequence and evaluates the
// kernel's arithmetic as read values are supplied, so simulations are
// functionally checkable, not just timed.
package cpu

import (
	"fmt"
	"math"

	"rdramstream/internal/stream"
)

// Access is one processor reference to a stream element.
type Access struct {
	Stream int   // index into the kernel's Streams
	Elem   int   // element index within the stream
	Addr   int64 // word address
	Write  bool
	// Value carries the store data for a write access. It is valid only
	// once every read of the same iteration has been supplied.
	Value uint64
}

// Walker enumerates a kernel's accesses in natural order — iteration by
// iteration, streams in kernel order — and computes write values from the
// supplied read values.
//
// Protocol: call Next to obtain each access. For every read access, call
// SupplyRead with the loaded value before the iteration's first write
// access is consumed (reads may be supplied lazily, any time before the
// write is needed, which lets controllers pipeline load issue ahead of
// data arrival).
type Walker struct {
	k            *stream.Kernel
	nr           int
	n            int
	iter         int // current iteration
	pos          int // next stream within the iteration
	supplied     int // reads supplied for the current iteration
	reads        []float64
	writes       []uint64
	haveWrites   bool // writes computed for the current iteration
	pendingReads int  // reads handed out by Next but not yet supplied
}

// NewWalker validates the kernel and prepares iteration. It returns an
// error if the kernel violates the natural-order invariants.
func NewWalker(k *stream.Kernel) (*Walker, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &Walker{
		k:     k,
		nr:    k.ReadStreams(),
		n:     k.Iterations(),
		reads: make([]float64, k.ReadStreams()),
	}, nil
}

// Kernel returns the kernel being walked.
func (w *Walker) Kernel() *stream.Kernel { return w.k }

// Remaining reports how many accesses Next will still yield.
func (w *Walker) Remaining() int {
	total := w.n * len(w.k.Streams)
	done := w.iter*len(w.k.Streams) + w.pos
	return total - done
}

// Next yields the next access in natural order. ok is false when the
// kernel is exhausted. A write access's Value is computed on demand; Next
// panics if the iteration's reads were not all supplied first, since that
// is a controller bug (a store issued before its operands arrived).
func (w *Walker) Next() (a Access, ok bool) {
	if w.iter >= w.n {
		return Access{}, false
	}
	s := w.k.Streams[w.pos]
	a = Access{
		Stream: w.pos,
		Elem:   w.iter,
		Addr:   s.Addr(w.iter),
		Write:  s.Mode == stream.Write,
	}
	if a.Write {
		if !w.haveWrites {
			if w.supplied != w.nr {
				panic(fmt.Sprintf("cpu: kernel %q iteration %d: write consumed with %d/%d reads supplied",
					w.k.Name, w.iter, w.supplied, w.nr))
			}
			out := w.k.Compute(w.iter, w.reads)
			// Reuse the conversion buffer across iterations; one allocation
			// per iteration here was visible in sweep profiles.
			w.writes = w.writes[:0]
			for _, v := range out {
				w.writes = append(w.writes, math.Float64bits(v))
			}
			w.haveWrites = true
		}
		a.Value = w.writes[w.pos-w.nr]
	} else {
		w.pendingReads++
	}
	w.pos++
	if w.pos == len(w.k.Streams) {
		// Reads may still be outstanding here: a controller supplies a
		// value when the data arrives, which can be after the access was
		// handed out (read-only kernels have no write to force the
		// supply). Writes enforce supply above; SupplyRead validates the
		// rest.
		w.pos = 0
		w.iter++
		w.supplied = 0
		w.haveWrites = false
	}
	return a, true
}

// SupplyRead provides the loaded value for the oldest outstanding read
// access. Reads must be supplied in the order Next yielded them (our
// memory models complete loads in issue order).
func (w *Walker) SupplyRead(v uint64) {
	if w.pendingReads == 0 {
		panic("cpu: SupplyRead with no outstanding read")
	}
	w.reads[w.supplied] = math.Float64frombits(v)
	w.supplied++
	w.pendingReads--
}
