package cpu

import (
	"math"
	"testing"

	"rdramstream/internal/stream"
)

func TestWalkerNaturalOrder(t *testing.T) {
	k := stream.Daxpy(2, 0, 100, 3, 1)
	w, err := NewWalker(k)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kernel() != k {
		t.Error("Kernel accessor mismatch")
	}
	wantAddrs := []int64{0, 100, 100, 1, 101, 101, 2, 102, 102}
	wantWrite := []bool{false, false, true, false, false, true, false, false, true}
	for i := 0; ; i++ {
		if i < len(wantAddrs) && w.Remaining() != len(wantAddrs)-i {
			t.Errorf("step %d: Remaining = %d, want %d", i, w.Remaining(), len(wantAddrs)-i)
		}
		a, ok := w.Next()
		if !ok {
			if i != len(wantAddrs) {
				t.Fatalf("walker ended after %d accesses, want %d", i, len(wantAddrs))
			}
			break
		}
		if a.Addr != wantAddrs[i] || a.Write != wantWrite[i] {
			t.Fatalf("access %d = %+v, want addr=%d write=%v", i, a, wantAddrs[i], wantWrite[i])
		}
		if !a.Write {
			// x[i] = i+1, y[i] = 10*(i+1)
			var v float64
			if a.Stream == 0 {
				v = float64(a.Elem + 1)
			} else {
				v = 10 * float64(a.Elem+1)
			}
			w.SupplyRead(math.Float64bits(v))
		} else {
			want := 2*float64(a.Elem+1) + 10*float64(a.Elem+1)
			if got := math.Float64frombits(a.Value); got != want {
				t.Errorf("iteration %d store value %v, want %v", a.Elem, got, want)
			}
		}
	}
}

func TestWalkerLazySupply(t *testing.T) {
	// Reads may be supplied any time before the iteration's write is
	// consumed — model a pipelined controller that batches both loads.
	k := stream.Sum(0, 100, 200, 2, 1)
	w, err := NewWalker(k)
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := w.Next()
	a1, _ := w.Next()
	if a0.Write || a1.Write {
		t.Fatal("first two accesses should be reads")
	}
	w.SupplyRead(math.Float64bits(3))
	w.SupplyRead(math.Float64bits(4))
	st, _ := w.Next()
	if !st.Write || math.Float64frombits(st.Value) != 7 {
		t.Fatalf("store = %+v, want value 7", st)
	}
}

func TestWalkerRejectsInvalidKernel(t *testing.T) {
	k := stream.Copy(0, 100, 4, 1)
	k.Compute = nil
	if _, err := NewWalker(k); err == nil {
		t.Error("expected error for invalid kernel")
	}
}

func TestWalkerPanicsOnWriteBeforeSupply(t *testing.T) {
	k := stream.Copy(0, 100, 2, 1)
	w, _ := NewWalker(k)
	w.Next() // read, never supplied
	defer func() {
		if recover() == nil {
			t.Error("expected panic when write consumed before reads supplied")
		}
	}()
	w.Next() // write
}

func TestWalkerPanicsOnOverSupply(t *testing.T) {
	k := stream.Copy(0, 100, 2, 1)
	w, _ := NewWalker(k)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on SupplyRead with nothing outstanding")
		}
	}()
	w.SupplyRead(0)
}

func TestWalkerFullFunctionalAgainstReplay(t *testing.T) {
	// Drive the walker like an in-order controller over a flat memory and
	// compare the final state with the kernel's golden Replay.
	k := stream.Vaxpy(0, 1000, 2000, 50, 1)
	memWalk := map[int64]uint64{}
	memGold := map[int64]uint64{}
	for i := int64(0); i < 50; i++ {
		for _, base := range []int64{0, 1000, 2000} {
			v := math.Float64bits(float64(base/100) + float64(i)*0.5)
			memWalk[base+i] = v
			memGold[base+i] = v
		}
	}

	w, err := NewWalker(k)
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, ok := w.Next()
		if !ok {
			break
		}
		if a.Write {
			memWalk[a.Addr] = a.Value
		} else {
			w.SupplyRead(memWalk[a.Addr])
		}
	}
	k.Replay(
		func(addr int64) uint64 { return memGold[addr] },
		func(addr int64, v uint64) { memGold[addr] = v },
	)
	for addr, want := range memGold {
		if memWalk[addr] != want {
			t.Fatalf("addr %d: walker %x, golden %x", addr, memWalk[addr], want)
		}
	}
}
