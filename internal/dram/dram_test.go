package dram

import (
	"strings"
	"testing"
)

func TestCatalogMatchesFigure1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d entries, want 5", len(cat))
	}
	checks := []struct {
		name                 string
		trac, tcac, trc, tpc float64
		mhz                  float64
	}{
		{"Fast-Page Mode", 50, 13, 95, 30, 33},
		{"EDO", 50, 13, 89, 20, 50},
		{"Burst-EDO", 52, 10, 90, 15, 66},
		{"SDRAM", 50, 9, 100, 10, 100},
		{"Direct RDRAM", 50, 20, 85, 10, 400},
	}
	for i, c := range checks {
		s := cat[i]
		if s.Name != c.name || s.TRAC != c.trac || s.TCAC != c.tcac || s.TRC != c.trc || s.TPC != c.tpc || s.MaxMHz != c.mhz {
			t.Errorf("entry %d = %+v, want %+v", i, s, c)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("SDRAM"); !ok || s.Name != "SDRAM" {
		t.Error("SDRAM lookup failed")
	}
	if _, ok := ByName("DDR5"); ok {
		t.Error("unexpected entry")
	}
}

func TestDirectRDRAMPeakIs1600MBps(t *testing.T) {
	s, _ := ByName("Direct RDRAM")
	if got := s.PeakMBps(); got != 1600 {
		t.Errorf("Direct RDRAM peak = %v MB/s, want 1600", got)
	}
}

func TestPeakOrderingMatchesGenerations(t *testing.T) {
	cat := Catalog()
	for i := 1; i < len(cat); i++ {
		if cat[i].PeakMBps() <= cat[i-1].PeakMBps() {
			t.Errorf("%s peak %.0f not above %s peak %.0f",
				cat[i].Name, cat[i].PeakMBps(), cat[i-1].Name, cat[i-1].PeakMBps())
		}
	}
}

func TestStreamBandwidthGrowsWithBurst(t *testing.T) {
	for _, s := range Catalog() {
		small := s.StreamMBps(32)
		big := s.StreamMBps(1024)
		if big <= small {
			t.Errorf("%s: burst 1024 (%.0f) not above burst 32 (%.0f)", s.Name, big, small)
		}
		if big >= s.PeakMBps() {
			t.Errorf("%s: stream rate %.0f should stay below peak %.0f", s.Name, big, s.PeakMBps())
		}
		if s.RandomMBps() >= small {
			t.Errorf("%s: random rate %.0f should trail small bursts %.0f", s.Name, s.RandomMBps(), small)
		}
	}
}

func TestStreamMBpsTinyBurst(t *testing.T) {
	s, _ := ByName("SDRAM")
	// A burst smaller than one column still pays one column.
	if got, want := s.StreamMBps(4), float64(8)/50*1000; got != want {
		t.Errorf("tiny burst = %v, want %v", got, want)
	}
}

func TestLatencyAccessorsAndString(t *testing.T) {
	s, _ := ByName("EDO")
	if s.PageHitLatencyNs() != 13 || s.PageMissLatencyNs() != 50 {
		t.Error("latency accessors wrong")
	}
	if str := s.String(); !strings.Contains(str, "EDO") || !strings.Contains(str, "tRAC=50ns") {
		t.Errorf("unexpected String: %s", str)
	}
}

func TestRDRAMHasHighestStreamRateDespiteWorseTCAC(t *testing.T) {
	// The paper's point: the Rambus part's page-hit latency is worse than
	// SDRAM's, but its transfer rate dwarfs everything for streams.
	rd, _ := ByName("Direct RDRAM")
	sd, _ := ByName("SDRAM")
	if rd.TCAC <= sd.TCAC {
		t.Skip("catalog changed")
	}
	if rd.StreamMBps(1024) <= sd.StreamMBps(1024) {
		t.Errorf("RDRAM stream %.0f should beat SDRAM %.0f", rd.StreamMBps(1024), sd.StreamMBps(1024))
	}
}

func TestRambusGenerations(t *testing.T) {
	gens := RambusGenerations()
	if len(gens) != 3 {
		t.Fatalf("generations = %d", len(gens))
	}
	// §2.2: Base/Concurrent deliver 500-600 MB/s; Direct 1600 MB/s.
	base, direct := gens[0], gens[2]
	if p := base.PeakMBps(); p < 500 || p > 650 {
		t.Errorf("Base RDRAM peak = %.0f MB/s, want 500-600", p)
	}
	if direct.PeakMBps() != 1600 {
		t.Errorf("Direct peak = %.0f", direct.PeakMBps())
	}
	// Base and Concurrent share peak bandwidth (the paper: Concurrent's
	// gain is protocol utilization, beyond this simple model); Direct
	// roughly triples the streaming rate.
	if gens[1].StreamMBps(1024) < gens[0].StreamMBps(1024) {
		t.Error("Concurrent should not stream slower than Base")
	}
	if direct.StreamMBps(1024) < 2*base.StreamMBps(1024) {
		t.Errorf("Direct stream %.0f should dwarf Base %.0f", direct.StreamMBps(1024), base.StreamMBps(1024))
	}
	if _, ok := ByName("Concurrent RDRAM"); !ok {
		t.Error("generation lookup failed")
	}
}
