// Package dram models the conventional DRAM families the paper's Figure 1
// compares against Direct RDRAM: fast-page-mode, EDO, Burst-EDO, and
// SDRAM. The model is the classic page-mode timing budget — a row access
// (t_RAC) followed by page-mode column cycles (t_PC) — which is exactly
// the level of detail Figure 1 carries, and enough to regenerate the
// table and to put the paper's motivation ("DRAM speeds are not keeping
// up") in numbers.
package dram

import "fmt"

// Spec holds one device family's Figure 1 timing parameters, in
// nanoseconds, plus its data-bus geometry.
type Spec struct {
	Name string
	// TRAC is the row access time: address strobe to data valid (ns).
	TRAC float64
	// TCAC is the column access time (ns).
	TCAC float64
	// TRC is the random read/write cycle time (ns).
	TRC float64
	// TPC is the page-mode cycle time: consecutive column accesses to the
	// open row (ns). For Direct RDRAM this is the packet transfer time.
	TPC float64
	// MaxMHz is the maximum interface frequency from Figure 1.
	MaxMHz float64
	// BusBytes is the width of the data interface in bytes, and
	// TransfersPerClock its data rate multiplier (2 for the DDR Rambus
	// channel, 1 otherwise).
	BusBytes          int
	TransfersPerClock int
	// BytesPerColumn is the data delivered by one column access/packet.
	BytesPerColumn int
}

// Catalog reproduces the paper's Figure 1, in its column order. Classic
// parts are modeled as a 64-bit (8-byte) memory module built from x8
// devices — the commodity organization of the era — while the Direct
// RDRAM entry is the single 16-bit 800 MT/s device the paper studies.
func Catalog() []Spec {
	return []Spec{
		{Name: "Fast-Page Mode", TRAC: 50, TCAC: 13, TRC: 95, TPC: 30, MaxMHz: 33, BusBytes: 8, TransfersPerClock: 1, BytesPerColumn: 8},
		{Name: "EDO", TRAC: 50, TCAC: 13, TRC: 89, TPC: 20, MaxMHz: 50, BusBytes: 8, TransfersPerClock: 1, BytesPerColumn: 8},
		{Name: "Burst-EDO", TRAC: 52, TCAC: 10, TRC: 90, TPC: 15, MaxMHz: 66, BusBytes: 8, TransfersPerClock: 1, BytesPerColumn: 8},
		{Name: "SDRAM", TRAC: 50, TCAC: 9, TRC: 100, TPC: 10, MaxMHz: 100, BusBytes: 8, TransfersPerClock: 1, BytesPerColumn: 8},
		{Name: "Direct RDRAM", TRAC: 50, TCAC: 20, TRC: 85, TPC: 10, MaxMHz: 400, BusBytes: 2, TransfersPerClock: 2, BytesPerColumn: 16},
	}
}

// RambusGenerations models the three RDRAM generations the paper's §2.2
// describes: Base (8/9-bit bus at 250-300 MHz, 500-600 MB/s), Concurrent
// (same peak, better utilization via concurrent transactions), and Direct
// (16/18-bit bus at 400 MHz DDR, 1.6 GB/s). Core latencies are the
// commodity DRAM core's; the generations differ in interface bandwidth.
func RambusGenerations() []Spec {
	return []Spec{
		{Name: "Base RDRAM", TRAC: 50, TCAC: 26, TRC: 85, TPC: 13.3, MaxMHz: 300, BusBytes: 1, TransfersPerClock: 2, BytesPerColumn: 8},
		{Name: "Concurrent RDRAM", TRAC: 50, TCAC: 24, TRC: 85, TPC: 13.3, MaxMHz: 300, BusBytes: 1, TransfersPerClock: 2, BytesPerColumn: 8},
		{Name: "Direct RDRAM", TRAC: 50, TCAC: 20, TRC: 85, TPC: 10, MaxMHz: 400, BusBytes: 2, TransfersPerClock: 2, BytesPerColumn: 16},
	}
}

// ByName finds a catalog entry (searching the Figure 1 catalog first,
// then the Rambus generations).
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range RambusGenerations() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// PeakMBps is the device's peak transfer rate in MB/s: one column's worth
// of data per page-mode cycle.
func (s Spec) PeakMBps() float64 {
	return float64(s.BytesPerColumn) / s.TPC * 1000
}

// StreamMBps is the sustained rate for page-mode bursts of burstBytes from
// a fresh row: t_RAC for the first column, t_PC for each subsequent one.
func (s Spec) StreamMBps(burstBytes int) float64 {
	cols := burstBytes / s.BytesPerColumn
	if cols < 1 {
		cols = 1
	}
	ns := s.TRAC + float64(cols-1)*s.TPC
	return float64(cols*s.BytesPerColumn) / ns * 1000
}

// RandomMBps is the rate for isolated accesses, one column per random
// cycle time t_RC.
func (s Spec) RandomMBps() float64 {
	return float64(s.BytesPerColumn) / s.TRC * 1000
}

// PageHitLatencyNs and PageMissLatencyNs expose the basic latencies.
func (s Spec) PageHitLatencyNs() float64  { return s.TCAC }
func (s Spec) PageMissLatencyNs() float64 { return s.TRAC }

func (s Spec) String() string {
	return fmt.Sprintf("%s: tRAC=%.0fns tCAC=%.0fns tRC=%.0fns tPC=%.0fns %.0fMHz peak=%.0fMB/s",
		s.Name, s.TRAC, s.TCAC, s.TRC, s.TPC, s.MaxMHz, s.PeakMBps())
}
