// Package smc implements the paper's Stream Memory Controller: a Stream
// Buffer Unit (SBU) of per-stream FIFOs between the processor and memory,
// and a Memory Scheduling Unit (MSU) that prefetches read streams, buffers
// write streams, and reorders the memory accesses to maximize effective
// bandwidth (§3).
//
// The processor drains/fills the FIFO heads in the computation's natural
// order at the matched bandwidth of one 64-bit word per t_PACK/w_p cycles;
// the MSU services one FIFO at a time, performing as many accesses as
// possible for the current FIFO before moving on (the paper's round-robin
// policy), or using one of the extension policies the paper's §6 sketches.
package smc

import (
	"rdramstream/internal/addrmap"
	"rdramstream/internal/stream"
)

// group is one DATA-packet's worth of stream traffic: the packet a set of
// consecutive stream elements maps to. For unit strides a group carries two
// elements; for larger strides usually one.
// Because planStream walks elements in order and each element lands in
// exactly one group, a group's element indices are always the consecutive
// range [elo, ehi) — storing the range replaced a grown per-group slice
// that dominated sweep allocation profiles. words holds the word-within-
// packet of each element (aligned with elo); it fits a byte since a packet
// carries WordsPerPacket words.
type group struct {
	loc      addrmap.Loc // packet coordinates (Word is 0)
	elo, ehi int         // element index range served by this packet
	words    []uint8     // word-within-packet per element, ascending
}

// n is the number of elements the group serves.
func (g group) n() int { return g.ehi - g.elo }

// planStream splits a stream's elements into packet groups in element
// order, appending into dst (recycled across runs by the scratch pool) with
// word offsets carved out of the shared words slab. Direct RDRAM transfers
// whole 128-bit packets, so this is the schedule of device accesses the MSU
// performs for the stream.
func planStream(m *addrmap.Mapper, s stream.Stream, dst []group, words []uint8) ([]group, []uint8) {
	groups := dst[:0]
	curPacket := int64(-1)
	start := len(words)
	seal := func() {
		if len(groups) > 0 {
			g := &groups[len(groups)-1]
			g.ehi = g.elo + len(words) - start
			g.words = words[start:len(words):len(words)]
			start = len(words)
		}
	}
	for i := 0; i < s.Length; i++ {
		addr := s.Addr(i)
		pkt := addrmap.PacketAddr(addr)
		if pkt != curPacket {
			seal()
			groups = append(groups, group{loc: m.Map(pkt), elo: i})
			curPacket = pkt
		}
		words = append(words, uint8(addr-curPacket))
	}
	seal()
	return groups, words
}

// sameRowAs reports whether two groups address the same open row.
func (g group) sameRowAs(o group) bool {
	return g.loc.Bank == o.loc.Bank && g.loc.Row == o.loc.Row
}

const unscheduled = int64(-1)

// readFIFO is the SBU buffer for one read stream. The MSU appends arriving
// elements; the CPU pops them in order from the memory-mapped head.
type readFIFO struct {
	groups    []group
	nextFetch int // next group the MSU will fetch

	avail  []int64  // arrival time (DataEnd) per issued element, in order
	values []uint64 // element values, aligned with avail
	popped int      // elements the CPU has consumed

	issued int // elements fetched or in flight
	depth  int

	retry retryState
}

// canFetch reports whether the MSU may issue the next packet for this
// stream without overflowing the FIFO.
func (f *readFIFO) canFetch() bool {
	if f.nextFetch >= len(f.groups) {
		return false
	}
	return f.issued-f.popped+f.groups[f.nextFetch].n() <= f.depth
}

// headAvail returns when the CPU's next element is (or will be) available,
// or unscheduled if the MSU has not fetched it yet.
func (f *readFIFO) headAvail() int64 {
	if f.popped >= len(f.avail) {
		return unscheduled
	}
	return f.avail[f.popped]
}

// writeFIFO is the SBU buffer for one write stream. The CPU pushes store
// values in order; the MSU drains whole packets to memory.
type writeFIFO struct {
	groups    []group
	nextDrain int

	pushedAt []int64  // push completion time per element, in order
	values   []uint64 // pushed values, aligned
	drainAt  []int64  // DataEnd per drained element, in order

	depth int

	retry retryState
}

// retryState is a FIFO's transient-rejection backoff: after the device
// refuses an access under fault injection, the FIFO sits out until retryAt
// while the MSU services other streams, with the delay doubling per
// consecutive rejection (capped) so a persistent fault cannot monopolize
// the scheduler. The engine watchdog bounds total livelock.
type retryState struct {
	at      int64 // earliest cycle the next presentation may happen (0 = none)
	rejects int   // consecutive rejections of the pending access
}

// blocked reports whether the FIFO is still backing off at time now.
func (r retryState) blocked(now int64) bool { return r.at > now }

// onReject schedules the next presentation after a rejection at time now.
func (r *retryState) onReject(now, tPack int64) {
	shift := r.rejects
	if shift > 5 {
		shift = 5
	}
	r.at = now + tPack<<shift
	r.rejects++
}

// onAccept clears the backoff after a successful presentation.
func (r *retryState) onAccept() { r.at, r.rejects = 0, 0 }

// canDrain reports whether the next packet's elements have all been pushed.
func (f *writeFIFO) canDrain() bool {
	if f.nextDrain >= len(f.groups) {
		return false
	}
	return len(f.pushedAt) >= f.groups[f.nextDrain].ehi
}

// drainReady is the earliest time the next packet's data is in the FIFO.
func (f *writeFIFO) drainReady() int64 {
	return f.pushedAt[f.groups[f.nextDrain].ehi-1]
}

// slotFreeAt returns the earliest time the CPU can push its next element:
// immediately if the FIFO has room, otherwise when the MSU drains the
// oldest occupant.
func (f *writeFIFO) slotFreeAt() int64 {
	pushed := len(f.pushedAt)
	if pushed < f.depth {
		return 0
	}
	idx := pushed - f.depth
	if idx < len(f.drainAt) {
		return f.drainAt[idx]
	}
	return unscheduled // FIFO full and the freeing drain not yet issued
}
