package smc

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
)

// Policy selects the MSU's FIFO-scheduling algorithm.
type Policy int

const (
	// RoundRobin is the paper's simple policy: consider each FIFO in turn,
	// performing as many accesses as possible for the current FIFO before
	// moving on (§4.2).
	RoundRobin Policy = iota
	// BankAware is the extension Hong's thesis investigates: among the
	// FIFOs that are ready for a transfer, pick the one whose target bank
	// can be accessed soonest, avoiding bank-conflict stalls.
	BankAware
	// HitFirst is the other §6 proposal: "an MSU that overlaps activity
	// for another FIFO with the latency of the precharge and row activate
	// commands". Among ready FIFOs it prefers one whose next access hits
	// an already-open row, letting page misses' row latency hide behind
	// other FIFOs' transfers. Pairs naturally with SpeculateActivate.
	HitFirst
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case BankAware:
		return "bank-aware"
	case HitFirst:
		return "hit-first"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes an SMC simulation.
type Config struct {
	// Scheme pairs the interleaving with its precharge policy, as in the
	// paper: CLI closed-page, PI open-page.
	Scheme addrmap.Scheme
	// LineWords is the cacheline size in words; it only determines the CLI
	// address interleaving granularity (the SMC itself transfers packets).
	LineWords int
	// FIFODepth is the per-stream SBU buffer depth in 64-bit elements (the
	// paper's f, swept from 8 to 128).
	FIFODepth int
	// Policy selects the MSU scheduling algorithm.
	Policy Policy
	// SpeculateActivate enables the §6 extension: when the MSU issues the
	// last access a stream has in its current DRAM page, it speculatively
	// precharges/activates the next page's bank so the stream never stalls
	// on a page crossing. Only meaningful for PI (open-page) systems.
	SpeculateActivate bool
	// Telemetry, when non-nil, receives cycle-level instrumentation: the
	// device probe is attached to the device, one FIFO probe per stream
	// records depth and starvation, and MSU decisions and CPU stalls land
	// in the controller probe. Nil runs pay only nil checks.
	Telemetry *telemetry.Collector
	// WatchdogLimit bounds forward progress: if the MSU retires no useful
	// word for this many cycles (a fault-injected rejection livelock, or a
	// future scheduling bug) the run aborts with a *engine.WatchdogError
	// carrying a state dump. Zero selects engine.DefaultWatchdogLimit.
	WatchdogLimit int64
}

// DefaultConfig returns the paper's base SMC configuration: CLI, 32-byte
// lines, 32-element FIFOs, round-robin scheduling.
func DefaultConfig() Config {
	return Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 32}
}

// Result is the common controller outcome (see engine.Result); Cycles is
// the end-to-end time — every CPU access performed and every buffered
// write retired to memory — and CPUStallCycles is the time the processor
// spent blocked on an empty read FIFO or a full write FIFO.
type Result = engine.Result

// Run simulates kernel k through an SMC over the device. Device memory is
// read and written functionally, so callers can verify the results.
func Run(dev *rdram.Device, k *stream.Kernel, cfg Config) (Result, error) {
	if cfg.FIFODepth < rdram.WordsPerPacket {
		return Result{}, fmt.Errorf("smc: FIFODepth must be at least %d, got %d", rdram.WordsPerPacket, cfg.FIFODepth)
	}
	if cfg.LineWords <= 0 || cfg.LineWords%rdram.WordsPerPacket != 0 {
		return Result{}, fmt.Errorf("smc: LineWords must be a positive multiple of %d, got %d", rdram.WordsPerPacket, cfg.LineWords)
	}
	mapper, err := addrmap.New(cfg.Scheme, dev.Config().Geometry, cfg.LineWords)
	if err != nil {
		return Result{}, err
	}
	fe, err := engine.NewFrontEnd(k, int64(dev.Config().Timing.TPack/rdram.WordsPerPacket))
	if err != nil {
		return Result{}, err
	}

	s := &sim{
		dev:    dev,
		mapper: mapper,
		cfg:    cfg,
		fe:     fe,
		k:      k,
		nr:     k.ReadStreams(),
		wd:     engine.NewWatchdog(cfg.WatchdogLimit),
		tPack:  int64(dev.Config().Timing.TPack),
		tRAC:   int64(dev.Config().Timing.TRAC()),
	}
	if col := cfg.Telemetry; col != nil {
		s.ctl = engine.Attach(dev, col, telemetry.StallNoRequest)
		s.col = col
		s.dprobe = col.Device
		s.fprobes = make([]*telemetry.FIFOProbe, len(k.Streams))
		for i, st := range k.Streams {
			dir := "read"
			if st.Mode == stream.Write {
				dir = "write"
			}
			s.fprobes[i] = col.FIFO(i, fmt.Sprintf("fifo %d %s %s", i, dir, st.Name))
		}
	}
	// The plan slabs and FIFO bookkeeping arrays are the run's dominant
	// allocations and every one of them is rebuilt from scratch each run,
	// so a sweep recycles them through a pool. Slices are reused at length
	// zero and only ever appended to, so no zeroing is needed; every
	// element passes through its FIFO exactly once, so first use sizes the
	// backing exactly.
	scr := scratchPool.Get().(*runScratch)
	defer scratchPool.Put(scr)
	words := scr.words[:0]
	var groups []group
	for i, st := range k.Streams {
		if i >= len(scr.slabs) {
			scr.slabs = append(scr.slabs, nil)
		}
		groups, words = planStream(mapper, st, scr.slabs[i][:0], words)
		scr.slabs[i] = groups
		if i < s.nr {
			if i >= len(scr.reads) {
				scr.reads = append(scr.reads, new(readFIFO))
			}
			f := scr.reads[i]
			*f = readFIFO{groups: groups, depth: cfg.FIFODepth, avail: f.avail[:0], values: f.values[:0]}
			if cap(f.avail) < st.Length {
				f.avail = make([]int64, 0, st.Length)
				f.values = make([]uint64, 0, st.Length)
			}
			s.reads = append(s.reads, f)
		} else {
			j := i - s.nr
			if j >= len(scr.writes) {
				scr.writes = append(scr.writes, new(writeFIFO))
			}
			f := scr.writes[j]
			*f = writeFIFO{groups: groups, depth: cfg.FIFODepth, pushedAt: f.pushedAt[:0], values: f.values[:0], drainAt: f.drainAt[:0]}
			if cap(f.pushedAt) < st.Length {
				f.pushedAt = make([]int64, 0, st.Length)
				f.values = make([]uint64, 0, st.Length)
				f.drainAt = make([]int64, 0, st.Length)
			}
			s.writes = append(s.writes, f)
		}
	}
	scr.words = words
	if err := s.run(); err != nil {
		return Result{}, err
	}

	st := dev.Stats()
	res := Result{
		Cycles:           max(s.fe.Time(), st.LastDataEnd),
		UsefulWords:      int64(k.Iterations()) * int64(len(k.Streams)),
		TransferredWords: st.PacketCount() * rdram.WordsPerPacket,
		CPUStallCycles:   s.fe.StallCycles(),
		Device:           st,
	}
	res.Finalize(dev.Config().Timing.CyclesPerWordPeak())
	if col := cfg.Telemetry; col != nil {
		col.Controller.CPUStallCycles = s.fe.StallCycles()
		// The run extends past the final DATA packet while the CPU drains
		// the last FIFO contents; charge that tail so the stall attribution
		// tiles the full [0, Cycles) idle time.
		col.Device.ChargeStall(telemetry.StallCPUTail, res.Cycles-st.LastDataEnd)
	}
	return res, nil
}

// runScratch is the recyclable per-run state: packet-group slabs (one per
// stream plus the shared word-offset slab) and the FIFO structs with their
// grown bookkeeping arrays. A sweep's scenarios check one out per run via
// scratchPool; everything is reset by slicing to length zero, never by
// clearing, so reuse costs nothing.
type runScratch struct {
	reads  []*readFIFO
	writes []*writeFIFO
	slabs  [][]group
	words  []uint8
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

type sim struct {
	dev    *rdram.Device
	mapper *addrmap.Mapper
	cfg    Config
	k      *stream.Kernel
	nr     int

	reads  []*readFIFO
	writes []*writeFIFO

	// fe is the shared matched-bandwidth processor model; this sim
	// implements engine.Ports over its FIFOs.
	fe *engine.FrontEnd

	msuTime int64
	current int // round-robin cursor over all FIFOs (reads then writes)

	// Timing constants hoisted out of the issue path: Device.Config returns
	// the whole configuration by value, which showed up as copy overhead
	// once per issued packet.
	tPack int64
	tRAC  int64

	wd *engine.Watchdog // forward-progress guard (see Config.WatchdogLimit)

	// Telemetry probes; all nil when cfg.Telemetry is nil.
	col     *telemetry.Collector
	ctl     *telemetry.ControllerProbe
	dprobe  *telemetry.DeviceProbe
	fprobes []*telemetry.FIFOProbe
}

// run drives the CPU and MSU to completion as a discrete-event loop: time
// only ever moves to the next event that can change what is issuable, never
// cycle by cycle. See docs/PERFORMANCE.md for the event model.
func (s *sim) run() error {
	for {
		s.fe.Advance(s.msuTime, s)
		if s.fe.Done() && !s.msuHasWork() {
			return nil
		}
		if err := s.wd.Check(s.msuTime, s.dumpState); err != nil {
			return err
		}
		if s.issueOne() {
			continue
		}
		t := s.nextWakeup()
		if t == unscheduled || t <= s.msuTime {
			if s.fe.Done() && !s.msuHasWork() {
				return nil
			}
			return fmt.Errorf("smc: stalled at cycle %d with work remaining (MSU idle, CPU blocked)\n%s", s.msuTime, s.dumpState())
		}
		if s.col != nil {
			s.noteBlocked(s.msuTime, t)
		}
		s.msuTime = t
	}
}

// nextWakeup is the MSU's event queue: the earliest future time at which a
// new access can become issuable. That set is exactly the next CPU
// completion (the only thing that changes FIFO occupancy) and the earliest
// rejection-backoff expiry — deliberately *not* the device's own
// NextEventAt: FIFO serviceability never depends on bank or bus state, so
// waking on device events would re-run the scheduler to no effect and split
// the telemetry idle episodes noteBlocked records. Device events surface
// through dumpState and the watchdog diagnostics instead.
// rdlint:hotpath
func (s *sim) nextWakeup() int64 {
	t := s.fe.NextEvent(s)
	if rt := s.nextRetry(); rt > s.msuTime && (t == engine.Unscheduled || rt < t) {
		t = rt
	}
	return t
}

// nextRetry returns the earliest still-future rejection-backoff wake-up
// among FIFOs with work remaining, or unscheduled if none. Expired backoffs
// are ignored: such a FIFO is already serviceable, so its stale retry time
// must not masquerade as a wake-up in the past.
// rdlint:hotpath
func (s *sim) nextRetry() int64 {
	t := unscheduled
	for _, f := range s.reads {
		if f.nextFetch < len(f.groups) && f.retry.at > s.msuTime && (t == unscheduled || f.retry.at < t) {
			t = f.retry.at
		}
	}
	for _, f := range s.writes {
		if f.nextDrain < len(f.groups) && f.retry.at > s.msuTime && (t == unscheduled || f.retry.at < t) {
			t = f.retry.at
		}
	}
	return t
}

// dumpState snapshots the MSU for watchdog diagnostics: scheduler time,
// per-FIFO progress and backoff state, and the device counters.
func (s *sim) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "smc: msuTime=%d policy=%s scheme=%s\n", s.msuTime, s.cfg.Policy, s.cfg.Scheme)
	for i, f := range s.reads {
		fmt.Fprintf(&b, "  read fifo %d: group %d/%d occupancy=%d retryAt=%d rejects=%d\n",
			i, f.nextFetch, len(f.groups), f.issued-f.popped, f.retry.at, f.retry.rejects)
	}
	for j, f := range s.writes {
		fmt.Fprintf(&b, "  write fifo %d: group %d/%d pushed=%d drained=%d retryAt=%d rejects=%d\n",
			s.nr+j, f.nextDrain, len(f.groups), len(f.pushedAt), len(f.drainAt), f.retry.at, f.retry.rejects)
	}
	fmt.Fprintf(&b, "  cpu: nextEvent=%d wakeup=%d\n", s.fe.NextEvent(s), s.nextWakeup())
	fmt.Fprintf(&b, "  device: nextEvent=%d %v", s.dev.NextEventAt(s.msuTime), s.dev.Stats())
	return b.String()
}

// ReadAvail, WriteFree, PopRead, and PushWrite implement engine.Ports: the
// FIFO heads the front-end drains and fills at matched bandwidth.

func (s *sim) ReadAvail(i int) int64 { return s.reads[i].headAvail() }

func (s *sim) WriteFree(i int) int64 { return s.writes[i-s.nr].slotFreeAt() }

func (s *sim) PopRead(i int, done int64) uint64 {
	f := s.reads[i]
	v := f.values[f.popped]
	f.popped++
	if s.fprobes != nil {
		s.fprobes[i].OnDepth(done, f.issued-f.popped)
	}
	return v
}

func (s *sim) PushWrite(i int, v uint64, done int64) {
	f := s.writes[i-s.nr]
	f.pushedAt = append(f.pushedAt, done)
	f.values = append(f.values, v)
	if s.fprobes != nil {
		s.fprobes[i].OnDepth(done, len(f.pushedAt)-len(f.drainAt))
	}
}

// noteBlocked records an MSU idle episode [from, until): which FIFOs were
// starving it (full read FIFOs blocking prefetch, incomplete write packets
// blocking drain), and declares the dominant cause to the device so the
// idle DATA-bus cycles preceding the next access are attributed to it.
func (s *sim) noteBlocked(from, until int64) {
	cause := telemetry.StallNoRequest
	for i, f := range s.reads {
		if f.nextFetch < len(f.groups) && !f.canFetch() {
			s.fprobes[i].OnBlocked(from, until, true)
			cause = telemetry.StallFIFOFull
		}
	}
	for j, f := range s.writes {
		if f.nextDrain < len(f.groups) && !f.canDrain() {
			s.fprobes[s.nr+j].OnBlocked(from, until, false)
			if cause == telemetry.StallNoRequest {
				cause = telemetry.StallFIFOEmpty
			}
		}
	}
	// Rejection backoff dominates: if any FIFO with work is sitting out a
	// retry delay, the idle bus is the fault injector's doing.
	for _, f := range s.reads {
		if f.nextFetch < len(f.groups) && f.retry.blocked(from) {
			cause = telemetry.StallFaultRetry
		}
	}
	for _, f := range s.writes {
		if f.nextDrain < len(f.groups) && f.retry.blocked(from) {
			cause = telemetry.StallFaultRetry
		}
	}
	s.dprobe.SetIdleCause(cause)
}

// msuHasWork reports whether any stream still has packets to move.
func (s *sim) msuHasWork() bool {
	for _, f := range s.reads {
		if f.nextFetch < len(f.groups) {
			return true
		}
	}
	for _, f := range s.writes {
		if f.nextDrain < len(f.groups) {
			return true
		}
	}
	return false
}

// fifoCount is the number of FIFOs the MSU cycles over.
func (s *sim) fifoCount() int { return len(s.reads) + len(s.writes) }

// canService reports whether FIFO i can accept an access right now, and
// the earliest time the access's data could move. A FIFO backing off after
// a transient rejection is not serviceable until its retry time.
// rdlint:hotpath
func (s *sim) canService(i int) (bool, int64) {
	if i < s.nr {
		f := s.reads[i]
		if f.retry.blocked(s.msuTime) {
			return false, 0
		}
		return f.canFetch(), s.msuTime
	}
	f := s.writes[i-s.nr]
	if f.retry.blocked(s.msuTime) || !f.canDrain() {
		return false, 0
	}
	return true, max(s.msuTime, f.drainReady())
}

// issueOne lets the scheduling policy pick a FIFO and issues one packet
// for it. It reports whether anything was issued; a pick the device
// transiently rejected counts as not issued (the FIFO backs off and the
// run loop advances time so other streams get the bus).
// rdlint:hotpath
func (s *sim) issueOne() bool {
	n := s.fifoCount()
	switch s.cfg.Policy {
	case BankAware:
		// Among ready FIFOs, pick the one whose target bank is accessible
		// soonest; ties go to round-robin order from the cursor.
		best, bestAt := -1, int64(math.MaxInt64)
		for off := 0; off < n; off++ {
			i := (s.current + off) % n
			ok, at := s.canService(i)
			if !ok {
				continue
			}
			g := s.nextGroup(i)
			ready := s.dev.AccessReadyAt(g.loc.Bank, g.loc.Row, at)
			if ready < bestAt {
				best, bestAt = i, ready
			}
		}
		if best < 0 {
			return false
		}
		s.ctl.OnDecision("bankaware")
		s.current = best
		return s.issue(best)
	case HitFirst:
		// First serviceable FIFO in rotation whose access hits an open
		// row wins; otherwise fall back to plain rotation order, so a
		// round of all-misses still progresses.
		fallback := -1
		for off := 0; off < n; off++ {
			i := (s.current + off) % n
			ok, _ := s.canService(i)
			if !ok {
				continue
			}
			if fallback < 0 {
				fallback = i
			}
			g := s.nextGroup(i)
			if row, open := s.dev.BankOpenRow(g.loc.Bank); open && row == g.loc.Row {
				s.ctl.OnDecision("hitfirst-hit")
				s.current = i
				return s.issue(i)
			}
		}
		if fallback < 0 {
			return false
		}
		s.ctl.OnDecision("hitfirst-fallback")
		s.current = fallback
		return s.issue(fallback)
	default: // RoundRobin
		for off := 0; off < n; off++ {
			i := (s.current + off) % n
			if ok, _ := s.canService(i); ok {
				// Stay on this FIFO: subsequent calls keep servicing it
				// until it cannot proceed, then the scan moves past it.
				s.ctl.OnDecision("roundrobin")
				s.current = i
				return s.issue(i)
			}
		}
		return false
	}
}

// nextGroup returns the group FIFO i would issue next.
// rdlint:hotpath
func (s *sim) nextGroup(i int) group {
	if i < s.nr {
		f := s.reads[i]
		return f.groups[f.nextFetch]
	}
	f := s.writes[i-s.nr]
	return f.groups[f.nextDrain]
}

// issue performs one packet access for FIFO i, reporting whether the
// device accepted it. On a transient rejection (fault injection) the
// FIFO's backoff is armed and no controller state changes.
// rdlint:hotpath
func (s *sim) issue(i int) bool {
	g := s.nextGroup(i)
	var next *group
	if i < s.nr {
		f := s.reads[i]
		if f.nextFetch+1 < len(f.groups) {
			next = &f.groups[f.nextFetch+1]
		}
	} else {
		f := s.writes[i-s.nr]
		if f.nextDrain+1 < len(f.groups) {
			next = &f.groups[f.nextDrain+1]
		}
	}
	// Closed-page policy: precharge when this stream's burst leaves the
	// row (the next group for this stream is elsewhere).
	autoPre := s.cfg.Scheme == addrmap.CLI && (next == nil || !g.sameRowAs(*next))

	req := rdram.Request{
		Bank: g.loc.Bank, Row: g.loc.Row, Col: g.loc.Col,
		AutoPrecharge: autoPre,
	}
	at := s.msuTime
	if i >= s.nr {
		f := s.writes[i-s.nr]
		req.Write = true
		at = max(at, f.drainReady())
		// Assemble the packet: pushed values where the stream stores,
		// current memory contents elsewhere (partial packets at stream
		// edges or non-unit strides). A fully covered packet — the common
		// unit-stride case — needs no read-merge at all.
		if g.n() < rdram.WordsPerPacket {
			base := s.mapper.Unmap(addrmap.Loc{Bank: g.loc.Bank, Row: g.loc.Row, Col: g.loc.Col})
			for w := 0; w < rdram.WordsPerPacket; w++ {
				req.Data[w] = engine.Peek(s.dev, s.mapper, base+int64(w))
			}
		}
		for j, w := range g.words {
			req.Data[w] = f.values[g.elo+j]
		}
	}

	// A write drain that waited on the CPU's pushes is a FIFO-empty wait;
	// declare it so the idle bus cycles before the drain are attributed to
	// starvation rather than to an absent request.
	if s.dprobe != nil && req.Write && at > s.msuTime {
		s.dprobe.SetIdleCause(telemetry.StallFIFOEmpty)
	}

	var retry *retryState
	if i < s.nr {
		retry = &s.reads[i].retry
	} else {
		retry = &s.writes[i-s.nr].retry
	}

	// The MSU pipelines command issue: its next scheduling decision is
	// made one command-lead-time (t_RAC) ahead of this access's data, so
	// row/column packets for the following access overlap this one's data
	// transfer (as the Direct RDRAM interface intends), while FIFO
	// occupancy is still evaluated at a realistic point in time.
	res, ok := s.dev.Attempt(at, req)
	if !ok {
		retry.onReject(at, s.tPack)
		if s.dprobe != nil {
			s.dprobe.SetIdleCause(telemetry.StallFaultRetry)
		}
		return false
	}
	retry.onAccept()
	s.wd.Progress(res.DataEnd)
	if lead := res.DataStart - s.tRAC; lead > s.msuTime {
		s.msuTime = lead
	}

	if i < s.nr {
		f := s.reads[i]
		for _, w := range g.words {
			f.values = append(f.values, res.Data[w])
			f.avail = append(f.avail, res.DataEnd)
		}
		f.issued += g.n()
		f.nextFetch++
	} else {
		f := s.writes[i-s.nr]
		for range g.words {
			f.drainAt = append(f.drainAt, res.DataEnd)
		}
		f.nextDrain++
	}
	if s.fprobes != nil {
		fp := s.fprobes[i]
		fp.OnService(res.DataStart, res.DataEnd, req.Write)
		if i < s.nr {
			f := s.reads[i]
			fp.OnDepth(res.DataEnd, f.issued-f.popped)
		} else {
			f := s.writes[i-s.nr]
			fp.OnDepth(res.DataEnd, len(f.pushedAt)-len(f.drainAt))
		}
		s.dprobe.SetIdleCause(telemetry.StallNoRequest)
	}

	// §6 extension: when a stream finishes its accesses to a DRAM page,
	// open the next page it will touch while other FIFOs use the bus.
	if s.cfg.SpeculateActivate && s.cfg.Scheme == addrmap.PI &&
		next != nil && !g.sameRowAs(*next) {
		s.dev.ActivateBank(next.loc.Bank, next.loc.Row, s.msuTime)
	}
	return true
}
