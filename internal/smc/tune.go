package smc

import (
	"fmt"

	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// DepthResult is one point of a FIFO-depth search.
type DepthResult struct {
	Depth       int
	PercentPeak float64
	Cycles      int64
}

// TuneDepth runs the kernel at each candidate FIFO depth on a fresh device
// and returns the smallest depth whose bandwidth is within tolerance
// percentage points of the best observed, along with every measurement.
//
// The paper's §6 observes that, unlike the fast-page-mode SMC (which had a
// compile-time depth formula), "the best FIFO depth must be chosen
// experimentally" for Rambus systems — this is that experiment, packaged.
// A typical call uses depths {8,16,32,64,128} and a tolerance of 2-3
// points; smaller FIFOs cost less hardware, so the smallest near-optimal
// depth wins.
func TuneDepth(devCfg rdram.Config, k *stream.Kernel, cfg Config, depths []int, tolerance float64) (int, []DepthResult, error) {
	if len(depths) == 0 {
		return 0, nil, fmt.Errorf("smc: no candidate depths")
	}
	if tolerance < 0 {
		return 0, nil, fmt.Errorf("smc: negative tolerance %v", tolerance)
	}
	results := make([]DepthResult, 0, len(depths))
	best := 0.0
	for _, d := range depths {
		c := cfg
		c.FIFODepth = d
		dev := rdram.NewDevice(devCfg)
		res, err := Run(dev, k, c)
		if err != nil {
			return 0, nil, fmt.Errorf("smc: depth %d: %w", d, err)
		}
		results = append(results, DepthResult{Depth: d, PercentPeak: res.PercentPeak, Cycles: res.Cycles})
		if res.PercentPeak > best {
			best = res.PercentPeak
		}
	}
	choice := -1
	for _, r := range results {
		if r.PercentPeak >= best-tolerance && (choice < 0 || r.Depth < choice) {
			choice = r.Depth
		}
	}
	return choice, results, nil
}
