package smc

import (
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// controller adapts the SMC model to the engine registry, so sim.Run and
// the sweep executor reach it by name.
type controller struct{}

func init() { engine.Register(controller{}) }

func (controller) Name() string { return "smc" }

func (controller) Run(dev *rdram.Device, k *stream.Kernel, opt engine.Options) (engine.Result, error) {
	return Run(dev, k, Config{
		Scheme:            opt.Scheme,
		LineWords:         opt.LineWords,
		FIFODepth:         opt.FIFODepth,
		Policy:            Policy(opt.Policy),
		SpeculateActivate: opt.SpeculateActivate,
		Telemetry:         opt.Telemetry,
		WatchdogLimit:     opt.WatchdogLimit,
	})
}
