package smc

import (
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

func tuneKernel(t *testing.T, scheme addrmap.Scheme, n int) *stream.Kernel {
	t.Helper()
	f, _ := stream.FactoryByName("vaxpy")
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(scheme, g, 4, f.Footprints(n, 1), stream.Staggered)
	return f.Make(bases, n, 1)
}

func TestTuneDepthPicksSmallestNearOptimal(t *testing.T) {
	k := tuneKernel(t, addrmap.PI, 1024)
	cfg := Config{Scheme: addrmap.PI, LineWords: 4}
	depths := []int{8, 16, 32, 64, 128}
	choice, results, err := TuneDepth(rdram.DefaultConfig(), k, cfg, depths, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(depths) {
		t.Fatalf("results = %d", len(results))
	}
	// The choice must be near-optimal and no deeper than the best point.
	best := 0.0
	for _, r := range results {
		if r.PercentPeak > best {
			best = r.PercentPeak
		}
	}
	var chosen DepthResult
	for _, r := range results {
		if r.Depth == choice {
			chosen = r
		}
	}
	if chosen.Depth == 0 {
		t.Fatalf("choice %d not among results", choice)
	}
	if chosen.PercentPeak < best-3 {
		t.Errorf("chosen depth %d at %.1f%% is not within tolerance of best %.1f%%", choice, chosen.PercentPeak, best)
	}
	// A shallower depth must not also be within tolerance.
	for _, r := range results {
		if r.Depth < choice && r.PercentPeak >= best-3 {
			t.Errorf("depth %d already within tolerance; choice %d too deep", r.Depth, choice)
		}
	}
}

func TestTuneDepthZeroToleranceFindsPeak(t *testing.T) {
	k := tuneKernel(t, addrmap.CLI, 512)
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4}
	choice, results, err := TuneDepth(rdram.DefaultConfig(), k, cfg, []int{8, 32, 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	bestDepth := 0
	for _, r := range results {
		if r.PercentPeak > best {
			best, bestDepth = r.PercentPeak, r.Depth
		}
	}
	// With zero tolerance the choice is a depth achieving the maximum
	// (the smallest such depth).
	var chosen float64
	for _, r := range results {
		if r.Depth == choice {
			chosen = r.PercentPeak
		}
	}
	if chosen != best {
		t.Errorf("choice %d at %.2f%% is not the best %.2f%% (depth %d)", choice, chosen, best, bestDepth)
	}
}

func TestTuneDepthErrors(t *testing.T) {
	k := tuneKernel(t, addrmap.CLI, 64)
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4}
	if _, _, err := TuneDepth(rdram.DefaultConfig(), k, cfg, nil, 1); err == nil {
		t.Error("expected error for empty depth list")
	}
	if _, _, err := TuneDepth(rdram.DefaultConfig(), k, cfg, []int{8}, -1); err == nil {
		t.Error("expected error for negative tolerance")
	}
	if _, _, err := TuneDepth(rdram.DefaultConfig(), k, cfg, []int{1}, 1); err == nil {
		t.Error("expected error for sub-packet depth")
	}
}
