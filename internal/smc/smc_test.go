package smc

import (
	"math"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// seedVectors fills the kernel's stream elements with a deterministic
// pattern and returns a shadow copy keyed by word address.
func seedVectors(dev *rdram.Device, scheme addrmap.Scheme, lineWords int, k *stream.Kernel) map[int64]uint64 {
	m := addrmap.MustNew(scheme, dev.Config().Geometry, lineWords)
	shadow := make(map[int64]uint64)
	for si, s := range k.Streams {
		for i := 0; i < s.Length; i++ {
			addr := s.Addr(i)
			v := math.Float64bits(float64(si+1) + float64(i)*0.25)
			loc := m.Map(addr)
			dev.PokeWord(loc.Bank, loc.Row, loc.Col, loc.Word, v)
			shadow[addr] = v
		}
	}
	return shadow
}

func verifyFunctional(t *testing.T, dev *rdram.Device, scheme addrmap.Scheme, lineWords int, k *stream.Kernel, shadow map[int64]uint64) {
	t.Helper()
	k.Replay(
		func(addr int64) uint64 { return shadow[addr] },
		func(addr int64, v uint64) { shadow[addr] = v },
	)
	m := addrmap.MustNew(scheme, dev.Config().Geometry, lineWords)
	for addr, want := range shadow {
		loc := m.Map(addr)
		if got := dev.PeekWord(loc.Bank, loc.Row, loc.Col, loc.Word); got != want {
			t.Fatalf("addr %d: device has %x, golden %x", addr, got, want)
		}
	}
}

// runSMC lays out a benchmark kernel, seeds memory, and runs the SMC.
func runSMC(t *testing.T, factory string, n int, strideW int64, cfg Config, placement stream.Placement) (Result, *rdram.Device, *stream.Kernel, map[int64]uint64) {
	t.Helper()
	f, ok := stream.FactoryByName(factory)
	if !ok {
		t.Fatalf("no factory %q", factory)
	}
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(cfg.Scheme, g, cfg.LineWords, f.Footprints(n, strideW), placement)
	k := f.Make(bases, n, strideW)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	shadow := seedVectors(dev, cfg.Scheme, cfg.LineWords, k)
	res, err := Run(dev, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, dev, k, shadow
}

// plan is the test harness for planStream with fresh slabs.
func plan(m *addrmap.Mapper, s stream.Stream) []group {
	groups, _ := planStream(m, s, nil, nil)
	return groups
}

func TestPlanStreamUnitStride(t *testing.T) {
	m := addrmap.MustNew(addrmap.CLI, rdram.DefaultGeometry(), 4)
	groups := plan(m, stream.Stream{Base: 0, Stride: 1, Length: 8, Mode: stream.Read})
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4 (two elements per packet)", len(groups))
	}
	for gi, g := range groups {
		if g.n() != 2 {
			t.Errorf("group %d has %d elems, want 2", gi, g.n())
		}
		if g.elo != gi*2 || g.ehi != gi*2+2 {
			t.Errorf("group %d range = [%d,%d), want [%d,%d)", gi, g.elo, g.ehi, gi*2, gi*2+2)
		}
		if g.words[0] != 0 || g.words[1] != 1 {
			t.Errorf("group %d words = %v, want [0 1]", gi, g.words)
		}
	}
}

func TestPlanStreamStrideTwoWastesHalf(t *testing.T) {
	m := addrmap.MustNew(addrmap.CLI, rdram.DefaultGeometry(), 4)
	groups := plan(m, stream.Stream{Base: 0, Stride: 2, Length: 8, Mode: stream.Read})
	if len(groups) != 8 {
		t.Fatalf("groups = %d, want 8 (one element per packet)", len(groups))
	}
	for gi, g := range groups {
		if g.n() != 1 || g.words[0] != 0 {
			t.Errorf("group %d = %+v, want single element at word 0", gi, g)
		}
	}
}

func TestPlanStreamOddBaseSplitsPackets(t *testing.T) {
	m := addrmap.MustNew(addrmap.CLI, rdram.DefaultGeometry(), 4)
	groups := plan(m, stream.Stream{Base: 1, Stride: 1, Length: 4, Mode: stream.Read})
	// Elements at 1,2,3,4: packets (0,1),(2,3),(4,5) -> 3 groups of 1,2,1.
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if groups[0].n() != 1 || groups[1].n() != 2 || groups[2].n() != 1 {
		t.Errorf("group sizes = %d,%d,%d; want 1,2,1", groups[0].n(), groups[1].n(), groups[2].n())
	}
	if groups[0].words[0] != 1 {
		t.Errorf("first element word = %d, want 1", groups[0].words[0])
	}
}

// TestPlanStreamRecyclesSlabs exercises the scratch-reuse path: planning
// into a previous run's larger slabs must produce identical groups.
func TestPlanStreamRecyclesSlabs(t *testing.T) {
	m := addrmap.MustNew(addrmap.CLI, rdram.DefaultGeometry(), 4)
	big, bigWords := planStream(m, stream.Stream{Base: 0, Stride: 1, Length: 64, Mode: stream.Read}, nil, nil)
	groups, _ := planStream(m, stream.Stream{Base: 1, Stride: 1, Length: 4, Mode: stream.Read}, big[:0], bigWords[:0])
	if len(groups) != 3 || groups[0].n() != 1 || groups[1].n() != 2 || groups[2].n() != 1 {
		t.Fatalf("recycled plan = %+v, want sizes 1,2,1", groups)
	}
	if groups[1].words[0] != 0 || groups[1].words[1] != 1 {
		t.Errorf("recycled middle group words = %v, want [0 1]", groups[1].words)
	}
}

func TestSMCFunctionalAllKernels(t *testing.T) {
	for _, f := range stream.Benchmarks {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, pol := range []Policy{RoundRobin, BankAware} {
				cfg := Config{Scheme: scheme, LineWords: 4, FIFODepth: 16, Policy: pol}
				res, dev, k, shadow := runSMC(t, f.Name, 128, 1, cfg, stream.Staggered)
				if res.PercentPeak <= 0 || res.PercentPeak > 100 {
					t.Errorf("%s/%v/%v: PercentPeak = %.2f out of range", f.Name, scheme, pol, res.PercentPeak)
				}
				verifyFunctional(t, dev, scheme, 4, k, shadow)
			}
		}
	}
}

func TestSMCLongVectorsNearPeak(t *testing.T) {
	// The paper: "computations on streams of a thousand or more elements
	// utilize nearly all of the available memory bandwidth"; copy with
	// 1024 elements and deep FIFOs exceeds 98% of peak.
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		cfg := Config{Scheme: scheme, LineWords: 4, FIFODepth: 128}
		res, _, _, _ := runSMC(t, "copy", 1024, 1, cfg, stream.Staggered)
		if res.PercentPeak < 90 {
			t.Errorf("%v: copy 1024 deep-FIFO = %.2f%%, want > 90%%", scheme, res.PercentPeak)
		}
	}
}

func TestSMCBeatsNaturalOrderEverywhere(t *testing.T) {
	// "An SMC configured with appropriate FIFO depths can always exploit
	// available memory bandwidth better than natural-order cacheline
	// accesses" — check unit-stride kernels with deep FIFOs.
	for _, f := range stream.Benchmarks {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			cfg := Config{Scheme: scheme, LineWords: 4, FIFODepth: 128}
			res, _, _, _ := runSMC(t, f.Name, 1024, 1, cfg, stream.Staggered)
			if res.PercentPeak < 80 {
				t.Errorf("%s/%v: SMC = %.1f%%, expected well above natural-order (<70%%)", f.Name, scheme, res.PercentPeak)
			}
		}
	}
}

func TestDeeperFIFOsHelpLongVectors(t *testing.T) {
	// Figure 7 left-to-right: performance rises with FIFO depth. The PI
	// 1024-element curves flatten (and may dip slightly) near the top —
	// the paper's §6 notes the simple MSU falls short of the PI limit for
	// long vectors because of page-crossing overheads — so the assertion
	// is: clear improvement from 8 to 32, and no collapse from 32 to 128.
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		p := map[int]float64{}
		for _, depth := range []int{8, 32, 128} {
			cfg := Config{Scheme: scheme, LineWords: 4, FIFODepth: depth}
			res, _, _, _ := runSMC(t, "vaxpy", 1024, 1, cfg, stream.Staggered)
			p[depth] = res.PercentPeak
		}
		if p[32] <= p[8] {
			t.Errorf("%v: depth 32 (%.1f%%) not above depth 8 (%.1f%%)", scheme, p[32], p[8])
		}
		if p[128] < p[32]-3 {
			t.Errorf("%v: depth 128 (%.1f%%) collapsed below depth 32 (%.1f%%)", scheme, p[128], p[32])
		}
		if p[128] < p[8]+5 {
			t.Errorf("%v: depth 128 (%.1f%%) shows no gain over depth 8 (%.1f%%)", scheme, p[128], p[8])
		}
	}
}

func TestShortVectorsPayStartup(t *testing.T) {
	// The startup-delay bound: with 128-element vectors and very deep
	// FIFOs, the one-time prefetch delay costs more of the total time than
	// with 1024-element vectors.
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 128}
	short, _, _, _ := runSMC(t, "vaxpy", 128, 1, cfg, stream.Staggered)
	long, _, _, _ := runSMC(t, "vaxpy", 1024, 1, cfg, stream.Staggered)
	if short.PercentPeak >= long.PercentPeak {
		t.Errorf("short vectors %.2f%% should trail long vectors %.2f%%", short.PercentPeak, long.PercentPeak)
	}
}

func TestAlignmentMattersMostForShallowPIFIFOs(t *testing.T) {
	// The paper (§6): "Vector alignment has little impact on effective
	// bandwidth for SMC systems with CLI memory organizations ... A larger
	// performance difference arises between the maximum and minimum
	// bank-conflict simulations for SMC systems with PI memory
	// organizations and FIFO depths of 32 elements or fewer."
	shallow := Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 16}
	al, _, _, _ := runSMC(t, "vaxpy", 1024, 1, shallow, stream.Aligned)
	st, _, _, _ := runSMC(t, "vaxpy", 1024, 1, shallow, stream.Staggered)
	if st.PercentPeak-al.PercentPeak < 10 {
		t.Errorf("PI depth 16: aligned %.1f%% vs staggered %.1f%%; expected a large gap", al.PercentPeak, st.PercentPeak)
	}
	// Deep FIFOs close the gap on both organizations ("with deep FIFOs
	// (64-128 elements) ... the SMC can deliver good performance even for
	// a sub-optimal data placement").
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		deep := Config{Scheme: scheme, LineWords: 4, FIFODepth: 128}
		al, _, _, _ := runSMC(t, "vaxpy", 1024, 1, deep, stream.Aligned)
		st, _, _, _ := runSMC(t, "vaxpy", 1024, 1, deep, stream.Staggered)
		if diff := st.PercentPeak - al.PercentPeak; diff > 6 || diff < -6 {
			t.Errorf("%v depth 128: aligned %.1f%% vs staggered %.1f%%; expected near-identical", scheme, al.PercentPeak, st.PercentPeak)
		}
	}
}

func TestBankAwareHelpsConflictingCLILayouts(t *testing.T) {
	// The bank-aware extension targets exactly the bank-conflict stalls a
	// conflicting (aligned) layout provokes on closed-page CLI systems.
	rr := Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 32, Policy: RoundRobin}
	ba := rr
	ba.Policy = BankAware
	rrRes, _, _, _ := runSMC(t, "vaxpy", 1024, 1, rr, stream.Aligned)
	baRes, _, _, _ := runSMC(t, "vaxpy", 1024, 1, ba, stream.Aligned)
	if baRes.PercentPeak <= rrRes.PercentPeak {
		t.Errorf("CLI aligned: bank-aware %.2f%% should beat round-robin %.2f%%", baRes.PercentPeak, rrRes.PercentPeak)
	}
	// On favourable layouts it must not be a disaster (small losses are
	// expected: dodging one busy bank can cost an extra bus turnaround).
	rrSt, _, _, _ := runSMC(t, "vaxpy", 1024, 1, rr, stream.Staggered)
	baSt, _, _, _ := runSMC(t, "vaxpy", 1024, 1, ba, stream.Staggered)
	if baSt.PercentPeak < rrSt.PercentPeak-8 {
		t.Errorf("CLI staggered: bank-aware %.2f%% collapsed versus round-robin %.2f%%", baSt.PercentPeak, rrSt.PercentPeak)
	}
}

func TestNonUnitStrideAttainable(t *testing.T) {
	// Non-unit strides can use at most one word of every two-word packet:
	// PercentPeak tops out near 50 while PercentAttainable rescales to
	// ~100 (Figure 9's y-axis).
	cfg := Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 128}
	res, dev, k, shadow := runSMC(t, "vaxpy", 1024, 4, cfg, stream.Staggered)
	if res.PercentPeak > 51 {
		t.Errorf("stride-4 PercentPeak = %.2f, cannot exceed 50%%", res.PercentPeak)
	}
	if res.PercentAttainable < res.PercentPeak*1.9 {
		t.Errorf("PercentAttainable = %.2f, want ~2x PercentPeak %.2f", res.PercentAttainable, res.PercentPeak)
	}
	verifyFunctional(t, dev, addrmap.PI, 4, k, shadow)
}

func TestSpeculativeActivateHelpsPI(t *testing.T) {
	// The §6 extension hides page-crossing precharge/activate latency on
	// open-page systems for long streams.
	base := Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 32}
	spec := base
	spec.SpeculateActivate = true
	b, _, _, _ := runSMC(t, "daxpy", 4096, 1, base, stream.Staggered)
	sp, dev, k, shadow := runSMC(t, "daxpy", 4096, 1, spec, stream.Staggered)
	if sp.PercentPeak < b.PercentPeak {
		t.Errorf("speculative activate %.3f%% worse than base %.3f%%", sp.PercentPeak, b.PercentPeak)
	}
	verifyFunctional(t, dev, addrmap.PI, 4, k, shadow)
}

func TestSMCOddLengthAndOffsetStreams(t *testing.T) {
	// Partial packets at stream edges (hydro's zx+10/zx+11 views) must be
	// merged, not clobbered.
	cfg := Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 16}
	res, dev, k, shadow := runSMC(t, "hydro", 101, 1, cfg, stream.Staggered)
	if res.PercentPeak <= 0 {
		t.Error("no progress")
	}
	verifyFunctional(t, dev, addrmap.PI, 4, k, shadow)
}

func TestSMCConfigValidation(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	k := stream.Copy(0, 1<<12, 16, 1)
	if _, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 1}); err == nil {
		t.Error("expected error for FIFODepth < packet")
	}
	if _, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 5, FIFODepth: 8}); err == nil {
		t.Error("expected error for odd LineWords")
	}
	bad := stream.Copy(0, 1<<12, 16, 1)
	bad.Compute = nil
	if _, err := Run(dev, bad, Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 8}); err == nil {
		t.Error("expected error for invalid kernel")
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || BankAware.String() != "bank-aware" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}

func TestTransferAccountingUnitStride(t *testing.T) {
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 32}
	res, _, _, _ := runSMC(t, "copy", 1024, 1, cfg, stream.Staggered)
	if res.UsefulWords != 2048 || res.TransferredWords != 2048 {
		t.Errorf("useful/transferred = %d/%d, want 2048/2048 (dense packets)", res.UsefulWords, res.TransferredWords)
	}
	if res.PercentAttainable != res.PercentPeak {
		t.Errorf("unit stride: attainable %.2f should equal peak %.2f", res.PercentAttainable, res.PercentPeak)
	}
}

func TestCPUStallAccounting(t *testing.T) {
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 8}
	res, _, _, _ := runSMC(t, "copy", 128, 1, cfg, stream.Staggered)
	if res.CPUStallCycles <= 0 {
		t.Error("expected some CPU stall (startup at least)")
	}
	if res.CPUStallCycles >= res.Cycles {
		t.Errorf("stall %d exceeds total %d", res.CPUStallCycles, res.Cycles)
	}
}
