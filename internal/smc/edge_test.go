package smc

import (
	"math"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// fillKernel is a write-only stream: y[i] = i. It exercises the SMC with
// no read FIFOs at all.
func fillKernel(base int64, n int) *stream.Kernel {
	return &stream.Kernel{
		Name: "fill",
		Streams: []stream.Stream{
			{Name: "y", Base: base, Stride: 1, Length: n, Mode: stream.Write},
		},
		Compute: func(i int, _ []float64) []float64 { return []float64{float64(i)} },
	}
}

// readOnlyKernel is a read-only stream, exercising the SMC with no write
// FIFOs.
func readOnlyKernel(base int64, n int) *stream.Kernel {
	return &stream.Kernel{
		Name: "drain",
		Streams: []stream.Stream{
			{Name: "x", Base: base, Stride: 1, Length: n, Mode: stream.Read},
		},
		Compute: func(int, []float64) []float64 { return nil },
	}
}

func TestSMCWriteOnlyKernel(t *testing.T) {
	g := rdram.DefaultGeometry()
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		bases := stream.MustLayout(scheme, g, 4, []int64{512}, stream.Staggered)
		k := fillKernel(bases[0], 512)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, k, Config{Scheme: scheme, LineWords: 4, FIFODepth: 32})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.PercentPeak < 80 {
			t.Errorf("%v: fill = %.1f%%, write bursts should stream", scheme, res.PercentPeak)
		}
		// Every value must land.
		m := addrmap.MustNew(scheme, g, 4)
		for i := 0; i < 512; i++ {
			loc := m.Map(bases[0] + int64(i))
			if got := dev.PeekWord(loc.Bank, loc.Row, loc.Col, loc.Word); got != math.Float64bits(float64(i)) {
				t.Fatalf("%v: element %d = %x", scheme, i, got)
			}
		}
	}
}

func TestSMCReadOnlyKernel(t *testing.T) {
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(addrmap.PI, g, 4, []int64{1024}, stream.Staggered)
	k := readOnlyKernel(bases[0], 1024)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	res, err := Run(dev, k, Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.PercentPeak < 90 {
		t.Errorf("read-only stream = %.1f%%, want near peak (no turnarounds)", res.PercentPeak)
	}
	if res.Device.Writes != 0 {
		t.Errorf("read-only kernel wrote %d packets", res.Device.Writes)
	}
	if res.Device.Retires != 0 {
		t.Errorf("read-only kernel retired %d times", res.Device.Retires)
	}
}

func TestSMCOddLengthPartialPacket(t *testing.T) {
	// 7 elements: the final packet carries one element; its neighbour word
	// must be preserved by the read-merge.
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(addrmap.CLI, g, 4, []int64{8, 8}, stream.Staggered)
	k := stream.Copy(bases[0], bases[1], 7, 1)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	m := addrmap.MustNew(addrmap.CLI, g, 4)
	// Seed x with values and poison the word just past y's last element.
	for i := int64(0); i < 7; i++ {
		loc := m.Map(bases[0] + i)
		dev.PokeWord(loc.Bank, loc.Row, loc.Col, loc.Word, math.Float64bits(float64(i+1)))
	}
	sentinel := m.Map(bases[1] + 7)
	dev.PokeWord(sentinel.Bank, sentinel.Row, sentinel.Col, sentinel.Word, 0xabcdef)
	if _, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 8}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 7; i++ {
		loc := m.Map(bases[1] + i)
		if got := dev.PeekWord(loc.Bank, loc.Row, loc.Col, loc.Word); got != math.Float64bits(float64(i+1)) {
			t.Fatalf("y[%d] = %x", i, got)
		}
	}
	if got := dev.PeekWord(sentinel.Bank, sentinel.Row, sentinel.Col, sentinel.Word); got != 0xabcdef {
		t.Errorf("word beyond the stream was clobbered: %x", got)
	}
}

func TestSMCSingleElementStream(t *testing.T) {
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(addrmap.PI, g, 4, []int64{2, 2}, stream.Staggered)
	k := stream.Copy(bases[0], bases[1], 1, 1)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	m := addrmap.MustNew(addrmap.PI, g, 4)
	loc := m.Map(bases[0])
	dev.PokeWord(loc.Bank, loc.Row, loc.Col, loc.Word, math.Float64bits(42))
	res, err := Run(dev, k, Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsefulWords != 2 {
		t.Errorf("UsefulWords = %d", res.UsefulWords)
	}
	out := m.Map(bases[1])
	if got := dev.PeekWord(out.Bank, out.Row, out.Col, out.Word); got != math.Float64bits(42) {
		t.Errorf("copied value = %x", got)
	}
}

func TestSpeculateActivateIsNoOpForCLI(t *testing.T) {
	// The extension only applies to open-page PI systems; on CLI it must
	// change nothing.
	g := rdram.DefaultGeometry()
	run := func(spec bool) int64 {
		bases := stream.MustLayout(addrmap.CLI, g, 4, f4(1024), stream.Staggered)
		k := stream.Vaxpy(bases[0], bases[1], bases[2], 1024, 1)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 32, SpeculateActivate: spec})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("CLI cycles differ with speculation: %d vs %d", a, b)
	}
}

func f4(n int) []int64 { return []int64{int64(n), int64(n), int64(n)} }

func TestSMCManyStreams(t *testing.T) {
	// Eight independent streams (the paper's concurrency experiment), via
	// the SMC: still near peak, still functionally exact.
	g := rdram.DefaultGeometry()
	fps := make([]int64, 8)
	for i := range fps {
		fps[i] = 512
	}
	bases := stream.MustLayout(addrmap.PI, g, 4, fps, stream.Staggered)
	k := stream.MultiStream(7, 1, bases, 512, 1)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	shadow := seedVectors(dev, addrmap.PI, 4, k)
	res, err := Run(dev, k, Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.PercentPeak < 85 {
		t.Errorf("8-stream SMC = %.1f%%", res.PercentPeak)
	}
	verifyFunctional(t, dev, addrmap.PI, 4, k, shadow)
}

func TestSMCSwapTwoWriteFIFOs(t *testing.T) {
	// swap has two write FIFOs over the same vectors the reads use: the
	// fiercest RAW/WAR mix of the classic kernels; it must stay exact and
	// fast on both organizations.
	g := rdram.DefaultGeometry()
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		bases := stream.MustLayout(scheme, g, 4, []int64{1024, 1024}, stream.Staggered)
		k := stream.Swap(bases[0], bases[1], 1024, 1)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		shadow := seedVectors(dev, scheme, 4, k)
		res, err := Run(dev, k, Config{Scheme: scheme, LineWords: 4, FIFODepth: 64})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.PercentPeak < 80 {
			t.Errorf("%v: swap = %.1f%%", scheme, res.PercentPeak)
		}
		verifyFunctional(t, dev, scheme, 4, k, shadow)
	}
}

func TestHitFirstPolicy(t *testing.T) {
	// hit-first wins on the conflicting (aligned) daxpy CLI layout and
	// must stay functional everywhere.
	g := rdram.DefaultGeometry()
	run := func(pol Policy, pl stream.Placement) float64 {
		f, _ := stream.FactoryByName("daxpy")
		bases := stream.MustLayout(addrmap.CLI, g, 4, f.Footprints(1024, 1), pl)
		k := f.Make(bases, 1024, 1)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 32, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res.PercentPeak
	}
	rr := run(RoundRobin, stream.Aligned)
	hf := run(HitFirst, stream.Aligned)
	if hf <= rr {
		t.Errorf("aligned daxpy CLI: hit-first %.1f%% should beat round-robin %.1f%%", hf, rr)
	}
	// On the favourable layout the reordering must not collapse.
	rrS := run(RoundRobin, stream.Staggered)
	hfS := run(HitFirst, stream.Staggered)
	if hfS < rrS-8 {
		t.Errorf("staggered: hit-first %.1f%% collapsed vs round-robin %.1f%%", hfS, rrS)
	}
	// Functional correctness under the reordering policy.
	f, _ := stream.FactoryByName("vaxpy")
	bases := stream.MustLayout(addrmap.PI, g, 4, f.Footprints(256, 1), stream.Aligned)
	k := f.Make(bases, 256, 1)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	shadow := seedVectors(dev, addrmap.PI, 4, k)
	if _, err := Run(dev, k, Config{Scheme: addrmap.PI, LineWords: 4, FIFODepth: 16, Policy: HitFirst, SpeculateActivate: true}); err != nil {
		t.Fatal(err)
	}
	verifyFunctional(t, dev, addrmap.PI, 4, k, shadow)
}
