package fabric_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rdramstream/internal/fabric"
	"rdramstream/internal/sim"
)

// TestSeededPlansDeterministic: a seed names one fault schedule forever.
func TestSeededPlansDeterministic(t *testing.T) {
	a := fabric.SeededPlans(42, 5, 4)
	b := fabric.SeededPlans(42, 5, 4)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("plan counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d diverges across derivations: %+v vs %+v", i, a[i], b[i])
		}
	}
	sabotaged := 0
	for _, p := range a {
		if p != (fabric.ChaosPlan{}) {
			sabotaged++
		}
	}
	if sabotaged == 0 {
		t.Fatal("seeded schedule sabotaged no worker")
	}
	if c := fabric.SeededPlans(43, 5, 4); len(c) != 5 {
		t.Fatalf("plan count for seed 43: %d", len(c))
	}
}

// TestChaosFleetByteIdentity is the tentpole acceptance test: a fleet
// under a seeded chaos schedule — workers killed and stalled mid-sweep —
// still merges every sweep byte-identical to a local sim.RunAll, in
// input order, duplicate-free.
func TestChaosFleetByteIdentity(t *testing.T) {
	for _, seed := range []int64{1, 7, 1999} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plans := fabric.SeededPlans(seed, 4, 3)
			f := newFleet(t, 4, plans, fabric.Config{
				// Stalled attempts must unwedge without a caller deadline.
				AttemptTimeout:     300 * time.Millisecond,
				MaxScenarioRetries: 2,
			})
			scs := mixedSweep(20)
			sw, err := f.co.StartSweep(context.Background(), scs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := collect(t, sw, len(scs))
			if err != nil {
				t.Fatal(err)
			}
			assertByteIdentical(t, scs, got)
			if sw.Duplicates() != 0 {
				t.Fatalf("seed %d: %d duplicate landings", seed, sw.Duplicates())
			}
			var kills, stalls int64
			for _, cb := range f.chaos {
				kills += cb.Kills()
				stalls += cb.Stalls()
			}
			if kills+stalls == 0 {
				t.Fatalf("seed %d: chaos schedule never fired", seed)
			}
			st := f.co.Stats()
			if st.WorkerFailures == 0 {
				t.Fatalf("seed %d: faults fired but no worker failure was booked", seed)
			}
			t.Logf("seed %d: kills=%d stalls=%d reshards=%d local=%d remote=%d",
				seed, kills, stalls, st.Reshards, st.LocalScenarios, st.RemoteScenarios)
		})
	}
}

// collect drains a sweep in input order into outcomes, failing on any
// per-scenario error.
func collect(t *testing.T, sw *fabric.Sweep, n int) ([]sim.Outcome, error) {
	t.Helper()
	out := make([]sim.Outcome, n)
	for i := 0; i < n; i++ {
		l, err := sw.Wait(context.Background(), i)
		if err != nil {
			return nil, err
		}
		if l.Error != "" {
			return nil, fmt.Errorf("scenario %d (%s): %s", i, l.Label, l.Error)
		}
		out[i] = *l.Outcome
	}
	return out, nil
}
