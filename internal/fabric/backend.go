package fabric

import (
	"context"

	"rdramstream/internal/resultcache"
	"rdramstream/internal/service"
	"rdramstream/internal/service/client"
	"rdramstream/internal/sim"
)

// ClientBackend is the production Backend: one worker reached over the
// rdserved HTTP API via internal/service/client.
type ClientBackend struct {
	Client *client.Client
}

// Health probes GET /healthz.
func (b *ClientBackend) Health(ctx context.Context) error {
	_, err := b.Client.Health(ctx)
	return err
}

// Sweep streams POST /v1/sweep; the client already hands fn only
// per-scenario lines and returns the trailing summary.
func (b *ClientBackend) Sweep(ctx context.Context, scs []sim.Scenario, fn func(service.SweepLine) error) (service.SweepLine, error) {
	return b.Client.Sweep(ctx, scs, fn)
}

// CachedOutcome probes GET /v1/cache/{key}.
func (b *ClientBackend) CachedOutcome(ctx context.Context, key string) (sim.Outcome, bool, error) {
	return b.Client.CachedOutcome(ctx, key)
}

// ServiceBackend adapts an in-process service.Service to the Backend
// interface — a worker without the HTTP hop, for tests, the chaos
// harness, and rdload's fleet mode.
type ServiceBackend struct {
	Svc *service.Service
}

// Health always succeeds while the service accepts work.
func (b *ServiceBackend) Health(ctx context.Context) error { return ctx.Err() }

// Sweep submits the scenarios as one job and emits lines to fn in input
// order as results land, mirroring the HTTP stream's contract.
func (b *ServiceBackend) Sweep(ctx context.Context, scs []sim.Scenario, fn func(service.SweepLine) error) (service.SweepLine, error) {
	job, err := b.Svc.Submit(ctx, scs)
	if err != nil {
		return service.SweepLine{}, err
	}
	cacheHits, failed := 0, 0
	for i := range scs {
		res, err := job.WaitResult(ctx, i)
		if err != nil {
			return service.SweepLine{}, err
		}
		if res.Cached {
			cacheHits++
		}
		if res.Error != "" {
			failed++
		}
		if fn != nil {
			if err := fn(service.SweepLine{
				Index: i, Label: res.Label, Cached: res.Cached,
				Outcome: res.Outcome, Error: res.Error,
			}); err != nil {
				return service.SweepLine{}, err
			}
		}
	}
	return service.SweepLine{
		Done: true, JobID: job.ID(), Total: len(scs),
		CacheHits: cacheHits, Failed: failed,
	}, nil
}

// CachedOutcome peeks the service's result cache locally (memory or
// disk) — never its peer tier, so probes cannot loop.
func (b *ServiceBackend) CachedOutcome(ctx context.Context, key string) (sim.Outcome, bool, error) {
	if err := ctx.Err(); err != nil {
		return sim.Outcome{}, false, err
	}
	out, ok := b.Svc.Cache().Peek(key)
	return out, ok, nil
}

// compile-time interface checks
var (
	_ Backend              = (*ClientBackend)(nil)
	_ Backend              = (*ServiceBackend)(nil)
	_ resultcache.PeerFunc = (*Coordinator)(nil).peerLookup
)
