package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"rdramstream/internal/service"
	"rdramstream/internal/sim"
)

// ErrChaosKill is the injected mid-stream failure; errors.Is-matchable
// so tests can distinguish injected faults from real ones.
var ErrChaosKill = errors.New("fabric: chaos kill")

// ChaosPlan scripts one worker's misbehavior. The zero plan is a healthy
// worker. All triggers are deterministic functions of call counts —
// never of time — so a (seed, fleet) pair replays the exact same fault
// schedule on every run.
type ChaosPlan struct {
	// KillAfterRows, when > 0, fails a sweep with ErrChaosKill after
	// emitting that many rows (1 = die after the first row — the
	// mid-stream partial-results case).
	KillAfterRows int
	// StallAfterRows, when > 0, blocks a sweep after that many rows
	// until its context expires — the hung-worker case, exercising
	// attempt timeouts.
	StallAfterRows int
	// FailHealth makes health probes fail while the plan is active.
	FailHealth bool
	// MisbehaveSweeps bounds how many sweep calls the plan sabotages;
	// after that the worker behaves (0 = misbehave forever).
	MisbehaveSweeps int
}

// ChaosBackend wraps a Backend with a scripted fault plan.
type ChaosBackend struct {
	Inner Backend
	Plan  ChaosPlan

	mu     sync.Mutex
	sweeps int   // guarded by mu
	kills  int64 // guarded by mu
	stalls int64 // guarded by mu
}

// Kills reports how many sweeps the plan killed mid-stream.
func (b *ChaosBackend) Kills() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.kills
}

// Stalls reports how many sweeps the plan stalled.
func (b *ChaosBackend) Stalls() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stalls
}

// active reports whether this sweep call (1-based) still misbehaves.
func (b *ChaosBackend) active(call int) bool {
	return b.Plan.MisbehaveSweeps == 0 || call <= b.Plan.MisbehaveSweeps
}

// Health fails while the plan is active and FailHealth is set.
func (b *ChaosBackend) Health(ctx context.Context) error {
	b.mu.Lock()
	sab := b.Plan.FailHealth && b.active(b.sweeps+1)
	b.mu.Unlock()
	if sab {
		return fmt.Errorf("%w: health probe sabotaged", ErrChaosKill)
	}
	return b.Inner.Health(ctx)
}

// Sweep runs the inner sweep, counting delivered rows and injecting the
// plan's fault at its scripted row. Rows delivered before the fault
// stand — exactly the partial-progress shape a real mid-stream death
// leaves behind.
func (b *ChaosBackend) Sweep(ctx context.Context, scs []sim.Scenario, fn func(service.SweepLine) error) (service.SweepLine, error) {
	b.mu.Lock()
	b.sweeps++
	sab := b.active(b.sweeps)
	plan := b.Plan
	b.mu.Unlock()
	if !sab {
		return b.Inner.Sweep(ctx, scs, fn)
	}
	rows := 0
	summary, err := b.Inner.Sweep(ctx, scs, func(l service.SweepLine) error {
		if plan.KillAfterRows > 0 && rows >= plan.KillAfterRows {
			return fmt.Errorf("%w: after %d rows", ErrChaosKill, rows)
		}
		if plan.StallAfterRows > 0 && rows >= plan.StallAfterRows {
			b.mu.Lock()
			b.stalls++
			b.mu.Unlock()
			<-ctx.Done()
			return context.Cause(ctx)
		}
		rows++
		if fn != nil {
			return fn(l)
		}
		return nil
	})
	if errors.Is(err, ErrChaosKill) {
		b.mu.Lock()
		b.kills++
		b.mu.Unlock()
	}
	return summary, err
}

// CachedOutcome passes through: the chaos harness targets the sweep and
// health paths, not the best-effort peer cache tier.
func (b *ChaosBackend) CachedOutcome(ctx context.Context, key string) (sim.Outcome, bool, error) {
	return b.Inner.CachedOutcome(ctx, key)
}

var _ Backend = (*ChaosBackend)(nil)

// splitmix64 is the chaos schedule's PRNG — tiny, seedable, and stable
// across Go releases (unlike math/rand's unexported generator), so a
// seed names the same schedule forever.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeededPlans derives a deterministic fault schedule for n workers from
// a seed: roughly half the fleet misbehaves (at least one worker when
// n > 0), each saboteur killing or stalling after a scripted row within
// [1, rows]. Same (seed, n, rows) → same plans, every run.
func SeededPlans(seed int64, n, rows int) []ChaosPlan {
	if rows < 1 {
		rows = 1
	}
	rng := splitmix64(seed)
	plans := make([]ChaosPlan, n)
	sabotaged := 0
	for i := range plans {
		r := rng.next()
		if r%2 == 0 && sabotaged > 0 {
			continue // healthy worker
		}
		sabotaged++
		p := ChaosPlan{MisbehaveSweeps: 1 + int(r>>8%2)}
		at := 1 + int(r>>16%uint64(rows))
		if r>>4%4 == 0 {
			p.StallAfterRows = at
		} else {
			p.KillAfterRows = at
			p.FailHealth = r>>32%2 == 0
		}
		plans[i] = p
	}
	return plans
}
