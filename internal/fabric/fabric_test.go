package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/fabric"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/service"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

func scenario(n int) sim.Scenario {
	return sim.Scenario{
		KernelName: "daxpy", N: n, Scheme: addrmap.PI, Mode: sim.SMC,
		FIFODepth: 32, Placement: stream.Staggered,
	}
}

// mixedSweep builds a sweep diverse enough to spread across a ring.
func mixedSweep(n int) []sim.Scenario {
	kernels := []string{"copy", "daxpy"}
	scs := make([]sim.Scenario, 0, n)
	for i := 0; i < n; i++ {
		sc := scenario(64 + 32*i)
		sc.KernelName = kernels[i%len(kernels)]
		scs = append(scs, sc)
	}
	return scs
}

func newService(t *testing.T) *service.Service {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc
}

// fleet is a coordinator over n in-process workers, each optionally
// wrapped in a chaos plan. plans may be nil (healthy fleet) or shorter
// than n (remaining workers healthy).
type fleet struct {
	co      *fabric.Coordinator
	workers []*service.Service
	chaos   []*fabric.ChaosBackend
}

func newFleet(t *testing.T, n int, plans []fabric.ChaosPlan, cfg fabric.Config) *fleet {
	t.Helper()
	f := &fleet{}
	backends := make(map[string]fabric.Backend, n)
	for i := 0; i < n; i++ {
		svc := newService(t)
		f.workers = append(f.workers, svc)
		var b fabric.Backend = &fabric.ServiceBackend{Svc: svc}
		var plan fabric.ChaosPlan
		if i < len(plans) {
			plan = plans[i]
		}
		cb := &fabric.ChaosBackend{Inner: b, Plan: plan}
		f.chaos = append(f.chaos, cb)
		backends[fmt.Sprintf("http://w%d:1", i)] = cb
	}
	cfg.Local = newService(t)
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = -1 // tests drive ProbeAll directly
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	cfg.Dial = func(addr string) fabric.Backend { return backends[addr] }
	co, err := fabric.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	for addr := range backends {
		if err := co.Register(addr); err != nil {
			t.Fatal(err)
		}
	}
	f.co = co
	return f
}

// assertByteIdentical is the package's correctness oracle: whatever path
// the fabric routed each scenario through, the merged outcomes must be
// byte-identical JSON to a local sim.RunAll.
func assertByteIdentical(t *testing.T, scs []sim.Scenario, got []sim.Outcome) {
	t.Helper()
	want, err := sim.RunAll(scs, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("fabric outcomes diverge from local sim.RunAll\nlocal:  %.200s\nfabric: %.200s", wantJSON, gotJSON)
	}
}

// TestZeroWorkersLocalFallback is the acceptance criterion for the
// bottom of the degradation ladder: a coordinator with no registered
// workers still serves correct results via its local service.
func TestZeroWorkersLocalFallback(t *testing.T) {
	f := newFleet(t, 0, nil, fabric.Config{})
	scs := mixedSweep(6)
	got, err := f.co.RunAll(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, scs, got)
	st := f.co.Stats()
	if st.RemoteScenarios != 0 {
		t.Fatalf("no workers, yet %d remote scenarios", st.RemoteScenarios)
	}
	if st.LocalScenarios != int64(len(scs)) {
		t.Fatalf("local fallback ran %d of %d scenarios", st.LocalScenarios, len(scs))
	}
}

func TestDistributedSweepMatchesLocal(t *testing.T) {
	f := newFleet(t, 3, nil, fabric.Config{})
	scs := mixedSweep(12)
	got, err := f.co.RunAll(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, scs, got)
	st := f.co.Stats()
	if st.RemoteScenarios != int64(len(scs)) {
		t.Fatalf("healthy fleet: want all %d scenarios remote, got %d (local %d)",
			len(scs), st.RemoteScenarios, st.LocalScenarios)
	}
	if st.Reshards != 0 || st.WorkerFailures != 0 {
		t.Fatalf("healthy fleet recorded reshards=%d failures=%d", st.Reshards, st.WorkerFailures)
	}
}

// TestMidStreamKillReshardsOnlyUnacked is the partial-failure acceptance
// test: a worker dying after streaming some rows must cause only its
// unacknowledged scenarios to be re-sharded, and the merged result must
// be duplicate-free and byte-identical to local execution.
func TestMidStreamKillReshardsOnlyUnacked(t *testing.T) {
	// Worker 0 delivers 2 rows then dies, once; workers 1..2 are healthy.
	plans := []fabric.ChaosPlan{{KillAfterRows: 2, MisbehaveSweeps: 1}}
	f := newFleet(t, 3, plans, fabric.Config{})
	scs := mixedSweep(16)
	sw, err := f.co.StartSweep(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]sim.Outcome, len(scs))
	for i := range scs {
		l, err := sw.Wait(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if l.Error != "" {
			t.Fatalf("scenario %d (%s): %s", i, l.Label, l.Error)
		}
		got[i] = *l.Outcome
	}
	assertByteIdentical(t, scs, got)
	if sw.Duplicates() != 0 {
		t.Fatalf("merged stream had %d duplicate landings", sw.Duplicates())
	}
	if f.chaos[0].Kills() == 0 {
		t.Fatal("chaos plan never fired: worker 0 was not killed mid-stream")
	}
	// Only the killed worker's unacked share was re-sharded: strictly
	// fewer re-assignments than the sweep has scenarios, and the 2 rows
	// it delivered before dying were never re-run.
	if r := sw.Reshards(); r == 0 || r >= int64(len(scs)-2) {
		t.Fatalf("reshards = %d, want in [1, %d)", r, len(scs)-2)
	}
	if st := f.co.Stats(); st.WorkerFailures == 0 {
		t.Fatal("mid-stream death booked no worker failure")
	}
}

// TestAlwaysFailingWorkerFallsBackLocally drives a scenario through the
// whole ladder: remote attempts exhaust, breaker opens, local fallback
// answers.
func TestAlwaysFailingWorkerFallsBackLocally(t *testing.T) {
	plans := []fabric.ChaosPlan{{KillAfterRows: 1}} // misbehave forever
	f := newFleet(t, 1, plans, fabric.Config{
		MaxScenarioRetries: 2,
		BreakerThreshold:   2,
		BreakerCooldown:    time.Hour, // stays open for the whole test
	})
	scs := mixedSweep(8)
	got, err := f.co.RunAll(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, scs, got)
	st := f.co.Stats()
	if st.LocalScenarios == 0 {
		t.Fatal("exhausted retries never fell back to local execution")
	}
	ws := f.co.Workers()
	if len(ws) != 1 || ws[0].State != fabric.WorkerBreakerOpen {
		t.Fatalf("worker state = %+v, want one breaker_open worker", ws)
	}
	if st.Live != 0 {
		t.Fatalf("breaker-open worker still counted live (%d)", st.Live)
	}
}

// TestAdmissionControlSheds verifies the top of the ladder: with the
// in-flight bound reached, further sweeps shed with ErrSaturated rather
// than queueing.
func TestAdmissionControlSheds(t *testing.T) {
	// A permanently stalling worker keeps the first sweep in flight until
	// we cancel it.
	plans := []fabric.ChaosPlan{{StallAfterRows: 1}}
	f := newFleet(t, 1, plans, fabric.Config{
		MaxInFlightSweeps:  1,
		MaxScenarioRetries: 1000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	sw, err := f.co.StartSweep(ctx, mixedSweep(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.co.StartSweep(context.Background(), mixedSweep(2)); !errors.Is(err, fabric.ErrSaturated) {
		t.Fatalf("second sweep: err = %v, want ErrSaturated", err)
	}
	if st := f.co.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	cancel()
	<-sw.Done() // every slot lands the cancellation cause; no waiter hangs
	if _, err := sw.Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait after cancel: %v (slots must land, not hang)", err)
	}
}

// TestPeerCacheTier: a result cached on its owning worker is served to
// the coordinator's local cache through the peer tier without rerunning.
func TestPeerCacheTier(t *testing.T) {
	f := newFleet(t, 2, nil, fabric.Config{})
	scs := mixedSweep(6)
	// Populate the workers' caches through a distributed sweep.
	if _, err := f.co.RunAll(context.Background(), scs); err != nil {
		t.Fatal(err)
	}
	// Now ask the coordinator's local service directly: the lookup should
	// be rescued by the key's owning worker, not re-simulated.
	before := f.co.Stats().PeerHits
	sc := scs[0]
	key, err := resultcache.Key(sc)
	if err != nil {
		t.Fatal(err)
	}
	ownerHas := false
	for _, w := range f.workers {
		if _, ok := w.Cache().Peek(key); ok {
			ownerHas = true
		}
	}
	if !ownerHas {
		t.Fatal("sanity: no worker cached the scenario after the sweep")
	}
	out, cached, err := f.co.LocalService().Cache().Do(context.Background(), sc,
		func(sim.Scenario) (sim.Outcome, error) { return sim.Run(sc) })
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("peer-tier lookup missed: scenario re-simulated locally")
	}
	if f.co.Stats().PeerHits <= before {
		t.Fatalf("peer hits did not advance (before %d, after %d)", before, f.co.Stats().PeerHits)
	}
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := json.Marshal(out); string(a) != string(mustJSON(t, direct)) {
		t.Fatal("peer-served outcome differs from direct simulation")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHTTPSweepStream drives the full HTTP surface: coordinator handler
// over a chaotic fleet, asserting the NDJSON stream is in input order,
// duplicate-free, and terminated by one summary line.
func TestHTTPSweepStream(t *testing.T) {
	plans := []fabric.ChaosPlan{{KillAfterRows: 1, MisbehaveSweeps: 1}}
	f := newFleet(t, 3, plans, fabric.Config{})
	h := fabric.Handler(f.co, service.NewHandler(f.co.LocalService()))
	ts := httptest.NewServer(h)
	defer ts.Close()

	scs := mixedSweep(10)
	body := mustJSON(t, service.SweepRequest{Scenarios: scs})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	want, err := sim.RunAll(scs, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(scs))
	var summary *service.SweepLine
	next := 0
	for dec.More() {
		var l service.SweepLine
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		if l.Done {
			summary = &l
			break
		}
		if l.Index != next {
			t.Fatalf("stream out of order: got index %d, want %d", l.Index, next)
		}
		if seen[l.Index] {
			t.Fatalf("index %d delivered twice", l.Index)
		}
		seen[l.Index] = true
		next++
		if l.Error != "" {
			t.Fatalf("scenario %d: %s", l.Index, l.Error)
		}
		if string(mustJSON(t, *l.Outcome)) != string(mustJSON(t, want[l.Index])) {
			t.Fatalf("scenario %d outcome diverges from local", l.Index)
		}
	}
	if summary == nil {
		t.Fatal("stream ended without a summary line")
	}
	if summary.Total != len(scs) || summary.Failed != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("scenario %d never streamed", i)
		}
	}

	// Register + workers endpoints round-trip.
	regBody := mustJSON(t, service.RegisterRequest{Addr: "http://10.0.0.9:8347"})
	rr, err := http.Post(ts.URL+"/v1/fabric/register", "application/json", bytes.NewReader(regBody))
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", rr.StatusCode)
	}
	wresp, err := http.Get(ts.URL + "/v1/fabric/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var fleetResp fabric.FleetResponse
	if err := json.NewDecoder(wresp.Body).Decode(&fleetResp); err != nil {
		t.Fatal(err)
	}
	if len(fleetResp.Workers) != 4 {
		t.Fatalf("workers = %d, want 4 (3 fleet + 1 registered)", len(fleetResp.Workers))
	}

	// Metrics expose the fabric series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{"rd_fabric_workers", "rd_fabric_sweeps_total", "rd_fabric_reshards_total"} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics exposition missing %s", series)
		}
	}
}

// TestHTTPSaturationIs429 maps ErrSaturated to 429 + Retry-After on the
// wire.
func TestHTTPSaturationIs429(t *testing.T) {
	plans := []fabric.ChaosPlan{{StallAfterRows: 1}}
	f := newFleet(t, 1, plans, fabric.Config{
		MaxInFlightSweeps:  1,
		MaxScenarioRetries: 1000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw, err := f.co.StartSweep(ctx, mixedSweep(3))
	if err != nil {
		t.Fatal(err)
	}
	h := fabric.Handler(f.co, service.NewHandler(f.co.LocalService()))
	ts := httptest.NewServer(h)
	defer ts.Close()
	body := mustJSON(t, service.SweepRequest{Scenarios: mixedSweep(2)})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	cancel()
	<-sw.Done()
}

// TestDeadWorkerLeavesRing drives health directly: a worker whose probes
// fail past the heartbeat timeout is marked dead and its scenarios land
// elsewhere.
func TestDeadWorkerLeavesRing(t *testing.T) {
	base := time.Unix(1700000000, 0)
	now := base
	plans := []fabric.ChaosPlan{{FailHealth: true, KillAfterRows: 1}}
	f := newFleet(t, 2, plans, fabric.Config{
		HeartbeatTimeout: 10 * time.Second,
		Now:              func() time.Time { return now },
	})
	// Probe once within the timeout: failing but not yet dead.
	f.co.ProbeAll(context.Background())
	if ws := f.co.Workers(); ws[0].State == fabric.WorkerDead || ws[1].State != fabric.WorkerLive {
		t.Fatalf("premature death: %+v", ws)
	}
	// Advance past the timeout; the failing worker dies, the healthy one
	// was seen by its successful probe and lives.
	now = base.Add(11 * time.Second)
	f.co.ProbeAll(context.Background())
	ws := f.co.Workers()
	if ws[0].State != fabric.WorkerDead {
		t.Fatalf("worker 0 = %+v, want dead", ws[0])
	}
	if ws[1].State != fabric.WorkerLive {
		t.Fatalf("worker 1 = %+v, want live", ws[1])
	}
	scs := mixedSweep(6)
	got, err := f.co.RunAll(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, scs, got)
	// Re-registration revives the dead worker (worker-initiated heartbeat).
	if err := f.co.Register("http://w0:1"); err != nil {
		t.Fatal(err)
	}
	if ws := f.co.Workers(); ws[0].State != fabric.WorkerLive {
		t.Fatalf("after re-register, worker 0 = %+v, want live", ws[0])
	}
}

// TestSimulateThroughFabric routes a single scenario through the fabric
// and checks the cache cooperates across calls.
func TestSimulateThroughFabric(t *testing.T) {
	f := newFleet(t, 2, nil, fabric.Config{})
	sc := scenario(128)
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.co.Simulate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, first.Outcome)) != string(mustJSON(t, direct)) {
		t.Fatal("fabric simulate outcome diverges from direct sim.Run")
	}
	second, err := f.co.Simulate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical simulate was not served from the owner's cache")
	}
	if first.Key == "" || first.Key != second.Key {
		t.Fatalf("content keys diverge: %q vs %q", first.Key, second.Key)
	}
}

// TestSweepValidationRejectsWhole mirrors the local service's contract:
// one malformed scenario rejects the entire sweep before anything runs.
func TestSweepValidationRejectsWhole(t *testing.T) {
	f := newFleet(t, 1, nil, fabric.Config{})
	scs := mixedSweep(3)
	scs[1].KernelName = "no-such-kernel"
	if _, err := f.co.StartSweep(context.Background(), scs); err == nil {
		t.Fatal("malformed sweep was accepted")
	}
	if _, err := f.co.StartSweep(context.Background(), nil); !errors.Is(err, fabric.ErrEmptySweep) {
		t.Fatalf("empty sweep: err = %v, want ErrEmptySweep", err)
	}
}
