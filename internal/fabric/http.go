package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rdramstream/internal/obs"
	"rdramstream/internal/service"
	"rdramstream/internal/sim"
)

// FleetResponse is the body of GET /v1/fabric/workers: the fleet's
// health and the coordinator's cumulative counters.
//
// rdlint:wire — fabric introspection wire format.
type FleetResponse struct {
	Workers []WorkerStatus `json:"workers"`
	Stats   Stats          `json:"stats"`
}

// Handler layers the coordinator's routes over a local rdserved handler:
//
//	POST /v1/fabric/register  worker registration / liveness refresh
//	GET  /v1/fabric/workers   fleet health + coordinator stats
//	POST /v1/sweep            distributed sweep (NDJSON, input order);
//	                          saturation is 429 + Retry-After
//	POST /v1/simulate         one scenario through the fabric
//	GET  /metrics             publishes rd_fabric_* series, then delegates
//
// Everything else falls through to the local handler, so a coordinator
// is a superset of a plain rdserved: same cache peeks, traces, jobs,
// and health endpoints.
func Handler(co *Coordinator, local http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/register", co.handleRegister)
	mux.HandleFunc("GET /v1/fabric/workers", co.handleWorkers)
	mux.HandleFunc("POST /v1/sweep", co.handleSweep)
	mux.HandleFunc("POST /v1/simulate", co.handleSimulate)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		co.publishMetrics()
		local.ServeHTTP(w, r)
	})
	mux.Handle("/", local)
	return mux
}

// fabricError is every non-2xx body (same shape as the service API).
type fabricError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, fabricError{Error: err.Error()})
}

// decodeStrict decodes one JSON body, rejecting unknown fields.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// submitStatus maps a StartSweep failure to its HTTP status. Saturation
// is 429 so clients with retry budgets back off instead of failing.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req service.RegisterRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Register(req.Addr); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, c.fleetResponse())
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.fleetResponse())
}

func (c *Coordinator) fleetResponse() FleetResponse {
	return FleetResponse{Workers: c.Workers(), Stats: c.Stats()}
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req service.SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := c.StartSweep(r.Context(), req.Scenarios)
	if err != nil {
		status := submitStatus(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; i < len(req.Scenarios); i++ {
		l, err := sw.Wait(r.Context(), i)
		if err != nil {
			// The client went away mid-stream; the sweep's own context is
			// r.Context() too, so the engine unwinds with it.
			return
		}
		l.Index = i
		enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sw.Summary())
	if flusher != nil {
		flusher.Flush()
	}
}

// retryAfterSeconds is the advisory Retry-After on shed sweeps: long
// enough for a batch of in-flight sweeps to make progress, short enough
// that a recovered coordinator refills quickly.
const retryAfterSeconds = 1

func (c *Coordinator) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var sc sim.Scenario
	if err := decodeStrict(r, &sc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := c.Simulate(r.Context(), sc)
	if err != nil {
		status := submitStatus(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// publishMetrics mirrors the coordinator's snapshot into the shared
// Prometheus registry at scrape time: fleet gauges, cumulative fabric
// counters, and one rd_fabric_worker_up gauge per worker (sorted
// iteration — WorkerStatus order is the sorted address order).
func (c *Coordinator) publishMetrics() {
	if c.obsv == nil {
		return
	}
	reg := c.obsv.Reg
	st := c.Stats()
	reg.SetGauge("rd_fabric_workers", "Registered fabric workers.", float64(st.Workers))
	reg.SetGauge("rd_fabric_workers_live", "Workers currently eligible for shards (not dead, breaker closed).", float64(st.Live))
	reg.SetGauge("rd_fabric_inflight_sweeps", "Distributed sweeps executing right now.", float64(c.inflightNow()))
	reg.SetCounter("rd_fabric_sweeps_total", "Distributed sweeps admitted.", float64(st.Sweeps))
	reg.SetCounter("rd_fabric_remote_scenarios_total", "Scenario attempts dispatched to workers.", float64(st.RemoteScenarios))
	reg.SetCounter("rd_fabric_local_scenarios_total", "Scenarios executed on the coordinator's local fallback.", float64(st.LocalScenarios))
	reg.SetCounter("rd_fabric_reshards_total", "Scenario re-assignments after mid-sweep worker failures.", float64(st.Reshards))
	reg.SetCounter("rd_fabric_shed_total", "Sweeps rejected by admission control (HTTP 429).", float64(st.Shed))
	reg.SetCounter("rd_fabric_worker_failures_total", "Failed remote attempts across all workers.", float64(st.WorkerFailures))
	for _, ws := range c.Workers() {
		up := 0.0
		if ws.State == WorkerLive {
			up = 1.0
		}
		reg.SetGauge("rd_fabric_worker_up", "Per-worker shard eligibility (1 = live).", up, obs.L("worker", ws.Addr))
	}
}

func (c *Coordinator) inflightNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}
