package fabric_test

import (
	"context"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/fabric"
	"rdramstream/internal/sim"
	"rdramstream/internal/tracegen"
)

// traceSweep builds a sweep of trace scenarios: the same generated
// llm-kvcache trace under both controllers and schemes, plus smaller
// pattern variants, diverse enough to spread across the ring.
func traceSweep(t *testing.T) []sim.Scenario {
	t.Helper()
	specs := []string{
		"llm-kvcache:n=4096,ctxrows=16",
		"hot-row:n=2048,footprint=65536",
		"strided:n=2048,stride=16",
	}
	var scs []sim.Scenario
	for _, s := range specs {
		prog, err := tracegen.ParseProgram(s, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, mode := range []sim.Mode{sim.NaturalOrder, sim.SMC} {
				scs = append(scs, sim.Scenario{
					Workload: &tracegen.Spec{Program: prog},
					Scheme:   scheme, Mode: mode, FIFODepth: 32,
				})
			}
		}
	}
	return scs
}

// TestDistributedTraceSweepMatchesLocal is the trace subsystem's fabric
// acceptance criterion: the same generated traces swept through a
// 3-worker fabric must merge byte-identical to single-node execution,
// with the content-digest keys sharding them remotely.
func TestDistributedTraceSweepMatchesLocal(t *testing.T) {
	f := newFleet(t, 3, nil, fabric.Config{})
	scs := traceSweep(t)
	got, err := f.co.RunAll(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, scs, got)
	st := f.co.Stats()
	if st.RemoteScenarios != int64(len(scs)) {
		t.Fatalf("healthy fleet: want all %d trace scenarios remote, got %d (local %d)",
			len(scs), st.RemoteScenarios, st.LocalScenarios)
	}
}

// A mid-sweep worker kill must not change trace results either: the
// resharded merge stays byte-identical to local execution.
func TestTraceSweepSurvivesWorkerKill(t *testing.T) {
	plans := []fabric.ChaosPlan{{KillAfterRows: 2, MisbehaveSweeps: 1}}
	f := newFleet(t, 3, plans, fabric.Config{})
	scs := traceSweep(t)
	got, err := f.co.RunAll(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, scs, got)
}
