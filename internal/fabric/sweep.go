package fabric

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rdramstream/internal/fabric/shard"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/service"
	"rdramstream/internal/sim"
)

// Sweep is one distributed sweep in flight. Results land in input-order
// slots exactly once each; Wait streams them back in order.
type Sweep struct {
	co   *Coordinator
	id   string
	scs  []sim.Scenario
	keys []string

	mu        sync.Mutex
	lines     []*service.SweepLine // guarded by mu
	landed    int                  // guarded by mu
	cacheHits int                  // guarded by mu
	failed    int                  // guarded by mu
	reshards  int64                // guarded by mu
	dupes     int64                // guarded by mu; rows arriving for an already-landed slot (dropped)

	ready []chan struct{} // ready[i] closes when lines[i] lands
	done  chan struct{}   // closes when every line has landed
}

// ID returns the sweep's identifier ("fswp-%06d").
func (sw *Sweep) ID() string { return sw.id }

// Done is closed when every scenario has a terminal line.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Reshards reports how many scenario re-assignments failover performed.
func (sw *Sweep) Reshards() int64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.reshards
}

// Duplicates reports rows that arrived for already-landed slots (always
// dropped; nonzero only if a worker misbehaves).
func (sw *Sweep) Duplicates() int64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.dupes
}

// Wait blocks until scenario i's line lands (or ctx is done) and returns
// it. Streaming responses call it for i = 0, 1, 2, … to emit the merged
// stream in input order.
func (sw *Sweep) Wait(ctx context.Context, i int) (service.SweepLine, error) {
	if i < 0 || i >= len(sw.ready) {
		return service.SweepLine{}, fmt.Errorf("fabric: sweep %s has no scenario %d", sw.id, i)
	}
	select {
	case <-sw.ready[i]:
		sw.mu.Lock()
		l := *sw.lines[i]
		sw.mu.Unlock()
		return l, nil
	case <-ctx.Done():
		return service.SweepLine{}, context.Cause(ctx)
	}
}

// Summary builds the trailing NDJSON summary line from the landed state.
func (sw *Sweep) Summary() service.SweepLine {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return service.SweepLine{
		Done: true, JobID: sw.id, Total: len(sw.scs),
		CacheHits: sw.cacheHits, Failed: sw.failed,
	}
}

// land records scenario gi's terminal line exactly once; late duplicates
// (a misbehaving worker emitting rows for a slot failover already
// refilled) are counted and dropped, keeping the merged stream
// duplicate-free by construction.
func (sw *Sweep) land(gi int, l service.SweepLine) {
	l.Index = gi
	l.Done = false
	l.JobID = ""
	sw.mu.Lock()
	if sw.lines[gi] != nil {
		sw.dupes++
		sw.mu.Unlock()
		return
	}
	sw.lines[gi] = &l
	sw.landed++
	if l.Cached {
		sw.cacheHits++
	}
	if l.Error != "" {
		sw.failed++
	}
	allDone := sw.landed == len(sw.lines)
	sw.mu.Unlock()
	close(sw.ready[gi])
	if allDone {
		close(sw.done)
	}
}

// landedSet reports which of the given indices already have lines.
func (sw *Sweep) landedSet(idx []int) map[int]bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make(map[int]bool, len(idx))
	for _, i := range idx {
		out[i] = sw.lines[i] != nil
	}
	return out
}

// StartSweep admits and launches a distributed sweep. Scenarios are
// validated and keyed up front (a malformed sweep is rejected whole);
// ErrSaturated means admission control shed the request. ctx scopes the
// whole sweep: when it is canceled, unlanded scenarios fail with its
// cause so no waiter hangs.
func (c *Coordinator) StartSweep(ctx context.Context, scs []sim.Scenario) (*Sweep, error) {
	if len(scs) == 0 {
		return nil, ErrEmptySweep
	}
	keys := make([]string, len(scs))
	for i, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("fabric: scenario %d: %w", i, err)
		}
		key, err := resultcache.Key(sc)
		if err != nil {
			return nil, fmt.Errorf("fabric: scenario %d: %w", i, err)
		}
		keys[i] = key
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.inflight >= c.cfg.MaxInFlightSweeps {
		c.stats.Shed++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %d in flight", ErrSaturated, c.cfg.MaxInFlightSweeps)
	}
	c.inflight++
	c.nextSweep++
	c.stats.Sweeps++
	id := fmt.Sprintf("fswp-%06d", c.nextSweep)
	c.mu.Unlock()

	sw := &Sweep{
		co: c, id: id, scs: scs, keys: keys,
		lines: make([]*service.SweepLine, len(scs)),
		ready: make([]chan struct{}, len(scs)),
		done:  make(chan struct{}),
	}
	for i := range sw.ready {
		sw.ready[i] = make(chan struct{})
	}
	go sw.run(ctx)
	return sw, nil
}

// RunAll runs scs through the fabric and collects the outcomes in input
// order — the distributed drop-in for sim.RunAll, and the byte-identity
// oracle's left-hand side in the chaos tests. Any per-scenario error
// aborts with that scenario's error, mirroring local sweep semantics.
func (c *Coordinator) RunAll(ctx context.Context, scs []sim.Scenario) ([]sim.Outcome, error) {
	sw, err := c.StartSweep(ctx, scs)
	if err != nil {
		return nil, err
	}
	outs := make([]sim.Outcome, len(scs))
	for i := range scs {
		l, err := sw.Wait(ctx, i)
		if err != nil {
			return nil, err
		}
		if l.Error != "" {
			return nil, fmt.Errorf("fabric: scenario %d (%s): %s", i, l.Label, l.Error)
		}
		if l.Outcome == nil {
			return nil, fmt.Errorf("fabric: scenario %d (%s): line carries no outcome", i, l.Label)
		}
		outs[i] = *l.Outcome
	}
	return outs, nil
}

// Simulate runs one scenario through the fabric (sharded to its owner,
// with the full failover ladder behind it) and shapes the response like
// POST /v1/simulate.
func (c *Coordinator) Simulate(ctx context.Context, sc sim.Scenario) (service.SimulateResponse, error) {
	sw, err := c.StartSweep(ctx, []sim.Scenario{sc})
	if err != nil {
		return service.SimulateResponse{}, err
	}
	l, err := sw.Wait(ctx, 0)
	if err != nil {
		return service.SimulateResponse{}, err
	}
	if l.Error != "" {
		return service.SimulateResponse{}, fmt.Errorf("fabric: %s", l.Error)
	}
	return service.SimulateResponse{
		JobID: sw.id, Cached: l.Cached, Key: sw.keys[0], Outcome: *l.Outcome,
	}, nil
}

// group is one round's work for one destination.
type group struct {
	addr string // "" = local
	idx  []int  // global scenario indices, ascending
}

// run is the sweep engine: round after round, assign pending scenarios
// to live workers by consistent hash (exhausted or unassignable ones to
// the local service), execute the groups in parallel, and re-shard
// whatever a failed worker left unacknowledged. Terminates because every
// round either lands scenarios or burns remote attempts, and a scenario
// out of attempts runs locally, which always lands a terminal line.
func (sw *Sweep) run(ctx context.Context) {
	c := sw.co
	defer func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
	}()

	pending := make([]int, len(sw.scs))
	for i := range pending {
		pending[i] = i
	}
	attempts := make([]int, len(sw.scs))
	backoff := c.cfg.RetryBackoff

	for len(pending) > 0 && ctx.Err() == nil {
		addrs, backends := c.liveSet()
		ring := shard.New(addrs, c.cfg.Replicas)

		// Assign in ascending index order: deterministic grouping, and
		// each worker receives its sub-sweep in global input order.
		var groups []group
		byAddr := make(map[string]int, len(addrs))
		var local []int
		for _, i := range pending {
			if attempts[i] >= c.cfg.MaxScenarioRetries {
				local = append(local, i)
				continue
			}
			owner, ok := ring.Owner(sw.keys[i])
			if !ok {
				local = append(local, i)
				continue
			}
			gi, seen := byAddr[owner]
			if !seen {
				gi = len(groups)
				byAddr[owner] = gi
				groups = append(groups, group{addr: owner})
			}
			groups[gi].idx = append(groups[gi].idx, i)
		}

		unacked := make([][]int, len(groups))
		var wg sync.WaitGroup
		for gi := range groups {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				g := groups[gi]
				unacked[gi] = sw.runRemote(ctx, backends[g.addr], g)
			}(gi)
		}
		if len(local) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sw.runLocal(ctx, local)
			}()
		}
		wg.Wait()

		var next []int
		for _, u := range unacked {
			next = append(next, u...)
		}
		sort.Ints(next)
		for _, i := range next {
			attempts[i]++
		}
		if len(next) > 0 {
			sw.mu.Lock()
			sw.reshards += int64(len(next))
			sw.mu.Unlock()
			c.mu.Lock()
			c.stats.Reshards += int64(len(next))
			c.mu.Unlock()
		}
		progressed := len(next) < len(pending)
		pending = next
		if len(pending) > 0 && !progressed {
			// A barren round: every assignment failed. Back off before
			// re-sharding so a flapping fleet isn't hammered, doubling up
			// to a cap; any progress resets the backoff.
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
			if backoff < 16*c.cfg.RetryBackoff {
				backoff *= 2
			}
		} else {
			backoff = c.cfg.RetryBackoff
		}
	}

	// Canceled mid-flight: land the cancellation cause in every empty
	// slot so Wait never hangs.
	if err := ctx.Err(); err != nil {
		cause := context.Cause(ctx)
		for i := range sw.scs {
			sw.mu.Lock()
			landed := sw.lines[i] != nil
			sw.mu.Unlock()
			if !landed {
				sw.land(i, service.SweepLine{Label: sw.scs[i].Label(), Error: cause.Error()})
			}
		}
	}
}

// runRemote streams one worker's sub-sweep, landing rows as they arrive,
// and returns the global indices the worker never acknowledged (nil on
// full success). Any failure — transport, mid-stream death, a malformed
// row — books one failure against the worker and hands the remainder
// back for re-sharding.
func (sw *Sweep) runRemote(ctx context.Context, b Backend, g group) (unackedIdx []int) {
	c := sw.co
	sub := make([]sim.Scenario, len(g.idx))
	for p, i := range g.idx {
		sub[p] = sw.scs[i]
	}
	acked := make([]bool, len(g.idx))
	attemptCtx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	_, err := b.Sweep(attemptCtx, sub, func(l service.SweepLine) error {
		p := l.Index
		if p < 0 || p >= len(g.idx) || acked[p] {
			return fmt.Errorf("fabric: worker %s emitted bogus row index %d (sub-sweep of %d)", g.addr, p, len(g.idx))
		}
		acked[p] = true
		sw.land(g.idx[p], l)
		return nil
	})
	c.mu.Lock()
	c.stats.RemoteScenarios += int64(len(g.idx))
	c.mu.Unlock()
	if err == nil {
		// Defensive: a summary without every row is a worker bug; treat
		// missing rows like a failure so they re-shard.
		missing := unackedOf(g.idx, acked)
		if len(missing) == 0 {
			c.recordSuccess(g.addr)
			return nil
		}
		c.recordFailure(g.addr)
		return missing
	}
	c.recordFailure(g.addr)
	return unackedOf(g.idx, acked)
}

// unackedOf maps unacknowledged sub-positions back to global indices.
func unackedOf(idx []int, acked []bool) []int {
	var out []int
	for p, i := range idx {
		if !acked[p] {
			out = append(out, i)
		}
	}
	return out
}

// runLocal executes indices on the coordinator's own service — the
// bottom of the degradation ladder. Every index lands a terminal line:
// local execution is never re-sharded.
func (sw *Sweep) runLocal(ctx context.Context, idx []int) {
	c := sw.co
	sub := make([]sim.Scenario, len(idx))
	for p, i := range idx {
		sub[p] = sw.scs[i]
	}
	c.mu.Lock()
	c.stats.LocalScenarios += int64(len(idx))
	c.mu.Unlock()
	job, err := c.cfg.Local.Submit(ctx, sub)
	if err != nil {
		for _, i := range idx {
			sw.land(i, service.SweepLine{Label: sw.scs[i].Label(), Error: err.Error()})
		}
		return
	}
	for p, i := range idx {
		res, err := job.WaitResult(ctx, p)
		if err != nil {
			sw.land(i, service.SweepLine{Label: sw.scs[i].Label(), Error: err.Error()})
			continue
		}
		sw.land(i, service.SweepLine{
			Label: res.Label, Cached: res.Cached,
			Outcome: res.Outcome, Error: res.Error,
		})
	}
}
