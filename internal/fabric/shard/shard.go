// Package shard is the fabric's consistent-hash ring: it decides, for
// every scenario in a distributed sweep, which worker owns it. The shard
// key is the scenario's resultcache content address (a stable SHA-256
// hex string), so identical scenarios land on the same worker across
// sweeps, clients, and coordinator restarts — which is what makes each
// worker's local result cache accumulate a coherent shard of the global
// key space.
//
// Determinism contract: assignment is a pure function of (member set,
// replica count, key). No wall-clock time, no randomness, no map
// iteration — the rdlint determinism analyzer covers this package with
// the same rules as the simulation core, because a nondeterministic
// shard assignment would make distributed sweeps unreproducible and
// defeat the byte-identity oracle against a local sim.RunAll.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member. 64 points per
// worker keeps the assignment imbalance across a handful of workers
// within a few percent while the ring stays tiny (a few KiB).
const DefaultReplicas = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over worker IDs. Build one
// with New; membership changes build a new Ring (they are cheap).
type Ring struct {
	replicas int
	members  []string // sorted, deduplicated
	points   []point  // sorted by (hash, id)
}

// Hash maps a string to its position on the ring: the first 8 bytes of
// its SHA-256, big-endian. Using the same digest family as the
// resultcache key keeps the whole shard pipeline reproducible from the
// scenario bytes alone.
func Hash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over the given members with the given virtual-node
// count per member (<= 0 selects DefaultReplicas). Member order does not
// matter: the input is sorted and deduplicated, so any permutation of
// the same set yields an identical ring.
func New(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	ids := append([]string(nil), members...)
	sort.Strings(ids)
	dedup := ids[:0]
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		dedup = append(dedup, id)
	}
	ids = dedup
	r := &Ring{replicas: replicas, members: ids}
	r.points = make([]point, 0, len(ids)*replicas)
	for _, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: Hash(id + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Len reports the member count. Nil-safe.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// Members returns the sorted member set (a copy).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after Hash(key), wrapping at the top of the ring. ok is
// false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id, true
}

// Without returns a new ring with one member removed — the failover
// primitive. Keys owned by the removed member redistribute to the
// surviving members; every other key keeps its owner (the consistent-
// hashing property the tests pin).
func (r *Ring) Without(id string) *Ring {
	if r == nil {
		return nil
	}
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != id {
			kept = append(kept, m)
		}
	}
	return New(kept, r.replicas)
}
