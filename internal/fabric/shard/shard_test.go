package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%04d", i)
	}
	return out
}

func TestOwnerDeterministicAcrossConstruction(t *testing.T) {
	a := New([]string{"w1", "w2", "w3"}, 0)
	b := New([]string{"w3", "w1", "w2", "w2"}, 0) // permuted + duplicate
	for _, k := range keys(500) {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) reported empty ring", k)
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("Owner(%q) differs across member orderings: %q vs %q", k, oa, ob)
		}
	}
}

func TestRemovalOnlyRemapsRemovedOwnersKeys(t *testing.T) {
	full := New([]string{"w1", "w2", "w3", "w4"}, 0)
	reduced := full.Without("w2")
	if got := reduced.Len(); got != 3 {
		t.Fatalf("Len after Without = %d, want 3", got)
	}
	moved := 0
	for _, k := range keys(2000) {
		before, _ := full.Owner(k)
		after, ok := reduced.Owner(k)
		if !ok {
			t.Fatalf("reduced ring empty")
		}
		if after == "w2" {
			t.Fatalf("key %q still owned by removed member", k)
		}
		if before != "w2" && before != after {
			t.Fatalf("key %q moved from surviving %q to %q on unrelated removal", k, before, after)
		}
		if before == "w2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("no keys were owned by the removed member; test vacuous")
	}
}

func TestBalance(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	r := New(members, 0)
	counts := make([]int, len(members))
	const n = 8000
	for _, k := range keys(n) {
		owner, _ := r.Owner(k)
		for i, m := range members {
			if m == owner {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys; ring badly imbalanced (%v)", members[i], 100*frac, counts)
		}
	}
}

func TestEmptyAndNilRing(t *testing.T) {
	var nilRing *Ring
	if _, ok := nilRing.Owner("k"); ok {
		t.Fatal("nil ring claimed an owner")
	}
	if nilRing.Len() != 0 || nilRing.Members() != nil {
		t.Fatal("nil ring has members")
	}
	empty := New(nil, 0)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

func TestWithoutLastMember(t *testing.T) {
	r := New([]string{"only"}, 0)
	if owner, ok := r.Owner("k"); !ok || owner != "only" {
		t.Fatalf("Owner = %q, %v; want only, true", owner, ok)
	}
	empty := r.Without("only")
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("ring with last member removed still claims an owner")
	}
}
