// Package fabric is the distributed sweep layer: a coordinator that
// shards sweeps across a fleet of rdserved workers and merges their
// NDJSON streams back in input order, built robustness-first.
//
// Roles. A worker is an ordinary rdserved instance that registers its
// base URL with the coordinator (POST /v1/fabric/register, refreshed
// periodically). The coordinator owns the fleet view: it consistent-
// hashes each scenario's resultcache content key (a stable SHA-256 —
// the natural shard key, because it sends identical scenarios to the
// same worker's cache) onto the worker ring (internal/fabric/shard),
// fans sub-sweeps out over internal/service/client, and lands results
// into input-order slots.
//
// The robustness ladder, in the order a request descends it:
//
//  1. Admission control: at most MaxInFlightSweeps distributed sweeps
//     run at once; excess submissions are shed with ErrSaturated
//     (HTTP 429 + Retry-After) instead of queueing unboundedly.
//  2. Health: the coordinator heartbeats every worker; one unheard-of
//     for HeartbeatTimeout is marked dead and leaves the ring.
//  3. Circuit breakers: BreakerThreshold consecutive failures open a
//     worker's breaker for BreakerCooldown — the engine.Issue
//     retry/RejectError discipline applied to workers instead of banks.
//  4. Re-shard: when a worker dies mid-stream, only its unacknowledged
//     scenarios are re-hashed onto the survivors (bounded retries with
//     backoff between barren rounds).
//  5. Local fallback: a scenario out of remote retries — or a sweep
//     arriving when the ring is empty or fully tripped — runs on the
//     coordinator's own service, so a one-node deployment is always
//     correct.
//
// Correctness oracle: simulation is deterministic, so whatever path a
// scenario takes — worker A, worker B after a re-shard, or the local
// fallback — its outcome is byte-identical to a local sim.RunAll. The
// chaos tests (chaos.go, chaos_test.go) kill and stall workers
// mid-sweep under seeded schedules and assert exactly that.
//
// Wall-clock time (heartbeats, breaker cooldowns, backoff) is confined
// to this package and injectable via Config.Now; shard assignment lives
// in internal/fabric/shard, which the rdlint determinism analyzer holds
// to simulation-core rules.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"sync"
	"time"

	"rdramstream/internal/fabric/shard"
	"rdramstream/internal/obs"
	"rdramstream/internal/service"
	"rdramstream/internal/service/client"
	"rdramstream/internal/sim"
)

// Submission errors, matchable with errors.Is.
var (
	// ErrSaturated is returned when admission control sheds a sweep; the
	// HTTP layer maps it to 429 + Retry-After.
	ErrSaturated = errors.New("fabric: coordinator saturated (too many in-flight sweeps)")
	// ErrEmptySweep rejects a sweep with no scenarios.
	ErrEmptySweep = errors.New("fabric: sweep has no scenarios")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("fabric: coordinator closed")
)

// Backend is the coordinator's view of one worker. The production
// implementation wraps internal/service/client; tests and the chaos
// harness substitute in-process backends (ServiceBackend, ChaosBackend).
type Backend interface {
	// Health probes liveness.
	Health(ctx context.Context) error
	// Sweep streams a scenario list: fn sees one line per scenario in
	// input order (never the trailing summary). An error means the
	// worker failed mid-sweep; rows already delivered to fn stand.
	Sweep(ctx context.Context, scs []sim.Scenario, fn func(service.SweepLine) error) (service.SweepLine, error)
	// CachedOutcome probes the worker's result cache by content key
	// without running anything (the peer cache tier).
	CachedOutcome(ctx context.Context, key string) (sim.Outcome, bool, error)
}

// Config wires a Coordinator. Local is required; everything else
// defaults sanely.
type Config struct {
	// Local is the coordinator's own service — the fallback executor
	// that makes a workerless coordinator a correct one-node server.
	Local *service.Service
	// Obs receives fabric metrics; nil uses Local's observer.
	Obs *obs.Observer
	// Replicas is the virtual-node count per worker on the shard ring
	// (default shard.DefaultReplicas).
	Replicas int
	// HeartbeatInterval paces the coordinator's health probes (default
	// 2s). Negative disables the background loop (tests drive ProbeAll
	// directly).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a worker may go unheard-of (no
	// successful probe, registration, or sweep) before it is marked
	// dead and leaves the ring (default 3× HeartbeatInterval).
	HeartbeatTimeout time.Duration
	// AttemptTimeout bounds one remote sub-sweep attempt; 0 means only
	// the request deadline applies.
	AttemptTimeout time.Duration
	// PeerProbeTimeout bounds one peer cache probe (default 250ms).
	PeerProbeTimeout time.Duration
	// MaxScenarioRetries is how many distinct remote attempts one
	// scenario gets before it falls back to local execution (default 2).
	MaxScenarioRetries int
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker keeps its worker off
	// the ring (default 5s); after it the worker is probed again
	// (half-open) by the next heartbeat or sweep.
	BreakerCooldown time.Duration
	// MaxInFlightSweeps bounds concurrently executing distributed
	// sweeps; excess submissions shed with ErrSaturated (default 32).
	MaxInFlightSweeps int
	// RetryBackoff is the base wait between reshard rounds that made no
	// progress, doubling per barren round, capped at 16× (default 50ms).
	RetryBackoff time.Duration
	// Dial builds the Backend for a registered worker address. The
	// default dials the rdserved HTTP API via internal/service/client
	// with AttemptTimeout as the per-request timeout.
	Dial func(addr string) Backend
	// Now is the clock (tests inject a fake; default time.Now). It is
	// used only for health bookkeeping — never for shard assignment.
	Now func() time.Time
}

// workerState is a worker's lifecycle phase as reported by WorkerStatus.
const (
	WorkerLive        = "live"
	WorkerDead        = "dead"
	WorkerBreakerOpen = "breaker_open"
)

// WorkerStatus is one worker's health snapshot (GET /v1/fabric/workers).
//
// rdlint:wire — fabric introspection wire format.
type WorkerStatus struct {
	Addr                string  `json:"addr"`
	State               string  `json:"state"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	SecondsSinceSeen    float64 `json:"seconds_since_seen"`
}

// Stats is the coordinator's cumulative counter snapshot.
//
// rdlint:wire — embedded in rdload's BENCH_service_load.json.
type Stats struct {
	Workers         int   `json:"workers"`
	Live            int   `json:"live"`
	Sweeps          int64 `json:"sweeps"`
	RemoteScenarios int64 `json:"remote_scenarios"`
	LocalScenarios  int64 `json:"local_scenarios"`
	// Reshards counts scenarios re-assigned after their worker failed
	// mid-sweep (each re-assignment of each scenario counts once).
	Reshards int64 `json:"reshards"`
	// Shed counts sweeps rejected by admission control.
	Shed int64 `json:"shed"`
	// WorkerFailures counts failed remote attempts (transport errors,
	// mid-stream deaths, 5xx) across all workers.
	WorkerFailures int64 `json:"worker_failures"`
	// PeerHits mirrors the local cache's peer-tier rescues.
	PeerHits int64 `json:"peer_hits"`
}

// worker is the coordinator's book on one registered address.
type worker struct {
	addr        string
	backend     Backend
	lastSeen    time.Time
	consecFails int
	openUntil   time.Time // breaker open until this instant
	dead        bool
}

// Coordinator owns the fleet view and the distributed sweep engine.
type Coordinator struct {
	cfg  Config
	obsv *obs.Observer

	mu        sync.Mutex
	workers   map[string]*worker // guarded by mu
	order     []string           // guarded by mu; sorted addresses, the only iteration order used
	closed    bool               // guarded by mu
	inflight  int                // guarded by mu
	nextSweep int64              // guarded by mu
	stats     Stats              // guarded by mu

	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}
}

// NewCoordinator builds and starts a coordinator, wiring the local
// service's result cache to the fabric peer tier (local LRU → peer →
// disk).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Local == nil {
		return nil, errors.New("fabric: Config.Local is required (the coordinator must be able to run scenarios itself)")
	}
	if cfg.Obs == nil {
		cfg.Obs = cfg.Local.Obs()
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = shard.DefaultReplicas
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		iv := cfg.HeartbeatInterval
		if iv < 0 {
			iv = 2 * time.Second
		}
		cfg.HeartbeatTimeout = 3 * iv
	}
	if cfg.PeerProbeTimeout <= 0 {
		cfg.PeerProbeTimeout = 250 * time.Millisecond
	}
	if cfg.MaxScenarioRetries <= 0 {
		cfg.MaxScenarioRetries = 2
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.MaxInFlightSweeps <= 0 {
		cfg.MaxInFlightSweeps = 32
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Dial == nil {
		attempt := cfg.AttemptTimeout
		cfg.Dial = func(addr string) Backend {
			cl := client.New(addr)
			cl.Timeout = attempt
			return &ClientBackend{Client: cl}
		}
	}
	c := &Coordinator{
		cfg:      cfg,
		obsv:     cfg.Obs,
		workers:  make(map[string]*worker),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	cfg.Local.Cache().SetPeer(c.peerLookup)
	if cfg.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	} else {
		close(c.loopDone)
	}
	return c, nil
}

// Close stops the heartbeat loop and detaches the peer cache tier. It
// does not interrupt in-flight sweeps.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.stop)
		c.cfg.Local.Cache().SetPeer(nil)
	})
	<-c.loopDone
}

// LocalService exposes the coordinator's own service — the fallback
// executor and the owner of the peer-wired result cache.
func (c *Coordinator) LocalService() *service.Service { return c.cfg.Local }

// Register adds a worker (or refreshes an existing one — registration
// doubles as a worker-initiated heartbeat). The address must be an
// absolute http(s) URL.
func (c *Coordinator) Register(addr string) error {
	u, err := url.Parse(addr)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fabric: worker address %q is not an absolute URL", addr)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("fabric: worker address %q: scheme must be http or https", addr)
	}
	addr = u.Scheme + "://" + u.Host
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	now := c.cfg.Now()
	if w, ok := c.workers[addr]; ok {
		w.lastSeen = now
		w.dead = false
		return nil
	}
	c.workers[addr] = &worker{
		addr:     addr,
		backend:  c.cfg.Dial(addr),
		lastSeen: now,
	}
	c.order = append(c.order, addr)
	sort.Strings(c.order)
	return nil
}

// liveSet snapshots the workers currently eligible for work: registered,
// not dead, breaker closed (or cooled down). Addresses come back sorted,
// so ring construction is order-independent by construction.
func (c *Coordinator) liveSet() (addrs []string, backends map[string]Backend) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	backends = make(map[string]Backend, len(c.order))
	for _, addr := range c.order {
		w := c.workers[addr]
		if w.dead || now.Before(w.openUntil) {
			continue
		}
		addrs = append(addrs, addr)
		backends[addr] = w.backend
	}
	return addrs, backends
}

// recordSuccess marks a worker healthy: failures reset, breaker closes,
// a dead worker revives.
func (c *Coordinator) recordSuccess(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok {
		w.lastSeen = c.cfg.Now()
		w.consecFails = 0
		w.openUntil = time.Time{}
		w.dead = false
	}
}

// recordFailure books one failed attempt against a worker and opens its
// breaker at the threshold.
func (c *Coordinator) recordFailure(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.WorkerFailures++
	w, ok := c.workers[addr]
	if !ok {
		return
	}
	w.consecFails++
	if w.consecFails >= c.cfg.BreakerThreshold {
		w.openUntil = c.cfg.Now().Add(c.cfg.BreakerCooldown)
	}
}

// heartbeatLoop probes the fleet on the configured cadence until Close.
func (c *Coordinator) heartbeatLoop() {
	defer close(c.loopDone)
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.ProbeAll(context.Background())
		}
	}
}

// ProbeAll health-checks every registered worker once, in parallel, and
// updates liveness: success refreshes lastSeen (reviving dead workers
// and closing breakers); a worker unheard-of past HeartbeatTimeout is
// marked dead. Exported so tests and single-shot tools can drive health
// without the background loop.
func (c *Coordinator) ProbeAll(ctx context.Context) {
	c.mu.Lock()
	addrs := append([]string(nil), c.order...)
	backends := make([]Backend, len(addrs))
	for i, a := range addrs {
		backends[i] = c.workers[a].backend
	}
	c.mu.Unlock()

	timeout := c.cfg.HeartbeatInterval
	if timeout <= 0 {
		timeout = time.Second
	}
	var wg sync.WaitGroup
	for i := range addrs {
		wg.Add(1)
		go func(addr string, b Backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			if err := b.Health(pctx); err == nil {
				c.recordSuccess(addr)
				return
			}
			c.mu.Lock()
			if w, ok := c.workers[addr]; ok {
				w.consecFails++
				if c.cfg.Now().Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
					w.dead = true
				}
			}
			c.mu.Unlock()
		}(addrs[i], backends[i])
	}
	wg.Wait()
}

// Workers snapshots every registered worker's health, sorted by address.
func (c *Coordinator) Workers() []WorkerStatus {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.order))
	for _, addr := range c.order {
		w := c.workers[addr]
		st := WorkerLive
		switch {
		case w.dead:
			st = WorkerDead
		case now.Before(w.openUntil):
			st = WorkerBreakerOpen
		}
		out = append(out, WorkerStatus{
			Addr:                addr,
			State:               st,
			ConsecutiveFailures: w.consecFails,
			SecondsSinceSeen:    now.Sub(w.lastSeen).Seconds(),
		})
	}
	return out
}

// Stats snapshots the cumulative counters plus the current fleet size.
func (c *Coordinator) Stats() Stats {
	live, _ := c.liveSet()
	c.mu.Lock()
	st := c.stats
	st.Workers = len(c.order)
	c.mu.Unlock()
	st.Live = len(live)
	st.PeerHits = c.cfg.Local.Cache().Stats().PeerHits
	return st
}

// peerLookup is the PeerFunc wired into the local result cache: ask the
// key's owning worker — and only it — for a cached outcome, best-effort
// under a short timeout. Probe failures never trip breakers; a missing
// answer just means the local tier walks on to disk.
func (c *Coordinator) peerLookup(ctx context.Context, key string) (sim.Outcome, bool) {
	addrs, backends := c.liveSet()
	if len(addrs) == 0 {
		return sim.Outcome{}, false
	}
	ring := shard.New(addrs, c.cfg.Replicas)
	owner, ok := ring.Owner(key)
	if !ok {
		return sim.Outcome{}, false
	}
	pctx, cancel := context.WithTimeout(ctx, c.cfg.PeerProbeTimeout)
	defer cancel()
	out, ok, err := backends[owner].CachedOutcome(pctx, key)
	if err != nil || !ok {
		return sim.Outcome{}, false
	}
	return out, true
}
