package natorder

import (
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// controller adapts the natural-order model to the engine registry, so
// sim.Run and the sweep executor reach it by name.
type controller struct{}

func init() { engine.Register(controller{}) }

func (controller) Name() string { return "natural-order" }

func (controller) Run(dev *rdram.Device, k *stream.Kernel, opt engine.Options) (engine.Result, error) {
	return Run(dev, k, Config{
		Scheme:        opt.Scheme,
		LineWords:     opt.LineWords,
		WriteAllocate: opt.WriteAllocate,
		Cache:         opt.Cache,
		Outstanding:   opt.Outstanding,
		Telemetry:     opt.Telemetry,
	})
}
