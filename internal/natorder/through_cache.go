package natorder

import (
	"rdramstream/internal/cache"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// runThroughCache is the timing phase with a real set-associative cache in
// front of the memory: every element access consults the cache; misses
// fetch the line (write-allocate, loads and stores alike), conflict
// evictions of dirty lines write them back, and the computation ends with
// a dirty-line sweep. This models the natural-order configuration with the
// effects the paper's ideal-cache bounds exclude.
func (s *sim) runThroughCache(k *stream.Kernel, cc *cache.Cache, storeVals map[int64]uint64) error {
	autoPre := s.cfg.closedPage()
	nr := k.ReadStreams()
	lw := int64(s.cfg.LineWords)

	// Linefill-forwarding availability of resident lines: line index ->
	// DataStart of each of its packets. Evictions drop the entry.
	ready := make(map[int64][]int64)

	var prevDep int64
	for i := 0; i < k.Iterations(); i++ {
		var iterDep int64
		for si, st := range k.Streams {
			addr := st.Addr(i)
			line := addr / lw
			write := st.Mode == stream.Write
			gate := prevDep
			if write {
				gate = iterDep
			}
			res := cc.Access(line, write)
			if !res.Hit {
				var dst []int64 // recycle the victim's availability buffer
				if res.Evicted >= 0 {
					if res.EvictedDirty {
						// Victim writeback precedes the fill on the bus.
						if err := s.writeLine(res.Evicted, max(s.cursor, gate), autoPre, storeVals); err != nil {
							return err
						}
					}
					dst = ready[res.Evicted]
					delete(ready, res.Evicted)
				}
				starts, err := s.fetchLine(line, max(s.cursor, gate), autoPre, dst)
				if err != nil {
					return err
				}
				ready[line] = starts
			}
			if si < nr {
				if starts, ok := ready[line]; ok {
					pkt := int(addr%lw) / rdram.WordsPerPacket
					if t := starts[pkt]; t > iterDep {
						iterDep = t
					}
				}
			}
		}
		prevDep = iterDep
	}
	// Final writeback sweep of everything still dirty.
	for _, line := range cc.FlushDirty() {
		if err := s.writeLine(line, s.cursor, autoPre, storeVals); err != nil {
			return err
		}
	}
	return nil
}
