package natorder

import (
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

func cacheCfg(sizeWords, ways int) *cache.Config {
	return &cache.Config{SizeWords: sizeWords, LineWords: 4, Ways: ways}
}

func TestThroughCacheFunctional(t *testing.T) {
	for _, f := range stream.Benchmarks {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			cfg := Config{Scheme: scheme, LineWords: 4, Cache: cacheCfg(2048, 1)}
			res, dev, k, shadow := runKernel(t, f.Name, 128, 1, cfg, stream.Staggered)
			if res.PercentPeak <= 0 || res.PercentPeak > 100 {
				t.Errorf("%s/%v: PercentPeak %.2f", f.Name, scheme, res.PercentPeak)
			}
			verifyFunctional(t, dev, scheme, 4, k, shadow)
		}
	}
}

func TestThroughCacheReportsHitRate(t *testing.T) {
	// A 1024-word direct-mapped cache cannot hold daxpy's two 1024-word
	// vectors: dead lines get conflict-evicted mid-run (dirty y lines get
	// written back), but the streaming hit rate stays ~0.83 because each
	// line's reuse happens before its set is recycled.
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4, Cache: cacheCfg(1024, 1)}
	res, _, _, _ := runKernel(t, "daxpy", 1024, 1, cfg, stream.Staggered)
	if res.CacheHitRate < 0.7 || res.CacheHitRate >= 1 {
		t.Errorf("hit rate = %.2f, want ~0.83", res.CacheHitRate)
	}
	if res.DirtyWritebacks == 0 {
		t.Error("expected mid-run dirty writebacks (vectors exceed the cache)")
	}
}

func TestThroughCacheMatchesIdealWhenNoConflicts(t *testing.T) {
	// With a fully-associative cache big enough for the streaming window,
	// the realistic model's traffic equals the write-allocate ideal model
	// plus the final writeback sweep.
	ideal := Config{Scheme: addrmap.CLI, LineWords: 4, WriteAllocate: true}
	idealRes, _, _, _ := runKernel(t, "copy", 256, 1, ideal, stream.Staggered)

	big := Config{Scheme: addrmap.CLI, LineWords: 4, Cache: cacheCfg(4096, 8)}
	bigRes, _, _, _ := runKernel(t, "copy", 256, 1, big, stream.Staggered)

	if bigRes.TransferredWords != idealRes.TransferredWords {
		t.Errorf("conflict-free cache moved %d words, ideal write-allocate %d",
			bigRes.TransferredWords, idealRes.TransferredWords)
	}
}

func TestThroughCacheConflictsInflateTraffic(t *testing.T) {
	// Vector bases exactly a cache-size multiple apart map onto the same
	// sets of a direct-mapped cache: x's live line and y's live line evict
	// each other every iteration, so intra-line reuse dies and traffic
	// explodes versus the ideal per-stream line buffers. This is the §6
	// effect the paper's bounds exclude ("cache conflicts ... beyond the
	// scope of this study").
	const cacheWords = 2048
	k := stream.Daxpy(2, 0, 4*cacheWords, 1024, 1) // bases congruent mod cache size

	run := func(cfg Config) Result {
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ideal := run(Config{Scheme: addrmap.CLI, LineWords: 4})
	realistic := run(Config{Scheme: addrmap.CLI, LineWords: 4, Cache: cacheCfg(cacheWords, 1)})
	if realistic.CacheHitRate > 0.5 {
		t.Errorf("thrashing hit rate = %.2f, expected collapse", realistic.CacheHitRate)
	}
	if realistic.TransferredWords < 2*ideal.TransferredWords {
		t.Errorf("realistic cache moved %d words, ideal %d; expected >=2x conflict inflation",
			realistic.TransferredWords, ideal.TransferredWords)
	}
	if realistic.PercentPeak >= ideal.PercentPeak {
		t.Errorf("thrashing run %.1f%% should be slower than ideal %.1f%%",
			realistic.PercentPeak, ideal.PercentPeak)
	}
	// A two-way cache absorbs the pathological pair.
	assoc := run(Config{Scheme: addrmap.CLI, LineWords: 4, Cache: cacheCfg(cacheWords, 2)})
	if assoc.CacheHitRate < 0.7 {
		t.Errorf("2-way hit rate = %.2f, expected the conflicts absorbed", assoc.CacheHitRate)
	}
}

func TestThroughCacheRejectsLineMismatch(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	k := stream.Copy(0, 1<<12, 16, 1)
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4, Cache: &cache.Config{SizeWords: 2048, LineWords: 8, Ways: 1}}
	if _, err := Run(dev, k, cfg); err == nil {
		t.Error("expected error for mismatched line sizes")
	}
	bad := Config{Scheme: addrmap.CLI, LineWords: 4, Cache: &cache.Config{SizeWords: 0, LineWords: 4, Ways: 1}}
	if _, err := Run(dev, k, bad); err == nil {
		t.Error("expected error for invalid cache config")
	}
}
