package natorder

import (
	"math"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

// readOnly builds a single read stream kernel (a pure cacheline-fill
// workload, as in the paper's Figure 8).
func readOnly(base int64, n int, stride int64) *stream.Kernel {
	return &stream.Kernel{
		Name: "read-only",
		Streams: []stream.Stream{
			{Name: "x", Base: base, Stride: stride, Length: n, Mode: stream.Read},
		},
		Compute: func(int, []float64) []float64 { return nil },
	}
}

// seedVectors fills every element of the kernel's streams with a
// deterministic pattern through the mapper, and returns a shadow copy.
func seedVectors(dev *rdram.Device, scheme addrmap.Scheme, lineWords int, k *stream.Kernel) map[int64]uint64 {
	m := addrmap.MustNew(scheme, dev.Config().Geometry, lineWords)
	shadow := make(map[int64]uint64)
	for si, s := range k.Streams {
		for i := 0; i < s.Length; i++ {
			addr := s.Addr(i)
			v := math.Float64bits(float64(si+1) + float64(i)*0.25)
			loc := m.Map(addr)
			dev.PokeWord(loc.Bank, loc.Row, loc.Col, loc.Word, v)
			shadow[addr] = v
		}
	}
	return shadow
}

// runKernel builds a device, lays the kernel's vectors out, runs it, and
// returns the result plus the device and shadow memory for verification.
func runKernel(t *testing.T, factory string, n int, strideW int64, cfg Config, placement stream.Placement) (Result, *rdram.Device, *stream.Kernel, map[int64]uint64) {
	t.Helper()
	f, ok := stream.FactoryByName(factory)
	if !ok {
		t.Fatalf("no factory %q", factory)
	}
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(cfg.Scheme, g, cfg.LineWords, f.Footprints(n, strideW), placement)
	k := f.Make(bases, n, strideW)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	shadow := seedVectors(dev, cfg.Scheme, cfg.LineWords, k)
	res, err := Run(dev, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, dev, k, shadow
}

// verifyFunctional checks the device contents against the kernel's golden
// replay over the shadow memory.
func verifyFunctional(t *testing.T, dev *rdram.Device, scheme addrmap.Scheme, lineWords int, k *stream.Kernel, shadow map[int64]uint64) {
	t.Helper()
	k.Replay(
		func(addr int64) uint64 { return shadow[addr] },
		func(addr int64, v uint64) { shadow[addr] = v },
	)
	m := addrmap.MustNew(scheme, dev.Config().Geometry, lineWords)
	for addr, want := range shadow {
		loc := m.Map(addr)
		if got := dev.PeekWord(loc.Bank, loc.Row, loc.Col, loc.Word); got != want {
			t.Fatalf("addr %d: device has %x, golden %x", addr, got, want)
		}
	}
}

func TestSingleStreamCLIMatchesTLCC(t *testing.T) {
	// Eq 5.2: a lone stream reads one cacheline every
	// T_LCC = tRAC + tPACK*(Lc/wp - 1) = 24 cycles under CLI closed-page.
	g := rdram.DefaultGeometry()
	bases := stream.MustLayout(addrmap.CLI, g, 4, []int64{1024}, stream.Staggered)
	k := readOnly(bases[0], 1024, 1)
	dev := rdram.NewDevice(rdram.DefaultConfig())
	var rec rdram.Recorder
	dev.Trace = rec.Hook()
	res, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	acts := rec.ByBus(0)
	var actStarts []int64
	for _, ev := range acts {
		if ev.Kind == rdram.TraceActivate {
			actStarts = append(actStarts, ev.Start)
		}
	}
	if len(actStarts) != 256 {
		t.Fatalf("activates = %d, want 256 (one per line)", len(actStarts))
	}
	for i := 1; i < 16; i++ {
		if got := actStarts[i] - actStarts[i-1]; got != 24 {
			t.Fatalf("ACT %d spacing = %d, want T_LCC = 24", i, got)
		}
	}
	// T = 24/4 = 6 cycles/word -> 33.3% of peak (paper's single-stream
	// closed-page bound).
	if res.PercentPeak < 32 || res.PercentPeak > 34 {
		t.Errorf("PercentPeak = %.2f, want ~33.3", res.PercentPeak)
	}
}

func TestSingleStreamPIBeatsCLI(t *testing.T) {
	g := rdram.DefaultGeometry()
	run := func(scheme addrmap.Scheme) float64 {
		bases := stream.MustLayout(scheme, g, 4, []int64{1024}, stream.Staggered)
		k := readOnly(bases[0], 1024, 1)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, k, Config{Scheme: scheme, LineWords: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.PercentPeak
	}
	cli, pi := run(addrmap.CLI), run(addrmap.PI)
	if pi <= cli {
		t.Errorf("PI (%.1f%%) should beat CLI (%.1f%%) for unit-stride streams", pi, cli)
	}
	// Eq 5.7/5.8 put the open-page single-stream bound near 60%.
	if pi < 55 || pi > 70 {
		t.Errorf("PI single-stream = %.1f%%, want ~60%%", pi)
	}
}

func TestCopyCLISteadyStatePipe(t *testing.T) {
	// Copy (s=2) under CLI: Eq 5.4 gives T_pipe = tRAC + tRR = 28 cycles
	// per round of two cachelines (8 words) -> 57.1% of peak.
	res, dev, k, shadow := runKernel(t, "copy", 1024, 1, Config{Scheme: addrmap.CLI, LineWords: 4}, stream.Staggered)
	if res.PercentPeak < 55 || res.PercentPeak > 59 {
		t.Errorf("copy CLI PercentPeak = %.2f, want ~57.1", res.PercentPeak)
	}
	verifyFunctional(t, dev, addrmap.CLI, 4, k, shadow)
}

func TestAllKernelsFunctionalBothSchemes(t *testing.T) {
	for _, f := range stream.Benchmarks {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, wa := range []bool{false, true} {
				cfg := Config{Scheme: scheme, LineWords: 4, WriteAllocate: wa}
				res, dev, k, shadow := runKernel(t, f.Name, 128, 1, cfg, stream.Staggered)
				if res.PercentPeak <= 0 || res.PercentPeak > 100 {
					t.Errorf("%s/%v wa=%v: PercentPeak = %.2f out of range", f.Name, scheme, wa, res.PercentPeak)
				}
				verifyFunctional(t, dev, scheme, 4, k, shadow)
			}
		}
	}
}

// multiKernel builds an s-stream loop over s independent vectors
// (sr reads, one write), laid out staggered.
func multiKernel(t *testing.T, scheme addrmap.Scheme, sr, n int) *stream.Kernel {
	t.Helper()
	g := rdram.DefaultGeometry()
	fps := make([]int64, sr+1)
	for i := range fps {
		fps[i] = int64(n)
	}
	bases := stream.MustLayout(scheme, g, 4, fps, stream.Staggered)
	return stream.MultiStream(sr, 1, bases, n, 1)
}

func TestMoreStreamsMoreBandwidth(t *testing.T) {
	// The paper: "Maximum effective bandwidth increases with the number of
	// streams in the computation: loops with more streams exploit the
	// Direct RDRAM's available concurrency better." Use independent
	// vectors, as in the paper's eight-stream experiment.
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		cfg := Config{Scheme: scheme, LineWords: 4}
		var prev float64
		for _, sr := range []int{1, 3, 7} {
			k := multiKernel(t, scheme, sr, 1024)
			dev := rdram.NewDevice(rdram.DefaultConfig())
			seedVectors(dev, scheme, 4, k)
			res, err := Run(dev, k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.PercentPeak <= prev {
				t.Errorf("%v: s=%d gives %.1f%%, not above s-1 level %.1f%%",
					scheme, sr+1, res.PercentPeak, prev)
			}
			prev = res.PercentPeak
		}
	}
}

func TestStrideWastesBandwidth(t *testing.T) {
	// Figure 8: effective bandwidth collapses as stride grows, and is flat
	// once stride exceeds the cacheline size.
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4}
	g := rdram.DefaultGeometry()
	var prev float64 = 101
	for _, stride := range []int64{1, 2, 4} {
		bases := stream.MustLayout(addrmap.CLI, g, 4, []int64{1024 * stride}, stream.Staggered)
		k := readOnly(bases[0], 1024, stride)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.PercentPeak >= prev {
			t.Errorf("stride %d: %.1f%% should be below stride-halved %.1f%%", stride, res.PercentPeak, prev)
		}
		prev = res.PercentPeak
	}
	// Beyond the line size the bound is flat: strides 8 and 16 equal.
	perc := func(stride int64) float64 {
		bases := stream.MustLayout(addrmap.CLI, g, 4, []int64{1024 * stride}, stream.Staggered)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := Run(dev, readOnly(bases[0], 1024, stride), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PercentPeak
	}
	p8, p16 := perc(8), perc(16)
	if math.Abs(p8-p16) > 0.5 {
		t.Errorf("stride 8 (%.2f%%) and 16 (%.2f%%) should match beyond the line size", p8, p16)
	}
	// "natural-order cacheline accesses only deliver 10% or less" there.
	if p16 > 10 {
		t.Errorf("stride 16 = %.2f%%, want <= 10%%", p16)
	}
}

func TestWriteAllocateAddsTraffic(t *testing.T) {
	cfg := Config{Scheme: addrmap.CLI, LineWords: 4}
	direct, _, _, _ := runKernel(t, "copy", 1024, 1, cfg, stream.Staggered)
	cfg.WriteAllocate = true
	wa, _, _, _ := runKernel(t, "copy", 1024, 1, cfg, stream.Staggered)
	// Write-allocate fetches every store line before writing it back:
	// copy moves 3 lines per round instead of 2.
	if wa.TransferredWords <= direct.TransferredWords {
		t.Errorf("write-allocate transferred %d words, direct %d; expected more",
			wa.TransferredWords, direct.TransferredWords)
	}
	if wa.PercentPeak >= direct.PercentPeak {
		t.Errorf("write-allocate %.1f%% should be below direct %.1f%%", wa.PercentPeak, direct.PercentPeak)
	}
}

func TestTrafficAccounting(t *testing.T) {
	res, _, _, _ := runKernel(t, "copy", 1024, 1, Config{Scheme: addrmap.CLI, LineWords: 4}, stream.Staggered)
	if res.UsefulWords != 2048 {
		t.Errorf("UsefulWords = %d, want 2048", res.UsefulWords)
	}
	// Unit stride: every transferred word is useful. 256 lines read + 256
	// written, 4 words each.
	if res.TransferredWords != 2048 {
		t.Errorf("TransferredWords = %d, want 2048", res.TransferredWords)
	}
	if res.Device.Reads != 512 || res.Device.Writes != 512 {
		t.Errorf("device packets = %d/%d, want 512/512", res.Device.Reads, res.Device.Writes)
	}
}

func TestPIPageHitRateIsHigh(t *testing.T) {
	res, _, _, _ := runKernel(t, "daxpy", 1024, 1, Config{Scheme: addrmap.PI, LineWords: 4}, stream.Staggered)
	if hr := res.Device.HitRate(); hr < 0.9 {
		t.Errorf("PI open-page hit rate = %.2f, want > 0.9 for unit-stride streams", hr)
	}
}

func TestCLIClosedPageHitsOnlyWithinBursts(t *testing.T) {
	// Under the closed-page policy every cacheline burst re-activates its
	// row; only the burst's trailing packets hit the open row. With
	// 2 packets per line, hits == line transactions == misses.
	res, _, _, _ := runKernel(t, "daxpy", 128, 1, Config{Scheme: addrmap.CLI, LineWords: 4}, stream.Staggered)
	if res.Device.PageHits != res.Device.PageMisses {
		t.Errorf("hits = %d, misses = %d; want equal (one miss + one hit per 2-packet line)",
			res.Device.PageHits, res.Device.PageMisses)
	}
	if res.Device.Activates != res.Device.PageMisses {
		t.Errorf("activates = %d, misses = %d; want equal", res.Device.Activates, res.Device.PageMisses)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	dev := rdram.NewDevice(rdram.DefaultConfig())
	k := stream.Copy(0, 1<<12, 16, 1)
	if _, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 3}); err == nil {
		t.Error("expected error for odd line size")
	}
	if _, err := Run(dev, k, Config{Scheme: addrmap.CLI, LineWords: 256}); err == nil {
		t.Error("expected error for line larger than page")
	}
	bad := stream.Copy(0, 1<<12, 16, 1)
	bad.Compute = nil
	if _, err := Run(dev, bad, Config{Scheme: addrmap.CLI, LineWords: 4}); err == nil {
		t.Error("expected error for invalid kernel")
	}
}

func TestAlignedPlacementIsNoFasterThanStaggered(t *testing.T) {
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		cfg := Config{Scheme: scheme, LineWords: 4}
		al, _, _, _ := runKernel(t, "vaxpy", 1024, 1, cfg, stream.Aligned)
		st, _, _, _ := runKernel(t, "vaxpy", 1024, 1, cfg, stream.Staggered)
		if al.PercentPeak > st.PercentPeak+0.01 {
			t.Errorf("%v: aligned %.2f%% beats staggered %.2f%%", scheme, al.PercentPeak, st.PercentPeak)
		}
	}
}

func TestOutstandingWindow(t *testing.T) {
	// A blocking (depth-1) miss path must be slower than the Direct
	// RDRAM's four-deep pipeline; out-of-range values are rejected.
	base := Config{Scheme: addrmap.CLI, LineWords: 4}
	four, _, _, _ := runKernel(t, "copy", 1024, 1, base, stream.Staggered)
	blocking := base
	blocking.Outstanding = 1
	one, _, _, _ := runKernel(t, "copy", 1024, 1, blocking, stream.Staggered)
	if one.PercentPeak >= four.PercentPeak {
		t.Errorf("blocking path %.1f%% should trail pipelined %.1f%%", one.PercentPeak, four.PercentPeak)
	}
	dev := rdram.NewDevice(rdram.DefaultConfig())
	k := stream.Copy(0, 1<<12, 16, 1)
	for _, bad := range []int{-1, 5} {
		cfg := base
		cfg.Outstanding = bad
		if _, err := Run(dev, k, cfg); err == nil {
			t.Errorf("Outstanding=%d should be rejected", bad)
		}
	}
}

func TestNaturalOrderSwapFunctional(t *testing.T) {
	g := rdram.DefaultGeometry()
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		bases := stream.MustLayout(scheme, g, 4, []int64{256, 256}, stream.Staggered)
		k := stream.Swap(bases[0], bases[1], 256, 1)
		dev := rdram.NewDevice(rdram.DefaultConfig())
		shadow := seedVectors(dev, scheme, 4, k)
		if _, err := Run(dev, k, Config{Scheme: scheme, LineWords: 4}); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		verifyFunctional(t, dev, scheme, 4, k, shadow)
	}
}

func TestPagePolicyOverride(t *testing.T) {
	cases := []struct {
		scheme addrmap.Scheme
		pol    PagePolicy
		want   bool
	}{
		{addrmap.CLI, PairedPolicy, true},
		{addrmap.PI, PairedPolicy, false},
		{addrmap.PI, ForceClosed, true},
		{addrmap.CLI, ForceOpen, false},
	}
	for _, c := range cases {
		cfg := Config{Scheme: c.scheme, Policy: c.pol}
		if cfg.closedPage() != c.want {
			t.Errorf("%v/%v: closedPage = %v", c.scheme, c.pol, cfg.closedPage())
		}
	}
	if PairedPolicy.String() != "paired" || ForceClosed.String() != "closed" || ForceOpen.String() != "open" {
		t.Error("policy strings wrong")
	}
	// A PI+closed run really precharges (no page hits beyond line bursts).
	cfg := Config{Scheme: addrmap.PI, LineWords: 4, Policy: ForceClosed}
	res, _, _, _ := runKernel(t, "daxpy", 256, 1, cfg, stream.Staggered)
	if res.Device.PageHits != res.Device.PageMisses {
		t.Errorf("PI+closed hits=%d misses=%d, want equal (intra-burst only)",
			res.Device.PageHits, res.Device.PageMisses)
	}
}
