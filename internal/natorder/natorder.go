// Package natorder simulates the paper's baseline: a traditional memory
// controller that services streaming loads and stores as cacheline
// transactions issued in the computation's natural order (§5.1, Figures 5
// and 6).
//
// The model follows the paper's optimistic assumptions:
//
//   - The cache controller supports linefill-buffer forwarding, so the CPU
//     can use a word as soon as its DATA packet starts arriving; a store is
//     initiated as soon as the operands of its iteration are available.
//   - A store transmits its full cacheline directly to memory at the first
//     store to that line; there is no write-allocate fetch and no
//     conflict-induced dirty writeback (the paper's bounds "ignore the time
//     to write dirty cachelines back to memory"). Setting
//     Config.WriteAllocate models fetch-on-store-miss plus
//     eviction-writeback instead, as an ablation.
//   - Transactions issue strictly in program order, pipelined up to the
//     Direct RDRAM's limit of four outstanding requests.
//
// The simulation runs in two phases: a functional phase computes every
// store value with the kernel's golden semantics, then a timing phase
// replays the cacheline transactions against the device, writing those
// values, so the device's memory image afterwards is exact.
package natorder

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/engine"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
)

// Config selects the memory organization and the store policy.
type Config struct {
	// Scheme pairs the interleaving with its precharge policy as in the
	// paper: CLI uses closed-page (auto-precharge), PI uses open-page.
	Scheme addrmap.Scheme
	// LineWords is the cacheline size in 64-bit words (L_c).
	LineWords int
	// WriteAllocate, when true, fetches a store-missed line from memory and
	// writes it back on eviction instead of streaming the store line
	// directly to memory.
	WriteAllocate bool
	// Cache, when non-nil, routes every access through a real
	// set-associative write-back cache instead of the paper's ideal
	// per-stream line buffers: conflict misses refetch lines and dirty
	// evictions write back — the effects the paper's §6 notes are "beyond
	// the scope of this study". Its LineWords must equal Config.LineWords.
	// Cache overrides WriteAllocate.
	Cache *cache.Config
	// Outstanding caps the pipelined cacheline transactions in flight
	// (0 = the Direct RDRAM limit of four). One models a fully blocking
	// miss path; values above four exceed what the device pipeline
	// supports and are rejected.
	Outstanding int
	// Policy overrides the scheme's default precharge policy, to explore
	// the two pairings the paper excludes (CLI+open, PI+closed).
	Policy PagePolicy
	// Telemetry, when non-nil, attaches the device probe and records the
	// controller's cacheline miss-latency histogram. Idle DATA-bus cycles
	// before each transaction are attributed to the in-order dependency
	// wait (telemetry.StallDependency).
	Telemetry *telemetry.Collector
}

// PagePolicy selects the precharge behaviour after each cacheline burst.
type PagePolicy int

const (
	// PairedPolicy follows the paper: closed-page for CLI, open-page for
	// PI.
	PairedPolicy PagePolicy = iota
	// ForceClosed precharges after every burst regardless of scheme.
	ForceClosed
	// ForceOpen leaves pages open regardless of scheme.
	ForceOpen
)

func (p PagePolicy) String() string {
	switch p {
	case PairedPolicy:
		return "paired"
	case ForceClosed:
		return "closed"
	case ForceOpen:
		return "open"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// closedPage resolves the effective policy.
func (c Config) closedPage() bool {
	switch c.Policy {
	case ForceClosed:
		return true
	case ForceOpen:
		return false
	default:
		return c.Scheme == addrmap.CLI
	}
}

// DefaultConfig returns the paper's CLI configuration with 32-byte lines.
func DefaultConfig() Config {
	return Config{Scheme: addrmap.CLI, LineWords: 4}
}

// Result is the common controller outcome (see engine.Result); Cycles is
// the cycle after the last DATA packet, and CacheHitRate/DirtyWritebacks
// are populated when Config.Cache is set (the realistic-cache mode).
type Result = engine.Result

// Run simulates kernel k over the device through a natural-order cacheline
// controller and returns timing plus bandwidth results. The device's
// functional contents are read and written, so callers can verify the
// computation afterwards.
func Run(dev *rdram.Device, k *stream.Kernel, cfg Config) (Result, error) {
	if cfg.LineWords <= 0 || cfg.LineWords%rdram.WordsPerPacket != 0 {
		return Result{}, fmt.Errorf("natorder: LineWords must be a positive multiple of %d, got %d", rdram.WordsPerPacket, cfg.LineWords)
	}
	if dev.Config().Geometry.PageWords%cfg.LineWords != 0 {
		return Result{}, fmt.Errorf("natorder: page size %d not a multiple of line size %d", dev.Config().Geometry.PageWords, cfg.LineWords)
	}
	if err := k.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Outstanding < 0 || cfg.Outstanding > rdram.MaxOutstanding {
		return Result{}, fmt.Errorf("natorder: Outstanding %d out of [0,%d]", cfg.Outstanding, rdram.MaxOutstanding)
	}
	if cfg.Outstanding == 0 {
		cfg.Outstanding = rdram.MaxOutstanding
	}
	mapper, err := addrmap.New(cfg.Scheme, dev.Config().Geometry, cfg.LineWords)
	if err != nil {
		return Result{}, err
	}

	s := &sim{dev: dev, mapper: mapper, cfg: cfg, window: engine.NewWindow(cfg.Outstanding)}
	// The natural-order processor issues in order: the bus waits on the
	// previous iteration's operands, not on an absent request stream.
	s.ctl = engine.Attach(dev, cfg.Telemetry, telemetry.StallDependency)

	// Phase 1: functional execution over a shadow of device memory,
	// recording every store value.
	storeVals := engine.StoreValues(dev, mapper, k)

	// Phase 2: timed replay of the cacheline transactions in natural
	// order.
	var cc *cache.Cache
	if cfg.Cache != nil {
		if cfg.Cache.LineWords != cfg.LineWords {
			return Result{}, fmt.Errorf("natorder: cache line %d != controller line %d", cfg.Cache.LineWords, cfg.LineWords)
		}
		cc, err = cache.New(*cfg.Cache)
		if err != nil {
			return Result{}, err
		}
		err = s.runThroughCache(k, cc, storeVals)
	} else {
		err = s.run(k, storeVals)
	}
	if err != nil {
		return Result{}, err
	}

	st := dev.Stats()
	res := Result{
		Cycles:           st.LastDataEnd,
		UsefulWords:      int64(k.Iterations()) * int64(len(k.Streams)),
		TransferredWords: st.PacketCount() * rdram.WordsPerPacket,
		Device:           st,
	}
	res.Finalize(dev.Config().Timing.CyclesPerWordPeak())
	if cc != nil {
		res.CacheHitRate = cc.HitRate()
		_, _, _, res.DirtyWritebacks = cc.Stats()
	}
	return res, nil
}

type sim struct {
	dev    *rdram.Device
	mapper *addrmap.Mapper
	cfg    Config

	cursor int64          // first-command time of the most recent transaction
	window *engine.Window // pipeline of outstanding transactions

	ctl *telemetry.ControllerProbe // nil when telemetry is off
}

// streamState tracks a stream's current cacheline during the timing phase.
type streamState struct {
	line      int64   // current cacheline index (-1 = none)
	pktStarts []int64 // DataStart of each packet of the current line (reads)
	dirty     bool    // write-allocate: line has been stored to
}

func (s *sim) run(k *stream.Kernel, storeVals map[int64]uint64) error {
	autoPre := s.cfg.closedPage()
	nr := k.ReadStreams()
	states := make([]streamState, len(k.Streams))
	for i := range states {
		states[i].line = -1
	}
	lw := int64(s.cfg.LineWords)

	// prevDep is the time the previous iteration's operands became
	// available. The paper's processor issues in order with a window of
	// about one iteration: iteration i+1's requests do not reach the
	// memory before iteration i's operands have started arriving (this is
	// what exposes t_RAC once per cacheline round in Eq 5.2-5.4 and in
	// Figure 5's timing).
	var prevDep int64
	for i := 0; i < k.Iterations(); i++ {
		// Reads first (kernel validation guarantees the order): fetch any
		// newly touched lines and note when this iteration's operands
		// arrive via linefill forwarding.
		var iterDep int64
		for r := 0; r < nr; r++ {
			st := &states[r]
			addr := k.Streams[r].Addr(i)
			line := addr / lw
			if st.line != line {
				st.line = line
				var err error
				st.pktStarts, err = s.fetchLine(line, max(s.cursor, prevDep), autoPre, st.pktStarts)
				if err != nil {
					return err
				}
			}
			pkt := int(addr%lw) / rdram.WordsPerPacket
			if ready := st.pktStarts[pkt]; ready > iterDep {
				iterDep = ready
			}
		}
		// Stores: at the first store to a new line, stream the whole line
		// out (or, under write-allocate, fetch it and write back the
		// evicted one).
		for w := nr; w < len(k.Streams); w++ {
			st := &states[w]
			addr := k.Streams[w].Addr(i)
			line := addr / lw
			if st.line == line {
				continue
			}
			prev := st.line
			st.line = line
			if s.cfg.WriteAllocate {
				if prev >= 0 && st.dirty {
					if err := s.writeLine(prev, s.cursor, autoPre, storeVals); err != nil {
						return err
					}
				}
				var err error
				st.pktStarts, err = s.fetchLine(line, max(s.cursor, iterDep), autoPre, st.pktStarts)
				if err != nil {
					return err
				}
				st.dirty = true
			} else {
				if err := s.writeLine(line, max(s.cursor, iterDep), autoPre, storeVals); err != nil {
					return err
				}
			}
		}
		prevDep = iterDep
	}
	if s.cfg.WriteAllocate {
		for w := nr; w < len(k.Streams); w++ {
			if st := &states[w]; st.line >= 0 && st.dirty {
				if err := s.writeLine(st.line, s.cursor, autoPre, storeVals); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// fetchLine reads every packet of a cacheline and returns each packet's
// DataStart (the linefill-forwarding availability times), appending into
// dst's backing so each stream reuses one buffer for the whole run.
// Transient device rejections under fault injection are retried with
// bounded backoff (engine.Issue); exhausting the retries fails the run.
func (s *sim) fetchLine(line, at int64, autoPre bool, dst []int64) ([]int64, error) {
	reqAt := at
	at = s.window.Admit(at)
	packets := s.cfg.LineWords / rdram.WordsPerPacket
	base := line * int64(s.cfg.LineWords)
	starts := dst[:0]
	var complete int64
	for p := 0; p < packets; p++ {
		loc := s.mapper.Map(base + int64(p*rdram.WordsPerPacket))
		res, err := engine.Issue(s.dev, at, rdram.Request{
			Bank: loc.Bank, Row: loc.Row, Col: loc.Col,
			AutoPrecharge: autoPre && p == packets-1,
		})
		if err != nil {
			return nil, err
		}
		if p == 0 {
			s.advanceCursor(res)
			// Miss service latency as the processor sees it: request
			// presented (before the outstanding-transaction gate) to first
			// word forwarded.
			s.ctl.ObserveMissLatency(res.DataStart - reqAt)
		}
		starts = append(starts, res.DataStart)
		complete = res.DataEnd
	}
	s.window.Complete(complete)
	return starts, nil
}

// writeLine transmits a full cacheline of store data. Words the kernel
// never stores keep their prior memory contents (read-merge, free of
// charge, as in the paper's line-granularity store model).
func (s *sim) writeLine(line, at int64, autoPre bool, storeVals map[int64]uint64) error {
	at = s.window.Admit(at)
	packets := s.cfg.LineWords / rdram.WordsPerPacket
	base := line * int64(s.cfg.LineWords)
	var complete int64
	for p := 0; p < packets; p++ {
		addr := base + int64(p*rdram.WordsPerPacket)
		loc := s.mapper.Map(addr)
		var data [rdram.WordsPerPacket]uint64
		for w := 0; w < rdram.WordsPerPacket; w++ {
			if v, ok := storeVals[addr+int64(w)]; ok {
				data[w] = v
			} else {
				data[w] = engine.Peek(s.dev, s.mapper, addr+int64(w))
			}
		}
		res, err := engine.Issue(s.dev, at, rdram.Request{
			Bank: loc.Bank, Row: loc.Row, Col: loc.Col,
			Write: true, Data: data,
			AutoPrecharge: autoPre && p == packets-1,
		})
		if err != nil {
			return err
		}
		if p == 0 {
			s.advanceCursor(res)
		}
		complete = res.DataEnd
	}
	s.window.Complete(complete)
	return nil
}

// advanceCursor records the first command time of a transaction: the next
// natural-order request may not be presented to the memory before it.
func (s *sim) advanceCursor(res rdram.Result) {
	first := res.ColIssue
	if res.ActIssue >= 0 {
		first = res.ActIssue
	}
	if res.PreIssue >= 0 {
		first = res.PreIssue
	}
	if first > s.cursor {
		s.cursor = first
	}
}
