package resultcache

import (
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/sim"
	"rdramstream/internal/tracegen"
)

// A generator program and the trace it expands to are the same cache
// entry; a different trace, or the same trace under a different replay
// depth, is not.
func TestKeyTraceContentAddressing(t *testing.T) {
	prog, err := tracegen.ParseProgram("llm-kvcache:n=2048,ctxrows=8", 5)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := prog.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Scenario{Scheme: addrmap.PI, Mode: sim.SMC, FIFODepth: 32}
	byProg := base
	byProg.Workload = &tracegen.Spec{Program: prog}
	byAccs := base
	byAccs.Workload = &tracegen.Spec{Accesses: accs}

	k1, err := Key(byProg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(byAccs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("program key %s != materialized key %s", k1, k2)
	}

	kernel := sim.Scenario{KernelName: "daxpy", N: 256, Scheme: addrmap.PI, Mode: sim.SMC}
	k3, err := Key(kernel)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("kernel scenario collides with a trace scenario")
	}

	deeper := byProg
	spec := *byProg.Workload
	spec.Outstanding = 1
	deeper.Workload = &spec
	k4, err := Key(deeper)
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Error("replay depth does not split the key")
	}
}
