// Package resultcache memoizes simulation outcomes behind a canonical,
// content-addressed key. It is the serving layer's answer to the cost of
// cycle-accurate simulation: every figure, sweep, and API request that
// names a scenario already simulated — by anyone, at any worker count —
// is answered from the cache with an outcome bit-identical to a fresh
// sim.Run.
//
// Three layers compose:
//
//   - Key: a SHA-256 over the scenario's canonical form (sim.Canonical:
//     defaults filled, controller resolved by registry name, observers
//     dropped) plus the device, cache, and fault configurations and the
//     build's version.Stamp. Equal simulations hash equal regardless of
//     how the scenario was spelled; any model or version change changes
//     every key.
//   - a tiered store: an in-memory LRU bounded by entry count, an
//     optional peer tier (PeerFunc — the fabric coordinator wires one
//     that asks the key's owning worker), and an optional on-disk JSON
//     store (one file per key) that survives restarts and is shared
//     between processes; misses walk memory → peer → disk, and finds
//     from the outer tiers are promoted to memory;
//   - singleflight deduplication: identical scenarios requested
//     concurrently run once, and every waiter receives the same outcome.
//
// Determinism contract: the cache stores outcomes by value and never
// re-derives them, so a hit is the bit pattern the original sim.Run
// produced. JSON round-trips through the disk store are exact — Go
// encodes float64 with the shortest representation that parses back to
// the same bits, and outcomes never carry NaN or Inf.
package resultcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"rdramstream/internal/sim"
	"rdramstream/internal/version"
)

// Runner executes one scenario on a cache miss. The default is sim.Run;
// the service layer substitutes a runner that attaches telemetry first.
type Runner func(sim.Scenario) (sim.Outcome, error)

// PeerFunc consults a remote cache tier for a key — the fabric
// coordinator wires one that asks the key's owning worker. It must be
// best-effort and purely observational: return ok=false on any doubt
// (miss, timeout, transport failure) and never influence the outcome a
// fresh run would produce. The cache calls it between the in-memory LRU
// and the disk store, so the tier order is local LRU → peer → disk.
type PeerFunc func(ctx context.Context, key string) (sim.Outcome, bool)

// Options configures a Cache. The zero value is usable: 1024 in-memory
// entries, no disk store.
type Options struct {
	// MaxEntries bounds the in-memory LRU (default 1024; the LRU always
	// holds at least one entry).
	MaxEntries int
	// Dir, when non-empty, enables the on-disk store: one JSON file per
	// key under this directory, created on first use. Disk entries whose
	// version stamp no longer matches the binary are ignored.
	Dir string
	// Peer, when non-nil, is the remote tier consulted on an in-memory
	// miss, before disk. It can also be wired after construction with
	// SetPeer (the fabric coordinator learns its workers at runtime).
	Peer PeerFunc
}

// Stats is a point-in-time snapshot of the cache's counters. All
// counters are read under one lock, and related counters are incremented
// under that same lock in one step, so a snapshot is internally
// consistent: DiskHits never exceeds Hits, and Hits+Misses+Dedups equals
// the number of Do calls that have classified themselves — no
// torn-counter skew under concurrent load (race-tested).
type Stats struct {
	// Hits counts requests answered from memory, Misses requests that ran
	// a simulation.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// DiskHits counts Do lookups rescued by the on-disk store and
	// promoted to memory. A Do rescued by disk also counts as a Hit, so
	// DiskHits is a subset of Hits and disjoint from Misses.
	DiskHits int64 `json:"disk_hits"`
	// PeerHits counts Do lookups rescued by the peer tier and promoted
	// to memory. Like DiskHits, a subset of Hits, disjoint from both
	// DiskHits and Misses.
	PeerHits int64 `json:"peer_hits"`
	// Dedups counts requests that piggybacked on an identical in-flight
	// simulation instead of starting their own.
	Dedups int64 `json:"dedups"`
	// Evictions counts LRU entries displaced by newer ones.
	Evictions int64 `json:"evictions"`
	// DiskErrors counts best-effort disk reads/writes that failed; the
	// cache degrades to memory-only rather than failing requests.
	DiskErrors int64 `json:"disk_errors"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
}

// Cache is a content-addressed store of simulation outcomes. All methods
// are safe for concurrent use.
type Cache struct {
	maxEntries int
	disk       *diskStore // nil when no Dir was configured
	vstamp     string

	mu      sync.Mutex
	order   *list.List               // guarded by mu; front = most recently used
	entries map[string]*list.Element // guarded by mu; key -> element whose Value is *entry

	flightMu sync.Mutex
	inflight map[string]*flight // guarded by flightMu

	// peerMu guards peer, which can be wired after construction
	// (SetPeer) once the fabric coordinator knows its workers.
	peerMu sync.RWMutex
	peer   PeerFunc // guarded by peerMu

	// statsMu guards every counter as one group: increments that belong
	// together (a disk rescue is a Hit AND a DiskHit) happen in a single
	// critical section, and Stats reads them all in one, so a concurrent
	// snapshot can never observe DiskHits > Hits or similar skew.
	statsMu sync.Mutex
	stats   Stats // guarded by statsMu
}

// count runs one grouped counter mutation under the stats lock.
func (c *Cache) count(f func(*Stats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

type entry struct {
	key string
	out sim.Outcome
}

// flight is one in-progress simulation shared by all concurrent callers
// with the same key.
type flight struct {
	done chan struct{}
	out  sim.Outcome
	err  error
}

// New builds a Cache. The disk directory, when configured, is created
// immediately so a misconfigured path fails at construction, not on the
// first miss.
func New(o Options) (*Cache, error) {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 1024
	}
	c := &Cache{
		maxEntries: o.MaxEntries,
		vstamp:     version.Stamp(),
		order:      list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*flight),
		peer:       o.Peer,
	}
	if o.Dir != "" {
		d, err := newDiskStore(o.Dir)
		if err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
		c.disk = d
	}
	return c, nil
}

// SetPeer installs (or clears, with nil) the peer tier. Safe to call
// concurrently with lookups; in-flight lookups may still use the old
// func.
func (c *Cache) SetPeer(p PeerFunc) {
	c.peerMu.Lock()
	c.peer = p
	c.peerMu.Unlock()
}

func (c *Cache) peerFunc() PeerFunc {
	c.peerMu.RLock()
	p := c.peer
	c.peerMu.RUnlock()
	return p
}

// Key returns the content address of a scenario: a hex SHA-256 over its
// canonical form and the build's version stamp. Scenarios that simulate
// identically key identically — Mode vs. Controller spelling, omitted vs.
// explicit defaults, and attached observers all collapse — and the key is
// independent of field declaration order because the digest input is a
// sorted field list.
//
// rdlint:canonconsumer — canoncheck requires every exported Scenario
// field (transitively) to be named here, folded whole via %+v, or
// consumed by Canonical; a new field that misses the key is a lint
// error instead of a cross-worker cache collision.
func Key(sc sim.Scenario) (string, error) {
	canon, err := sc.Canonical()
	if err != nil {
		return "", err
	}
	fields := []string{
		fmt.Sprintf("cache=%+v", canon.Cache),
		fmt.Sprintf("controller=%s", canon.Controller),
		fmt.Sprintf("device=%+v", canon.Device),
		fmt.Sprintf("fault=%+v", canon.Fault),
		fmt.Sprintf("fifoDepth=%d", canon.FIFODepth),
		fmt.Sprintf("kernel=%s", canon.KernelName),
		fmt.Sprintf("lineWords=%d", canon.LineWords),
		fmt.Sprintf("n=%d", canon.N),
		fmt.Sprintf("placement=%d", int(canon.Placement)),
		fmt.Sprintf("policy=%d", int(canon.Policy)),
		fmt.Sprintf("scheme=%d", int(canon.Scheme)),
		fmt.Sprintf("seed=%d", canon.Seed),
		fmt.Sprintf("skipVerify=%v", canon.SkipVerify),
		fmt.Sprintf("speculate=%v", canon.SpeculateActivate),
		fmt.Sprintf("stride=%d", canon.Stride),
		// Canonical trace specs carry only the materialized trace's
		// content digest (and the pipeline depth), so this field is a
		// fixed-size string however large the trace is — and a program
		// keys identically to the access list it expands to.
		fmt.Sprintf("trace=%+v", canon.Workload),
		fmt.Sprintf("version=%s", version.Stamp()),
		fmt.Sprintf("watchdog=%d", canon.WatchdogLimit),
		fmt.Sprintf("writeAllocate=%v", canon.WriteAllocate),
	}
	sort.Strings(fields)
	sum := sha256.Sum256([]byte(strings.Join(fields, "\n")))
	return hex.EncodeToString(sum[:]), nil
}

// Get looks the scenario up in memory (and then on disk, promoting a find
// to memory) without running anything. The boolean reports a hit. Get
// touches no hit/miss counters — only Do classifies requests — so probing
// the cache never skews the serving metrics.
func (c *Cache) Get(sc sim.Scenario) (sim.Outcome, bool, error) {
	key, err := Key(sc)
	if err != nil {
		return sim.Outcome{}, false, err
	}
	out, ok, _ := c.lookup(context.Background(), key)
	return out, ok, nil
}

// tier says where a lookup find came from.
type tier int

const (
	tierMemory tier = iota
	tierPeer
	tierDisk
)

// lookup checks the tiers in order — memory, peer, disk — reporting
// where the find came from. It touches no hit/miss counters — Do owns
// those and folds the tier into its own grouped increment, so a peer or
// disk rescue counts as Hit+PeerHit/DiskHit in one consistent step. ctx
// bounds only the peer consult (the remote call); memory and disk are
// local and unconditional.
func (c *Cache) lookup(ctx context.Context, key string) (out sim.Outcome, ok bool, src tier) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		out := el.Value.(*entry).out
		c.mu.Unlock()
		return out, true, tierMemory
	}
	c.mu.Unlock()
	if peer := c.peerFunc(); peer != nil && ctx.Err() == nil {
		if out, ok := peer(ctx, key); ok {
			c.store(key, out, false) // a peer holds it durably; promote to memory only
			return out, true, tierPeer
		}
	}
	if c.disk == nil {
		return sim.Outcome{}, false, tierMemory
	}
	out, ok, err := c.disk.load(key, c.vstamp)
	if err != nil {
		c.count(func(s *Stats) { s.DiskErrors++ })
		return sim.Outcome{}, false, tierMemory
	}
	if !ok {
		return sim.Outcome{}, false, tierMemory
	}
	c.store(key, out, false) // already on disk; promote to memory only
	return out, true, tierDisk
}

// Peek looks a raw key up in the local tiers only — memory, then disk,
// never the peer tier — and touches no counters. It is what a server
// answers peer probes (GET /v1/cache/{key}) from; skipping the peer tier
// here is what makes probe forwarding loops impossible.
func (c *Cache) Peek(key string) (sim.Outcome, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		out := el.Value.(*entry).out
		c.mu.Unlock()
		return out, true
	}
	c.mu.Unlock()
	if c.disk == nil {
		return sim.Outcome{}, false
	}
	out, ok, err := c.disk.load(key, c.vstamp)
	if err != nil || !ok {
		return sim.Outcome{}, false
	}
	c.store(key, out, false)
	return out, true
}

// store inserts into the LRU (evicting from the back past capacity) and,
// when writeDisk is set, persists to the disk store best-effort.
func (c *Cache) store(key string, out sim.Outcome, writeDisk bool) {
	evicted := 0
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry).out = out
	} else {
		c.entries[key] = c.order.PushFront(&entry{key: key, out: out})
		for c.order.Len() > c.maxEntries {
			back := c.order.Back()
			delete(c.entries, back.Value.(*entry).key)
			c.order.Remove(back)
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 {
		// Counted outside c.mu: statsMu is a leaf lock, never nested
		// inside another of the cache's locks.
		c.count(func(s *Stats) { s.Evictions += int64(evicted) })
	}
	if writeDisk && c.disk != nil {
		if err := c.disk.save(key, c.vstamp, out); err != nil {
			c.count(func(s *Stats) { s.DiskErrors++ })
		}
	}
}

// ErrCanceled wraps the context error of a request abandoned while
// waiting on an in-flight identical simulation.
var ErrCanceled = errors.New("resultcache: request canceled")

// ErrPanic wraps a panic recovered from a runner. Like any other error it
// is never cached, so a panicking scenario re-runs on the next request.
var ErrPanic = errors.New("resultcache: simulation panicked")

// safeRun executes run, converting a panic into an error so a panicking
// scenario cannot unwind through Do past the flight bookkeeping.
func safeRun(run Runner, sc sim.Scenario) (out sim.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = sim.Outcome{}, fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	return run(sc)
}

// Do returns the scenario's outcome, running it at most once: a memory or
// disk hit answers immediately (hit=true); otherwise the first caller for
// this key executes run (sim.Run when run is nil) and every concurrent
// caller with the same key waits for that one execution. Errors are never
// cached — a failed scenario re-runs on the next request.
//
// ctx bounds only the wait of deduplicated followers; the leader's
// simulation runs to completion so its result can serve other waiters.
func (c *Cache) Do(ctx context.Context, sc sim.Scenario, run Runner) (sim.Outcome, bool, error) {
	key, err := Key(sc)
	if err != nil {
		return sim.Outcome{}, false, err
	}
	if out, ok, src := c.lookup(ctx, key); ok {
		c.count(func(s *Stats) {
			s.Hits++
			switch src {
			case tierPeer:
				s.PeerHits++
			case tierDisk:
				s.DiskHits++
			}
		})
		return out, true, nil
	}
	if run == nil {
		run = sim.Run
	}

	c.flightMu.Lock()
	if fl, ok := c.inflight[key]; ok {
		c.flightMu.Unlock()
		c.count(func(s *Stats) { s.Dedups++ })
		select {
		case <-fl.done:
			return fl.out, false, fl.err
		case <-ctx.Done():
			return sim.Outcome{}, false, fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
		}
	}
	// Re-check memory while still holding flightMu: another leader may
	// have stored its outcome and retired its flight between our initial
	// lookup miss and here. Only the in-memory map is consulted — the race
	// being closed is with an in-process leader, which always stores to
	// memory, and a disk read is too slow to hold flightMu across.
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		out := el.Value.(*entry).out
		c.mu.Unlock()
		c.flightMu.Unlock()
		c.count(func(s *Stats) { s.Hits++ })
		return out, true, nil
	}
	c.mu.Unlock()
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.flightMu.Unlock()

	// Retire the flight on every exit path — safeRun converts runner
	// panics into fl.err, and this defer covers anything else that could
	// unwind — so waiters are never left blocked on a dead flight.
	defer func() {
		c.flightMu.Lock()
		delete(c.inflight, key)
		c.flightMu.Unlock()
		close(fl.done)
	}()

	c.count(func(s *Stats) { s.Misses++ })
	fl.out, fl.err = safeRun(run, sc)
	if fl.err == nil {
		c.store(key, fl.out, true)
	}
	return fl.out, false, fl.err
}

// Stats snapshots the counters in one consistent read: every counter
// comes from a single statsMu critical section, so cross-counter
// invariants (DiskHits ⊆ Hits; Hits/Misses/Dedups partition classified
// requests) hold in every snapshot, not just at quiescence.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := c.order.Len()
	c.mu.Unlock()
	c.statsMu.Lock()
	st := c.stats
	c.statsMu.Unlock()
	st.Entries = n
	return st
}
