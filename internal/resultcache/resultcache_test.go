package resultcache

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/fault"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

func scenario() sim.Scenario {
	return sim.Scenario{
		KernelName: "daxpy", N: 256, Scheme: addrmap.PI, Mode: sim.SMC,
		FIFODepth: 32, Placement: stream.Staggered,
	}
}

// mustJSON is the byte-identity yardstick: two outcomes are "the same
// result" iff their canonical JSON encodings are equal bytes.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

func TestKeyCanonicalization(t *testing.T) {
	base := scenario()
	key, err := Key(base)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if len(key) != 64 {
		t.Fatalf("key %q is not a hex sha256", key)
	}

	// Spelling the same simulation differently must not change the key:
	// Mode vs. Controller, implicit vs. explicit defaults, attached
	// observers, inactive fault configs.
	named := base
	named.Mode = sim.NaturalOrder
	named.Controller = "smc"
	explicit := base
	explicit.LineWords = 4
	explicit.Stride = 1
	explicit.Device = rdram.DefaultConfig()
	inactiveFault := base
	inactiveFault.Fault = &fault.Config{Seed: 77} // zero severity: injects nothing
	for name, sc := range map[string]sim.Scenario{
		"controller-name":   named,
		"explicit-defaults": explicit,
		"inactive-fault":    inactiveFault,
	} {
		if k, _ := Key(sc); k != key {
			t.Errorf("%s: key %s != base %s", name, k, key)
		}
	}

	// Every outcome-affecting field must move the key.
	activeFault := fault.Scaled(7, 2)
	variants := map[string]func(*sim.Scenario){
		"kernel":     func(sc *sim.Scenario) { sc.KernelName = "copy" },
		"n":          func(sc *sim.Scenario) { sc.N = 512 },
		"stride":     func(sc *sim.Scenario) { sc.Stride = 4 },
		"scheme":     func(sc *sim.Scenario) { sc.Scheme = addrmap.CLI },
		"fifo":       func(sc *sim.Scenario) { sc.FIFODepth = 64 },
		"seed":       func(sc *sim.Scenario) { sc.Seed = 9 },
		"banks":      func(sc *sim.Scenario) { sc.Device = rdram.DefaultConfig(); sc.Device.Geometry.Banks = 16 },
		"controller": func(sc *sim.Scenario) { sc.Controller = "conventional" },
		"fault":      func(sc *sim.Scenario) { sc.Fault = &activeFault },
		"skipverify": func(sc *sim.Scenario) { sc.SkipVerify = true },
	}
	for name, mutate := range variants {
		sc := scenario()
		mutate(&sc)
		if k, _ := Key(sc); k == key {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestHitIsBitIdenticalToFreshRun(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario()

	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	missed, hit, err := c.Do(context.Background(), sc, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if hit {
		t.Fatal("first Do reported a hit on an empty cache")
	}
	cached, hit, err := c.Do(context.Background(), sc, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !hit {
		t.Fatal("second Do missed")
	}
	for name, out := range map[string]sim.Outcome{"miss": missed, "hit": cached} {
		if !reflect.DeepEqual(out, direct) {
			t.Errorf("%s outcome differs from direct sim.Run:\n  got  %+v\n  want %+v", name, out, direct)
		}
		if got, want := mustJSON(t, out), mustJSON(t, direct); got != want {
			t.Errorf("%s outcome JSON differs from direct sim.Run:\n  got  %s\n  want %s", name, got, want)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario()
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var runs atomic.Int64
	gate := make(chan struct{})
	runner := func(sc sim.Scenario) (sim.Outcome, error) {
		runs.Add(1)
		<-gate // hold the leader until every follower has queued up
		return sim.Run(sc)
	}

	var wg sync.WaitGroup
	outs := make([]sim.Outcome, callers)
	errs := make([]error, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			outs[i], _, errs[i] = c.Do(context.Background(), sc, runner)
		}()
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("runner executed %d times for %d concurrent identical requests, want 1", n, callers)
	}
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(outs[i], direct) {
			t.Errorf("caller %d outcome differs from direct run", i)
		}
	}
	// Exactly one miss; every other caller either piggybacked on the
	// flight (dedup) or, if scheduled after it landed, hit the cache.
	if st := c.Stats(); st.Misses != 1 || st.Hits+st.Dedups != callers-1 {
		t.Errorf("stats = %+v, want exactly 1 miss and %d hits+dedups", st, callers-1)
	}
}

func TestLRUEvictionBounds(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n int) sim.Scenario {
		sc := scenario()
		sc.N = n
		sc.SkipVerify = true
		return sc
	}
	for _, n := range []int{64, 128} {
		if _, _, err := c.Do(context.Background(), mk(n), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 64 so 128 is the least recently used, then insert a third.
	if _, hit, _ := c.Do(context.Background(), mk(64), nil); !hit {
		t.Fatal("expected hit for n=64")
	}
	if _, _, err := c.Do(context.Background(), mk(256), nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", st)
	}
	if _, hit, _ := c.Get(mk(64)); !hit {
		t.Error("recently used n=64 was evicted")
	}
	if _, hit, _ := c.Get(mk(128)); hit {
		t.Error("least recently used n=128 survived past capacity")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sc := scenario()
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c1.Do(context.Background(), sc, nil); err != nil || hit {
		t.Fatalf("first Do: hit=%v err=%v", hit, err)
	}
	key, _ := Key(sc)
	if _, err := os.Stat(filepath.Join(dir, key+".json")); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	// A fresh cache over the same directory — a restarted server — must
	// serve the stored outcome bit-identically, without running anything.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	poison := func(sim.Scenario) (sim.Outcome, error) {
		t.Fatal("disk-backed request ran a simulation")
		return sim.Outcome{}, nil
	}
	out, hit, err := c2.Do(context.Background(), sc, poison)
	if err != nil || !hit {
		t.Fatalf("disk-backed Do: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(out, direct) {
		t.Errorf("disk round-trip outcome differs:\n  got  %+v\n  want %+v", out, direct)
	}
	if got, want := mustJSON(t, out), mustJSON(t, direct); got != want {
		t.Errorf("disk round-trip JSON differs:\n  got  %s\n  want %s", got, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", st)
	}

	// Entries stamped by a different version must be ignored, not served.
	stale, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]any
	if err := json.Unmarshal(stale, &e); err != nil {
		t.Fatal(err)
	}
	e["version"] = "rdramstream 0.0.0 model=dead"
	rewritten, _ := json.Marshal(e)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), rewritten, 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c3.Get(sc); hit {
		t.Error("entry from a different version stamp was served")
	}
}

func TestPanickingRunnerDoesNotStrandFlight(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario()

	// Leader panics while followers are piggybacked on its flight: every
	// caller must get ErrPanic — nobody hangs on a dead flight.
	gate := make(chan struct{})
	panicky := func(sim.Scenario) (sim.Outcome, error) {
		<-gate
		panic("boom")
	}
	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			_, _, errs[i] = c.Do(context.Background(), sc, panicky)
		}()
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrPanic) {
			t.Errorf("caller %d: err = %v, want ErrPanic", i, err)
		}
	}

	// The key must not be poisoned: a fresh Do with a working runner runs
	// immediately (no stranded flight to wait on) and succeeds.
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, hit, err := c.Do(ctx, sc, nil)
	if err != nil {
		t.Fatalf("Do after panic: %v", err)
	}
	if hit {
		t.Error("panicked run was cached")
	}
	if !reflect.DeepEqual(out, direct) {
		t.Errorf("outcome after panic differs from direct run")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario()
	sc.N = 0 // invalid: sim.Run fails
	if _, _, err := c.Do(context.Background(), sc, nil); err == nil {
		t.Fatal("expected an error for an invalid scenario")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed run was cached: %+v", st)
	}
}
