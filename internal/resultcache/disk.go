package resultcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"rdramstream/internal/sim"
)

// diskStore persists one JSON file per key under a directory. Writes go
// through a temp file + rename so concurrent processes sharing the
// directory never observe a torn entry; a rename either fully lands the
// entry or leaves the previous state.
type diskStore struct {
	dir string
}

// diskEntry is the on-disk schema. Key and Version are stored redundantly
// so an entry is self-describing: a file copied between machines or left
// behind by an older build identifies itself and is skipped on mismatch.
type diskEntry struct {
	Key     string      `json:"key"`
	Version string      `json:"version"`
	Outcome sim.Outcome `json:"outcome"`
}

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskStore{dir: dir}, nil
}

func (d *diskStore) path(key string) string {
	return filepath.Join(d.dir, key+".json")
}

// load reads the entry for key, reporting ok=false (not an error) when the
// file is absent or stamped by a different build version.
func (d *diskStore) load(key, vstamp string) (sim.Outcome, bool, error) {
	data, err := os.ReadFile(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return sim.Outcome{}, false, nil
	}
	if err != nil {
		return sim.Outcome{}, false, err
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Outcome{}, false, fmt.Errorf("resultcache: corrupt entry %s: %w", d.path(key), err)
	}
	if e.Key != key || e.Version != vstamp {
		return sim.Outcome{}, false, nil
	}
	return e.Outcome, true, nil
}

// save writes the entry atomically.
func (d *diskStore) save(key, vstamp string, out sim.Outcome) error {
	data, err := json.MarshalIndent(diskEntry{Key: key, Version: vstamp, Outcome: out}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
