package resultcache

import (
	"context"
	"sync"
	"testing"

	"rdramstream/internal/sim"
)

// TestStatsConsistentUnderRace hammers Do from many goroutines while a
// poller snapshots Stats concurrently, asserting every snapshot is
// internally consistent: DiskHits never exceeds Hits (a disk rescue is
// counted as both in one critical section), no counter is negative, and
// at quiescence every Do call classified itself exactly once. CI runs
// this under -race.
func TestStatsConsistentUnderRace(t *testing.T) {
	c, err := New(Options{MaxEntries: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct scenarios cycling through a one-entry LRU with a
	// disk store behind it: repeated requests constantly fall out of
	// memory and get rescued from disk, exercising the Hits+DiskHits
	// grouped increment alongside misses, dedups, and evictions.
	scs := make([]sim.Scenario, 3)
	for i := range scs {
		sc := scenario()
		sc.N = 64 << i
		scs[i] = sc
	}
	run := func(sc sim.Scenario) (sim.Outcome, error) { return sim.Run(sc) }

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := c.Stats()
			if st.DiskHits > st.Hits {
				t.Errorf("torn snapshot: DiskHits %d > Hits %d", st.DiskHits, st.Hits)
				return
			}
			for name, v := range map[string]int64{
				"Hits": st.Hits, "Misses": st.Misses, "DiskHits": st.DiskHits,
				"Dedups": st.Dedups, "Evictions": st.Evictions, "DiskErrors": st.DiskErrors,
			} {
				if v < 0 {
					t.Errorf("negative counter %s = %d", name, v)
					return
				}
			}
		}
	}()

	const goroutines, rounds = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, sc := range scs {
					if _, _, err := c.Do(context.Background(), sc, run); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	// A final sequential pass over all three scenarios through the
	// one-entry LRU guarantees at least two disk rescues happened.
	for _, sc := range scs {
		if _, _, err := c.Do(context.Background(), sc, run); err != nil {
			t.Fatal(err)
		}
	}

	st := c.Stats()
	total := int64(goroutines*rounds*len(scs) + len(scs))
	if st.Hits+st.Misses+st.Dedups != total {
		t.Errorf("hits %d + misses %d + dedups %d = %d classified Do calls, want %d",
			st.Hits, st.Misses, st.Dedups, st.Hits+st.Misses+st.Dedups, total)
	}
	if st.DiskHits < 2 {
		t.Errorf("disk hits = %d; a one-entry LRU cycling 3 scenarios must rescue from disk", st.DiskHits)
	}
	if st.DiskErrors != 0 {
		t.Errorf("disk errors = %d", st.DiskErrors)
	}
}
