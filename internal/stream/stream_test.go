package stream

import (
	"math"
	"testing"
)

func TestStreamAddrAndFootprint(t *testing.T) {
	s := Stream{Base: 100, Stride: 4, Length: 10}
	if got := s.Addr(0); got != 100 {
		t.Errorf("Addr(0) = %d", got)
	}
	if got := s.Addr(9); got != 136 {
		t.Errorf("Addr(9) = %d", got)
	}
	if got := s.FootprintWords(); got != 37 {
		t.Errorf("FootprintWords = %d, want 37", got)
	}
	if got := (Stream{}).FootprintWords(); got != 0 {
		t.Errorf("empty footprint = %d", got)
	}
}

func TestModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("mode strings wrong")
	}
}

func TestKernelShapes(t *testing.T) {
	cases := []struct {
		k         *Kernel
		s, sr, sw int
	}{
		{Copy(0, 1000, 16, 1), 2, 1, 1},
		{Daxpy(2, 0, 1000, 16, 1), 3, 2, 1},
		{Hydro(1, 2, 3, 0, 1000, 2000, 16, 1), 4, 3, 1},
		{Vaxpy(0, 1000, 2000, 16, 1), 4, 3, 1},
		{Scale(2, 0, 1000, 16, 1), 2, 1, 1},
		{Sum(0, 1000, 2000, 16, 1), 3, 2, 1},
		{Triad(2, 0, 1000, 2000, 16, 1), 3, 2, 1},
		{MultiStream(7, 1, []int64{0, 1 << 10, 2 << 10, 3 << 10, 4 << 10, 5 << 10, 6 << 10, 7 << 10}, 16, 1), 8, 7, 1},
	}
	for _, c := range cases {
		if err := c.k.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", c.k.Name, err)
			continue
		}
		if len(c.k.Streams) != c.s || c.k.ReadStreams() != c.sr || c.k.WriteStreams() != c.sw {
			t.Errorf("%s: streams=%d sr=%d sw=%d, want %d/%d/%d",
				c.k.Name, len(c.k.Streams), c.k.ReadStreams(), c.k.WriteStreams(), c.s, c.sr, c.sw)
		}
		if c.k.Iterations() != 16 {
			t.Errorf("%s: Iterations = %d", c.k.Name, c.k.Iterations())
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Kernel { return Daxpy(2, 0, 1000, 8, 1) }
	cases := []struct {
		name   string
		mutate func(*Kernel)
	}{
		{"no streams", func(k *Kernel) { k.Streams = nil }},
		{"length mismatch", func(k *Kernel) { k.Streams[1].Length = 7 }},
		{"zero stride", func(k *Kernel) { k.Streams[0].Stride = 0 }},
		{"read after write", func(k *Kernel) {
			k.Streams[1], k.Streams[2] = k.Streams[2], k.Streams[1]
		}},
		{"bad mode", func(k *Kernel) { k.Streams[0].Mode = Mode(5) }},
		{"nil compute", func(k *Kernel) { k.Compute = nil }},
	}
	for _, c := range cases {
		k := base()
		c.mutate(k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

// replayToMap runs a kernel's golden model over a map-backed memory.
func replayToMap(k *Kernel, init map[int64]float64) map[int64]float64 {
	mem := make(map[int64]uint64, len(init))
	for a, v := range init {
		mem[a] = math.Float64bits(v)
	}
	k.Replay(
		func(a int64) uint64 { return mem[a] },
		func(a int64, v uint64) { mem[a] = v },
	)
	out := make(map[int64]float64, len(mem))
	for a, v := range mem {
		out[a] = math.Float64frombits(v)
	}
	return out
}

func TestReplayCopy(t *testing.T) {
	k := Copy(0, 100, 4, 1)
	init := map[int64]float64{0: 1, 1: 2, 2: 3, 3: 4}
	got := replayToMap(k, init)
	for i := int64(0); i < 4; i++ {
		if got[100+i] != float64(i+1) {
			t.Errorf("y[%d] = %v, want %v", i, got[100+i], float64(i+1))
		}
	}
}

func TestReplayDaxpyReadModifyWrite(t *testing.T) {
	k := Daxpy(2, 0, 100, 3, 1)
	init := map[int64]float64{0: 1, 1: 2, 2: 3, 100: 10, 101: 20, 102: 30}
	got := replayToMap(k, init)
	want := []float64{12, 24, 36}
	for i := range want {
		if got[int64(100+i)] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, got[int64(100+i)], want[i])
		}
	}
}

func TestReplayHydroOffsets(t *testing.T) {
	// x[i] = q + y[i]*(r*zx[i+10] + t*zx[i+11]), q=1 r=2 t=3.
	k := Hydro(1, 2, 3, 0, 1000, 2000, 2, 1)
	init := map[int64]float64{
		1000: 1, 1001: 2, // y
		2010: 5, 2011: 7, 2012: 9, // zx[10..12]
	}
	got := replayToMap(k, init)
	// x[0] = 1 + 1*(2*5 + 3*7) = 32 ; x[1] = 1 + 2*(2*7 + 3*9) = 83
	if got[0] != 32 || got[1] != 83 {
		t.Errorf("x = [%v %v], want [32 83]", got[0], got[1])
	}
}

func TestReplayVaxpyStrided(t *testing.T) {
	k := Vaxpy(0, 1000, 2000, 3, 4) // stride 4
	init := map[int64]float64{
		0: 2, 4: 3, 8: 4, // a
		1000: 5, 1004: 6, 1008: 7, // x
		2000: 1, 2004: 1, 2008: 1, // y
	}
	got := replayToMap(k, init)
	want := []float64{11, 19, 29}
	for i, w := range want {
		addr := int64(2000 + 4*i)
		if got[addr] != w {
			t.Errorf("y[%d]@%d = %v, want %v", i, addr, got[addr], w)
		}
	}
}

func TestReplayMultiStreamWritesSum(t *testing.T) {
	bases := []int64{0, 100, 200, 300}
	k := MultiStream(2, 2, bases, 2, 1)
	init := map[int64]float64{0: 1, 1: 2, 100: 10, 101: 20}
	got := replayToMap(k, init)
	if got[200] != 11 || got[300] != 12 {
		t.Errorf("writes = [%v %v], want [11 12]", got[200], got[300])
	}
	if got[201] != 22 || got[301] != 23 {
		t.Errorf("iter 1 writes = [%v %v], want [22 23]", got[201], got[301])
	}
}

func TestMultiStreamPanicsOnBaseMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MultiStream(2, 1, []int64{0}, 4, 1)
}

func TestBenchmarkFactories(t *testing.T) {
	if len(Benchmarks) != 4 {
		t.Fatalf("Benchmarks has %d entries, want 4", len(Benchmarks))
	}
	for _, f := range Benchmarks {
		fps := f.Footprints(128, 2)
		if len(fps) != f.Vectors {
			t.Errorf("%s: %d footprints for %d vectors", f.Name, len(fps), f.Vectors)
		}
		bases := make([]int64, f.Vectors)
		for i := range bases {
			bases[i] = int64(i) * 1 << 16
		}
		k := f.Make(bases, 128, 2)
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
		if k.Name != f.Name {
			t.Errorf("factory %s built kernel %s", f.Name, k.Name)
		}
	}
	if _, ok := FactoryByName("vaxpy"); !ok {
		t.Error("vaxpy factory missing")
	}
	if _, ok := FactoryByName("nope"); ok {
		t.Error("unexpected factory")
	}
	// hydro's zx vector must extend 11 elements beyond n.
	hydro, _ := FactoryByName("hydro")
	fps := hydro.Footprints(100, 3)
	if fps[2] != int64(111*3) {
		t.Errorf("hydro zx footprint = %d, want %d", fps[2], 111*3)
	}
}

func TestReplaySwap(t *testing.T) {
	k := Swap(0, 100, 3, 1)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.ReadStreams() != 2 || k.WriteStreams() != 2 {
		t.Fatalf("swap shape: %d/%d", k.ReadStreams(), k.WriteStreams())
	}
	init := map[int64]float64{0: 1, 1: 2, 2: 3, 100: 10, 101: 20, 102: 30}
	got := replayToMap(k, init)
	for i := int64(0); i < 3; i++ {
		if got[i] != float64(10*(i+1)) || got[100+i] != float64(i+1) {
			t.Fatalf("swap element %d: x=%v y=%v", i, got[i], got[100+i])
		}
	}
}
