package stream

import (
	"fmt"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
)

// Placement chooses how vector base addresses relate to banks — the two
// extremes the paper simulates (§4.2).
type Placement int

const (
	// Aligned places every vector base in the same bank, maximizing bank
	// conflicts when the scheduler switches streams.
	Aligned Placement = iota
	// Staggered places successive vector bases in successive banks,
	// minimizing bank conflicts.
	Staggered
)

func (p Placement) String() string {
	if p == Aligned {
		return "aligned"
	}
	return "staggered"
}

// Layout assigns base addresses to vectors with the given footprints
// (in words), honoring the paper's modeling assumptions: every vector is
// aligned to a cacheline boundary, and distinct vectors share no DRAM
// pages. Under Aligned placement every base maps to bank 0; under
// Staggered, vector k's base maps to bank k mod Banks (cacheline-granular
// stagger for CLI, page-granular for PI).
func Layout(scheme addrmap.Scheme, g rdram.Geometry, lineWords int, footprints []int64, placement Placement) ([]int64, error) {
	if lineWords <= 0 || g.PageWords%lineWords != 0 {
		return nil, fmt.Errorf("stream: invalid cacheline size %d for page %d", lineWords, g.PageWords)
	}
	// Rounding regions to a full bank rotation of pages guarantees no two
	// vectors share a (bank,row) page under either interleaving scheme.
	group := int64(g.Banks) * int64(g.PageWords)
	var unit int64
	switch scheme {
	case addrmap.CLI:
		unit = int64(lineWords)
	case addrmap.PI:
		unit = int64(g.PageWords)
	default:
		return nil, fmt.Errorf("stream: unknown scheme %v", scheme)
	}

	bases := make([]int64, len(footprints))
	next := int64(0)
	for k, fp := range footprints {
		if fp <= 0 {
			return nil, fmt.Errorf("stream: vector %d has non-positive footprint %d", k, fp)
		}
		var offset int64
		if placement == Staggered {
			// Spread vector bases evenly around the bank rotation, so that
			// stream k's line/page i and stream k+1's line/page i-1 (which
			// the natural order touches back-to-back) sit in banks far
			// apart and reuse of a bank is separated by several rounds.
			offset = int64(k*g.Banks/len(footprints)%g.Banks) * unit
		}
		bases[k] = next + offset
		extent := offset + fp
		regions := (extent + group - 1) / group
		next += regions * group
	}
	capacity := int64(g.Banks) * int64(g.PagesPerBank) * int64(g.PageWords)
	if next > capacity {
		return nil, fmt.Errorf("stream: layout needs %d words, device holds %d", next, capacity)
	}
	return bases, nil
}

// MustLayout is Layout for statically known configurations.
func MustLayout(scheme addrmap.Scheme, g rdram.Geometry, lineWords int, footprints []int64, placement Placement) []int64 {
	b, err := Layout(scheme, g, lineWords, footprints, placement)
	if err != nil {
		panic(err)
	}
	return b
}
