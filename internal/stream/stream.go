// Package stream defines vector streams, the paper's benchmark kernels
// (copy, daxpy, hydro, vaxpy), vector placement in memory, and golden
// reference execution for functional verification.
//
// Terminology follows the paper: a *vector* is a region of memory; a
// *stream* is one directed access pattern over a vector. A read-modify-
// write vector (daxpy's y) therefore contributes two streams, one read and
// one write.
package stream

import (
	"fmt"
	"math"
)

// Mode says whether a stream is read from or written to memory.
type Mode int

// Stream directions.
const (
	Read Mode = iota
	Write
)

func (m Mode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// Stream describes one vector-access pattern: base address, stride and
// length, plus its direction. Addresses and strides are in 64-bit words.
// This is exactly the information the paper's compiler transmits to the
// SMC at run time ("base address, stride, number of elements, and whether
// the stream is being read or written").
type Stream struct {
	Name   string
	Base   int64
	Stride int64
	Length int
	Mode   Mode
}

// Addr returns the word address of element i.
func (s Stream) Addr(i int) int64 {
	return s.Base + int64(i)*s.Stride
}

// FootprintWords is the extent of the stream in memory: the number of words
// from Base to one past the last element.
func (s Stream) FootprintWords() int64 {
	if s.Length == 0 {
		return 0
	}
	return int64(s.Length-1)*s.Stride + 1
}

func (s Stream) String() string {
	return fmt.Sprintf("%s(%s base=%d stride=%d n=%d)", s.Name, s.Mode, s.Base, s.Stride, s.Length)
}

// Kernel is an inner loop over a set of streams. On each iteration the
// processor consumes one element of every read stream and produces one
// element of every write stream, in the order the Streams slice lists them
// (the computation's "natural order"). All read streams must precede all
// write streams, reflecting the data dependence within one iteration.
type Kernel struct {
	Name    string
	Streams []Stream
	// Compute maps the iteration index and the values read (one per read
	// stream, in stream order) to the values to write (one per write
	// stream, in stream order). It must be free of side effects. The
	// returned slice may be reused by the kernel across calls, so callers
	// must copy the values out before invoking Compute again.
	Compute func(i int, in []float64) []float64
}

// Validate checks the well-formedness invariants the analytic models and
// simulators rely on: at least one stream, equal lengths, positive strides,
// reads listed before writes, and at least one read stream.
func (k *Kernel) Validate() error {
	if len(k.Streams) == 0 {
		return fmt.Errorf("stream: kernel %q has no streams", k.Name)
	}
	n := k.Streams[0].Length
	seenWrite := false
	reads := 0
	for i, s := range k.Streams {
		if s.Length != n {
			return fmt.Errorf("stream: kernel %q stream %d length %d != %d", k.Name, i, s.Length, n)
		}
		if s.Stride <= 0 {
			return fmt.Errorf("stream: kernel %q stream %d has non-positive stride %d", k.Name, i, s.Stride)
		}
		switch s.Mode {
		case Read:
			if seenWrite {
				return fmt.Errorf("stream: kernel %q lists read stream %d after a write stream", k.Name, i)
			}
			reads++
		case Write:
			seenWrite = true
		default:
			return fmt.Errorf("stream: kernel %q stream %d has invalid mode %d", k.Name, i, int(s.Mode))
		}
	}
	if k.Compute == nil {
		return fmt.Errorf("stream: kernel %q has no Compute function", k.Name)
	}
	return nil
}

// Iterations is the number of inner-loop iterations (the common stream
// length).
func (k *Kernel) Iterations() int {
	if len(k.Streams) == 0 {
		return 0
	}
	return k.Streams[0].Length
}

// ReadStreams returns the count of read streams (the paper's s_r).
func (k *Kernel) ReadStreams() int {
	n := 0
	for _, s := range k.Streams {
		if s.Mode == Read {
			n++
		}
	}
	return n
}

// WriteStreams returns the count of write streams (the paper's s_w).
func (k *Kernel) WriteStreams() int { return len(k.Streams) - k.ReadStreams() }

// Replay executes the kernel functionally against a word-addressed memory,
// reading and writing 64-bit float bit patterns. It is the golden model the
// simulators are checked against.
func (k *Kernel) Replay(load func(addr int64) uint64, store func(addr int64, v uint64)) {
	nr := k.ReadStreams()
	in := make([]float64, nr)
	for i := 0; i < k.Iterations(); i++ {
		for r := 0; r < nr; r++ {
			in[r] = math.Float64frombits(load(k.Streams[r].Addr(i)))
		}
		out := k.Compute(i, in)
		if len(out) != len(k.Streams)-nr {
			panic(fmt.Sprintf("stream: kernel %q Compute returned %d values, want %d", k.Name, len(out), len(k.Streams)-nr))
		}
		for w, v := range out {
			store(k.Streams[nr+w].Addr(i), math.Float64bits(v))
		}
	}
}
