package stream

import "fmt"

// The benchmark kernels of the paper's Figure 4, plus a few common
// streaming kernels used by the extension benches. Each factory takes the
// base word addresses of its *vectors* (see Factory.Vectors for the count
// and order), the element count n, and the element stride in words.

// singleOut wraps a one-output computation as a Compute function that
// reuses its result buffer across iterations; a fresh one-element slice
// per iteration was the last remaining hot-loop allocation in sweeps.
// Callers copy the result before the next call (the Compute contract).
func singleOut(f func(in []float64) float64) func(int, []float64) []float64 {
	out := make([]float64, 1)
	return func(_ int, in []float64) []float64 {
		out[0] = f(in)
		return out
	}
}

// Copy builds y[i] = x[i] (BLAS copy): one read stream, one write stream.
func Copy(xBase, yBase int64, n int, stride int64) *Kernel {
	return &Kernel{
		Name: "copy",
		Streams: []Stream{
			{Name: "x", Base: xBase, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Write},
		},
		Compute: singleOut(func(in []float64) float64 { return in[0] }),
	}
}

// Daxpy builds y[i] = a*x[i] + y[i] (BLAS daxpy): two read streams and one
// write stream over two vectors — y is read-modify-write.
func Daxpy(a float64, xBase, yBase int64, n int, stride int64) *Kernel {
	return &Kernel{
		Name: "daxpy",
		Streams: []Stream{
			{Name: "x", Base: xBase, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Write},
		},
		Compute: singleOut(func(in []float64) float64 { return a*in[0] + in[1] }),
	}
}

// Hydro builds the Livermore hydro fragment
// x[i] = q + y[i]*(r*zx[i+10] + t*zx[i+11]): three read streams (y and two
// offset views of zx) and one write stream. The zx vector must extend 11
// elements past n.
func Hydro(q, r, t float64, xBase, yBase, zxBase int64, n int, stride int64) *Kernel {
	return &Kernel{
		Name: "hydro",
		Streams: []Stream{
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Read},
			{Name: "zx+10", Base: zxBase + 10*stride, Stride: stride, Length: n, Mode: Read},
			{Name: "zx+11", Base: zxBase + 11*stride, Stride: stride, Length: n, Mode: Read},
			{Name: "x", Base: xBase, Stride: stride, Length: n, Mode: Write},
		},
		Compute: singleOut(func(in []float64) float64 { return q + in[0]*(r*in[1]+t*in[2]) }),
	}
}

// Vaxpy builds y[i] = a[i]*x[i] + y[i] (vector axpy, as in matrix-vector
// multiplication by diagonals): three read streams and one write stream
// over three vectors.
func Vaxpy(aBase, xBase, yBase int64, n int, stride int64) *Kernel {
	return &Kernel{
		Name: "vaxpy",
		Streams: []Stream{
			{Name: "a", Base: aBase, Stride: stride, Length: n, Mode: Read},
			{Name: "x", Base: xBase, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Write},
		},
		Compute: singleOut(func(in []float64) float64 { return in[0]*in[1] + in[2] }),
	}
}

// Scale builds y[i] = a*x[i] (STREAM scale).
func Scale(a float64, xBase, yBase int64, n int, stride int64) *Kernel {
	k := Copy(xBase, yBase, n, stride)
	k.Name = "scale"
	k.Compute = singleOut(func(in []float64) float64 { return a * in[0] })
	return k
}

// Sum builds y[i] = x1[i] + x2[i] (STREAM add).
func Sum(x1Base, x2Base, yBase int64, n int, stride int64) *Kernel {
	return &Kernel{
		Name: "sum",
		Streams: []Stream{
			{Name: "x1", Base: x1Base, Stride: stride, Length: n, Mode: Read},
			{Name: "x2", Base: x2Base, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Write},
		},
		Compute: singleOut(func(in []float64) float64 { return in[0] + in[1] }),
	}
}

// Triad builds y[i] = x1[i] + a*x2[i] (STREAM triad).
func Triad(a float64, x1Base, x2Base, yBase int64, n int, stride int64) *Kernel {
	k := Sum(x1Base, x2Base, yBase, n, stride)
	k.Name = "triad"
	k.Compute = singleOut(func(in []float64) float64 { return in[0] + a*in[1] })
	return k
}

// Swap builds {t = x[i]; x[i] = y[i]; y[i] = t}: two read streams and two
// write streams over two vectors — the heaviest write mix of the classic
// streaming kernels, exercising multiple write FIFOs.
func Swap(xBase, yBase int64, n int, stride int64) *Kernel {
	return &Kernel{
		Name: "swap",
		Streams: []Stream{
			{Name: "x", Base: xBase, Stride: stride, Length: n, Mode: Read},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Read},
			{Name: "x", Base: xBase, Stride: stride, Length: n, Mode: Write},
			{Name: "y", Base: yBase, Stride: stride, Length: n, Mode: Write},
		},
		Compute: func() func(int, []float64) []float64 {
			out := make([]float64, 2)
			return func(_ int, in []float64) []float64 {
				out[0], out[1] = in[1], in[0]
				return out
			}
		}(),
	}
}

// MultiStream builds a synthetic kernel with sr read streams and sw write
// streams over sr+sw distinct vectors — the paper's "computation on eight
// independent, unit-stride streams (seven read-streams and one
// write-stream)" experiment is MultiStream with sr=7, sw=1. Each write
// stream stores the sum of all values read.
func MultiStream(sr, sw int, bases []int64, n int, stride int64) *Kernel {
	if len(bases) != sr+sw {
		panic(fmt.Sprintf("stream: MultiStream needs %d bases, got %d", sr+sw, len(bases)))
	}
	k := &Kernel{Name: fmt.Sprintf("multi-%dr%dw", sr, sw)}
	for i := 0; i < sr; i++ {
		k.Streams = append(k.Streams, Stream{
			Name: fmt.Sprintf("r%d", i), Base: bases[i], Stride: stride, Length: n, Mode: Read,
		})
	}
	for i := 0; i < sw; i++ {
		k.Streams = append(k.Streams, Stream{
			Name: fmt.Sprintf("w%d", i), Base: bases[sr+i], Stride: stride, Length: n, Mode: Write,
		})
	}
	out := make([]float64, sw)
	k.Compute = func(_ int, in []float64) []float64 {
		var sum float64
		for _, v := range in {
			sum += v
		}
		for i := range out {
			out[i] = sum + float64(i)
		}
		return out
	}
	return k
}

// Factory describes a kernel constructor generically, for sweep harnesses:
// how many vectors it needs, their footprints, and how to build it from a
// set of vector base addresses.
type Factory struct {
	Name    string
	Vectors int
	// Footprints returns the words of memory each vector occupies for a
	// given element count and stride.
	Footprints func(n int, stride int64) []int64
	// Make builds the kernel at the given vector base addresses.
	Make func(bases []int64, n int, stride int64) *Kernel
}

func denseFootprints(count int) func(n int, stride int64) []int64 {
	return func(n int, stride int64) []int64 {
		out := make([]int64, count)
		for i := range out {
			out[i] = int64(n) * stride
		}
		return out
	}
}

// Benchmarks lists the paper's four kernels in Figure 4 order.
var Benchmarks = []Factory{
	{
		Name: "copy", Vectors: 2,
		Footprints: denseFootprints(2),
		Make: func(b []int64, n int, stride int64) *Kernel {
			return Copy(b[0], b[1], n, stride)
		},
	},
	{
		Name: "daxpy", Vectors: 2,
		Footprints: denseFootprints(2),
		Make: func(b []int64, n int, stride int64) *Kernel {
			return Daxpy(3.0, b[0], b[1], n, stride)
		},
	},
	{
		Name: "hydro", Vectors: 3,
		Footprints: func(n int, stride int64) []int64 {
			return []int64{int64(n) * stride, int64(n) * stride, int64(n+11) * stride}
		},
		Make: func(b []int64, n int, stride int64) *Kernel {
			return Hydro(0.5, 2.0, 3.0, b[0], b[1], b[2], n, stride)
		},
	},
	{
		Name: "vaxpy", Vectors: 3,
		Footprints: denseFootprints(3),
		Make: func(b []int64, n int, stride int64) *Kernel {
			return Vaxpy(b[0], b[1], b[2], n, stride)
		},
	},
}

// FactoryByName finds a Factory in Benchmarks.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range Benchmarks {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}
