package stream

import (
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/rdram"
)

func TestLayoutAlignedMapsToBankZero(t *testing.T) {
	g := rdram.DefaultGeometry()
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		m := addrmap.MustNew(scheme, g, 4)
		bases := MustLayout(scheme, g, 4, []int64{1024, 1024, 1035}, Aligned)
		for k, b := range bases {
			if loc := m.Map(b); loc.Bank != 0 {
				t.Errorf("%v: vector %d base %d in bank %d, want 0", scheme, k, b, loc.Bank)
			}
		}
	}
}

func TestLayoutStaggeredMapsToDistinctBanks(t *testing.T) {
	g := rdram.DefaultGeometry()
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		m := addrmap.MustNew(scheme, g, 4)
		// Four vectors spread evenly over eight banks: 0, 2, 4, 6.
		bases := MustLayout(scheme, g, 4, []int64{1024, 1024, 1024, 1024}, Staggered)
		for k, b := range bases {
			if loc := m.Map(b); loc.Bank != 2*k {
				t.Errorf("%v: vector %d base %d in bank %d, want %d", scheme, k, b, loc.Bank, 2*k)
			}
		}
		// Eight vectors land in eight distinct banks.
		fps := make([]int64, 8)
		for i := range fps {
			fps[i] = 1024
		}
		bases = MustLayout(scheme, g, 4, fps, Staggered)
		for k, b := range bases {
			if loc := m.Map(b); loc.Bank != k {
				t.Errorf("%v: vector %d of 8 base %d in bank %d, want %d", scheme, k, b, loc.Bank, k)
			}
		}
	}
}

func TestLayoutVectorsShareNoPages(t *testing.T) {
	g := rdram.DefaultGeometry()
	g.PagesPerBank = 64
	type page struct{ bank, row int }
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		for _, placement := range []Placement{Aligned, Staggered} {
			m := addrmap.MustNew(scheme, g, 4)
			fps := []int64{300, 711, 1024}
			bases := MustLayout(scheme, g, 4, fps, placement)
			owner := make(map[page]int)
			for k, b := range bases {
				for off := int64(0); off < fps[k]; off++ {
					loc := m.Map(b + off)
					p := page{loc.Bank, loc.Row}
					if prev, ok := owner[p]; ok && prev != k {
						t.Fatalf("%v/%v: vectors %d and %d share page %+v", scheme, placement, prev, k, p)
					}
					owner[p] = k
				}
			}
		}
	}
}

func TestLayoutErrors(t *testing.T) {
	g := rdram.DefaultGeometry()
	if _, err := Layout(addrmap.CLI, g, 3, []int64{10}, Aligned); err == nil {
		t.Error("expected error for bad line size")
	}
	if _, err := Layout(addrmap.Scheme(9), g, 4, []int64{10}, Aligned); err == nil {
		t.Error("expected error for unknown scheme")
	}
	if _, err := Layout(addrmap.CLI, g, 4, []int64{0}, Aligned); err == nil {
		t.Error("expected error for empty footprint")
	}
	small := g
	small.PagesPerBank = 1
	if _, err := Layout(addrmap.CLI, small, 4, []int64{1 << 20}, Aligned); err == nil {
		t.Error("expected capacity error")
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustLayout(addrmap.CLI, rdram.DefaultGeometry(), 3, []int64{1}, Aligned)
}

func TestPlacementString(t *testing.T) {
	if Aligned.String() != "aligned" || Staggered.String() != "staggered" {
		t.Error("placement strings wrong")
	}
}
