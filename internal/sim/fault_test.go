package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/engine"
	"rdramstream/internal/fault"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
	"rdramstream/internal/trace"
)

// faultScenarios is the sweep shape of cmd/sweep -faults: every controller
// and scheme under one fault config.
func faultScenarios(fc *fault.Config) []Scenario {
	var scs []Scenario
	for _, kn := range []string{"copy", "daxpy"} {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, ctl := range []string{"natural-order", "smc", "conventional"} {
				scs = append(scs, Scenario{
					KernelName: kn, N: 256, Scheme: scheme, Controller: ctl,
					Placement: stream.Staggered, Seed: 3, Fault: fc,
				})
			}
		}
	}
	return scs
}

// TestZeroSeverityBitIdentical is the acceptance criterion for the no-fault
// path: attaching fault.Scaled(seed, 0) must be invisible — byte-identical
// outcomes to running with no fault config at all.
func TestZeroSeverityBitIdentical(t *testing.T) {
	zero := fault.Scaled(99, 0)
	clean, err := RunAll(faultScenarios(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := RunAll(faultScenarios(&zero), 1)
	if err != nil {
		t.Fatal(err)
	}
	cleanCSV, cleanJSON := renderOutcomes(t, clean)
	faultCSV, faultJSON := renderOutcomes(t, faulted)
	if !bytes.Equal(cleanCSV, faultCSV) || !bytes.Equal(cleanJSON, faultJSON) {
		t.Error("severity-0 fault config changed the results")
	}
}

// TestFaultRunsDeterministicAcrossWorkers: same fault seed ⇒ byte-identical
// results, serial vs 2/4/8 workers (each scenario owns its injector, so
// scheduling cannot perturb the fault sequence).
func TestFaultRunsDeterministicAcrossWorkers(t *testing.T) {
	fc := fault.Scaled(42, 3)
	serial, err := RunAll(faultScenarios(&fc), 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := renderOutcomes(t, serial)
	for _, workers := range []int{2, 4, 8} {
		par, err := RunAll(faultScenarios(&fc), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotCSV, gotJSON := renderOutcomes(t, par)
		if !bytes.Equal(wantCSV, gotCSV) {
			t.Errorf("workers=%d: CSV differs from serial fault run", workers)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("workers=%d: JSON differs from serial fault run", workers)
		}
	}
}

// TestFaultDegradesNotCorrupts: under moderate faults every controller
// still completes, still verifies functionally, and pays for the injected
// interference in bandwidth, with the injection visible in the counters.
func TestFaultDegradesNotCorrupts(t *testing.T) {
	fc := fault.Scaled(7, 2)
	clean, err := RunAll(faultScenarios(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := RunAll(faultScenarios(&fc), 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawRejection, sawJitter bool
	for i := range faulted {
		if !faulted[i].Verified {
			t.Fatalf("scenario %d: fault run not verified", i)
		}
		if faulted[i].PercentPeak > clean[i].PercentPeak {
			t.Errorf("scenario %d: faulted percent-peak %.2f exceeds clean %.2f",
				i, faulted[i].PercentPeak, clean[i].PercentPeak)
		}
		sawRejection = sawRejection || faulted[i].Device.Rejections > 0
		sawJitter = sawJitter || faulted[i].Device.JitterCycles > 0
	}
	if !sawRejection || !sawJitter {
		t.Errorf("fault counters silent: rejections=%v jitter=%v", sawRejection, sawJitter)
	}
}

// TestWatchdogAbortsWedgedController is the acceptance criterion for the
// watchdog: a device that rejects every access wedges the SMC's retry loop,
// and the run must abort with a diagnostic dump, not hang.
func TestWatchdogAbortsWedgedController(t *testing.T) {
	_, err := Run(Scenario{
		KernelName: "copy", N: 64, Mode: SMC, Placement: stream.Staggered,
		Fault:         &fault.Config{Seed: 1, RejectProb: 1},
		WatchdogLimit: 4096,
	})
	var we *engine.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *engine.WatchdogError", err)
	}
	if we.Dump == "" {
		t.Fatal("watchdog fired without a state dump")
	}
	// The dump carries the event-queue diagnostics: the scheduler's next
	// wake-up and the device's next event, so a quiet-queue wedge (every
	// access rejected, nothing left to wake for) is visible at a glance.
	for _, want := range []string{"read fifo", "rejects", "device:", "wakeup=", "nextEvent="} {
		if !strings.Contains(we.Dump, want) {
			t.Errorf("dump missing %q:\n%s", want, we.Dump)
		}
	}
}

// TestFaultRejectionAfterJump: a transient rejection puts the MSU to sleep
// until its retry backoff, and it re-presents on the first cycle after
// that jump — where the injector must draw again, exactly once per
// presentation. Heavy rejection probability exercises many jump-then-draw
// boundaries; the run must complete, verify, and be byte-identical on a
// repeat (the draw discipline of 4 draws per access is what keeps the
// sequences aligned).
func TestFaultRejectionAfterJump(t *testing.T) {
	sc := Scenario{
		KernelName: "daxpy", N: 256, Scheme: addrmap.PI, Mode: SMC,
		FIFODepth: 16, Placement: stream.Staggered, Seed: 9,
		Fault: &fault.Config{Seed: 21, RejectProb: 0.8},
	}
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Verified {
		t.Fatal("heavy-rejection run did not verify")
	}
	if first.Device.Rejections == 0 {
		t.Fatal("RejectProb=0.8 produced no rejections")
	}
	second, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	aCSV, aJSON := renderOutcomes(t, []Outcome{first})
	bCSV, bJSON := renderOutcomes(t, []Outcome{second})
	if !bytes.Equal(aCSV, bCSV) || !bytes.Equal(aJSON, bJSON) {
		t.Error("repeated heavy-rejection run is not byte-identical")
	}
}

// TestRejectionLoopAbortsNatOrder: the straight-line controllers bound the
// same wedge through engine.Issue's attempt cap instead of the watchdog.
func TestRejectionLoopAbortsNatOrder(t *testing.T) {
	for _, ctl := range []string{"natural-order", "conventional"} {
		_, err := Run(Scenario{
			KernelName: "copy", N: 64, Controller: ctl, Placement: stream.Staggered,
			Fault: &fault.Config{Seed: 1, RejectProb: 1},
		})
		var re *engine.RejectError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want *engine.RejectError", ctl, err)
		}
	}
}

// panicController wedges the registry with a controller that panics midway,
// standing in for a future controller bug during a sweep.
type panicController struct{}

func (panicController) Name() string { return "test-panics" }

func (panicController) Run(*rdram.Device, *stream.Kernel, engine.Options) (engine.Result, error) {
	panic("controller bug")
}

func init() { engine.Register(panicController{}) }

// TestSweepIsolatesPanickingScenario: one panicking job fails the sweep
// with an error naming the scenario; it does not crash the process, and
// the same (lowest-index) error surfaces at every worker count.
func TestSweepIsolatesPanickingScenario(t *testing.T) {
	scs := faultScenarios(nil)[:6]
	scs[3].Controller = "test-panics"
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := RunAll(scs, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error from panicking scenario", workers)
		}
		if !strings.Contains(err.Error(), "scenario 3") || !strings.Contains(err.Error(), scs[3].Label()) {
			t.Fatalf("workers=%d: error does not name the scenario: %v", workers, err)
		}
		var pe *engine.PanicError
		if !errors.As(err, &pe) || pe.Index != 3 {
			t.Fatalf("workers=%d: err = %v, want wrapped *engine.PanicError index 3", workers, err)
		}
		// The failing index and message are deterministic across worker
		// counts; only the recovery stack trace may differ, so compare the
		// first line.
		first, _, _ := strings.Cut(err.Error(), "\n")
		if want == "" {
			want = first
		} else if first != want {
			t.Errorf("workers=%d: error %q differs from serial %q", workers, first, want)
		}
	}
}

// TestRefreshInsideIdleSpan: with no faults at all, periodic refreshes
// landing inside the spans the event-driven MSU skips (FIFO full, CPU
// catching up) must still be charged by the device's catch-up path, keep
// the packet schedule protocol-legal, and leave the memory image correct.
// A timing-only (SkipVerify) run of the same scenario must report the
// identical cycle count: refresh catch-up cannot depend on the store.
func TestRefreshInsideIdleSpan(t *testing.T) {
	dev := rdram.DefaultConfig()
	dev.RefreshInterval = 800
	sc := Scenario{
		KernelName: "copy", N: 512, Scheme: addrmap.PI, Mode: SMC,
		FIFODepth: 8, Placement: stream.Staggered, Seed: 13, Device: dev,
	}
	var events []rdram.TraceEvent
	withTrace := sc
	withTrace.Trace = func(ev rdram.TraceEvent) { events = append(events, ev) }
	out, err := Run(withTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Fatal("not verified")
	}
	if out.Device.Refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
	if viols := trace.NewChecker(dev).Check(events); len(viols) > 0 {
		t.Errorf("%d protocol violations; first: %v", len(viols), viols[0])
	}
	skip := sc
	skip.SkipVerify = true
	bare, err := Run(skip)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cycles != out.Cycles || bare.Device.Refreshes != out.Device.Refreshes {
		t.Errorf("timing-only run diverged: cycles %d vs %d, refreshes %d vs %d",
			bare.Cycles, out.Cycles, bare.Device.Refreshes, out.Device.Refreshes)
	}
}

// TestRefreshDuringSMCDrain: refresh storms landing mid-FIFO-drain must
// still produce a protocol-legal packet schedule (trace checker clean) and
// a correct memory image. This pins the refresh × drain-policy interaction
// the fault layer newly exercises.
func TestRefreshDuringSMCDrain(t *testing.T) {
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		var events []rdram.TraceEvent
		dev := rdram.DefaultConfig()
		dev.RefreshInterval = 512 // frequent enough to land inside drains
		out, err := Run(Scenario{
			KernelName: "daxpy", N: 512, Scheme: scheme, Mode: SMC,
			FIFODepth: 32, Placement: stream.Staggered, Seed: 11,
			Device: dev,
			Fault:  &fault.Config{Seed: 5, StormEvery: 2, StormBurst: 4, StormGap: 64},
			Trace:  func(ev rdram.TraceEvent) { events = append(events, ev) },
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !out.Verified {
			t.Fatalf("%s: not verified", scheme)
		}
		if out.Device.Refreshes == 0 {
			t.Fatalf("%s: no refreshes recorded", scheme)
		}
		cfg := dev
		if viols := trace.NewChecker(cfg).Check(events); len(viols) > 0 {
			t.Errorf("%s: %d protocol violations under refresh storms; first: %v", scheme, len(viols), viols[0])
		}
	}
}

// FuzzScenarioValidate: Validate must classify arbitrary scenarios without
// panicking, and anything it accepts must actually run (or fail with an
// error, never a panic).
func FuzzScenarioValidate(f *testing.F) {
	f.Add("copy", 64, int64(1), 0, 4, 32, int64(0))
	f.Add("daxpy", 256, int64(2), 1, 8, 8, int64(4096))
	f.Add("vaxpy", 16, int64(4), 0, 4, 16, int64(1))
	f.Add("hydro", 1, int64(1), 1, 12, 4, int64(0))
	f.Add("", 0, int64(0), 9, 0, 0, int64(-1))
	f.Add("no-such", -5, int64(-3), 2, 3, 1, int64(-7))
	f.Add("copy", 1<<20, int64(1<<40), 0, 4, 32, int64(0))
	f.Fuzz(func(t *testing.T, kernel string, n int, stride int64, scheme, lineWords, fifoDepth int, wd int64) {
		sc := Scenario{
			KernelName: kernel, N: n, Stride: stride,
			Scheme: addrmap.Scheme(scheme), LineWords: lineWords,
			FIFODepth: fifoDepth, WatchdogLimit: wd,
		}
		err := sc.Validate()
		if err != nil {
			return // rejected at the boundary, as designed
		}
		// Accepted scenarios must never panic deeper in the stack.
		if n > 4096 || stride > 64 {
			t.Skip("accepted but too large to simulate in fuzz time")
		}
		if _, err := Run(sc); err != nil {
			// Runtime errors (e.g. layout capacity) are fine; panics are not,
			// and the fuzzer catches those itself.
			t.Logf("run error: %v", err)
		}
	})
}
