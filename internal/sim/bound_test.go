package sim

import (
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/analytic"
	"rdramstream/internal/stream"
)

// TestSMCSimulationRespectsAnalyticBound locks in the relationship the
// paper's Figure 7 depicts: the simulated SMC never exceeds the combined
// startup/asymptotic analytic bound (Eq 5.15-5.18) by more than rounding
// slack, across kernels, schemes, lengths, and FIFO depths.
func TestSMCSimulationRespectsAnalyticBound(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	par := analytic.DefaultParams()
	const slack = 1.0 // percentage points; measured worst case is ~0.25
	for _, kn := range []string{"copy", "daxpy", "hydro", "vaxpy"} {
		f, _ := stream.FactoryByName(kn)
		probe := f.Make(make([]int64, f.Vectors), 8, 1)
		sr, sw := probe.ReadStreams(), probe.WriteStreams()
		for _, n := range []int{128, 1024} {
			for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
				for _, d := range []int{8, 32, 128} {
					out, err := Run(Scenario{KernelName: kn, N: n, Scheme: scheme, Mode: SMC,
						FIFODepth: d, Placement: stream.Staggered, SkipVerify: true})
					if err != nil {
						t.Fatal(err)
					}
					limit := par.SMCCombinedBound(scheme == addrmap.PI, sr, sw, d, n)
					if out.PercentPeak > limit+slack {
						t.Errorf("%s n=%d %v depth=%d: sim %.2f%% exceeds bound %.2f%%",
							kn, n, scheme, d, out.PercentPeak, limit)
					}
				}
			}
		}
	}
}
