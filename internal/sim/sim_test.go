package sim

import (
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
)

func TestRunAllKernelsBothModesVerified(t *testing.T) {
	for _, kn := range []string{"copy", "daxpy", "hydro", "vaxpy"} {
		for _, mode := range []Mode{NaturalOrder, SMC} {
			for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
				out, err := Run(Scenario{
					KernelName: kn, N: 128, Scheme: scheme, Mode: mode,
					Placement: stream.Staggered, Seed: 42,
				})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", kn, mode, scheme, err)
				}
				if !out.Verified {
					t.Errorf("%s/%v/%v: not verified", kn, mode, scheme)
				}
				if out.PercentPeak <= 0 || out.PercentPeak > 100 {
					t.Errorf("%s/%v/%v: PercentPeak %.2f", kn, mode, scheme, out.PercentPeak)
				}
				if out.EffectiveMBps <= 0 || out.EffectiveMBps > 1600 {
					t.Errorf("%s/%v/%v: EffectiveMBps %.1f", kn, mode, scheme, out.EffectiveMBps)
				}
			}
		}
	}
}

func TestSMCBeatsNaturalOrderHeadline(t *testing.T) {
	// The paper's headline: streaming hardware with simple access ordering
	// improves performance by factors of 1.18 to 2.25 for our benchmarks.
	for _, kn := range []string{"copy", "daxpy", "hydro", "vaxpy"} {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			base := Scenario{KernelName: kn, N: 1024, Scheme: scheme, Placement: stream.Staggered, Seed: 7}
			nat := base
			nat.Mode = NaturalOrder
			smcSc := base
			smcSc.Mode = SMC
			smcSc.FIFODepth = 128
			n, err := Run(nat)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Run(smcSc)
			if err != nil {
				t.Fatal(err)
			}
			ratio := s.PercentPeak / n.PercentPeak
			if ratio <= 1.0 {
				t.Errorf("%s/%v: SMC %.1f%% does not beat natural order %.1f%%", kn, scheme, s.PercentPeak, n.PercentPeak)
			}
			if ratio > 3.2 {
				t.Errorf("%s/%v: ratio %.2f implausibly high", kn, scheme, ratio)
			}
		}
	}
}

func TestPercentAttainableForStrides(t *testing.T) {
	out, err := Run(Scenario{
		KernelName: "vaxpy", N: 256, Stride: 4, Scheme: addrmap.PI,
		Mode: SMC, FIFODepth: 64, Placement: stream.Staggered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.PercentPeak > 51 {
		t.Errorf("stride 4 PercentPeak = %.1f, cannot exceed 50", out.PercentPeak)
	}
	if out.PercentAttainable < out.PercentPeak*1.5 {
		t.Errorf("attainable %.1f should rescale peak %.1f", out.PercentAttainable, out.PercentPeak)
	}
	nat, err := Run(Scenario{
		KernelName: "vaxpy", N: 256, Stride: 4, Scheme: addrmap.CLI,
		Mode: NaturalOrder, Placement: stream.Staggered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nat.PercentAttainable <= nat.PercentPeak {
		t.Errorf("natural-order strided attainable %.1f should exceed peak %.1f", nat.PercentAttainable, nat.PercentPeak)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []Scenario{
		{KernelName: "nope", N: 16},
		{KernelName: "copy", N: 0},
		{KernelName: "copy", N: 16, Stride: -1},
		{KernelName: "copy", N: 16, Mode: Mode(9)},
	}
	for i, sc := range cases {
		if _, err := Run(sc); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBuildKernelUsesLayout(t *testing.T) {
	k, err := BuildKernel(Scenario{KernelName: "vaxpy", N: 64, Scheme: addrmap.PI, Placement: stream.Staggered})
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Streams) != 4 {
		t.Fatalf("streams = %d", len(k.Streams))
	}
	seen := map[int64]bool{}
	for _, s := range k.Streams {
		seen[s.Base] = true
	}
	if len(seen) != 3 { // a, x, y vectors (y appears twice)
		t.Errorf("distinct bases = %d, want 3", len(seen))
	}
}

func TestSeedsAreDeterministic(t *testing.T) {
	sc := Scenario{KernelName: "daxpy", N: 64, Mode: SMC, Placement: stream.Staggered, Seed: 5}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.PercentPeak != b.PercentPeak {
		t.Errorf("non-deterministic outcome: %+v vs %+v", a, b)
	}
}

func TestModeAndPolicyStrings(t *testing.T) {
	if NaturalOrder.String() != "natural-order" || SMC.String() != "smc" {
		t.Error("mode strings wrong")
	}
	if !strings.Contains(smc.RoundRobin.String(), "robin") {
		t.Error("policy string wrong")
	}
}

func TestSkipVerify(t *testing.T) {
	out, err := Run(Scenario{KernelName: "copy", N: 64, Mode: SMC, Placement: stream.Staggered, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verified {
		t.Error("Verified should be false when skipped")
	}
}

func TestWriteAllocateScenario(t *testing.T) {
	direct, err := Run(Scenario{KernelName: "copy", N: 256, Mode: NaturalOrder, Placement: stream.Staggered})
	if err != nil {
		t.Fatal(err)
	}
	wa, err := Run(Scenario{KernelName: "copy", N: 256, Mode: NaturalOrder, Placement: stream.Staggered, WriteAllocate: true})
	if err != nil {
		t.Fatal(err)
	}
	if wa.TransferredWords <= direct.TransferredWords {
		t.Error("write-allocate should move more data")
	}
	if !wa.Verified {
		t.Error("write-allocate run must still verify")
	}
}
