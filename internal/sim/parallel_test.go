package sim

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/stream"
)

// sweepScenarios is a mixed workload exercising both controllers, both
// schemes, and several knobs — the shape of a real cmd/sweep run.
func sweepScenarios() []Scenario {
	var scs []Scenario
	for _, kn := range []string{"copy", "daxpy", "vaxpy"} {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, depth := range []int{8, 32, 128} {
				scs = append(scs, Scenario{
					KernelName: kn, N: 256, Scheme: scheme, Mode: SMC,
					FIFODepth: depth, Placement: stream.Staggered, Seed: 3,
				})
			}
			scs = append(scs, Scenario{
				KernelName: kn, N: 256, Scheme: scheme, Mode: NaturalOrder,
				Placement: stream.Staggered, Seed: 3,
			})
		}
	}
	return scs
}

// renderOutcomes serializes outcomes the two ways the tools export them.
func renderOutcomes(t *testing.T, outs []Outcome) (csvOut, jsonOut []byte) {
	t.Helper()
	var cb bytes.Buffer
	w := csv.NewWriter(&cb)
	for i, out := range outs {
		if err := w.Write([]string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", out.Cycles),
			fmt.Sprintf("%d", out.UsefulWords),
			fmt.Sprintf("%.10f", out.PercentPeak),
			fmt.Sprintf("%.10f", out.EffectiveMBps),
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	jb, err := json.Marshal(outs)
	if err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb
}

// TestRunAllDeterministic checks the sweep executor's central contract:
// worker count is invisible in the output. A serial run and runs at
// several worker counts must produce byte-identical CSV and JSON.
func TestRunAllDeterministic(t *testing.T) {
	scs := sweepScenarios()
	serial, err := RunAll(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := renderOutcomes(t, serial)
	for _, workers := range []int{2, 4, 8, 0} {
		par, err := RunAll(scs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotCSV, gotJSON := renderOutcomes(t, par)
		if !bytes.Equal(wantCSV, gotCSV) {
			t.Errorf("workers=%d: CSV differs from serial run", workers)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("workers=%d: JSON differs from serial run", workers)
		}
		for i := range serial {
			if !serial[i].Verified || !par[i].Verified {
				t.Fatalf("workers=%d scenario %d: not verified", workers, i)
			}
		}
	}
}

// TestControllerDispatch exercises the registry extension point: named
// dispatch must reach the registered "conventional" controller (not one of
// the Mode pair), produce a verified result, and reject unknown names.
func TestControllerDispatch(t *testing.T) {
	have := Controllers()
	for _, want := range []string{"conventional", "natural-order", "smc"} {
		found := false
		for _, n := range have {
			found = found || n == want
		}
		if !found {
			t.Fatalf("Controllers() = %v, missing %q", have, want)
		}
	}
	sc := Scenario{
		KernelName: "daxpy", N: 256, Scheme: addrmap.CLI,
		Controller: "conventional", Placement: stream.Staggered, Seed: 5,
	}
	out, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Error("conventional controller result not verified")
	}
	// With no dependence gating, the conventional controller must be at
	// least as fast as the dependence-gated natural-order controller on
	// the same scenario.
	sc.Controller = ""
	sc.Mode = NaturalOrder
	nat, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cycles > nat.Cycles {
		t.Errorf("conventional %d cycles slower than natural-order %d", out.Cycles, nat.Cycles)
	}
	if _, err := Run(Scenario{KernelName: "copy", N: 64, Controller: "no-such"}); err == nil {
		t.Error("unknown controller name did not error")
	}
	if _, err := Run(Scenario{KernelName: "copy", N: 64, Mode: Mode(9)}); err == nil {
		t.Error("unknown mode did not error")
	}
}

// TestRunAllError checks that a failing scenario reports the error of the
// lowest failing index regardless of worker count.
func TestRunAllError(t *testing.T) {
	scs := sweepScenarios()[:6]
	scs[2].KernelName = "no-such-kernel"
	scs[5].KernelName = "also-missing"
	var want error
	for _, workers := range []int{1, 4} {
		_, err := RunAll(scs, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if want == nil {
			want = err
		} else if err.Error() != want.Error() {
			t.Errorf("workers=%d: err %q, want %q", workers, err, want)
		}
	}
}
