package sim

import (
	"fmt"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
)

// TestGoldenParity pins the simulator's results to values captured before
// the controllers were ported onto the shared engine layer: every kernel ×
// scheme × controller-variant must reproduce its pre-refactor Cycles,
// UsefulWords, and PercentPeak bit for bit (PercentPeak compared through
// the same %.10f formatting the capture used). Any change here means the
// refactor altered simulated behaviour, not just code structure.
func TestGoldenParity(t *testing.T) {
	goldens := []struct {
		kernel, scheme, variant string
		cycles, useful          int64
		percentPeak             string
	}{
		{"copy", "CLI", "natural", 3598, 1024, "56.9205113952"},
		{"copy", "CLI", "natural+wa", 5410, 1024, "37.8558225508"},
		{"copy", "CLI", "natural+cache", 4628, 1024, "44.2523768366"},
		{"copy", "CLI", "smc", 2402, 1024, "85.2622814321"},
		{"copy", "CLI", "smc+spec", 2402, 1024, "85.2622814321"},
		{"copy", "CLI", "smc+bankaware", 2838, 1024, "72.1634954193"},
		{"copy", "CLI", "smc+hitfirst", 2430, 1024, "84.2798353909"},
		{"copy", "PI", "natural", 2863, 1024, "71.5333566189"},
		{"copy", "PI", "natural+wa", 3884, 1024, "52.7291452111"},
		{"copy", "PI", "natural+cache", 3285, 1024, "62.3439878234"},
		{"copy", "PI", "smc", 2134, 1024, "95.9700093721"},
		{"copy", "PI", "smc+spec", 2134, 1024, "95.9700093721"},
		{"copy", "PI", "smc+bankaware", 2194, 1024, "93.3454876937"},
		{"copy", "PI", "smc+hitfirst", 2158, 1024, "94.9026876738"},
		{"daxpy", "CLI", "natural", 6414, 1536, "47.8952291862"},
		{"daxpy", "CLI", "natural+wa", 6448, 1536, "47.6426799007"},
		{"daxpy", "CLI", "natural+cache", 5124, 1536, "59.9531615925"},
		{"daxpy", "CLI", "smc", 3698, 1536, "83.0719307734"},
		{"daxpy", "CLI", "smc+spec", 3698, 1536, "83.0719307734"},
		{"daxpy", "CLI", "smc+bankaware", 3686, 1536, "83.3423765600"},
		{"daxpy", "CLI", "smc+hitfirst", 3602, 1536, "85.2859522488"},
		{"daxpy", "PI", "natural", 3863, 1536, "79.5236862542"},
		{"daxpy", "PI", "natural+wa", 4888, 1536, "62.8477905074"},
		{"daxpy", "PI", "natural+cache", 3760, 1536, "81.7021276596"},
		{"daxpy", "PI", "smc", 3205, 1536, "95.8502340094"},
		{"daxpy", "PI", "smc+spec", 3205, 1536, "95.8502340094"},
		{"daxpy", "PI", "smc+bankaware", 3309, 1536, "92.8377153218"},
		{"daxpy", "PI", "smc+hitfirst", 3309, 1536, "92.8377153218"},
		{"hydro", "CLI", "natural", 13878, 2048, "29.5143392420"},
		{"hydro", "CLI", "natural+wa", 14160, 2048, "28.9265536723"},
		{"hydro", "CLI", "natural+cache", 11024, 2048, "37.1552975327"},
		{"hydro", "CLI", "smc", 4785, 2048, "85.6008359457"},
		{"hydro", "CLI", "smc+spec", 4785, 2048, "85.6008359457"},
		{"hydro", "CLI", "smc+bankaware", 4811, 2048, "85.1382249013"},
		{"hydro", "CLI", "smc+hitfirst", 4801, 2048, "85.3155592585"},
		{"hydro", "PI", "natural", 5278, 2048, "77.6051534672"},
		{"hydro", "PI", "natural+wa", 6293, 2048, "65.0881932306"},
		{"hydro", "PI", "natural+cache", 5050, 2048, "81.1089108911"},
		{"hydro", "PI", "smc", 4287, 2048, "95.5446699324"},
		{"hydro", "PI", "smc+spec", 4287, 2048, "95.5446699324"},
		{"hydro", "PI", "smc+bankaware", 4439, 2048, "92.2730344672"},
		{"hydro", "PI", "smc+hitfirst", 4433, 2048, "92.3979246560"},
		{"vaxpy", "CLI", "natural", 7438, 2048, "55.0685668190"},
		{"vaxpy", "CLI", "natural+wa", 7472, 2048, "54.8179871520"},
		{"vaxpy", "CLI", "natural+cache", 9350, 2048, "43.8074866310"},
		{"vaxpy", "CLI", "smc", 4545, 2048, "90.1210121012"},
		{"vaxpy", "CLI", "smc+spec", 4545, 2048, "90.1210121012"},
		{"vaxpy", "CLI", "smc+bankaware", 4563, 2048, "89.7655051501"},
		{"vaxpy", "CLI", "smc+hitfirst", 4571, 2048, "89.6084007876"},
		{"vaxpy", "PI", "natural", 4919, 2048, "83.2689571051"},
		{"vaxpy", "PI", "natural+wa", 5944, 2048, "68.9098250336"},
		{"vaxpy", "PI", "natural+cache", 4829, 2048, "84.8208738869"},
		{"vaxpy", "PI", "smc", 4301, 2048, "95.2336665892"},
		{"vaxpy", "PI", "smc+spec", 4301, 2048, "95.2336665892"},
		{"vaxpy", "PI", "smc+bankaware", 4473, 2048, "91.5716521350"},
		{"vaxpy", "PI", "smc+hitfirst", 4449, 2048, "92.0656327265"},
	}

	for _, g := range goldens {
		t.Run(fmt.Sprintf("%s/%s/%s", g.kernel, g.scheme, g.variant), func(t *testing.T) {
			sc := Scenario{
				KernelName: g.kernel, N: 512,
				Placement: stream.Staggered,
				FIFODepth: 32, Seed: 7,
			}
			if g.scheme == "PI" {
				sc.Scheme = addrmap.PI
			}
			switch g.variant {
			case "natural":
				sc.Mode = NaturalOrder
			case "natural+wa":
				sc.Mode = NaturalOrder
				sc.WriteAllocate = true
			case "natural+cache":
				sc.Mode = NaturalOrder
				sc.Cache = &cache.Config{SizeWords: 2048, LineWords: 4, Ways: 2}
			case "smc":
				sc.Mode = SMC
			case "smc+spec":
				sc.Mode = SMC
				sc.SpeculateActivate = true
			case "smc+bankaware":
				sc.Mode = SMC
				sc.Policy = smc.BankAware
			case "smc+hitfirst":
				sc.Mode = SMC
				sc.Policy = smc.HitFirst
			default:
				t.Fatalf("unknown variant %q", g.variant)
			}
			out, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Verified {
				t.Error("result not verified")
			}
			if out.Cycles != g.cycles {
				t.Errorf("Cycles = %d, golden %d", out.Cycles, g.cycles)
			}
			if out.UsefulWords != g.useful {
				t.Errorf("UsefulWords = %d, golden %d", out.UsefulWords, g.useful)
			}
			if got := fmt.Sprintf("%.10f", out.PercentPeak); got != g.percentPeak {
				t.Errorf("PercentPeak = %s, golden %s", got, g.percentPeak)
			}
		})
	}
}
