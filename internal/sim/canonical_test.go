package sim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/fault"
	"rdramstream/internal/rdram"
	"rdramstream/internal/stream"
)

func TestCanonicalCollapsesSpellings(t *testing.T) {
	viaMode := Scenario{
		KernelName: "daxpy", N: 256, Scheme: addrmap.PI, Mode: SMC,
		Placement: stream.Staggered,
	}
	viaName := viaMode
	viaName.Mode = NaturalOrder
	viaName.Controller = "smc"
	explicit := viaMode
	explicit.LineWords = 4
	explicit.FIFODepth = 32
	explicit.Stride = 1
	explicit.Device = rdram.DefaultConfig()
	inactiveFault := viaMode
	inactiveFault.Fault = &fault.Config{Seed: 3}

	want, err := viaMode.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if want.Controller != "smc" {
		t.Fatalf("canonical controller = %q, want smc", want.Controller)
	}
	if want.LineWords != 4 || want.FIFODepth != 32 || want.Stride != 1 {
		t.Fatalf("canonical did not fill defaults: %+v", want)
	}
	for name, sc := range map[string]Scenario{
		"registry-name":     viaName,
		"explicit-defaults": explicit,
		"inactive-fault":    inactiveFault,
	} {
		got, err := sc.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: canonical form differs:\n  got  %+v\n  want %+v", name, got, want)
		}
	}
}

func TestCanonicalDoesNotAliasPointers(t *testing.T) {
	fc := fault.Scaled(1, 2)
	sc := Scenario{KernelName: "copy", N: 64, Mode: NaturalOrder, Fault: &fc}
	canon, err := sc.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Fault == &fc {
		t.Error("canonical scenario aliases the caller's fault config")
	}
	if !reflect.DeepEqual(*canon.Fault, fc) {
		t.Error("canonical fault config differs from the original")
	}
}

// TestScenarioJSONRoundTrip: the wire format drops observers and
// round-trips everything else, so a scenario POSTed to the serving layer
// simulates exactly like the original.
func TestScenarioJSONRoundTrip(t *testing.T) {
	fc := fault.Scaled(5, 1)
	sc := Scenario{
		KernelName: "vaxpy", N: 128, Stride: 2, Scheme: addrmap.CLI,
		Controller: "conventional", FIFODepth: 16, Seed: 42, Fault: &fc,
		Trace: func(rdram.TraceEvent) {}, // observer: must not leak into JSON
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal with observers attached: %v", err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != nil || back.Telemetry != nil {
		t.Error("observers survived the JSON round trip")
	}
	sc.Trace = nil
	if !reflect.DeepEqual(back, sc) {
		t.Errorf("round trip changed the scenario:\n  got  %+v\n  want %+v", back, sc)
	}
}

func TestRunAllCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scs := []Scenario{
		{KernelName: "daxpy", N: 64, Mode: SMC, Placement: stream.Staggered},
		{KernelName: "copy", N: 64, Mode: NaturalOrder, Placement: stream.Staggered},
	}
	if _, err := RunAllCtx(ctx, scs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And an open context behaves exactly like RunAll.
	a, err := RunAll(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllCtx(context.Background(), scs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("RunAllCtx outcomes differ from RunAll")
	}
}
