package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/rdram"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
)

// telemetryCombos enumerates every kernel × scheme × controller pairing
// the acceptance criteria cover.
func telemetryCombos() []Scenario {
	var out []Scenario
	for _, f := range stream.Benchmarks {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, mode := range []Mode{NaturalOrder, SMC} {
				out = append(out, Scenario{
					KernelName: f.Name, N: 512,
					Scheme: scheme, Mode: mode,
					Placement: stream.Staggered,
				})
			}
		}
	}
	return out
}

func comboName(sc Scenario) string {
	return fmt.Sprintf("%s/%v/%v", sc.KernelName, sc.Scheme, sc.Mode)
}

// TestTelemetryReconcilesWithDeviceStats asserts that the telemetry
// layer's per-bank counters, summed, exactly match the device's own Stats
// for every kernel × {CLI, PI} × {natural, SMC} combination — both count
// from the same scheduling sites, so any drift is a wiring bug.
func TestTelemetryReconcilesWithDeviceStats(t *testing.T) {
	for _, sc := range telemetryCombos() {
		sc := sc
		t.Run(comboName(sc), func(t *testing.T) {
			col := telemetry.New(telemetry.Options{Window: 512})
			sc.Telemetry = col
			out, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Verified {
				t.Fatal("run not verified")
			}
			st := out.Device
			got := col.Device.Totals()
			checks := []struct {
				name       string
				stat, tele int64
			}{
				{"Activates", st.Activates, got.Activates},
				{"Precharges", st.Precharges, got.Precharges},
				{"Reads", st.Reads, got.Reads},
				{"Writes", st.Writes, got.Writes},
				{"PageHits", st.PageHits, got.PageHits},
				{"PageMisses", st.PageMisses, got.PageMisses},
				{"PageConflicts", st.PageConflicts, got.PageConflicts},
				{"Retires", st.Retires, got.Retires},
				{"DataBusBusy", st.DataBusBusy, col.Device.DataBusBusy()},
			}
			for _, c := range checks {
				if c.stat != c.tele {
					t.Errorf("%s: device stats %d, telemetry %d", c.name, c.stat, c.tele)
				}
			}
			// Per-bank counters must also sum element-wise into totals and
			// never exceed the configured bank count.
			if nb := len(col.Device.PerBank()); nb > sc.Device.Geometry.Banks && sc.Device.Geometry.Banks > 0 {
				t.Errorf("telemetry saw %d banks, geometry has %d", nb, sc.Device.Geometry.Banks)
			}
		})
	}
}

// TestStallAttributionInvariant asserts the tentpole invariant: the
// per-cause idle-cycle charges tile the run exactly — they sum to
// Cycles − DataBusBusy for every kernel × scheme × controller combination.
func TestStallAttributionInvariant(t *testing.T) {
	for _, sc := range telemetryCombos() {
		sc := sc
		t.Run(comboName(sc), func(t *testing.T) {
			col := telemetry.New(telemetry.Options{Window: 512})
			sc.Telemetry = col
			out, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			wantIdle := out.Cycles - out.Device.DataBusBusy
			if got := col.Device.IdleTotal(); got != wantIdle {
				t.Errorf("stall attribution: per-cause sum %d, want Cycles-DataBusBusy = %d-%d = %d",
					got, out.Cycles, out.Device.DataBusBusy, wantIdle)
				for i, v := range col.Device.Stalls() {
					if v != 0 {
						t.Logf("  %v: %d", telemetry.StallCause(i), v)
					}
				}
			}
			if col.Cycles != out.Cycles {
				t.Errorf("Finalize recorded %d cycles, outcome has %d", col.Cycles, out.Cycles)
			}
			// The report must agree with the raw probes.
			rep := col.Report()
			var repSum int64
			for _, v := range rep.Stalls {
				repSum += v
			}
			if repSum != wantIdle {
				t.Errorf("report stall sum %d, want %d", repSum, wantIdle)
			}
		})
	}
}

// TestStallAttributionVariants exercises the attribution under the
// harder scheduling variants: MSU policies, speculative activation,
// write-allocate, and a realistic cache in front of the natural-order
// controller.
func TestStallAttributionVariants(t *testing.T) {
	base := Scenario{KernelName: "daxpy", N: 512, Placement: stream.Staggered}
	variants := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"smc-bankaware", func(sc *Scenario) { sc.Mode = SMC; sc.Scheme = addrmap.PI; sc.Policy = smc.BankAware }},
		{"smc-hitfirst-speculate", func(sc *Scenario) {
			sc.Mode = SMC
			sc.Scheme = addrmap.PI
			sc.Policy = smc.HitFirst
			sc.SpeculateActivate = true
		}},
		{"smc-tiny-fifo", func(sc *Scenario) { sc.Mode = SMC; sc.Scheme = addrmap.CLI; sc.FIFODepth = 8 }},
		{"natural-writealloc", func(sc *Scenario) { sc.Mode = NaturalOrder; sc.Scheme = addrmap.CLI; sc.WriteAllocate = true }},
		{"natural-cache", func(sc *Scenario) {
			sc.Mode = NaturalOrder
			sc.Scheme = addrmap.PI
			sc.Cache = &cache.Config{SizeWords: 256, LineWords: 4, Ways: 2}
		}},
		{"smc-aligned", func(sc *Scenario) { sc.Mode = SMC; sc.Scheme = addrmap.PI; sc.Placement = stream.Aligned }},
		{"natural-refresh", func(sc *Scenario) {
			sc.Mode = NaturalOrder
			sc.Scheme = addrmap.CLI
			sc.Device = deviceWithRefresh()
		}},
	}
	for _, v := range variants {
		sc := base
		v.mut(&sc)
		t.Run(v.name, func(t *testing.T) {
			col := telemetry.New(telemetry.Options{Window: 256})
			sc.Telemetry = col
			out, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			wantIdle := out.Cycles - out.Device.DataBusBusy
			if got := col.Device.IdleTotal(); got != wantIdle {
				t.Errorf("per-cause sum %d, want %d", got, wantIdle)
			}
		})
	}
}

// TestTelemetryChromeTraceValid generates the acceptance-criteria trace —
// daxpy, SMC, PI, FIFO depth 128 — and asserts it is valid trace-event
// JSON containing per-bank and per-FIFO tracks.
func TestTelemetryChromeTraceValid(t *testing.T) {
	col := telemetry.New(telemetry.Options{Window: 256, CaptureEvents: true})
	sc := Scenario{
		KernelName: "daxpy", N: 1024,
		Scheme: addrmap.PI, Mode: SMC, FIFODepth: 128,
		Placement: stream.Staggered,
		Telemetry: col,
	}
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	var bankTracks, fifoTracks int
	for _, ev := range doc.TraceEvents {
		if ev.Name != "thread_name" || ev.Ph != "M" {
			continue
		}
		name, _ := ev.Args["name"].(string)
		switch {
		case len(name) >= 4 && name[:4] == "bank":
			bankTracks++
		case len(name) >= 4 && name[:4] == "fifo":
			fifoTracks++
		}
	}
	if bankTracks == 0 {
		t.Error("no per-bank tracks in chrome trace")
	}
	if fifoTracks != 3 {
		t.Errorf("want 3 per-FIFO tracks for daxpy, got %d", fifoTracks)
	}
	// Spans and counter samples must both be present.
	var spans, counters bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans = true
		case "C":
			counters = true
		}
	}
	if !spans || !counters {
		t.Errorf("trace missing event kinds: spans=%v counters=%v", spans, counters)
	}
}

// TestTelemetryFIFOAccounting checks FIFO-level probes: every stream's
// packets are serviced, and a deliberately tiny FIFO starves.
func TestTelemetryFIFOAccounting(t *testing.T) {
	col := telemetry.New(telemetry.Options{Window: 256})
	sc := Scenario{
		KernelName: "daxpy", N: 512,
		Scheme: addrmap.CLI, Mode: SMC, FIFODepth: 8,
		Placement: stream.Staggered,
		Telemetry: col,
	}
	out, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.FIFOs) != 3 {
		t.Fatalf("daxpy has 3 streams, got %d FIFO probes", len(col.FIFOs))
	}
	var serviced int64
	for _, f := range col.FIFOs {
		serviced += f.Serviced
	}
	if want := out.Device.PacketCount(); serviced != want {
		t.Errorf("FIFO probes serviced %d packets, device moved %d", serviced, want)
	}
	if col.Controller.CPUStallCycles == 0 {
		t.Log("note: no CPU stalls with depth-8 FIFOs (unexpected but not fatal)")
	}
}

// deviceWithRefresh returns the default device with refresh enabled, to
// push refresh row activity through the attribution path.
func deviceWithRefresh() rdram.Config {
	cfg := rdram.DefaultConfig()
	cfg.RefreshInterval = 2048
	return cfg
}
