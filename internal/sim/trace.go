package sim

import (
	"rdramstream/internal/fault"
	"rdramstream/internal/rdram"
	"rdramstream/internal/workload"
)

// runTrace executes a trace scenario: the Workload spec is materialized
// (generator programs expand here, deterministically) and replayed
// through workload.ReplayTrace under the scenario's scheme, line size,
// and controller — "natural-order" replays in trace order, "smc"
// reorders row-hits-first over a FIFODepth-deep window. Fault wiring,
// device construction, page pooling, and telemetry attachment mirror
// RunKernel exactly, so trace rows slot into sweeps, caching, and the
// fabric with no special cases above this function.
func runTrace(sc Scenario) (Outcome, error) {
	if err := sc.Validate(); err != nil {
		return Outcome{}, err
	}
	accs, err := sc.Workload.Materialize()
	if err != nil {
		return Outcome{}, err
	}
	var inj *fault.Injector
	if f := sc.Fault; f != nil && f.Active() {
		if err := f.Validate(); err != nil {
			return Outcome{}, err
		}
		if f.RefreshBase > 0 && sc.Device.RefreshInterval == 0 {
			sc.Device.RefreshInterval = f.RefreshBase
		}
		if inj, err = fault.New(*f, sc.Device.Geometry.Banks); err != nil {
			return Outcome{}, err
		}
	}
	if err := sc.Device.Validate(); err != nil {
		return Outcome{}, err
	}
	dev := rdram.NewDevice(sc.Device)
	scr := scratchPool.Get().(*scratch)
	dev.UsePagePool(&scr.pages)
	defer func() {
		dev.ReleasePages()
		scratchPool.Put(scr)
	}()
	// A trace carries addresses, not data: the replay is timing-only by
	// construction, like a SkipVerify kernel run.
	dev.SetTimingOnly(true)
	if inj != nil {
		dev.Faults = inj
	}
	if sc.Trace != nil {
		dev.Trace = sc.Trace
	}
	name, err := sc.controllerName()
	if err != nil {
		return Outcome{}, err
	}
	res, err := workload.ReplayTrace(dev, workload.TraceOptions{
		Scheme:      sc.Scheme,
		LineWords:   sc.LineWords,
		Outstanding: sc.Workload.Outstanding,
		Reorder:     name == "smc",
		Window:      sc.FIFODepth,
		Telemetry:   sc.Telemetry,
	}, accs)
	if err != nil {
		return Outcome{}, err
	}
	// There is no golden image to check against — Verified reports that
	// the replay completed and issued every demanded access, which keeps
	// rdsim's exit code and the CI byte-compares free of trace special
	// cases.
	out := Outcome{Result: res, Verified: true}
	sc.Telemetry.Finalize(out.Cycles)
	return out, nil
}
