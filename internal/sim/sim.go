// Package sim is the one-stop harness the experiments, examples, and
// public API use: it lays a kernel's vectors out in memory, seeds the
// device with a deterministic data pattern, dispatches to a controller
// from the engine registry, and verifies the device's final memory image
// against the kernel's golden semantics.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/cache"
	"rdramstream/internal/engine"
	"rdramstream/internal/fault"
	"rdramstream/internal/rdram"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
	"rdramstream/internal/tracegen"

	// Imported for its engine.Register call: every controller the
	// Scenario API can name must be linked in. The workload package
	// (controller "conventional" plus the trace replay path) is imported
	// non-blank by trace.go.
	_ "rdramstream/internal/natorder"
)

// Mode selects the memory controller under test.
type Mode int

const (
	// NaturalOrder services cacheline accesses in program order — the
	// paper's baseline.
	NaturalOrder Mode = iota
	// SMC routes streams through the Stream Memory Controller.
	SMC
)

func (m Mode) String() string {
	if m == NaturalOrder {
		return "natural-order"
	}
	return "smc"
}

// Scenario describes one simulation.
//
// rdlint:canonroot — this struct is the result cache's key domain.
// canoncheck requires every exported field (and every exported field of
// structs reachable from here) to influence Canonical()/resultcache.Key
// or carry an explicit rdlint:nocanon opt-out.
type Scenario struct {
	// KernelName selects a benchmark from stream.Benchmarks.
	KernelName string `json:"KernelName"`
	// N is the stream length in elements; Stride the element stride in
	// 64-bit words.
	N      int   `json:"N"`
	Stride int64 `json:"Stride"`

	Scheme    addrmap.Scheme   `json:"Scheme"`
	Placement stream.Placement `json:"Placement"`
	Mode      Mode             `json:"Mode"`
	// Controller, when non-empty, selects a controller from the engine
	// registry by name (see Controllers) and overrides Mode. Mode remains
	// the stable API for the paper's two systems; named dispatch is the
	// extension point for registered policies like "conventional".
	Controller string `json:"Controller"`

	// LineWords is the cacheline size (defaults to 4 = 32 bytes).
	LineWords int `json:"LineWords"`
	// FIFODepth is the SBU depth for SMC mode (defaults to 32).
	FIFODepth int `json:"FIFODepth"`
	// Policy is the MSU scheduling policy for SMC mode.
	Policy smc.Policy `json:"Policy"`
	// SpeculateActivate enables the SMC's page-crossing extension.
	SpeculateActivate bool `json:"SpeculateActivate"`
	// WriteAllocate enables the natural-order controller's
	// fetch-on-store-miss ablation.
	WriteAllocate bool `json:"WriteAllocate"`
	// Cache, when non-nil, puts a real set-associative write-back cache in
	// front of the natural-order controller (conflict misses and dirty
	// writebacks modeled). Ignored in SMC mode, which bypasses the cache
	// by design.
	Cache *cache.Config `json:"Cache"`

	// Device overrides the device configuration (zero value = paper's
	// default part).
	Device rdram.Config `json:"Device"`
	// Fault, when non-nil and active, attaches a deterministic fault
	// injector to the device (see internal/fault): refresh storms, per-bank
	// latency jitter, and transient rejections. A nil or inactive config
	// (fault.Scaled(seed, 0)) is bit-identical to a fault-free run.
	Fault *fault.Config `json:"Fault"`
	// WatchdogLimit bounds controller forward progress in cycles (0 =
	// engine.DefaultWatchdogLimit): a run that retires no useful word for
	// this long aborts with a *engine.WatchdogError instead of hanging.
	WatchdogLimit int64 `json:"WatchdogLimit"`
	// Seed drives the data pattern used to initialize the vectors.
	Seed int64 `json:"Seed"`
	// SkipVerify disables the post-run functional check (for benchmarks).
	SkipVerify bool `json:"SkipVerify"`

	// Workload, when non-nil, replaces the benchmark kernel with an
	// externally described access trace (see internal/tracegen): either
	// a deterministic generator program or an explicit access list. The
	// kernel fields (KernelName, N, Stride, Placement) do not apply —
	// KernelName must be empty — and the controller must be
	// "natural-order" (trace-order replay) or "smc" (row-hit-first
	// reordering over a FIFODepth-deep window). Trace runs are
	// timing-only: there is no golden image, so Verified reports that
	// the replay completed. Canonical reduces the spec to the trace's
	// content digest, which is what makes identical traces — however
	// they were spelled — one result-cache entry and one fabric shard.
	Workload *tracegen.Spec `json:"Workload,omitempty"`

	// Telemetry, when non-nil, instruments the run: per-bank device
	// counters, per-window bus occupancy and bandwidth, stall-cause
	// attribution of every idle DATA-bus cycle, FIFO depth/starvation
	// (SMC), and the miss-latency histogram (natural order). The caller
	// keeps the collector and reads it back after the run; Finalize is
	// called with the run's total cycles. Telemetry is an observer: it
	// never changes the simulated outcome, so it is excluded from JSON
	// encoding (the service wire format) and from result-cache keys.
	Telemetry *telemetry.Collector `json:"-"`
	// Trace, when non-nil, receives every packet the device schedules —
	// the hook behind trace recording, protocol checking (rdsim -check),
	// and the Figure 5/6 timelines. Like Telemetry, it is a pure observer
	// and excluded from JSON encoding.
	Trace func(rdram.TraceEvent) `json:"-"`
}

// withDefaults fills zero fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.LineWords == 0 {
		sc.LineWords = 4
	}
	if sc.FIFODepth == 0 {
		sc.FIFODepth = 32
	}
	if sc.Stride == 0 {
		sc.Stride = 1
	}
	if sc.Device.Timing.TPack == 0 {
		sc.Device = rdram.DefaultConfig()
	}
	return sc
}

// Typed scenario-validation errors, matchable with errors.Is. Every
// malformed scenario surfaces as one of these at the Run/RunAll boundary
// instead of panicking inside the device or mapper.
var (
	ErrUnknownKernel     = errors.New("sim: unknown kernel")
	ErrBadLength         = errors.New("sim: N must be positive")
	ErrBadStride         = errors.New("sim: stride must be positive")
	ErrUnknownMode       = errors.New("sim: unknown mode")
	ErrUnknownController = errors.New("sim: unknown controller")
	ErrBadLineWords      = errors.New("sim: bad LineWords")
	ErrBadFIFODepth      = errors.New("sim: bad FIFODepth")
	ErrBadWatchdog       = errors.New("sim: WatchdogLimit must be non-negative")
	ErrTraceScenario     = errors.New("sim: invalid trace scenario")
	ErrTraceController   = errors.New("sim: unsupported trace controller")
)

// Validate checks the scenario (after default filling) and returns a typed
// error for the first problem found. Run, RunKernel, and BuildKernel all
// validate, so out-of-range inputs fail at the API boundary.
func (sc Scenario) Validate() error {
	sc = sc.withDefaults()
	if sc.Workload != nil {
		if sc.KernelName != "" {
			return fmt.Errorf("%w: KernelName %q and Workload are mutually exclusive", ErrTraceScenario, sc.KernelName)
		}
		if err := sc.Workload.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrTraceScenario, err)
		}
		name, err := sc.controllerName()
		if err != nil {
			return err
		}
		if name != "natural-order" && name != "smc" {
			return fmt.Errorf("%w %q (trace replay supports natural-order and smc)", ErrTraceController, name)
		}
	} else {
		if _, ok := stream.FactoryByName(sc.KernelName); !ok {
			return fmt.Errorf("%w %q (have copy, daxpy, hydro, vaxpy)", ErrUnknownKernel, sc.KernelName)
		}
		if sc.N <= 0 {
			return fmt.Errorf("%w, got %d", ErrBadLength, sc.N)
		}
		if sc.Stride <= 0 {
			return fmt.Errorf("%w, got %d", ErrBadStride, sc.Stride)
		}
	}
	if err := sc.Scheme.Validate(); err != nil {
		return err
	}
	if sc.LineWords <= 0 || sc.LineWords%rdram.WordsPerPacket != 0 {
		return fmt.Errorf("%w: must be a positive multiple of %d, got %d", ErrBadLineWords, rdram.WordsPerPacket, sc.LineWords)
	}
	if sc.FIFODepth < rdram.WordsPerPacket {
		return fmt.Errorf("%w: must be at least %d, got %d", ErrBadFIFODepth, rdram.WordsPerPacket, sc.FIFODepth)
	}
	if sc.WatchdogLimit < 0 {
		return fmt.Errorf("%w, got %d", ErrBadWatchdog, sc.WatchdogLimit)
	}
	if _, err := sc.controllerName(); err != nil {
		return err
	}
	if sc.Controller != "" {
		if _, ok := engine.Lookup(sc.Controller); !ok {
			return fmt.Errorf("%w %q (have %v)", ErrUnknownController, sc.Controller, engine.Names())
		}
	}
	if err := sc.Device.Validate(); err != nil {
		return err
	}
	if sc.Fault != nil {
		if err := sc.Fault.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Canonical returns the scenario in normal form: defaults filled
// (LineWords, FIFODepth, Stride, Device) and the controller resolved to
// its registry name, with Mode cleared. Two scenarios that simulate
// identically — one spelling the controller through Mode, the other
// through Controller, one relying on defaults, the other spelling them
// out — canonicalize to equal values, which is what makes result-cache
// keys order- and spelling-independent. Observer fields (Telemetry,
// Trace) are dropped: they never affect the outcome.
func (sc Scenario) Canonical() (Scenario, error) {
	sc = sc.withDefaults()
	name, err := sc.controllerName()
	if err != nil {
		return Scenario{}, err
	}
	sc.Controller = name
	sc.Mode = NaturalOrder // subsumed by Controller; zero the redundant field
	if sc.Fault != nil {
		if !sc.Fault.Active() {
			// An inactive config is bit-identical to no faults.
			sc.Fault = nil
		} else {
			f := *sc.Fault // don't alias the caller's pointer
			sc.Fault = &f
		}
	}
	if sc.Cache != nil {
		c := *sc.Cache
		sc.Cache = &c
	}
	if sc.Workload != nil {
		// A trace scenario's outcome is a function of the materialized
		// trace, not of how it was described: reduce the spec to its
		// content digest and zero every kernel-only field the replay
		// ignores, so a generator program, the trace it expands to, and a
		// wire-posted copy all share one key.
		w, err := sc.Workload.Canonical()
		if err != nil {
			return Scenario{}, err
		}
		sc.Workload = &w
		sc.KernelName, sc.N, sc.Stride = "", 0, 0
		sc.Placement = 0
		sc.Policy = 0
		sc.SpeculateActivate, sc.WriteAllocate = false, false
		sc.Cache = nil
		sc.SkipVerify = false
		sc.WatchdogLimit = 0
		sc.Seed = 0
	}
	sc.Telemetry = nil
	sc.Trace = nil
	return sc, nil
}

// Label is the human-readable scenario identifier used in sweep errors and
// fault-sweep rows: kernel/scheme/controller.
func (sc Scenario) Label() string {
	name, err := sc.controllerName()
	if err != nil {
		name = "?"
	}
	kernel := sc.KernelName
	if sc.Workload != nil {
		kernel = "trace"
		if p := sc.Workload.Program; p != nil && p.Name != "" {
			kernel = "trace:" + p.Name
		}
	}
	return fmt.Sprintf("%s/%s/%s", kernel, sc.Scheme, name)
}

// Outcome reports a simulation's results: the controller's common outcome
// (cycles, traffic, and bandwidth figures — see engine.Result) plus the
// harness's functional check.
type Outcome struct {
	engine.Result
	// Verified is true when the final memory image matched the kernel's
	// golden execution.
	Verified bool `json:"Verified"`
}

// Controllers lists the names accepted by Scenario.Controller, sorted.
func Controllers() []string { return engine.Names() }

// controllerName resolves the scenario's registry name: the explicit
// Controller override, else the Mode.
func (sc Scenario) controllerName() (string, error) {
	if sc.Controller != "" {
		return sc.Controller, nil
	}
	switch sc.Mode {
	case NaturalOrder:
		return "natural-order", nil
	case SMC:
		return "smc", nil
	default:
		return "", fmt.Errorf("%w %d", ErrUnknownMode, int(sc.Mode))
	}
}

// BuildKernel lays out and constructs a benchmark kernel for a scenario.
func BuildKernel(sc Scenario) (*stream.Kernel, error) {
	sc = sc.withDefaults()
	if sc.Workload != nil {
		return nil, fmt.Errorf("%w: trace scenarios have no benchmark kernel", ErrTraceScenario)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	f, _ := stream.FactoryByName(sc.KernelName)
	bases, err := stream.Layout(sc.Scheme, sc.Device.Geometry, sc.LineWords, f.Footprints(sc.N, sc.Stride), sc.Placement)
	if err != nil {
		return nil, err
	}
	return f.Make(bases, sc.N, sc.Stride), nil
}

// Run executes the scenario: a benchmark kernel, or — when Workload is
// set — a trace replay (see runTrace).
func Run(sc Scenario) (Outcome, error) {
	sc = sc.withDefaults()
	if sc.Workload != nil {
		return runTrace(sc)
	}
	k, err := BuildKernel(sc)
	if err != nil {
		return Outcome{}, err
	}
	return RunKernel(k, sc)
}

// RunKernel executes the scenario with a caller-built kernel; the
// scenario's KernelName, N, and Stride fields are ignored. The kernel's
// vectors must fit the device geometry under the scenario's interleaving
// scheme (use stream.Layout to place them).
func RunKernel(k *stream.Kernel, sc Scenario) (Outcome, error) {
	sc = sc.withDefaults()
	// Fault wiring happens before the device is built: storms need refresh
	// armed (the constructor only schedules refresh when the interval is
	// positive), and an inactive config attaches nothing at all, so
	// severity 0 is bit-identical to a fault-free run.
	var inj *fault.Injector
	if f := sc.Fault; f != nil && f.Active() {
		if err := f.Validate(); err != nil {
			return Outcome{}, err
		}
		if f.RefreshBase > 0 && sc.Device.RefreshInterval == 0 {
			sc.Device.RefreshInterval = f.RefreshBase
		}
		var err error
		if inj, err = fault.New(*f, sc.Device.Geometry.Banks); err != nil {
			return Outcome{}, err
		}
	}
	if err := sc.Device.Validate(); err != nil {
		return Outcome{}, err
	}
	dev := rdram.NewDevice(sc.Device)
	scr := scratchPool.Get().(*scratch)
	dev.UsePagePool(&scr.pages)
	defer func() {
		dev.ReleasePages()
		scratchPool.Put(scr)
	}()
	if inj != nil {
		dev.Faults = inj
	}
	if sc.Trace != nil {
		dev.Trace = sc.Trace
	}
	mapper, err := addrmap.New(sc.Scheme, sc.Device.Geometry, sc.LineWords)
	if err != nil {
		return Outcome{}, err
	}
	// Caller-built kernels can address anything; reject streams that fall
	// outside the device before the mapper panics five frames deep.
	capacity := mapper.CapacityWords()
	for _, st := range k.Streams {
		if st.Length <= 0 {
			continue
		}
		if first, last := st.Addr(0), st.Addr(st.Length-1); first < 0 || last < 0 || first >= capacity || last >= capacity {
			return Outcome{}, fmt.Errorf("sim: stream %q spans addresses [%d, %d] outside device capacity %d words", st.Name, first, last, capacity)
		}
	}
	// Seeding exists for the functional check: data values never influence
	// the timing model (scheduling is purely address-driven, and the seed
	// rng is private to seed), so a SkipVerify run skips the seed pass too
	// and is still cycle-identical to a verified run.
	var shadow map[int64]uint64
	if sc.SkipVerify {
		dev.SetTimingOnly(true)
	} else {
		shadow = seed(dev, mapper, k, sc.Seed, scr)
	}

	name, err := sc.controllerName()
	if err != nil {
		return Outcome{}, err
	}
	ctl, ok := engine.Lookup(name)
	if !ok {
		return Outcome{}, fmt.Errorf("%w %q (have %v)", ErrUnknownController, name, engine.Names())
	}
	res, err := ctl.Run(dev, k, engine.Options{
		Scheme: sc.Scheme, LineWords: sc.LineWords, FIFODepth: sc.FIFODepth,
		Policy: int(sc.Policy), SpeculateActivate: sc.SpeculateActivate,
		WriteAllocate: sc.WriteAllocate, Cache: sc.Cache,
		Telemetry:     sc.Telemetry,
		WatchdogLimit: sc.WatchdogLimit,
	})
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Result: res}
	sc.Telemetry.Finalize(out.Cycles)

	if !sc.SkipVerify {
		if err := verify(dev, mapper, k, shadow); err != nil {
			return out, fmt.Errorf("sim: functional verification failed: %w", err)
		}
		out.Verified = true
	}
	return out, nil
}

// RunAll executes scenarios on a bounded worker pool (workers <= 0 uses
// GOMAXPROCS) and returns the outcomes in scenario order. Each scenario
// builds its own device (and its own fault injector), so runs are
// independent and the results are identical to running serially. A
// panicking scenario fails only its own row: the pool converts the panic
// into an error, and the returned error names the scenario.
func RunAll(scs []Scenario, workers int) ([]Outcome, error) {
	return RunAllCtx(context.Background(), scs, workers)
}

// RunAllCtx is RunAll with cancellation: once ctx is done no further
// scenario starts, and the sweep returns the context's error. Scenarios
// already in flight complete first (the cancellation boundary is the
// scenario), so a server-side timeout or client disconnect reclaims the
// pool instead of abandoning goroutines mid-simulation.
func RunAllCtx(ctx context.Context, scs []Scenario, workers int) ([]Outcome, error) {
	outs, err := engine.MapCtx(ctx, workers, len(scs), func(i int) (Outcome, error) { return Run(scs[i]) })
	if err != nil {
		var pe *engine.PanicError
		if errors.As(err, &pe) && pe.Index >= 0 && pe.Index < len(scs) {
			return nil, fmt.Errorf("sim: scenario %d (%s): %w", pe.Index, scs[pe.Index].Label(), err)
		}
		return nil, err
	}
	return outs, nil
}

// scratch is the per-run allocation set a sweep recycles: the device's
// page-slot backing and the seed/verify shadow image. RunKernel checks one
// out per run and returns it when the run (including verification) is done;
// sync.Pool keeps reuse per-worker-safe at any sweep width.
type scratch struct {
	pages  rdram.PagePool
	shadow map[int64]uint64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// seed fills every stream element with a deterministic value derived from
// Seed, through the mapper, and returns the shadow image. The draw order —
// one rng draw per previously unseen address, in stream then element order
// — is part of the pinned golden results and must never change.
func seed(dev *rdram.Device, m *addrmap.Mapper, k *stream.Kernel, s int64, scr *scratch) map[int64]uint64 {
	rng := rand.New(rand.NewSource(s + 1))
	n := 0
	for _, st := range k.Streams {
		n += st.Length
	}
	shadow := scr.shadow
	if shadow == nil {
		shadow = make(map[int64]uint64, n)
		scr.shadow = shadow
	} else {
		clear(shadow)
	}
	for _, st := range k.Streams {
		for i := 0; i < st.Length; i++ {
			addr := st.Addr(i)
			if _, done := shadow[addr]; done {
				continue
			}
			// Keep magnitudes small so float arithmetic is exact and the
			// comparison is bit-precise.
			v := math.Float64bits(float64(rng.Intn(1024)) / 8)
			loc := m.Map(addr)
			dev.PokeWord(loc.Bank, loc.Row, loc.Col, loc.Word, v)
			shadow[addr] = v
		}
	}
	return shadow
}

// verify replays the kernel over the shadow and compares every touched
// address with the device contents.
func verify(dev *rdram.Device, m *addrmap.Mapper, k *stream.Kernel, shadow map[int64]uint64) error {
	k.Replay(
		func(addr int64) uint64 { return shadow[addr] },
		func(addr int64, v uint64) { shadow[addr] = v },
	)
	for addr, want := range shadow {
		loc := m.Map(addr)
		if got := dev.PeekWord(loc.Bank, loc.Row, loc.Col, loc.Word); got != want {
			return fmt.Errorf("address %d: device %#x, golden %#x", addr, got, want)
		}
	}
	return nil
}
