package sim

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/tracegen"
	"rdramstream/internal/workload"
)

func kvProgram(t *testing.T) *tracegen.Program {
	t.Helper()
	p, err := tracegen.ParseProgram("llm-kvcache:n=4096,ctxrows=16", 7)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTraceScenarioRuns(t *testing.T) {
	sc := Scenario{
		Workload: &tracegen.Spec{Program: kvProgram(t)},
		Scheme:   addrmap.PI, Mode: SMC, FIFODepth: 32,
	}
	out, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Error("trace run not verified")
	}
	if out.Cycles <= 0 || out.UsefulWords != 4096 {
		t.Errorf("outcome = %+v", out.Result)
	}
	// Identical scenario, identical outcome — trace runs are pure.
	again, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(out)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Error("two runs of the same trace scenario diverge")
	}
}

// A program scenario and a scenario carrying the program's materialized
// accesses must produce identical outcomes — the service's POST /v1/trace
// path relies on it.
func TestTraceProgramMatchesMaterialized(t *testing.T) {
	prog := kvProgram(t)
	accs, err := prog.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := Scenario{Scheme: addrmap.PI, Mode: SMC, FIFODepth: 32}
	byProg := base
	byProg.Workload = &tracegen.Spec{Program: prog}
	byAccs := base
	byAccs.Workload = &tracegen.Spec{Accesses: accs}
	o1, err := Run(byProg)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Run(byAccs)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(o1)
	b, _ := json.Marshal(o2)
	if string(a) != string(b) {
		t.Errorf("program and materialized outcomes diverge:\n  %s\n  %s", a, b)
	}
}

func TestTraceControllersDiffer(t *testing.T) {
	// The llm-kvcache trace is the headline: SMC reordering must beat
	// natural order under PI, visibly.
	spec := &tracegen.Spec{Program: kvProgram(t)}
	nat, err := Run(Scenario{Workload: spec, Scheme: addrmap.PI, Mode: NaturalOrder})
	if err != nil {
		t.Fatal(err)
	}
	smc, err := Run(Scenario{Workload: spec, Scheme: addrmap.PI, Mode: SMC, FIFODepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if smc.PercentPeak <= nat.PercentPeak {
		t.Errorf("SMC %.1f%% does not beat natural %.1f%% on the KV-cache trace", smc.PercentPeak, nat.PercentPeak)
	}
}

func TestTraceScenarioValidate(t *testing.T) {
	spec := &tracegen.Spec{Program: kvProgram(t)}
	mutex := Scenario{KernelName: "daxpy", N: 64, Workload: spec, Mode: SMC}
	if err := mutex.Validate(); !errors.Is(err, ErrTraceScenario) {
		t.Errorf("kernel+workload Validate = %v, want ErrTraceScenario", err)
	}
	badSpec := Scenario{Workload: &tracegen.Spec{}, Mode: SMC}
	if err := badSpec.Validate(); !errors.Is(err, ErrTraceScenario) {
		t.Errorf("empty spec Validate = %v, want ErrTraceScenario", err)
	}
	conv := Scenario{Workload: spec, Controller: "conventional"}
	if err := conv.Validate(); !errors.Is(err, ErrTraceController) {
		t.Errorf("conventional Validate = %v, want ErrTraceController", err)
	}
	if _, err := Run(mutex); err == nil {
		t.Error("Run accepted a kernel+workload scenario")
	}
}

// Canonicalization collapses a program and its expansion to the same
// digest-only spec and scrubs every kernel-only field, so the result
// cache and the fabric's sharding treat them as one scenario.
func TestTraceCanonicalCollapses(t *testing.T) {
	prog := kvProgram(t)
	accs, err := prog.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := Scenario{Scheme: addrmap.PI, Mode: SMC, FIFODepth: 32}
	byProg := base
	byProg.Workload = &tracegen.Spec{Program: prog}
	byProg.Seed = 99 // kernel-only; must not split the cache key
	byAccs := base
	byAccs.Workload = &tracegen.Spec{Accesses: accs}
	c1, err := byProg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := byAccs.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("canonical forms differ:\n  %+v\n  %+v", c1, c2)
	}
	if c1.Workload == nil || c1.Workload.Digest == "" || c1.Workload.Program != nil || c1.Workload.Accesses != nil {
		t.Errorf("canonical workload not digest-only: %+v", c1.Workload)
	}
	if c1.KernelName != "" || c1.N != 0 || c1.Seed != 0 {
		t.Errorf("canonical trace scenario keeps kernel fields: %+v", c1)
	}
	// A different trace keeps a different key.
	other := base
	otherProg, err := tracegen.ParseProgram("strided:n=4096", 7)
	if err != nil {
		t.Fatal(err)
	}
	other.Workload = &tracegen.Spec{Program: otherProg}
	c3, err := other.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c3.Workload.Digest == c1.Workload.Digest {
		t.Error("different traces canonicalized to the same digest")
	}
}

func TestTraceLabel(t *testing.T) {
	sc := Scenario{Workload: &tracegen.Spec{Program: kvProgram(t)}, Mode: SMC}
	if got := sc.Label(); got == "" || got == sc.Mode.String() {
		t.Errorf("label = %q", got)
	}
	var buf []workload.TraceAccess
	buf = append(buf, workload.TraceAccess{Addr: 0})
	anon := Scenario{Workload: &tracegen.Spec{Accesses: buf}, Mode: SMC}
	if got := anon.Label(); got == "" {
		t.Error("anonymous trace scenario has no label")
	}
}
