package trace

import (
	"math/rand"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/natorder"
	"rdramstream/internal/rdram"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
)

// runTraced executes a kernel through the given controller and returns the
// recorded events.
func runTraced(t *testing.T, cfg rdram.Config, scheme addrmap.Scheme, useSMC bool, k *stream.Kernel) []rdram.TraceEvent {
	t.Helper()
	dev := rdram.NewDevice(cfg)
	var rec rdram.Recorder
	dev.Trace = rec.Hook()
	var err error
	if useSMC {
		_, err = smc.Run(dev, k, smc.Config{Scheme: scheme, LineWords: 4, FIFODepth: 32})
	} else {
		_, err = natorder.Run(dev, k, natorder.Config{Scheme: scheme, LineWords: 4})
	}
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events
}

func TestSimulatorTracesObeyProtocol(t *testing.T) {
	cfg := rdram.DefaultConfig()
	for _, f := range stream.Benchmarks {
		for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
			for _, useSMC := range []bool{false, true} {
				bases := stream.MustLayout(scheme, cfg.Geometry, 4, f.Footprints(256, 1), stream.Staggered)
				k := f.Make(bases, 256, 1)
				events := runTraced(t, cfg, scheme, useSMC, k)
				if len(events) == 0 {
					t.Fatalf("%s/%v smc=%v: empty trace", f.Name, scheme, useSMC)
				}
				viols := NewChecker(cfg).Check(events)
				for _, v := range viols {
					t.Errorf("%s/%v smc=%v: %v", f.Name, scheme, useSMC, v)
				}
			}
		}
	}
}

func TestChannelTracesObeyProtocol(t *testing.T) {
	cfg := rdram.DefaultConfig()
	cfg.Geometry.Banks = 32
	cfg.Geometry.DevicesOnChannel = 4
	bases := stream.MustLayout(addrmap.CLI, cfg.Geometry, 4, []int64{512, 512, 512}, stream.Staggered)
	k := stream.Sum(bases[0], bases[1], bases[2], 512, 1)
	dev := rdram.NewDevice(cfg)
	var rec rdram.Recorder
	dev.Trace = rec.Hook()
	if _, err := smc.Run(dev, k, smc.Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 64}); err != nil {
		t.Fatal(err)
	}
	for _, v := range NewChecker(cfg).Check(rec.Events) {
		t.Error(v)
	}
}

func TestAlignedConflictHeavyTracesObeyProtocol(t *testing.T) {
	cfg := rdram.DefaultConfig()
	for _, scheme := range []addrmap.Scheme{addrmap.CLI, addrmap.PI} {
		f, _ := stream.FactoryByName("vaxpy")
		bases := stream.MustLayout(scheme, cfg.Geometry, 4, f.Footprints(512, 3), stream.Aligned)
		k := f.Make(bases, 512, 3)
		events := runTraced(t, cfg, scheme, true, k)
		for _, v := range NewChecker(cfg).Check(events) {
			t.Errorf("%v: %v", scheme, v)
		}
	}
}

func TestRandomDeviceWorkloadObeysProtocol(t *testing.T) {
	cfg := rdram.DefaultConfig()
	dev := rdram.NewDevice(cfg)
	var rec rdram.Recorder
	dev.Trace = rec.Hook()
	rng := rand.New(rand.NewSource(321))
	now := int64(0)
	for i := 0; i < 3000; i++ {
		res := dev.Do(now, rdram.Request{
			Bank:          rng.Intn(8),
			Row:           rng.Intn(64),
			Col:           rng.Intn(64),
			Write:         rng.Intn(4) == 0,
			AutoPrecharge: rng.Intn(3) == 0,
		})
		if rng.Intn(5) == 0 {
			now = res.DataEnd
		}
	}
	viols := NewChecker(cfg).Check(rec.Events)
	if len(viols) > 0 {
		t.Fatalf("%d violations, first: %v", len(viols), viols[0])
	}
}

func TestCheckerFlagsViolations(t *testing.T) {
	cfg := rdram.DefaultConfig()
	c := NewChecker(cfg)
	mk := func(kind rdram.TraceKind, start int64, bank int) rdram.TraceEvent {
		return rdram.TraceEvent{Kind: kind, Start: start, End: start + 4, Bank: bank}
	}
	cases := []struct {
		name   string
		rule   string
		events []rdram.TraceEvent
	}{
		{"tRR same chip", "tRR", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0), mk(rdram.TraceActivate, 4, 1),
		}},
		{"tRC same bank", "tRC", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0),
			mk(rdram.TracePrecharge, 24, 0),
			mk(rdram.TraceActivate, 33, 0), // < tRC = 34 after the first ACT
		}},
		{"tRCD", "tRCD", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0), mk(rdram.TraceReadCol, 5, 0),
		}},
		{"tRAS", "tRAS", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0), mk(rdram.TracePrecharge, 10, 0),
		}},
		{"tRP", "tRP", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0),
			mk(rdram.TracePrecharge, 24, 0),
			mk(rdram.TraceActivate, 30, 0),
		}},
		{"col on closed bank", "col-on-closed", []rdram.TraceEvent{
			mk(rdram.TraceReadCol, 0, 0),
		}},
		{"act on open bank", "act-on-open", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0), mk(rdram.TraceActivate, 40, 0),
		}},
		{"data overlap", "data-bus-overlap", []rdram.TraceEvent{
			mk(rdram.TraceReadData, 0, 0), mk(rdram.TraceReadData, 2, 1),
		}},
		{"turnaround", "tRW", []rdram.TraceEvent{
			mk(rdram.TraceWriteData, 0, 0), mk(rdram.TraceReadData, 5, 1),
		}},
		{"pre on closed", "pre-on-closed", []rdram.TraceEvent{
			mk(rdram.TracePrecharge, 0, 0),
		}},
		{"row bus overlap", "row-bus-overlap", []rdram.TraceEvent{
			mk(rdram.TraceActivate, 0, 0), {Kind: rdram.TraceActivate, Start: 2, End: 6, Bank: 4},
		}},
	}
	for _, tc := range cases {
		viols := c.Check(tc.events)
		found := false
		for _, v := range viols {
			if v.Rule == tc.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: rule %q not flagged (got %v)", tc.name, tc.rule, viols)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "tRW", Detail: "x"}
	if !strings.Contains(v.String(), "tRW") {
		t.Error("bad violation string")
	}
}

func TestSummarize(t *testing.T) {
	cfg := rdram.DefaultConfig()
	f, _ := stream.FactoryByName("daxpy")
	bases := stream.MustLayout(addrmap.CLI, cfg.Geometry, 4, f.Footprints(256, 1), stream.Staggered)
	k := f.Make(bases, 256, 1)
	events := runTraced(t, cfg, addrmap.CLI, true, k)
	s := Summarize(events)
	if s.Cycles <= 0 || s.DataBusy <= 0 || s.DataBusUtil <= 0 || s.DataBusUtil > 1 {
		t.Errorf("bad summary: %+v", s)
	}
	// daxpy moves 256 elements x 3 streams / 2 words per packet packets.
	if s.ReadPackets+s.WritePackets != 384 {
		t.Errorf("packets = %d, want 384", s.ReadPackets+s.WritePackets)
	}
	if s.WritePackets != 128 {
		t.Errorf("write packets = %d, want 128", s.WritePackets)
	}
	if s.Turnarounds < 1 {
		t.Error("expected at least one bus turnaround")
	}
	if s.MeanBurstLen <= 1 {
		t.Errorf("mean burst %v, expected bursty schedule", s.MeanBurstLen)
	}
	// 384 packets over 2-packet lines = 192 line activations, plus a few
	// re-activations when another FIFO's burst conflicts on a bank between
	// the two packets of a line.
	if s.Activates < 192 || s.Activates > 220 {
		t.Errorf("activates = %d, want 192..220", s.Activates)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Cycles != 0 || s.DataBusUtil != 0 || s.MeanBurstLen != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}
