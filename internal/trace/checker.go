// Package trace analyzes recorded device traces: it validates that every
// packet sequence obeys the Direct RDRAM protocol rules of the paper's
// Figure 2 (an independent oracle for the simulators), and extracts
// utilization statistics from the same events.
//
// The checker is deliberately written against the *trace*, not the device
// implementation, so a scheduling bug that both produces and accepts an
// illegal schedule is still caught.
package trace

import (
	"fmt"
	"sort"

	"rdramstream/internal/rdram"
)

// Violation describes one protocol rule broken by a trace.
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Checker validates traces against a timing/geometry configuration.
type Checker struct {
	T rdram.Timing
	G rdram.Geometry
}

// NewChecker builds a checker for the given device configuration.
func NewChecker(cfg rdram.Config) *Checker {
	return &Checker{T: cfg.Timing, G: cfg.Geometry}
}

// Check validates the events and returns every violation found (nil when
// the trace is clean). The rules enforced:
//
//   - ACT packets never overlap on the ROW bus, and COL-bus packets
//     (RD/WR) never overlap. Background PRER packets are exempt from bus
//     occupancy (see the device model's precharge-overlap note) but still
//     subject to bank-state rules.
//   - DATA packets never overlap.
//   - t_RR between consecutive ACT packets to the same chip.
//   - t_RC between consecutive ACT packets to the same bank.
//   - t_RAS between a bank's ACT and its next PRER.
//   - t_RP between a bank's PRER and its next ACT.
//   - t_RCD between a bank's ACT and its first subsequent COL packet.
//   - t_RW between the end of a write DATA packet and the start of the
//     next read DATA packet (shared-bus turnaround).
//   - every COL RD/WR targets a bank whose row was activated and not yet
//     precharged.
func (c *Checker) Check(events []rdram.TraceEvent) []Violation {
	evs := make([]rdram.TraceEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })

	var out []Violation
	add := func(rule, format string, args ...any) {
		out = append(out, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	type bankView struct {
		open      bool
		lastAct   int64
		lastPre   int64
		everActed bool
		everPre   bool
	}
	banks := make([]bankView, c.G.Banks)
	lastChipAct := make([]int64, c.G.Devices())
	chipActed := make([]bool, c.G.Devices())

	var lastActEnd, lastColEnd, lastDataEnd int64 = -1, -1, -1
	var lastWriteDataEnd int64 = -1

	chipOf := func(bank int) int { return bank / c.G.BanksPerDevice() }

	for _, ev := range evs {
		switch ev.Kind {
		case rdram.TraceActivate:
			if ev.Start < lastActEnd {
				add("row-bus-overlap", "ACT at %d overlaps previous ACT ending %d", ev.Start, lastActEnd)
			}
			lastActEnd = ev.End
			chip := chipOf(ev.Bank)
			if chipActed[chip] && ev.Start < lastChipAct[chip]+int64(c.T.TRR) {
				add("tRR", "ACT bank %d at %d within tRR of chip %d's ACT at %d", ev.Bank, ev.Start, chip, lastChipAct[chip])
			}
			lastChipAct[chip] = ev.Start
			chipActed[chip] = true

			b := &banks[ev.Bank]
			if b.everActed && ev.Start < b.lastAct+int64(c.T.TRC) {
				add("tRC", "ACT bank %d at %d within tRC of its ACT at %d", ev.Bank, ev.Start, b.lastAct)
			}
			if b.open {
				add("act-on-open", "ACT bank %d at %d while row still open", ev.Bank, ev.Start)
			}
			if b.everPre && ev.Start < b.lastPre+int64(c.T.TRP) {
				add("tRP", "ACT bank %d at %d within tRP of PRER at %d", ev.Bank, ev.Start, b.lastPre)
			}
			b.open = true
			b.lastAct = ev.Start
			b.everActed = true

		case rdram.TracePrecharge:
			b := &banks[ev.Bank]
			if !b.open {
				add("pre-on-closed", "PRER bank %d at %d while closed", ev.Bank, ev.Start)
			}
			if b.everActed && ev.Start < b.lastAct+int64(c.T.TRAS()) {
				add("tRAS", "PRER bank %d at %d within tRAS of ACT at %d", ev.Bank, ev.Start, b.lastAct)
			}
			b.open = false
			b.lastPre = ev.Start
			b.everPre = true

		case rdram.TraceReadCol, rdram.TraceWriteCol:
			if ev.Start < lastColEnd {
				add("col-bus-overlap", "COL at %d overlaps previous ending %d", ev.Start, lastColEnd)
			}
			lastColEnd = ev.End
			b := &banks[ev.Bank]
			if !b.open {
				add("col-on-closed", "COL bank %d at %d while row closed", ev.Bank, ev.Start)
			}
			if ev.Start < b.lastAct+int64(c.T.TRCD) {
				add("tRCD", "COL bank %d at %d within tRCD of ACT at %d", ev.Bank, ev.Start, b.lastAct)
			}

		case rdram.TraceRetire:
			// Informational: retire cost is folded into t_RW.

		case rdram.TraceReadData:
			if ev.Start < lastDataEnd {
				add("data-bus-overlap", "read DATA at %d overlaps previous ending %d", ev.Start, lastDataEnd)
			}
			if lastWriteDataEnd >= 0 && ev.Start < lastWriteDataEnd+int64(c.T.TRW) {
				add("tRW", "read DATA at %d within tRW of write DATA end %d", ev.Start, lastWriteDataEnd)
			}
			lastDataEnd = ev.End

		case rdram.TraceWriteData:
			if ev.Start < lastDataEnd {
				add("data-bus-overlap", "write DATA at %d overlaps previous ending %d", ev.Start, lastDataEnd)
			}
			lastDataEnd = ev.End
			lastWriteDataEnd = ev.End
		}
	}
	return out
}

// Summary aggregates bus occupancy and protocol activity from a trace.
type Summary struct {
	Cycles       int64 // end of the last packet
	RowBusy      int64 // cycles of ACT packets (background PRERs excluded)
	ColBusy      int64 // cycles of RD/WR packets
	DataBusy     int64 // cycles of DATA packets
	Activates    int64
	Precharges   int64
	ReadPackets  int64
	WritePackets int64
	Turnarounds  int64   // write->read direction changes on the DATA bus
	LargestGap   int64   // longest idle stretch on the DATA bus
	DataBusUtil  float64 // DataBusy / Cycles
	MeanBurstLen float64 // mean consecutive same-direction DATA packets
}

// Summarize computes the summary for a trace.
func Summarize(events []rdram.TraceEvent) Summary {
	evs := make([]rdram.TraceEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })

	var s Summary
	var lastDataEnd int64 = -1
	lastWasWrite := false
	started := false
	var bursts, burstLen int64
	var totalBurstLen int64
	for _, ev := range evs {
		if ev.End > s.Cycles {
			s.Cycles = ev.End
		}
		switch ev.Kind {
		case rdram.TraceActivate:
			s.Activates++
			s.RowBusy += ev.End - ev.Start
		case rdram.TracePrecharge:
			s.Precharges++
		case rdram.TraceReadCol, rdram.TraceWriteCol:
			s.ColBusy += ev.End - ev.Start
		case rdram.TraceReadData, rdram.TraceWriteData:
			isWrite := ev.Kind == rdram.TraceWriteData
			if isWrite {
				s.WritePackets++
			} else {
				s.ReadPackets++
			}
			s.DataBusy += ev.End - ev.Start
			if lastDataEnd >= 0 {
				if gap := ev.Start - lastDataEnd; gap > s.LargestGap {
					s.LargestGap = gap
				}
			}
			if started && lastWasWrite && !isWrite {
				s.Turnarounds++
			}
			if started && isWrite == lastWasWrite {
				burstLen++
			} else {
				if started {
					bursts++
					totalBurstLen += burstLen
				}
				burstLen = 1
			}
			lastWasWrite = isWrite
			started = true
			lastDataEnd = ev.End
		}
	}
	if started {
		bursts++
		totalBurstLen += burstLen
	}
	if s.Cycles > 0 {
		s.DataBusUtil = float64(s.DataBusy) / float64(s.Cycles)
	}
	if bursts > 0 {
		s.MeanBurstLen = float64(totalBurstLen) / float64(bursts)
	}
	return s
}
