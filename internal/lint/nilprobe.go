package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// NilProbe enforces the telemetry layer's nil-safety contract: the
// simulators instrument unconditionally and an uninstrumented run passes
// nil probes everywhere, so every exported pointer-receiver method on a
// probe/observer type must begin with a nil-receiver guard. A method that
// skips the guard turns "telemetry off" into a crash on the hot path.
// The syntactic check is backstopped at runtime by
// internal/telemetry's nil-receiver reflection test.
var NilProbe = &Analyzer{
	Name: "nilprobe",
	Doc:  "require nil-receiver guards on exported telemetry probe methods",
	Run:  runNilProbe,
}

// probeTypeNames are the non-"*Probe" telemetry types bound by the
// contract (package telemetry documents all of them as nil-safe).
var probeTypeNames = map[string]bool{
	"Collector":   true,
	"EventBuffer": true,
	"Series":      true,
	"Histogram":   true,
}

// isProbeType reports whether a type name in a telemetry package is
// covered by the nil-safety contract.
func isProbeType(name string) bool {
	return strings.HasSuffix(name, "Probe") || probeTypeNames[name]
}

func runNilProbe(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		if p.Types.Name() != "telemetry" {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				recvName, typeName, isPtr := receiver(fd)
				if !isPtr || !isProbeType(typeName) {
					continue
				}
				if recvName == "" || recvName == "_" {
					diags = append(diags, Diagnostic{
						Pos:     p.pos(fd),
						Message: fmt.Sprintf("method (*%s).%s has an unnamed receiver and cannot guard against nil; name it and add the guard", typeName, fd.Name.Name),
					})
					continue
				}
				if !beginsWithNilGuard(fd.Body, recvName) {
					diags = append(diags, Diagnostic{
						Pos: p.pos(fd),
						Message: fmt.Sprintf("exported method (*%s).%s must begin with `if %s == nil { return … }` — probes are documented nil-safe and the simulators call them unconditionally",
							typeName, fd.Name.Name, recvName),
					})
				}
			}
		}
	}
	return diags
}

// receiver extracts the receiver name, base type name, and pointer-ness.
func receiver(fd *ast.FuncDecl) (name, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", "", false
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver
		base = idx.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if len(field.Names) == 1 {
		name = field.Names[0].Name
	}
	return name, id.Name, true
}

// beginsWithNilGuard reports whether the body's first statement is an if
// whose condition tests the receiver against nil (alone or as an ||
// operand) and whose block ends in a return.
func beginsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condTestsNil(ifStmt.Cond, recvName) {
		return false
	}
	if len(ifStmt.Body.List) == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// condTestsNil reports whether cond contains `recv == nil` at the top
// level of an || chain.
func condTestsNil(cond ast.Expr, recvName string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condTestsNil(e.X, recvName)
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condTestsNil(e.X, recvName) || condTestsNil(e.Y, recvName)
		}
		if e.Op != token.EQL {
			return false
		}
		return isIdentNamed(e.X, recvName) && isNil(e.Y) || isNil(e.X) && isIdentNamed(e.Y, recvName)
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
