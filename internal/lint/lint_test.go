package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSelect(t *testing.T) {
	cases := []struct {
		name    string
		arg     string
		want    []string // analyzer names, in order
		wantErr string
	}{
		{name: "empty selects the full suite", arg: "", want: []string{
			"determinism", "maprange", "stallcause", "nilprobe", "wiretag",
			"canoncheck", "lockcheck", "ctxcheck", "hotalloc"}},
		{name: "single analyzer", arg: "wiretag", want: []string{"wiretag"}},
		{name: "comma list preserves order", arg: "nilprobe,determinism", want: []string{"nilprobe", "determinism"}},
		{name: "spaces tolerated", arg: " maprange , stallcause ", want: []string{"maprange", "stallcause"}},
		{name: "unknown analyzer rejected", arg: "gofmt", wantErr: `unknown analyzer "gofmt"`},
		{name: "only commas selects nothing", arg: ",,", wantErr: "selected no analyzers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Select(tc.arg)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Select(%q) error = %v, want containing %q", tc.arg, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Select(%q): %v", tc.arg, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("Select(%q) returned %d analyzers, want %d", tc.arg, len(got), len(tc.want))
			}
			for i, a := range got {
				if a.Name != tc.want[i] {
					t.Errorf("Select(%q)[%d] = %q, want %q", tc.arg, i, a.Name, tc.want[i])
				}
			}
		})
	}
}

func TestRunSortsAndStampsDiagnostics(t *testing.T) {
	pkgs := fixturePkgs(t, "determinism", "maprange")
	diags, stale := Run(pkgs, []*Analyzer{MapRange, Determinism}, nil)
	if len(stale) != 0 {
		t.Errorf("nil allowlist produced %d stale entries", len(stale))
	}
	if len(diags) == 0 {
		t.Fatal("expected findings from the fixture packages")
	}
	for i, d := range diags {
		if d.Analyzer == "" {
			t.Errorf("diagnostic %d has empty Analyzer", i)
		}
		if i == 0 {
			continue
		}
		prev := diags[i-1]
		if prev.Pos.Filename > d.Pos.Filename ||
			(prev.Pos.Filename == d.Pos.Filename && prev.Pos.Line > d.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", prev, d)
		}
	}
}

func TestParseAllowlist(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		entries int
		wantErr string
	}{
		{
			name:    "comments and blanks ignored",
			src:     "# header\n\nwiretag internal/sim/sim.go # pinned elsewhere\n",
			entries: 1,
		},
		{
			name:    "message substring captured",
			src:     "maprange cmd/rdprof/main.go Stalls # sorted by value just below\n",
			entries: 1,
		},
		{
			name:    "justification required",
			src:     "wiretag internal/sim/sim.go\n",
			wantErr: "needs a '# justification'",
		},
		{
			name:    "empty justification rejected",
			src:     "wiretag internal/sim/sim.go #   \n",
			wantErr: "needs a '# justification'",
		},
		{
			name:    "unknown analyzer rejected",
			src:     "speling internal/sim/sim.go # oops\n",
			wantErr: `unknown analyzer "speling"`,
		},
		{
			name:    "path required",
			src:     "wiretag # why\n",
			wantErr: "at least 'analyzer path-suffix'",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			al, err := ParseAllowlist(tc.src, "test.allow")
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(al.entries) != tc.entries {
				t.Fatalf("parsed %d entries, want %d", len(al.entries), tc.entries)
			}
		})
	}
}

func TestAllowlistSuppressesAndReportsStale(t *testing.T) {
	pkgs := fixturePkgs(t, "determinism")
	src := strings.Join([]string{
		`determinism testdata/src/determinism/determinism.go time.Now # fixture: wall clock is the point`,
		`determinism testdata/src/determinism/determinism.go os.Getenv # fixture: env read is the point`,
		`wiretag internal/sim/sim.go # never matches anything here`,
	}, "\n")
	al, err := ParseAllowlist(src, "test.allow")
	if err != nil {
		t.Fatal(err)
	}
	diags, stale := Run(pkgs, []*Analyzer{Determinism}, al)
	for _, d := range diags {
		if strings.Contains(d.Message, "time.Now") || strings.Contains(d.Message, "os.Getenv") {
			t.Errorf("allowlisted finding survived: %s", d)
		}
	}
	if len(diags) == 0 {
		t.Error("the rand finding should not be suppressed")
	}
	if len(stale) != 1 || stale[0].Analyzer != "wiretag" {
		t.Errorf("stale = %+v, want exactly the wiretag entry", stale)
	}
}

func TestExpandSkipsTestdataUnlessTargeted(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	normal, err := Expand(root, root, []string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range normal {
		if strings.Contains(d, "testdata") {
			t.Errorf("module walk included fixture dir %s", d)
		}
	}
	fixtures, err := Expand(root, root, []string{"./internal/lint/testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) != len(fixtureDirs) {
		t.Errorf("testdata walk found %d dirs %v, want %d", len(fixtures), fixtures, len(fixtureDirs))
	}
}

// TestShippedTreeClean is satellite enforcement: the full module must
// pass the suite with the checked-in allowlist, and that allowlist must
// carry no stale entries. Skipped under -short (it type-checks the whole
// module).
func TestShippedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check; run without -short")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := Expand(root, root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modPath, dirs)
	if err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(filepath.Join(root, "rdlint.allow"), true)
	if err != nil {
		t.Fatal(err)
	}
	diags, stale := Run(pkgs, All(), allow)
	for _, d := range diags {
		t.Errorf("shipped tree finding: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale allowlist entry (line %d): %s %s # %s", e.Line, e.Analyzer, e.Path, e.Justification)
	}
}
