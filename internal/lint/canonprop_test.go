package lint

// Property test for the canoncheck contract: the analyzer exists to
// catch the NEXT field someone adds to a cache-key root without keying
// it. Instead of trusting the fixture to stay representative, this test
// manufactures the event — a synthetic module with a fully-keyed
// Scenario is clean, and inserting one exported field (with any name)
// produces exactly one finding naming that field.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// synthScenario is a minimal sim.Scenario stand-in: a canon root whose
// Canonical method consumes every field, with a %s hole where the test
// inserts the forgotten field.
const synthScenario = `package sim

// Scenario is the synthetic cache-key root.
// rdlint:canonroot
type Scenario struct {
	Kernel string
	N      int
%s}

// Canonical consumes Kernel and N; whatever the test inserts above is
// deliberately missed.
func (sc Scenario) Canonical() Scenario {
	if sc.Kernel == "" {
		sc.Kernel = "copy"
	}
	if sc.N == 0 {
		sc.N = 1024
	}
	return sc
}
`

// loadSynth type-checks the synthetic module with the given struct-body
// insertion and returns canoncheck's findings on it.
func loadSynth(t *testing.T, insert string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	src := fmt.Sprintf(synthScenario, insert)
	if err := os.WriteFile(filepath.Join(dir, "sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "synthmod", []string{"."})
	if err != nil {
		t.Fatalf("loading synthetic module: %v", err)
	}
	diags, _ := Run(pkgs, []*Analyzer{CanonCheck}, nil)
	return diags
}

func TestCanonCheckCatchesInsertedField(t *testing.T) {
	if diags := loadSynth(t, ""); len(diags) != 0 {
		t.Fatalf("fully-keyed synthetic Scenario should be clean, got %v", diags)
	}
	// Any exported field name must trip the analyzer; a few shapes stand
	// in for "whatever the next contributor calls it".
	for _, field := range []struct{ name, typ string }{
		{"Stride", "int64"},
		{"SkipVerify", "bool"},
		{"RefreshNS", "float64"},
		{"Labels", "[]string"},
	} {
		t.Run(field.name, func(t *testing.T) {
			insert := fmt.Sprintf("\t%s %s\n", field.name, field.typ)
			diags := loadSynth(t, insert)
			if len(diags) != 1 {
				t.Fatalf("inserted field %s: want exactly 1 finding, got %d: %v", field.name, len(diags), diags)
			}
			want := "Scenario." + field.name
			if !strings.Contains(diags[0].Message, want) {
				t.Fatalf("finding %q does not name %s", diags[0].Message, want)
			}
		})
	}
	// The audited opt-out must silence it.
	if diags := loadSynth(t, "\t// rdlint:nocanon\n\tDebug bool\n"); len(diags) != 0 {
		t.Fatalf("rdlint:nocanon field should be exempt, got %v", diags)
	}
	// Unexported fields are not part of the key domain.
	if diags := loadSynth(t, "\ttrace []byte\n"); len(diags) != 0 {
		t.Fatalf("unexported field should be exempt, got %v", diags)
	}
}
