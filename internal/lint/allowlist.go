package lint

import (
	"fmt"
	"os"
	"strings"
)

// AllowEntry is one suppression. A diagnostic is covered when the
// analyzer matches, the diagnostic's file path ends with Path, and the
// message contains Match (an empty Match matches any message). Every
// entry must carry a justification — the allowlist is the audited escape
// hatch, not a mute button.
type AllowEntry struct {
	Analyzer string
	// Path is a file-path suffix, e.g. "internal/fault/fault.go".
	Path string
	// Match is a substring of the diagnostic message; empty matches all.
	Match string
	// Justification is the required human explanation.
	Justification string
	// Line is the entry's own line number in the allowlist file.
	Line int

	used bool
}

// Allowlist is a parsed allowlist file. The zero value and nil both mean
// "suppress nothing".
type Allowlist struct {
	entries []*AllowEntry
}

// ParseAllowlist parses the rdlint allowlist format: one entry per line,
//
//	analyzer path-suffix [message-substring] # justification
//
// Blank lines and lines starting with # are ignored. An entry without a
// non-empty justification after # is an error: suppressions must say why.
func ParseAllowlist(src, name string) (*Allowlist, error) {
	al := &Allowlist{}
	for i, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		body, just, found := strings.Cut(trimmed, "#")
		if !found || strings.TrimSpace(just) == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs a '# justification' comment", name, i+1)
		}
		fields := strings.Fields(body)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs at least 'analyzer path-suffix'", name, i+1)
		}
		known := false
		for _, a := range All() {
			if a.Name == fields[0] {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q in allowlist", name, i+1, fields[0])
		}
		al.entries = append(al.entries, &AllowEntry{
			Analyzer:      fields[0],
			Path:          fields[1],
			Match:         strings.Join(fields[2:], " "),
			Justification: strings.TrimSpace(just),
			Line:          i + 1,
		})
	}
	return al, nil
}

// LoadAllowlist reads and parses an allowlist file. A missing file is an
// empty allowlist only when optional is set (the default path may simply
// not exist); an explicitly named file must exist.
func LoadAllowlist(path string, optional bool) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if optional && os.IsNotExist(err) {
			return &Allowlist{}, nil
		}
		return nil, err
	}
	return ParseAllowlist(string(data), path)
}

// covers reports whether d is suppressed, marking the matching entry used.
func (al *Allowlist) covers(d Diagnostic) bool {
	if al == nil {
		return false
	}
	for _, e := range al.entries {
		if e.Analyzer != d.Analyzer {
			continue
		}
		if !strings.HasSuffix(d.Pos.Filename, e.Path) {
			continue
		}
		if e.Match != "" && !strings.Contains(d.Message, e.Match) {
			continue
		}
		e.used = true
		return true
	}
	return false
}

// stale returns the entries that suppressed nothing this run.
func (al *Allowlist) stale() []AllowEntry {
	if al == nil {
		return nil
	}
	var out []AllowEntry
	for _, e := range al.entries {
		if !e.used {
			out = append(out, *e)
		}
	}
	return out
}
