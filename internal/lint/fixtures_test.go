package lint

// Test harness for the analyzer fixtures. Expected findings are declared
// in the fixture sources themselves as trailing `// want "substring"`
// comments; each analyzer test loads its fixture packages and requires a
// one-to-one match between diagnostics and markers — same file, same
// line, message containing the quoted substring.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureDirs lists every fixture package, loaded together in one Load
// call so the standard library is type-checked once for the whole suite.
var fixtureDirs = []string{
	"determinism",
	"determinism/clock",
	"determinism/engine",
	"determinism/obs",
	"determinism/shard",
	"determinism/smc",
	"determinism/tracegen",
	"maprange",
	"stallcause",
	"nilprobe",
	"wiretag",
	"canoncheck",
	"lockcheck",
	"ctxcheck",
	"hotalloc",
}

var fixtures struct {
	once sync.Once
	pkgs map[string]*Package // fixture-relative dir -> package
	err  error
}

// fixturePkgs returns the named fixture packages (paths relative to
// internal/lint/testdata/src).
func fixturePkgs(t *testing.T, names ...string) []*Package {
	t.Helper()
	fixtures.once.Do(func() {
		root, modPath, err := FindModule(".")
		if err != nil {
			fixtures.err = err
			return
		}
		dirs := make([]string, len(fixtureDirs))
		for i, n := range fixtureDirs {
			dirs[i] = filepath.Join("internal", "lint", "testdata", "src", filepath.FromSlash(n))
		}
		pkgs, err := Load(root, modPath, dirs)
		if err != nil {
			fixtures.err = err
			return
		}
		fixtures.pkgs = make(map[string]*Package, len(pkgs))
		base := filepath.Join(root, "internal", "lint", "testdata", "src")
		for _, p := range pkgs {
			rel, err := filepath.Rel(base, p.Dir)
			if err != nil {
				fixtures.err = err
				return
			}
			fixtures.pkgs[filepath.ToSlash(rel)] = p
		}
	})
	if fixtures.err != nil {
		t.Fatalf("loading fixture packages: %v", fixtures.err)
	}
	out := make([]*Package, 0, len(names))
	for _, n := range names {
		p, ok := fixtures.pkgs[n]
		if !ok {
			t.Fatalf("no fixture package %q (have %v)", n, fixtureDirs)
		}
		out = append(out, p)
	}
	return out
}

// marker is one expected finding declared in fixture source.
type marker struct {
	file   string // base name
	line   int
	substr string
	seen   bool
}

var wantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

// wantMarkers scans the fixture packages' comments for want markers.
func wantMarkers(t *testing.T, pkgs []*Package) []*marker {
	t.Helper()
	var out []*marker
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					substr, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("bad want marker %q: %v", c.Text, err)
					}
					pos := p.Fset.Position(c.Pos())
					out = append(out, &marker{
						file:   filepath.Base(pos.Filename),
						line:   pos.Line,
						substr: substr,
					})
				}
			}
		}
	}
	return out
}

// fixtureCase is one row in an analyzer's test table.
type fixtureCase struct {
	name string
	dirs []string // fixture packages to load, relative to testdata/src
}

// runFixtureCases checks, per case, that the analyzer's diagnostics match
// the want markers in the named fixture packages exactly.
func runFixtureCases(t *testing.T, a *Analyzer, cases []fixtureCase) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := fixturePkgs(t, tc.dirs...)
			diags, _ := Run(pkgs, []*Analyzer{a}, nil)
			want := wantMarkers(t, pkgs)
			for _, d := range diags {
				if d.Analyzer != a.Name {
					t.Errorf("diagnostic has analyzer %q, want %q", d.Analyzer, a.Name)
				}
				matched := false
				for _, w := range want {
					if w.seen || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
						continue
					}
					if !strings.Contains(d.Message, w.substr) {
						t.Errorf("%s: message %q does not contain %q", d, d.Message, w.substr)
					}
					w.seen = true
					matched = true
					break
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range want {
				if !w.seen {
					t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
				}
			}
		})
	}
}
