package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the `// guarded by <mu>` field annotations: a
// guarded field may only be read or written while the named sibling
// mutex is held on every path reaching the access. The analysis is a
// CFG-lite abstract interpretation over each function body — the fact
// is the set of (receiver object, mutex field) pairs currently held;
// branches are walked separately and merge by intersection ("held on
// all paths"), `defer mu.Unlock()` holds to function end, and early
// returns terminate their path. Lock/unlock pairing is checked too:
// unlocking a mutex the path does not hold and re-locking one it does
// are both reported. Functions whose name ends in "Locked" follow the
// repo convention that the caller holds the locks and are skipped;
// composite-literal construction (`&Cache{entries: …}`) is not a field
// access, so constructors that fully initialize in the literal pass.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "require `guarded by <mu>` fields to be accessed only under their mutex, on all paths",
	Run:  runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockMode says how a mutex is held.
type lockMode uint8

const (
	heldWrite lockMode = 1 << iota // Lock
	heldRead                       // RLock
)

// lockKey names one mutex instance as far as the analysis can see: the
// leftmost identifier of the selector chain plus the mutex field.
type lockKey struct {
	base types.Object
	mu   *types.Var
}

// lockFacts is the abstract state: which mutexes the current path
// holds, and in what mode. nil *lockFacts means "unreachable".
type lockFacts struct {
	held map[lockKey]lockMode
}

func newLockFacts() *lockFacts { return &lockFacts{held: map[lockKey]lockMode{}} }

func (s *lockFacts) clone() *lockFacts {
	if s == nil {
		return nil
	}
	c := newLockFacts()
	for k, m := range s.held {
		c.held[k] = m
	}
	return c
}

// merge intersects two path states; a nil side (unreachable) yields the
// other unchanged.
func mergeFacts(a, b *lockFacts) *lockFacts {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newLockFacts()
	for k, ma := range a.held {
		if mb, ok := b.held[k]; ok {
			m := ma & mb
			if m == 0 {
				// Held for writing on one path, reading on the other:
				// only the weaker read guarantee survives.
				m = heldRead
			}
			out.held[k] = m
		}
	}
	return out
}

func runLockCheck(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	guards := make(map[*types.Var]*types.Var) // guarded field -> mutex field

	// Pass 1: collect and validate the annotations.
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				stAST, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range stAST.Fields.List {
					m := guardedByRe.FindStringSubmatch(fieldComment(field))
					if m == nil {
						continue
					}
					muName := m[1]
					mu := findSiblingMutex(p, stAST, muName)
					if mu == nil {
						diags = append(diags, Diagnostic{
							Pos:     p.pos(field),
							Message: fmt.Sprintf("`guarded by %s` names no sibling sync.Mutex/RWMutex field in %s", muName, ts.Name.Name),
						})
						continue
					}
					for _, name := range field.Names {
						if fv, ok := p.Info.Defs[name].(*types.Var); ok {
							guards[fv] = mu
						}
					}
				}
				return true
			})
		}
	}
	if len(guards) == 0 {
		return diags
	}

	// Pass 2: abstract-interpret every function body.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if strings.HasSuffix(fd.Name.Name, "Locked") {
					continue // repo convention: the caller holds the locks
				}
				c := &lockChecker{p: p, guards: guards, diags: &diags}
				c.stmts(fd.Body.List, newLockFacts())
			}
		}
	}
	return diags
}

// findSiblingMutex resolves a mutex field by name within the same
// struct declaration.
func findSiblingMutex(p *Package, stAST *ast.StructType, name string) *types.Var {
	for _, field := range stAST.Fields.List {
		for _, fn := range field.Names {
			if fn.Name != name {
				continue
			}
			fv, ok := p.Info.Defs[fn].(*types.Var)
			if ok && isMutexType(fv.Type()) {
				return fv
			}
			return nil
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockChecker walks one function body, threading lockFacts through.
type lockChecker struct {
	p      *Package
	guards map[*types.Var]*types.Var
	diags  *[]Diagnostic
}

// stmts walks a statement list; the returned state is the fall-through
// exit (nil if every path leaves by return/panic/branch).
func (c *lockChecker) stmts(list []ast.Stmt, st *lockFacts) *lockFacts {
	for _, s := range list {
		if st == nil {
			return nil // unreachable code: nothing sound to report
		}
		st = c.stmt(s, st)
	}
	return st
}

func (c *lockChecker) stmt(s ast.Stmt, st *lockFacts) *lockFacts {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := c.lockOp(call); ok {
				return c.applyLockOp(call, key, op, st)
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				c.expr(s.X, st, false)
				return nil
			}
		}
		c.expr(s.X, st, false)
		return st
	case *ast.DeferStmt:
		if key, op, ok := c.lockOp(s.Call); ok {
			// defer mu.Unlock(): the mutex stays held to function end,
			// so the path keeps its fact; defer mu.Lock() is nonsense we
			// leave to vet.
			_ = key
			_ = op
			return st
		}
		for _, a := range s.Call.Args {
			c.expr(a, st, false)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure runs after the body: it must do its own
			// locking.
			c.stmts(fl.Body.List, newLockFacts())
		} else {
			c.expr(s.Call.Fun, st, false)
		}
		return st
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.expr(a, st, false)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, newLockFacts())
		} else {
			c.expr(s.Call.Fun, st, false)
		}
		return st
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, st, false)
		}
		for _, l := range s.Lhs {
			c.expr(l, st, true)
		}
		return st
	case *ast.IncDecStmt:
		c.expr(s.X, st, true)
		return st
	case *ast.DeclStmt:
		c.expr(nil, st, false)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st, false)
					}
				}
			}
		}
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st, false)
		thenExit := c.stmts(s.Body.List, st.clone())
		elseExit := st
		if s.Else != nil {
			elseExit = c.stmt(s.Else, st.clone())
		}
		return mergeFacts(thenExit, elseExit)
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.expr(s.Cond, st, false)
		}
		bodyExit := c.stmts(s.Body.List, st.clone())
		if s.Post != nil && bodyExit != nil {
			bodyExit = c.stmt(s.Post, bodyExit)
		}
		if s.Cond == nil {
			// `for { … }` only exits through break/return inside the
			// body; the state after it is whatever the body left.
			return mergeFacts(bodyExit, nil)
		}
		return mergeFacts(st, bodyExit)
	case *ast.RangeStmt:
		c.expr(s.X, st, false)
		bodyExit := c.stmts(s.Body.List, st.clone())
		return mergeFacts(st, bodyExit)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st, false)
		}
		return c.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.stmt(s.Assign, st)
		return c.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		var exit *lockFacts
		any := false
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := st.clone()
			if cc.Comm != nil {
				branch = c.stmt(cc.Comm, branch)
			}
			branchExit := c.stmts(cc.Body, branch)
			if !any {
				exit, any = branchExit, true
			} else {
				exit = mergeFacts(exit, branchExit)
			}
		}
		if !any {
			return st
		}
		return exit
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st, false)
		}
		return nil
	case *ast.BranchStmt:
		return nil // break/continue/goto leave this path
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st, false)
		c.expr(s.Value, st, false)
		return st
	default:
		return st
	}
}

// caseClauses merges the exits of a switch body's case clauses; with no
// default clause the zero-case fall-through keeps the entry state.
func (c *lockChecker) caseClauses(body *ast.BlockStmt, st *lockFacts) *lockFacts {
	var exit *lockFacts
	any := false
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			c.expr(e, st, false)
		}
		branchExit := c.stmts(cc.Body, st.clone())
		if !any {
			exit, any = branchExit, true
		} else {
			exit = mergeFacts(exit, branchExit)
		}
	}
	if !any {
		return st
	}
	if !hasDefault {
		exit = mergeFacts(exit, st)
	}
	return exit
}

// lockOp recognizes base.mu.Lock / RLock / Unlock / RUnlock on a
// tracked mutex field reached through an identifier-rooted chain.
func (c *lockChecker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return lockKey{}, "", false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	seln, ok := c.p.Info.Selections[muSel]
	if !ok || seln.Kind() != types.FieldVal {
		return lockKey{}, "", false
	}
	mu, ok := seln.Obj().(*types.Var)
	if !ok || !isMutexType(mu.Type()) || !c.tracked(mu) {
		return lockKey{}, "", false
	}
	base := baseIdentObj(c.p, muSel.X)
	if base == nil {
		return lockKey{}, "", false
	}
	return lockKey{base: base, mu: mu}, op, true
}

// tracked reports whether mu guards at least one annotated field.
func (c *lockChecker) tracked(mu *types.Var) bool {
	for _, m := range c.guards {
		if m == mu {
			return true
		}
	}
	return false
}

// applyLockOp transitions the state for one lock call, reporting
// pairing violations.
func (c *lockChecker) applyLockOp(call *ast.CallExpr, key lockKey, op string, st *lockFacts) *lockFacts {
	pos := c.p.pos(call)
	switch op {
	case "Lock", "TryLock":
		if _, held := st.held[key]; held {
			*c.diags = append(*c.diags, Diagnostic{
				Pos:     pos,
				Message: fmt.Sprintf("%s.Lock() while %s is already held on this path (double lock, or an unlock is missing on another)", key.mu.Name(), key.mu.Name()),
			})
		}
		st.held[key] = heldWrite
	case "RLock", "TryRLock":
		if _, held := st.held[key]; held {
			*c.diags = append(*c.diags, Diagnostic{
				Pos:     pos,
				Message: fmt.Sprintf("%s.RLock() while %s is already held on this path", key.mu.Name(), key.mu.Name()),
			})
		}
		st.held[key] = heldRead
	case "Unlock", "RUnlock":
		if _, held := st.held[key]; !held {
			*c.diags = append(*c.diags, Diagnostic{
				Pos:     pos,
				Message: fmt.Sprintf("%s.%s() but %s is not held on every path reaching here", key.mu.Name(), op, key.mu.Name()),
			})
		}
		delete(st.held, key)
	}
	return st
}

// expr checks every guarded-field access inside e against the current
// facts. write says whether e is a store target. Function literals are
// walked with empty facts — they run on their own schedule and must do
// their own locking.
func (c *lockChecker) expr(e ast.Expr, st *lockFacts, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, newLockFacts())
			return false
		case *ast.SelectorExpr:
			c.checkAccess(n, st, write)
		case *ast.CallExpr:
			// Nested lock calls in expression position are rare enough
			// to ignore as state transitions, but their arguments are
			// ordinary reads.
			if _, _, isLock := c.lockOp(n); isLock {
				for _, a := range n.Args {
					c.expr(a, st, false)
				}
				return false
			}
		}
		return true
	})
}

// checkAccess reports a guarded-field selector not covered by the
// held-mutex facts.
func (c *lockChecker) checkAccess(sel *ast.SelectorExpr, st *lockFacts, write bool) {
	seln, ok := c.p.Info.Selections[sel]
	if !ok || seln.Kind() != types.FieldVal {
		return
	}
	fv, ok := seln.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, guarded := c.guards[fv]
	if !guarded {
		return
	}
	base := baseIdentObj(c.p, sel.X)
	if base == nil {
		return // rooted in a call result or assertion: cannot track the instance
	}
	mode, held := st.held[lockKey{base: base, mu: mu}]
	verb := "read"
	if write {
		verb = "write"
	}
	if !held {
		*c.diags = append(*c.diags, Diagnostic{
			Pos:     c.p.pos(sel),
			Message: fmt.Sprintf("%s of %s (guarded by %s) without holding %s on every path to this access", verb, fv.Name(), mu.Name(), mu.Name()),
		})
		return
	}
	if write && mode&heldWrite == 0 {
		*c.diags = append(*c.diags, Diagnostic{
			Pos:     c.p.pos(sel),
			Message: fmt.Sprintf("write of %s (guarded by %s) while holding only the read lock", fv.Name(), mu.Name()),
		})
	}
}
