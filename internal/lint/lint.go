// Package lint is rdlint's engine: a stdlib-only static-analysis driver
// (go/parser + go/types, no external dependencies) that loads every
// package in the module and runs a suite of repo-specific analyzers. The
// suite encodes the invariants the reproduction's headline numbers rest
// on — bit-for-bit deterministic runs, exact stall-cause attribution, the
// nil-safe probe contract, and a drift-proof wire format — so violations
// are caught at lint time instead of surfacing as corrupted cache keys or
// golden-test churn. See docs/STATIC_ANALYSIS.md for the catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message. The driver fills Analyzer; analyzer Run functions only
// set Pos and Message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one repo-specific check. Run receives every loaded package
// at once — module-wide analyses (wiretag's reachability closure,
// maprange's writer-function set) need the whole picture, and per-package
// analyses simply iterate.
type Analyzer struct {
	// Name is the identifier used in diagnostics, -run filters, and
	// allowlist entries.
	Name string
	// Doc is a one-line description for usage output and docs.
	Doc string
	// Run reports findings over the loaded packages. Findings must be
	// produced in a deterministic order (walk files, not maps).
	Run func(pkgs []*Package) []Diagnostic
}

// All returns the full suite in stable order: the five first-generation
// per-function/type checks, then the four dataflow-tier analyzers built
// on the shared call-graph substrate (see graph.go).
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, MapRange, StallCauseCheck, NilProbe, WireTag,
		CanonCheck, LockCheck, CtxCheck, HotAlloc,
	}
}

// Select resolves a comma-separated analyzer list against All. An empty
// list selects the full suite.
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for _, k := range All() {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: -run selected no analyzers")
	}
	return out, nil
}

// AnalyzerStat is one analyzer's row in the -stats summary.
type AnalyzerStat struct {
	Name       string  `json:"name"`
	Findings   int     `json:"findings"`
	Suppressed int     `json:"suppressed"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// RunStats summarizes one driver invocation for `rdlint -stats` and the
// CI lint-time gate: per-analyzer counts and wall time, plus the size
// of the module call graph the dataflow tier analyzed.
type RunStats struct {
	Packages       int            `json:"packages"`
	Files          int            `json:"files"`
	CallGraphFuncs int            `json:"call_graph_funcs"`
	CallGraphEdges int            `json:"call_graph_edges"`
	AnalysisMS     float64        `json:"analysis_ms"`
	Analyzers      []AnalyzerStat `json:"analyzers"`
}

// Run executes the analyzers over the packages, suppresses findings the
// allowlist covers, and returns the rest sorted by position. The second
// result lists allowlist entries that matched nothing — stale entries the
// caller should surface so the list stays tight. allow may be nil.
func Run(pkgs []*Package, analyzers []*Analyzer, allow *Allowlist) ([]Diagnostic, []AllowEntry) {
	diags, stale, _ := RunWithStats(pkgs, analyzers, allow)
	return diags, stale
}

// RunWithStats is Run plus the timing/size summary behind -stats.
func RunWithStats(pkgs []*Package, analyzers []*Analyzer, allow *Allowlist) ([]Diagnostic, []AllowEntry, *RunStats) {
	start := time.Now()
	stats := &RunStats{Packages: len(pkgs)}
	for _, p := range pkgs {
		stats.Files += len(p.Files)
	}
	g := buildCallGraph(pkgs)
	stats.CallGraphFuncs = len(g.order)
	stats.CallGraphEdges = g.edges
	var diags []Diagnostic
	for _, a := range analyzers {
		aStart := time.Now()
		st := AnalyzerStat{Name: a.Name}
		for _, d := range a.Run(pkgs) {
			d.Analyzer = a.Name
			if allow.covers(d) {
				st.Suppressed++
				continue
			}
			st.Findings++
			diags = append(diags, d)
		}
		st.ElapsedMS = float64(time.Since(aStart).Microseconds()) / 1000
		stats.Analyzers = append(stats.Analyzers, st)
	}
	stats.AnalysisMS = float64(time.Since(start).Microseconds()) / 1000
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, allow.stale(), stats
}

// pos converts a node position for diagnostics.
func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }
