// Package lint is rdlint's engine: a stdlib-only static-analysis driver
// (go/parser + go/types, no external dependencies) that loads every
// package in the module and runs a suite of repo-specific analyzers. The
// suite encodes the invariants the reproduction's headline numbers rest
// on — bit-for-bit deterministic runs, exact stall-cause attribution, the
// nil-safe probe contract, and a drift-proof wire format — so violations
// are caught at lint time instead of surfacing as corrupted cache keys or
// golden-test churn. See docs/STATIC_ANALYSIS.md for the catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message. The driver fills Analyzer; analyzer Run functions only
// set Pos and Message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one repo-specific check. Run receives every loaded package
// at once — module-wide analyses (wiretag's reachability closure,
// maprange's writer-function set) need the whole picture, and per-package
// analyses simply iterate.
type Analyzer struct {
	// Name is the identifier used in diagnostics, -run filters, and
	// allowlist entries.
	Name string
	// Doc is a one-line description for usage output and docs.
	Doc string
	// Run reports findings over the loaded packages. Findings must be
	// produced in a deterministic order (walk files, not maps).
	Run func(pkgs []*Package) []Diagnostic
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapRange, StallCauseCheck, NilProbe, WireTag}
}

// Select resolves a comma-separated analyzer list against All. An empty
// list selects the full suite.
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for _, k := range All() {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: -run selected no analyzers")
	}
	return out, nil
}

// Run executes the analyzers over the packages, suppresses findings the
// allowlist covers, and returns the rest sorted by position. The second
// result lists allowlist entries that matched nothing — stale entries the
// caller should surface so the list stays tight. allow may be nil.
func Run(pkgs []*Package, analyzers []*Analyzer, allow *Allowlist) ([]Diagnostic, []AllowEntry) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(pkgs) {
			d.Analyzer = a.Name
			if allow.covers(d) {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, allow.stale()
}

// pos converts a node position for diagnostics.
func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }
