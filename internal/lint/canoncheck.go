package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CanonCheck pins the cache-key invariant: every exported field of a
// canon root (sim.Scenario, or any struct marked `rdlint:canonroot`)
// and of every struct reachable from it through exported fields must
// influence the canonical form. A field "influences" it when the root's
// Canonical method — or any function marked `rdlint:canonconsumer`
// (resultcache.Key), or anything they transitively call — either names
// the field in a selector (reads it, rewrites it, or deliberately
// zeroes it) or passes the whole enclosing struct to a call (the
// `fmt.Sprintf("device=%+v", canon.Device)` idiom, which folds every
// field, present and future, into the digest). A new Scenario field
// that silently misses the key is a lint error here, instead of a
// cross-worker cache collision in production. `rdlint:nocanon` on a
// field is the audited opt-out.
var CanonCheck = &Analyzer{
	Name: "canoncheck",
	Doc:  "require every canon-root field to reach Canonical()/the cache key or carry rdlint:nocanon",
	Run:  runCanonCheck,
}

const (
	canonRootMarker     = "rdlint:canonroot"
	canonConsumerMarker = "rdlint:canonconsumer"
	noCanonMarker       = "rdlint:nocanon"
)

// canonRoots lists the known cache-key root types by package name and
// type name, mirroring wiretag's fixed root list; the marker adds more.
var canonRoots = []struct{ pkg, typ string }{
	{"sim", "Scenario"},
}

func runCanonCheck(pkgs []*Package) []Diagnostic {
	typeIdx := buildTypeIndex(pkgs)
	graph := buildCallGraph(pkgs)
	var diags []Diagnostic

	// Roots, in deterministic file order.
	var roots []*types.TypeName
	rootSet := make(map[*types.TypeName]bool)
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || rootSet[tn] {
					return true
				}
				named := false
				for _, r := range canonRoots {
					if p.Types.Name() == r.pkg && ts.Name.Name == r.typ {
						named = true
					}
				}
				if named || strings.Contains(typeIdx[tn].doc, canonRootMarker) {
					rootSet[tn] = true
					roots = append(roots, tn)
				}
				return true
			})
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Consumer closure: each root's Canonical method, every function
	// marked rdlint:canonconsumer, and everything they transitively call.
	var consumerRoots []*types.Func
	haveCanonical := make(map[*types.TypeName]bool)
	for _, fn := range graph.order {
		site := graph.funcs[fn]
		if hasMarker(site.decl.Doc, canonConsumerMarker) {
			consumerRoots = append(consumerRoots, fn)
		}
		if site.decl.Recv == nil || fn.Name() != "Canonical" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok && rootSet[named.Obj()] {
			haveCanonical[named.Obj()] = true
			consumerRoots = append(consumerRoots, fn)
		}
	}
	for _, root := range roots {
		if !haveCanonical[root] {
			site := typeIdx[root]
			diags = append(diags, Diagnostic{
				Pos:     site.pkg.pos(site.spec),
				Message: fmt.Sprintf("canon root %s has no Canonical method; the cache key has nothing to consume", root.Name()),
			})
		}
	}
	consumers := graph.reachable(consumerRoots)

	// Walk consumer bodies once, collecting three facts: fields named by
	// a selector, structs selected into (their fields are keyed
	// individually, so each one must be covered), and structs passed
	// whole to a call (every field, present and future, is covered).
	consumed := make(map[*types.Var]bool)
	selectedInto := make(map[*types.TypeName]bool)
	wholeSeed := make(map[*types.TypeName]bool)
	for _, fn := range graph.order {
		if !consumers[fn] {
			continue
		}
		site := graph.funcs[fn]
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				seln, ok := site.pkg.Info.Selections[n]
				if !ok || seln.Kind() != types.FieldVal {
					return true
				}
				if fv, ok := seln.Obj().(*types.Var); ok {
					consumed[fv] = true
				}
				if tn := namedStructIn(seln.Recv(), typeIdx); tn != nil {
					selectedInto[tn] = true
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if t := site.pkg.Info.TypeOf(arg); t != nil {
						if tn := namedStructIn(t, typeIdx); tn != nil {
							wholeSeed[tn] = true
						}
					}
				}
			}
			return true
		})
	}

	// The canon closure: structs reachable from the roots through
	// exported fields not marked rdlint:nocanon.
	reach := make(map[*types.TypeName]bool)
	work := append([]*types.TypeName(nil), roots...)
	for _, r := range roots {
		reach[r] = true
	}
	for len(work) > 0 {
		tn := work[len(work)-1]
		work = work[:len(work)-1]
		site, ok := typeIdx[tn]
		if !ok {
			continue
		}
		forEachCanonField(site, func(field *ast.Field, fv *types.Var) {
			if !fv.Exported() || fv.Embedded() || hasCanonOptOut(field) {
				return
			}
			if sub := namedStructIn(fv.Type(), typeIdx); sub != nil && !reach[sub] {
				reach[sub] = true
				work = append(work, sub)
			}
		})
	}

	// Whole-consumption closes over exported fields: %+v prints nested
	// structs too.
	whole := make(map[*types.TypeName]bool)
	var wwork []*types.TypeName
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if ok && wholeSeed[tn] && !whole[tn] {
					whole[tn] = true
					wwork = append(wwork, tn)
				}
				return true
			})
		}
	}
	for len(wwork) > 0 {
		tn := wwork[len(wwork)-1]
		wwork = wwork[:len(wwork)-1]
		site, ok := typeIdx[tn]
		if !ok {
			continue
		}
		forEachCanonField(site, func(field *ast.Field, fv *types.Var) {
			if !fv.Exported() {
				return
			}
			if sub := namedStructIn(fv.Type(), typeIdx); sub != nil && !whole[sub] {
				whole[sub] = true
				wwork = append(wwork, sub)
			}
		})
	}

	// Check: a struct in the closure is audited when it is a root or a
	// consumer keys it field-by-field; a wholly-consumed struct needs no
	// per-field audit.
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || !reach[tn] || whole[tn] {
					return true
				}
				if !rootSet[tn] && !selectedInto[tn] {
					return true
				}
				site := typeIdx[tn]
				forEachCanonField(site, func(field *ast.Field, fv *types.Var) {
					if !fv.Exported() || fv.Embedded() || hasCanonOptOut(field) {
						return
					}
					if consumed[fv] {
						return
					}
					diags = append(diags, Diagnostic{
						Pos: p.pos(field),
						Message: fmt.Sprintf("exported field %s.%s never reaches the canonical form: Canonical()/its consumers neither name it nor fold the whole struct — key it or mark it rdlint:nocanon",
							tn.Name(), fv.Name()),
					})
				})
				return true
			})
		}
	}
	return diags
}

// forEachCanonField pairs a struct declaration's AST fields with their
// type-checker objects, in declaration order.
func forEachCanonField(site typeSite, visit func(field *ast.Field, fv *types.Var)) {
	if site.spec == nil {
		return
	}
	stAST, ok := site.spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range stAST.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded: no annotations, and no roots embed
		}
		for _, name := range field.Names {
			if fv, ok := site.pkg.Info.Defs[name].(*types.Var); ok {
				visit(field, fv)
			}
		}
	}
}

// hasCanonOptOut reports whether the field carries rdlint:nocanon in
// its doc or trailing comment.
func hasCanonOptOut(field *ast.Field) bool {
	return hasMarker(field.Doc, noCanonMarker) || hasMarker(field.Comment, noCanonMarker)
}
