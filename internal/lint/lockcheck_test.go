package lint

import "testing"

func TestLockCheck(t *testing.T) {
	runFixtureCases(t, LockCheck, []fixtureCase{
		{name: "guarded-by discipline", dirs: []string{"lockcheck"}},
	})
}
