package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotAlloc enforces the hot-path allocation budget: a function marked
// `rdlint:hotpath` in its doc comment (the device per-access path, the
// SMC issue loop, the engine front-end, the trace-replay inner loop)
// may not contain allocating constructs. The event-driven core refactor
// pinned the long-vector benchmark at a fixed allocation count
// (BENCH_core_speed.json); this analyzer turns that number from a
// benchmark regression into a review-time lint error. Flagged
// constructs: go and defer statements, function literals that escape,
// interface conversions (boxing) at call arguments, assignments and
// returns, make/new and map or slice literals, append to an un-presized
// local slice, and any fmt call. Arguments to panic are
// exempt — the crash path may allocate — and only direct constructs
// are checked: callees are either marked themselves or deliberately
// cold (first-touch pools, watchdog dumps).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in functions marked rdlint:hotpath",
	Run:  runHotAlloc,
}

const hotPathMarker = "rdlint:hotpath"

func runHotAlloc(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasMarker(fd.Doc, hotPathMarker) {
					continue
				}
				diags = append(diags, checkHotFunc(p, fd)...)
			}
		}
	}
	return diags
}

// hotChecker carries the per-function context of one hotpath scan.
type hotChecker struct {
	p     *Package
	fd    *ast.FuncDecl
	diags []Diagnostic
	// localInit maps locals declared in this function to their
	// initializer (nil for `var s []T`), for the append presize check.
	localInit map[*types.Var]ast.Expr
	// panicArgs spans the argument ranges of panic calls, which are
	// exempt from the fmt and boxing rules.
	panicArgs []span
}

type span struct{ lo, hi int }

func (c *hotChecker) inPanic(n ast.Node) bool {
	for _, s := range c.panicArgs {
		if int(n.Pos()) >= s.lo && int(n.End()) <= s.hi {
			return true
		}
	}
	return false
}

func (c *hotChecker) flag(n ast.Node, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.p.pos(n),
		Message: fmt.Sprintf(format, args...) + fmt.Sprintf(" (hot path: %s is marked %s)", c.fd.Name.Name, hotPathMarker),
	})
}

func checkHotFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	c := &hotChecker{p: p, fd: fd, localInit: map[*types.Var]ast.Expr{}}

	// Pre-pass: local initializers and panic-argument spans.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := p.Info.Defs[id].(*types.Var); ok {
					c.localInit[v] = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					if i < len(n.Values) {
						c.localInit[v] = n.Values[i]
					} else {
						c.localInit[v] = nil
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					c.panicArgs = append(c.panicArgs, span{lo: int(n.Lparen), hi: int(n.Rparen)})
				}
			}
		}
		return true
	})

	var results *types.Tuple
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}
	c.walk(fd.Body, results)
	return c.diags
}

// walk scans for allocating constructs. results is the result tuple of
// the innermost enclosing function, so returns inside nested literals
// are checked against the literal's own signature, not the hot
// function's.
func (c *hotChecker) walk(body ast.Node, results *types.Tuple) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.flag(n, "go statement allocates a goroutine")
			return true
		case *ast.DeferStmt:
			c.flag(n, "defer allocates and delays work on the hot path")
			return true
		case *ast.FuncLit:
			// Escape analysis, lint-sized: a literal assigned to a fresh
			// local and only called, or invoked immediately, stays on
			// the stack; every other use escapes. The body is walked
			// separately with the literal's own result types.
			if !c.funcLitStays(n) {
				c.flag(n, "function literal escapes to the heap")
			}
			if sig, ok := c.p.Info.TypeOf(n).(*types.Signature); ok {
				c.walk(n.Body, sig.Results())
			}
			return false
		case *ast.CompositeLit:
			c.checkComposite(n)
			return true
		case *ast.CallExpr:
			c.checkCall(n)
			return true
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					c.checkConversion(n.Rhs[i], c.p.Info.TypeOf(n.Lhs[i]), "assignment")
				}
			}
			return true
		case *ast.ValueSpec:
			if n.Type != nil {
				want := c.p.Info.TypeOf(n.Type)
				for _, v := range n.Values {
					c.checkConversion(v, want, "assignment")
				}
			}
			return true
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					c.checkConversion(r, results.At(i).Type(), "return")
				}
			}
			return true
		}
		return true
	})
}

// funcLitStays reports whether the literal is used in one of the two
// non-escaping shapes: `f := func(){…}` to a fresh local, or an
// immediately invoked `func(){…}()`.
func (c *hotChecker) funcLitStays(fl *ast.FuncLit) bool {
	stays := false
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if r != fl || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if _, fresh := c.p.Info.Defs[id]; fresh {
						stays = true
					}
				}
			}
		case *ast.CallExpr:
			if n.Fun == fl {
				stays = true
			}
		}
		return !stays
	})
	return stays
}

// checkComposite flags map/slice literals and &struct{} pointers.
func (c *hotChecker) checkComposite(lit *ast.CompositeLit) {
	t := c.p.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.flag(lit, "map literal allocates")
	case *types.Slice:
		c.flag(lit, "slice literal allocates")
	}
}

// checkCall handles make/new, fmt calls, boxing at arguments, and the
// append presize rule.
func (c *hotChecker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, okB := c.p.Info.Uses[id].(*types.Builtin); okB {
			switch b.Name() {
			case "make":
				c.flag(call, "make allocates; hoist the buffer out of the hot path or presize it in setup")
			case "new":
				c.flag(call, "new allocates")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}
	// &T{} pointer composites arrive as unary expressions; catch them
	// where they are passed or assigned via the conversion checks, and
	// directly here for the bare statement form.
	fn := qualifiedFunc(c.p, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && !c.inPanic(call) {
		c.flag(call, "fmt.%s allocates (formatting boxes its operands)", fn.Name())
		return
	}
	// Boxing: a concrete value passed where the callee wants an
	// interface is heap-allocated at the call site.
	if c.inPanic(call) {
		return
	}
	if tv, ok := c.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			c.checkConversion(call.Args[0], tv.Type, "conversion")
		}
		return
	}
	sigT := c.p.Info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var want types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			want = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == 0:
			want = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case params.Len() > 0:
			want = params.At(params.Len() - 1).Type()
		}
		if want != nil {
			c.checkConversion(arg, want, "argument")
		}
	}
}

// checkConversion flags expr if placing it into a slot of type want
// boxes a concrete value into an interface.
func (c *hotChecker) checkConversion(expr ast.Expr, want types.Type, where string) {
	if want == nil || !types.IsInterface(want) {
		return
	}
	got := c.p.Info.TypeOf(expr)
	if got == nil || types.IsInterface(got) {
		return
	}
	if b, ok := got.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch got.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored in the interface word, no box
	}
	if c.inPanic(expr) {
		return
	}
	c.flag(expr, "interface conversion at %s boxes a %s value onto the heap", where, got.String())
}

// checkAppend flags append whose destination is a local slice declared
// without capacity — growth reallocates in the hot loop. Appends to
// fields, parameters, and package-level slices are exempt: the presize
// contract lives at their allocation site (and the setup phase presizes
// the FIFO fields this path appends to).
func (c *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // selector (field) or indexed destination: presized at setup
	}
	v, ok := c.p.Info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = c.p.Info.Defs[id].(*types.Var); !ok {
			return
		}
	}
	init, local := c.localInit[v]
	if !local {
		return // parameter or package-level: caller owns the capacity
	}
	if initCall, ok := init.(*ast.CallExpr); ok {
		if fid, ok := initCall.Fun.(*ast.Ident); ok {
			if b, okB := c.p.Info.Uses[fid].(*types.Builtin); okB && b.Name() == "make" && len(initCall.Args) >= 2 {
				return // make with an explicit length/capacity: presized
			}
		}
	}
	c.flag(call, "append to %s grows an un-presized local slice", id.Name)
}
