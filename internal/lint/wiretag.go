package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// WireTag pins the wire format. The scenario JSON is simultaneously the
// HTTP API request body, the on-disk result-cache entry, and (through
// Canonical) the input to the content-addressed cache key, so a field
// added without a deliberate encoding decision silently changes all
// three. The analyzer computes the set of wire-format structs — a fixed
// root list (sim.Scenario, the service request/response types, the
// resultcache entry) plus any struct marked `rdlint:wire` in its doc
// comment, closed over exported struct-typed fields — and requires every
// exported field to carry an explicit json tag. Tags pin the existing
// wire spelling: renaming a field on the wire is now a visible tag diff,
// never an accident. Observer and function fields must be json:"-".
var WireTag = &Analyzer{
	Name: "wiretag",
	Doc:  "require explicit json tags on every exported field of wire-format structs",
	Run:  runWireTag,
}

// wireMarker in a struct's doc comment adds it to the wire-format roots.
const wireMarker = "rdlint:wire"

// wireRoots lists the known wire-format entry points by package name and
// type name. The closure walk pulls in everything they embed or carry.
var wireRoots = []struct{ pkg, typ string }{
	{"sim", "Scenario"},
	{"sim", "Outcome"},
	{"service", "SweepRequest"},
	{"service", "SimulateResponse"},
	{"service", "SweepLine"},
	{"service", "HealthResponse"},
	{"service", "errorResponse"},
	{"service", "JobStatus"},
	{"service", "ScenarioResult"},
	{"service", "Metrics"},
	{"resultcache", "diskEntry"},
	{"resultcache", "Stats"},
	{"telemetry", "Report"},
	// The trace subsystem: the NDJSON stream format (Header/Line), the
	// ingestion envelope (TraceHeader), and the generator spec that rides
	// inside scenario JSON and the content-addressed cache key.
	{"tracegen", "Header"},
	{"tracegen", "Line"},
	{"tracegen", "Spec"},
	{"tracegen", "Program"},
	{"tracegen", "Phase"},
	{"service", "TraceHeader"},
	{"workload", "TraceAccess"},
}

// typeDecl records what the analyzer needs from a named type's
// declaration site: its doc comment (for the rdlint:wire marker) and,
// by its presence in the index, that the type is declared in the loaded
// module.
type typeDecl struct {
	doc string
}

func runWireTag(pkgs []*Package) []Diagnostic {
	// Index every named type declared in the loaded packages, so closure
	// members can be traced back to their AST for positions and doc
	// comments, and so the walk stays within the module.
	decls := make(map[*types.TypeName]typeDecl)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					doc := ""
					if ts.Doc != nil {
						doc = ts.Doc.Text()
					} else if gd.Doc != nil {
						doc = gd.Doc.Text()
					}
					decls[tn] = typeDecl{doc: doc}
				}
			}
		}
	}

	// Seed the worklist: fixed roots plus marker-tagged structs, found by
	// walking files (not the decls map) for deterministic order.
	inWire := make(map[*types.TypeName]bool)
	var work []*types.TypeName
	seed := func(tn *types.TypeName) {
		if tn != nil && !inWire[tn] {
			inWire[tn] = true
			work = append(work, tn)
		}
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					return true
				}
				d := decls[tn]
				for _, root := range wireRoots {
					if p.Types.Name() == root.pkg && ts.Name.Name == root.typ {
						seed(tn)
					}
				}
				if strings.Contains(d.doc, wireMarker) {
					seed(tn)
				}
				return true
			})
		}
	}

	// Closure over exported struct-typed fields.
	for i := 0; i < len(work); i++ {
		st, ok := work[i].Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			f := st.Field(j)
			if !f.Exported() && !f.Embedded() {
				continue
			}
			if jsonTagName(st.Tag(j)) == "-" {
				continue // explicitly off the wire; don't recurse
			}
			seed(namedStructBehind(f.Type(), decls))
		}
	}

	// Check every wire struct we hold the declaration of.
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || !inWire[tn] {
					return true
				}
				stAST, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				st, ok := tn.Type().Underlying().(*types.Struct)
				if !ok {
					return true
				}
				diags = append(diags, checkWireStruct(p, ts.Name.Name, stAST, st)...)
				return true
			})
		}
	}
	return diags
}

// namedStructBehind unwraps pointers, slices, arrays, and map values to a
// named struct type declared in the loaded packages.
func namedStructBehind(t types.Type, decls map[*types.TypeName]typeDecl) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); !ok {
				return nil
			}
			tn := u.Obj()
			if _, declared := decls[tn]; !declared {
				return nil // outside the loaded module: nothing to check
			}
			return tn
		default:
			return nil
		}
	}
}

// checkWireStruct validates one wire struct's field tags against its AST.
func checkWireStruct(p *Package, typeName string, stAST *ast.StructType, st *types.Struct) []Diagnostic {
	var diags []Diagnostic
	idx := 0
	for _, field := range stAST.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded
		}
		for k := 0; k < n; k++ {
			fv := st.Field(idx)
			tag := st.Tag(idx)
			idx++
			if fv.Embedded() {
				continue // embedded structs inline their (checked) fields
			}
			if !fv.Exported() {
				continue // encoding/json ignores unexported fields
			}
			name := jsonTagName(tag)
			if isObserverType(fv.Type()) && name != "-" {
				diags = append(diags, Diagnostic{
					Pos:     p.pos(field),
					Message: fmt.Sprintf("field %s.%s has func type and must be tagged json:\"-\": observers are not part of the wire format", typeName, fv.Name()),
				})
				continue
			}
			if name == "" {
				diags = append(diags, Diagnostic{
					Pos: p.pos(field),
					Message: fmt.Sprintf("exported field %s.%s of wire-format struct has no explicit json tag; pin the wire name (or json:\"-\") so the HTTP API and cache entries cannot drift",
						typeName, fv.Name()),
				})
			}
		}
	}
	return diags
}

// jsonTagName extracts the json name from a struct tag: "" when the tag
// is missing or names nothing explicitly (`json:",omitempty"` included —
// the wire name would still be the implicit Go field name).
func jsonTagName(tag string) string {
	jt, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(jt, ",")
	return name
}

// isObserverType reports whether t is (or wraps) a function type — the
// Telemetry/Trace-style hook fields that must never hit the wire.
func isObserverType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Chan:
		return true
	case *types.Pointer:
		return isObserverType(u.Elem())
	}
	return false
}
