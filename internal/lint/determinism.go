package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// corePackages names the simulation-core packages (by package name) where
// every source of nondeterminism is forbidden. The reproduction's claims
// — golden parity, serial-vs-parallel byte identity, content-addressed
// cache keys, the fault injector's fixed draw discipline — all assume a
// run is a pure function of its Scenario; one wall-clock read or global
// RNG draw in these packages silently breaks all of them.
var corePackages = map[string]bool{
	"rdram":       true,
	"smc":         true,
	"natorder":    true,
	"engine":      true,
	"sim":         true,
	"fault":       true,
	"resultcache": true,
	// The fabric shard ring: assignment must be a pure function of
	// (members, key) so the same scenario always hashes to the same
	// worker. Wall-clock health bookkeeping lives one package up, in
	// fabric, which is deliberately NOT core.
	"shard": true,
	// The trace generator: a Program must expand to the same trace on
	// every machine, every run — its digest is a cache key and a fabric
	// shard key. One clock read or global-rand draw would silently split
	// the cache and break replay byte-identity.
	"tracegen": true,
	// The trace replay path (ReplayTrace, Replay, ParseTrace): schedules
	// must be pure functions of the access list and options.
	"workload": true,
}

// bannedFuncs maps fully qualified function names to the reason they are
// forbidden in the simulation core.
var bannedFuncs = map[string]string{
	"time.Now":       "wall-clock reads make runs irreproducible",
	"time.Since":     "wall-clock reads make runs irreproducible",
	"time.Until":     "wall-clock reads make runs irreproducible",
	"time.Sleep":     "real-time waits have no place in simulated time",
	"time.After":     "real-time waits have no place in simulated time",
	"time.Tick":      "real-time waits have no place in simulated time",
	"time.NewTimer":  "real-time waits have no place in simulated time",
	"time.NewTicker": "real-time waits have no place in simulated time",
	"os.Getenv":      "environment reads make outcomes host-dependent",
	"os.LookupEnv":   "environment reads make outcomes host-dependent",
	"os.Environ":     "environment reads make outcomes host-dependent",
}

// randAllowed lists the math/rand package-level functions that are fine:
// constructing an explicitly seeded generator is the required idiom, and
// the zipf constructor takes such a generator.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism forbids wall-clock time, environment reads, and the global
// math/rand generator inside the simulation core. Explicitly seeded
// generators (rand.New(rand.NewSource(seed))) remain legal — that is the
// discipline internal/fault documents as exactly-4-draws-per-access.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/global rand/os.Getenv in the simulation core",
	Run:  runDeterminism,
}

func runDeterminism(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		if !corePackages[p.Types.Name()] {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods are out of scope; only package funcs are banned
				}
				qual := fn.Pkg().Path() + "." + fn.Name()
				if why, banned := bannedFuncs[qual]; banned {
					diags = append(diags, Diagnostic{
						Pos:     p.pos(sel),
						Message: fmt.Sprintf("%s in simulation core package %q: %s", qual, p.Types.Name(), why),
					})
					return true
				}
				if fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2" {
					if !randAllowed[fn.Name()] {
						diags = append(diags, Diagnostic{
							Pos: p.pos(sel),
							Message: fmt.Sprintf("global %s.%s in simulation core package %q: draws from the shared generator are seed-independent; use rand.New(rand.NewSource(seed))",
								fn.Pkg().Path(), fn.Name(), p.Types.Name()),
						})
					}
				}
				return true
			})
		}
	}
	return diags
}
