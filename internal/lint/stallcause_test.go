package lint

import "testing"

func TestStallCause(t *testing.T) {
	runFixtureCases(t, StallCauseCheck, []fixtureCase{
		{
			name: "partial switch and sparse array flagged, exhaustive and defaulted clean",
			dirs: []string{"stallcause"},
		},
	})
}
