package lint

import "testing"

func TestCanonCheck(t *testing.T) {
	runFixtureCases(t, CanonCheck, []fixtureCase{
		{name: "scenario key coverage", dirs: []string{"canoncheck"}},
	})
}
