// Package telemetry is a lint fixture: it borrows the telemetry package
// name so the nil-probe contract applies, and mixes guarded, unguarded,
// and out-of-contract methods.
package telemetry

// BusProbe is nil-safe by contract (the *Probe suffix binds it).
type BusProbe struct {
	hits int64
}

// Hit starts with the canonical guard: clean.
func (p *BusProbe) Hit() {
	if p == nil {
		return
	}
	p.hits++
}

// Count skips the guard.
func (p *BusProbe) Count() int64 { // want "must begin with `if p == nil"
	return p.hits
}

// reset is unexported and outside the contract: clean.
func (p *BusProbe) reset() { p.hits = 0 }

// Collector is bound by its well-known name, not the suffix.
type Collector struct {
	n int
}

// Total guards with an || chain: clean.
func (c *Collector) Total() int {
	if c == nil || c.n < 0 {
		return 0
	}
	return c.n
}

// Bump cannot even name its receiver, let alone guard it.
func (*Collector) Bump() {} // want "unnamed receiver"

// Label has a value receiver; a nil pointer cannot reach it: clean.
type Label struct {
	text string
}

// Text is on a value receiver of a non-probe type: clean.
func (l Label) Text() string { return l.text }

// registry is unexported and not probe-shaped, so its methods may assume
// a live receiver: clean.
type registry struct {
	m map[string]int
}

// Add is exported but the type is out of contract: clean.
func (r *registry) Add(k string) { r.m[k]++ }
