// Package canoncheck is the fixture for the cache-key coverage
// analyzer: a miniature Scenario with a Canonical method that names
// some fields, folds one sub-struct whole, keys another field-by-field
// with one field missed, and leaves one root field untouched.
package canoncheck

// Tuning rides inside Scenario and is folded whole into the key
// (passed as a call argument), so its fields need no individual
// mentions.
type Tuning struct {
	Policy string
	Depth  int
}

// Fault is keyed field-by-field by Canonical — and one field is
// missed.
type Fault struct {
	Seed int64
	Rate float64 // want "Fault.Rate never reaches the canonical form"
}

// Scenario is the fixture cache-key root.
// rdlint:canonroot
type Scenario struct {
	Kernel string
	N      int
	Stride int // want "Scenario.Stride never reaches the canonical form"
	Tuning *Tuning
	Fault  Fault
	Label  string
	// Debug is an operator knob that never affects the outcome.
	// rdlint:nocanon
	Debug bool

	trace []byte // unexported: invisible to the wire, exempt
}

// Canonical normalizes the scenario for keying.
func (sc Scenario) Canonical() Scenario {
	if sc.Kernel == "" {
		sc.Kernel = "copy"
	}
	if sc.N == 0 {
		sc.N = 1024
	}
	sc.Tuning = cloneTuning(sc.Tuning)
	// Fault is keyed field-by-field; Rate is (deliberately, for the
	// fixture) forgotten.
	_ = sc.Fault.Seed
	return sc
}

// cloneTuning folds the whole Tuning struct into the canonical form.
func cloneTuning(t *Tuning) *Tuning {
	if t == nil {
		return nil
	}
	c := *t
	return &c
}

// KeyOf derives the cache key outside Canonical — the
// resultcache.Key pattern.
// rdlint:canonconsumer
func KeyOf(sc Scenario) string {
	return sc.Label
}

// Orphan is marked as a root but has no Canonical method at all.
// rdlint:canonroot
type Orphan struct { // want "canon root Orphan has no Canonical method"
	A int // want "Orphan.A never reaches the canonical form"
}
