// Package hotalloc is the fixture for the hot-path allocation budget:
// one marked function hitting every flagged construct, one marked
// function showing the exemptions (presized appends, panic arguments,
// stack-staying literals), and an unmarked cold function that may
// allocate freely.
package hotalloc

import "fmt"

// Ring is a presized FIFO: appends to its fields are exempt because
// setup owns the capacity.
type Ring struct {
	items []int
}

// failure is a concrete error, for the return-boxing case.
type failure struct{}

func (failure) Error() string { return "failure" }

// tick hits every flagged construct once.
// rdlint:hotpath
func (r *Ring) tick(v int) error {
	go func() { drain(r) }()      // want "go statement allocates a goroutine"
	defer noteExit()              // want "defer allocates and delays work on the hot path"
	register(func() { drain(r) }) // want "function literal escapes to the heap"
	m := map[string]int{}         // want "map literal allocates"
	_ = m
	s := []int{v} // want "slice literal allocates"
	_ = s
	buf := make([]int, 0, v) // want "make allocates"
	_ = buf
	p := new(Ring) // want "new allocates"
	_ = p
	fmt.Println(v)  // want "fmt.Println allocates (formatting boxes its operands)"
	var box any = v // want "interface conversion at assignment boxes a int value"
	_ = box
	sink(v) // want "interface conversion at argument boxes a int value"
	if v < 0 {
		return failure{} // want "interface conversion at return boxes a"
	}
	var acc []int
	acc = append(acc, v) // want "append to acc grows an un-presized local slice"
	_ = acc
	return nil
}

// push shows the exemptions: field and parameter appends are presized
// elsewhere, a fresh-local closure that is only called stays on the
// stack, and panic arguments may allocate on the crash path.
// rdlint:hotpath
func (r *Ring) push(v int, scratch []int) int {
	r.items = append(r.items, v)
	scratch = append(scratch, v)
	double := func(a int) int { return a + a }
	if v < 0 {
		panic(fmt.Sprintf("push: negative value %d", v))
	}
	return double(len(scratch))
}

// drain is deliberately cold — no marker, allocations allowed.
func drain(r *Ring) {
	r.items = append(r.items, len(fmt.Sprint(r.items)))
}

func noteExit() {}

func register(f func()) { f() }

func sink(x any) {}
