// Package tracegen is a lint fixture: it borrows the trace generator's
// package name — simulation-core rules apply, because a Program must
// expand to the same access list on every machine, every run. The
// expansion's SHA-256 digest is simultaneously a result-cache key and a
// fabric shard key, so one clock read, one draw from the shared global
// generator, or one env-dependent default silently splits the cache and
// breaks the POSTed-trace-equals-local-replay byte-identity claim.
package tracegen

import (
	"math/rand"
	"os"
	"time"
)

// Expand is the required idiom: an explicitly seeded generator, every
// draw a pure function of the program seed. Nothing here is flagged.
func Expand(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(1 << 20)
	}
	return out
}

// SaltedSeed perturbs the program seed with the wall clock, so the same
// program expands to a different trace every run — the digest no longer
// names the content.
func SaltedSeed(seed int64) int64 {
	return seed ^ time.Now().UnixNano() // want "time.Now in simulation core"
}

// JitteredRow draws a hot row from the shared global generator, making
// the expansion seed-independent.
func JitteredRow(ctx int64) int64 {
	return rand.Int63n(ctx) // want "global math/rand.Int63n"
}

// DefaultFootprint sizes the address footprint from the environment,
// which makes the generated trace — and its cache key — host-dependent.
func DefaultFootprint() string {
	return os.Getenv("TRACE_FOOTPRINT") // want "os.Getenv in simulation core"
}
