// Package rdram is a lint fixture: it borrows a simulation-core package
// name so the determinism analyzer applies, and seeds one violation per
// banned source of nondeterminism next to the legal seeded-RNG idiom.
package rdram

import (
	"math/rand"
	"os"
	"time"
)

// Elapsed reads the wall clock, which the core must never do.
func Elapsed(start time.Time) float64 {
	now := time.Now() // want "time.Now in simulation core"
	return now.Sub(start).Seconds()
}

// Jitter draws from the shared global generator.
func Jitter() int {
	return rand.Intn(4) // want "global math/rand.Intn"
}

// Tuned lets the host environment leak into the simulation.
func Tuned() string {
	return os.Getenv("RDRAM_TUNING") // want "os.Getenv in simulation core"
}

// SeededDraws is the required idiom: an explicitly seeded generator whose
// draws are a pure function of the seed. Nothing here is flagged — the
// constructors are allowed and Intn is a method on the local generator.
func SeededDraws(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}
