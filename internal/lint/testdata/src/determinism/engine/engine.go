// Package engine is a lint fixture: it borrows the worker-pool core
// package's name, so wall-clock reads here must still be flagged — the
// observability layer (internal/obs, internal/service) is where request
// timing lives, never the engine that executes simulations.
package engine

import "time"

// BatchElapsed would time a batch on the wall clock, which the core must
// never do: simulated time comes from the device model, and wall timing
// belongs to the serving layer.
func BatchElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in simulation core"
}

// Deadline reads the wall clock directly.
func Deadline() time.Time {
	return time.Now().Add(time.Second) // want "time.Now in simulation core"
}
