// Package shard is a lint fixture: it borrows the fabric shard ring's
// package name — simulation-core rules apply, because shard assignment
// must be a pure function of (members, key). A coordinator that breaks
// ties on the wall clock or jitters placement with the global generator
// would route the same scenario to different workers run to run,
// defeating the cache-affinity shard key and the chaos tests' replay
// determinism.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"time"
)

// Hash is the required idiom: a stable content hash, pure in its input.
// Nothing here is flagged.
func Hash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// JitteredOwner perturbs placement with the shared global generator,
// making assignment seed-independent.
func JitteredOwner(points []uint64, key string) int {
	if len(points) == 0 {
		return -1
	}
	return int((Hash(key) + rand.Uint64()) % uint64(len(points))) // want "global math/rand.Uint64"
}

// FreshnessBias prefers owners by wall-clock recency, which the ring
// must never consult: liveness is the coordinator's job, upstream of
// assignment.
func FreshnessBias(seen map[string]time.Time, id string) bool {
	return time.Since(seen[id]) < time.Second // want "time.Since in simulation core"
}

// RebuildEpoch stamps ring rebuilds with the wall clock.
func RebuildEpoch() int64 {
	return time.Now().UnixNano() // want "time.Now in simulation core"
}
