// Package smc is a lint fixture: it borrows the stream-controller core
// package's name and seeds the nondeterminism bugs an event-queue
// scheduler invites. The skip-to-next-event loop computes its wake-up as
// a pure min over simulated event times; reaching for the wall clock to
// bound a quiet queue, or for the global generator to break wake-up
// ties, silently breaks the serial-vs-parallel and fault byte-identity
// claims, so both must be flagged even though the surrounding code looks
// like ordinary scheduling logic.
package smc

import (
	"math/rand"
	"time"
)

const noEvent = int64(-1)

// NextWakeup is the required idiom: the scheduler's wake-up is the
// minimum of its pending simulated event times — a pure function of the
// queue. Nothing here is flagged.
func NextWakeup(events []int64) int64 {
	next := noEvent
	for _, t := range events {
		if t >= 0 && (next == noEvent || t < next) {
			next = t
		}
	}
	return next
}

// WatchdogDeadline bounds a quiet event queue on the wall clock, which
// the core must never do: the watchdog counts simulated cycles.
func WatchdogDeadline() time.Time {
	return time.Now().Add(5 * time.Second) // want "time.Now in simulation core"
}

// TieBreak picks among simultaneously ready FIFOs with the shared global
// generator, making the service order seed-independent.
func TieBreak(ready int) int {
	return rand.Intn(ready) // want "global math/rand.Intn"
}

// AwaitQuiet spins the scheduler on real time instead of jumping
// simulated time to the next event.
func AwaitQuiet() {
	time.Sleep(time.Millisecond) // want "time.Sleep in simulation core"
}
