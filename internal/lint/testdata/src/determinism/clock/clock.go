// Package clock is a lint fixture: it is NOT a simulation-core package,
// so wall-clock reads here are legal and must not be flagged.
package clock

import "time"

// Stamp may read the wall clock: tools outside the core are allowed to.
func Stamp() time.Time {
	return time.Now()
}
