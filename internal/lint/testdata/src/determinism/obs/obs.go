// Package obs is a lint fixture: it borrows the observability layer's
// package name, which is deliberately OUTSIDE the determinism analyzer's
// banned set — request tracing and latency histograms are wall-clock
// territory. Nothing in this file carries a want marker: any diagnostic
// here is an analyzer regression that would outlaw the serving stack's
// instrumentation.
package obs

import "time"

// SpanBounds reads the wall clock twice, the fundamental operation of
// request tracing. Legal here.
func SpanBounds() (time.Time, time.Time) {
	start := time.Now()
	return start, time.Now()
}

// Latency measures elapsed wall time for a latency histogram. Legal here.
func Latency(start time.Time) int64 {
	return time.Since(start).Microseconds()
}
