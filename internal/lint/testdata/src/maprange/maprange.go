// Package maprange is a lint fixture: each function either leaks Go's
// randomized map iteration order into an ordered artifact (flagged) or
// follows an order-independent idiom (clean).
package maprange

import (
	"fmt"
	"sort"
)

// Names returns the keys in randomized map order.
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to \"out\" inside map iteration"
	}
	return out
}

// SortedNames is the blessed collect-then-sort idiom: the append is
// followed by a sort over the same slice, so order cannot leak.
func SortedNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Key builds a cache-key string in map order.
func Key(m map[string]int) string {
	key := ""
	for k, v := range m {
		key += fmt.Sprintf("%s=%d;", k, v) // want "string built with +="
	}
	return key
}

// Dump writes output directly in map order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

// DumpVia hides the write behind a helper; the transitive writer set
// still catches it.
func DumpVia(m map[string]int) {
	for k, v := range m {
		emit(k, v) // want "emit inside map iteration"
	}
}

func emit(k string, v int) {
	fmt.Printf("%s,%d\n", k, v)
}

// Group writes into keyed slots of another map: order-independent.
func Group(m map[string]int) map[int][]string {
	groups := make(map[int][]string)
	for k, v := range m {
		groups[v] = append(groups[v], k)
	}
	return groups
}

// PerIter appends only to a slice scoped to one iteration, so iteration
// order cannot escape the loop body.
func PerIter(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
