package maprange

import (
	"fmt"
	"sort"
)

// The shard-assignment shapes the fabric coordinator must get right:
// grouping scenarios by owner is naturally a map of owner -> indices,
// and dispatch order must not inherit the map's randomized iteration
// order — a re-sharded retry that walked groups in a different order
// would book failures and retries against workers in a different
// sequence run to run.

// AssignLeaky fans grouped work out in map order.
func AssignLeaky(groups map[string][]int) []string {
	var dispatch []string
	for owner := range groups {
		dispatch = append(dispatch, owner) // want "append to \"dispatch\" inside map iteration"
	}
	return dispatch
}

// AssignSorted is the blessed idiom the fabric sweep engine uses:
// group into the map, then walk a sorted owner list.
func AssignSorted(groups map[string][]int) []string {
	dispatch := make([]string, 0, len(groups))
	for owner := range groups {
		dispatch = append(dispatch, owner)
	}
	sort.Strings(dispatch)
	return dispatch
}

// ReportAssignments streams the plan in map order.
func ReportAssignments(groups map[string][]int) {
	for owner, idx := range groups {
		fmt.Printf("%s: %d scenarios\n", owner, len(idx)) // want "fmt.Printf inside map iteration"
	}
}
