// Package sim is a lint fixture: it borrows the sim package name so the
// Scenario root applies, and exercises the closure walk, the observer
// rule, the rdlint:wire marker, and the embedded-field exemption.
package sim

// Scenario is a wire-format root by (package, type) name.
type Scenario struct {
	KernelName string             `json:"KernelName"`
	Stride     int                // want "exported field Scenario.Stride of wire-format struct has no explicit json tag"
	Telemetry  func()             `json:"-"`
	Trace      func(addr uint64)  // want "field Scenario.Trace has func type"
	Device     DeviceConfig       `json:"Device"`
	Workers    map[string]*Worker `json:"Workers"`
	notes      string
}

// DeviceConfig is pulled onto the wire through Scenario.Device.
type DeviceConfig struct {
	Banks int // want "exported field DeviceConfig.Banks of wire-format struct has no explicit json tag"
}

// Worker is pulled onto the wire through a map value behind a pointer.
type Worker struct {
	ID string `json:"ID"`
}

// Sidecar opts in explicitly.
//
// rdlint:wire
type Sidecar struct {
	Label string // want "exported field Sidecar.Label of wire-format struct has no explicit json tag"
}

// Base rides the wire embedded in Wrapped; its own fields are checked
// but the embedding itself needs no tag.
type Base struct {
	ID string `json:"ID"`
}

// Wrapped embeds Base.
//
// rdlint:wire
type Wrapped struct {
	Base
	Extra int `json:"Extra"`
}

// offWire is unexported, unmarked, and referenced by nothing on the
// wire: its bare fields are fine.
type offWire struct {
	Cursor int
}

// use keeps offWire referenced.
func use(o offWire) int { return o.Cursor }

var _ = use
