// Package lockcheck is the fixture for the lock-discipline analyzer:
// a cache with two mutex groups, exercised by correct scoped and
// deferred locking, unguarded accesses, branch-dependent holds, pairing
// violations, and the *Locked caller-holds convention.
package lockcheck

import "sync"

// Cache is the annotated struct under test.
type Cache struct {
	mu      sync.Mutex
	entries map[string]int // guarded by mu
	order   []string       // guarded by mu

	statsMu sync.RWMutex
	hits    int // guarded by statsMu

	ghost int // guarded by nosuch // want "`guarded by nosuch` names no sibling sync.Mutex/RWMutex field"
}

// Get locks with defer: held to function end.
func (c *Cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k]
	return v, ok
}

// Scoped locks and unlocks mid-function around the guarded accesses.
func (c *Cache) Scoped() []string {
	c.mu.Lock()
	snap := make([]string, len(c.order))
	copy(snap, c.order)
	c.mu.Unlock()
	return snap
}

// BadGet reads a guarded field with no lock at all.
func (c *Cache) BadGet(k string) int {
	return c.entries[k] // want "read of entries (guarded by mu) without holding mu"
}

// EarlyReturn unlocks on the early path and falls through locked.
func (c *Cache) EarlyReturn(k string) bool {
	c.mu.Lock()
	if k == "" {
		c.mu.Unlock()
		return false
	}
	c.order = append(c.order, k) // held on the only path reaching here
	c.mu.Unlock()
	return true
}

// Branchy holds the lock on only one of the two paths into the access.
func (c *Cache) Branchy(k string) {
	if k != "" {
		c.mu.Lock()
	}
	c.entries[k] = 1 // want "write of entries (guarded by mu) without holding mu"
	if k != "" {
		c.mu.Unlock() // want "mu.Unlock() but mu is not held on every path"
	}
}

// ReadSnapshot reads under the read lock — enough for a read.
func (c *Cache) ReadSnapshot() int {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	return c.hits
}

// WriteUnderRLock mutates while holding only the read lock.
func (c *Cache) WriteUnderRLock() {
	c.statsMu.RLock()
	c.hits++ // want "write of hits (guarded by statsMu) while holding only the read lock"
	c.statsMu.RUnlock()
}

// DoubleLock re-locks a mutex the path already holds.
func (c *Cache) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "mu.Lock() while mu is already held"
	c.entries["x"] = 1
	c.mu.Unlock()
}

// UnlockNotHeld unlocks without ever locking.
func (c *Cache) UnlockNotHeld() {
	c.mu.Unlock() // want "mu.Unlock() but mu is not held on every path"
}

// evictLocked follows the caller-holds convention and is skipped.
func (c *Cache) evictLocked(k string) {
	delete(c.entries, k)
}

// Evict shows the convention end to end: lock, then call the Locked
// helper.
func (c *Cache) Evict(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked(k)
}

// Async locks inside the goroutine it spawns — the closure's own
// facts, not the spawner's.
func (c *Cache) Async(k string) {
	go func() {
		c.mu.Lock()
		c.entries[k] = 2
		c.mu.Unlock()
	}()
}
