// Package fabric (fixture) exercises the context-plumbing analyzer: a
// serving-tier package where ctx-holding functions detach, sleep,
// call ctx-less HTTP helpers, reach transitive blockers, or skip a
// Ctx-suffixed variant. The package clause says fabric because
// ctxcheck keys on the serving-tier package names.
package fabric

import (
	"context"
	"net/http"
	"time"
)

// Fetch receives a ctx and then issues a request that cannot be
// cancelled.
func Fetch(ctx context.Context, url string) error {
	resp, err := http.Get(url) // want "net/http.Get ignores the ctx this function receives"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Retry sleeps blind instead of selecting on ctx.Done().
func Retry(ctx context.Context, d time.Duration) {
	time.Sleep(d) // want "time.Sleep ignores the ctx this function receives"
}

// Detached throws away the caller's deadline.
func Detached(ctx context.Context) context.Context {
	return context.Background() // want "context.Background() inside a function that already receives a ctx"
}

// pause is a legitimate no-ctx root on its own — but it makes every
// ctx-holding caller a liar.
func pause() {
	time.Sleep(10 * time.Millisecond)
}

// waitRetry blocks one hop further away.
func waitRetry() {
	pause()
}

// Poll holds a ctx and calls into the blocking chain.
func Poll(ctx context.Context) {
	waitRetry() // want "call to waitRetry blocks without accepting a context (reaches time.Sleep)"
}

// sweep is the ctx-less legacy entry point; sweepCtx is its plumbed
// replacement.
func sweep() int { return 1 }

func sweepCtx(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return 1
}

// Run still calls the legacy variant.
func Run(ctx context.Context) int {
	return sweep() // want "sweep has a context-aware variant sweepCtx"
}

// Worker carries an http.Client whose ctx-less helpers are sinks too.
type Worker struct {
	hc *http.Client
}

// Push uses the client helper instead of NewRequestWithContext + Do.
func (w *Worker) Push(ctx context.Context, url string) {
	resp, err := w.hc.Get(url) // want "net/http.Client.Get ignores the ctx this function receives"
	if err == nil {
		resp.Body.Close()
	}
}

// Backoff is the blessed shape: cancellation and the timer race in a
// select, so no diagnostic.
func Backoff(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// heartbeat has no ctx parameter: it is a legitimate root and its
// direct sleep is not ctxcheck's business.
func heartbeat() {
	time.Sleep(time.Second)
}
