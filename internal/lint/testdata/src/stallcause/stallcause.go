// Package stallcause is a lint fixture: a miniature copy of the
// telemetry stall-cause taxonomy with exhaustive and non-exhaustive
// consumers of it.
package stallcause

// StallCause mirrors the telemetry enum shape the analyzer keys on.
type StallCause int

// The taxonomy. NumStallCauses is the open end: adding a cause above it
// must force every consumer below to change.
const (
	StallNone StallCause = iota
	StallRead
	StallWrite
	NumStallCauses
)

// names populates every index: clean.
var names = [NumStallCauses]string{"none", "read", "write"}

// sparse fills only index 1 and leaves holes at 0 and 2.
var sparse = [NumStallCauses]string{StallRead: "read"} // want "populates 1 of 3 entries"

// zeroed is the type's zero value; an empty literal stays legal.
var zeroed = [NumStallCauses]int64{}

// Describe covers every cause: clean.
func Describe(c StallCause) string {
	switch c {
	case StallNone:
		return "none"
	case StallRead:
		return "read"
	case StallWrite:
		return "write"
	}
	return "?"
}

// Classify is partial but carries a default: clean.
func Classify(c StallCause) int {
	switch c {
	case StallRead:
		return 1
	default:
		return 0
	}
}

// Penalty misses StallWrite and has no default.
func Penalty(c StallCause) int {
	switch c { // want "misses StallWrite"
	case StallNone:
		return 0
	case StallRead:
		return 2
	}
	return 1
}

// use keeps the package-level fixtures referenced.
func use() (string, string, int64) { return names[0], sparse[1], zeroed[2] }

var _ = use
