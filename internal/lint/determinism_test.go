package lint

import "testing"

func TestDeterminism(t *testing.T) {
	runFixtureCases(t, Determinism, []fixtureCase{
		{
			name: "core package flags time, global rand, and env reads",
			dirs: []string{"determinism"},
		},
		{
			name: "non-core package may read the wall clock",
			dirs: []string{"determinism/clock"},
		},
		{
			name: "both together still only flag the core",
			dirs: []string{"determinism", "determinism/clock"},
		},
	})
}
