package lint

import "testing"

func TestDeterminism(t *testing.T) {
	runFixtureCases(t, Determinism, []fixtureCase{
		{
			name: "core package flags time, global rand, and env reads",
			dirs: []string{"determinism"},
		},
		{
			name: "non-core package may read the wall clock",
			dirs: []string{"determinism/clock"},
		},
		{
			name: "engine is core: wall-clock timing there still trips",
			dirs: []string{"determinism/engine"},
		},
		{
			name: "obs is the observability layer: wall-clock reads are legal",
			dirs: []string{"determinism/obs"},
		},
		{
			name: "event-queue scheduling: wall-clock bounds and rand tie-breaks trip, pure event-min does not",
			dirs: []string{"determinism/smc"},
		},
		{
			name: "shard ring is core: assignment never consults the clock or global rand",
			dirs: []string{"determinism/shard"},
		},
		{
			name: "trace generator is core: expansion never consults the clock, global rand, or env",
			dirs: []string{"determinism/tracegen"},
		},
		{
			name: "both together still only flag the core",
			dirs: []string{"determinism", "determinism/clock"},
		},
		{
			name: "core and observability side by side flag only the core",
			dirs: []string{"determinism/engine", "determinism/obs"},
		},
	})
}
