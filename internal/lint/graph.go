package lint

// The shared dataflow substrate the second-generation analyzers build
// on: a whole-module call graph with reachability and fixpoint
// propagation (generalizing maprange's writer-set), a declaration index
// for named types (shared with wiretag's closure walk), and the marker
// helpers for the rdlint:* doc-comment annotations. Everything here is
// stdlib-only and deterministic: indexes are built by walking packages,
// files, and declarations in slice order, never by ranging over maps
// where order could leak into diagnostics.

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcSite is where a function is declared: its package and AST.
type funcSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// callGraph indexes every function or method declared with a body in
// the loaded packages, plus the module-internal call edges between
// them. Calls inside function literals are attributed to the enclosing
// declaration — a closure's blocking call is its owner's blocking call.
type callGraph struct {
	// order lists the declared functions in deterministic
	// (package, file, declaration) order.
	order []*types.Func
	funcs map[*types.Func]funcSite
	// callees[f] lists the module functions f calls, in call-site order.
	callees map[*types.Func][]*types.Func
	edges   int
}

// buildCallGraph walks the loaded packages once and returns the graph.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		funcs:   make(map[*types.Func]funcSite),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.order = append(g.order, fn)
				g.funcs[fn] = funcSite{pkg: p, decl: fd}
			}
		}
	}
	for _, fn := range g.order {
		site := g.funcs[fn]
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := qualifiedFunc(site.pkg, call)
			if callee == nil {
				return true
			}
			if _, inModule := g.funcs[callee]; inModule {
				g.callees[fn] = append(g.callees[fn], callee)
				g.edges++
			}
			return true
		})
	}
	return g
}

// reachable returns the transitive callee closure of roots, roots
// included.
func (g *callGraph) reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range g.callees[fn] {
			if !seen[c] {
				seen[c] = true
				work = append(work, c)
			}
		}
	}
	return seen
}

// propagateUp closes seed under "a caller of a member is a member",
// skipping callers for which skip reports true (they are checked by
// other means). The transfer is monotone, so map iteration order can
// only change how many passes the fixpoint takes, never its result.
func (g *callGraph) propagateUp(seed map[*types.Func]bool, skip func(*types.Func) bool) map[*types.Func]bool {
	members := make(map[*types.Func]bool, len(seed))
	for fn, ok := range seed {
		if ok {
			members[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range g.callees {
			if members[fn] || (skip != nil && skip(fn)) {
				continue
			}
			for _, c := range cs {
				if members[c] {
					members[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return members
}

// typeSite is where a named type is declared: its package, AST spec,
// and resolved doc comment (the spec's own doc, falling back to the
// enclosing GenDecl's).
type typeSite struct {
	pkg  *Package
	spec *ast.TypeSpec
	doc  string
}

// buildTypeIndex maps every named type declared in the loaded packages
// to its declaration site.
func buildTypeIndex(pkgs []*Package) map[*types.TypeName]typeSite {
	idx := make(map[*types.TypeName]typeSite)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					doc := ""
					if ts.Doc != nil {
						doc = ts.Doc.Text()
					} else if gd.Doc != nil {
						doc = gd.Doc.Text()
					}
					idx[tn] = typeSite{pkg: p, spec: ts, doc: doc}
				}
			}
		}
	}
	return idx
}

// hasMarker reports whether the comment group mentions the given
// rdlint marker token.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	return cg != nil && strings.Contains(cg.Text(), marker)
}

// fieldComment joins a struct field's doc and trailing line comment —
// field annotations (`guarded by`, `rdlint:nocanon`) may sit in either.
func fieldComment(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, "\n")
}

// namedStructIn unwraps pointers, slices, arrays, and map values to a
// named struct type declared in the loaded module, or nil.
func namedStructIn(t types.Type, idx map[*types.TypeName]typeSite) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); !ok {
				return nil
			}
			tn := u.Obj()
			if _, declared := idx[tn]; !declared {
				return nil
			}
			return tn
		default:
			return nil
		}
	}
}

// baseIdentObj resolves the leftmost identifier of a selector/index
// chain (sw.lines[i], c.stats.Shed, (*d).cfg) to its object, or nil
// when the chain is rooted in something we cannot track (a call result,
// a type assertion).
func baseIdentObj(p *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ctxType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether the signature takes a context.Context
// anywhere in its parameter list.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}
