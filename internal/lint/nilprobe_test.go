package lint

import "testing"

func TestNilProbe(t *testing.T) {
	runFixtureCases(t, NilProbe, []fixtureCase{
		{
			name: "unguarded and unnamed-receiver probe methods flagged, guarded and out-of-contract clean",
			dirs: []string{"nilprobe"},
		},
	})
}
