package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for … range` over a map whose body leaks Go's
// randomized iteration order into an ordered artifact: appending to a
// slice that is never subsequently sorted, building a string with +=, or
// writing output (directly, or through any function in the module that
// transitively writes). This is the bug class that would break
// byte-identical serial-vs-parallel sweeps, CSV goldens, and
// Scenario.Canonical-derived cache keys. The blessed idiom — collect the
// keys, sort, then iterate — is recognized and not flagged.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag order-sensitive work (appends, output, key building) inside map iteration",
	Run:  runMapRange,
}

// writeFuncs are package-level functions that emit ordered output.
var writeFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"io.WriteString": true, "io.Copy": true, "os.WriteFile": true,
}

// writeMethods are method names that emit ordered output on any receiver
// (writers, builders, encoders).
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// sortFuncs are the sort/slices entry points that re-establish a
// deterministic order over a collected slice.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func runMapRange(pkgs []*Package) []Diagnostic {
	writers := buildWriterSet(pkgs)
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					if _, isMap := p.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
						return true
					}
					diags = append(diags, checkMapRangeBody(p, fd, rs, writers)...)
					return true
				})
			}
		}
	}
	return diags
}

// checkMapRangeBody inspects one map-range body for order-sensitive sinks.
func checkMapRangeBody(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, writers map[*types.Func]bool) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// s += expr on a string builds a key/record in map order.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := p.Info.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						diags = append(diags, Diagnostic{
							Pos:     p.pos(n),
							Message: "string built with += inside map iteration; iteration order is randomized — collect and sort first",
						})
					}
				}
			}
			// v = append(v, …) escaping the loop without a later sort.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue // e.g. groups[k] = append(groups[k], …): keyed, order-independent
				}
				obj, ok := p.Info.Uses[target].(*types.Var)
				if !ok {
					if def, okDef := p.Info.Defs[target].(*types.Var); okDef {
						obj = def
					} else {
						continue
					}
				}
				if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
					continue // per-iteration temporary; order can't leak
				}
				if sortedAfter(p, fd, rs, obj) {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:     p.pos(n),
					Message: fmt.Sprintf("append to %q inside map iteration with no later sort; slice order follows the randomized map order", target.Name),
				})
			}
		case *ast.CallExpr:
			if name, ok := callWrites(p, n, writers); ok {
				diags = append(diags, Diagnostic{
					Pos:     p.pos(n),
					Message: fmt.Sprintf("%s inside map iteration writes output in randomized map order; iterate a sorted copy of the keys", name),
				})
			}
		}
		return true
	})
	return diags
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a sort function after the
// range statement, anywhere in the enclosing function — the
// collect-then-sort idiom.
func sortedAfter(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if fn := qualifiedFunc(p, call); fn == nil || !sortFuncs[fn.Pkg().Path()+"."+fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
					return false
				}
				return !found
			})
			if found {
				break
			}
		}
		return !found
	})
	return found
}

// qualifiedFunc resolves a call to a package-level *types.Func, or nil.
func qualifiedFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	return fn
}

// callWrites reports whether the call emits ordered output: a known write
// function, a write-like method, or a module function that transitively
// writes. The returned name labels the diagnostic.
func callWrites(p *Package, call *ast.CallExpr, writers map[*types.Func]bool) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
			if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Recv() != nil && writeMethods[fn.Name()] {
				return fn.Name(), true
			}
		}
	}
	fn := qualifiedFunc(p, call)
	if fn == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
		if writeFuncs[fn.Pkg().Path()+"."+fn.Name()] {
			return fn.Pkg().Path() + "." + fn.Name(), true
		}
	}
	if writers[fn] {
		return fn.Name(), true
	}
	return "", false
}

// buildWriterSet computes the module functions that (transitively) write
// output, by a fixpoint over the static call graph. It is what lets the
// analyzer see through helpers: a loop calling emit(...) is as ordered as
// one calling fmt.Println directly.
func buildWriterSet(pkgs []*Package) map[*types.Func]bool {
	type declInfo struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	decls := make(map[*types.Func]declInfo)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declInfo{pkg: p, body: fd.Body}
				}
			}
		}
	}
	writers := make(map[*types.Func]bool)
	// callees[f] lists module functions f calls; seeded with direct sinks.
	callees := make(map[*types.Func][]*types.Func)
	for fn, di := range decls {
		ast.Inspect(di.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if m, ok := di.pkg.Info.Uses[sel.Sel].(*types.Func); ok {
					if sig, okSig := m.Type().(*types.Signature); okSig && sig.Recv() != nil && writeMethods[m.Name()] {
						writers[fn] = true
						return true
					}
				}
			}
			callee := qualifiedFunc(di.pkg, call)
			if callee == nil {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() == nil && writeFuncs[callee.Pkg().Path()+"."+callee.Name()] {
				writers[fn] = true
				return true
			}
			if _, inModule := decls[callee]; inModule {
				callees[fn] = append(callees[fn], callee)
			}
			return true
		})
	}
	// Propagate writer-ness up the call graph to a fixpoint. Iteration
	// order over the maps cannot affect the final set (the transfer is
	// monotone), only how many passes it takes.
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if writers[fn] {
				continue
			}
			for _, c := range cs {
				if writers[c] {
					writers[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return writers
}
