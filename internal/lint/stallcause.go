package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// StallCauseCheck keeps the stall-cause taxonomy in lockstep with the
// code that consumes it. The attribution invariant — per-cause totals sum
// exactly to Cycles − DataBusBusy, checked at runtime for every kernel ×
// scheme × controller combination — only stays meaningful if adding a
// cause updates every consumer. Two syntactic guarantees enforce that:
// every switch over a StallCause must be exhaustive (or carry a default),
// and every array literal sized by NumStallCauses must populate all
// indices, so a name table like telemetry.stallNames cannot silently gain
// an empty slot.
var StallCauseCheck = &Analyzer{
	Name: "stallcause",
	Doc:  "require exhaustive StallCause switches and fully populated NumStallCauses arrays",
	Run:  runStallCause,
}

const (
	stallCauseType = "StallCause"
	numStallCauses = "NumStallCauses"
)

func runStallCause(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SwitchStmt:
					if d, ok := checkStallSwitch(p, n); ok {
						diags = append(diags, d)
					}
				case *ast.CompositeLit:
					if d, ok := checkStallArray(p, n); ok {
						diags = append(diags, d)
					}
				}
				return true
			})
		}
	}
	return diags
}

// stallCausePkg returns the package defining the named StallCause type
// behind t, or nil if t is not a StallCause.
func stallCausePkg(t types.Type) *types.Package {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != stallCauseType {
		return nil
	}
	return named.Obj().Pkg()
}

// numCauses looks up the NumStallCauses constant in scope.
func numCauses(scope *types.Scope) (int64, bool) {
	c, ok := scope.Lookup(numStallCauses).(*types.Const)
	if !ok {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(c.Val()))
}

// causeNames returns the names of the StallCause constants with the given
// values, in value order, from the defining package's scope.
func causeNames(scope *types.Scope, values []int64) []string {
	byVal := make(map[int64]string)
	for _, name := range scope.Names() { // Names is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || name == numStallCauses {
			continue
		}
		if sp := stallCausePkg(c.Type()); sp == nil {
			continue
		}
		v, _ := constant.Int64Val(constant.ToInt(c.Val()))
		if _, taken := byVal[v]; !taken {
			byVal[v] = name
		}
	}
	out := make([]string, 0, len(values))
	for _, v := range values {
		if name, ok := byVal[v]; ok {
			out = append(out, name)
		} else {
			out = append(out, fmt.Sprintf("%s(%d)", stallCauseType, v))
		}
	}
	return out
}

// checkStallSwitch verifies one switch over a StallCause tag.
func checkStallSwitch(p *Package, s *ast.SwitchStmt) (Diagnostic, bool) {
	if s.Tag == nil {
		return Diagnostic{}, false
	}
	tagType := p.Info.TypeOf(s.Tag)
	if tagType == nil {
		return Diagnostic{}, false
	}
	defPkg := stallCausePkg(tagType)
	if defPkg == nil {
		return Diagnostic{}, false
	}
	n, ok := numCauses(defPkg.Scope())
	if !ok {
		return Diagnostic{}, false
	}
	covered := make(map[int64]bool)
	for _, stmt := range s.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return Diagnostic{}, false // default clause: always safe
		}
		for _, expr := range clause.List {
			tv, ok := p.Info.Types[expr]
			if !ok || tv.Value == nil {
				continue // non-constant case: cannot prove coverage from it
			}
			v, _ := constant.Int64Val(constant.ToInt(tv.Value))
			covered[v] = true
		}
	}
	var missing []int64
	for v := int64(0); v < n; v++ {
		if !covered[v] {
			missing = append(missing, v)
		}
	}
	if len(missing) == 0 {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos: p.pos(s),
		Message: fmt.Sprintf("switch over %s has no default and misses %s; cover every cause or add a default so new causes cannot fall through silently",
			stallCauseType, strings.Join(causeNames(defPkg.Scope(), missing), ", ")),
	}, true
}

// checkStallArray verifies a non-empty array literal whose length is
// spelled NumStallCauses populates every index. The empty literal is the
// type's zero value and stays legal.
func checkStallArray(p *Package, lit *ast.CompositeLit) (Diagnostic, bool) {
	at, ok := lit.Type.(*ast.ArrayType)
	if !ok || at.Len == nil || len(lit.Elts) == 0 {
		return Diagnostic{}, false
	}
	if !mentionsIdent(at.Len, numStallCauses) {
		return Diagnostic{}, false
	}
	tv, ok := p.Info.Types[at.Len]
	if !ok || tv.Value == nil {
		return Diagnostic{}, false
	}
	n, _ := constant.Int64Val(constant.ToInt(tv.Value))
	filled := make(map[int64]bool)
	next := int64(0)
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			ktv, ok := p.Info.Types[kv.Key]
			if !ok || ktv.Value == nil {
				return Diagnostic{}, false // dynamic key: out of scope
			}
			next, _ = constant.Int64Val(constant.ToInt(ktv.Value))
		}
		filled[next] = true
		next++
	}
	var missing []int64
	for v := int64(0); v < n; v++ {
		if !filled[v] {
			missing = append(missing, v)
		}
	}
	if len(missing) == 0 {
		return Diagnostic{}, false
	}
	msg := fmt.Sprintf("array sized by %s populates %d of %d entries", numStallCauses, int64(len(filled)), n)
	if defPkg := stallCauseElemPkg(p, lit); defPkg != nil {
		msg += " (missing " + strings.Join(causeNames(defPkg.Scope(), missing), ", ") + ")"
	}
	return Diagnostic{
		Pos:     p.pos(lit),
		Message: msg + "; a new cause must get an entry here",
	}, true
}

// stallCauseElemPkg finds the package defining StallCause next to the
// NumStallCauses identifier used in the literal's length, for naming the
// missing entries.
func stallCauseElemPkg(p *Package, lit *ast.CompositeLit) *types.Package {
	at := lit.Type.(*ast.ArrayType)
	var pkg *types.Package
	ast.Inspect(at.Len, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != numStallCauses {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
			pkg = obj.Pkg()
			return false
		}
		return true
	})
	return pkg
}

// mentionsIdent reports whether expr contains an identifier named name.
func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
