package lint

import "testing"

func TestHotAlloc(t *testing.T) {
	runFixtureCases(t, HotAlloc, []fixtureCase{
		{name: "hot-path allocation budget", dirs: []string{"hotalloc"}},
	})
}
