package lint

// FuzzParseAllow drives arbitrary bytes through the allowlist parser.
// The parser fronts a hand-edited config file, so the invariant under
// fuzz is totality-with-discipline: never panic, and on success every
// entry carries a known analyzer, a path, a justification, and the
// 1-based line number of a non-comment line in the input.

import (
	"strings"
	"testing"
)

func FuzzParseAllow(f *testing.F) {
	f.Add("# header comment\n\nwiretag internal/sim/sim.go # pinned elsewhere\n")
	f.Add("maprange cmd/rdprof/main.go Stalls # sorted just below\n")
	f.Add("hotalloc internal/rdram/device.go make allocates # pooled at setup\n")
	f.Add("wiretag internal/sim/sim.go\n")
	f.Add("speling internal/sim/sim.go # oops\n")
	f.Add("wiretag # why\n")
	f.Add("## # #\n#\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		al, err := ParseAllowlist(src, "fuzz.allow")
		if err != nil {
			return
		}
		known := make(map[string]bool)
		for _, a := range All() {
			known[a.Name] = true
		}
		lines := strings.Split(src, "\n")
		for _, e := range al.entries {
			if !known[e.Analyzer] {
				t.Fatalf("parsed entry with unknown analyzer %q from %q", e.Analyzer, src)
			}
			if e.Path == "" {
				t.Fatalf("parsed entry with empty path from %q", src)
			}
			if e.Justification == "" {
				t.Fatalf("parsed entry with empty justification from %q", src)
			}
			if e.Line < 1 || e.Line > len(lines) {
				t.Fatalf("entry line %d out of range for %d-line input", e.Line, len(lines))
			}
			raw := strings.TrimSpace(lines[e.Line-1])
			if raw == "" || strings.HasPrefix(raw, "#") {
				t.Fatalf("entry points at blank/comment line %d of %q", e.Line, src)
			}
		}
	})
}
