package lint

import "testing"

func TestWireTag(t *testing.T) {
	runFixtureCases(t, WireTag, []fixtureCase{
		{
			name: "untagged fields on roots, closure members, marked structs, and bare observers flagged",
			dirs: []string{"wiretag"},
		},
	})
}
