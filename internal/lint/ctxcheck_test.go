package lint

import "testing"

func TestCtxCheck(t *testing.T) {
	runFixtureCases(t, CtxCheck, []fixtureCase{
		{name: "serving-tier context plumbing", dirs: []string{"ctxcheck"}},
	})
}
