package lint

import "testing"

func TestMapRange(t *testing.T) {
	runFixtureCases(t, MapRange, []fixtureCase{
		{
			name: "order leaks flagged, sorted and keyed idioms clean",
			dirs: []string{"maprange"},
		},
	})
}
