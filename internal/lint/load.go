package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// ImportPath is the package's module-qualified import path.
	ImportPath string
	// Dir is the absolute directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves CLI package patterns (interpreted relative to cwd) into
// module-relative package directories, sorted and deduplicated. A pattern
// ending in "/..." walks; other patterns name a single directory. Walks
// skip testdata, vendor, and hidden directories — unless the walk base
// itself lies inside a testdata tree, so the fixture packages can be
// linted explicitly (CI runs the suite over them expecting findings).
func Expand(root, cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(abs string) error {
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("lint: %s is outside module root %s", abs, root)
		}
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
		return nil
	}
	for _, pat := range patterns {
		base, walk := pat, false
		if b, ok := strings.CutSuffix(pat, "/..."); ok {
			base, walk = b, true
			if base == "" || base == "." {
				base = "."
			}
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, base)
		}
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: %s is not a directory", pat, abs)
		}
		if !walk {
			if !hasGoFiles(abs) {
				return nil, fmt.Errorf("lint: no Go files in %s", abs)
			}
			if err := add(abs); err != nil {
				return nil, err
			}
			continue
		}
		insideTestdata := strings.Contains(abs+string(filepath.Separator), string(filepath.Separator)+"testdata"+string(filepath.Separator))
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "vendor") {
				return filepath.SkipDir
			}
			if path != abs && name == "testdata" && !insideTestdata {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && analyzable(e.Name()) {
			return true
		}
	}
	return false
}

// analyzable reports whether a file name is part of the package under
// analysis. Test files are excluded: the invariants guard the simulator
// and its tools, and goldens pin the tests' own behaviour.
func analyzable(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loader type-checks module packages on demand. Imports inside the module
// resolve by a path prefix mapping (no `go list` subprocess); imports
// outside it (the standard library) resolve through the "source"
// compiler importer, which type-checks from $GOROOT/src.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path -> loaded module package
	loading map[string]bool
}

// Load parses and type-checks the packages at the given module-relative
// directories (plus, transitively, every module package they import) and
// returns the requested ones sorted by import path.
func Load(root, modPath string, dirs []string) ([]*Package, error) {
	// The source importer consults go/build's default context; with cgo
	// disabled it selects the pure-Go variants of net and friends, so the
	// whole load is parse-and-typecheck with no C toolchain involved.
	build.Default.CgoEnabled = false
	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// importPathFor maps a module-relative directory to its import path.
func (l *loader) importPathFor(rel string) string {
	if rel == "." || rel == "" {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer for the type-checker: module-local
// paths load from their directory, everything else defers to the source
// importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := "."
		if path != l.modPath {
			rel = filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/"))
		}
		p, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

// loadDir parses and type-checks one module package by its
// module-relative directory, caching by import path.
func (l *loader) loadDir(rel string) (*Package, error) {
	ipath := l.importPathFor(rel)
	if p, ok := l.pkgs[ipath]; ok {
		return p, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("lint: import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	dir := filepath.Join(l.root, rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !analyzable(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(ipath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", ipath, err)
	}
	p := &Package{
		ImportPath: ipath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[ipath] = p
	return p, nil
}
