package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxCheck enforces context plumbing in the serving tier. In the
// packages named by ctxPackages, a function that receives a
// context.Context must actually thread it: calling context.Background()
// or context.TODO() there detaches the work from its caller's deadline,
// calling a ctx-less blocking primitive (time.Sleep, http.Get, …)
// ignores cancellation outright, calling a module function that
// transitively blocks without accepting a context hides the same bug
// one hop away (a call-graph fixpoint, mirroring maprange's
// writer-set), and calling F when an FCtx variant exists forfeits the
// cancellation the variant was built to honor. Functions without a ctx
// parameter are the legitimate roots (heartbeat loops, main) and are
// not checked.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "require ctx-holding functions in the serving tier to thread their context into blocking work",
	Run:  runCtxCheck,
}

// ctxPackages names the serving-tier packages (by package name) where
// the context contract is enforced. The simulation core is excluded:
// it is synchronous and deterministic by design, and the determinism
// analyzer already bans real-time waits there.
var ctxPackages = map[string]bool{
	"service": true,
	"client":  true,
	"fabric":  true,
	"engine":  true,
}

// ctxSinkFuncs are ctx-less blocking package functions with a
// well-known ctx-aware alternative.
var ctxSinkFuncs = map[string]string{
	"time.Sleep":        "select on ctx.Done() and time.After instead",
	"net/http.Get":      "use http.NewRequestWithContext",
	"net/http.Post":     "use http.NewRequestWithContext",
	"net/http.PostForm": "use http.NewRequestWithContext",
	"net/http.Head":     "use http.NewRequestWithContext",
}

// ctxSinkMethods are ctx-less blocking methods, keyed by receiver type
// then method name.
var ctxSinkMethods = map[string]map[string]string{
	"net/http.Client": {
		"Get":      "use http.NewRequestWithContext and Client.Do",
		"Post":     "use http.NewRequestWithContext and Client.Do",
		"PostForm": "use http.NewRequestWithContext and Client.Do",
		"Head":     "use http.NewRequestWithContext and Client.Do",
	},
}

func runCtxCheck(pkgs []*Package) []Diagnostic {
	graph := buildCallGraph(pkgs)

	// Fixpoint: module functions that have no ctx parameter and
	// (transitively) reach a blocking sink. Functions that do take a ctx
	// are excluded from propagation — their own body is checked
	// directly, so a correctly plumbed wrapper does not taint callers.
	seed := make(map[*types.Func]bool)
	reason := make(map[*types.Func]string)
	for _, fn := range graph.order {
		site := graph.funcs[fn]
		if funcHasCtx(fn) {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, _, ok := ctxSinkCall(site.pkg, call); ok {
				seed[fn] = true
				if reason[fn] == "" {
					reason[fn] = name
				}
			}
			return true
		})
	}
	blockers := graph.propagateUp(seed, funcHasCtx)
	// Back-propagate a representative sink name for the messages;
	// deterministic because graph.order is.
	for changed := true; changed; {
		changed = false
		for _, fn := range graph.order {
			if !blockers[fn] || reason[fn] != "" {
				continue
			}
			for _, callee := range graph.callees[fn] {
				if r := reason[callee]; r != "" {
					reason[fn] = r
					changed = true
					break
				}
			}
		}
	}

	var diags []Diagnostic
	for _, fn := range graph.order {
		site := graph.funcs[fn]
		if !ctxPackages[site.pkg.Types.Name()] || !funcHasCtx(fn) {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := qualifiedFunc(site.pkg, call)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
				(callee.Name() == "Background" || callee.Name() == "TODO") {
				diags = append(diags, Diagnostic{
					Pos:     site.pkg.pos(call),
					Message: fmt.Sprintf("context.%s() inside a function that already receives a ctx: thread the caller's context instead of detaching", callee.Name()),
				})
				return true
			}
			if name, hint, ok := ctxSinkCall(site.pkg, call); ok {
				diags = append(diags, Diagnostic{
					Pos:     site.pkg.pos(call),
					Message: fmt.Sprintf("%s ignores the ctx this function receives; %s", name, hint),
				})
				return true
			}
			if callee == nil {
				return true
			}
			if blockers[callee] {
				diags = append(diags, Diagnostic{
					Pos:     site.pkg.pos(call),
					Message: fmt.Sprintf("call to %s blocks without accepting a context (reaches %s); plumb ctx through or add a ctx-aware variant", callee.Name(), reason[callee]),
				})
				return true
			}
			if v := ctxVariantOf(graph, callee); v != nil {
				diags = append(diags, Diagnostic{
					Pos:     site.pkg.pos(call),
					Message: fmt.Sprintf("%s has a context-aware variant %s; call it with this function's ctx", callee.Name(), v.Name()),
				})
			}
			return true
		})
	}
	return diags
}

// funcHasCtx reports whether fn's signature takes a context.Context.
func funcHasCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && hasCtxParam(sig)
}

// ctxSinkCall matches a call against the known ctx-less blocking
// primitives, returning a display name and the fix hint.
func ctxSinkCall(p *Package, call *ast.CallExpr) (name, hint string, ok bool) {
	fn := qualifiedFunc(p, call)
	if fn == nil {
		return "", "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig {
		return "", "", false
	}
	if sig.Recv() == nil {
		qual := fn.Pkg().Path() + "." + fn.Name()
		if hint, found := ctxSinkFuncs[qual]; found {
			return qual, hint, true
		}
		return "", "", false
	}
	recv := sig.Recv().Type()
	if ptr, okPtr := recv.(*types.Pointer); okPtr {
		recv = ptr.Elem()
	}
	named, okNamed := recv.(*types.Named)
	if !okNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	recvName := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if methods, found := ctxSinkMethods[recvName]; found {
		if hint, foundM := methods[fn.Name()]; foundM {
			return recvName + "." + fn.Name(), hint, true
		}
	}
	return "", "", false
}

// ctxVariantOf finds a `<Name>Ctx` sibling of callee — same package for
// functions, same receiver type for methods — whose first parameter is
// a context.Context.
func ctxVariantOf(g *callGraph, callee *types.Func) *types.Func {
	if funcHasCtx(callee) {
		return nil
	}
	want := callee.Name() + "Ctx"
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for _, fn := range g.order {
		if fn.Name() != want || fn.Pkg() != callee.Pkg() {
			continue
		}
		vsig, okSig := fn.Type().(*types.Signature)
		if !okSig || vsig.Params().Len() == 0 || !isContextType(vsig.Params().At(0).Type()) {
			continue
		}
		if (sig.Recv() == nil) != (vsig.Recv() == nil) {
			continue
		}
		if sig.Recv() != nil && !types.Identical(recvNamed(sig), recvNamed(vsig)) {
			continue
		}
		return fn
	}
	return nil
}

// recvNamed strips a pointer receiver to its named type for identity
// comparison.
func recvNamed(sig *types.Signature) types.Type {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
