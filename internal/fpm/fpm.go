// Package fpm models the paper's *prior* experimental system (§3): a
// Stream Memory Controller built as an ASIC next to an Intel i860, in
// front of two banks of 1 Mbit × 36 fast-page-mode DRAM with 1 KB pages.
// The paper's RDRAM study inherits its simulation methodology from this
// system ("analytic and simulation results for the fast-page mode systems
// correlate highly with measured hardware performance"), so reproducing
// its headline numbers — the SMC exploiting over 90% of attainable
// bandwidth and speedups of roughly 2-13× over normal caching and up to
// ~23× over non-caching natural-order accesses — closes the loop on the
// paper's §4.2 validation argument.
//
// The model is deliberately simpler than the Direct RDRAM one, as the
// hardware was: two word-interleaved banks, each with one open page and a
// single-access pipeline; a page hit costs HitCycles on the bank, a page
// miss MissCycles (RAS precharge + row access). There are no split
// command/data buses and no packets.
package fpm

import "fmt"

// Timing parameterizes the FPM parts in memory-bus cycles (25 ns at the
// i860 system's 40 MHz).
type Timing struct {
	// HitCycles is the page-mode (CAS-only) access time.
	HitCycles int
	// MissCycles is the full random access: precharge + RAS + CAS.
	MissCycles int
}

// DefaultTiming matches a -50/-30ns fast-page-mode part on a 25 ns bus:
// 50 ns CAS page-mode cycles and a ~250 ns full random cycle.
func DefaultTiming() Timing { return Timing{HitCycles: 2, MissCycles: 10} }

// Geometry describes the memory organization: word-interleaved banks, an
// open page per bank.
type Geometry struct {
	// Banks is the number of interleaved banks (the built system had 2).
	Banks int
	// PageWords is the DRAM page size in 64-bit words per bank.
	PageWords int
}

// DefaultGeometry is the paper's system: two banks, 1 KB (128-word) pages.
func DefaultGeometry() Geometry { return Geometry{Banks: 2, PageWords: 128} }

// Config bundles a system.
type Config struct {
	Timing   Timing
	Geometry Geometry
}

// DefaultConfig returns the §3 experimental system.
func DefaultConfig() Config { return Config{Timing: DefaultTiming(), Geometry: DefaultGeometry()} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Timing.HitCycles <= 0 || c.Timing.MissCycles < c.Timing.HitCycles:
		return fmt.Errorf("fpm: bad timing %+v", c.Timing)
	case c.Geometry.Banks <= 0 || c.Geometry.PageWords <= 0:
		return fmt.Errorf("fpm: bad geometry %+v", c.Geometry)
	}
	return nil
}

// Memory is the two-bank fast-page-mode array. Words interleave across
// banks (addr mod Banks); each bank holds one open page.
type Memory struct {
	cfg   Config
	ready []int64 // per-bank busy-until
	page  []int64 // per-bank open page (-1 = closed)

	accesses, hits int64
	lastDone       int64
}

// NewMemory builds a memory; the configuration must be valid.
func NewMemory(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{
		cfg:   cfg,
		ready: make([]int64, cfg.Geometry.Banks),
		page:  make([]int64, cfg.Geometry.Banks),
	}
	for i := range m.page {
		m.page[i] = -1
	}
	return m
}

// Access performs one word access no earlier than at and returns its
// completion time. Different banks overlap; an access occupies its bank
// for the hit or miss service time.
func (m *Memory) Access(addr, at int64) (done int64) {
	bank := int(addr % int64(m.cfg.Geometry.Banks))
	page := addr / int64(m.cfg.Geometry.Banks) / int64(m.cfg.Geometry.PageWords)
	start := at
	if m.ready[bank] > start {
		start = m.ready[bank]
	}
	service := int64(m.cfg.Timing.MissCycles)
	if m.page[bank] == page {
		service = int64(m.cfg.Timing.HitCycles)
		m.hits++
	}
	m.accesses++
	m.page[bank] = page
	done = start + service
	m.ready[bank] = done
	if done > m.lastDone {
		m.lastDone = done
	}
	return done
}

// HitRate is the fraction of accesses that hit an open page.
func (m *Memory) HitRate() float64 {
	if m.accesses == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.accesses)
}

// Cycles is the completion time of the last access.
func (m *Memory) Cycles() int64 { return m.lastDone }

// PeakCyclesPerWord is the best sustainable per-word time: page-mode
// cycles spread over the interleaved banks, floored at one word per cycle
// (the memory bus).
func (c Config) PeakCyclesPerWord() float64 {
	v := float64(c.Timing.HitCycles) / float64(c.Geometry.Banks)
	if v < 1 {
		return 1
	}
	return v
}

// SMCAsymptoticBound is the fast-page-mode SMC limit the paper's §5.2
// contrasts with the Rambus one: "In fast-page mode systems, performance
// is limited by the number of DRAM page misses that a computation
// incurs." Per round-robin tour the MSU moves f elements for each of the
// kernel's streams; every switch to a *different vector's* pages costs one
// page miss per interleaved bank (read and write FIFOs of the same vector
// ride each other's open pages), and everything else runs in page mode.
// streams is the FIFO count (s), vectors the distinct vector count.
func (c Config) SMCAsymptoticBound(f, streams, vectors int) float64 {
	if f < 1 || streams < 1 || vectors < 1 {
		return 0
	}
	words := float64(f * streams)
	perBank := words / float64(c.Geometry.Banks)
	misses := float64(vectors)
	if misses > perBank {
		misses = perBank
	}
	bankTime := misses*float64(c.Timing.MissCycles) + (perBank-misses)*float64(c.Timing.HitCycles)
	cw := bankTime / words
	if cw < 1 {
		cw = 1 // bus floor
	}
	return 100 * c.PeakCyclesPerWord() / cw
}
