package fpm

import (
	"testing"

	"rdramstream/internal/stream"
)

// vectors lays out n-element vectors in separate page-group regions, the
// FPM analogue of the RDRAM layout helper (distinct vectors share no
// pages).
func vectors(count, n int, strideW int64) []int64 {
	g := DefaultGeometry()
	region := int64(g.Banks*g.PageWords) * 64
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(i) * region
	}
	_ = n
	_ = strideW
	return out
}

func daxpyKernel(n int, stride int64) *stream.Kernel {
	b := vectors(2, n, stride)
	return stream.Daxpy(2, b[0], b[1], n, stride)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Timing: Timing{HitCycles: 0, MissCycles: 10}, Geometry: DefaultGeometry()},
		{Timing: Timing{HitCycles: 5, MissCycles: 2}, Geometry: DefaultGeometry()},
		{Timing: DefaultTiming(), Geometry: Geometry{Banks: 0, PageWords: 128}},
		{Timing: DefaultTiming(), Geometry: Geometry{Banks: 2, PageWords: 0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMemoryPageMode(t *testing.T) {
	m := NewMemory(DefaultConfig())
	// First touch misses, same-page follow-ups hit; the two banks
	// interleave on consecutive words.
	d0 := m.Access(0, 0) // bank 0 miss
	if d0 != 10 {
		t.Errorf("first access done at %d, want MissCycles", d0)
	}
	d1 := m.Access(1, 0) // bank 1 miss, overlapped
	if d1 != 10 {
		t.Errorf("bank-1 access done at %d, want overlapped 10", d1)
	}
	d2 := m.Access(2, 10) // bank 0 page hit
	if d2 != 12 {
		t.Errorf("page hit done at %d, want 12", d2)
	}
	if hr := m.HitRate(); hr < 0.33 || hr > 0.34 {
		t.Errorf("hit rate %v", hr)
	}
	// A far-away word in bank 0 misses again.
	if done := m.Access(int64(2*DefaultGeometry().PageWords*4), 12); done != 12+10 {
		t.Errorf("page switch done at %d", done)
	}
}

func TestPeakCyclesPerWord(t *testing.T) {
	if got := DefaultConfig().PeakCyclesPerWord(); got != 1 {
		t.Errorf("peak = %v, want 1 (two banks of 2-cycle page mode)", got)
	}
	slow := Config{Timing: Timing{HitCycles: 6, MissCycles: 12}, Geometry: Geometry{Banks: 2, PageWords: 128}}
	if got := slow.PeakCyclesPerWord(); got != 3 {
		t.Errorf("peak = %v, want 3", got)
	}
}

func TestModeStrings(t *testing.T) {
	if NonCaching.String() != "non-caching" || Caching.String() != "caching" || SMCMode.String() != "smc" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestRunValidation(t *testing.T) {
	k := daxpyKernel(64, 1)
	if _, err := Run(Config{}, k, RunConfig{Mode: SMCMode}); err == nil {
		t.Error("expected config error")
	}
	bad := daxpyKernel(64, 1)
	bad.Compute = nil
	if _, err := Run(DefaultConfig(), bad, RunConfig{Mode: SMCMode}); err == nil {
		t.Error("expected kernel error")
	}
	if _, err := Run(DefaultConfig(), k, RunConfig{Mode: Mode(9)}); err == nil {
		t.Error("expected mode error")
	}
}

func TestSMCExploitsOverNinetyPercent(t *testing.T) {
	// §3: "an SMC significantly improves the effective memory bandwidth,
	// exploiting over 90% of the attainable bandwidth for long-vector
	// computations".
	k := daxpyKernel(4096, 1)
	res, err := Run(DefaultConfig(), k, RunConfig{Mode: SMCMode, FIFODepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.PercentAttainable < 90 {
		t.Errorf("SMC attainable = %.1f%%, want > 90%%", res.PercentAttainable)
	}
	if res.HitRate < 0.9 {
		t.Errorf("SMC hit rate = %.2f", res.HitRate)
	}
}

func TestSpeedupsMatchPriorSystem(t *testing.T) {
	// §3: "speedups by factors of two to 13 over normal caching and of up
	// to 23 over non-caching accesses issued in the natural order". The
	// big factors come from non-unit strides; assert the reproduced ranges
	// bracket sensibly.
	minCache, maxCache := 1e9, 0.0
	maxNon := 0.0
	for _, stride := range []int64{1, 2, 4, 8, 16} {
		k := daxpyKernel(2048, stride)
		smcRes, err := Run(DefaultConfig(), k, RunConfig{Mode: SMCMode, FIFODepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		cacheRes, err := Run(DefaultConfig(), k, RunConfig{Mode: Caching, LineWords: 4})
		if err != nil {
			t.Fatal(err)
		}
		nonRes, err := Run(DefaultConfig(), k, RunConfig{Mode: NonCaching})
		if err != nil {
			t.Fatal(err)
		}
		sc := cacheRes.CyclesPerWord / smcRes.CyclesPerWord
		sn := nonRes.CyclesPerWord / smcRes.CyclesPerWord
		if sc < minCache {
			minCache = sc
		}
		if sc > maxCache {
			maxCache = sc
		}
		if sn > maxNon {
			maxNon = sn
		}
		if sc < 1 || sn < 1 {
			t.Errorf("stride %d: SMC slower than baseline (cache %.2f, non %.2f)", stride, sc, sn)
		}
	}
	if minCache < 1.2 || maxCache > 20 {
		t.Errorf("caching speedup range [%.2f, %.2f] implausible vs paper's 2-13", minCache, maxCache)
	}
	if maxCache < 4 {
		t.Errorf("max caching speedup %.2f, expected the strided cases well above 4", maxCache)
	}
	if maxNon < 5 || maxNon > 40 {
		t.Errorf("max non-caching speedup %.2f vs paper's up-to-23", maxNon)
	}
}

func TestCachingBeatsNonCachingAtUnitStride(t *testing.T) {
	k := daxpyKernel(2048, 1)
	cacheRes, _ := Run(DefaultConfig(), k, RunConfig{Mode: Caching, LineWords: 4})
	nonRes, _ := Run(DefaultConfig(), k, RunConfig{Mode: NonCaching})
	if cacheRes.CyclesPerWord >= nonRes.CyclesPerWord {
		t.Errorf("caching (%.2f c/w) should beat serial non-caching (%.2f c/w) at stride 1",
			cacheRes.CyclesPerWord, nonRes.CyclesPerWord)
	}
}

func TestDeeperFIFOHigherHitRate(t *testing.T) {
	k := daxpyKernel(2048, 1)
	shallow, _ := Run(DefaultConfig(), k, RunConfig{Mode: SMCMode, FIFODepth: 4})
	deep, _ := Run(DefaultConfig(), k, RunConfig{Mode: SMCMode, FIFODepth: 128})
	if deep.HitRate <= shallow.HitRate {
		t.Errorf("deep FIFO hit rate %.2f should beat shallow %.2f", deep.HitRate, shallow.HitRate)
	}
	if deep.PercentAttainable <= shallow.PercentAttainable {
		t.Errorf("deep FIFO %.1f%% should beat shallow %.1f%%", deep.PercentAttainable, shallow.PercentAttainable)
	}
}

func TestSMCAsymptoticBound(t *testing.T) {
	cfg := DefaultConfig()
	// Deeper FIFOs amortize the per-burst page misses: the bound rises
	// toward 100% of attainable.
	var prev float64
	for _, f := range []int{4, 16, 64, 256} {
		b := cfg.SMCAsymptoticBound(f, 3, 2)
		if b <= prev || b > 100 {
			t.Errorf("depth %d: bound %.1f not increasing in (0,100]", f, b)
		}
		prev = b
	}
	if cfg.SMCAsymptoticBound(0, 3, 2) != 0 || cfg.SMCAsymptoticBound(8, 0, 2) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// The bound must dominate the simulation and track it closely for
	// long vectors (the §5.2 contrast: page misses, not bus turnaround,
	// limit FPM systems). daxpy: s=3 streams over 2 vectors.
	k := daxpyKernel(8192, 1)
	for _, f := range []int{16, 64} {
		res, err := Run(cfg, k, RunConfig{Mode: SMCMode, FIFODepth: f})
		if err != nil {
			t.Fatal(err)
		}
		bound := cfg.SMCAsymptoticBound(f, 3, 2)
		if res.PercentAttainable > bound+1 {
			t.Errorf("depth %d: sim %.1f exceeds bound %.1f", f, res.PercentAttainable, bound)
		}
		if res.PercentAttainable < bound-8 {
			t.Errorf("depth %d: sim %.1f far below bound %.1f", f, res.PercentAttainable, bound)
		}
	}
}
