package fpm

import (
	"fmt"

	"rdramstream/internal/engine"
	"rdramstream/internal/stream"
)

// Access mode for the three ways the §3 system could reach memory.
type Mode int

const (
	// NonCaching issues each element access serially in natural order —
	// the i860's cache-bypassing pipelined loads, with each load waiting
	// for its data before the next issues.
	NonCaching Mode = iota
	// Caching services cacheline fills (and line-granularity stores) in
	// natural order, as the i860's cache would.
	Caching
	// SMC reorders accesses per stream through FIFOs: the MSU services one
	// stream at a time in long bursts, amortizing each page miss over a
	// FIFO's worth of page hits.
	SMCMode
)

func (m Mode) String() string {
	switch m {
	case NonCaching:
		return "non-caching"
	case Caching:
		return "caching"
	case SMCMode:
		return "smc"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// RunConfig parameterizes one run.
type RunConfig struct {
	Mode Mode
	// LineWords is the cacheline size for Caching mode (i860: 32 bytes).
	LineWords int
	// FIFODepth is the per-stream SBU depth for SMC mode.
	FIFODepth int
}

// Result reports timing and bandwidth of one fast-page-mode run.
type Result struct {
	Cycles      int64
	UsefulWords int64
	// CyclesPerWord is the average time per element the processor touched.
	CyclesPerWord float64
	// PercentAttainable compares against the configuration's peak
	// page-mode rate, counting only useful words.
	PercentAttainable float64
	HitRate           float64
}

// Run executes the kernel's access pattern on a fresh memory in the given
// mode. Only timing is modeled (the FPM system's functional behaviour adds
// nothing over the RDRAM model's verified path).
func Run(cfg Config, k *stream.Kernel, rc RunConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := k.Validate(); err != nil {
		return Result{}, err
	}
	mem := NewMemory(cfg)
	var cycles int64
	switch rc.Mode {
	case NonCaching:
		cycles = runNonCaching(mem, k)
	case Caching:
		if rc.LineWords <= 0 {
			rc.LineWords = 4
		}
		cycles = runCaching(mem, k, rc.LineWords)
	case SMCMode:
		if rc.FIFODepth <= 0 {
			rc.FIFODepth = 32
		}
		cycles = runSMC(mem, k, rc.FIFODepth)
	default:
		return Result{}, fmt.Errorf("fpm: unknown mode %d", int(rc.Mode))
	}
	useful := int64(k.Iterations()) * int64(len(k.Streams))
	res := Result{
		Cycles:      cycles,
		UsefulWords: useful,
		HitRate:     mem.HitRate(),
	}
	if useful > 0 && cycles > 0 {
		res.CyclesPerWord = float64(cycles) / float64(useful)
		res.PercentAttainable = engine.PercentOfPeak(useful, cycles, cfg.PeakCyclesPerWord())
	}
	return res, nil
}

// runNonCaching: every element access issues after the previous one's data
// returned (a serial load/store pipeline of depth one).
func runNonCaching(mem *Memory, k *stream.Kernel) int64 {
	var now int64
	for i := 0; i < k.Iterations(); i++ {
		for _, st := range k.Streams {
			now = mem.Access(st.Addr(i), now)
		}
	}
	return now
}

// runCaching: line-granularity transactions in natural order; a new line
// is fetched (or stored) word by word, words overlapping across the
// interleaved banks; the next iteration begins when its operands arrived.
func runCaching(mem *Memory, k *stream.Kernel, lineWords int) int64 {
	lw := int64(lineWords)
	cur := make([]int64, len(k.Streams))
	for i := range cur {
		cur[i] = -1
	}
	var gate int64 // operand availability of the previous iteration
	var last int64
	for i := 0; i < k.Iterations(); i++ {
		var iterDone int64
		for si, st := range k.Streams {
			addr := st.Addr(i)
			line := addr / lw
			if cur[si] != line {
				cur[si] = line
				var lineDone int64
				for w := int64(0); w < lw; w++ {
					done := mem.Access(line*lw+w, gate)
					if done > lineDone {
						lineDone = done
					}
				}
				if lineDone > last {
					last = lineDone
				}
				if st.Mode == stream.Read && lineDone > iterDone {
					iterDone = lineDone
				}
			}
		}
		if iterDone > 0 {
			gate = iterDone
		}
	}
	return last
}

// runSMC: the MSU drains one stream FIFO at a time in bursts of up to
// FIFODepth elements, so each burst pays the page misses once and rides
// page mode for the rest. The CPU-side ordering constraints are absorbed
// by the FIFOs exactly as in the RDRAM SMC; with long vectors the burst
// schedule below is the steady state the real MSU reaches.
func runSMC(mem *Memory, k *stream.Kernel, depth int) int64 {
	type cursor struct {
		next int // next element to transfer
	}
	cursors := make([]cursor, len(k.Streams))
	var now int64
	remaining := int64(k.Iterations()) * int64(len(k.Streams))
	for remaining > 0 {
		for si, st := range k.Streams {
			c := &cursors[si]
			burst := depth
			if left := st.Length - c.next; burst > left {
				burst = left
			}
			var burstDone int64
			for j := 0; j < burst; j++ {
				done := mem.Access(st.Addr(c.next), now)
				if done > burstDone {
					burstDone = done
				}
				c.next++
				remaining--
			}
			if burstDone > now {
				now = burstDone
			}
		}
	}
	return mem.Cycles()
}
