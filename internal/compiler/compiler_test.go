package compiler

import (
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/natorder"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
)

// daxpyLoop is the IR form of y[i] = a*x[i] + y[i].
func daxpyLoop(n int) Loop {
	return Loop{
		N: n,
		Body: []Ref{
			{Array: "x", Scale: 1},
			{Array: "y", Scale: 1},
			{Array: "y", Scale: 1, Write: true},
		},
		Compute: func(_ int, in []float64) []float64 { return []float64{2*in[0] + in[1]} },
	}
}

// hydroLoop is the IR form of the Livermore hydro fragment.
func hydroLoop(n int) Loop {
	return Loop{
		N: n,
		Body: []Ref{
			{Array: "y", Scale: 1},
			{Array: "zx", Scale: 1, Offset: 10},
			{Array: "zx", Scale: 1, Offset: 11},
			{Array: "x", Scale: 1, Write: true},
		},
		Compute: func(_ int, in []float64) []float64 {
			return []float64{0.5 + in[0]*(2*in[1]+3*in[2])}
		},
	}
}

func TestDetectDaxpy(t *testing.T) {
	infos, err := Detect(daxpyLoop(128))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("streams = %d", len(infos))
	}
	if infos[0].Ref.Array != "x" || infos[0].Ref.Write {
		t.Errorf("first stream = %+v", infos[0])
	}
	if !infos[2].Ref.Write {
		t.Error("third stream should be the write")
	}
}

func TestDetectRejections(t *testing.T) {
	ok := daxpyLoop(64)
	cases := []struct {
		name   string
		mutate func(*Loop)
		want   string
	}{
		{"zero trip", func(l *Loop) { l.N = 0 }, "trip count"},
		{"empty body", func(l *Loop) { l.Body = nil }, "empty"},
		{"nil compute", func(l *Loop) { l.Compute = nil }, "computation"},
		{"scalar ref", func(l *Loop) { l.Body[0].Scale = 0 }, "scale"},
		{"negative stride", func(l *Loop) { l.Body[0].Scale = -1 }, "scale"},
		{"mixed strides", func(l *Loop) { l.Body[1].Scale = 2; l.Body[2].Scale = 2 }, "differs"},
		{"read after write", func(l *Loop) {
			l.Body = []Ref{{Array: "y", Scale: 1, Write: true}, {Array: "x", Scale: 1}}
		}, "after a write"},
		{"duplicate read", func(l *Loop) {
			l.Body = []Ref{{Array: "x", Scale: 1}, {Array: "x", Scale: 1}, {Array: "y", Scale: 1, Write: true}}
		}, "duplicate"},
		{"carried dependence", func(l *Loop) {
			l.Body = []Ref{{Array: "y", Scale: 1, Offset: 1}, {Array: "y", Scale: 1, Write: true}}
		}, "dependence"},
	}
	for _, c := range cases {
		l := ok
		l.Body = append([]Ref(nil), ok.Body...)
		c.mutate(&l)
		_, err := Detect(l)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestDetectAllowsOffsetReads(t *testing.T) {
	// hydro's zx[i+10] and zx[i+11] are legal: overlapping reads.
	if _, err := Detect(hydroLoop(64)); err != nil {
		t.Fatalf("hydro should be streamable: %v", err)
	}
}

func TestFootprints(t *testing.T) {
	names, words, err := Footprints(hydroLoop(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "y" || names[1] != "zx" || names[2] != "x" {
		t.Fatalf("names = %v", names)
	}
	// zx needs elements up to index 99+11.
	if words[1] != 111 {
		t.Errorf("zx footprint = %d, want 111", words[1])
	}
	if words[0] != 100 || words[2] != 100 {
		t.Errorf("footprints = %v", words)
	}
}

func TestCompileRequiresBindings(t *testing.T) {
	l := daxpyLoop(64)
	if _, err := Compile(l, Binding{"x": 0}); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Errorf("err = %v", err)
	}
}

// TestCompiledLoopRunsEndToEnd is the full §3 software path: detect the
// streams of an IR loop, lay out its arrays, bind them, and run the
// compiled kernel through both controllers with functional verification.
func TestCompiledLoopRunsEndToEnd(t *testing.T) {
	for _, mode := range []sim.Mode{sim.NaturalOrder, sim.SMC} {
		l := hydroLoop(256)
		names, words, err := Footprints(l)
		if err != nil {
			t.Fatal(err)
		}
		g := rdram.DefaultGeometry()
		bases, err := stream.Layout(addrmap.PI, g, 4, words, stream.Staggered)
		if err != nil {
			t.Fatal(err)
		}
		bind := Binding{}
		for i, name := range names {
			bind[name] = bases[i]
		}
		k, err := Compile(l, bind)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.RunKernel(k, sim.Scenario{
			Scheme: addrmap.PI, Mode: mode, FIFODepth: 64, Placement: stream.Staggered,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !out.Verified {
			t.Errorf("%v: compiled loop not verified", mode)
		}
		if out.UsefulWords != 4*256 {
			t.Errorf("%v: UsefulWords = %d", mode, out.UsefulWords)
		}
	}
}

// TestCompiledMatchesHandWritten: the compiled daxpy must produce exactly
// the same schedule as the hand-built stream.Daxpy kernel.
func TestCompiledMatchesHandWritten(t *testing.T) {
	g := rdram.DefaultGeometry()
	f, _ := stream.FactoryByName("daxpy")
	bases := stream.MustLayout(addrmap.CLI, g, 4, f.Footprints(512, 1), stream.Staggered)
	hand := stream.Daxpy(2, bases[0], bases[1], 512, 1)

	l := daxpyLoop(512)
	compiled, err := Compile(l, Binding{"x": bases[0], "y": bases[1]})
	if err != nil {
		t.Fatal(err)
	}

	run := func(k *stream.Kernel) (int64, float64) {
		dev := rdram.NewDevice(rdram.DefaultConfig())
		res, err := smc.Run(dev, k, smc.Config{Scheme: addrmap.CLI, LineWords: 4, FIFODepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.PercentPeak
	}
	hc, hp := run(hand)
	cc, cp := run(compiled)
	if hc != cc || hp != cp {
		t.Errorf("compiled (%d cyc, %.2f%%) differs from hand-written (%d cyc, %.2f%%)", cc, cp, hc, hp)
	}

	dev := rdram.NewDevice(rdram.DefaultConfig())
	if _, err := natorder.Run(dev, compiled, natorder.Config{Scheme: addrmap.CLI, LineWords: 4}); err != nil {
		t.Fatal(err)
	}
}
