// Package compiler implements the software half of the SMC system the
// paper describes in §3: "The compiler detects the presence of streams (as
// in [1]) and generates code to transmit information about those streams
// (base address, stride, number of elements, and whether the stream is
// being read or written) to the hardware at run time."
//
// The input is a small counted-loop IR with affine array references; the
// output is the stream.Kernel the rest of the library consumes. The pass
// performs the recognition steps of a Benitez/Davidson-style access/execute
// scheme: induction-variable analysis is implicit in the IR (one loop
// index), references must be affine in it, reads are ordered before
// writes, and read-modify-write references become a read stream plus a
// write stream of the same vector.
package compiler

import (
	"fmt"

	"rdramstream/internal/stream"
)

// Ref is one array reference in the loop body: Array[Scale*i + Offset],
// where i is the loop index. Scale and Offset are in elements.
type Ref struct {
	Array  string
	Scale  int64
	Offset int64
	Write  bool
}

// Loop is the counted inner loop: for i = 0; i < N; i++ { body }.
// Body lists the references in program order; Compute gives the loop's
// arithmetic over the values read (in the order of the read references),
// producing the values written (in the order of the write references).
type Loop struct {
	N       int
	Body    []Ref
	Compute func(i int, in []float64) []float64
}

// Binding maps array names to base word addresses, the run-time
// information the compiled code combines with the static stream shapes.
type Binding map[string]int64

// StreamInfo is one detected stream: the descriptor the compiler transmits
// to the SMC, plus which reference it came from.
type StreamInfo struct {
	Ref    Ref
	Stride int64 // element stride in words (== Scale, elements are words here)
}

// Detect analyzes the loop and reports the stream set, or an explanation
// of why the loop is not streamable. Rules:
//
//   - at least one reference, and a positive trip count;
//   - every reference affine with positive Scale (Scale 0 is a scalar —
//     hoisted to a register, not a stream; negative strides are not
//     supported by this SMC);
//   - all references share one Scale (the paper's models assume equal
//     strides);
//   - reads precede writes in the body (the iteration's data flow);
//   - no two references to the same array may overlap element sets unless
//     they are the classic read-modify-write pair (identical Scale and
//     Offset, one read one write).
func Detect(l Loop) ([]StreamInfo, error) {
	if l.N <= 0 {
		return nil, fmt.Errorf("compiler: trip count %d", l.N)
	}
	if len(l.Body) == 0 {
		return nil, fmt.Errorf("compiler: empty loop body")
	}
	if l.Compute == nil {
		return nil, fmt.Errorf("compiler: loop has no computation")
	}
	var scale int64
	seenWrite := false
	var infos []StreamInfo
	for idx, r := range l.Body {
		if r.Scale <= 0 {
			return nil, fmt.Errorf("compiler: reference %d (%s) has non-positive scale %d: scalars belong in registers and negative strides are unsupported", idx, r.Array, r.Scale)
		}
		if scale == 0 {
			scale = r.Scale
		} else if r.Scale != scale {
			return nil, fmt.Errorf("compiler: reference %d (%s) scale %d differs from loop scale %d", idx, r.Array, r.Scale, scale)
		}
		if r.Write {
			seenWrite = true
		} else if seenWrite {
			return nil, fmt.Errorf("compiler: read of %s after a write; reorder the body reads-first", r.Array)
		}
		infos = append(infos, StreamInfo{Ref: r, Stride: r.Scale})
	}
	// Overlap check per array.
	for i := 0; i < len(l.Body); i++ {
		for j := i + 1; j < len(l.Body); j++ {
			a, b := l.Body[i], l.Body[j]
			if a.Array != b.Array {
				continue
			}
			if a.Offset == b.Offset {
				if a.Write == b.Write {
					return nil, fmt.Errorf("compiler: duplicate %s reference to %s[%d*i%+d]", mode(a.Write), a.Array, a.Scale, a.Offset)
				}
				continue // read-modify-write pair
			}
			// Distinct offsets with the same scale touch disjoint element
			// sets only if the offset difference is not a multiple of ...
			// they always interleave within the same vector; that is fine
			// for reads (hydro reads zx[i+10] and zx[i+11]) but a write
			// racing another reference at a different offset is a loop-
			// carried dependence this SMC cannot reorder safely.
			if a.Write || b.Write {
				return nil, fmt.Errorf("compiler: loop-carried dependence on %s (offsets %d and %d)", a.Array, a.Offset, b.Offset)
			}
		}
	}
	return infos, nil
}

func mode(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

// Compile detects the loop's streams and binds them to base addresses,
// producing the kernel handed to the controllers. Every array in the body
// must be bound.
func Compile(l Loop, bind Binding) (*stream.Kernel, error) {
	infos, err := Detect(l)
	if err != nil {
		return nil, err
	}
	k := &stream.Kernel{Name: "compiled-loop", Compute: l.Compute}
	for _, info := range infos {
		base, ok := bind[info.Ref.Array]
		if !ok {
			return nil, fmt.Errorf("compiler: array %q is not bound to an address", info.Ref.Array)
		}
		m := stream.Read
		if info.Ref.Write {
			m = stream.Write
		}
		// Array[Scale*i + Offset]: element addresses base+Offset+Scale*i.
		k.Streams = append(k.Streams, stream.Stream{
			Name:   info.Ref.Array,
			Base:   base + info.Ref.Offset,
			Stride: info.Stride,
			Length: l.N,
			Mode:   m,
		})
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: produced an invalid kernel: %w", err)
	}
	return k, nil
}

// Footprints returns the words of memory each distinct array needs for
// the loop, in first-appearance order, plus the array order — the shape a
// caller feeds to stream.Layout before binding.
func Footprints(l Loop) (names []string, words []int64, err error) {
	infos, err := Detect(l)
	if err != nil {
		return nil, nil, err
	}
	idx := map[string]int{}
	for _, info := range infos {
		need := info.Stride*int64(l.N-1) + info.Ref.Offset + 1
		if i, ok := idx[info.Ref.Array]; ok {
			if need > words[i] {
				words[i] = need
			}
			continue
		}
		idx[info.Ref.Array] = len(names)
		names = append(names, info.Ref.Array)
		words = append(words, need)
	}
	return names, words, nil
}
