package service

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

func scenario(n int) sim.Scenario {
	return sim.Scenario{
		KernelName: "daxpy", N: n, Scheme: addrmap.PI, Mode: sim.SMC,
		FIFODepth: 32, Placement: stream.Staggered,
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

func TestSubmitOneMatchesDirectRun(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	sc := scenario(256)
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.SubmitOne(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.WaitResult(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatalf("scenario failed: %s", res.Error)
	}
	if res.Cached {
		t.Error("first submission reported a cache hit")
	}
	if !reflect.DeepEqual(*res.Outcome, direct) {
		t.Errorf("service outcome differs from direct sim.Run:\n  got  %+v\n  want %+v", *res.Outcome, direct)
	}

	// Resubmission is a cache hit with the identical outcome.
	job2, err := s.SubmitOne(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := job2.WaitResult(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("resubmission was not served from cache")
	}
	if !reflect.DeepEqual(*res2.Outcome, direct) {
		t.Error("cached outcome differs from direct sim.Run")
	}
}

// TestRunTaskPanicLandsInScenarioResult pins the batch-isolation
// guarantee: a panic anywhere in the task path becomes that scenario's
// error instead of unwinding into engine.MapCtx, where it would fail the
// whole coalesced batch (which can carry other jobs' scenarios).
func TestRunTaskPanicLandsInScenarioResult(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	job := &Job{
		id: "job-panic", ctx: context.Background(), state: StateQueued,
		results: make([]*ScenarioResult, 1),
		ready:   []chan struct{}{make(chan struct{})},
		done:    make(chan struct{}),
	}
	// A nil cache makes the first dereference inside runTask panic —
	// standing in for any unexpected panic outside the cache's runner.
	s.cache = nil
	s.runTask(&task{job: job, i: 0, sc: scenario(64)})
	res, err := job.WaitResult(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error == "" || !strings.Contains(res.Error, "panicked") {
		t.Fatalf("result error = %q, want a recorded panic", res.Error)
	}
	if job.Status().State != StateDone {
		t.Error("job did not reach a terminal state after the panic")
	}
}

func TestSweepResultsInInputOrder(t *testing.T) {
	s := newService(t, Config{Workers: 4, BatchSize: 3})
	var scs []sim.Scenario
	lengths := []int{64, 128, 256, 64, 512} // index 3 repeats index 0: in-sweep cache hit
	for _, n := range lengths {
		scs = append(scs, scenario(n))
	}
	job, err := s.Submit(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if st.State != StateDone || st.Completed != len(scs) || st.Failed != 0 {
		t.Fatalf("status = %+v", st)
	}
	for i, res := range st.Results {
		if res == nil || res.Index != i {
			t.Fatalf("result %d missing or misindexed: %+v", i, res)
		}
		direct, err := sim.Run(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*res.Outcome, direct) {
			t.Errorf("scenario %d (n=%d): outcome differs from direct run", i, lengths[i])
		}
	}
	if st.CacheHits == 0 {
		t.Error("duplicate scenario in the sweep was not served from cache")
	}
}

func TestSubmitValidatesUpFront(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	bad := scenario(256)
	bad.KernelName = "no-such-kernel"
	if _, err := s.Submit(context.Background(), []sim.Scenario{scenario(64), bad}); err == nil {
		t.Fatal("malformed sweep was accepted")
	}
	if _, err := s.Submit(context.Background(), nil); !errors.Is(err, ErrEmptyJob) {
		t.Fatalf("empty sweep: got %v, want ErrEmptyJob", err)
	}
}

func TestQueueFullIsAllOrNothing(t *testing.T) {
	s := newService(t, Config{Workers: 1, QueueDepth: 3})
	// Block the dispatcher with a job whose context gate we control via a
	// long scenario; simpler: fill the queue faster than one worker
	// drains it and check overflow rejects the whole batch.
	scs := []sim.Scenario{scenario(64), scenario(128), scenario(256), scenario(512)}
	if _, err := s.Submit(context.Background(), scs); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.Queue.Depth != 0 {
		t.Errorf("rejected submission left %d tasks queued", m.Queue.Depth)
	}
}

func TestJobContextCancelsQueuedWork(t *testing.T) {
	s := newService(t, Config{Workers: 1, BatchSize: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before anything runs
	job, err := s.Submit(ctx, []sim.Scenario{scenario(64), scenario(128)})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := job.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if st.Failed != 2 {
		t.Fatalf("status = %+v, want both scenarios failed with the cancellation cause", st)
	}
}

func TestCloseDrainsQueuedWork(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(context.Background(), []sim.Scenario{scenario(64), scenario(128)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := job.Status()
	if st.State != StateDone || st.Failed != 0 {
		t.Fatalf("drain left job in %+v", st)
	}
	if _, err := s.SubmitOne(context.Background(), scenario(64)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: got %v, want ErrClosed", err)
	}
}

func TestMetricsAggregateStalls(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	job, err := s.SubmitOne(context.Background(), scenario(256))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Version == "" {
		t.Error("metrics carry no version stamp")
	}
	if m.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 miss", m.Cache)
	}
	if m.Workers.TasksRun != 1 {
		t.Errorf("worker stats = %+v, want 1 task run", m.Workers)
	}
	if len(m.Stalls) == 0 {
		t.Error("no stall-cause aggregates after an executed simulation")
	}
	var total int64
	for _, v := range m.Stalls {
		total += v
	}
	if total <= 0 {
		t.Errorf("stall aggregate total = %d, want positive", total)
	}

	// A cache hit must not add to the stall aggregates.
	job2, _ := s.SubmitOne(context.Background(), scenario(256))
	job2.Wait(context.Background())
	m2 := s.Metrics()
	var total2 int64
	for _, v := range m2.Stalls {
		total2 += v
	}
	if total2 != total {
		t.Errorf("cache hit changed stall aggregates: %d -> %d", total, total2)
	}
}
